type array_kind = User | Compiler

type array_info = {
  name : string;
  bounds : Region.t;
  kind : array_kind;
}

type redop = Rsum | Rprod | Rmin | Rmax

type stmt =
  | Astmt of Nstmt.t
  | Reduce of { target : string; op : redop; region : Region.t; arg : Expr.t }
  | Sassign of string * Expr.t
  | Sloop of { var : string; lo : int; hi : int; body : stmt list }

type t = {
  name : string;
  arrays : array_info list;
  scalars : (string * float) list;
  body : stmt list;
  live_out : string list;
}

let find_array t x = List.find_opt (fun (a : array_info) -> a.name = x) t.arrays
let array_names t = List.map (fun (a : array_info) -> a.name) t.arrays
let is_live_out t x = List.mem x t.live_out

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let check_ref t region (x, off) =
  match find_array t x with
  | None -> Error (Printf.sprintf "undeclared array %s" x)
  | Some info ->
      if Support.Vec.rank off <> Region.rank region then
        Error (Printf.sprintf "reference %s: offset rank mismatch" x)
      else if Region.rank info.bounds <> Region.rank region then
        Error
          (Printf.sprintf "reference %s: array rank %d, statement rank %d" x
             (Region.rank info.bounds) (Region.rank region))
      else if not (Region.contains info.bounds (Region.shift region off)) then
        Error
          (Printf.sprintf "reference %s%s over %s escapes bounds %s" x
             (Support.Vec.to_string off) (Region.to_string region)
             (Region.to_string info.bounds))
      else Ok ()

let rec check_all f = function
  | [] -> Ok ()
  | x :: tl -> ( match f x with Ok () -> check_all f tl | e -> e)

let check_scalars_in_scope scope e =
  check_all
    (fun s ->
      if List.mem s scope then Ok ()
      else Error (Printf.sprintf "undeclared scalar %s" s))
    (Expr.svars e)

let validate t =
  let rec go scope = function
    | [] -> Ok ()
    | Astmt s :: tl -> (
        if Region.is_empty s.Nstmt.region then
          Error (Printf.sprintf "empty region in %s" (Nstmt.to_string s))
        else
          let refs =
            ((s.Nstmt.lhs, s.Nstmt.lhs_off) :: Expr.refs s.Nstmt.rhs)
          in
          match check_all (check_ref t s.Nstmt.region) refs with
          | Error _ as e -> e
          | Ok () -> (
              match check_scalars_in_scope scope s.Nstmt.rhs with
              | Error _ as e -> e
              | Ok () -> go scope tl))
    | Reduce { target; region; arg; _ } :: tl -> (
        if not (List.mem target scope) then
          Error (Printf.sprintf "undeclared reduction target %s" target)
        else if List.mem target (Expr.svars arg) then
          (* the accumulator is not defined during the sweep: executors
             disagree on whether a self-read sees the old value or the
             running partial result *)
          Error
            (Printf.sprintf "reduction into %s reads its own target" target)
        else if not (Expr.rank_consistent ~rank:(Region.rank region) arg) then
          Error
            (Printf.sprintf
               "reduction into %s: argument index of mismatched rank" target)
        else
          match check_all (check_ref t region) (Expr.refs arg) with
          | Error _ as e -> e
          | Ok () -> (
              match check_scalars_in_scope scope arg with
              | Error _ as e -> e
              | Ok () -> go scope tl))
    | Sassign (x, e) :: tl ->
        if not (List.mem x scope) then
          Error (Printf.sprintf "undeclared scalar %s" x)
        else if Expr.refs e <> [] then
          Error
            (Printf.sprintf "scalar assignment to %s references an array" x)
        else if Expr.has_idx e then
          Error
            (Printf.sprintf
               "scalar assignment to %s references a region index" x)
        else (
          match check_scalars_in_scope scope e with
          | Error _ as e -> e
          | Ok () -> go scope tl)
    | Sloop { var; body; _ } :: tl -> (
        match go (var :: scope) body with
        | Error _ as e -> e
        | Ok () -> go scope tl)
  in
  let dup names =
    let sorted = List.sort compare names in
    let rec first_dup = function
      | a :: b :: _ when a = b -> Some a
      | _ :: tl -> first_dup tl
      | [] -> None
    in
    first_dup sorted
  in
  match dup (array_names t @ List.map fst t.scalars) with
  | Some d -> Error (Printf.sprintf "duplicate declaration %s" d)
  | None -> go (List.map fst t.scalars) t.body

(* ------------------------------------------------------------------ *)
(* Basic blocks                                                        *)
(* ------------------------------------------------------------------ *)

let blocks t =
  let out = ref [] in
  let cur = ref [] in
  let flush () =
    if !cur <> [] then begin
      out := List.rev !cur :: !out;
      cur := []
    end
  in
  let rec go = function
    | [] -> flush ()
    | Astmt s :: tl ->
        cur := s :: !cur;
        go tl
    | Sloop { body; _ } :: tl ->
        flush ();
        go body;
        flush ();
        go tl
    | (Reduce _ | Sassign _) :: tl ->
        flush ();
        go tl
  in
  go t.body;
  List.rev !out

let map_blocks f t =
  let idx = ref (-1) in
  let rewrite run =
    incr idx;
    f !idx (List.rev run)
  in
  let rec go acc cur = function
    | [] ->
        let acc = if cur <> [] then List.rev_append (rewrite cur) acc else acc in
        List.rev acc
    | Astmt s :: tl -> go acc (s :: cur) tl
    | Sloop { var; lo; hi; body } :: tl ->
        let acc =
          if cur <> [] then List.rev_append (rewrite cur) acc else acc
        in
        let body' = go [] [] body in
        go (Sloop { var; lo; hi; body = body' } :: acc) [] tl
    | ((Reduce _ | Sassign _) as s) :: tl ->
        let acc =
          if cur <> [] then List.rev_append (rewrite cur) acc else acc
        in
        go (s :: acc) [] tl
  in
  { t with body = go [] [] t.body }

let block_of_ref t x =
  let in_blocks =
    blocks t
    |> List.mapi (fun i run -> (i, run))
    |> List.filter_map (fun (i, run) ->
           if List.exists (fun s -> List.mem x (Nstmt.arrays s)) run then
             Some i
           else None)
  in
  let outside = ref false in
  let rec scan = function
    | [] -> ()
    | Reduce { arg; _ } :: tl ->
        if List.mem x (Expr.ref_names arg) then outside := true;
        scan tl
    | Sloop { body; _ } :: tl ->
        scan body;
        scan tl
    | (Astmt _ | Sassign _) :: tl -> scan tl
  in
  scan t.body;
  (in_blocks, !outside)

let reduce_stmts t =
  let out = ref [] in
  let rec scan = function
    | [] -> ()
    | Reduce { target; op; region; arg } :: tl ->
        out := (op, region, target, arg) :: !out;
        scan tl
    | Sloop { body; _ } :: tl ->
        scan body;
        scan tl
    | (Astmt _ | Sassign _) :: tl -> scan tl
  in
  scan t.body;
  List.rev !out

(* Blocks and reduces share one traversal (the same order [blocks] and
   [reduce_stmts] use); a reduce trails a block when it follows the
   block's final Astmt with no other statement in between. *)
let trailing_reduces t =
  let out = ref [] in
  let block_idx = ref (-1) in
  let reduce_idx = ref (-1) in
  let rec go in_run trailing = function
    | [] -> ()
    | Astmt _ :: tl ->
        if not in_run then incr block_idx;
        go true false tl
    | Reduce _ :: tl ->
        incr reduce_idx;
        (* trailing iff we just left an Astmt run, or we are continuing
           a run of trailing reduces *)
        if in_run || trailing then
          out := (!block_idx, !reduce_idx) :: !out;
        go false (in_run || trailing) tl
    | Sloop { body; _ } :: tl ->
        go false false body;
        go false false tl
    | Sassign _ :: tl -> go false false tl
  in
  go false false t.body;
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (b, r) ->
      let cur = try Hashtbl.find tbl b with Not_found -> [] in
      Hashtbl.replace tbl b (r :: cur))
    !out;
  Hashtbl.fold (fun b rs acc -> (b, List.sort compare rs) :: acc) tbl []
  |> List.sort compare

let confined_arrays_allowing_reduces t allow =
  let reduces = Array.of_list (reduce_stmts t) in
  let reduce_reads_x ri x =
    let _, _, _, arg = reduces.(ri) in
    List.mem x (Expr.ref_names arg)
  in
  let n_reduces = Array.length reduces in
  List.filter_map
    (fun (info : array_info) ->
      let x = info.name in
      if is_live_out t x then None
      else
        match block_of_ref t x with
        | [ b ], outside ->
            if not outside then Some (x, b)
            else
              let allowed = allow b in
              let ok = ref true in
              for ri = 0 to n_reduces - 1 do
                if reduce_reads_x ri x && not (List.mem ri allowed) then
                  ok := false
              done;
              if !ok then Some (x, b) else None
        | _ -> None)
    t.arrays

let confined_arrays t =
  List.filter_map
    (fun (info : array_info) ->
      let x = info.name in
      if is_live_out t x then None
      else
        match block_of_ref t x with
        | [ b ], false -> Some (x, b)
        | _ -> None)
    t.arrays

let static_array_counts t =
  List.fold_left
    (fun (c, u) a ->
      match a.kind with Compiler -> (c + 1, u) | User -> (c, u + 1))
    (0, 0) t.arrays

let rename_array t ~old ~new_ =
  let rn x = if x = old then new_ else x in
  let rec go_stmt = function
    | Astmt s -> Astmt (Nstmt.rename rn s)
    | Reduce r ->
        Reduce
          { r with arg = Expr.map_refs (fun x d -> Expr.Ref (rn x, d)) r.arg }
    | Sassign _ as s -> s
    | Sloop l -> Sloop { l with body = List.map go_stmt l.body }
  in
  {
    t with
    arrays =
      List.map (fun (a : array_info) -> { a with name = rn a.name }) t.arrays;
    body = List.map go_stmt t.body;
    live_out = List.map rn t.live_out;
  }

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)
(* ------------------------------------------------------------------ *)

(* Canonical content hash over the normalized AST, through the same
   Support.Hash64 mixer as the executors' live-out digest.  Every
   semantic component is folded in with an explicit constructor tag —
   never [Hashtbl.hash], whose value is not specified across compiler
   versions — so the fingerprint is stable: a golden test locks it.
   The program [name] is deliberately excluded (it is reporting
   metadata, and two textually renamed but identical programs must
   share a zapd plan-cache entry). *)

module H = Support.Hash64

let unop_tag : Expr.unop -> int = function
  | Expr.Neg -> 0
  | Expr.Sqrt -> 1
  | Expr.Exp -> 2
  | Expr.Log -> 3
  | Expr.Sin -> 4
  | Expr.Cos -> 5
  | Expr.Abs -> 6
  | Expr.Floor -> 7
  | Expr.Not -> 8
  | Expr.Hashrand -> 9

let binop_tag : Expr.binop -> int = function
  | Expr.Add -> 0
  | Expr.Sub -> 1
  | Expr.Mul -> 2
  | Expr.Div -> 3
  | Expr.Pow -> 4
  | Expr.Min -> 5
  | Expr.Max -> 6
  | Expr.Lt -> 7
  | Expr.Le -> 8
  | Expr.Gt -> 9
  | Expr.Ge -> 10
  | Expr.Eq -> 11
  | Expr.Ne -> 12
  | Expr.And -> 13
  | Expr.Or -> 14

let redop_tag = function Rsum -> 0 | Rprod -> 1 | Rmin -> 2 | Rmax -> 3

let mix_vec h v =
  List.fold_left H.mix_int (H.mix_int h (Support.Vec.rank v))
    (Support.Vec.to_list v)

let mix_region h (r : Region.t) =
  Array.fold_left
    (fun h ({ lo; hi } : Region.range) -> H.mix_int (H.mix_int h lo) hi)
    (H.mix_int h (Region.rank r))
    r

let rec mix_expr h : Expr.t -> H.t = function
  | Expr.Const f -> H.mix_float (H.mix_int h 1) f
  | Expr.Svar s -> H.mix_string (H.mix_int h 2) s
  | Expr.Ref (x, d) -> mix_vec (H.mix_string (H.mix_int h 3) x) d
  | Expr.Idx i -> H.mix_int (H.mix_int h 4) i
  | Expr.Unop (op, e) -> mix_expr (H.mix_int (H.mix_int h 5) (unop_tag op)) e
  | Expr.Binop (op, a, b) ->
      mix_expr (mix_expr (H.mix_int (H.mix_int h 6) (binop_tag op)) a) b
  | Expr.Select (c, a, b) -> mix_expr (mix_expr (mix_expr (H.mix_int h 7) c) a) b

let rec mix_stmt h = function
  | Astmt (s : Nstmt.t) ->
      mix_expr
        (mix_vec
           (H.mix_string (mix_region (H.mix_int h 1) s.Nstmt.region) s.Nstmt.lhs)
           s.Nstmt.lhs_off)
        s.Nstmt.rhs
  | Reduce { target; op; region; arg } ->
      mix_expr
        (H.mix_string
           (mix_region (H.mix_int (H.mix_int h 2) (redop_tag op)) region)
           target)
        arg
  | Sassign (x, e) -> mix_expr (H.mix_string (H.mix_int h 3) x) e
  | Sloop { var; lo; hi; body } ->
      mix_stmts
        (H.mix_int (H.mix_int (H.mix_string (H.mix_int h 4) var) lo) hi)
        body

and mix_stmts h body =
  List.fold_left mix_stmt (H.mix_int h (List.length body)) body

let fingerprint t =
  let h = H.mix_int H.empty (List.length t.arrays) in
  let h =
    List.fold_left
      (fun h (a : array_info) ->
        mix_region
          (H.mix_int (H.mix_string h a.name)
             (match a.kind with User -> 0 | Compiler -> 1))
          a.bounds)
      h t.arrays
  in
  let h = H.mix_int h (List.length t.scalars) in
  let h =
    List.fold_left
      (fun h (s, v) -> H.mix_float (H.mix_string h s) v)
      h t.scalars
  in
  let h = mix_stmts h t.body in
  let h = H.mix_int h (List.length t.live_out) in
  let h = List.fold_left H.mix_string h t.live_out in
  H.to_hex h

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_redop ppf op =
  Format.pp_print_string ppf
    (match op with Rsum -> "+<<" | Rprod -> "*<<" | Rmin -> "min<<" | Rmax -> "max<<")

let rec pp_stmt indent ppf s =
  let pad = String.make indent ' ' in
  match s with
  | Astmt s -> Format.fprintf ppf "%s%a;" pad Nstmt.pp s
  | Reduce { target; op; region; arg } ->
      Format.fprintf ppf "%s%s := %a %a %a;" pad target pp_redop op Region.pp
        region Expr.pp arg
  | Sassign (x, e) -> Format.fprintf ppf "%s%s := %a;" pad x Expr.pp e
  | Sloop { var; lo; hi; body } ->
      Format.fprintf ppf "%sfor %s := %d to %d do@\n%a@\n%send;" pad var lo hi
        (pp_body (indent + 2))
        body pad

and pp_body indent ppf body =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    (pp_stmt indent) ppf body

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s;@," t.name;
  List.iter
    (fun (a : array_info) ->
      Format.fprintf ppf "var %s : %a%s;@," a.name Region.pp a.bounds
        (match a.kind with Compiler -> "  /* compiler temp */" | User -> ""))
    t.arrays;
  List.iter
    (fun (s, v) -> Format.fprintf ppf "scalar %s := %g;@," s v)
    t.scalars;
  Format.fprintf ppf "begin@,%a@,end. /* live out: %s */@]"
    (pp_body 2) t.body
    (String.concat ", " t.live_out)

let to_string t = Format.asprintf "%a" pp t
