(** Whole programs at the array level.

    A program is a sequence of statements over declared arrays and
    scalars.  Normalized array statements ([Astmt]) are the unit of
    fusion and contraction; reductions, scalar assignments and
    sequential loops delimit the basic blocks on which the optimizer
    runs.  This mirrors the paper's setting: an ASDG "represents a
    single basic block at the array statement level". *)

type array_kind =
  | User  (** declared in the source program *)
  | Compiler  (** temporary inserted during normalization *)

type array_info = {
  name : string;
  bounds : Region.t;  (** allocation domain (includes any border padding) *)
  kind : array_kind;
}

type redop = Rsum | Rprod | Rmin | Rmax

type stmt =
  | Astmt of Nstmt.t
  | Reduce of { target : string; op : redop; region : Region.t; arg : Expr.t }
      (** full-region reduction into a scalar, e.g. [s := +<< \[R\] e] *)
  | Sassign of string * Expr.t
      (** scalar assignment; the expression may not reference arrays *)
  | Sloop of { var : string; lo : int; hi : int; body : stmt list }
      (** sequential (time-step) loop; the induction variable is read
          as a scalar inside the body *)

type t = {
  name : string;
  arrays : array_info list;
  scalars : (string * float) list;  (** declared scalars with initial values *)
  body : stmt list;
  live_out : string list;
      (** arrays and scalars observable after the program ends; arrays
          listed here are never contracted *)
}

val find_array : t -> string -> array_info option
val array_names : t -> string list
val is_live_out : t -> string -> bool

val validate : t -> (unit, string) result
(** Structural well-formedness: every referenced array/scalar is
    declared (loop variables are in scope within their loop); every
    array reference of every statement stays within the referenced
    array's allocation bounds; scalar assignments reference no arrays
    and no region indices (there is no iteration point to read them
    at); reduction arguments are rank-consistent with the reduction
    region; statement regions are nonempty. *)

val blocks : t -> Nstmt.t list list
(** All maximal runs of consecutive [Astmt]s, in execution-syntax
    order (loops are entered but each block is listed once).  Block
    indices used throughout the optimizer refer to positions in this
    list. *)

val map_blocks : (int -> Nstmt.t list -> stmt list) -> t -> t
(** Rewrite each maximal [Astmt] run, by block index; other statements
    are preserved. *)

val block_of_ref : t -> string -> int list * bool
(** [block_of_ref p x] is [(bs, outside)]: the block indices in which
    array [x] is referenced, and whether [x] is also referenced outside
    any block (in a reduction). *)

val confined_arrays : t -> (string * int) list
(** Arrays whose every reference occurs in exactly one block and that
    are not live-out: the global precondition for contraction.  Pairs
    the array with its block index. *)

val reduce_stmts : t -> (redop * Region.t * string * Expr.t) list
(** All reductions in traversal order (the order used by reduce
    indices): [(op, region, target, arg)]. *)

val trailing_reduces : t -> (int * int list) list
(** For each block, the indices (into {!reduce_stmts}) of the
    reductions that {e immediately} follow it in the same statement
    list — the candidates for reduction fusion into the block's final
    loop nest. *)

val confined_arrays_allowing_reduces : t -> (int -> int list) -> (string * int) list
(** Like {!confined_arrays}, but an array may additionally be read by
    reductions: [allow b] lists the reduce indices treated as part of
    block [b] (because the optimizer absorbs them into its final
    cluster).  Used to extend contraction candidacy under reduction
    fusion. *)

val static_array_counts : t -> int * int
(** [(compiler, user)] static array declaration counts (Figure 7). *)

val rename_array : t -> old:string -> new_:string -> t

val fingerprint : t -> string
(** Canonical 16-hex-digit content hash of the normalized AST
    (declarations with bounds and kinds, scalar initial values, every
    statement, the live-out set — everything semantic except the
    program's display [name]), folded through the same
    [Support.Hash64] mixing as the executors' live-out digest.  Two
    programs with equal fingerprints behave identically under every
    backend; the hash is {e stable across releases} (a golden test
    locks it) because it keys the zapd plan cache and names fuzz
    repro files. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
