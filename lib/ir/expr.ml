type unop =
  | Neg
  | Sqrt
  | Exp
  | Log
  | Sin
  | Cos
  | Abs
  | Floor
  | Not
  | Hashrand

type binop =
  | Add | Sub | Mul | Div | Pow
  | Min | Max
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type t =
  | Const of float
  | Svar of string
  | Ref of string * Support.Vec.t
  | Idx of int
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of t * t * t

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Svar _ | Ref _ | Idx _ -> acc
  | Unop (_, a) -> fold f acc a
  | Binop (_, a, b) -> fold f (fold f acc a) b
  | Select (c, a, b) -> fold f (fold f (fold f acc c) a) b

let refs e =
  fold (fun acc e -> match e with Ref (x, d) -> (x, d) :: acc | _ -> acc) [] e
  |> List.rev

let dedup xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let ref_names e = dedup (List.map fst (refs e))

let svars e =
  fold (fun acc e -> match e with Svar s -> s :: acc | _ -> acc) [] e
  |> List.rev |> dedup

let has_idx e =
  fold (fun acc e -> acc || match e with Idx _ -> true | _ -> false) false e

let rec map_refs f e =
  match e with
  | Const _ | Svar _ | Idx _ -> e
  | Ref (x, d) -> f x d
  | Unop (op, a) -> Unop (op, map_refs f a)
  | Binop (op, a, b) -> Binop (op, map_refs f a, map_refs f b)
  | Select (c, a, b) -> Select (map_refs f c, map_refs f a, map_refs f b)

let rank_consistent ~rank e =
  fold
    (fun ok e ->
      ok
      &&
      match e with
      | Ref (_, d) -> Support.Vec.rank d = rank
      | Idx i -> 1 <= i && i <= rank
      | _ -> true)
    true e

(* splitmix64 finalizer over the bit pattern of the argument *)
let hashrand x =
  let open Int64 in
  let z = bits_of_float x in
  let z = add z 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  let bits = shift_right_logical z 11 in
  (to_float bits +. 0.5) *. (1.0 /. 9007199254740992.0)

let bool_of f = f <> 0.0
let of_bool b = if b then 1.0 else 0.0

(* NaN-propagating minimum/maximum — the single definition of Min/Max
   every executor (both interpreters, the SPMD engine, the emitted C)
   must agree with.  C's fmin/fmax return the non-NaN operand and
   OCaml's polymorphic min/max disagree with each other (min
   propagates NaN, max drops it); we standardize on propagation.  On
   ordered operands the tie goes to the left argument, so signed
   zeros are resolved identically everywhere. *)
let fmin x y = if x <> x || y <> y then Float.nan else if x <= y then x else y
let fmax x y = if x <> x || y <> y then Float.nan else if x >= y then x else y

let apply_unop op x =
  match op with
  | Neg -> -.x
  | Sqrt -> sqrt x
  | Exp -> exp x
  | Log -> log x
  | Sin -> sin x
  | Cos -> cos x
  | Abs -> abs_float x
  | Floor -> floor x
  | Not -> of_bool (not (bool_of x))
  | Hashrand -> hashrand x

let apply_binop op x y =
  match op with
  | Add -> x +. y
  | Sub -> x -. y
  | Mul -> x *. y
  | Div -> x /. y
  | Pow -> x ** y
  | Min -> fmin x y
  | Max -> fmax x y
  | Lt -> of_bool (x < y)
  | Le -> of_bool (x <= y)
  | Gt -> of_bool (x > y)
  | Ge -> of_bool (x >= y)
  | Eq -> of_bool (x = y)
  | Ne -> of_bool (x <> y)
  | And -> of_bool (bool_of x && bool_of y)
  | Or -> of_bool (bool_of x || bool_of y)

let unop_name = function
  | Neg -> "-"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Abs -> "abs"
  | Floor -> "floor"
  | Not -> "!"
  | Hashrand -> "hashrand"

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "^"
  | Min -> "min"
  | Max -> "max"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let rec pp ppf = function
  | Const f -> Format.fprintf ppf "%g" f
  | Svar s -> Format.pp_print_string ppf s
  | Ref (x, d) ->
      if Support.Vec.is_null d then Format.pp_print_string ppf x
      else Format.fprintf ppf "%s@%a" x Support.Vec.pp d
  | Idx i -> Format.fprintf ppf "idx%d" i
  | Unop (op, a) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp a
  | Binop ((Min | Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_name op) pp a pp b
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp a (binop_name op) pp b
  | Select (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" pp c pp a pp b

let to_string e = Format.asprintf "%a" pp e
