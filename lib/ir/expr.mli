(** Elementwise expressions.

    The right-hand side of a normalized array statement is an
    elementwise function [f(A1@d1, ..., As@ds)] of array references at
    constant offsets, scalar variables, constants and the point's own
    index.  Booleans are represented as floats (0. / 1.), with [Select]
    providing elementwise conditional choice, so a single value domain
    (float) suffices for the whole pipeline. *)

type unop =
  | Neg
  | Sqrt
  | Exp
  | Log
  | Sin
  | Cos
  | Abs
  | Floor
  | Not  (** logical negation of a 0/1 float *)
  | Hashrand
      (** [Hashrand x] is a uniform deviate in (0,1) that is a pure
          function of [x] — a deterministic stand-in for per-element
          random number generation (used by the EP benchmark).  Being
          index-determined, it is invariant under any reordering of the
          iteration space, so fusion and loop restructuring preserve
          program results exactly. *)

type binop =
  | Add | Sub | Mul | Div | Pow
  | Min | Max
  | Lt | Le | Gt | Ge | Eq | Ne
  | And | Or

type t =
  | Const of float
  | Svar of string  (** scalar variable (config, induction or reduction result) *)
  | Ref of string * Support.Vec.t  (** array reference [A@d] *)
  | Idx of int  (** value of the region index in dimension [i] (1-based), as a float *)
  | Unop of unop * t
  | Binop of binop * t * t
  | Select of t * t * t  (** [Select (c, a, b)] is [a] where [c <> 0.], else [b] *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Left fold over every node of the expression tree (the node itself
    included), preorder. *)

val refs : t -> (string * Support.Vec.t) list
(** All array references, left-to-right, with duplicates preserved
    (reference counts feed the contraction weight w(x,G)). *)

val ref_names : t -> string list
(** Distinct array names referenced. *)

val svars : t -> string list
(** Distinct scalar variables read. *)

val has_idx : t -> bool
(** Whether the expression reads any region index ([Idx]). *)

val map_refs : (string -> Support.Vec.t -> t) -> t -> t
(** Rebuild the expression, replacing every array reference. *)

val rank_consistent : rank:int -> t -> bool
(** All reference offsets (and [Idx] dimensions) agree with [rank]. *)

val apply_unop : unop -> float -> float
val apply_binop : binop -> float -> float -> float

val fmin : float -> float -> float
val fmax : float -> float -> float
(** The semantics of [Min]/[Max] (and of the [Rmin]/[Rmax] reduction
    combiners): NaN-propagating, left-biased on ties.  Every executor
    — both interpreters, the SPMD engine, the emitted C — must use
    exactly these, bit for bit; C's [fmin]/[fmax] (which return the
    non-NaN operand) and OCaml's polymorphic [min]/[max] (which
    disagree with each other on NaN) are all wrong here. *)

val hashrand : float -> float
(** The pure PRN function behind [Hashrand] (exposed for tests and for
    scalar-language reference implementations of the benchmarks). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
