(** C toolchain detection, probed once per process.

    Every consumer — fuzz campaigns fanning out over [Support.Pool]
    domains, the service engine, the benches — shares one atomic
    probe: the first caller runs [cc --version] (through {!Proc}, no
    shell) and everyone else reads the cached result.  Racing the
    probe itself is harmless: both domains compute the same answer.

    Beyond availability, the probe records {e which} compiler answered
    (family and version line), so artifacts and committed bench
    reports can state their provenance. *)

type info = {
  family : string;  (** ["gcc"], ["clang"] or ["cc"] *)
  version_line : string;  (** first line of [cc --version], verbatim *)
}

val detect : unit -> info option
(** [None] when no [cc] is on PATH. *)

val available : unit -> bool

val describe : unit -> string
(** Provenance string: the version line, or ["none"] without a
    compiler.  Deterministic for one machine + toolchain. *)

val cc_argv : unit -> string list
(** The compile command prefix, e.g.
    [["cc"; "-O2"; "-fno-builtin"; "-ffp-contract=off"]].
    [-fno-builtin] keeps the compiler from constant-folding libm calls
    (its compile-time evaluation may differ from the runtime libm the
    interpreters share by an ulp); [-ffp-contract=off] forbids fusing
    [a*b+c] into fma, which changes results on fma hardware. *)

val note_obs : unit -> unit
(** Record the detected compiler in the installed [Obs] recorder (a
    ["native.toolchain"] note event), so [--stats json] and bench
    provenance state what produced the native results.  No-op without
    a recorder or a compiler. *)
