(** Compile a scalarized program to a native runner and execute it.

    The program is lowered through {!Sir.Emit_c.to_units} — one C
    translation unit per fused cluster plus a driver — compiled unit
    by unit and linked into a standalone runner executable.  The
    runner speaks the oracle's checksum protocol: one stdout line,
    [<16-hex live-out digest> <wall nanoseconds>], where the digest is
    bit-identical to {!Exec.Interp.checksum} and the nanoseconds cover
    exactly the cluster calls (array setup and digesting excluded).

    Every subprocess goes through {!Proc} as an argv array; no file
    name is ever interpreted by a shell, so workdirs with spaces or
    metacharacters in them are safe.  Failures carry the exact command
    line and exit status — a shrunk fuzz repro that ends in "cc
    failed" is only actionable if it says which cc invocation, on
    what, exited how. *)

type error = {
  argv : string list;  (** the exact failing command *)
  status : string;  (** {!Proc.status_string} of its exit *)
  detail : string;  (** trimmed stderr (or protocol diagnosis) *)
}

val error_to_string : error -> string
(** ["`cc -O2 ... cluster_0.c` failed (exit 1): <stderr>"]. *)

type built = {
  runner : string;  (** absolute path of the linked executable *)
  units : int;  (** cluster translation units compiled *)
}

type run_result = {
  checksum : string;  (** 16-hex live-out digest *)
  wall_ns : int64;  (** monotonic nanoseconds over the cluster calls *)
}

val total_builds : unit -> int
(** Process-global count of runners actually compiled and linked —
    the warm-path tests assert this does not move on cache hits. *)

val write_and_compile : dir:string -> Sir.Code.program -> (built, error) result
(** Write the units into [dir] (created by the caller) and compile
    them there.  Requires {!Toolchain.available}; reports the probe
    failure as an [error] otherwise. *)

val run_exe : string -> (run_result, error) result
(** Execute a runner and parse the protocol line. *)

val run_once : salt:int -> Sir.Code.program -> (run_result, error) result
(** Build in a fresh private workdir, run, and clean the workdir up —
    the fuzz oracle's path.  [salt] seeds the workdir name (see
    {!fresh_workdir}). *)

val fresh_workdir : salt:int -> unit -> string
(** mkdtemp-style creation: [mkdir] itself is the atomic claim,
    retried over randomized names, so concurrent domains and processes
    each own a unique directory.  [salt] keeps names distinct across
    processes that share a recycled pid; an atomic counter
    distinguishes tasks within the process.  Raises [Sys_error] when
    the temp root is unusable. *)

val remove_tree : string -> unit
(** Best-effort recursive delete (never raises). *)
