type outcome = {
  argv : string list;
  status : Unix.process_status;
  stdout : string;
  stderr : string;
}

let succeeded o = o.status = Unix.WEXITED 0

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n

let render_argv argv = String.concat " " (List.map Filename.quote argv)

let read_and_remove path =
  let s =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> s
    | exception Sys_error _ -> ""
  in
  (try Sys.remove path with Sys_error _ -> ());
  s

(* Filename.temp_file creates with O_EXCL, so concurrent domains and
   processes never collide on the capture files. *)
let capture_file tag =
  let path = Filename.temp_file "zapnative" tag in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  (path, fd)

let run argv =
  (match argv with [] -> invalid_arg "Proc.run: empty argv" | _ -> ());
  let prog = List.hd argv in
  let out_path, out_fd = capture_file "out" in
  let err_path, err_fd = capture_file "err" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Fun.protect
      ~finally:(fun () ->
        Unix.close devnull;
        Unix.close out_fd;
        Unix.close err_fd)
      (fun () ->
        try
          Ok (Unix.create_process prog (Array.of_list argv) devnull out_fd err_fd)
        with Unix.Unix_error (err, _, _) ->
          (* create_process reports exec failure in the parent; fold it
             into the shell's convention for an unlaunchable program. *)
          Error (Unix.error_message err))
  in
  match pid with
  | Error msg ->
      (try Sys.remove out_path with Sys_error _ -> ());
      (try Sys.remove err_path with Sys_error _ -> ());
      {
        argv;
        status = Unix.WEXITED 127;
        stdout = "";
        stderr = Printf.sprintf "%s: %s" prog msg;
      }
  | Ok pid ->
      let rec wait () =
        match Unix.waitpid [] pid with
        | _, status -> status
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      let status = wait () in
      {
        argv;
        status;
        stdout = read_and_remove out_path;
        stderr = read_and_remove err_path;
      }
