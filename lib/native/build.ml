type error = { argv : string list; status : string; detail : string }

let error_to_string e =
  match e.argv with
  | [] -> Printf.sprintf "native: %s" e.detail
  | argv ->
      Printf.sprintf "`%s` failed (%s): %s" (Proc.render_argv argv) e.status
        (String.trim e.detail)

type built = { runner : string; units : int }

type run_result = { checksum : string; wall_ns : int64 }

let builds = Atomic.make 0

let total_builds () = Atomic.get builds

(* ------------------------------------------------------------------ *)
(* Workdirs                                                            *)
(* ------------------------------------------------------------------ *)

(* mkdtemp-style creation (moved here from Fuzz.Oracle): [mkdir] is
   the atomic claim — we retry over randomized names until one
   succeeds, so each task owns a unique workdir with no TOCTOU window.
   The salt is caller-derived (typically a hash of the source being
   compiled), NOT the wall clock: two domains starting in the same
   microsecond used to share a gettimeofday salt and burn retries
   against each other.  The atomic counter alone makes names unique
   within the process; the salt keeps them distinct across processes
   that share a recycled pid. *)
let dir_counter = Atomic.make 0

let fresh_workdir ~salt () =
  let base = Filename.get_temp_dir_name () in
  let pid = Unix.getpid () in
  let salt0 = salt land 0xFFFFFF in
  let rec go attempt =
    if attempt >= 1000 then
      raise (Sys_error "zapnative: cannot create a unique temp directory")
    else begin
      let name =
        Printf.sprintf "zapnative-%d-%d-%06x" pid
          (Atomic.fetch_and_add dir_counter 1)
          ((salt0 + (attempt * 0x9E3779)) land 0xFFFFFF)
      in
      let dir = Filename.concat base name in
      match Sys.mkdir dir 0o700 with
      | () -> dir
      | exception Sys_error _ when not (Sys.file_exists dir) ->
          (* the parent is missing or unwritable: retrying cannot help *)
          raise (Sys_error (Printf.sprintf "zapnative: cannot create %s" dir))
      | exception Sys_error _ -> go (attempt + 1)
    end
  in
  go 0

let rec remove_tree path =
  match Sys.is_directory path with
  | true ->
      (match Sys.readdir path with
      | entries ->
          Array.iter (fun f -> remove_tree (Filename.concat path f)) entries
      | exception Sys_error _ -> ());
      (try Sys.rmdir path with Sys_error _ -> ())
  | false -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Compile                                                             *)
(* ------------------------------------------------------------------ *)

let fail_of (o : Proc.outcome) =
  Error
    {
      argv = o.Proc.argv;
      status = Proc.status_string o.Proc.status;
      detail = (if o.Proc.stderr <> "" then o.Proc.stderr else o.Proc.stdout);
    }

let write_and_compile ~dir code =
  if not (Toolchain.available ()) then
    Error { argv = [ "cc"; "--version" ]; status = "exit 127"; detail = "no C compiler on PATH" }
  else begin
    let units = Sir.Emit_c.to_units code in
    List.iter
      (fun (u : Sir.Emit_c.unit_file) ->
        Out_channel.with_open_bin (Filename.concat dir u.Sir.Emit_c.filename)
          (fun oc -> Out_channel.output_string oc u.Sir.Emit_c.contents))
      units;
    let c_units =
      List.filter
        (fun (u : Sir.Emit_c.unit_file) ->
          Filename.check_suffix u.Sir.Emit_c.filename ".c")
        units
    in
    let objects = ref [] in
    let compile_unit (u : Sir.Emit_c.unit_file) =
      let src = Filename.concat dir u.Sir.Emit_c.filename in
      let obj = Filename.concat dir (Filename.chop_suffix u.Sir.Emit_c.filename ".c" ^ ".o") in
      let o = Proc.run (Toolchain.cc_argv () @ [ "-c"; src; "-o"; obj ]) in
      if Proc.succeeded o then begin
        objects := obj :: !objects;
        Ok ()
      end
      else fail_of o
    in
    let rec compile_all = function
      | [] -> Ok ()
      | u :: tl -> Result.bind (compile_unit u) (fun () -> compile_all tl)
    in
    Result.bind (compile_all c_units) @@ fun () ->
    let runner = Filename.concat dir "runner" in
    let o =
      Proc.run
        (Toolchain.cc_argv () @ [ "-o"; runner ] @ List.rev !objects @ [ "-lm" ])
    in
    if Proc.succeeded o then begin
      Atomic.incr builds;
      (* clusters = every .c except the driver *)
      Ok { runner; units = List.length c_units - 1 }
    end
    else fail_of o
  end

(* ------------------------------------------------------------------ *)
(* Run                                                                 *)
(* ------------------------------------------------------------------ *)

let parse_protocol line =
  match String.split_on_char ' ' (String.trim line) with
  | [ checksum; ns ] when String.length checksum = 16 -> (
      match Int64.of_string_opt ns with
      | Some wall_ns -> Some { checksum; wall_ns }
      | None -> None)
  | _ -> None

let run_exe runner =
  let o = Proc.run [ runner ] in
  if not (Proc.succeeded o) then
    Error
      {
        argv = o.Proc.argv;
        status = Proc.status_string o.Proc.status;
        detail = (if o.Proc.stderr = "" then "compiled program crashed" else o.Proc.stderr);
      }
  else
    let line =
      match String.split_on_char '\n' o.Proc.stdout with
      | first :: _ -> first
      | [] -> ""
    in
    match parse_protocol line with
    | Some r -> Ok r
    | None ->
        Error
          {
            argv = o.Proc.argv;
            status = Proc.status_string o.Proc.status;
            detail = Printf.sprintf "bad runner protocol line %S" line;
          }

let run_once ~salt code =
  let dir = fresh_workdir ~salt () in
  Fun.protect
    ~finally:(fun () -> remove_tree dir)
    (fun () ->
      Result.bind (write_and_compile ~dir code) (fun b -> run_exe b.runner))
