type info = { family : string; version_line : string }

let cc_argv () = [ "cc"; "-O2"; "-fno-builtin"; "-ffp-contract=off" ]

let contains ~sub s =
  Astring.String.is_infix ~affix:sub (String.lowercase_ascii s)

let classify version_line =
  if contains ~sub:"clang" version_line then "clang"
  else if
    contains ~sub:"gcc" version_line
    || contains ~sub:"free software foundation" version_line
  then "gcc"
  else "cc"

(* Not a [lazy]: forcing a lazy concurrently from two domains raises
   Lazy.Undefined, and parallel campaigns probe this from every
   worker.  An atomic option makes the race benign. *)
let probed : info option option Atomic.t = Atomic.make None

let detect () =
  match Atomic.get probed with
  | Some v -> v
  | None ->
      let v =
        match Proc.run [ "cc"; "--version" ] with
        | o when Proc.succeeded o ->
            let version_line =
              match String.split_on_char '\n' o.Proc.stdout with
              | first :: _ -> String.trim first
              | [] -> "cc"
            in
            Some { family = classify version_line; version_line }
        | _ -> None
        | exception _ -> None
      in
      Atomic.set probed (Some v);
      v

let available () = detect () <> None

let describe () =
  match detect () with Some i -> i.version_line | None -> "none"

let note_obs () =
  if Obs.enabled () then
    match detect () with
    | Some i ->
        Obs.event
          (Obs.Note
             {
               name = "native.toolchain";
               value = Printf.sprintf "%s: %s" i.family i.version_line;
             })
    | None -> Obs.event (Obs.Note { name = "native.toolchain"; value = "none" })
