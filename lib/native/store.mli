(** Content-addressed store of compiled native artifacts.

    An artifact — the linked runner executable plus its sources — is a
    pure function of the emitted C units, the compile command, and the
    toolchain that answered the probe; its {e content key} is a 64-bit
    hash of exactly those, so a plan recompiled to identical C (same
    fingerprint, same planning regime) reuses the artifact with zero
    cc invocations, across requests {e and} across process restarts
    (the store root survives on disk; a re-started daemon re-adopts
    artifacts it finds there without recompiling).

    Layout: [<root>/<key16hex>/] holding [prog.h], [cluster_<k>.c],
    [main.c], [runner] and a one-line [meta] provenance file.  Builds
    go to a private [<root>/tmp-...] directory and are published by an
    atomic [rename]; a concurrent builder that loses the race adopts
    the winner's artifact.  In-memory, a mutexed memo makes the warm
    path a hash lookup — higher-level caching (and in-flight miss
    coalescing) lives in [Service.Engine]. *)

type t

type artifact = {
  key : string;  (** 16-hex content address *)
  runner : string;  (** absolute path of the executable *)
  units : int;  (** cluster translation units *)
  compiler : string;  (** {!Toolchain.describe} at build time *)
}

val default_root : unit -> string
(** [<tmpdir>/zap-native-store-<uid>]. *)

val create : ?root:string -> unit -> t
(** The root is created on first use, not here. *)

val root : t -> string

val get : t -> Sir.Code.program -> (artifact * bool, Build.error) result
(** The artifact for this program's emitted C, building it if no
    process has yet.  The boolean is [true] when this call actually
    compiled (a fresh build) — [false] on every reuse, whether from
    the memo or adopted from disk. *)

type stats = { builds : int; reuses : int }

val stats : t -> stats
(** Per-store counters (reset with the store, unlike
    {!Build.total_builds}). *)
