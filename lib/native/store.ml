type artifact = { key : string; runner : string; units : int; compiler : string }

type stats = { builds : int; reuses : int }

type t = {
  root : string;
  lock : Mutex.t;
  memo : (string, artifact) Hashtbl.t;
  built : int Atomic.t;
  reused : int Atomic.t;
}

let default_root () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "zap-native-store-%d" (Unix.getuid ()))

let create ?root () =
  {
    root = (match root with Some r -> r | None -> default_root ());
    lock = Mutex.create ();
    memo = Hashtbl.create 32;
    built = Atomic.make 0;
    reused = Atomic.make 0;
  }

let root t = t.root

let stats t = { builds = Atomic.get t.built; reuses = Atomic.get t.reused }

let ensure_root t =
  if not (Sys.file_exists t.root) then
    try Sys.mkdir t.root 0o700 with
    | Sys_error _ when Sys.file_exists t.root -> ()

(* the content address: emitted units + compile command + toolchain.
   A compiler upgrade changes the key, so stale binaries built by an
   older cc are never adopted. *)
let content_key units =
  let h =
    List.fold_left
      (fun h (u : Sir.Emit_c.unit_file) ->
        Support.Hash64.mix_string
          (Support.Hash64.mix_string h u.Sir.Emit_c.filename)
          u.Sir.Emit_c.contents)
      Support.Hash64.empty units
  in
  let h = Support.Hash64.mix_string h (String.concat "\x00" (Toolchain.cc_argv ())) in
  let h = Support.Hash64.mix_string h (Toolchain.describe ()) in
  Support.Hash64.to_hex h

let tmp_counter = Atomic.make 0

let publish ~tmp ~final =
  match Unix.rename tmp final with
  | () -> true
  | exception Unix.Unix_error _ ->
      (* a concurrent builder won the rename: adopt its artifact *)
      Build.remove_tree tmp;
      Sys.file_exists final

let get t (code : Sir.Code.program) =
  let units = Sir.Emit_c.to_units code in
  let key = content_key units in
  match Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.memo key) with
  | Some a ->
      Atomic.incr t.reused;
      Ok (a, false)
  | None -> (
      ensure_root t;
      let final = Filename.concat t.root key in
      let runner = Filename.concat final "runner" in
      let adopt ~fresh =
        let a =
          {
            key;
            runner;
            units = List.length units - 2 (* minus prog.h and main.c *);
            compiler = Toolchain.describe ();
          }
        in
        Mutex.protect t.lock (fun () ->
            if not (Hashtbl.mem t.memo key) then Hashtbl.add t.memo key a);
        Atomic.incr (if fresh then t.built else t.reused);
        Ok (a, fresh)
      in
      if Sys.file_exists runner then adopt ~fresh:false
      else
        let tmp =
          Filename.concat t.root
            (Printf.sprintf "tmp-%d-%d" (Unix.getpid ())
               (Atomic.fetch_and_add tmp_counter 1))
        in
        match Sys.mkdir tmp 0o700 with
        | exception Sys_error m ->
            Error { Build.argv = []; status = "-"; detail = "store: " ^ m }
        | () -> (
            match Build.write_and_compile ~dir:tmp code with
            | Error e ->
                Build.remove_tree tmp;
                Error e
            | Ok _ ->
                Out_channel.with_open_bin (Filename.concat tmp "meta")
                  (fun oc ->
                    Out_channel.output_string oc (Toolchain.describe () ^ "\n"));
                if publish ~tmp ~final then adopt ~fresh:true
                else
                  Error
                    {
                      Build.argv = [];
                      status = "-";
                      detail =
                        Printf.sprintf "store: cannot publish artifact %s" key;
                    }))
