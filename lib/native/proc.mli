(** Subprocess plumbing for the native engine: spawn an argv array
    directly ([Unix.create_process]), never a shell command line.

    The old cc path interpolated file names into [Sys.command] strings;
    a [TMPDIR] containing spaces or shell metacharacters broke
    compilation and silently poisoned the fuzz oracle's verdict.  Here
    no path is ever parsed by a shell: arguments go to [execvp]
    verbatim, and stdout/stderr are captured through temp files the
    parent opens itself. *)

type outcome = {
  argv : string list;  (** exactly what was executed *)
  status : Unix.process_status;
  stdout : string;
  stderr : string;
}

val run : string list -> outcome
(** [run argv] executes [argv] (program looked up on PATH) with stdin
    connected to [/dev/null] and both output streams captured.  An
    unlaunchable program surfaces as exit status 127, as a shell
    would report it.  Raises [Invalid_argument] on an empty argv. *)

val succeeded : outcome -> bool
(** [status = WEXITED 0]. *)

val status_string : Unix.process_status -> string
(** ["exit 1"], ["signal -7"], ["stopped -19"]. *)

val render_argv : string list -> string
(** Shell-quoted rendering of the exact command, for error payloads —
    copy-pasteable to reproduce a failed compile by hand. *)
