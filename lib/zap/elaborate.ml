open Ir

exception Error of int * string

let err line fmt = Printf.ksprintf (fun s -> raise (Error (line, s))) fmt

(* ---------------- compile-time numerics ---------------------------- *)

let rec eval_num env line (e : Ast.numexpr) : float =
  match e with
  | Ast.Num f -> f
  | Ast.NVar x -> (
      match List.assoc_opt x env with
      | Some v -> v
      | None -> err line "unknown config constant %S" x)
  | Ast.NNeg a -> -.eval_num env line a
  | Ast.NBin (op, a, b) -> (
      let va = eval_num env line a and vb = eval_num env line b in
      match op with
      | '+' -> va +. vb
      | '-' -> va -. vb
      | '*' -> va *. vb
      | '/' -> va /. vb
      | _ -> err line "bad numeric operator %C" op)

let eval_int env line e =
  let f = eval_num env line e in
  let i = int_of_float f in
  if float_of_int i <> f then err line "expected an integer, got %g" f;
  i

(* ---------------- symbol tables ------------------------------------ *)

type env = {
  configs : (string * float) list;
  regions : (string, Region.t) Hashtbl.t;
  dirs : (string, Support.Vec.t) Hashtbl.t;
  arrays : (string, Prog.array_info) Hashtbl.t;
  mutable scalars : (string * float) list;
  mutable exports : string list;
  mutable temps : Prog.array_info list;
  mutable temp_count : int;
}

let resolve_region env line = function
  | Ast.Rname n -> (
      match Hashtbl.find_opt env.regions n with
      | Some r -> r
      | None -> err line "unknown region %S" n)
  | Ast.Rinline ranges ->
      Region.of_bounds
        (List.map
           (fun (lo, hi) ->
             (eval_int env.configs line lo, eval_int env.configs line hi))
           ranges)

let resolve_dir env line = function
  | Ast.Dname n -> (
      match Hashtbl.find_opt env.dirs n with
      | Some d -> d
      | None -> err line "unknown direction %S" n)
  | Ast.Dinline xs ->
      Support.Vec.of_list (List.map (eval_int env.configs line) xs)

(* ---------------- expression translation --------------------------- *)

let builtins1 =
  [
    ("sqrt", Expr.Sqrt); ("exp", Expr.Exp); ("log", Expr.Log);
    ("sin", Expr.Sin); ("cos", Expr.Cos); ("abs", Expr.Abs);
    ("floor", Expr.Floor); ("hashrand", Expr.Hashrand);
  ]

let builtins2 = [ ("min", Expr.Min); ("max", Expr.Max); ("pow", Expr.Pow) ]

let bin_of_string line = function
  | "+" -> Expr.Add
  | "-" -> Expr.Sub
  | "*" -> Expr.Mul
  | "/" -> Expr.Div
  | "^" -> Expr.Pow
  | "<" -> Expr.Lt
  | "<=" -> Expr.Le
  | ">" -> Expr.Gt
  | ">=" -> Expr.Ge
  | "==" -> Expr.Eq
  | "!=" -> Expr.Ne
  | "&&" -> Expr.And
  | "||" -> Expr.Or
  | op -> err line "unknown operator %S" op

(* [rank] — rank of the enclosing array context, or None for scalar
   contexts (array references forbidden). *)
let rec tr_expr env line ~rank ~scope (e : Ast.expr) : Expr.t =
  match e with
  | Ast.Const f -> Expr.Const f
  | Ast.Var x -> (
      match Hashtbl.find_opt env.arrays x with
      | Some info -> (
          match rank with
          | None -> err line "array %S used in a scalar context" x
          | Some r ->
              if Region.rank info.Prog.bounds <> r then
                err line "array %S has rank %d, statement rank %d" x
                  (Region.rank info.Prog.bounds) r;
              Expr.Ref (x, Support.Vec.zero r))
      | None ->
          if
            List.mem_assoc x env.configs
            || List.mem_assoc x env.scalars
            || List.mem x scope
          then Expr.Svar x
          else err line "unknown identifier %S" x)
  | Ast.At (x, d) -> (
      let off = resolve_dir env line d in
      match Hashtbl.find_opt env.arrays x with
      | None -> err line "@ applied to non-array %S" x
      | Some info -> (
          match rank with
          | None -> err line "array %S used in a scalar context" x
          | Some r ->
              if Support.Vec.rank off <> r then
                err line "direction rank %d does not match statement rank %d"
                  (Support.Vec.rank off) r;
              if Region.rank info.Prog.bounds <> r then
                err line "array %S has rank %d, statement rank %d" x
                  (Region.rank info.Prog.bounds) r;
              Expr.Ref (x, off)))
  | Ast.Index d -> (
      match rank with
      | None -> err line "index%d used in a scalar context" d
      | Some r ->
          if d < 1 || d > r then
            err line "index%d out of range for rank %d" d r;
          Expr.Idx d)
  | Ast.Unary ("-", a) -> Expr.Unop (Expr.Neg, tr_expr env line ~rank ~scope a)
  | Ast.Unary ("!", a) -> Expr.Unop (Expr.Not, tr_expr env line ~rank ~scope a)
  | Ast.Unary (op, _) -> err line "unknown unary operator %S" op
  | Ast.Bin (op, a, b) ->
      Expr.Binop
        ( bin_of_string line op,
          tr_expr env line ~rank ~scope a,
          tr_expr env line ~rank ~scope b )
  | Ast.Call ("select", [ c; a; b ]) ->
      Expr.Select
        ( tr_expr env line ~rank ~scope c,
          tr_expr env line ~rank ~scope a,
          tr_expr env line ~rank ~scope b )
  | Ast.Call (f, [ a ]) when List.mem_assoc f builtins1 ->
      Expr.Unop (List.assoc f builtins1, tr_expr env line ~rank ~scope a)
  | Ast.Call (f, [ a; b ]) when List.mem_assoc f builtins2 ->
      Expr.Binop
        ( List.assoc f builtins2,
          tr_expr env line ~rank ~scope a,
          tr_expr env line ~rank ~scope b )
  | Ast.Call (f, args) ->
      err line "unknown function %S with %d argument(s)" f (List.length args)

(* ---------------- statements --------------------------------------- *)

let fresh_temp env region =
  env.temp_count <- env.temp_count + 1;
  let name = Printf.sprintf "__t%d" env.temp_count in
  let info = { Prog.name; bounds = region; kind = Prog.Compiler } in
  env.temps <- info :: env.temps;
  Hashtbl.replace env.arrays name info;
  name

let rec tr_stmt env ~scope (s : Ast.stmt) : Prog.stmt list =
  let line = s.Ast.line in
  match s.Ast.it with
  | Ast.Assign (rref, lhs, rhs) -> (
      let region = resolve_region env line rref in
      let rank = Region.rank region in
      (match Hashtbl.find_opt env.arrays lhs with
      | None -> err line "assignment to undeclared array %S" lhs
      | Some info ->
          if Region.rank info.Prog.bounds <> rank then
            err line "array %S has rank %d, region rank %d" lhs
              (Region.rank info.Prog.bounds) rank);
      let rhs = tr_expr env line ~rank:(Some rank) ~scope rhs in
      if List.mem lhs (Expr.ref_names rhs) then begin
        (* normalization: split through a compiler temporary to
           preserve array semantics (full RHS before any store) *)
        let tmp = fresh_temp env region in
        [
          Prog.Astmt (Nstmt.make ~region ~lhs:tmp rhs);
          Prog.Astmt
            (Nstmt.make ~region ~lhs
               (Expr.Ref (tmp, Support.Vec.zero rank)));
        ]
      end
      else [ Prog.Astmt (Nstmt.make ~region ~lhs rhs) ])
  | Ast.Reduce (target, op, rref, arg) ->
      let region = resolve_region env line rref in
      let rank = Region.rank region in
      if not (List.mem_assoc target env.scalars || List.mem target scope) then
        err line "reduction target %S is not a scalar" target;
      let arg = tr_expr env line ~rank:(Some rank) ~scope arg in
      let op =
        match op with
        | "+<<" -> Prog.Rsum
        | "*<<" -> Prog.Rprod
        | "min<<" -> Prog.Rmin
        | "max<<" -> Prog.Rmax
        | other -> err line "unknown reduction operator %S" other
      in
      [ Prog.Reduce { target; op; region; arg } ]
  | Ast.Sassign (target, e) ->
      if Hashtbl.mem env.arrays target then
        err line
          "assignment to array %S needs a region prefix: [R] %s := ..."
          target target;
      if not (List.mem_assoc target env.scalars || List.mem target scope) then
        err line "assignment to undeclared scalar %S" target;
      let e = tr_expr env line ~rank:None ~scope e in
      [ Prog.Sassign (target, e) ]
  | Ast.For (v, lo, hi, body) ->
      if Hashtbl.mem env.arrays v || List.mem_assoc v env.scalars then
        err line "loop variable %S shadows a declaration" v;
      let lo = eval_int env.configs line lo in
      let hi = eval_int env.configs line hi in
      let body = List.concat_map (tr_stmt env ~scope:(v :: scope)) body in
      [ Prog.Sloop { var = v; lo; hi; body } ]

(* ---------------- whole programs ----------------------------------- *)

let elaborate ?(config = []) (p : Ast.program) : Prog.t =
  (* config defaults first, overridden by the caller *)
  let configs = ref [] in
  List.iter
    (fun (d : Ast.decl) ->
      match d.Ast.dit with
      | Ast.Config (name, v) ->
          let value =
            match List.assoc_opt name config with
            | Some v -> v
            | None -> eval_num !configs d.Ast.dline v
          in
          configs := !configs @ [ (name, value) ]
      | _ -> ())
    p.Ast.decls;
  let env =
    {
      configs = !configs;
      regions = Hashtbl.create 8;
      dirs = Hashtbl.create 8;
      arrays = Hashtbl.create 16;
      scalars = [];
      exports = [];
      temps = [];
      temp_count = 0;
    }
  in
  let user_arrays = ref [] in
  List.iter
    (fun (d : Ast.decl) ->
      let line = d.Ast.dline in
      match d.Ast.dit with
      | Ast.Config _ -> ()
      | Ast.Region (name, ranges) ->
          let r =
            Region.of_bounds
              (List.map
                 (fun (lo, hi) ->
                   (eval_int env.configs line lo, eval_int env.configs line hi))
                 ranges)
          in
          if Region.is_empty r then err line "region %S is empty" name;
          Hashtbl.replace env.regions name r
      | Ast.Direction (name, xs) ->
          Hashtbl.replace env.dirs name
            (Support.Vec.of_list (List.map (eval_int env.configs line) xs))
      | Ast.VarArrays (names, rref) ->
          let bounds = resolve_region env line rref in
          List.iter
            (fun name ->
              if Hashtbl.mem env.arrays name then
                err line "duplicate array %S" name;
              let info = { Prog.name; bounds; kind = Prog.User } in
              Hashtbl.replace env.arrays name info;
              user_arrays := info :: !user_arrays)
            names
      | Ast.Scalar (name, init) ->
          let v =
            match init with
            | Some e -> eval_num env.configs line e
            | None -> 0.0
          in
          env.scalars <- env.scalars @ [ (name, v) ]
      | Ast.Export names -> env.exports <- env.exports @ names)
    p.Ast.decls;
  let body = List.concat_map (tr_stmt env ~scope:[]) p.Ast.body in
  List.iter
    (fun x ->
      if
        not
          (Hashtbl.mem env.arrays x
          || List.mem_assoc x env.scalars
          || List.mem_assoc x env.configs)
      then err 0 "export of undeclared name %S" x)
    env.exports;
  let prog =
    {
      Prog.name = p.Ast.pname;
      arrays = List.rev !user_arrays @ List.rev env.temps;
      (* configs are readable scalars *)
      scalars = env.configs @ env.scalars;
      body;
      live_out = env.exports;
    }
  in
  (match Prog.validate prog with
  | Ok () -> ()
  | Error e -> err 0 "%s" e);
  prog

let compile_string ?config src =
  let ast = Obs.span "parse" (fun () -> Parser.parse src) in
  Obs.span "elaborate" (fun () -> elaborate ?config ast)

let compile_file ?config path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  compile_string ?config src
