type shape =
  | Scalar
  | Keep_dims of bool array

(* Block-local contraction test for one array: all referencing
   statements in a single cluster, no upward-exposed read, and (for
   full contraction) all UDVs null. *)
let single_cluster p x =
  let refs = Asdg.stmts_referencing (Partition.asdg p) x in
  match List.map (Partition.cluster_of p) refs |> List.sort_uniq compare with
  | [ rep ] -> Some rep
  | _ -> None

let shape_name = function
  | Scalar -> "scalar"
  | Keep_dims keep ->
      let kept = ref [] in
      Array.iteri (fun i k -> if k then kept := (i + 1) :: !kept) keep;
      "keep-dims:"
      ^ String.concat "," (List.rev_map string_of_int !kept)

let observe_candidates candidates =
  if Obs.enabled () then
    List.iter
      (fun x -> Obs.event (Obs.Contraction_candidate { array = x }))
      candidates

let observe_performed x shape =
  if Obs.enabled () then
    Obs.event (Obs.Contraction_perform { array = x; shape = shape_name shape })

let decide p ~candidates =
  observe_candidates candidates;
  List.filter
    (fun x ->
      let ok =
        Partition.first_ref_is_write p x
        &&
        match single_cluster p x with
        | Some rep -> Partition.contractible p x ~within:[ rep ]
        | None -> false
      in
      if ok then observe_performed x Scalar;
      ok)
    candidates

let ref_offsets p x =
  let g = Partition.asdg p in
  Asdg.stmts_referencing g x
  |> List.concat_map (fun i ->
         let s = Asdg.stmt g i in
         Ir.Nstmt.reads_of s x @ Ir.Nstmt.writes_of s x)

let decide_partial p ~candidates =
  observe_candidates candidates;
  List.filter_map
    (fun x ->
      if not (Partition.first_ref_is_write p x) then None
      else
        match single_cluster p x with
        | None -> None
        | Some rep -> (
            match (ref_offsets p x, Partition.loop_structure p rep) with
            | [], _ | _, None -> None
            | (d0 :: _) as offsets, Some ls ->
                let rank = Support.Vec.rank d0 in
                (* a dimension must be kept when some reference carries
                   a nonzero offset there... *)
                let keep =
                  Array.init rank (fun i ->
                      List.exists (fun d -> d.(i) <> 0) offsets)
                in
                (* ...and when its loop is nested inside a loop that
                   carries a dependence due to [x]: between the
                   cross-iteration def and use, the inner loop revisits
                   the same buffer cell with different indices. *)
                List.iter
                  (fun (_, (l : Dep.label)) ->
                    if not (Support.Vec.is_null l.udv) then begin
                      let d = Loopstruct.constrain ls l.udv in
                      (* outermost carrying level (d is lex-nonnegative
                         for any dependence the cluster preserves) *)
                      let rec carrier lvl =
                        if lvl > rank then rank
                        else if d.(lvl - 1) <> 0 then lvl
                        else carrier (lvl + 1)
                      in
                      let lvl = carrier 1 in
                      for inner = lvl + 1 to rank do
                        keep.(abs (Support.Vec.get ls inner) - 1) <- true
                      done
                    end)
                  (Asdg.deps_on (Partition.asdg p) x);
                if Array.for_all not keep then begin
                  observe_performed x Scalar;
                  Some (x, Scalar)
                end
                else if Array.for_all (fun k -> k) keep then
                  (* nothing would be saved: not a contraction *)
                  None
                else begin
                  observe_performed x (Keep_dims keep);
                  Some (x, Keep_dims keep)
                end))
    candidates

let shape_volume bounds = function
  | Scalar -> 1
  | Keep_dims keep ->
      let v = ref 1 in
      Array.iteri
        (fun i k -> if k then v := !v * Ir.Region.extent bounds (i + 1))
        keep;
      !v
