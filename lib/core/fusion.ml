let always _ = true

let stmts_of p reps = List.concat_map (fun r -> Partition.members p r) reps

let reason_of_veto : Partition.veto -> Obs.fusion_reason = function
  | Partition.Region_mismatch -> Obs.Region_mismatch
  | Partition.Nonnull_flow -> Obs.Nonnull_flow
  | Partition.No_loop_structure -> Obs.No_loop_structure
  | Partition.Cycle -> Obs.Cycle

(* One Figure-3 attempt: collect the clusters referencing [x], close
   them under GROW, and merge when legal.  [want_contract] switches
   between FUSION-FOR-CONTRACTION and fusion-for-locality. *)
let attempt ?relax_flow ~may_fuse ~want_contract p x =
  let refs = Asdg.stmts_referencing (Partition.asdg p) x in
  let c =
    List.map (Partition.cluster_of p) refs |> List.sort_uniq compare
  in
  match c with
  | [] | [ _ ] ->
      (* nothing to fuse; contraction of a single-cluster array is
         decided later by [Contraction.decide] *)
      p
  | _ ->
      let c = List.sort_uniq compare (c @ Partition.grow p c) in
      let obs = Obs.enabled () in
      if obs then
        Obs.event (Obs.Fusion_attempt { array = Some x; clusters = List.length c });
      let reject reason =
        if obs then Obs.event (Obs.Fusion_reject { array = Some x; reason });
        p
      in
      if want_contract && not (Partition.contractible p x ~within:c) then
        reject Obs.Not_contractible
      else
        match Partition.check_merge ?relax_flow p c with
        | Error v -> reject (reason_of_veto v)
        | Ok () ->
            if may_fuse (stmts_of p c) then begin
              if obs then
                Obs.event
                  (Obs.Fusion_accept { array = Some x; clusters = List.length c });
              Partition.merge p c
            end
            else reject Obs.External_veto

let for_contraction ?start ?relax_flow ?(may_fuse = always)
    ?(order = `Weight) ~candidates g =
  let p = match start with Some p -> p | None -> Partition.trivial g in
  let order =
    match order with
    | `Weight -> Weights.by_decreasing_weight g candidates
    | `Source -> candidates
  in
  List.fold_left
    (fun p x ->
      if Partition.first_ref_is_write p x then
        attempt ?relax_flow ~may_fuse ~want_contract:true p x
      else p)
    p order

let for_locality ?relax_flow ?(may_fuse = always) p =
  let g = Partition.asdg p in
  let order = Weights.by_decreasing_weight g (Asdg.vars g) in
  List.fold_left (attempt ?relax_flow ~may_fuse ~want_contract:false) p order

let greedy_pairwise ?relax_flow ?(may_fuse = always) p =
  (* pair rejections bump the reason counters but are not stored as
     events: a fixpoint of pairwise scans would swamp the event log *)
  let obs = Obs.enabled () in
  let try_pair p r1 r2 =
    if obs then Obs.count "fusion.attempted" 1;
    match Partition.check_merge ?relax_flow p [ r1; r2 ] with
    | Error v ->
        if obs then
          Obs.count
            ("fusion.rejected." ^ Obs.fusion_reason_name (reason_of_veto v))
            1;
        None
    | Ok () ->
        if may_fuse (stmts_of p [ r1; r2 ]) then begin
          if obs then
            Obs.event (Obs.Fusion_accept { array = None; clusters = 2 });
          Some (Partition.merge p [ r1; r2 ])
        end
        else begin
          if obs then Obs.count "fusion.rejected.external-veto" 1;
          None
        end
  in
  let rec pass p =
    let reps = List.map List.hd (Partition.clusters p) in
    let rec try_pairs = function
      | [] -> None
      | r1 :: rest -> (
          let merged = List.find_map (fun r2 -> try_pair p r1 r2) rest in
          match merged with Some p' -> Some p' | None -> try_pairs rest)
    in
    match try_pairs reps with Some p' -> pass p' | None -> p
  in
  pass p
