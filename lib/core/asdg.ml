type t = {
  stmts : Ir.Nstmt.t array;
  edge_tbl : (int * int, Dep.label list) Hashtbl.t;
  edge_list : (int * int) list;  (* sorted, nonempty labels only *)
}

let build stmt_list =
  let stmts = Array.of_list stmt_list in
  let n = Array.length stmts in
  let edge_tbl = Hashtbl.create 64 in
  let edge_list = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match Dep.between stmts.(i) stmts.(j) with
      | [] -> ()
      | labels ->
          Hashtbl.replace edge_tbl (i, j) labels;
          edge_list := (i, j) :: !edge_list
    done
  done;
  if Obs.enabled () then Obs.count "dep.edges" (List.length !edge_list);
  { stmts; edge_tbl; edge_list = List.sort compare !edge_list }

let n t = Array.length t.stmts
let stmt t i = t.stmts.(i)
let stmts t = t.stmts
let edges t = t.edge_list

let labels t i j =
  match Hashtbl.find_opt t.edge_tbl (i, j) with Some l -> l | None -> []

let vars t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun s ->
      List.iter
        (fun x ->
          if not (Hashtbl.mem seen x) then begin
            Hashtbl.add seen x ();
            out := x :: !out
          end)
        (Ir.Nstmt.arrays s))
    t.stmts;
  List.rev !out

let deps_on t x =
  List.concat_map
    (fun e ->
      List.filter_map
        (fun (l : Dep.label) -> if l.var = x then Some (e, l) else None)
        (labels t (fst e) (snd e)))
    t.edge_list

let stmts_referencing t x =
  let out = ref [] in
  Array.iteri
    (fun i s -> if List.mem x (Ir.Nstmt.arrays s) then out := i :: !out)
    t.stmts;
  List.rev !out

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i s -> Format.fprintf ppf "s%d: %a@," i Ir.Nstmt.pp s)
    t.stmts;
  List.iter
    (fun (i, j) ->
      Format.fprintf ppf "s%d -> s%d  {%a}@," i j
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Dep.pp)
        (labels t i j))
    t.edge_list;
  Format.fprintf ppf "@]"
