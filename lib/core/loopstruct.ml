type t = Support.Vec.t

let default n = Array.init n (fun i -> i + 1)

let is_wellformed p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun pi ->
      let d = abs pi in
      if pi = 0 || d > n || seen.(d - 1) then false
      else begin
        seen.(d - 1) <- true;
        true
      end)
    p

let sign x = if x > 0 then 1 else if x < 0 then -1 else 0

let constrain p u =
  if Array.length p <> Array.length u then
    invalid_arg "Loopstruct.constrain: rank mismatch";
  Array.map (fun pi -> sign pi * u.(abs pi - 1)) p

let preserves p udvs =
  List.for_all (fun u -> Support.Vec.lex_nonneg (constrain p u)) udvs

(* FIND-LOOP-STRUCTURE, Figure 4.  [c] is the working set of UDVs not
   yet carried by an assigned outer loop. *)
let find ~rank udvs =
  let bad = List.exists (fun u -> Support.Vec.rank u <> rank) udvs in
  if bad then invalid_arg "Loopstruct.find: UDV of wrong rank";
  if Obs.enabled () then Obs.count "loopstruct.calls" 1;
  let b = Array.make rank true in
  let p = Array.make rank 0 in
  let c = ref udvs in
  let exception No_solution in
  try
    for i = 0 to rank - 1 do
      (* find a dimension for loop i (outermost first) *)
      let found = ref false in
      let j = ref 0 in
      while (not !found) && !j < rank do
        let dim = !j in
        if b.(dim) then begin
          let all_nonneg = List.for_all (fun u -> u.(dim) >= 0) !c in
          let all_nonpos = List.for_all (fun u -> u.(dim) <= 0) !c in
          let some_neg = List.exists (fun u -> u.(dim) < 0) !c in
          let d =
            if all_nonneg then 1
            else if all_nonpos && some_neg then -1
            else 0
          in
          if d <> 0 then begin
            b.(dim) <- false;
            p.(i) <- d * (dim + 1);
            (* dependences carried by loop i no longer constrain inner
               loops *)
            c := List.filter (fun u -> u.(dim) = 0) !c;
            found := true
          end
        end;
        incr j
      done;
      if not !found then raise No_solution
    done;
    Some p
  with No_solution -> None

let pp = Support.Vec.pp
