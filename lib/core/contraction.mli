(** Array contraction decisions (Definition 6).

    Given a fusion partition, decides which arrays can be replaced by
    scalars upon scalarization.  The caller supplies the globally
    eligible [candidates] (arrays confined to this block and not
    live-out, per [Ir.Prog.confined_arrays]); this module adds the
    block-local conditions: no upward-exposed read, all dependences
    within one fusible cluster, all UDVs null.

    [decide_partial] implements the extension the paper leaves as
    future work (§5.2, motivated by SP): contraction to
    {e lower-dimensional} arrays.  An array whose references within
    its single cluster all use offset 0 in some dimensions can drop
    those dimensions from its allocation — a scalar being the extreme
    case where every dimension is dropped. *)

type shape =
  | Scalar  (** full contraction: the array becomes a register-resident scalar *)
  | Keep_dims of bool array
      (** partial contraction: [true] marks dimensions that must be
          retained in storage (at least one reference carries a nonzero
          offset there) *)

val decide : Partition.t -> candidates:string list -> string list
(** Arrays fully contractible to scalars under the given partition, in
    candidate order. *)

val decide_partial :
  Partition.t -> candidates:string list -> (string * shape) list
(** Full and partial contractions.  Arrays reported with [Keep_dims]
    would not be contracted by the paper's algorithm; retaining the
    marked dimensions only is sound because all dependences due to the
    array have zero distance in every dropped dimension (see
    DESIGN.md §5.7). *)

val shape_volume : Ir.Region.t -> shape -> int
(** Number of elements the contracted allocation still needs (1 for
    [Scalar]). *)

val shape_name : shape -> string
(** ["scalar"], or ["keep-dims:1,3"]-style for partial contraction —
    the stable spelling used in observability events and JSON
    reports. *)
