type t = {
  asdg : Asdg.t;
  dsu : Support.Dsu.t;
}

let trivial g = { asdg = g; dsu = Support.Dsu.create (Asdg.n g) }
let asdg t = t.asdg
let cluster_of t i = Support.Dsu.find t.dsu i
let clusters t = Support.Dsu.groups t.dsu
let members t rep = List.find (fun c -> List.hd c = rep) (clusters t)
let n_clusters t = Support.Dsu.n_sets t.dsu
let same_cluster t i j = Support.Dsu.same t.dsu i j

let inter_cluster_edges t =
  Asdg.edges t.asdg
  |> List.filter_map (fun (i, j) ->
         let ri = cluster_of t i and rj = cluster_of t j in
         if ri = rj then None else Some (ri, rj))
  |> List.sort_uniq compare

let intra_udvs t rep =
  Asdg.edges t.asdg
  |> List.concat_map (fun (i, j) ->
         if cluster_of t i = rep && cluster_of t j = rep then
           List.map (fun (l : Dep.label) -> l.udv) (Asdg.labels t.asdg i j)
         else [])

let loop_structure t rep =
  match members t rep with
  | [] -> None
  | s :: _ ->
      let rank = Ir.Region.rank (Asdg.stmt t.asdg s).Ir.Nstmt.region in
      Loopstruct.find ~rank (intra_udvs t rep)

(* ---- cluster-level digraph helpers -------------------------------- *)

(* Map representatives to dense ids for Toposort. *)
let cluster_graph t =
  let reps = List.map List.hd (clusters t) in
  let id = Hashtbl.create 16 in
  List.iteri (fun k r -> Hashtbl.add id r k) reps;
  let edges =
    List.map
      (fun (a, b) -> (Hashtbl.find id a, Hashtbl.find id b))
      (inter_cluster_edges t)
  in
  (Array.of_list reps, id, edges)

let grow t c =
  let reps, id, edges = cluster_graph t in
  let n = Array.length reps in
  let c_ids = List.map (Hashtbl.find id) c in
  let fwd = Support.Toposort.reachable ~n ~edges ~from:c_ids in
  let redges = List.map (fun (a, b) -> (b, a)) edges in
  let bwd = Support.Toposort.reachable ~n ~edges:redges ~from:c_ids in
  let out = ref [] in
  for k = n - 1 downto 0 do
    if fwd.(k) && bwd.(k) && not (List.mem k c_ids) then
      out := reps.(k) :: !out
  done;
  !out

(* ---- hypothetical merge ------------------------------------------- *)

let merge t c =
  let dsu = Support.Dsu.copy t.dsu in
  (match c with
  | [] -> ()
  | first :: rest -> List.iter (fun r -> Support.Dsu.union dsu first r) rest);
  { t with dsu }

(* All statements of the given cluster set. *)
let stmts_of t c =
  List.concat_map (fun r -> members t r) c |> List.sort compare

let udvs_within t (stmt_set : int list) =
  let mem i = List.mem i stmt_set in
  Asdg.edges t.asdg
  |> List.concat_map (fun (i, j) ->
         if mem i && mem j then
           List.map (fun (l : Dep.label) -> l.udv) (Asdg.labels t.asdg i j)
         else [])

let flow_udvs_within t stmt_set =
  let mem i = List.mem i stmt_set in
  Asdg.edges t.asdg
  |> List.concat_map (fun (i, j) ->
         if mem i && mem j then
           List.filter_map
             (fun (l : Dep.label) ->
               if l.kind = Dep.Flow then Some l.udv else None)
             (Asdg.labels t.asdg i j)
         else [])

let acyclic t =
  let _, _, edges = cluster_graph t in
  not (Support.Toposort.has_cycle ~n:(n_clusters t) ~edges)

type veto =
  | Region_mismatch
  | Nonnull_flow
  | No_loop_structure
  | Cycle

(* Conditions (i), (ii) and (iv) of Definition 5 on one statement set,
   reporting the first violated condition.  [relax_flow] drops
   condition (ii) — the parallelism condition — to model sequential
   (scalar-compiler-style) fusion; legality is still guaranteed by
   condition (iv), since FIND-LOOP-STRUCTURE preserves flow dependences
   like any others. *)
let check_stmt_set ?(relax_flow = false) t ss =
  let g = t.asdg in
  let regions = List.map (fun i -> (Asdg.stmt g i).Ir.Nstmt.region) ss in
  let same_region =
    match regions with
    | [] -> true
    | r0 :: rest -> List.for_all (Ir.Region.equal r0) rest
  in
  if not same_region then Error Region_mismatch
  else if
    (not relax_flow)
    && not (List.for_all Support.Vec.is_null (flow_udvs_within t ss))
  then Error Nonnull_flow
  else
    match ss with
    | [] -> Ok ()
    | s :: _ ->
        let rank = Ir.Region.rank (Asdg.stmt g s).Ir.Nstmt.region in
        if Loopstruct.find ~rank (udvs_within t ss) <> None then Ok ()
        else Error No_loop_structure

let valid_stmt_set ?relax_flow t ss = check_stmt_set ?relax_flow t ss = Ok ()

let check_merge ?relax_flow t c =
  match c with
  | [] | [ _ ] -> Ok ()
  | _ -> (
      match check_stmt_set ?relax_flow t (stmts_of t c) with
      | Error _ as e -> e
      | Ok () -> if acyclic (merge t c) then Ok () else Error Cycle)

let can_merge ?relax_flow t c = check_merge ?relax_flow t c = Ok ()

let contractible t x ~within =
  let cluster_set = List.sort_uniq compare within in
  Asdg.deps_on t.asdg x
  |> List.for_all (fun ((i, j), (l : Dep.label)) ->
         List.mem (cluster_of t i) cluster_set
         && List.mem (cluster_of t j) cluster_set
         && Support.Vec.is_null l.udv)

let is_valid ?relax_flow t =
  List.for_all (fun c -> valid_stmt_set ?relax_flow t c) (clusters t)
  && acyclic t

let first_ref_is_write t x =
  match Asdg.stmts_referencing t.asdg x with
  | [] -> false
  | i :: _ -> (Asdg.stmt t.asdg i).Ir.Nstmt.lhs = x

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun c ->
      Format.fprintf ppf "P%d = {%a}%s@," (List.hd c)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (fun ppf i -> Format.fprintf ppf "s%d" i))
        c
        (match loop_structure t (List.hd c) with
        | Some p -> Format.asprintf "  p=%a" Loopstruct.pp p
        | None -> "  p=NOSOLUTION"))
    (clusters t);
  Format.fprintf ppf "@]"
