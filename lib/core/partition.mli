(** Fusion partitions (Definition 5) over an ASDG.

    A fusion partition groups the statements of an ASDG into fusible
    clusters; upon scalarization each cluster becomes a single loop
    nest.  A partition is valid when
    (i) statements in a cluster share one region,
    (ii) intra-cluster {e flow} UDVs are null (loop-carried flow would
    inhibit parallelism),
    (iii) the inter-cluster graph is acyclic, and
    (iv) each cluster admits a loop structure vector preserving every
    intra-cluster dependence.

    Clusters are named by their minimum statement index, matching the
    paper's rule that a merge lands in the [P_k] of smallest [k]. *)

type t

val trivial : Asdg.t -> t
(** One statement per cluster. *)

val asdg : t -> Asdg.t
val cluster_of : t -> int -> int
(** Representative (minimum statement index) of the statement's cluster. *)

val clusters : t -> int list list
(** All clusters, each sorted, ordered by representative. *)

val members : t -> int -> int list
(** Statements of the cluster whose representative is given. *)

val n_clusters : t -> int

val same_cluster : t -> int -> int -> bool

val inter_cluster_edges : t -> (int * int) list
(** Edges of the cluster-level digraph, as representative pairs
    (deduplicated, self-loops removed). *)

val intra_udvs : t -> int -> Support.Vec.t list
(** UDVs of all dependences between statements of the given cluster. *)

val loop_structure : t -> int -> Loopstruct.t option
(** FIND-LOOP-STRUCTURE on the cluster's intra-cluster UDVs. *)

val grow : t -> int list -> int list
(** [grow p c] (the paper's GROW): representatives of clusters outside
    [c] lying on a dependence path from [c] to [c] — exactly the
    clusters that would end up on an inter-cluster cycle if [c] were
    fused.  O(e). *)

type veto =
  | Region_mismatch  (** condition (i): statements iterate different regions *)
  | Nonnull_flow  (** condition (ii): a loop-carried flow dependence would be internalized *)
  | No_loop_structure  (** condition (iv): FIND-LOOP-STRUCTURE returned NOSOLUTION *)
  | Cycle  (** condition (iii): the merged cluster graph would be cyclic *)

val check_merge : ?relax_flow:bool -> t -> int list -> (unit, veto) result
(** FUSION-PARTITION? with an explanation: would merging the given
    clusters (by representative) leave a valid fusion partition?
    Checks all four conditions of Definition 5 (including acyclicity,
    so it is safe to call without {!grow} — e.g. by the greedy pairwise
    fuser) and reports the first violated one.

    [relax_flow:true] drops condition (ii) — non-null intra-cluster
    flow UDVs are tolerated provided a legal loop structure still
    exists.  This models {e sequential} fusion as a scalar-language
    compiler would perform it, sacrificing the parallelism guarantee;
    it enables the partial-contraction extension (see
    {!Contraction.decide_partial}). *)

val can_merge : ?relax_flow:bool -> t -> int list -> bool
(** [check_merge] as a predicate. *)

val contractible : t -> string -> within:int list -> bool
(** CONTRACTIBLE? (Definition 6): all dependences due to the variable
    run between statements of the given cluster set, and all their
    UDVs are null.  The caller separately guarantees the global
    conditions (not live-out, confined to this block, first reference
    is a write). *)

val merge : t -> int list -> t
(** Fuse the given clusters (no validity check; see {!can_merge}). *)

val is_valid : ?relax_flow:bool -> t -> bool
(** Full Definition 5 check on the current partition — used by tests
    and assertions.  [relax_flow] as in {!can_merge}. *)

val first_ref_is_write : t -> string -> bool
(** In statement order, the first statement of the block referencing
    the variable writes it (no upward-exposed read). *)

val pp : Format.formatter -> t -> unit
