type config = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
}

let is_pow2 x = x > 0 && x land (x - 1) = 0

let config_sets c =
  if not (is_pow2 c.line_bytes) then
    invalid_arg "Cache: line size must be a power of two";
  if c.assoc < 1 then invalid_arg "Cache: associativity must be >= 1";
  if c.size_bytes mod (c.line_bytes * c.assoc) <> 0 then
    invalid_arg "Cache: size not divisible by line*assoc";
  c.size_bytes / (c.line_bytes * c.assoc)

type stats = {
  accesses : int;
  hits : int;
  misses : int;
}

type t = {
  cfg : config;
  sets : int;
  line_shift : int;
  tags : int array;  (** sets*assoc entries; -1 = invalid *)
  ages : int array;  (** LRU stamps *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
}

let log2 x =
  let rec go n x = if x <= 1 then n else go (n + 1) (x lsr 1) in
  go 0 x

let create cfg =
  let sets = config_sets cfg in
  {
    cfg;
    sets;
    line_shift = log2 cfg.line_bytes;
    tags = Array.make (sets * cfg.assoc) (-1);
    ages = Array.make (sets * cfg.assoc) 0;
    clock = 0;
    accesses = 0;
    hits = 0;
  }

let access t ~addr =
  let line = addr lsr t.line_shift in
  let set = line mod t.sets in
  let base = set * t.cfg.assoc in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let rec find i =
    if i >= t.cfg.assoc then None
    else if t.tags.(base + i) = line then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
      t.hits <- t.hits + 1;
      t.ages.(base + i) <- t.clock;
      true
  | None ->
      (* evict the LRU way *)
      let victim = ref 0 in
      for i = 1 to t.cfg.assoc - 1 do
        if t.ages.(base + i) < t.ages.(base + !victim) then victim := i
      done;
      t.tags.(base + !victim) <- line;
      t.ages.(base + !victim) <- t.clock;
      false

let stats t =
  { accesses = t.accesses; hits = t.hits; misses = t.accesses - t.hits }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0

let miss_rate (s : stats) =
  if s.accesses = 0 then 0.0
  else float_of_int s.misses /. float_of_int s.accesses

module Hierarchy = struct
  type h = {
    l1 : t;
    l2 : t option;
  }

  let create ~l1 ?l2 () =
    { l1 = create l1; l2 = Option.map create l2 }

  let access h ~addr ~write:_ =
    if not (access h.l1 ~addr) then
      match h.l2 with
      | Some l2 -> ignore (access l2 ~addr)
      | None -> ()

  let l1_stats h = stats h.l1
  let l2_stats h = Option.map stats h.l2

  let observe ?(prefix = "cache") h =
    if Obs.enabled () then begin
      let level name (s : stats) =
        Obs.count (Printf.sprintf "%s.%s.accesses" prefix name) s.accesses;
        Obs.count (Printf.sprintf "%s.%s.hits" prefix name) s.hits;
        Obs.count (Printf.sprintf "%s.%s.misses" prefix name) s.misses
      in
      level "l1" (l1_stats h);
      Option.iter (level "l2") (l2_stats h)
    end

  let reset h =
    reset h.l1;
    Option.iter reset h.l2
end
