(** Set-associative write-allocate LRU cache simulator.

    Trace-driven: feed it the byte addresses produced by the
    instrumented interpreter and read back hit/miss counts.  This is
    the stand-in for the papers' machines' data caches — the paper's
    runtime effects (temporal locality from fusion and contraction,
    cache pollution from over-fusion) are all functions of this
    model. *)

type config = {
  size_bytes : int;
  line_bytes : int;  (** power of two *)
  assoc : int;  (** 1 = direct-mapped *)
}

val config_sets : config -> int
(** Number of sets; raises [Invalid_argument] on inconsistent
    geometry (size not divisible by line·assoc, line not a power of
    two). *)

type stats = {
  accesses : int;
  hits : int;
  misses : int;
}

type t

val create : config -> t
val access : t -> addr:int -> bool
(** Touch one byte address; returns [true] on hit.  The whole
    containing line is installed on miss (write-allocate). *)

val stats : t -> stats
val reset : t -> unit
val miss_rate : stats -> float

module Hierarchy : sig
  (** Two-level hierarchy: accesses filter through L1; L1 misses go to
      L2 (when present).  Inclusive, no prefetching — the 1998-era
      machines modelled here had neither aggressive prefetch nor
      victim buffers worth modelling. *)

  type h

  val create : l1:config -> ?l2:config -> unit -> h
  val access : h -> addr:int -> write:bool -> unit
  val l1_stats : h -> stats
  val l2_stats : h -> stats option
  val reset : h -> unit

  val observe : ?prefix:string -> h -> unit
  (** Push the hierarchy's hit/miss totals into the installed [Obs]
      recorder as ["<prefix>.l1.hits"]-style counters (default prefix
      ["cache"]); a no-op when observability is disabled.  The hot
      {!access} path itself is never instrumented — callers snapshot
      once per simulation. *)
end
