module Json = Obs.Json
module Diag = Obs.Diagnostic

let protocol_version = 1

(* ------------------------------------------------------------------ *)
(* Request types                                                       *)
(* ------------------------------------------------------------------ *)

type source =
  | Bench of { name : string; tile : int option }
  | Text of { name : string; text : string }

type plan_mode = Greedy | Search | Ilp

let plan_mode_name = function
  | Greedy -> "greedy"
  | Search -> "search"
  | Ilp -> "ilp"

let plan_mode_of_name = function
  | "greedy" -> Some Greedy
  | "search" -> Some Search
  | "ilp" -> Some Ilp
  | _ -> None

type compile_opts = {
  level : string;
  plan : plan_mode;
  config : (string * float) list;
  merge : bool;
  simplify : bool;
  dump_ir : bool;
  dump_plan : bool;
  dump_c : bool;
  emit_c : bool;
}

let default_compile_opts =
  {
    level = "c2+f3";
    plan = Greedy;
    config = [];
    merge = false;
    simplify = false;
    dump_ir = false;
    dump_plan = false;
    dump_c = false;
    emit_c = false;
  }

type target = { machine : string; procs : int }

let default_target = { machine = "t3e"; procs = 1 }

type request =
  | Compile of { source : source; opts : compile_opts; target : target }
  | Run of {
      source : source;
      opts : compile_opts;
      target : target;
      spmd : bool;
      native : bool;
    }
  | Plan of { source : source; opts : compile_opts; target : target }
  | Batch of request list
  | Stats
  | Shutdown

(* ------------------------------------------------------------------ *)
(* Response types                                                      *)
(* ------------------------------------------------------------------ *)

type summary = {
  program : string;
  level : string;
  arrays_total : int;
  contracted_compiler : int;
  contracted_user : int;
  remaining : int;
  footprint_bytes : int;
  contracted : (string * string) list;
  merged_away : string list;
  fingerprint : string;
  dump_ir : string option;
  dump_plan : string option;
  dump_c : string option;
  emit_c : string option;
}

type perf = {
  machine : string;
  procs : int;
  time_ns : float;
  comp_ns : float;
  comm_ns : float;
  flops : int;
  loads : int;
  stores : int;
  l1_miss_pct : float;
  l2_miss_pct : float option;
  messages : int;
  msg_bytes : int;
  checksum : string;
}

type spmd_summary = {
  spmd_time_ns : float;
  supersteps : int;
  matches_model : bool;
  charged_messages : int;
  charged_bytes : int;
  wire_messages : int;
  wire_bytes : int;
  ghost_fills : int;
  unmodeled_exchanges : int;
  reduction_messages : int;
  spmd_l1_miss_pct : float option;
  spmd_checksum : string;
  report : Json.t;
}

(* Wall-clock is the single timing-dependent field: everything else in
   a Ran response is byte-identical between a cold and a warm serve of
   the same request, and the stats *shape* (field set and order) never
   varies with cache state. *)
type native_summary = {
  native_checksum : string;
  native_wall_ns : int64;
  native_compiler : string;  (** {!Native.Toolchain.describe} at build time *)
  native_units : int;  (** cluster translation units in the artifact *)
  native_matches : bool;  (** checksum equals the modeled run's *)
}

type cache_stats = {
  shards : int;
  cache_capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
}

type server_stats = {
  requests : (string * int) list;
  cache : cache_stats;
  compiles_computed : int;
  plans_computed : int;
  natives_built : int;
  natives_reused : int;
  native_runs : int;
}

type response =
  | Compiled of {
      summary : summary;
      provenance : Plan.Driver.provenance option;
    }
  | Ran of {
      summary : summary;
      provenance : Plan.Driver.provenance option;
      perf : perf;
      spmd : spmd_summary option;
      native : native_summary option;
    }
  | Planned of {
      summary : summary;
      provenance : Plan.Driver.provenance option;
    }
  | Batch_reply of response list
  | Stats_reply of server_stats
  | Shutting_down
  | Failed of Diag.t

(* ------------------------------------------------------------------ *)
(* Shared validation                                                   *)
(* ------------------------------------------------------------------ *)

let machine_of_name name =
  match String.lowercase_ascii name with
  | "t3e" -> Ok Machine.t3e
  | "sp2" | "sp-2" -> Ok Machine.sp2
  | "paragon" -> Ok Machine.paragon
  | other ->
      Error (Diag.errorf ~phase:"cli" "unknown machine %S (t3e|sp2|paragon)" other)

let level_of_name name =
  match Compilers.Driver.level_of_name name with
  | Some l -> Ok l
  | None ->
      Error
        (Diag.errorf ~phase:"cli"
           "unknown level %S (baseline, f1, c1, f2, f3, c2, c2+f3, c2+f4, \
            c2+p; '+' may be omitted)"
           name)

(* ------------------------------------------------------------------ *)
(* Decoder combinators                                                 *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let to_str = function
  | Json.String s -> Ok s
  | _ -> Error "expected a string"

let to_int = function
  | Json.Int i -> Ok i
  | Json.Float f when Float.is_integer f -> Ok (int_of_float f)
  | _ -> Error "expected an integer"

let to_num = function
  | Json.Int i -> Ok (float_of_int i)
  | Json.Float f -> Ok f
  | _ -> Error "expected a number"

let to_bool = function
  | Json.Bool b -> Ok b
  | _ -> Error "expected a boolean"

let to_list = function
  | Json.List l -> Ok l
  | _ -> Error "expected an array"

let str_field name j = Result.bind (field name j) to_str
let int_field name j = Result.bind (field name j) to_int
let num_field name j = Result.bind (field name j) to_num
let bool_field name j = Result.bind (field name j) to_bool

let opt_str_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> Result.map Option.some (to_str v)

let opt_num_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> Result.map Option.some (to_num v)

let opt_int_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> Result.map Option.some (to_int v)

let opt_bool_field name j =
  match Json.member name j with
  | None | Some Json.Null -> Ok None
  | Some v -> Result.map Option.some (to_bool v)

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: tl ->
        let* y = f x in
        go (y :: acc) tl
  in
  go [] l

let opt_json name v = match v with None -> [] | Some s -> [ (name, Json.String s) ]

(* ------------------------------------------------------------------ *)
(* Request codec                                                       *)
(* ------------------------------------------------------------------ *)

let source_to_json = function
  | Bench { name; tile } ->
      Json.Obj
        ([ ("bench", Json.String name) ]
        @ match tile with Some t -> [ ("tile", Json.Int t) ] | None -> [])
  | Text { name; text } ->
      Json.Obj [ ("name", Json.String name); ("text", Json.String text) ]

let source_of_json j =
  match Json.member "bench" j with
  | Some (Json.String name) ->
      let* tile = opt_int_field "tile" j in
      Ok (Bench { name; tile })
  | Some _ -> Error "source.bench must be a string"
  | None ->
      let* name = str_field "name" j in
      let* text = str_field "text" j in
      Ok (Text { name; text })

let opts_to_json (o : compile_opts) =
  let flag name v = if v then [ (name, Json.Bool true) ] else [] in
  Json.Obj
    ([
       ("level", Json.String o.level);
       ("plan", Json.String (plan_mode_name o.plan));
     ]
    @ (if o.config = [] then []
       else
         [
           ( "config",
             Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) o.config) );
         ])
    @ flag "merge" o.merge @ flag "simplify" o.simplify
    @ flag "dump_ir" o.dump_ir @ flag "dump_plan" o.dump_plan
    @ flag "dump_c" o.dump_c @ flag "emit_c" o.emit_c)

let opts_of_json j =
  let d = default_compile_opts in
  let flag name dflt =
    match Json.member name j with
    | None -> Ok dflt
    | Some v -> to_bool v
  in
  let* level =
    match Json.member "level" j with None -> Ok d.level | Some v -> to_str v
  in
  let* plan =
    match Json.member "plan" j with
    | None -> Ok d.plan
    | Some v -> (
        let* s = to_str v in
        match plan_mode_of_name s with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "unknown plan mode %S" s))
  in
  let* config =
    match Json.member "config" j with
    | None -> Ok []
    | Some (Json.Obj kvs) ->
        map_result
          (fun (k, v) ->
            let* f = to_num v in
            Ok (k, f))
          kvs
    | Some _ -> Error "config must be an object"
  in
  let* merge = flag "merge" d.merge in
  let* simplify = flag "simplify" d.simplify in
  let* dump_ir = flag "dump_ir" d.dump_ir in
  let* dump_plan = flag "dump_plan" d.dump_plan in
  let* dump_c = flag "dump_c" d.dump_c in
  let* emit_c = flag "emit_c" d.emit_c in
  Ok { level; plan; config; merge; simplify; dump_ir; dump_plan; dump_c; emit_c }

let target_to_json (t : target) =
  Json.Obj [ ("machine", Json.String t.machine); ("procs", Json.Int t.procs) ]

let target_of_json = function
  | None -> Ok default_target
  | Some j ->
      let* machine =
        match Json.member "machine" j with
        | None -> Ok default_target.machine
        | Some v -> to_str v
      in
      let* procs =
        match Json.member "procs" j with
        | None -> Ok default_target.procs
        | Some v -> to_int v
      in
      Ok { machine; procs }

let rec request_to_json = function
  | Compile { source; opts; target } ->
      Json.Obj
        [
          ("op", Json.String "compile");
          ("source", source_to_json source);
          ("opts", opts_to_json opts);
          ("target", target_to_json target);
        ]
  | Run { source; opts; target; spmd; native } ->
      Json.Obj
        ([
           ("op", Json.String "run");
           ("source", source_to_json source);
           ("opts", opts_to_json opts);
           ("target", target_to_json target);
         ]
        @ (if spmd then [ ("spmd", Json.Bool true) ] else [])
        @ if native then [ ("native", Json.Bool true) ] else [])
  | Plan { source; opts; target } ->
      Json.Obj
        [
          ("op", Json.String "plan");
          ("source", source_to_json source);
          ("opts", opts_to_json opts);
          ("target", target_to_json target);
        ]
  | Batch reqs ->
      Json.Obj
        [
          ("op", Json.String "batch");
          ("requests", Json.List (List.map request_to_json reqs));
        ]
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let rec request_of_json j =
  let* () =
    match Json.member "v" j with
    | None -> Ok ()
    | Some (Json.Int v) when v = protocol_version -> Ok ()
    | Some (Json.Int v) ->
        Error
          (Printf.sprintf "protocol version %d not supported (this is %d)" v
             protocol_version)
    | Some _ -> Error "v must be an integer"
  in
  let* op = str_field "op" j in
  let sot () =
    let* sj = field "source" j in
    let* source = source_of_json sj in
    let* opts =
      match Json.member "opts" j with
      | None -> Ok default_compile_opts
      | Some oj -> opts_of_json oj
    in
    let* target = target_of_json (Json.member "target" j) in
    Ok (source, opts, target)
  in
  match op with
  | "compile" ->
      let* source, opts, target = sot () in
      Ok (Compile { source; opts; target })
  | "run" ->
      let* source, opts, target = sot () in
      let* spmd =
        match Json.member "spmd" j with None -> Ok false | Some v -> to_bool v
      in
      let* native =
        match Json.member "native" j with
        | None -> Ok false
        | Some v -> to_bool v
      in
      Ok (Run { source; opts; target; spmd; native })
  | "plan" ->
      let* source, opts, target = sot () in
      Ok (Plan { source; opts; target })
  | "batch" ->
      let* rs = Result.bind (field "requests" j) to_list in
      let* reqs = map_result request_of_json rs in
      Ok (Batch reqs)
  | "stats" -> Ok Stats
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown op %S" other)

let request_of_line line =
  match Json.of_string line with
  | Error e -> Error (Printf.sprintf "bad request line: %s" e)
  | Ok j -> request_of_json j

(* ------------------------------------------------------------------ *)
(* Provenance codec (inverse of Plan.Driver.provenance_json)           *)
(* ------------------------------------------------------------------ *)

let provenance_of_json j =
  let* strategy = str_field "strategy" j in
  let* machine = str_field "machine" j in
  let* procs = int_field "procs" j in
  let* greedy_total_ns = num_field "greedy_total_ns" j in
  let* search_total_ns = num_field "search_total_ns" j in
  let* chosen_total_ns = num_field "chosen_total_ns" j in
  let* fallback = bool_field "fallback" j in
  let* bs = Result.bind (field "blocks" j) to_list in
  let* blocks =
    map_result
      (fun bj ->
        let* block = int_field "block" bj in
        let* expanded = int_field "expanded" bj in
        let* generated = int_field "generated" bj in
        let* pruned = int_field "pruned" bj in
        let* deduped = int_field "deduped" bj in
        let* beam_rounds = int_field "beam_rounds" bj in
        let* greedy_ns = num_field "greedy_ns" bj in
        let* best_ns = num_field "best_ns" bj in
        let* improved = bool_field "improved" bj in
        Ok
          {
            Plan.Driver.block;
            stats =
              {
                Plan.Search.expanded;
                generated;
                pruned;
                deduped;
                beam_rounds;
                greedy_ns;
                best_ns;
                improved;
              };
          })
      bs
  in
  (* ILP extension fields: absent under --plan search, null-tolerant *)
  let* ilp_total_ns = opt_num_field "ilp_total_ns" j in
  let* proved_optimal = opt_bool_field "proved_optimal" j in
  let* certified_lb_ns = opt_num_field "certified_lb_ns" j in
  let* ilp_blocks =
    match Json.member "ilp_blocks" j with
    | None | Some Json.Null -> Ok []
    | Some v ->
        let* ibs = to_list v in
        map_result
          (fun bj ->
            let* iblock = int_field "block" bj in
            let* clusters = int_field "clusters" bj in
            let* complete = bool_field "complete" bj in
            let* nodes = int_field "nodes" bj in
            let* cuts = int_field "cuts" bj in
            let* pivots = int_field "pivots" bj in
            let* proved = bool_field "proved" bj in
            let* objective_exact = bool_field "objective_exact" bj in
            let* lower_bound_ns = opt_num_field "lower_bound_ns" bj in
            let* greedy_ns = num_field "greedy_ns" bj in
            let* best_ns = num_field "best_ns" bj in
            let* improved = bool_field "improved" bj in
            Ok
              {
                Plan.Driver.iblock;
                istats =
                  {
                    Plan.Ilp.clusters;
                    complete;
                    nodes;
                    cuts;
                    pivots;
                    proved;
                    objective_exact;
                    lower_bound_ns;
                    greedy_ns;
                    best_ns;
                    improved;
                  };
              })
          ibs
  in
  Ok
    {
      Plan.Driver.strategy;
      machine;
      procs;
      greedy_total_ns;
      search_total_ns;
      ilp_total_ns;
      chosen_total_ns;
      fallback;
      proved_optimal;
      certified_lb_ns;
      blocks;
      ilp_blocks;
    }

(* ------------------------------------------------------------------ *)
(* Response codec                                                      *)
(* ------------------------------------------------------------------ *)

let summary_to_json (s : summary) =
  Json.Obj
    ([
       ("program", Json.String s.program);
       ("level", Json.String s.level);
       ("arrays_total", Json.Int s.arrays_total);
       ("contracted_compiler", Json.Int s.contracted_compiler);
       ("contracted_user", Json.Int s.contracted_user);
       ("remaining", Json.Int s.remaining);
       ("footprint_bytes", Json.Int s.footprint_bytes);
       ( "contracted",
         Json.List
           (List.map
              (fun (x, shape) ->
                Json.Obj
                  [ ("array", Json.String x); ("shape", Json.String shape) ])
              s.contracted) );
       ("merged_away", Json.List (List.map (fun x -> Json.String x) s.merged_away));
       ("fingerprint", Json.String s.fingerprint);
     ]
    @ opt_json "dump_ir" s.dump_ir
    @ opt_json "dump_plan" s.dump_plan
    @ opt_json "dump_c" s.dump_c
    @ opt_json "emit_c" s.emit_c)

let summary_of_json j =
  let* program = str_field "program" j in
  let* level = str_field "level" j in
  let* arrays_total = int_field "arrays_total" j in
  let* contracted_compiler = int_field "contracted_compiler" j in
  let* contracted_user = int_field "contracted_user" j in
  let* remaining = int_field "remaining" j in
  let* footprint_bytes = int_field "footprint_bytes" j in
  let* cs = Result.bind (field "contracted" j) to_list in
  let* contracted =
    map_result
      (fun cj ->
        let* x = str_field "array" cj in
        let* shape = str_field "shape" cj in
        Ok (x, shape))
      cs
  in
  let* ms = Result.bind (field "merged_away" j) to_list in
  let* merged_away = map_result to_str ms in
  let* fingerprint = str_field "fingerprint" j in
  let* dump_ir = opt_str_field "dump_ir" j in
  let* dump_plan = opt_str_field "dump_plan" j in
  let* dump_c = opt_str_field "dump_c" j in
  let* emit_c = opt_str_field "emit_c" j in
  Ok
    {
      program;
      level;
      arrays_total;
      contracted_compiler;
      contracted_user;
      remaining;
      footprint_bytes;
      contracted;
      merged_away;
      fingerprint;
      dump_ir;
      dump_plan;
      dump_c;
      emit_c;
    }

let perf_to_json (p : perf) =
  Json.Obj
    ([
       ("machine", Json.String p.machine);
       ("procs", Json.Int p.procs);
       ("time_ns", Json.Float p.time_ns);
       ("comp_ns", Json.Float p.comp_ns);
       ("comm_ns", Json.Float p.comm_ns);
       ("flops", Json.Int p.flops);
       ("loads", Json.Int p.loads);
       ("stores", Json.Int p.stores);
       ("l1_miss_pct", Json.Float p.l1_miss_pct);
     ]
    @ (match p.l2_miss_pct with
      | Some v -> [ ("l2_miss_pct", Json.Float v) ]
      | None -> [])
    @ [
        ("messages", Json.Int p.messages);
        ("msg_bytes", Json.Int p.msg_bytes);
        ("checksum", Json.String p.checksum);
      ])

let perf_of_json j =
  let* machine = str_field "machine" j in
  let* procs = int_field "procs" j in
  let* time_ns = num_field "time_ns" j in
  let* comp_ns = num_field "comp_ns" j in
  let* comm_ns = num_field "comm_ns" j in
  let* flops = int_field "flops" j in
  let* loads = int_field "loads" j in
  let* stores = int_field "stores" j in
  let* l1_miss_pct = num_field "l1_miss_pct" j in
  let* l2_miss_pct = opt_num_field "l2_miss_pct" j in
  let* messages = int_field "messages" j in
  let* msg_bytes = int_field "msg_bytes" j in
  let* checksum = str_field "checksum" j in
  Ok
    {
      machine;
      procs;
      time_ns;
      comp_ns;
      comm_ns;
      flops;
      loads;
      stores;
      l1_miss_pct;
      l2_miss_pct;
      messages;
      msg_bytes;
      checksum;
    }

let spmd_to_json (s : spmd_summary) =
  Json.Obj
    ([
       ("time_ns", Json.Float s.spmd_time_ns);
       ("supersteps", Json.Int s.supersteps);
       ("matches_model", Json.Bool s.matches_model);
       ("charged_messages", Json.Int s.charged_messages);
       ("charged_bytes", Json.Int s.charged_bytes);
       ("wire_messages", Json.Int s.wire_messages);
       ("wire_bytes", Json.Int s.wire_bytes);
       ("ghost_fills", Json.Int s.ghost_fills);
       ("unmodeled_exchanges", Json.Int s.unmodeled_exchanges);
       ("reduction_messages", Json.Int s.reduction_messages);
     ]
    @ (match s.spmd_l1_miss_pct with
      | Some v -> [ ("l1_miss_pct", Json.Float v) ]
      | None -> [])
    @ [ ("checksum", Json.String s.spmd_checksum); ("report", s.report) ])

let spmd_of_json j =
  let* spmd_time_ns = num_field "time_ns" j in
  let* supersteps = int_field "supersteps" j in
  let* matches_model = bool_field "matches_model" j in
  let* charged_messages = int_field "charged_messages" j in
  let* charged_bytes = int_field "charged_bytes" j in
  let* wire_messages = int_field "wire_messages" j in
  let* wire_bytes = int_field "wire_bytes" j in
  let* ghost_fills = int_field "ghost_fills" j in
  let* unmodeled_exchanges = int_field "unmodeled_exchanges" j in
  let* reduction_messages = int_field "reduction_messages" j in
  let* spmd_l1_miss_pct = opt_num_field "l1_miss_pct" j in
  let* spmd_checksum = str_field "checksum" j in
  let* report = field "report" j in
  Ok
    {
      spmd_time_ns;
      supersteps;
      matches_model;
      charged_messages;
      charged_bytes;
      wire_messages;
      wire_bytes;
      ghost_fills;
      unmodeled_exchanges;
      reduction_messages;
      spmd_l1_miss_pct;
      spmd_checksum;
      report;
    }

(* wall_ns is serialized as a JSON integer: runner wall clocks are far
   below 2^62 ns (about 146 years) *)
let native_to_json (n : native_summary) =
  Json.Obj
    [
      ("checksum", Json.String n.native_checksum);
      ("wall_ns", Json.Int (Int64.to_int n.native_wall_ns));
      ("compiler", Json.String n.native_compiler);
      ("units", Json.Int n.native_units);
      ("matches", Json.Bool n.native_matches);
    ]

let native_of_json j =
  let* native_checksum = str_field "checksum" j in
  let* wall = int_field "wall_ns" j in
  let* native_compiler = str_field "compiler" j in
  let* native_units = int_field "units" j in
  let* native_matches = bool_field "matches" j in
  Ok
    {
      native_checksum;
      native_wall_ns = Int64.of_int wall;
      native_compiler;
      native_units;
      native_matches;
    }

let stats_to_json (s : server_stats) =
  Json.Obj
    [
      ( "requests",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.requests) );
      ( "cache",
        Json.Obj
          [
            ("shards", Json.Int s.cache.shards);
            ("capacity", Json.Int s.cache.cache_capacity);
            ("entries", Json.Int s.cache.entries);
            ("hits", Json.Int s.cache.hits);
            ("misses", Json.Int s.cache.misses);
            ("evictions", Json.Int s.cache.evictions);
            ("insertions", Json.Int s.cache.insertions);
          ] );
      ("compiles_computed", Json.Int s.compiles_computed);
      ("plans_computed", Json.Int s.plans_computed);
      ( "native",
        Json.Obj
          [
            ("built", Json.Int s.natives_built);
            ("reused", Json.Int s.natives_reused);
            ("runs", Json.Int s.native_runs);
          ] );
    ]

let stats_of_json j =
  let* rj = field "requests" j in
  let* requests =
    match rj with
    | Json.Obj kvs ->
        map_result
          (fun (k, v) ->
            let* n = to_int v in
            Ok (k, n))
          kvs
    | _ -> Error "requests must be an object"
  in
  let* cj = field "cache" j in
  let* shards = int_field "shards" cj in
  let* cache_capacity = int_field "capacity" cj in
  let* entries = int_field "entries" cj in
  let* hits = int_field "hits" cj in
  let* misses = int_field "misses" cj in
  let* evictions = int_field "evictions" cj in
  let* insertions = int_field "insertions" cj in
  let* compiles_computed = int_field "compiles_computed" j in
  let* plans_computed = int_field "plans_computed" j in
  let* nj = field "native" j in
  let* natives_built = int_field "built" nj in
  let* natives_reused = int_field "reused" nj in
  let* native_runs = int_field "runs" nj in
  Ok
    {
      requests;
      cache =
        { shards; cache_capacity; entries; hits; misses; evictions; insertions };
      compiles_computed;
      plans_computed;
      natives_built;
      natives_reused;
      native_runs;
    }

let diag_of_json j =
  let* severity = str_field "severity" j in
  let* phase = str_field "phase" j in
  let* message = str_field "message" j in
  let* file = opt_str_field "file" j in
  let* line = opt_int_field "line" j in
  let loc = match (file, line) with Some f, Some l -> Some (f, l) | _ -> None in
  match severity with
  | "error" -> Ok (Diag.error ?loc ~phase message)
  | "warning" -> Ok (Diag.warning ?loc ~phase message)
  | other -> Error (Printf.sprintf "unknown severity %S" other)

let prov_json name = function
  | None -> []
  | Some p -> [ (name, Plan.Driver.provenance_json p) ]

let rec response_to_json = function
  | Compiled { summary; provenance } ->
      Json.Obj
        ([
           ("ok", Json.Bool true);
           ("type", Json.String "compiled");
           ("summary", summary_to_json summary);
         ]
        @ prov_json "provenance" provenance)
  | Ran { summary; provenance; perf; spmd; native } ->
      Json.Obj
        ([
           ("ok", Json.Bool true);
           ("type", Json.String "ran");
           ("summary", summary_to_json summary);
         ]
        @ prov_json "provenance" provenance
        @ [ ("perf", perf_to_json perf) ]
        @ (match spmd with Some s -> [ ("spmd", spmd_to_json s) ] | None -> [])
        @
        match native with
        | Some n -> [ ("native", native_to_json n) ]
        | None -> [])
  | Planned { summary; provenance } ->
      Json.Obj
        ([
           ("ok", Json.Bool true);
           ("type", Json.String "planned");
           ("summary", summary_to_json summary);
         ]
        @ prov_json "provenance" provenance)
  | Batch_reply rs ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("type", Json.String "batch");
          ("responses", Json.List (List.map response_to_json rs));
        ]
  | Stats_reply s ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("type", Json.String "stats");
          ("stats", stats_to_json s);
        ]
  | Shutting_down ->
      Json.Obj [ ("ok", Json.Bool true); ("type", Json.String "shutting-down") ]
  | Failed d ->
      Json.Obj [ ("ok", Json.Bool false); ("error", Diag.to_json d) ]

let rec response_of_json j =
  let* ok = bool_field "ok" j in
  if not ok then
    let* dj = field "error" j in
    let* d = diag_of_json dj in
    Ok (Failed d)
  else
    let* ty = str_field "type" j in
    let prov () =
      match Json.member "provenance" j with
      | None -> Ok None
      | Some pj -> Result.map Option.some (provenance_of_json pj)
    in
    match ty with
    | "compiled" ->
        let* sj = field "summary" j in
        let* summary = summary_of_json sj in
        let* provenance = prov () in
        Ok (Compiled { summary; provenance })
    | "planned" ->
        let* sj = field "summary" j in
        let* summary = summary_of_json sj in
        let* provenance = prov () in
        Ok (Planned { summary; provenance })
    | "ran" ->
        let* sj = field "summary" j in
        let* summary = summary_of_json sj in
        let* provenance = prov () in
        let* pj = field "perf" j in
        let* perf = perf_of_json pj in
        let* spmd =
          match Json.member "spmd" j with
          | None -> Ok None
          | Some sp -> Result.map Option.some (spmd_of_json sp)
        in
        let* native =
          match Json.member "native" j with
          | None -> Ok None
          | Some n -> Result.map Option.some (native_of_json n)
        in
        Ok (Ran { summary; provenance; perf; spmd; native })
    | "batch" ->
        let* rs = Result.bind (field "responses" j) to_list in
        let* responses = map_result response_of_json rs in
        Ok (Batch_reply responses)
    | "stats" ->
        let* sj = field "stats" j in
        let* stats = stats_of_json sj in
        Ok (Stats_reply stats)
    | "shutting-down" -> Ok Shutting_down
    | other -> Error (Printf.sprintf "unknown response type %S" other)
