(** The [zapd] daemon loop: newline-delimited JSON over a Unix-domain
    socket.

    Protocol (grammar in docs/zapd.md): the client sends one
    {!Api.request} as a single JSON line; the server answers with one
    {!Api.response} line.  A connection may carry any number of
    request/response exchanges; it ends when the client closes or
    after a [Shutdown] is acknowledged.  Lines that fail to parse get
    a [Failed] reply (phase ["protocol"]) and bump
    ["service.protocol.error"]; the connection stays open.

    Connections are accepted and served one at a time — [zapc
    --connect] holds a connection only for the duration of one
    exchange, and intra-request parallelism (batches, search costing)
    already uses the engine's domain pool.  Serial accept is also what
    keeps the daemon's observable behavior independent of client
    arrival order. *)

val serve :
  ?on_ready:(unit -> unit) ->
  socket:string ->
  Engine.t ->
  (unit, Obs.Diagnostic.t) result
(** Bind [socket] (an existing stale socket file is replaced), then
    accept/serve until a [Shutdown] request is acknowledged; the
    socket file is unlinked on the way out.  [on_ready] fires once the
    listener is accepting (tests and the daemon's "listening" banner
    hook here). *)
