(* The single authority for every Obs counter key the service layer
   emits.  Counter names elsewhere in the repo grew as ad-hoc string
   literals at the emission site; for the service/cache family the
   literals live here and only here, so a typo cannot silently split
   one logical counter into two, and a unit test can assert the key
   set is collision-free (against itself and against the pre-seeded
   optimizer counters). *)

let prefix = "service."

(* request dispatch, one per Api.request constructor *)
let request_compile = "service.request.compile"
let request_run = "service.request.run"
let request_plan = "service.request.plan"
let request_batch = "service.request.batch"
let request_stats = "service.request.stats"
let request_shutdown = "service.request.shutdown"

(* plan cache *)
let cache_hit = "service.cache.hit"
let cache_miss = "service.cache.miss"
let cache_eviction = "service.cache.eviction"
let cache_insertion = "service.cache.insertion"

(* cold work actually performed (a hit performs neither) *)
let compile_computed = "service.compile.computed"
let plan_computed = "service.plan.computed"

(* native artifact cache: a build is a cold cc compile+link, a reuse
   is an artifact served from the per-plan slot, the store memo, or
   adopted from disk; a run is one execution of a runner *)
let native_build = "service.native.build"
let native_reuse = "service.native.reuse"
let native_run = "service.native.run"

(* protocol-level failures (undecodable request lines) *)
let protocol_error = "service.protocol.error"

let all =
  [
    request_compile;
    request_run;
    request_plan;
    request_batch;
    request_stats;
    request_shutdown;
    cache_hit;
    cache_miss;
    cache_eviction;
    cache_insertion;
    compile_computed;
    plan_computed;
    native_build;
    native_reuse;
    native_run;
    protocol_error;
  ]
