module Diag = Obs.Diagnostic
module Json = Obs.Json

(* One request/response exchange.  Returns [`Continue] to keep the
   connection, [`Close] on client EOF, [`Shutdown] after acknowledging
   a shutdown request. *)
let exchange engine ic oc =
  match input_line ic with
  | exception End_of_file -> `Close
  | line when String.trim line = "" -> `Continue
  | line ->
      let resp, verdict =
        match Api.request_of_line line with
        | Error msg ->
            Engine.note_protocol_error engine;
            (Api.Failed (Diag.error ~phase:"protocol" msg), `Continue)
        | Ok Api.Shutdown ->
            (Engine.handle engine Api.Shutdown, `Shutdown)
        | Ok req -> (Engine.handle engine req, `Continue)
      in
      output_string oc (Json.to_string (Api.response_to_json resp));
      output_char oc '\n';
      flush oc;
      verdict

let serve_connection engine fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match exchange engine ic oc with
    | `Continue -> loop ()
    | (`Close | `Shutdown) as v -> v
  in
  let verdict = try loop () with Sys_error _ -> `Close in
  (try Unix.close fd with Unix.Unix_error _ -> ());
  verdict

let serve ?on_ready ~socket engine =
  (* a stale socket file from a dead daemon would make bind fail;
     replacing it is safe because a live daemon would still own the
     listening descriptor *)
  (try if Sys.file_exists socket then Sys.remove socket with Sys_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX socket);
    Unix.listen fd 16
  with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Diag.errorf ~phase:"serve" "cannot listen on %s: %s" socket
           (Unix.error_message e))
  | () ->
      Option.iter (fun f -> f ()) on_ready;
      let rec accept_loop () =
        match Unix.accept fd with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | client, _ -> (
            match serve_connection engine client with
            | `Shutdown -> ()
            | `Close -> accept_loop ())
      in
      accept_loop ();
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (try Sys.remove socket with Sys_error _ -> ());
      Ok ()
