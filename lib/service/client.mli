(** The client side of the wire: what [zapc --connect] speaks.

    One call, one exchange — connect, send the request line, read the
    response line, close.  All transport and protocol failures come
    back as diagnostics (phase ["connect"]), so the CLI reports a dead
    daemon exactly like any other error. *)

val roundtrip :
  socket:string -> Api.request -> (Api.response, Obs.Diagnostic.t) result
