(** The unified typed request API of the compile-and-run service.

    One request/response vocabulary serves every consumer: [zapc]
    builds a {!request} from its command line and renders the
    {!response} — whether the request was handled by an in-process
    {!Engine} or proxied to a running [zapd] over a Unix-domain socket
    ([--connect]) — and [zapd] speaks exactly these types over its
    wire protocol.  CLI and server cannot drift because neither owns a
    private schema: the JSON codecs here {e are} the protocol
    (newline-delimited JSON objects, one request and one response per
    line; grammar in docs/zapd.md).

    Responses are deliberately free of cache- or timing-dependent
    fields: a response is a pure function of its request and the
    engine configuration, which is what makes replies byte-identical
    across cold/warm caches and at any [--jobs] (the PR 5 determinism
    bar).  The single exception is [native_wall_ns] — a real machine's
    wall clock — inside an explicitly requested {!native_summary}; the
    stats {e shape} (field set and order) still never varies with
    cache state.  Cache effectiveness is observable only through the
    aggregate {!Stats} request. *)

val protocol_version : int
(** Bumped on any incompatible wire change; [zapd] rejects requests
    carrying a different ["v"] field (absent means current). *)

(** {1 Requests} *)

type source =
  | Bench of { name : string; tile : int option }
      (** a built-in benchmark of {!Suite}, with an optional tile-edge
          override *)
  | Text of { name : string; text : string }
      (** zap source text; [name] labels diagnostics (the client's
          file path) *)

type plan_mode = Greedy | Search | Ilp

val plan_mode_name : plan_mode -> string
(** ["greedy"], ["search"] or ["ilp"] — the wire spelling. *)

val plan_mode_of_name : string -> plan_mode option

type compile_opts = {
  level : string;  (** optimization level, any spelling {!Compilers.Driver.level_of_name} accepts *)
  plan : plan_mode;
  config : (string * float) list;  (** config-constant overrides, in override order *)
  merge : bool;  (** run statement merge before the optimizer *)
  simplify : bool;  (** run the scalar back end (constant folding + CSE) *)
  dump_ir : bool;  (** include the rendered array IR in the response *)
  dump_plan : bool;  (** include the rendered fusion/contraction plan *)
  dump_c : bool;  (** include the generated scalar code as C *)
  emit_c : bool;  (** include the complete runnable C translation unit *)
}

val default_compile_opts : compile_opts
(** [level = "c2+f3"], [plan = Greedy], everything else off/empty. *)

type target = { machine : string; procs : int }
(** The machine model a run or search-plan request is priced against
    (any spelling {!machine_of_name} accepts). *)

val default_target : target
(** [{ machine = "t3e"; procs = 1 }]. *)

type request =
  | Compile of { source : source; opts : compile_opts; target : target }
      (** optimize + scalarize (plan cache consulted); [target] only
          matters under [plan = Search] *)
  | Run of {
      source : source;
      opts : compile_opts;
      target : target;
      spmd : bool;  (** also execute on the simulated processor grid *)
      native : bool;
          (** also compile the plan's emitted C to a native runner
              (artifact-cached next to the plan) and execute it *)
    }
  | Plan of { source : source; opts : compile_opts; target : target }
      (** like [Compile] but the response centers on planning: the
          rendered plan is always included, with search provenance
          when [plan = Search] *)
  | Batch of request list
      (** handled across the engine's domain pool; replies in request
          order *)
  | Stats  (** server/cache counters *)
  | Shutdown  (** orderly daemon exit (acknowledged before closing) *)

(** {1 Responses} *)

type summary = {
  program : string;
  level : string;  (** paper spelling of the level actually compiled *)
  arrays_total : int;
  contracted_compiler : int;
  contracted_user : int;
  remaining : int;  (** allocations surviving contraction *)
  footprint_bytes : int;
  contracted : (string * string) list;  (** (array, shape) in decision order *)
  merged_away : string list;  (** arrays eliminated by statement merge *)
  fingerprint : string;  (** {!Ir.Prog.fingerprint} — the cache-key content address *)
  dump_ir : string option;
  dump_plan : string option;
  dump_c : string option;
  emit_c : string option;
}

type perf = {
  machine : string;  (** display name, e.g. ["Cray T3E"] *)
  procs : int;
  time_ns : float;
  comp_ns : float;
  comm_ns : float;
  flops : int;
  loads : int;
  stores : int;
  l1_miss_pct : float;
  l2_miss_pct : float option;
  messages : int;
  msg_bytes : int;
  checksum : string;
}

type spmd_summary = {
  spmd_time_ns : float;
  supersteps : int;
  matches_model : bool;  (** checksum and charged traffic equal the model's *)
  charged_messages : int;
  charged_bytes : int;
  wire_messages : int;
  wire_bytes : int;
  ghost_fills : int;
  unmodeled_exchanges : int;
  reduction_messages : int;
  spmd_l1_miss_pct : float option;
  spmd_checksum : string;
  report : Obs.Json.t;  (** full {!Spmd.report_json} payload, for [--stats] *)
}

type native_summary = {
  native_checksum : string;  (** live-out digest printed by the runner *)
  native_wall_ns : int64;
      (** monotonic nanoseconds over the cluster calls — the one
          timing-dependent field in a [Ran] response; everything else
          is byte-identical cold vs warm *)
  native_compiler : string;  (** toolchain description at build time *)
  native_units : int;  (** cluster translation units in the artifact *)
  native_matches : bool;  (** [native_checksum] equals [perf.checksum] *)
}

type cache_stats = {
  shards : int;
  cache_capacity : int;
  entries : int;
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
}

type server_stats = {
  requests : (string * int) list;
      (** per-verb served counts, keyed by the {!Metrics} counter
          names, sorted *)
  cache : cache_stats;
  compiles_computed : int;
  plans_computed : int;
  natives_built : int;  (** cold cc compile+links actually performed *)
  natives_reused : int;  (** artifacts served without recompiling *)
  native_runs : int;
}

type response =
  | Compiled of {
      summary : summary;
      provenance : Plan.Driver.provenance option;  (** present under [Search] *)
    }
  | Ran of {
      summary : summary;
      provenance : Plan.Driver.provenance option;
      perf : perf;
      spmd : spmd_summary option;
      native : native_summary option;
    }
  | Planned of {
      summary : summary;
      provenance : Plan.Driver.provenance option;
    }
  | Batch_reply of response list
  | Stats_reply of server_stats
  | Shutting_down
  | Failed of Obs.Diagnostic.t

(** {1 Shared validation}

    Both the CLI and the engine resolve names through these, so the
    accepted spellings cannot diverge. *)

val machine_of_name : string -> (Machine.t, Obs.Diagnostic.t) result
(** ["t3e"], ["sp2"]/["sp-2"], ["paragon"], case-insensitively. *)

val level_of_name : string -> (Compilers.Driver.level, Obs.Diagnostic.t) result
(** {!Compilers.Driver.level_of_name} with the CLI's diagnostic. *)

(** {1 Wire codecs}

    Total: every value round-trips ([request_of_json (request_to_json
    r) = Ok r], and likewise for responses — property-tested). *)

val request_to_json : request -> Obs.Json.t
val request_of_json : Obs.Json.t -> (request, string) result
val response_to_json : response -> Obs.Json.t
val response_of_json : Obs.Json.t -> (response, string) result

val request_of_line : string -> (request, string) result
(** Parse one protocol line. *)

val provenance_of_json : Obs.Json.t -> (Plan.Driver.provenance, string) result
(** Inverse of {!Plan.Driver.provenance_json} (used by the client side
    of the wire). *)
