type key = {
  fingerprint : string;
  mode : string;
  machine : string;
  procs : int;
}

let key_to_string k =
  Printf.sprintf "%s/%s@%sx%d" k.fingerprint k.mode k.machine k.procs

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  entries : int;
}

(* One shard: a hash table plus an LRU clock.  Entries carry the tick
   of their last touch; eviction scans for the minimum, which is exact
   LRU at O(shard size) per eviction — shards are bounded at a few
   dozen entries, so the scan is cheaper than maintaining an intrusive
   list and much harder to get wrong under concurrency. *)
type 'v shard = {
  lock : Mutex.t;
  table : (string, 'v entry) Hashtbl.t;
  mutable clock : int;
}

and 'v entry = { value : 'v; mutable tick : int }

type 'v t = {
  shard_arr : 'v shard array;
  per_shard : int;  (* capacity bound of each shard *)
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
  insertions : int Atomic.t;
}

let create ?(shards = 8) ?(capacity = 256) () =
  let shards = max 1 shards in
  let per_shard = max 1 ((capacity + shards - 1) / shards) in
  {
    shard_arr =
      Array.init shards (fun _ ->
          {
            lock = Mutex.create ();
            table = Hashtbl.create (per_shard * 2);
            clock = 0;
          });
    per_shard;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
    insertions = Atomic.make 0;
  }

let shards t = Array.length t.shard_arr

let capacity t = t.per_shard * shards t

(* Stable shard assignment: Support.Hash64 over the canonical key
   string (never [Hashtbl.hash], which is not pinned across compiler
   versions). *)
let shard_of t k =
  let h = Support.Hash64.(mix_string empty (key_to_string k)) in
  Int64.to_int (Int64.unsigned_rem h (Int64.of_int (shards t)))

let bump a = Atomic.incr a

let find t k =
  let s = t.shard_arr.(shard_of t k) in
  let ks = key_to_string k in
  Mutex.protect s.lock (fun () ->
      match Hashtbl.find_opt s.table ks with
      | Some e ->
          s.clock <- s.clock + 1;
          e.tick <- s.clock;
          bump t.hits;
          Some e.value
      | None ->
          bump t.misses;
          None)

let peek t k =
  let s = t.shard_arr.(shard_of t k) in
  let ks = key_to_string k in
  Mutex.protect s.lock (fun () ->
      match Hashtbl.find_opt s.table ks with
      | Some e ->
          s.clock <- s.clock + 1;
          e.tick <- s.clock;
          Some e.value
      | None -> None)

let evict_lru t (s : _ shard) =
  let victim = ref None in
  Hashtbl.iter
    (fun ks e ->
      match !victim with
      | Some (_, best) when best.tick <= e.tick -> ()
      | _ -> victim := Some (ks, e))
    s.table;
  match !victim with
  | Some (ks, _) ->
      Hashtbl.remove s.table ks;
      bump t.evictions
  | None -> ()

let add t k v =
  let s = t.shard_arr.(shard_of t k) in
  let ks = key_to_string k in
  Mutex.protect s.lock (fun () ->
      (* first writer wins: a racing double-miss computed the same
         (deterministic) value twice; re-inserting would only churn
         the LRU order *)
      if not (Hashtbl.mem s.table ks) then begin
        if Hashtbl.length s.table >= t.per_shard then evict_lru t s;
        s.clock <- s.clock + 1;
        Hashtbl.replace s.table ks { value = v; tick = s.clock };
        bump t.insertions
      end)

let find_or_add t k produce =
  match find t k with
  | Some v -> v
  | None ->
      let v = produce () in
      add t k v;
      v

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    evictions = Atomic.get t.evictions;
    insertions = Atomic.get t.insertions;
    entries =
      Array.fold_left
        (fun acc s ->
          acc + Mutex.protect s.lock (fun () -> Hashtbl.length s.table))
        0 t.shard_arr;
  }

let entries_per_shard t =
  Array.to_list
    (Array.map
       (fun s -> Mutex.protect s.lock (fun () -> Hashtbl.length s.table))
       t.shard_arr)
