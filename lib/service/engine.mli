(** The request engine: one [handle] function behind {!Api}.

    Every consumer of the compiler pipeline — [zapc] running locally,
    [zapd] serving a socket, the load bench — goes through
    [handle : t -> Api.request -> Api.response], so the semantics of a
    request cannot depend on who asked.  The engine owns the plan
    cache: compile and plan work is keyed by
    [(Ir.Prog.fingerprint, planning mode, machine, procs)] and
    memoized in a sharded LRU ({!Cache}), so a warm engine serves
    [--plan search] requests without re-running the search (the
    ["service.plan.computed"] counter stays flat — the proof the bench
    and CI smoke assert).  A [Run {native = true}] additionally
    compiles the plan's emitted C into a runner executable,
    content-addressed in a {!Native.Store} and slotted next to the
    plan in the same cache entry, so a warm engine re-executes native
    code with zero [cc] invocations (["service.native.build"] stays
    flat); concurrent first builds of one plan coalesce exactly like
    concurrent compiles.

    Determinism: responses are a pure function of the request — cache
    state, domain count and request interleaving never leak into a
    reply.  Cheap per-request work (simplify, dump rendering, perf
    measurement, SPMD execution) is recomputed on every request; only
    the deterministic compile/plan result is cached.

    Counters are process-global atomics mirrored into [Obs] (under the
    {!Metrics} keys) by {!sync_obs}, which [handle] calls on the
    serving domain whenever a recorder is installed. *)

type t

val create :
  ?shards:int -> ?capacity:int -> ?jobs:int -> ?native_root:string -> unit -> t
(** [shards]/[capacity] size the plan cache (defaults as
    {!Cache.create}); [jobs] (default
    [Support.Pool.default_domains ()]) bounds the domains used for
    [Batch] fan-out and search-planner candidate costing;
    [native_root] (default {!Native.Store.default_root}) is where
    native artifacts are content-addressed — each cache entry carries
    its artifact next to the plan, and a root that survives restarts
    lets a fresh engine adopt previously compiled runners without
    invoking [cc]. *)

val jobs : t -> int

val handle : t -> Api.request -> Api.response
(** Never raises: every failure is a [Failed] response.  [Batch]
    requests fan out over a domain pool ([jobs] wide) with replies in
    request order; nested batches are handled sequentially within
    their worker.  [Shutdown] only answers [Shutting_down] — process
    exit is the server's decision. *)

val compile_ir :
  t ->
  opts:Api.compile_opts ->
  target:Api.target ->
  Ir.Prog.t ->
  ( string * Compilers.Driver.compiled * Plan.Driver.provenance option,
    Obs.Diagnostic.t )
  result
(** In-process compile of an already-elaborated program through the
    same plan cache as a [Compile] request — the entry the lazy
    frontend ([Lazyarr.Trace]) flushes through.  Returns the
    program's fingerprint (the cache key component), the compiled
    result, and search provenance when [opts.plan] is [Search].
    [opts.merge] and [opts.simplify] are ignored (the caller owns any
    program-level rewrites); counters advance exactly as for a served
    request, and [sync_obs] runs before returning. *)

val cache_stats : t -> Cache.stats

val server_stats : t -> Api.server_stats
(** The payload of a [Stats] reply (also available without a request
    round-trip, for the bench). *)

val note_protocol_error : t -> unit
(** Bumped by the server for lines that fail {!Api.request_of_line}. *)

val sync_obs : t -> unit
(** Mirror the global counters into the current domain's [Obs]
    recorder (no-op when none is installed): each {!Metrics} key
    advances by the delta since the last mirror. *)
