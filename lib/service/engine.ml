module Diag = Obs.Diagnostic

let ( let* ) = Result.bind

(* A cache entry is the compiled plan plus a slot for its native
   artifact — the content-addressed runner lives literally next to the
   plan it executes.  The slot holds the artifact for [cc.code] as
   cached, i.e. {e before} any per-request [--simplify] pass:
   simplify is semantics-preserving (it changes only the dumped scalar
   code), so the runner's checksum and the simplified dump agree by
   construction and one artifact serves both spellings of the
   request. *)
type cached = {
  cc : Compilers.Driver.compiled;
  prov : Plan.Driver.provenance option;
  artifact : Native.Store.artifact option Atomic.t;
}

type t = {
  pool_jobs : int;
  cache : cached Cache.t;
  native_store : Native.Store.t;
  natives_built : int Atomic.t;
  natives_reused : int Atomic.t;
  native_runs : int Atomic.t;
  req_compile : int Atomic.t;
  req_run : int Atomic.t;
  req_plan : int Atomic.t;
  req_batch : int Atomic.t;
  req_stats : int Atomic.t;
  req_shutdown : int Atomic.t;
  compiles_computed : int Atomic.t;
  plans_computed : int Atomic.t;
  protocol_errors : int Atomic.t;
  (* last values mirrored into Obs, so each sync advances counters by
     the delta only (serving domain; guarded for safety) *)
  mirror_lock : Mutex.t;
  mirrored : (string, int) Hashtbl.t;
  (* keys whose value is being computed right now: concurrent misses
     on one key coalesce onto the first computer instead of redoing a
     multi-second search per domain *)
  inflight_lock : Mutex.t;
  inflight_cond : Condition.t;
  inflight : (string, unit) Hashtbl.t;
}

let create ?shards ?capacity ?(jobs = Support.Pool.default_domains ())
    ?native_root () =
  {
    pool_jobs = max 1 jobs;
    cache = Cache.create ?shards ?capacity ();
    native_store = Native.Store.create ?root:native_root ();
    natives_built = Atomic.make 0;
    natives_reused = Atomic.make 0;
    native_runs = Atomic.make 0;
    req_compile = Atomic.make 0;
    req_run = Atomic.make 0;
    req_plan = Atomic.make 0;
    req_batch = Atomic.make 0;
    req_stats = Atomic.make 0;
    req_shutdown = Atomic.make 0;
    compiles_computed = Atomic.make 0;
    plans_computed = Atomic.make 0;
    protocol_errors = Atomic.make 0;
    mirror_lock = Mutex.create ();
    mirrored = Hashtbl.create 16;
    inflight_lock = Mutex.create ();
    inflight_cond = Condition.create ();
    inflight = Hashtbl.create 8;
  }

let jobs t = t.pool_jobs

let cache_stats t = Cache.stats t.cache

let note_protocol_error t = Atomic.incr t.protocol_errors

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let counter_values t =
  let cs = Cache.stats t.cache in
  [
    (Metrics.request_compile, Atomic.get t.req_compile);
    (Metrics.request_run, Atomic.get t.req_run);
    (Metrics.request_plan, Atomic.get t.req_plan);
    (Metrics.request_batch, Atomic.get t.req_batch);
    (Metrics.request_stats, Atomic.get t.req_stats);
    (Metrics.request_shutdown, Atomic.get t.req_shutdown);
    (Metrics.cache_hit, cs.Cache.hits);
    (Metrics.cache_miss, cs.Cache.misses);
    (Metrics.cache_eviction, cs.Cache.evictions);
    (Metrics.cache_insertion, cs.Cache.insertions);
    (Metrics.compile_computed, Atomic.get t.compiles_computed);
    (Metrics.plan_computed, Atomic.get t.plans_computed);
    (Metrics.native_build, Atomic.get t.natives_built);
    (Metrics.native_reuse, Atomic.get t.natives_reused);
    (Metrics.native_run, Atomic.get t.native_runs);
    (Metrics.protocol_error, Atomic.get t.protocol_errors);
  ]

let sync_obs t =
  if Obs.enabled () then begin
    Mutex.protect t.mirror_lock (fun () ->
        List.iter
          (fun (key, now) ->
            let before =
              Option.value ~default:0 (Hashtbl.find_opt t.mirrored key)
            in
            if now > before then begin
              Obs.count key (now - before);
              Hashtbl.replace t.mirrored key now
            end)
          (counter_values t))
  end

let server_stats t =
  let cs = Cache.stats t.cache in
  {
    Api.requests =
      List.sort compare
        [
          (Metrics.request_compile, Atomic.get t.req_compile);
          (Metrics.request_run, Atomic.get t.req_run);
          (Metrics.request_plan, Atomic.get t.req_plan);
          (Metrics.request_batch, Atomic.get t.req_batch);
          (Metrics.request_stats, Atomic.get t.req_stats);
          (Metrics.request_shutdown, Atomic.get t.req_shutdown);
        ];
    cache =
      {
        Api.shards = Cache.shards t.cache;
        cache_capacity = Cache.capacity t.cache;
        entries = cs.Cache.entries;
        hits = cs.Cache.hits;
        misses = cs.Cache.misses;
        evictions = cs.Cache.evictions;
        insertions = cs.Cache.insertions;
      };
    compiles_computed = Atomic.get t.compiles_computed;
    plans_computed = Atomic.get t.plans_computed;
    natives_built = Atomic.get t.natives_built;
    natives_reused = Atomic.get t.natives_reused;
    native_runs = Atomic.get t.native_runs;
  }

(* ------------------------------------------------------------------ *)
(* Source resolution                                                   *)
(* ------------------------------------------------------------------ *)

(* Zap frontend exceptions → diagnostics, exactly as zapc reports
   them (the CLI golden tests pin the rendering). *)
let catching_zap ~input f =
  match f () with
  | v -> Ok v
  | exception Zap.Elaborate.Error (line, m) ->
      Error (Diag.error ~loc:(input, line) ~phase:"elaborate" m)
  | exception Zap.Parser.Error (line, m) ->
      Error (Diag.error ~loc:(input, line) ~phase:"parse" m)
  | exception Zap.Lexer.Error (line, m) ->
      Error (Diag.error ~loc:(input, line) ~phase:"lex" m)
  | exception Sys_error m -> Error (Diag.error ~phase:"cli" m)

let read_source (opts : Api.compile_opts) = function
  | Api.Bench { name; tile } -> (
      match Suite.by_name name with
      | Some b ->
          catching_zap ~input:("--bench " ^ name) (fun () ->
              Suite.program ?tile ~config:opts.Api.config b)
      | None ->
          Error
            (Diag.errorf ~phase:"cli" "unknown benchmark %S (have: %s)" name
               (String.concat ", "
                  (List.map (fun b -> b.Suite.name) Suite.all))))
  | Api.Text { name; text } ->
      catching_zap ~input:name (fun () ->
          Zap.Elaborate.compile_string ~config:opts.Api.config text)

(* ------------------------------------------------------------------ *)
(* Compile path (the cached part)                                      *)
(* ------------------------------------------------------------------ *)

let cache_key ~fingerprint ~level ~(opts : Api.compile_opts)
    ~(target : Api.target) =
  match opts.Api.plan with
  | Api.Greedy ->
      (* the greedy ladder never consults the machine model: one entry
         serves every target *)
      Ok
        {
          Cache.fingerprint;
          mode = "greedy:" ^ Compilers.Driver.level_name level;
          machine = "-";
          procs = 0;
        }
  | (Api.Search | Api.Ilp) as mode ->
      let* m = Api.machine_of_name target.Api.machine in
      Ok
        {
          Cache.fingerprint;
          mode = Api.plan_mode_name mode;
          machine = m.Machine.name;
          procs = target.Api.procs;
        }

let compute t ~search_jobs ~level ~(opts : Api.compile_opts)
    ~(target : Api.target) prog =
  match opts.Api.plan with
  | Api.Greedy ->
      Atomic.incr t.compiles_computed;
      let* c =
        Compilers.Driver.compile_opts (Compilers.Driver.opts level) prog
      in
      Ok { cc = c; prov = None; artifact = Atomic.make None }
  | (Api.Search | Api.Ilp) as mode ->
      Atomic.incr t.compiles_computed;
      Atomic.incr t.plans_computed;
      let* m = Api.machine_of_name target.Api.machine in
      let cost =
        Plan.Cost.create
          {
            Plan.Cost.machine = m;
            procs = target.Api.procs;
            opts = Comm.Model.all_on;
          }
          prog
      in
      let search = { Plan.Search.default with Plan.Search.jobs = search_jobs } in
      let* c, prov =
        match mode with
        | Api.Ilp ->
            let ilp = { Plan.Ilp.default with Plan.Ilp.jobs = search_jobs } in
            Plan.Driver.compile_ilp ~search ~ilp ~cost prog
        | _ -> Plan.Driver.compile ~search ~cost prog
      in
      Ok { cc = c; prov = Some prov; artifact = Atomic.make None }

let cached_compile t ~search_jobs ~level ~opts ~target prog =
  let fingerprint = Ir.Prog.fingerprint prog in
  let* key = cache_key ~fingerprint ~level ~opts ~target in
  let* entry =
    match Cache.find t.cache key with
    | Some v -> Ok v
    | None -> (
        (* miss: claim the key, or wait for whichever domain already
           claimed it and take its cached result.  Compute happens
           outside both the shard lock and the inflight lock; only
           successes are cached, so a failing program re-reports its
           diagnostic on every request. *)
        Mutex.lock t.inflight_lock;
        let ks = Cache.key_to_string key in
        while Hashtbl.mem t.inflight ks do
          Condition.wait t.inflight_cond t.inflight_lock
        done;
        (* peek, not find: this lookup was already counted as a miss
           above — a waiter finding the freshly computed value must
           not skew the hit/miss accounting *)
        match Cache.peek t.cache key with
        | Some v ->
            Mutex.unlock t.inflight_lock;
            Ok v
        | None ->
            Hashtbl.add t.inflight ks ();
            Mutex.unlock t.inflight_lock;
            let release () =
              Mutex.lock t.inflight_lock;
              Hashtbl.remove t.inflight ks;
              Condition.broadcast t.inflight_cond;
              Mutex.unlock t.inflight_lock
            in
            Fun.protect ~finally:release (fun () ->
                let* v = compute t ~search_jobs ~level ~opts ~target prog in
                Cache.add t.cache key v;
                Ok v))
  in
  Ok (fingerprint, key, entry)

(* Direct (in-process) entry for callers that already hold an
   elaborated program — the lazy frontend flushes through here.  Same
   cache, same key discipline, same counters as a Compile request;
   skips only the source elaboration and response rendering. *)
let compile_ir t ~(opts : Api.compile_opts) ~target prog =
  let r =
    let* level = Api.level_of_name opts.Api.level in
    let* fingerprint, _key, entry =
      cached_compile t ~search_jobs:t.pool_jobs ~level ~opts ~target prog
    in
    Ok (fingerprint, entry.cc, entry.prov)
  in
  sync_obs t;
  r

(* ------------------------------------------------------------------ *)
(* Rendering helpers (server side, so remote replies carry the exact
   bytes zapc prints)                                                  *)
(* ------------------------------------------------------------------ *)

let render_fmt f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let render_plan (c : Compilers.Driver.compiled) =
  render_fmt (fun ppf ->
      List.iteri
        (fun i (bp : Sir.Scalarize.block_plan) ->
          Format.fprintf ppf "--- block %d ---@." i;
          Format.fprintf ppf "%a@." Core.Partition.pp bp.Sir.Scalarize.partition;
          List.iter
            (fun (x, shape) ->
              Format.fprintf ppf "contract %s -> %s@." x
                (Core.Contraction.shape_name shape))
            bp.Sir.Scalarize.contracted;
          List.iter
            (fun (ri, rep) ->
              Format.fprintf ppf "reduction %d fused into cluster P%d@." ri rep)
            bp.Sir.Scalarize.absorbed)
        c.Compilers.Driver.plan)

let summary_of ~fingerprint ~merged_away ~(opts : Api.compile_opts) prog
    (c : Compilers.Driver.compiled) =
  let nc, nu = Compilers.Driver.contracted_counts c in
  {
    Api.program = prog.Ir.Prog.name;
    level = Compilers.Driver.level_name c.Compilers.Driver.level;
    arrays_total = List.length prog.Ir.Prog.arrays;
    contracted_compiler = nc;
    contracted_user = nu;
    remaining = Compilers.Driver.remaining_arrays c;
    footprint_bytes = Exec.Interp.footprint_bytes c.Compilers.Driver.code;
    contracted =
      List.map
        (fun (x, shape) -> (x, Core.Contraction.shape_name shape))
        c.Compilers.Driver.contracted;
    merged_away;
    fingerprint;
    dump_ir =
      (if opts.Api.dump_ir then
         Some (render_fmt (fun ppf -> Format.fprintf ppf "%a@." Ir.Prog.pp prog))
       else None);
    dump_plan = (if opts.Api.dump_plan then Some (render_plan c) else None);
    dump_c =
      (if opts.Api.dump_c then
         Some
           (render_fmt (fun ppf ->
                Format.fprintf ppf "%a@." Sir.Code.pp_c
                  c.Compilers.Driver.code))
       else None);
    emit_c =
      (if opts.Api.emit_c then
         Some (Sir.Emit_c.to_string c.Compilers.Driver.code)
       else None);
  }

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

(* Elaborate + (merge) + cached compile + per-request finish work —
   the shared body of Compile/Run/Plan. *)
let compiled_of t ~search_jobs ~(opts : Api.compile_opts) ~target source =
  let* prog = read_source opts source in
  let prog, merged_away =
    if opts.Api.merge then Core.Merge.run prog else (prog, [])
  in
  let* level = Api.level_of_name opts.Api.level in
  let* fingerprint, key, entry =
    cached_compile t ~search_jobs ~level ~opts ~target prog
  in
  let c = entry.cc in
  let c =
    if opts.Api.simplify then
      Obs.span "simplify" (fun () ->
          {
            c with
            Compilers.Driver.code = Sir.Simplify.program c.Compilers.Driver.code;
          })
    else c
  in
  Ok
    ( prog,
      summary_of ~fingerprint ~merged_away ~opts prog c,
      c,
      entry.prov,
      (key, entry) )

let perf_of ~(m : Machine.t) ~procs (c : Compilers.Driver.compiled) =
  let cfg = { Comm.Perf.machine = m; procs; comm = Comm.Model.all_on } in
  let r = Comm.Perf.measure cfg c in
  ( r,
    {
      Api.machine = m.Machine.name;
      procs;
      time_ns = r.Comm.Perf.time_ns;
      comp_ns = r.Comm.Perf.comp_ns;
      comm_ns = r.Comm.Perf.comm_ns;
      flops = r.Comm.Perf.flops;
      loads = r.Comm.Perf.loads;
      stores = r.Comm.Perf.stores;
      l1_miss_pct = 100.0 *. Cachesim.Cache.miss_rate r.Comm.Perf.l1;
      l2_miss_pct =
        Option.map
          (fun l2 -> 100.0 *. Cachesim.Cache.miss_rate l2)
          r.Comm.Perf.l2;
      messages = r.Comm.Perf.messages;
      msg_bytes = r.Comm.Perf.msg_bytes;
      checksum = r.Comm.Perf.checksum;
    } )

let spmd_of ~(m : Machine.t) ~procs (r : Comm.Perf.report)
    (c : Compilers.Driver.compiled) =
  match
    Spmd.execute
      { Spmd.machine = m; procs; opts = Comm.Model.all_on; cachesim = true }
      c
  with
  | s ->
      Ok
        {
          Api.spmd_time_ns = s.Spmd.time_ns;
          supersteps = s.Spmd.supersteps;
          matches_model =
            String.equal s.Spmd.checksum r.Comm.Perf.checksum
            && s.Spmd.charged_messages = r.Comm.Perf.messages
            && s.Spmd.charged_bytes = r.Comm.Perf.msg_bytes;
          charged_messages = s.Spmd.charged_messages;
          charged_bytes = s.Spmd.charged_bytes;
          wire_messages = s.Spmd.wire_messages;
          wire_bytes = s.Spmd.wire_bytes;
          ghost_fills = s.Spmd.ghost_fills;
          unmodeled_exchanges = s.Spmd.unmodeled_exchanges;
          reduction_messages = s.Spmd.reduction_messages;
          spmd_l1_miss_pct =
            Option.map
              (fun l1 -> 100.0 *. Cachesim.Cache.miss_rate l1)
              s.Spmd.l1;
          spmd_checksum = s.Spmd.checksum;
          report = Spmd.report_json ~machine:m s;
        }
  | exception Spmd.Unsupported msg ->
      Error (Diag.errorf ~phase:"spmd" "unsupported: %s" msg)
  | exception Spmd.Runtime_error msg -> Error (Diag.error ~phase:"spmd" msg)

(* ------------------------------------------------------------------ *)
(* Native execution                                                    *)
(* ------------------------------------------------------------------ *)

(* The artifact for a cache entry, building it at most once.  Fast
   path: the entry's own slot (a plain atomic read).  Cold path:
   coalesce concurrent builders of the same plan on the inflight table
   (same discipline as compiles, under a "native:"-prefixed key so a
   build never blocks a compile of the same key), then consult the
   content-addressed store — which may still answer without compiling,
   from its memo or from an artifact a previous process left on
   disk. *)
let native_artifact t ~key (entry : cached) =
  let reuse a =
    Atomic.incr t.natives_reused;
    Ok a
  in
  match Atomic.get entry.artifact with
  | Some a -> reuse a
  | None -> (
      Mutex.lock t.inflight_lock;
      let ks = "native:" ^ Cache.key_to_string key in
      while Hashtbl.mem t.inflight ks do
        Condition.wait t.inflight_cond t.inflight_lock
      done;
      match Atomic.get entry.artifact with
      | Some a ->
          Mutex.unlock t.inflight_lock;
          reuse a
      | None ->
          Hashtbl.add t.inflight ks ();
          Mutex.unlock t.inflight_lock;
          let release () =
            Mutex.lock t.inflight_lock;
            Hashtbl.remove t.inflight ks;
            Condition.broadcast t.inflight_cond;
            Mutex.unlock t.inflight_lock
          in
          Fun.protect ~finally:release (fun () ->
              match
                Native.Store.get t.native_store entry.cc.Compilers.Driver.code
              with
              | Ok (a, fresh) ->
                  Atomic.set entry.artifact (Some a);
                  if fresh then begin
                    Atomic.incr t.natives_built;
                    Native.Toolchain.note_obs ()
                  end
                  else Atomic.incr t.natives_reused;
                  Ok a
              | Error e ->
                  Error
                    (Diag.error ~phase:"native"
                       (Native.Build.error_to_string e))))

let native_of t ~key ~(perf : Api.perf) entry =
  let* a = native_artifact t ~key entry in
  Atomic.incr t.native_runs;
  match Native.Build.run_exe a.Native.Store.runner with
  | Ok r ->
      Ok
        {
          Api.native_checksum = r.Native.Build.checksum;
          native_wall_ns = r.Native.Build.wall_ns;
          native_compiler = a.Native.Store.compiler;
          native_units = a.Native.Store.units;
          native_matches =
            String.equal r.Native.Build.checksum perf.Api.checksum;
        }
  | Error e ->
      Error (Diag.error ~phase:"native" (Native.Build.error_to_string e))

let of_result = function Ok r -> r | Error d -> Api.Failed d

(* [search_jobs] is the domain budget of a cold planner search;
   [in_worker] marks execution inside a pool domain, where fanning out
   again would oversubscribe the machine — batch workers therefore run
   nested batches sequentially and their searches single-domain. *)
let rec exec t ~search_jobs ~in_worker req =
  match req with
  | Api.Compile { source; opts; target } ->
      Atomic.incr t.req_compile;
      of_result
        (let* _, summary, _, provenance, _ =
           compiled_of t ~search_jobs ~opts ~target source
         in
         Ok (Api.Compiled { summary; provenance }))
  | Api.Plan { source; opts; target } ->
      Atomic.incr t.req_plan;
      (* a Plan response always carries the rendered plan *)
      let opts = { opts with Api.dump_plan = true } in
      of_result
        (let* _, summary, _, provenance, _ =
           compiled_of t ~search_jobs ~opts ~target source
         in
         Ok (Api.Planned { summary; provenance }))
  | Api.Run { source; opts; target; spmd; native } ->
      Atomic.incr t.req_run;
      of_result
        (let* _, summary, c, provenance, (key, entry) =
           compiled_of t ~search_jobs ~opts ~target source
         in
         let* m = Api.machine_of_name target.Api.machine in
         let r, perf = perf_of ~m ~procs:target.Api.procs c in
         let* spmd =
           if spmd then
             Result.map Option.some (spmd_of ~m ~procs:target.Api.procs r c)
           else Ok None
         in
         let* native =
           if native then
             Result.map Option.some (native_of t ~key ~perf entry)
           else Ok None
         in
         Ok (Api.Ran { summary; provenance; perf; spmd; native }))
  | Api.Batch reqs ->
      Atomic.incr t.req_batch;
      if in_worker then
        Api.Batch_reply (List.map (exec t ~search_jobs ~in_worker:true) reqs)
      else
        (* Pool.map returns in task order, so the reply order is the
           request order regardless of domain scheduling *)
        let domains = max 1 (min t.pool_jobs (List.length reqs)) in
        Api.Batch_reply
          (Support.Pool.map ~domains
             (exec t ~search_jobs:1 ~in_worker:true)
             reqs)
  | Api.Stats ->
      Atomic.incr t.req_stats;
      Api.Stats_reply (server_stats t)
  | Api.Shutdown ->
      Atomic.incr t.req_shutdown;
      Api.Shutting_down

let handle t req =
  let resp = exec t ~search_jobs:t.pool_jobs ~in_worker:false req in
  sync_obs t;
  resp
