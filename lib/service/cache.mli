(** The sharded, LRU-bounded, content-addressed plan cache.

    Amortizing planning across requests is zapd's reason to exist:
    the first request for a program pays the full pipeline (for
    [--plan search], thousands of costed states), every later request
    with the same key is a lookup.  Keys are {e content} addresses —
    {!Ir.Prog.fingerprint} of the normalized program after every
    frontend rewrite — plus the planning regime, so two textually
    different files elaborating to the same IR share an entry, and no
    stale entry can ever be returned (a changed program changes its
    key).

    Concurrency: the table is split into [shards] independently locked
    shards (keys choose a shard by a stable 64-bit hash, so the
    assignment is deterministic across runs and processes); requests
    running on different {!Support.Pool} domains contend only when
    they touch the same shard.  Values must therefore be immutable or
    internally synchronized — compiled plans are.  Eviction is exact
    least-recently-used {e per shard}, bounded at
    [ceil (capacity / shards)] entries each.

    Counters ({!stats}) are process-global atomics, not [Obs] state:
    they must aggregate across pool domains, and domain-local [Obs]
    recorders are not installed in workers.  The engine mirrors them
    into [Obs] counters (under the {!Metrics} keys) at request rate on
    the serving domain. *)

type key = {
  fingerprint : string;  (** [Ir.Prog.fingerprint] of the program compiled *)
  mode : string;
      (** planning regime: ["greedy:<level>"] or ["search"] (see
          {!Engine} for the exact encoding) *)
  machine : string;  (** cost-model target (["-"] when machine-blind) *)
  procs : int;  (** cost-model processor count (0 when machine-blind) *)
}

val key_to_string : key -> string
(** Canonical rendering (also the hashed form):
    ["<fingerprint>/<mode>@<machine>x<procs>"]. *)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  entries : int;  (** current population, summed over shards *)
}

type 'v t

val create : ?shards:int -> ?capacity:int -> unit -> 'v t
(** [shards] (default 8, min 1) independently locked partitions;
    [capacity] (default 256, min [shards]) total entries, split evenly
    across shards. *)

val shards : _ t -> int
val capacity : _ t -> int
(** Effective total bound: per-shard bound × shard count. *)

val shard_of : _ t -> key -> int
(** The shard a key lives in — stable across runs (the assignment
    hashes {!key_to_string} through [Support.Hash64]). *)

val find : 'v t -> key -> 'v option
(** Lookup; counts a hit or a miss and freshens the entry's LRU
    position. *)

val peek : 'v t -> key -> 'v option
(** Like {!find} but touches no hit/miss counter (the LRU position is
    still freshened).  For re-checks that follow a counted {!find} —
    the engine's in-flight coalescing — so one logical lookup is never
    accounted twice. *)

val add : 'v t -> key -> 'v -> unit
(** Insert (first writer wins on a racing double-insert — values for
    one key are deterministic, so dropping the loser is sound),
    evicting the shard's least-recently-used entry when full. *)

val find_or_add : 'v t -> key -> (unit -> 'v) -> 'v
(** [find_or_add t k produce] — {!find}, or [produce ()] + {!add} on a
    miss.  [produce] runs {e outside} the shard lock (planning can
    take seconds; blocking the shard would serialize unrelated
    requests), so two domains missing concurrently both compute;
    determinism of [produce] makes the race benign. *)

val stats : _ t -> stats

val entries_per_shard : _ t -> int list
(** Current population per shard, in shard order (tests assert the
    spread). *)
