(** Centralized Obs counter keys of the service layer.

    Every ["service.*"] counter the daemon, engine and plan cache bump
    is declared here — emission sites reference these values, never
    string literals — and {!all} enumerates the complete set so a unit
    test can assert it is collision-free, both internally and against
    the counter names the rest of the pipeline emits. *)

val prefix : string
(** ["service."] — every key below starts with it (asserted in
    tests), which keeps the family disjoint from the optimizer's
    [fusion.*] / [contraction.*] / [plan.*] counters by construction. *)

val request_compile : string
val request_run : string
val request_plan : string
val request_batch : string
val request_stats : string
val request_shutdown : string

val cache_hit : string
val cache_miss : string
val cache_eviction : string
val cache_insertion : string

val compile_computed : string
(** Cold compiles actually performed (cache hits perform none). *)

val plan_computed : string
(** Cold planner searches actually performed — the expensive work the
    cache amortizes; warm replays leaving this at zero prove search
    requests are served without re-planning. *)

val native_build : string
(** Cold native builds: one cc compile-and-link of a plan's emitted C
    units.  Warm replays leaving this at zero prove native runs are
    served from the artifact cache without recompiling. *)

val native_reuse : string
(** Native artifacts served without a build — from the per-plan slot,
    the store memo, or adopted from a previous process's store. *)

val native_run : string
(** Executions of a native runner (each run is one subprocess). *)

val protocol_error : string

val all : string list
(** Every key above, each exactly once. *)
