module Diag = Obs.Diagnostic
module Json = Obs.Json

let roundtrip ~socket req =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Diag.errorf ~phase:"connect" "cannot connect to %s: %s" socket
           (Unix.error_message e))
  | () -> (
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let finish r =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        r
      in
      match
        output_string oc (Json.to_string (Api.request_to_json req));
        output_char oc '\n';
        flush oc;
        input_line ic
      with
      | exception End_of_file ->
          finish
            (Error
               (Diag.errorf ~phase:"connect"
                  "connection to %s closed before a response arrived" socket))
      | exception Sys_error m -> finish (Error (Diag.error ~phase:"connect" m))
      | line ->
          finish
            (match Json.of_string line with
            | Error m ->
                Error
                  (Diag.errorf ~phase:"connect" "bad response line: %s" m)
            | Ok j -> (
                match Api.response_of_json j with
                | Error m ->
                    Error
                      (Diag.errorf ~phase:"connect" "bad response: %s" m)
                | Ok resp -> Ok resp)))
