(** A fixed-size OCaml 5 domain pool with deterministic, ordered
    result collection.

    The sweep drivers (fuzz campaigns, bench matrices, planner cost
    evaluations) are embarrassingly parallel: many independent tasks,
    one result each, order of *completion* irrelevant but order of
    *reporting* contractual.  [map] runs tasks on a fixed set of
    domains and returns results in task order, so output built from
    them is byte-identical to a sequential run.

    Determinism contract: [map ~domains f tasks = List.map f tasks]
    whenever every [f x] depends only on [x] (no cross-task shared
    mutable state); [domains] changes wall-clock time, never the
    value.  See docs/parallelism.md for what tasks may and may not
    touch. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()] (at least 1): the default for
    every [--jobs] flag. *)

val map : domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~domains f tasks] applies [f] to every task on a pool of
    [domains] domains (the calling domain included; [domains - 1]
    spawned) and returns the results in task order, regardless of
    completion order.  [domains <= 1] or a single task runs
    sequentially in the calling domain.

    Every task runs exactly once even if some raise; the exception of
    the lowest-indexed failing task is re-raised (with its backtrace)
    after all tasks finish.  Spawned domains see their own
    domain-local [Obs] state, not the caller's recorder. *)

val iter : domains:int -> ('a -> unit) -> 'a list -> unit
(** [map] for effects only. *)
