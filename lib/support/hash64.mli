(** A 64-bit incremental mixer: the digest algebra shared by every
    checksum in the repo.

    [Exec.Interp.Digest] (the live-out checksum of all executors, and
    the mixing the emitted C reproduces bit for bit) and
    [Ir.Prog.fingerprint] (the content address of a normalized
    program, the key of the zapd plan cache) both fold their input
    through exactly this function — an LCG step over the running state
    with the new value XOR-folded in:

    [mix d b = d * 6364136223846793005 + (b lxor 1442695040888963407)]

    Floats mix by IEEE-754 bit pattern with every NaN canonicalized to
    the quiet NaN [0x7FF8000000000000]: payloads are not semantically
    observable and legitimately differ between backends (OCaml's [**]
    and libm's [pow] produce different NaN bits), so mixing raw bits
    would make equal values hash unequal. *)

type t = int64

val empty : t

val mix_bits : t -> int64 -> t
(** The raw step; all other [mix_*] reduce to it. *)

val mix_float : t -> float -> t
(** Mix the IEEE-754 bits, NaN-canonicalized (see above). *)

val mix_int : t -> int -> t

val mix_string : t -> string -> t
(** Length-prefixed, so [mix_string (mix_string d "a") "bc"] differs
    from [mix_string (mix_string d "ab") "c"]. *)

val to_hex : t -> string
(** 16 lowercase hex digits. *)
