type t = int64

let empty = 0L

let canonical_nan = 0x7FF8000000000000L

let mix_bits d bits =
  Int64.add (Int64.mul d 6364136223846793005L)
    (Int64.logxor bits 1442695040888963407L)

let mix_float d v =
  mix_bits d (if v <> v then canonical_nan else Int64.bits_of_float v)

let mix_int d i = mix_bits d (Int64.of_int i)

let mix_string d s =
  String.fold_left
    (fun d c -> mix_bits d (Int64.of_int (Char.code c)))
    (mix_int d (String.length s))
    s

let to_hex d = Printf.sprintf "%016Lx" d
