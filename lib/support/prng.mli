(** Deterministic pseudo-random numbers.

    A 64-bit linear-congruential generator in the style of the NAS
    parallel benchmarks' [randlc] (EP is {e defined} in terms of such a
    generator).  Used by workload generators and by the EP benchmark's
    runtime intrinsic so that all experiments are bit-reproducible. *)

type t

val create : int64 -> t
(** [create seed] starts a stream at [seed]. *)

val next_float : t -> float
(** Uniform deviate in [(0, 1)]. *)

val next_int : t -> int -> int
(** [next_int t bound] is {e exactly} uniform in [[0, bound)] (the
    incomplete top interval of the raw 31-bit draw is rejected, so no
    modulo bias). [bound > 0].  May advance the state more than once. *)

val split : t -> t
(** An independent stream derived from the current state; advances the
    parent. *)
