(* A fixed-size domain pool with deterministic, ordered result
   collection.

   Tasks are claimed from a shared atomic cursor (dynamic load
   balancing: a slow task does not hold up the queue behind it), every
   worker writes its result into the slot of the task it claimed, and
   [map] returns the slots in task order — so the *value* of
   [map ~domains f tasks] never depends on [domains] or on the order
   in which domains finish, only [f] and [tasks].

   Exceptions do not kill the pool: a raising task records its
   exception (with backtrace) in its own slot and the worker moves on,
   so every task still runs exactly once.  After the join, the
   exception of the *lowest-indexed* failing task is re-raised — again
   independent of scheduling.

   The calling domain participates as a worker, so [domains = d]
   spawns [d - 1] new domains and [domains = 1] (or a single task)
   degrades to a plain sequential [List.map] in the calling domain —
   the sequential reference path the deterministic contract is defined
   against.  Note that spawned domains have their own domain-local
   state: [Obs] recorders installed in the caller are *not* visible
   inside tasks (see docs/parallelism.md). *)

let default_domains () = max 1 (Domain.recommended_domain_count ())

type 'b slot =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let map ~domains f tasks =
  let arr = Array.of_list tasks in
  let n = Array.length arr in
  let workers = min (max 1 domains) n in
  if workers <= 1 then List.map f tasks
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <-
            (match f arr.(i) with
            | v -> Done v
            | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    (* the caller is worker 0; it must not return before the join *)
    let caller_exn =
      match worker () with
      | () -> None
      | exception e -> Some (e, Printexc.get_raw_backtrace ())
    in
    Array.iter Domain.join spawned;
    (match caller_exn with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list results
    |> List.map (function
         | Done v -> v
         | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
         | Pending -> assert false (* every index below n was claimed *))
  end

let iter ~domains f tasks = ignore (map ~domains f tasks : unit list)
