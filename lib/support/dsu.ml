type t = { parent : int array; mutable sets : int }

let create n = { parent = Array.init n (fun i -> i); sets = n }

let rec find_root p i = if p.(i) = i then i else find_root p p.(i)

let find t i =
  let r = find_root t.parent i in
  (* path compression *)
  let rec compress j =
    if t.parent.(j) <> r then begin
      let next = t.parent.(j) in
      t.parent.(j) <- r;
      compress next
    end
  in
  compress i;
  r

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    (* Keep the minimum element as representative so that merged
       fusible clusters take the smallest cluster index. *)
    let keep = min ra rb and drop = max ra rb in
    t.parent.(drop) <- keep;
    t.sets <- t.sets - 1
  end

let same t a b = find t a = find t b

(* Bucket by representative over a plain array so the result is
   order-stable by construction — groups ascend by representative,
   members ascend within each group — with no detour through a
   Hashtbl whose fold order is unspecified (and differs across OCaml
   versions and hash seeds).  Every consumer (partition printing,
   plan provenance, SPMD setup) relies on this order. *)
let groups t =
  let n = Array.length t.parent in
  let buckets = Array.make n [] in
  for i = n - 1 downto 0 do
    let r = find t i in
    buckets.(r) <- i :: buckets.(r)
  done;
  Array.to_list buckets |> List.filter (fun members -> members <> [])

let copy t = { parent = Array.copy t.parent; sets = t.sets }
let n_sets t = t.sets
