type t = { mutable state : int64 }

(* Constants from Knuth's MMIX LCG; full 64-bit state, top bits used. *)
let a = 6364136223846793005L
let c = 1442695040888963407L

let create seed = { state = (if seed = 0L then 0x9E3779B97F4A7C15L else seed) }

let step t =
  t.state <- Int64.add (Int64.mul a t.state) c;
  t.state

let next_float t =
  let bits = Int64.shift_right_logical (step t) 11 in
  (* 53 random bits -> (0,1); add half-ulp so we never return 0. *)
  (Int64.to_float bits +. 0.5) *. (1.0 /. 9007199254740992.0)

(* Rejection sampling over the 31 extracted bits: plain [bits mod
   bound] over-represents the low residues whenever bound does not
   divide 2^31 (for bound = 3 * 2^29 the smallest third of the range
   would be drawn twice as often).  Rejecting the incomplete top
   interval makes every residue exactly equally likely; at most
   [range mod bound < bound] of the 2^31 draws are rejected, so the
   expected number of steps is below 2 for every bound. *)
let next_int t bound =
  if bound <= 0 then invalid_arg "Prng.next_int: bound must be positive";
  let range = 1 lsl 31 in
  let limit = range - (range mod bound) in
  let rec draw () =
    let bits = Int64.shift_right_logical (step t) 33 |> Int64.to_int in
    if bits < limit then bits mod bound else draw ()
  in
  draw ()

let split t =
  let s = step t in
  create (Int64.logxor s 0xD1B54A32D192ED03L)
