type cfg = {
  max_clusters : int;
  max_nodes : int;
  max_pivots : int;
  eps : float;
  jobs : int;
}

let default =
  { max_clusters = 4000; max_nodes = 400; max_pivots = 200_000; eps = 1e-6; jobs = 1 }

type stats = {
  clusters : int;
  complete : bool;
  nodes : int;
  cuts : int;
  pivots : int;
  proved : bool;
  objective_exact : bool;
  lower_bound_ns : float option;
  greedy_ns : float;
  best_ns : float;
  improved : bool;
}

(* ------------------------------------------------------------------ *)
(* Column enumeration                                                  *)
(* ------------------------------------------------------------------ *)

(* A column is a statement set accepted by check_merge on the trivial
   partition: Definition 5 conditions (i) region equality, (ii) null
   intra flow UDVs, (iv) loop structure — all superset-monotone, so a
   violation prunes the whole extension subtree — plus convexity (the
   Cycle veto: no dependence path leaves the set and returns).

   Convexity is not monotone over arbitrary subsets, but the DFS adds
   statements in ascending index order and ASDG edges always point
   from lower to higher indices, so it IS monotone along this tree: a
   prefix's cycle witness (a path a → j → b with j outside, and hence
   every node's index at most b <= max of the set) can never be
   absorbed by extending with indices above the max.  Conversely every
   ascending prefix of a convex set is convex for the same reason.
   Pruning on Cycle is therefore exact: the DFS emits precisely the
   valid clusters, each once. *)
let enumerate cfg t0 n =
  (* pairwise pre-filter: by downward closure, {i, j} failing a
     monotone condition rules every superset out; a Cycle veto on the
     pair does not (the blocking statement may join the set later) *)
  let compat = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match Core.Partition.check_merge t0 [ i; j ] with
      | Ok () | Error Core.Partition.Cycle ->
          compat.(i).(j) <- true;
          compat.(j).(i) <- true
      | Error _ -> ()
    done
  done;
  let cols = ref [] in
  let count = ref 0 in
  let explored = ref 0 in
  let complete = ref true in
  let explore_cap = 32 * cfg.max_clusters in
  let exception Enough in
  let emit c =
    if !count >= cfg.max_clusters then begin
      complete := false;
      raise Enough
    end;
    incr count;
    cols := c :: !cols
  in
  (* singletons first: whatever the caps do below, the set-partitioning
     LP stays feasible *)
  (try
     for s = 0 to n - 1 do
       emit [ s ]
     done;
     let rec extend rev_members last =
       for next = last + 1 to n - 1 do
         if List.for_all (fun m -> compat.(m).(next)) rev_members then begin
           incr explored;
           if !explored > explore_cap then begin
             complete := false;
             raise Enough
           end;
           let c = List.rev (next :: rev_members) in
           match Core.Partition.check_merge t0 c with
           | Ok () ->
               emit c;
               extend (next :: rev_members) next
           | Error _ -> ()
         end
       done
     in
     for s = 0 to n - 1 do
       extend [ s ] s
     done
   with Enough -> ());
  (Array.of_list (List.rev !cols), !complete)

(* ------------------------------------------------------------------ *)
(* Column pricing                                                      *)
(* ------------------------------------------------------------------ *)

(* Arrays contracted within cluster [c] of the trivial ASDG: exactly
   Core.Contraction.decide's test, specialized to an array whose
   references all fall inside [c].  Because contraction confines every
   reference (and hence every dependence) of the array to one cluster,
   the decision distributes over the clusters of any partition — which
   is what makes the objective separable. *)
let contracted_within t0 g ~candidates c =
  List.filter
    (fun x ->
      Core.Partition.first_ref_is_write t0 x
      &&
      match Core.Asdg.stmts_referencing g x with
      | [] -> false
      | refs ->
          List.for_all (fun i -> List.mem i c) refs
          && Core.Partition.contractible t0 x ~within:c)
    candidates

(* w(C): the cluster's share of Cost.block_cost — reference cost after
   in-cluster contraction plus modeled miss penalties, scaled by the
   block multiplier.  Σ_C w(C) + flop_ns = block_cost − comm_ns. *)
let cluster_weight cost_t t0 g ~block ~candidates c =
  let m = (Cost.cfg cost_t).Cost.machine in
  let mult = float_of_int (Cost.block_mult cost_t ~block) in
  let contracted = contracted_within t0 g ~candidates c in
  let refs =
    List.fold_left
      (fun acc i ->
        let s = Core.Asdg.stmt g i in
        acc
        + (1 + List.length (Ir.Expr.refs s.Ir.Nstmt.rhs))
          * Ir.Region.volume s.Ir.Nstmt.region)
      0 c
  in
  let saved =
    List.fold_left
      (fun acc x -> acc + Cost.block_weight cost_t ~block x)
      0 contracted
  in
  let l1m, l2m = Cost.cluster_misses cost_t ~block c ~contracted in
  mult
  *. ((float_of_int (refs - saved) *. m.Machine.l1_hit_ns)
     +. (l1m *. m.Machine.l1_miss_ns)
     +. (l2m *. m.Machine.l2_miss_ns))

(* ------------------------------------------------------------------ *)
(* Dense two-phase primal simplex                                      *)
(* ------------------------------------------------------------------ *)

(* Minimize c·x over the canonical tableau (a, b, basis).  The z row
   of reduced costs is maintained incrementally.  Entering: Dantzig
   (most positive z_j, lowest index on ties), degrading to Bland's
   rule after a run of degenerate pivots so cycling is impossible;
   leaving: minimum ratio, lowest basis index on ties.  Artificial
   columns ([j >= art_from]) never re-enter.  All deterministic. *)

type lp_outcome = Lp_optimal | Lp_infeasible | Lp_limit

let tol = 1e-9
let feas_tol = 1e-7

let solve_phase a b basis row_active m width ~art_from c ~budget pivots =
  let z = Array.make width 0.0 in
  for j = 0 to width - 1 do
    let s = ref 0.0 in
    for i = 0 to m - 1 do
      if row_active.(i) then s := !s +. (c.(basis.(i)) *. a.(i).(j))
    done;
    z.(j) <- !s -. c.(j)
  done;
  let degenerate = ref 0 in
  let outcome = ref None in
  while !outcome = None do
    if !pivots >= budget then outcome := Some Lp_limit
    else begin
      (* entering column *)
      let enter = ref (-1) in
      if !degenerate > 30 then (
        (* Bland: lowest improving index *)
        let j = ref 0 in
        while !enter < 0 && !j < art_from do
          if z.(!j) > tol then enter := !j;
          incr j
        done)
      else begin
        let bestz = ref tol in
        for j = 0 to art_from - 1 do
          if z.(j) > !bestz then begin
            bestz := z.(j);
            enter := j
          end
        done
      end;
      if !enter < 0 then outcome := Some Lp_optimal
      else begin
        let jc = !enter in
        (* leaving row: min ratio, lowest basis index on ties *)
        let leave = ref (-1) and best = ref infinity in
        for i = 0 to m - 1 do
          if row_active.(i) && a.(i).(jc) > tol then begin
            let r = b.(i) /. a.(i).(jc) in
            if
              r < !best -. 1e-12
              || (r < !best +. 1e-12
                 && (!leave < 0 || basis.(i) < basis.(!leave)))
            then begin
              best := r;
              leave := i
            end
          end
        done;
        if !leave < 0 then
          (* structurally impossible here (columns are bounded by the
             partition rows); treat as a numerical failure *)
          outcome := Some Lp_limit
        else begin
          let ir = !leave in
          incr pivots;
          if b.(ir) < tol then incr degenerate else degenerate := 0;
          let arow = a.(ir) in
          let piv = arow.(jc) in
          for j = 0 to width - 1 do
            arow.(j) <- arow.(j) /. piv
          done;
          b.(ir) <- b.(ir) /. piv;
          for i = 0 to m - 1 do
            if i <> ir && row_active.(i) then begin
              let f = a.(i).(jc) in
              if abs_float f > 1e-12 then begin
                let ai = a.(i) in
                for j = 0 to width - 1 do
                  ai.(j) <- ai.(j) -. (f *. arow.(j))
                done;
                b.(i) <- b.(i) -. (f *. b.(ir))
              end
            end
          done;
          let f = z.(jc) in
          if abs_float f > 1e-12 then
            for j = 0 to width - 1 do
              z.(j) <- z.(j) -. (f *. arow.(j))
            done;
          basis.(ir) <- jc
        end
      end
    end
  done;
  match !outcome with Some o -> o | None -> assert false

(* Solve min w·y, Σ_{C∋i} y_C = 1 (per uncovered stmt), cut rows
   Σ y ≤ rhs, y ≥ 0, over the active columns.  Returns the optimum
   and the primal values of the active columns. *)
let solve_lp ~w ~act_cols ~eq_rows ~cut_rows ~stmt_mem ~budget pivots =
  let n_act = Array.length act_cols in
  let n_eq = Array.length eq_rows in
  let n_cut = Array.length cut_rows in
  let m = n_eq + n_cut in
  let width = n_act + n_cut + n_eq in
  let art_from = n_act + n_cut in
  let a = Array.make_matrix m width 0.0 in
  let b = Array.make m 0.0 in
  let basis = Array.make m 0 in
  let row_active = Array.make m true in
  Array.iteri
    (fun r stmt ->
      Array.iteri
        (fun j id -> if stmt_mem id stmt then a.(r).(j) <- 1.0)
        act_cols;
      a.(r).(art_from + r) <- 1.0;
      b.(r) <- 1.0;
      basis.(r) <- art_from + r)
    eq_rows;
  Array.iteri
    (fun k (members, rhs) ->
      let r = n_eq + k in
      List.iter (fun j -> a.(r).(j) <- 1.0) members;
      a.(r).(n_act + k) <- 1.0;
      b.(r) <- float_of_int rhs;
      basis.(r) <- n_act + k)
    cut_rows;
  (* phase 1: minimize the artificials *)
  let c1 = Array.make width 0.0 in
  for j = art_from to width - 1 do
    c1.(j) <- 1.0
  done;
  match solve_phase a b basis row_active m width ~art_from c1 ~budget pivots with
  | Lp_limit -> (Lp_limit, 0.0, [||])
  | Lp_infeasible -> assert false
  | Lp_optimal ->
      let p1 = ref 0.0 in
      for i = 0 to m - 1 do
        if row_active.(i) && basis.(i) >= art_from then p1 := !p1 +. b.(i)
      done;
      if !p1 > feas_tol then (Lp_infeasible, 0.0, [||])
      else begin
        (* drive artificials out of the basis; a row that cannot be
           freed is redundant and is dropped *)
        for i = 0 to m - 1 do
          if row_active.(i) && basis.(i) >= art_from then begin
            let j = ref 0 and found = ref (-1) in
            while !found < 0 && !j < art_from do
              if abs_float a.(i).(!j) > feas_tol then found := !j;
              incr j
            done;
            match !found with
            | -1 -> row_active.(i) <- false
            | jc ->
                let arow = a.(i) in
                let piv = arow.(jc) in
                for j = 0 to width - 1 do
                  arow.(j) <- arow.(j) /. piv
                done;
                b.(i) <- b.(i) /. piv;
                for i' = 0 to m - 1 do
                  if i' <> i && row_active.(i') then begin
                    let f = a.(i').(jc) in
                    if abs_float f > 1e-12 then begin
                      let ai = a.(i') in
                      for j = 0 to width - 1 do
                        ai.(j) <- ai.(j) -. (f *. arow.(j))
                      done;
                      b.(i') <- b.(i') -. (f *. b.(i))
                    end
                  end
                done;
                basis.(i) <- jc
          end
        done;
        (* phase 2 *)
        let c2 = Array.make width 0.0 in
        Array.iteri (fun j id -> c2.(j) <- w.(id)) act_cols;
        match
          solve_phase a b basis row_active m width ~art_from c2 ~budget pivots
        with
        | Lp_limit -> (Lp_limit, 0.0, [||])
        | Lp_infeasible -> assert false
        | Lp_optimal ->
            let x = Array.make n_act 0.0 in
            let obj = ref 0.0 in
            for i = 0 to m - 1 do
              if row_active.(i) && basis.(i) < n_act then begin
                x.(basis.(i)) <- b.(i);
                obj := !obj +. (c2.(basis.(i)) *. b.(i))
              end
            done;
            (Lp_optimal, !obj, x)
      end

(* ------------------------------------------------------------------ *)
(* Cycle detection on the chosen cluster graph                         *)
(* ------------------------------------------------------------------ *)

(* [chosen] are disjoint covering column ids; returns the ids on one
   condensation cycle, or [] if the partition is acyclic. *)
let find_cycle g cols chosen =
  let n = Core.Asdg.n g in
  let owner = Array.make n (-1) in
  List.iteri
    (fun k id -> List.iter (fun s -> owner.(s) <- k) cols.(id))
    chosen;
  let nk = List.length chosen in
  let adj = Array.make nk [] in
  List.iter
    (fun (i, j) ->
      let a = owner.(i) and b = owner.(j) in
      if a >= 0 && b >= 0 && a <> b && not (List.mem b adj.(a)) then
        adj.(a) <- b :: adj.(a))
    (Core.Asdg.edges g);
  Array.iteri (fun k l -> adj.(k) <- List.sort compare l) adj;
  let color = Array.make nk 0 in
  let cycle = ref [] in
  let rec dfs path k =
    if !cycle = [] then
      if color.(k) = 1 then begin
        (* back edge: the cycle is the path suffix from [k] *)
        let rec suffix = function
          | [] -> []
          | x :: tl -> if x = k then [ x ] else x :: suffix tl
        in
        cycle := suffix path
      end
      else if color.(k) = 0 then begin
        color.(k) <- 1;
        List.iter (fun k' -> dfs (k' :: path) k') adj.(k);
        color.(k) <- 2
      end
  in
  for k = 0 to nk - 1 do
    if !cycle = [] && color.(k) = 0 then dfs [ k ] k
  done;
  let arr = Array.of_list chosen in
  List.map (fun k -> arr.(k)) !cycle

(* ------------------------------------------------------------------ *)
(* Branch and cut                                                      *)
(* ------------------------------------------------------------------ *)

let block ?(probe = fun (_ : Core.Partition.t) -> ()) ?(seeds = []) cfg cost_t
    ~block ~candidates g =
  Obs.span "plan-ilp" @@ fun () ->
  let n = Core.Asdg.n g in
  let t0 = Core.Partition.trivial g in
  let weight_of = cluster_weight cost_t t0 g ~block ~candidates in
  let full_cost p =
    let contracted = Core.Contraction.decide p ~candidates in
    let bp =
      {
        Sir.Scalarize.partition = p;
        contracted = List.map (fun x -> (x, Core.Contraction.Scalar)) contracted;
        absorbed = [];
      }
    in
    (Cost.block_cost cost_t ~block bp).Cost.total_ns
  in
  let separable p =
    List.fold_left
      (fun acc c -> acc +. weight_of c)
      0.0
      (Core.Partition.clusters p)
  in
  (* ---- columns --------------------------------------------------- *)
  let cols, complete = enumerate cfg t0 n in
  let ncols = Array.length cols in
  let w_ns =
    Array.of_list
      (Support.Pool.map ~domains:cfg.jobs weight_of (Array.to_list cols))
  in
  (* scale the objective to O(1) so simplex tolerances are meaningful *)
  let scale = Array.fold_left (fun acc v -> Float.max acc v) 1.0 w_ns in
  let w = Array.map (fun v -> v /. scale) w_ns in
  let stmt_cols = Array.make n [] in
  Array.iteri
    (fun id c -> List.iter (fun s -> stmt_cols.(s) <- id :: stmt_cols.(s)) c)
    cols;
  Array.iteri (fun s l -> stmt_cols.(s) <- List.rev l) stmt_cols;
  let stmt_mem id s = List.mem s cols.(id) in
  (* ---- incumbents ------------------------------------------------ *)
  let greedy_p =
    Core.Fusion.for_locality (Core.Fusion.for_contraction ~candidates g)
  in
  let seeds = greedy_p :: seeds in
  let best_sep = ref infinity in
  List.iter
    (fun p ->
      let s = separable p in
      if s < !best_sep -. cfg.eps then best_sep := s)
    (t0 :: seeds);
  let ilp_found = ref None in
  (* ---- search ---------------------------------------------------- *)
  let cuts = ref [] in
  let ncuts = ref 0 in
  let pivots = ref 0 in
  let nodes = ref 0 in
  let aborted = ref false in
  let root_lb = ref neg_infinity in
  let prune_tol = Float.max (cfg.eps /. scale) 1e-9 in
  let stack = ref [ (Bytes.make ncols '\000', []) ] in
  while !stack <> [] && not !aborted do
    match !stack with
    | [] -> ()
    | (fixed0, fixed1) :: rest ->
        stack := rest;
        incr nodes;
        if !nodes > cfg.max_nodes then aborted := true
        else begin
          let covered = Array.make n false in
          List.iter
            (fun id -> List.iter (fun s -> covered.(s) <- true) cols.(id))
            fixed1;
          let offset =
            List.fold_left (fun acc id -> acc +. w.(id)) 0.0 fixed1
          in
          let lpcol = Array.make ncols (-1) in
          let act = ref [] in
          for id = ncols - 1 downto 0 do
            if
              Bytes.get fixed0 id = '\000'
              && not (List.exists (fun s -> covered.(s)) cols.(id))
            then act := id :: !act
          done;
          let act_cols = Array.of_list !act in
          Array.iteri (fun j id -> lpcol.(id) <- j) act_cols;
          let eq_rows =
            Array.of_list
              (List.filter (fun s -> not covered.(s)) (List.init n Fun.id))
          in
          let infeasible = ref false in
          let cut_rows =
            List.filter_map
              (fun cut ->
                let base = Array.length cut - 1 in
                let n1 =
                  Array.fold_left
                    (fun acc id -> if List.mem id fixed1 then acc + 1 else acc)
                    0 cut
                in
                let rhs = base - n1 in
                if rhs < 0 then begin
                  infeasible := true;
                  None
                end
                else
                  let members =
                    Array.to_list cut
                    |> List.filter_map (fun id ->
                           if lpcol.(id) >= 0 then Some lpcol.(id) else None)
                  in
                  if List.length members <= rhs then None
                  else Some (members, rhs))
              !cuts
            |> Array.of_list
          in
          if not !infeasible then begin
            match
              solve_lp ~w ~act_cols ~eq_rows ~cut_rows ~stmt_mem
                ~budget:cfg.max_pivots pivots
            with
            | Lp_limit, _, _ -> aborted := true
            | Lp_infeasible, _, _ -> ()
            | Lp_optimal, obj, x ->
                let bound = obj +. offset in
                if fixed1 = [] && Bytes.index_opt fixed0 '\001' = None then
                  root_lb := Float.max !root_lb bound;
                if bound >= (!best_sep /. scale) -. prune_tol then ()
                else begin
                  let fractional = ref (-1) in
                  let best_frac = ref 0.5 in
                  Array.iteri
                    (fun j v ->
                      if v > 1e-6 && v < 1.0 -. 1e-6 then begin
                        let d = abs_float (v -. 0.5) in
                        if d < !best_frac -. 1e-12 then begin
                          best_frac := d;
                          fractional := j
                        end
                      end)
                    x;
                  if !fractional < 0 then begin
                    (* integral: a candidate partition *)
                    let chosen =
                      fixed1
                      @ (Array.to_list
                           (Array.mapi
                              (fun j v ->
                                if v > 1.0 -. 1e-6 then Some act_cols.(j)
                                else None)
                              x)
                        |> List.filter_map Fun.id)
                      |> List.sort compare
                    in
                    match find_cycle g cols chosen with
                    | [] ->
                        let p =
                          List.fold_left
                            (fun p id ->
                              if List.length cols.(id) > 1 then
                                Core.Partition.merge p cols.(id)
                              else p)
                            (Core.Partition.trivial g)
                            chosen
                        in
                        let s = bound *. scale in
                        if s < !best_sep -. cfg.eps then begin
                          best_sep := s;
                          ilp_found := Some p
                        end
                    | cycle ->
                        (* lazy acyclicity cut, globally valid: not all
                           clusters of a condensation cycle can coexist *)
                        cuts := Array.of_list cycle :: !cuts;
                        incr ncuts;
                        stack := (fixed0, fixed1) :: !stack
                  end
                  else begin
                    let id = act_cols.(!fractional) in
                    let f0 = Bytes.copy fixed0 in
                    Bytes.set f0 id '\001';
                    (* explore the fix-to-1 child first: it reaches
                       integral incumbents sooner *)
                    stack :=
                      (fixed0, id :: fixed1) :: (f0, fixed1) :: !stack
                  end
                end
          end
        end
  done;
  let proved = complete && not !aborted in
  (* ---- final ranking on the full model --------------------------- *)
  let key p =
    String.concat "."
      (List.init n (fun i -> string_of_int (Core.Partition.cluster_of p i)))
  in
  let candidates_p =
    let all =
      (match !ilp_found with Some p -> [ p ] | None -> [])
      @ seeds @ [ t0 ]
    in
    let seen = Hashtbl.create 8 in
    List.filter
      (fun p ->
        let k = key p in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      all
  in
  let ranked =
    List.map
      (fun p ->
        probe p;
        (full_cost p, p))
      candidates_p
  in
  let chosen_ns, chosen =
    List.fold_left
      (fun (bn, bp) (ns, p) ->
        if ns < bn -. cfg.eps then (ns, p) else (bn, bp))
      (List.hd ranked) (List.tl ranked)
  in
  let greedy_ns = full_cost greedy_p in
  let flop_ns =
    (* plan-invariant arithmetic term, for absolute lower bounds *)
    let contracted = Core.Contraction.decide t0 ~candidates in
    let bp =
      {
        Sir.Scalarize.partition = t0;
        contracted = List.map (fun x -> (x, Core.Contraction.Scalar)) contracted;
        absorbed = [];
      }
    in
    (Cost.block_cost cost_t ~block bp).Cost.flop_ns
  in
  let lower_bound_ns =
    if not complete then None
    else if proved then Some (!best_sep +. flop_ns)
    else if !root_lb > neg_infinity then Some ((!root_lb *. scale) +. flop_ns)
    else None
  in
  if Obs.enabled () then begin
    Obs.count "plan.ilp.columns" ncols;
    Obs.count "plan.ilp.nodes" !nodes;
    Obs.count "plan.ilp.cuts" !ncuts;
    Obs.count "plan.ilp.pivots" !pivots;
    Obs.count "plan.ilp.proved" (if proved then 1 else 0)
  end;
  ( chosen,
    {
      clusters = ncols;
      complete;
      nodes = !nodes;
      cuts = !ncuts;
      pivots = !pivots;
      proved;
      objective_exact = (Cost.cfg cost_t).Cost.procs <= 1;
      lower_bound_ns;
      greedy_ns;
      best_ns = chosen_ns;
      improved = chosen_ns < greedy_ns -. cfg.eps;
    } )
