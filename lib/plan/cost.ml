open Ir

type cfg = {
  machine : Machine.t;
  procs : int;
  opts : Comm.Model.opts;
}

type breakdown = {
  flop_ns : float;
  ref_ns : float;
  miss_ns : float;
  comm_ns : float;
  total_ns : float;
  contracted_elems : int;
}

let zero =
  {
    flop_ns = 0.0;
    ref_ns = 0.0;
    miss_ns = 0.0;
    comm_ns = 0.0;
    total_ns = 0.0;
    contracted_elems = 0;
  }

let add a b =
  {
    flop_ns = a.flop_ns +. b.flop_ns;
    ref_ns = a.ref_ns +. b.ref_ns;
    miss_ns = a.miss_ns +. b.miss_ns;
    comm_ns = a.comm_ns +. b.comm_ns;
    total_ns = a.total_ns +. b.total_ns;
    contracted_elems = a.contracted_elems + b.contracted_elems;
  }

type block_info = {
  stmts : Nstmt.t list;
  mult : int;
  base_refs : int;  (** element references per execution, before contraction *)
  flops : int;  (** floating-point operations per execution *)
}

type t = {
  cfg : cfg;
  blocks : block_info array;
  red_execs : int;
  base : (string, int) Hashtbl.t;  (** array -> simulated base address *)
  memo : (string, float * float) Hashtbl.t;
      (** cluster probe signature -> (L1, L2) misses per execution *)
  memo_lock : Mutex.t;
      (** [memo] is the only mutable field touched after [create];
          parallel plan search costs sibling states from several
          domains against one [t] *)
}

(* Probing a sweep at more lines than this buys no new information:
   interleaved unit-stride streams behave periodically once every set
   of the cache has been visited, so measured miss rates are scaled
   linearly up to the real line count. *)
let probe_cap = 512

let rec expr_flops (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Svar _ | Expr.Ref _ | Expr.Idx _ -> 0
  | Expr.Unop (_, a) -> 1 + expr_flops a
  | Expr.Binop (_, a, b) -> 1 + expr_flops a + expr_flops b
  | Expr.Select (c, a, b) -> 1 + expr_flops c + expr_flops a + expr_flops b

let create cfg prog =
  let blocks = Prog.blocks prog in
  let mults, red_execs = Comm.Model.block_multipliers prog in
  let info =
    List.mapi
      (fun bi stmts ->
        let base_refs =
          List.fold_left
            (fun acc (s : Nstmt.t) ->
              acc
              + (1 + List.length (Expr.refs s.rhs)) * Region.volume s.region)
            0 stmts
        in
        let flops =
          List.fold_left
            (fun acc (s : Nstmt.t) ->
              acc + (expr_flops s.rhs * Region.volume s.region))
            0 stmts
        in
        { stmts; mult = mults.(bi); base_refs; flops })
      blocks
  in
  (* Deterministic simulated layout: arrays in declaration order, each
     base aligned well past both line sizes, with a guard line between
     allocations so distinct arrays never share a cache line. *)
  let base = Hashtbl.create 16 in
  let align = 256 in
  let next = ref 0 in
  List.iter
    (fun (a : Prog.array_info) ->
      Hashtbl.replace base a.Prog.name !next;
      let bytes = (8 * Region.volume a.Prog.bounds) + align in
      next := (!next + bytes + align - 1) / align * align)
    prog.Prog.arrays;
  {
    cfg;
    blocks = Array.of_list info;
    red_execs;
    base;
    memo = Hashtbl.create 256;
    memo_lock = Mutex.create ();
  }

let cfg t = t.cfg
let block_mult t ~block = t.blocks.(block).mult

let block_weight t ~block x =
  List.fold_left
    (fun acc (s : Nstmt.t) ->
      acc + (Nstmt.ref_count s x * Region.volume s.region))
    0 t.blocks.(block).stmts

let lines_of_volume t vol =
  let line = t.cfg.machine.Machine.l1.Cachesim.Cache.line_bytes in
  max 1 (((8 * vol) + line - 1) / line)

let scalar_contracted (bp : Sir.Scalarize.block_plan) =
  List.filter_map
    (function
      | x, Core.Contraction.Scalar -> Some x
      | _, Core.Contraction.Keep_dims _ -> None)
    bp.Sir.Scalarize.contracted

(* One fused cluster = one loop nest sweeping the cluster's region:
   feed an interleaved line-granular stream (one stream per reference,
   contracted arrays excluded) through the machine's cache hierarchy
   and scale the measured misses to the sweep's real line count. *)
let cluster_misses t ~block members ~contracted =
  let info = t.blocks.(block) in
  let stmts_arr = Array.of_list info.stmts in
  let stmts = List.map (fun i -> stmts_arr.(i)) members in
  let refs =
    List.concat_map
      (fun (s : Nstmt.t) ->
        (s.Nstmt.lhs, true)
        :: List.map (fun (x, _) -> (x, false)) (Expr.refs s.Nstmt.rhs))
      stmts
    |> List.filter (fun (x, _) -> not (List.mem x contracted))
  in
  match (refs, stmts) with
  | [], _ | _, [] -> (0.0, 0.0)
  | _, (s0 : Nstmt.t) :: _ ->
      let vol = Region.volume s0.Nstmt.region in
      let m = t.cfg.machine in
      let line = m.Machine.l1.Cachesim.Cache.line_bytes in
      let lines = lines_of_volume t vol in
      let key =
        Printf.sprintf "%d|%s|%s" block
          (String.concat "," (List.map string_of_int members))
          (String.concat ","
             (List.sort compare
                (List.filter
                   (fun x -> List.exists (fun (s : Nstmt.t) -> Nstmt.ref_count s x > 0) stmts)
                   contracted)))
      in
      (* the lock covers only the table; a missed lookup is recomputed
         outside it — two domains may race the same probe, but the
         result is deterministic, so the duplicate work is benign *)
      (match Mutex.protect t.memo_lock (fun () -> Hashtbl.find_opt t.memo key) with
      | Some r -> r
      | None ->
          let probe = min lines probe_cap in
          let hier =
            Cachesim.Cache.Hierarchy.create ~l1:m.Machine.l1 ?l2:m.Machine.l2 ()
          in
          for i = 0 to probe - 1 do
            List.iter
              (fun (x, write) ->
                let b = try Hashtbl.find t.base x with Not_found -> 0 in
                Cachesim.Cache.Hierarchy.access hier
                  ~addr:(b + (i * line))
                  ~write)
              refs
          done;
          let scale = float_of_int lines /. float_of_int probe in
          let l1 =
            float_of_int
              (Cachesim.Cache.Hierarchy.l1_stats hier).Cachesim.Cache.misses
            *. scale
          in
          let l2 =
            match Cachesim.Cache.Hierarchy.l2_stats hier with
            | Some s -> float_of_int s.Cachesim.Cache.misses *. scale
            | None -> 0.0
          in
          Mutex.protect t.memo_lock (fun () ->
              Hashtbl.replace t.memo key (l1, l2));
          (l1, l2))

let block_cost t ~block (bp : Sir.Scalarize.block_plan) =
  let info = t.blocks.(block) in
  let m = t.cfg.machine in
  let p = bp.Sir.Scalarize.partition in
  let contracted = scalar_contracted bp in
  let saved =
    List.fold_left (fun acc x -> acc + block_weight t ~block x) 0 contracted
  in
  let refs = info.base_refs - saved in
  let l1m, l2m =
    List.fold_left
      (fun (a1, a2) cluster ->
        let s1, s2 = cluster_misses t ~block cluster ~contracted in
        (a1 +. s1, a2 +. s2))
      (0.0, 0.0) (Core.Partition.clusters p)
  in
  let comm =
    Comm.Model.block_comm ~machine:m ~procs:t.cfg.procs ~opts:t.cfg.opts
      info.stmts bp
  in
  let fmult = float_of_int info.mult in
  let flop_ns = fmult *. float_of_int info.flops *. m.Machine.flop_ns in
  let ref_ns = fmult *. float_of_int refs *. m.Machine.l1_hit_ns in
  let miss_ns =
    fmult
    *. ((l1m *. m.Machine.l1_miss_ns) +. (l2m *. m.Machine.l2_miss_ns))
  in
  let comm_ns = fmult *. comm.Comm.Model.effective_ns in
  {
    flop_ns;
    ref_ns;
    miss_ns;
    comm_ns;
    total_ns = flop_ns +. ref_ns +. miss_ns +. comm_ns;
    contracted_elems = saved;
  }

let plan_cost t plan =
  let sum =
    List.fold_left add zero
      (List.mapi (fun bi bp -> block_cost t ~block:bi bp) plan)
  in
  (* reduction combining trees, exactly as Comm.Model.analyze charges
     them; plan-invariant, kept so totals line up with the model *)
  let m = t.cfg.machine in
  let stages = Comm.Model.reduction_stages t.cfg.procs in
  let red =
    float_of_int (t.red_execs * stages)
    *. (m.Machine.msg_latency_ns +. (8.0 *. m.Machine.byte_ns))
  in
  { sum with comm_ns = sum.comm_ns +. red; total_ns = sum.total_ns +. red }

let compiled_cost t (c : Compilers.Driver.compiled) =
  plan_cost t c.Compilers.Driver.plan
