(** The planner's unified cost model.

    Scores a candidate fusion/contraction plan in one currency —
    modeled nanoseconds on a target machine — so that the three forces
    the paper keeps in separate figures (contraction benefit, cache
    locality, communication) become directly comparable and a search
    can optimize their sum.  For one basic block under a candidate
    [Sir.Scalarize.block_plan]:

    - {e reference cost}: every array element reference pays the L1
      hit time; scalar-contracting an array removes its references
      (the paper's reference weight, [Core.Weights], in ns);
    - {e memory-system cost}: each fusible cluster's footprint is swept
      through the target machine's cache hierarchy ([Cachesim]) at
      line granularity — one interleaved unit-stride stream per
      referenced array, contracted arrays excluded — and the measured
      L1/L2 misses are charged at the machine's miss penalties.
      Fusing two clusters that read the same array turns one of the
      two sweeps into hits; over-fusing past the cache's associativity
      surfaces as conflict misses (the paper's f4 pollution);
    - {e communication cost}: [Comm.Model.block_comm] on the same
      block plan — border exchanges after vectorization, redundancy
      elimination, combining and pipelining.

    Block costs are weighted by the block's execution multiplier
    (enclosing sequential loops), matching [Comm.Model.analyze].
    Per-cluster cache probes are memoized on (block, cluster
    statement set, contracted arrays referenced), so a search that
    reshuffles the same clusters re-pays nothing.

    The model deliberately prices {e sweeps}, not absolute seconds:
    each cluster is costed as if its working set starts uncached
    (per-cluster compulsory misses), which is the regime the paper's
    size-scaled experiments run in.  See docs/planner.md. *)

type cfg = {
  machine : Machine.t;
  procs : int;
  opts : Comm.Model.opts;
}

type breakdown = {
  flop_ns : float;  (** arithmetic (plan-invariant; kept for absolute totals) *)
  ref_ns : float;  (** element references × L1 hit time, after contraction *)
  miss_ns : float;  (** modeled cache-miss penalties from the cluster sweeps *)
  comm_ns : float;  (** effective communication time *)
  total_ns : float;  (** the planner's objective: sum of the above *)
  contracted_elems : int;
      (** element references eliminated by scalar contraction
          ([Core.Weights] currency; partial contractions count 0) *)
}

val zero : breakdown
val add : breakdown -> breakdown -> breakdown

type t
(** A memoizing evaluator for one program on one machine
    configuration. *)

val create : cfg -> Ir.Prog.t -> t

val cfg : t -> cfg
val block_mult : t -> block:int -> int
(** The block's execution multiplier (see
    [Comm.Model.block_multipliers]). *)

val block_weight : t -> block:int -> string -> int
(** Reference weight of an array within the block: Σ references ×
    region volume over the block's statements (equals
    [Core.Weights.weight] on the block's ASDG). *)

val lines_of_volume : t -> int -> int
(** Cache lines one sweep of a region of the given element volume
    touches on this machine's L1 geometry (≥ 1). *)

val cluster_misses : t -> block:int -> int list -> contracted:string list -> float * float
(** [(l1_misses, l2_misses)] of one fused cluster per block execution:
    the cluster's statements (by block-local index) swept as one loop
    nest through the machine's cache hierarchy, references to
    [contracted] arrays excluded.  Memoized; safe to call from
    parallel cost workers.  This is the per-cluster term {!block_cost}
    sums — exposed so the ILP planner can price clusters
    individually (the model is separable per cluster except for
    communication; see docs/planner.md). *)

val block_cost : t -> block:int -> Sir.Scalarize.block_plan -> breakdown
(** Cost of the block under a candidate plan, scaled by the block's
    execution multiplier.  Pure given [create]'s program: safe to call
    from a search loop. *)

val plan_cost : t -> Sir.Scalarize.plan -> breakdown
(** Whole-program cost: block costs plus the reduction combining
    trees (plan-invariant), as in [Comm.Model.analyze]. *)

val compiled_cost : t -> Compilers.Driver.compiled -> breakdown
(** [plan_cost] of a compiled configuration's plan — used to compare
    the greedy ladder against the searched plan on equal terms. *)
