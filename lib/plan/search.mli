(** Search over fusion partitions (the planner's engine).

    The paper's FUSION-FOR-CONTRACTION (Fig. 3) is a greedy pass in
    decreasing reference-weight order, and §5.2 concedes it can miss
    profitable partitions when candidates conflict.  This module
    searches the partition space instead:

    - {e states} are valid Definition 5 partitions by construction —
      every move is a merge set vetted by [Core.Partition.check_merge],
      closed under [Core.Partition.grow] so no inter-cluster cycle can
      form;
    - {e moves} are (a) the Figure-3 array moves (all clusters
      referencing an array, grown), and (b) pairwise cluster merges
      (grown), which reach the partial fusions the greedy all-or-
      nothing per-array rule cannot;
    - {e branch and bound}: states are expanded best-lower-bound-first;
      the bound is admissible — current cost minus an optimistic
      estimate of what is still winnable (remaining contractable
      weight in ns, one-sweep-per-array cache floor, and the state's
      entire communication bill), so the reported optimum is exact
      whenever the search terminates within budget;
    - {e memoization}: states are canonicalized by their cluster-
      representative vector and never costed twice;
    - {e beam fallback}: past [max_states] cost evaluations the search
      degrades to a width-[beam_width] beam (large blocks — tomcatv,
      SP — stay tractable, at the price of the optimality certificate).

    The incumbent is seeded with the greedy [c2+f3] partition (fusion
    for contraction + fusion for locality), so the result is {e never}
    worse than the paper's algorithm under the cost model.  All
    tie-breaks compare canonical keys, making the search fully
    deterministic. *)

type cfg = {
  max_states : int;  (** cost evaluations before the beam fallback *)
  beam_width : int;
  eps : float;  (** ns tolerance below which costs count as equal *)
  jobs : int;
      (** domains costing sibling candidate states in parallel via
          {!Support.Pool}; the result, stats and provenance are
          identical at any value (see docs/parallelism.md) *)
}

val default : cfg
(** [{ max_states = 4000; beam_width = 4; eps = 1e-6; jobs = 1 }] *)

type stats = {
  expanded : int;  (** states whose children were generated *)
  generated : int;  (** states costed (including seeds) *)
  pruned : int;  (** children discarded by the admissible bound *)
  deduped : int;  (** children skipped as already-visited states *)
  beam_rounds : int;  (** 0 when branch and bound completed in budget *)
  greedy_ns : float;  (** block cost of the greedy c2+f3 partition *)
  best_ns : float;  (** block cost of the returned partition *)
  improved : bool;  (** [best_ns] strictly beats [greedy_ns] *)
}

val block :
  ?probe:(Core.Partition.t -> unit) ->
  cfg ->
  Cost.t ->
  block:int ->
  candidates:string list ->
  Core.Asdg.t ->
  Core.Partition.t * stats
(** Search the fusion partitions of one basic block.  [candidates]
    are the block's contraction candidates (as handed to the greedy
    fuser); the cost of a state is [Cost.block_cost] of the partition
    with [Core.Contraction.decide]'s scalar contractions.  [probe] is
    called on every state the search costs (tests use it to assert
    Definition 5 validity of the whole explored space).  Emits
    [plan.*] Obs counters and a ["plan-search"] span. *)
