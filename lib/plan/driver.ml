type block_report = {
  block : int;
  stats : Search.stats;
}

type ilp_report = {
  iblock : int;
  istats : Ilp.stats;
}

type provenance = {
  strategy : string;
  machine : string;
  procs : int;
  greedy_total_ns : float;
  search_total_ns : float;
  ilp_total_ns : float option;
  chosen_total_ns : float;
  fallback : bool;
  proved_optimal : bool option;
  certified_lb_ns : float option;
  blocks : block_report list;
  ilp_blocks : ilp_report list;
}

(* greedy c2+f3 and the searched configuration, each compiled end to
   end, plus the per-block search reports and partitions (the latter
   seed the ILP). *)
let greedy_and_search ~search ~cost prog =
  match Compilers.Driver.(compile_opts default_opts) prog with
  | Error d -> Error d
  | Ok greedy -> (
      let reports = ref [] in
      let partitions = ref [] in
      let searched =
        Compilers.Driver.(compile_custom_opts default_opts) prog
          ~partition:(fun ~block ~compiler ~user g ->
            let p, stats =
              Search.block search cost ~block ~candidates:(compiler @ user) g
            in
            reports := { block; stats } :: !reports;
            partitions := (block, p) :: !partitions;
            p)
      in
      match searched with
      | Error d -> Error d
      | Ok searched ->
          Ok
            ( greedy,
              searched,
              List.sort (fun a b -> compare a.block b.block) (List.rev !reports),
              !partitions ))

let compile ?(search = Search.default) ~cost prog =
  match greedy_and_search ~search ~cost prog with
  | Error d -> Error d
  | Ok (greedy, searched, reports, _) ->
      let g_ns = (Cost.compiled_cost cost greedy).Cost.total_ns in
      let s_ns = (Cost.compiled_cost cost searched).Cost.total_ns in
      (* the block search could not see reduction absorption; keep
         the searched plan only if it still prices no worse *)
      let fallback = s_ns > g_ns +. search.Search.eps in
      if fallback then Obs.count "plan.fallback-greedy" 1;
      let chosen, strategy, chosen_ns =
        if fallback then (greedy, "greedy", g_ns) else (searched, "search", s_ns)
      in
      let c = Cost.cfg cost in
      Ok
        ( chosen,
          {
            strategy;
            machine = c.Cost.machine.Machine.name;
            procs = c.Cost.procs;
            greedy_total_ns = g_ns;
            search_total_ns = s_ns;
            ilp_total_ns = None;
            chosen_total_ns = chosen_ns;
            fallback;
            proved_optimal = None;
            certified_lb_ns = None;
            blocks = reports;
            ilp_blocks = [];
          } )

let compile_ilp ?(search = Search.default) ?(ilp = Ilp.default) ~cost prog =
  match greedy_and_search ~search ~cost prog with
  | Error d -> Error d
  | Ok (greedy, searched, reports, partitions) -> (
      let ilp_reports = ref [] in
      let solved =
        Compilers.Driver.(compile_custom_opts default_opts) prog
          ~partition:(fun ~block ~compiler ~user g ->
            let seeds =
              match List.assoc_opt block partitions with
              | Some p -> [ p ]
              | None -> []
            in
            let p, istats =
              Ilp.block ilp cost ~block ~candidates:(compiler @ user) ~seeds g
            in
            ilp_reports := { iblock = block; istats } :: !ilp_reports;
            p)
      in
      match solved with
      | Error d -> Error d
      | Ok solved ->
          let g_ns = (Cost.compiled_cost cost greedy).Cost.total_ns in
          let s_ns = (Cost.compiled_cost cost searched).Cost.total_ns in
          let i_ns = (Cost.compiled_cost cost solved).Cost.total_ns in
          let eps = search.Search.eps in
          (* rank on the full end-to-end model (reduction absorption
             included), preferring the stronger certificate on ties:
             the chosen plan is never worse than search or greedy *)
          let chosen, strategy, chosen_ns =
            if i_ns <= s_ns +. eps && i_ns <= g_ns +. eps then
              (solved, "ilp", i_ns)
            else if s_ns <= g_ns +. eps then (searched, "search", s_ns)
            else (greedy, "greedy", g_ns)
          in
          let fallback = strategy <> "ilp" in
          if fallback then Obs.count "plan.ilp.fallback" 1;
          let ilp_blocks =
            List.sort (fun a b -> compare a.iblock b.iblock)
              (List.rev !ilp_reports)
          in
          let proved_optimal =
            strategy = "ilp"
            && List.for_all
                 (fun r -> r.istats.Ilp.proved && r.istats.Ilp.objective_exact)
                 ilp_blocks
          in
          (* whole-program certified lower bound: the per-block LP
             bounds plus the plan-invariant reduction-tree term.
             Certifies the pure Definition-5 plan space (scalar
             contraction, no reduction absorption). *)
          let certified_lb_ns =
            let lbs =
              List.map (fun r -> r.istats.Ilp.lower_bound_ns) ilp_blocks
            in
            if List.for_all Option.is_some lbs then begin
              let block_lb =
                List.fold_left
                  (fun acc lb -> acc +. Option.get lb)
                  0.0 lbs
              in
              let plan = greedy.Compilers.Driver.plan in
              let block_sum =
                List.fold_left ( +. ) 0.0
                  (List.mapi
                     (fun bi bp ->
                       (Cost.block_cost cost ~block:bi bp).Cost.total_ns)
                     plan)
              in
              let red_ns =
                (Cost.plan_cost cost plan).Cost.total_ns -. block_sum
              in
              Some (block_lb +. red_ns)
            end
            else None
          in
          let c = Cost.cfg cost in
          Ok
            ( chosen,
              {
                strategy;
                machine = c.Cost.machine.Machine.name;
                procs = c.Cost.procs;
                greedy_total_ns = g_ns;
                search_total_ns = s_ns;
                ilp_total_ns = Some i_ns;
                chosen_total_ns = chosen_ns;
                fallback;
                proved_optimal = Some proved_optimal;
                certified_lb_ns;
                blocks = reports;
                ilp_blocks;
              } ))

let provenance_json p =
  let open Obs.Json in
  let opt_float = function Some v -> Float v | None -> Null in
  let opt_bool = function Some v -> Bool v | None -> Null in
  Obj
    ([
       ("strategy", String p.strategy);
       ("machine", String p.machine);
       ("procs", Int p.procs);
       ("greedy_total_ns", Float p.greedy_total_ns);
       ("search_total_ns", Float p.search_total_ns);
       ("chosen_total_ns", Float p.chosen_total_ns);
       ("fallback", Bool p.fallback);
     ]
    @ (match p.ilp_total_ns with
      | None -> []
      | Some _ ->
          [
            ("ilp_total_ns", opt_float p.ilp_total_ns);
            ("proved_optimal", opt_bool p.proved_optimal);
            ("certified_lb_ns", opt_float p.certified_lb_ns);
          ])
    @ [
        ( "blocks",
          List
            (List.map
               (fun r ->
                 Obj
                   [
                     ("block", Int r.block);
                     ("expanded", Int r.stats.Search.expanded);
                     ("generated", Int r.stats.Search.generated);
                     ("pruned", Int r.stats.Search.pruned);
                     ("deduped", Int r.stats.Search.deduped);
                     ("beam_rounds", Int r.stats.Search.beam_rounds);
                     ("greedy_ns", Float r.stats.Search.greedy_ns);
                     ("best_ns", Float r.stats.Search.best_ns);
                     ("improved", Bool r.stats.Search.improved);
                   ])
               p.blocks) );
      ]
    @
    match p.ilp_blocks with
    | [] -> []
    | ilp_blocks ->
        [
          ( "ilp_blocks",
            List
              (List.map
                 (fun r ->
                   Obj
                     [
                       ("block", Int r.iblock);
                       ("clusters", Int r.istats.Ilp.clusters);
                       ("complete", Bool r.istats.Ilp.complete);
                       ("nodes", Int r.istats.Ilp.nodes);
                       ("cuts", Int r.istats.Ilp.cuts);
                       ("pivots", Int r.istats.Ilp.pivots);
                       ("proved", Bool r.istats.Ilp.proved);
                       ( "objective_exact",
                         Bool r.istats.Ilp.objective_exact );
                       ( "lower_bound_ns",
                         opt_float r.istats.Ilp.lower_bound_ns );
                       ("greedy_ns", Float r.istats.Ilp.greedy_ns);
                       ("best_ns", Float r.istats.Ilp.best_ns);
                       ("improved", Bool r.istats.Ilp.improved);
                     ])
                 ilp_blocks) );
        ])
