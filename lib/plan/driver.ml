type block_report = {
  block : int;
  stats : Search.stats;
}

type provenance = {
  strategy : string;
  machine : string;
  procs : int;
  greedy_total_ns : float;
  search_total_ns : float;
  chosen_total_ns : float;
  fallback : bool;
  blocks : block_report list;
}

let compile ?(search = Search.default) ~cost prog =
  match Compilers.Driver.(compile_opts default_opts) prog with
  | Error d -> Error d
  | Ok greedy -> (
      let reports = ref [] in
      let searched =
        Compilers.Driver.(compile_custom_opts default_opts) prog
          ~partition:(fun ~block ~compiler ~user g ->
            let p, stats =
              Search.block search cost ~block ~candidates:(compiler @ user) g
            in
            reports := { block; stats } :: !reports;
            p)
      in
      match searched with
      | Error d -> Error d
      | Ok searched ->
          let g_ns = (Cost.compiled_cost cost greedy).Cost.total_ns in
          let s_ns = (Cost.compiled_cost cost searched).Cost.total_ns in
          (* the block search could not see reduction absorption; keep
             the searched plan only if it still prices no worse *)
          let fallback = s_ns > g_ns +. search.Search.eps in
          if fallback then Obs.count "plan.fallback-greedy" 1;
          let chosen, strategy, chosen_ns =
            if fallback then (greedy, "greedy", g_ns)
            else (searched, "search", s_ns)
          in
          let c = Cost.cfg cost in
          Ok
            ( chosen,
              {
                strategy;
                machine = c.Cost.machine.Machine.name;
                procs = c.Cost.procs;
                greedy_total_ns = g_ns;
                search_total_ns = s_ns;
                chosen_total_ns = chosen_ns;
                fallback;
                blocks =
                  List.sort
                    (fun a b -> compare a.block b.block)
                    (List.rev !reports);
              } ))

let provenance_json p =
  let open Obs.Json in
  Obj
    [
      ("strategy", String p.strategy);
      ("machine", String p.machine);
      ("procs", Int p.procs);
      ("greedy_total_ns", Float p.greedy_total_ns);
      ("search_total_ns", Float p.search_total_ns);
      ("chosen_total_ns", Float p.chosen_total_ns);
      ("fallback", Bool p.fallback);
      ( "blocks",
        List
          (List.map
             (fun r ->
               Obj
                 [
                   ("block", Int r.block);
                   ("expanded", Int r.stats.Search.expanded);
                   ("generated", Int r.stats.Search.generated);
                   ("pruned", Int r.stats.Search.pruned);
                   ("deduped", Int r.stats.Search.deduped);
                   ("beam_rounds", Int r.stats.Search.beam_rounds);
                   ("greedy_ns", Float r.stats.Search.greedy_ns);
                   ("best_ns", Float r.stats.Search.best_ns);
                   ("improved", Bool r.stats.Search.improved);
                 ])
             p.blocks) );
    ]
