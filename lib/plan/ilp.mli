(** ILP-optimal fusion/contraction partitioning (the planner's
    certificate engine).

    {!Search} explores the partition space heuristically and loses its
    optimality certificate the moment the beam fallback kicks in.
    This module closes that gap: it formulates the Definition 5
    partition problem as a 0/1 integer linear program and solves it
    with a dependency-free branch-and-cut built on a two-phase primal
    simplex — pure OCaml, no external solver.

    {2 Encoding}

    The literature encodes fusion with one 0/1 variable per fusible
    edge ("Fusing Gathers with Integer Linear Programming"); that
    works when the objective is linear in the edges.  Ours is not: the
    cache-simulation term of {!Cost} charges a {e cluster} for the
    conflict misses of its interleaved sweeps, which is not a sum of
    pairwise contributions.  We therefore solve the column (set
    partitioning) closure of the edge encoding — one 0/1 variable
    [y_C] per {e valid cluster} [C], where the edge variable of the
    classical encoding is recovered as [x_ij = Σ_{C ⊇ {i,j}} y_C]:

    - {e columns}: every statement set accepted by
      [Core.Partition.check_merge] on the trivial partition.  That
      check is exactly Definition 5 conditions (i), (ii) and (iv) plus
      convexity (no dependence path leaving and re-entering the set —
      such a set can belong to {e no} acyclic partition).  Conditions
      (i)/(ii)/(iv) are superset-monotone, so a depth-first extension
      enumerates all columns with pruning; convexity is not monotone
      and only filters emission, never extension;
    - {e rows}: one equality [Σ_{C ∋ i} y_C = 1] per statement — a
      chosen set of clusters is a partition;
    - {e acyclicity}: condition (iii) cannot be captured by the rows
      (two individually convex clusters can still form a condensation
      cycle), so it is enforced by {e lazy cuts}: when the incumbent
      LP solution is integral but its cluster graph has a cycle
      [C_1 → … → C_k → C_1], the globally valid cut
      [Σ y_{C_j} ≤ k - 1] is added and the node re-solved;
    - {e objective}: the exact per-cluster cost
      [w(C) = mult · (refs_C · l1_hit + l1m(C) · l1_miss + l2m(C) ·
      l2_miss)], with [refs_C] the element references of [C]'s
      statements minus the reference weight of every array contracted
      {e within} [C].  Contraction is per-cluster decidable: an array
      whose references all fall in [C] is contracted iff its first
      reference writes and all its dependence UDVs are null — the
      same test as [Core.Contraction.decide], which therefore
      distributes over the chosen clusters.  Summed over a partition
      this reproduces {!Cost.block_cost} exactly, {e except} for the
      communication term, which couples clusters through pipelining
      windows.  At [procs <= 1] communication is identically zero and
      the objective is exact ({!stats.objective_exact}); at higher
      [procs] the ILP optimizes the comm-free part and the final
      choice among candidate partitions is made on the full model.

    {2 Certificates}

    [proved = true] means: cluster enumeration completed under
    [max_clusters], and branch and bound closed under [max_nodes] /
    [max_pivots] — the returned partition minimizes the separable
    objective over {e all} valid partitions.  When additionally
    [objective_exact], that is the true block-cost optimum.
    [lower_bound_ns] is a certified lower bound on the block cost of
    {e every} valid partition (the root LP relaxation value plus the
    plan-invariant flop term); it is [None] when enumeration was
    capped, because an incomplete column set relaxes nothing.

    The incumbent is seeded with the greedy [c2+f3] partition and any
    [seeds] the caller passes (the driver passes {!Search}'s result),
    and every candidate is ranked by the {e full} {!Cost.block_cost}:
    the returned partition is never worse than any seed under the
    model, whether or not the solve completed.  Everything —
    enumeration order, simplex pivoting (Dantzig with lowest-index
    tie-breaks, Bland after degeneracy), branching (most-fractional,
    lowest-index ties) — is deterministic, and [jobs] only
    parallelizes column pricing through [Support.Pool] (task-order
    results), so the outcome is independent of [jobs]. *)

type cfg = {
  max_clusters : int;  (** column cap; exceeding it voids the certificate *)
  max_nodes : int;  (** branch-and-bound node budget *)
  max_pivots : int;  (** total simplex pivot budget across all LP solves *)
  eps : float;  (** ns tolerance below which costs count as equal *)
  jobs : int;  (** domains pricing columns in parallel (result-invariant) *)
}

val default : cfg
(** [{ max_clusters = 4000; max_nodes = 400; max_pivots = 200_000;
      eps = 1e-6; jobs = 1 }] *)

type stats = {
  clusters : int;  (** columns enumerated (valid convex clusters) *)
  complete : bool;  (** enumeration finished under [max_clusters] *)
  nodes : int;  (** branch-and-bound nodes solved *)
  cuts : int;  (** acyclicity cuts added *)
  pivots : int;  (** simplex pivots spent *)
  proved : bool;
      (** the returned partition provably minimizes the separable
          objective over all valid partitions *)
  objective_exact : bool;
      (** [procs <= 1]: no communication term, so the separable
          objective {e is} the block cost and [proved] certifies true
          optimality *)
  lower_bound_ns : float option;
      (** certified lower bound on any valid partition's block cost;
          [None] when enumeration was capped *)
  greedy_ns : float;  (** block cost of the greedy c2+f3 partition *)
  best_ns : float;  (** block cost of the returned partition *)
  improved : bool;  (** [best_ns] strictly beats [greedy_ns] *)
}

val block :
  ?probe:(Core.Partition.t -> unit) ->
  ?seeds:Core.Partition.t list ->
  cfg ->
  Cost.t ->
  block:int ->
  candidates:string list ->
  Core.Asdg.t ->
  Core.Partition.t * stats
(** Solve one basic block, as {!Search.block} does: [candidates] are
    the block's contraction candidates, the cost of a partition is
    [Cost.block_cost] under [Core.Contraction.decide]'s scalar
    contractions.  [probe] is called on every {e candidate partition}
    ranked for the final answer (seeds, greedy, and each integral
    acyclic ILP solution) — tests use it to assert Definition 5
    validity.  [seeds] are alternative incumbents (must be partitions
    of [g]).  Emits [plan.ilp.*] Obs counters and a ["plan-ilp"]
    span. *)
