type cfg = {
  max_states : int;
  beam_width : int;
  eps : float;
  jobs : int;
}

let default = { max_states = 4000; beam_width = 4; eps = 1e-6; jobs = 1 }

type stats = {
  expanded : int;
  generated : int;
  pruned : int;
  deduped : int;
  beam_rounds : int;
  greedy_ns : float;
  best_ns : float;
  improved : bool;
}

type state = {
  p : Core.Partition.t;
  key : string;
  cost : Cost.breakdown;
  bound : float;
}

(* Canonical state identity: the cluster-representative vector.  Two
   partitions with the same vector are the same partition, so this
   both memoizes and makes every tie-break deterministic. *)
let key_of n p =
  String.concat "."
    (List.init n (fun i -> string_of_int (Core.Partition.cluster_of p i)))

(* Admissible optimism: from state [p] a descendant can at best
   (a) contract every remaining first-ref-is-write candidate — saving
   its reference weight in L1 hits plus every sweep it still causes;
   (b) fuse all clusters referencing an array down to one sweep; and
   (c) lose the entire communication bill.  Overestimating the
   achievable savings only weakens pruning, never correctness. *)
let bound_of cost_t ~block ~candidates g p (bp : Sir.Scalarize.block_plan)
    (cost : Cost.breakdown) =
  let c = Cost.cfg cost_t in
  let m = c.Cost.machine in
  let mult = float_of_int (Cost.block_mult cost_t ~block) in
  let contracted = List.map fst bp.Sir.Scalarize.contracted in
  let miss_ub = m.Machine.l1_miss_ns +. m.Machine.l2_miss_ns in
  let sweep_info x =
    let refs = Core.Asdg.stmts_referencing g x in
    let k =
      List.length
        (List.sort_uniq compare (List.map (Core.Partition.cluster_of p) refs))
    in
    let vol =
      match refs with
      | i :: _ -> Ir.Region.volume (Core.Asdg.stmt g i).Ir.Nstmt.region
      | [] -> 0
    in
    (k, Cost.lines_of_volume cost_t vol)
  in
  let h_contract =
    List.fold_left
      (fun acc x ->
        if List.mem x contracted then acc
        else if not (Core.Partition.first_ref_is_write p x) then acc
        else
          let k, lines = sweep_info x in
          acc
          +. (float_of_int (Cost.block_weight cost_t ~block x)
             *. m.Machine.l1_hit_ns)
          +. (float_of_int (k * lines) *. miss_ub))
      0.0 candidates
  in
  let h_locality =
    List.fold_left
      (fun acc x ->
        if List.mem x contracted then acc
        else
          let k, lines = sweep_info x in
          if k <= 1 then acc
          else acc +. (float_of_int ((k - 1) * lines) *. miss_ub))
      0.0 (Core.Asdg.vars g)
  in
  cost.Cost.total_ns
  -. ((mult *. (h_contract +. h_locality)) +. cost.Cost.comm_ns)

(* All legal merge moves from [p]: the Figure-3 array moves plus
   pairwise cluster merges, each closed under GROW (so acyclicity is
   preserved by construction) and vetted by check_merge. *)
let moves g p =
  let closure c =
    let c = List.sort_uniq compare c in
    List.sort_uniq compare (c @ Core.Partition.grow p c)
  in
  let array_moves =
    List.filter_map
      (fun x ->
        let refs = Core.Asdg.stmts_referencing g x in
        match
          List.sort_uniq compare (List.map (Core.Partition.cluster_of p) refs)
        with
        | [] | [ _ ] -> None
        | c -> Some (closure c))
      (Core.Asdg.vars g)
  in
  let reps = List.map List.hd (Core.Partition.clusters p) in
  let pair_moves =
    List.concat_map
      (fun r1 ->
        List.filter_map
          (fun r2 -> if r2 <= r1 then None else Some (closure [ r1; r2 ]))
          reps)
      reps
  in
  List.sort_uniq compare (array_moves @ pair_moves)
  |> List.filter (fun c ->
         List.length c > 1 && Core.Partition.check_merge p c = Ok ())

module Frontier = Map.Make (struct
  type t = float * int

  let compare = compare
end)

let block ?(probe = fun (_ : Core.Partition.t) -> ()) cfg cost_t ~block
    ~candidates g =
  Obs.span "plan-search" @@ fun () ->
  let n = Core.Asdg.n g in
  (* pure: safe to evaluate from any pool worker (Cost.t serializes its
     memo internally; everything else it touches is read-only) *)
  let mk p =
    let contracted = Core.Contraction.decide p ~candidates in
    let bp =
      {
        Sir.Scalarize.partition = p;
        contracted = List.map (fun x -> (x, Core.Contraction.Scalar)) contracted;
        absorbed = [];
      }
    in
    let cost = Cost.block_cost cost_t ~block bp in
    let bound = bound_of cost_t ~block ~candidates g p bp cost in
    { p; key = key_of n p; cost; bound }
  in
  let expanded = ref 0
  and generated = ref 0
  and pruned = ref 0
  and deduped = ref 0
  and beam_rounds = ref 0 in
  let cost_state p =
    probe p;
    incr generated;
    mk p
  in
  (* seeds: the trivial partition (search root) and the paper's greedy
     c2+f3 result, which becomes the incumbent floor *)
  let trivial = cost_state (Core.Partition.trivial g) in
  let greedy_p =
    Core.Fusion.for_locality (Core.Fusion.for_contraction ~candidates g)
  in
  let greedy =
    if key_of n greedy_p = trivial.key then trivial else cost_state greedy_p
  in
  let incumbent =
    ref
      (if trivial.cost.Cost.total_ns < greedy.cost.Cost.total_ns -. cfg.eps
       then trivial
       else greedy)
  in
  let visited = Hashtbl.create 256 in
  Hashtbl.replace visited trivial.key ();
  Hashtbl.replace visited greedy.key ();
  let tick = ref 0 in
  let frontier = ref Frontier.empty in
  let push st =
    incr tick;
    frontier := Frontier.add (st.bound, !tick) st !frontier
  in
  push trivial;
  if greedy.key <> trivial.key then push greedy;
  (* Children of a state, deduplicated against everything seen.  The
     sequential prefix (move enumeration, keying, visited bookkeeping,
     probe, stat counters) fixes exactly which states get costed and in
     what order; only the pure costing fans out over the pool, and
     Pool.map returns in task order — so stats and tie-breaks are
     independent of [cfg.jobs]. *)
  let children st =
    let fresh =
      List.filter_map
        (fun c ->
          let p' = Core.Partition.merge st.p c in
          let key = key_of n p' in
          if Hashtbl.mem visited key then begin
            incr deduped;
            None
          end
          else begin
            Hashtbl.replace visited key ();
            probe p';
            incr generated;
            Some p'
          end)
        (moves g st.p)
    in
    Support.Pool.map ~domains:cfg.jobs mk fresh
  in
  (* ---- branch and bound ------------------------------------------ *)
  let budget_left () = !generated < cfg.max_states in
  let exhausted = ref false in
  while (not !exhausted) && (not (Frontier.is_empty !frontier)) && budget_left ()
  do
    let k, st = Frontier.min_binding !frontier in
    frontier := Frontier.remove k !frontier;
    if st.bound >= !incumbent.cost.Cost.total_ns -. cfg.eps then begin
      (* best-first: every remaining bound is at least this one *)
      pruned := !pruned + 1 + Frontier.cardinal !frontier;
      frontier := Frontier.empty;
      exhausted := true
    end
    else begin
      incr expanded;
      List.iter
        (fun st' ->
          if st'.cost.Cost.total_ns < !incumbent.cost.Cost.total_ns -. cfg.eps
          then incumbent := st';
          if st'.bound < !incumbent.cost.Cost.total_ns -. cfg.eps then push st'
          else incr pruned)
        (children st)
    end
  done;
  (* ---- beam fallback --------------------------------------------- *)
  if not (Frontier.is_empty !frontier) then begin
    Obs.count "plan.beam-cutoffs" 1;
    (* eps-canonical order: costs are compared at [cfg.eps] granularity
       so that states the search already treats as equal-cost are
       ranked by their canonical cluster-rep key, not by sub-eps float
       noise — which states survive [take beam_width] must not depend
       on how the costs were accumulated.  Quantizing keeps the
       comparison a total order (lexicographic on a pure function of
       the state), unlike an eps-tolerant float comparison, which is
       not transitive. *)
    let quantize ns = if cfg.eps > 0.0 then Float.round (ns /. cfg.eps) else ns in
    let by_cost a b =
      compare
        (quantize a.cost.Cost.total_ns, a.key)
        (quantize b.cost.Cost.total_ns, b.key)
    in
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    let seeds =
      Frontier.fold (fun _ st acc -> st :: acc) !frontier []
      |> List.cons !incumbent |> List.sort by_cost
      |> take cfg.beam_width
    in
    frontier := Frontier.empty;
    let beam = ref seeds in
    let continue = ref true in
    (* a block of n statements admits at most n-1 merges from any
       state, so n rounds always reach a fixpoint *)
    while !continue && !beam_rounds < n && !generated < 4 * cfg.max_states do
      incr beam_rounds;
      let kids = List.concat_map children !beam in
      List.iter
        (fun st ->
          if st.cost.Cost.total_ns < !incumbent.cost.Cost.total_ns -. cfg.eps
          then incumbent := st)
        kids;
      match List.sort by_cost kids with
      | [] -> continue := false
      | sorted -> beam := take cfg.beam_width sorted
    done
  end;
  if Obs.enabled () then begin
    Obs.count "plan.nodes-expanded" !expanded;
    Obs.count "plan.states-generated" !generated;
    Obs.count "plan.nodes-pruned" !pruned;
    Obs.count "plan.states-deduped" !deduped;
    Obs.count "plan.beam-rounds" !beam_rounds
  end;
  let best = !incumbent in
  ( best.p,
    {
      expanded = !expanded;
      generated = !generated;
      pruned = !pruned;
      deduped = !deduped;
      beam_rounds = !beam_rounds;
      greedy_ns = greedy.cost.Cost.total_ns;
      best_ns = best.cost.Cost.total_ns;
      improved = best.cost.Cost.total_ns < greedy.cost.Cost.total_ns -. cfg.eps;
    } )
