(** The planner's front door: compile a program with the search-based
    or ILP-based fusion/contraction strategy and report how it
    compares with the paper's greedy ladder.

    {!compile} runs compilation twice — the greedy [c2+f3] level, and
    [Compilers.Driver.compile_custom_opts] with {!Search.block} choosing
    each block's partition — and both final plans (after reduction
    absorption and the contraction decision, which the per-block
    search cannot see) are priced with {!Cost.plan_cost}.  If the
    searched whole-program plan prices worse than greedy's, the greedy
    result is returned instead (counter ["plan.fallback-greedy"]):
    the planner is never worse than the paper's algorithm under its
    own model, by construction.

    {!compile_ilp} adds a third configuration solved per block by
    {!Ilp.block} (seeded with the searched partitions, so the ILP
    incumbent starts at least as good as the search result) and
    returns the cheapest of the three end to end, preferring the
    stronger certificate on ties: [ilp_total_ns <= search_total_ns <=
    greedy]-or-better holds on every cell by construction.  The
    provenance then records per-block solver certificates and, when
    every block's column enumeration completed, a whole-program
    certified lower bound on the pure Definition-5 plan space. *)

type block_report = {
  block : int;
  stats : Search.stats;
}

type ilp_report = {
  iblock : int;
  istats : Ilp.stats;
}

type provenance = {
  strategy : string;  (** ["ilp"], ["search"] or ["greedy"] — the plan returned *)
  machine : string;
  procs : int;
  greedy_total_ns : float;  (** whole-program cost of the greedy c2+f3 plan *)
  search_total_ns : float;  (** whole-program cost of the searched plan *)
  ilp_total_ns : float option;  (** whole-program cost of the ILP plan ({!compile_ilp} only) *)
  chosen_total_ns : float;
  fallback : bool;
      (** the strongest strategy's plan was discarded (its per-block
          wins did not survive reduction absorption): under {!compile}
          the searched plan lost to greedy; under {!compile_ilp} the
          ILP plan lost to search or greedy *)
  proved_optimal : bool option;
      (** {!compile_ilp} only: the ILP plan was returned and every
          block's solve closed with an exact objective ([procs <= 1]) —
          the chosen partitions are provably cost-optimal *)
  certified_lb_ns : float option;
      (** {!compile_ilp} only: certified whole-program lower bound
          (per-block LP bounds + the plan-invariant reduction trees)
          over all Definition-5 plans with scalar contraction and no
          reduction absorption; [None] when any block's column
          enumeration was capped *)
  blocks : block_report list;  (** per-block search outcomes, in block order *)
  ilp_blocks : ilp_report list;
      (** per-block ILP certificates, in block order; [[]] under {!compile} *)
}

val compile :
  ?search:Search.cfg ->
  cost:Cost.t ->
  Ir.Prog.t ->
  (Compilers.Driver.compiled * provenance, Obs.Diagnostic.t) result
(** [cost] must have been built with {!Cost.create} on the same
    program (and carries the target machine / procs / comm options the
    search optimizes for). *)

val compile_ilp :
  ?search:Search.cfg ->
  ?ilp:Ilp.cfg ->
  cost:Cost.t ->
  Ir.Prog.t ->
  (Compilers.Driver.compiled * provenance, Obs.Diagnostic.t) result
(** As {!compile}, plus the branch-and-cut solve ([zapc --plan ilp]).
    Counter ["plan.ilp.fallback"] fires when the ILP plan is not the
    one returned. *)

val provenance_json : provenance -> Obs.Json.t
(** Stable schema used by [zapc --stats] and the plan bench:
    [{"strategy", "machine", "procs", "greedy_total_ns",
    "search_total_ns", "chosen_total_ns", "fallback",
    "blocks": [{"block", "expanded", ...}]}], extended under
    {!compile_ilp} with ["ilp_total_ns"], ["proved_optimal"],
    ["certified_lb_ns"] and ["ilp_blocks"]. *)
