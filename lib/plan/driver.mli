(** The planner's front door: compile a program with the search-based
    fusion/contraction strategy and report how it compares with the
    paper's greedy ladder.

    Compilation runs twice — the greedy [c2+f3] level, and
    [Compilers.Driver.compile_custom_opts] with {!Search.block} choosing
    each block's partition — and both final plans (after reduction
    absorption and the contraction decision, which the per-block
    search cannot see) are priced with {!Cost.plan_cost}.  If the
    searched whole-program plan prices worse than greedy's, the greedy
    result is returned instead (counter ["plan.fallback-greedy"]):
    the planner is never worse than the paper's algorithm under its
    own model, by construction. *)

type block_report = {
  block : int;
  stats : Search.stats;
}

type provenance = {
  strategy : string;  (** ["search"] or ["greedy"] — the plan returned *)
  machine : string;
  procs : int;
  greedy_total_ns : float;  (** whole-program cost of the greedy c2+f3 plan *)
  search_total_ns : float;  (** whole-program cost of the searched plan *)
  chosen_total_ns : float;
  fallback : bool;
      (** the searched plan was discarded for greedy (its per-block
          wins did not survive reduction absorption) *)
  blocks : block_report list;  (** per-block search outcomes, in block order *)
}

val compile :
  ?search:Search.cfg ->
  cost:Cost.t ->
  Ir.Prog.t ->
  (Compilers.Driver.compiled * provenance, Obs.Diagnostic.t) result
(** [cost] must have been built with {!Cost.create} on the same
    program (and carries the target machine / procs / comm options the
    search optimizes for). *)

val provenance_json : provenance -> Obs.Json.t
(** Stable schema used by [zapc --stats] and the plan bench:
    [{"strategy", "machine", "procs", "greedy_total_ns",
    "search_total_ns", "chosen_total_ns", "fallback",
    "blocks": [{"block", "expanded", ...}]}]. *)
