open Ir

type arr = {
  data : float array;
  bounds : Region.t;
  strides : int array;
}

type result = {
  arrays : (string, arr) Hashtbl.t;
  scalars : (string, float) Hashtbl.t;
  live_out : string list;
}

exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let mk_arr bounds =
  let n = Region.rank bounds in
  let strides = Array.make n 1 in
  for d = n - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * Region.extent bounds (d + 2)
  done;
  { data = Array.make (max 1 (Region.volume bounds)) 0.0; bounds; strides }

let flat name a idx =
  let n = Array.length a.strides in
  let f = ref 0 in
  for d = 0 to n - 1 do
    let { Region.lo; hi } = Region.range a.bounds (d + 1) in
    let x = idx.(d) in
    if x < lo || x > hi then
      err "%s: index %d outside [%d..%d] in dim %d" name x lo hi (d + 1);
    f := !f + ((x - lo) * a.strides.(d))
  done;
  !f

let find_arr r name =
  match Hashtbl.find_opt r.arrays name with
  | Some a -> a
  | None -> err "undeclared array %s" name

let get_scalar_tbl r name =
  match Hashtbl.find_opt r.scalars name with
  | Some v -> v
  | None -> err "undefined scalar %s" name

(* Evaluate an elementwise expression at index point [idx]. *)
let rec eval r idx (e : Expr.t) : float =
  match e with
  | Expr.Const f -> f
  | Expr.Svar s -> get_scalar_tbl r s
  | Expr.Idx i ->
      if i < 1 || i > Array.length idx then
        err "idx%d read outside a rank-%d iteration context" i
          (Array.length idx);
      float_of_int idx.(i - 1)
  | Expr.Ref (x, d) ->
      if Array.length idx <> Support.Vec.rank d then
        err "array %s referenced in a rank-%d context (offset rank %d)" x
          (Array.length idx) (Support.Vec.rank d);
      let a = find_arr r x in
      let shifted = Array.init (Array.length idx) (fun k -> idx.(k) + d.(k)) in
      a.data.(flat x a shifted)
  | Expr.Unop (op, e1) -> Ir.Expr.apply_unop op (eval r idx e1)
  | Expr.Binop (op, e1, e2) ->
      let v1 = eval r idx e1 in
      let v2 = eval r idx e2 in
      Ir.Expr.apply_binop op v1 v2
  | Expr.Select (c, a, b) ->
      let vc = eval r idx c in
      let va = eval r idx a in
      let vb = eval r idx b in
      if vc <> 0.0 then va else vb

let exec_astmt r (s : Nstmt.t) =
  let a = find_arr r s.lhs in
  Region.iter s.region (fun idx ->
      let v = eval r idx s.rhs in
      let tgt = Array.init (Array.length idx) (fun k -> idx.(k) + s.lhs_off.(k)) in
      a.data.(flat s.lhs a tgt) <- v)

let red_init : Prog.redop -> float = function
  | Prog.Rsum -> 0.0
  | Prog.Rprod -> 1.0
  | Prog.Rmin -> infinity
  | Prog.Rmax -> neg_infinity

let red_apply : Prog.redop -> float -> float -> float = function
  | Prog.Rsum -> ( +. )
  | Prog.Rprod -> ( *. )
  | Prog.Rmin -> Expr.fmin
  | Prog.Rmax -> Expr.fmax

let rec exec r (s : Prog.stmt) =
  match s with
  | Prog.Astmt a -> exec_astmt r a
  | Prog.Reduce { target; op; region; arg } ->
      let acc = ref (red_init op) in
      let apply = red_apply op in
      Region.iter region (fun idx -> acc := apply !acc (eval r idx arg));
      Hashtbl.replace r.scalars target !acc
  | Prog.Sassign (x, e) ->
      Hashtbl.replace r.scalars x (eval r [||] e)
  | Prog.Sloop { var; lo; hi; body } ->
      for i = lo to hi do
        Hashtbl.replace r.scalars var (float_of_int i);
        List.iter (exec r) body
      done

let run (p : Prog.t) =
  let r =
    {
      arrays = Hashtbl.create 16;
      scalars = Hashtbl.create 16;
      live_out = p.live_out;
    }
  in
  List.iter
    (fun (a : Prog.array_info) ->
      Hashtbl.replace r.arrays a.name (mk_arr a.bounds))
    p.arrays;
  List.iter (fun (s, v) -> Hashtbl.replace r.scalars s v) p.scalars;
  List.iter (exec r) p.body;
  r

let get_scalar = get_scalar_tbl

let get_array r name =
  match Hashtbl.find_opt r.arrays name with
  | Some a -> Array.copy a.data
  | None -> err "undeclared array %s" name

(* Identical digest to Interp.checksum so the two interpreters are
   directly comparable. *)
let checksum r =
  let digest = ref Interp.Digest.empty in
  let mix v = digest := Interp.Digest.mix !digest v in
  List.iter
    (fun name ->
      match Hashtbl.find_opt r.arrays name with
      | Some a -> Array.iter mix a.data
      | None -> (
          match Hashtbl.find_opt r.scalars name with
          | Some v -> mix v
          | None -> err "live-out %s not found" name))
    r.live_out;
  Interp.Digest.to_hex !digest
