open Sir

type counters = {
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable iters : int;
}

exception Runtime_error of string

type arr = {
  data : float array;
  dims : (int * int) array;
  strides : int array;
  base : int;  (** element base address of this allocation *)
}

type result = {
  arrays : (string, arr) Hashtbl.t;
  scalars : (string, float) Hashtbl.t;
  live_out : string list;
  cnt : counters;
}

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

let mk_arr base (a : Code.alloc) =
  let n = Array.length a.dims in
  let strides = Array.make n 1 in
  for d = n - 2 downto 0 do
    let lo, hi = a.dims.(d + 1) in
    strides.(d) <- strides.(d + 1) * max 0 (hi - lo + 1)
  done;
  {
    data = Array.make (max 1 (Code.alloc_volume a)) 0.0;
    dims = a.dims;
    strides;
    base;
  }

let flat_index name arr idx =
  let n = Array.length arr.dims in
  if Array.length idx <> n then
    err "%s: rank %d subscript on rank %d array" name (Array.length idx) n;
  let flat = ref 0 in
  for d = 0 to n - 1 do
    let lo, hi = arr.dims.(d) in
    let x = idx.(d) in
    if x < lo || x > hi then
      err "%s: subscript %d out of bounds [%d..%d] in dim %d" name x lo hi
        (d + 1);
    flat := !flat + ((x - lo) * arr.strides.(d))
  done;
  !flat

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

type state = {
  res : result;
  trace : (addr:int -> write:bool -> unit) option;
}

let get_scalar_tbl st name =
  match Hashtbl.find_opt st.res.scalars name with
  | Some v -> v
  | None -> err "undefined scalar %s" name

let eval_subs st (subs : Code.subscript array) =
  Array.map
    (fun (s : Code.subscript) ->
      if s.base = "" then s.off
      else
        let v = get_scalar_tbl st s.base in
        int_of_float v + s.off)
    subs

let find_arr st name =
  match Hashtbl.find_opt st.res.arrays name with
  | Some a -> a
  | None -> err "undefined (or contracted) array %s" name

let touch st arr flat ~write =
  match st.trace with
  | None -> ()
  | Some f -> f ~addr:((arr.base + flat) * 8) ~write

let is_flop : Ir.Expr.binop -> bool = function
  | Add | Sub | Mul | Div | Pow | Min | Max -> true
  | Lt | Le | Gt | Ge | Eq | Ne | And | Or -> false

let rec eval st (e : Code.expr) : float =
  match e with
  | Const f -> f
  | Scalar s -> get_scalar_tbl st s
  | Load (x, subs) ->
      let arr = find_arr st x in
      let flat = flat_index x arr (eval_subs st subs) in
      st.res.cnt.loads <- st.res.cnt.loads + 1;
      touch st arr flat ~write:false;
      arr.data.(flat)
  | Unop (op, a) ->
      let va = eval st a in
      st.res.cnt.flops <- st.res.cnt.flops + 1;
      Ir.Expr.apply_unop op va
  | Binop (op, a, b) ->
      let va = eval st a in
      let vb = eval st b in
      if is_flop op then st.res.cnt.flops <- st.res.cnt.flops + 1;
      Ir.Expr.apply_binop op va vb
  | Select (c, a, b) ->
      (* both branches are evaluated: elementwise Select is a blend,
         not control flow, matching array-language semantics *)
      let vc = eval st c in
      let va = eval st a in
      let vb = eval st b in
      if vc <> 0.0 then va else vb

let rec exec st (s : Code.stmt) =
  match s with
  | Sassign (x, e) ->
      let v = eval st e in
      Hashtbl.replace st.res.scalars x v
  | Store (x, subs, e) ->
      let v = eval st e in
      let arr = find_arr st x in
      let flat = flat_index x arr (eval_subs st subs) in
      st.res.cnt.stores <- st.res.cnt.stores + 1;
      st.res.cnt.iters <- st.res.cnt.iters + 1;
      touch st arr flat ~write:true;
      arr.data.(flat) <- v
  | For { var; lo; hi; step; body } ->
      if step >= 0 then
        for i = lo to hi do
          Hashtbl.replace st.res.scalars var (float_of_int i);
          List.iter (exec st) body
        done
      else
        for i = hi downto lo do
          Hashtbl.replace st.res.scalars var (float_of_int i);
          List.iter (exec st) body
        done

let run ?trace (p : Code.program) =
  let res =
    {
      arrays = Hashtbl.create 16;
      scalars = Hashtbl.create 16;
      live_out = p.live_out;
      cnt = { loads = 0; stores = 0; flops = 0; iters = 0 };
    }
  in
  let base = ref 0 in
  List.iter
    (fun (a : Code.alloc) ->
      Hashtbl.replace res.arrays a.name (mk_arr !base a);
      (* pad allocations apart so distinct arrays never share a line *)
      base := !base + Code.alloc_volume a + 8)
    p.allocs;
  List.iter (fun (s, v) -> Hashtbl.replace res.scalars s v) p.scalars;
  let st = { res; trace } in
  Obs.span "interpret" (fun () -> List.iter (exec st) p.body);
  if Obs.enabled () then begin
    Obs.count "interp.loads" res.cnt.loads;
    Obs.count "interp.stores" res.cnt.stores;
    Obs.count "interp.element-refs" (res.cnt.loads + res.cnt.stores);
    Obs.count "interp.flops" res.cnt.flops;
    Obs.count "interp.iters" res.cnt.iters
  end;
  res

let counters r = r.cnt

let get_scalar r name =
  match Hashtbl.find_opt r.scalars name with
  | Some v -> v
  | None -> err "undefined scalar %s" name

let get_array r name =
  match Hashtbl.find_opt r.arrays name with
  | Some a -> Array.copy a.data
  | None -> err "undefined (or contracted) array %s" name

let read_point r name idx =
  match Hashtbl.find_opt r.arrays name with
  | Some a -> a.data.(flat_index name a idx)
  | None -> err "undefined (or contracted) array %s" name

(* The shared mixer lives in Support.Hash64 (NaN canonicalization
   included) so non-float hashes — Ir.Prog.fingerprint, the zapd cache
   key — use the same algebra; this alias keeps the executor-facing
   name and the float-only surface. *)
module Digest = struct
  type t = Support.Hash64.t

  let empty = Support.Hash64.empty
  let mix = Support.Hash64.mix_float
  let to_hex = Support.Hash64.to_hex
end

let checksum r =
  let digest = ref Digest.empty in
  let mix v = digest := Digest.mix !digest v in
  List.iter
    (fun name ->
      match Hashtbl.find_opt r.arrays name with
      | Some a -> Array.iter mix a.data
      | None -> (
          match Hashtbl.find_opt r.scalars name with
          | Some v -> mix v
          | None -> err "live-out %s not found" name))
    r.live_out;
  Digest.to_hex !digest

let footprint_bytes p = 8 * Code.program_elements p
