(** Instrumented interpreter for the scalar IR.

    Executes a {!Sir.Code.program} exactly as the generated loop nests
    prescribe, while counting array loads/stores and floating-point
    operations and (optionally) emitting the full memory-reference
    trace.  The trace feeds the cache simulator: contracted arrays have
    become scalars, so their former references produce {e no} memory
    traffic — precisely the effect the paper measures.

    Array elements are modelled as 8-byte doubles laid out row-major;
    each allocation gets a disjoint base address.  Out-of-bounds
    subscripts raise — the interpreter doubles as a scalarizer
    validator. *)

type counters = {
  mutable loads : int;  (** array element reads *)
  mutable stores : int;  (** array element writes *)
  mutable flops : int;  (** arithmetic operations *)
  mutable iters : int;  (** innermost statement executions *)
}

type result

exception Runtime_error of string

val run :
  ?trace:(addr:int -> write:bool -> unit) ->
  Sir.Code.program ->
  result
(** Execute the program on zero-initialized arrays.  [trace] receives
    the byte address of every array element access, in execution
    order. *)

val counters : result -> counters

val get_scalar : result -> string -> float
(** Final value of a scalar (including contraction temporaries).
    Raises [Runtime_error] if undefined. *)

val get_array : result -> string -> float array
(** Final contents of an allocated array, row-major.  Raises
    [Runtime_error] if the array was contracted away or undeclared. *)

val read_point : result -> string -> int array -> float
(** One element by its original (bounds-relative) index. *)

(** The live-out digest shared by every executor in the repo (this
    interpreter, {!Refinterp}, the SPMD backend): mixing the same
    values in the same order yields the same checksum. *)
module Digest : sig
  type t

  val empty : t
  val mix : t -> float -> t
  val to_hex : t -> string
end

val checksum : result -> string
(** Order-independent-of-nothing digest of all live-out values — two
    observationally equivalent runs produce identical checksums. *)

val footprint_bytes : Sir.Code.program -> int
(** Bytes of array storage the program allocates (8 per element). *)
