(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let float_str f =
    if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then
      "null" (* JSON has no non-finite numbers *)
    else if Float.is_integer f && Float.abs f < 1e15 then
      (* integral floats print with a trailing ".0" so they stay floats *)
      Printf.sprintf "%.1f" f
    else
      let s = Printf.sprintf "%.12g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_str f)
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            write b x)
          xs;
        Buffer.add_char b ']'
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            write b v)
          kvs;
        Buffer.add_char b '}'

  let to_string t =
    let b = Buffer.create 256 in
    write b t;
    Buffer.contents b

  let rec pp ppf = function
    | (Null | Bool _ | Int _ | Float _ | String _) as v ->
        Format.pp_print_string ppf (to_string v)
    | List [] -> Format.pp_print_string ppf "[]"
    | List xs ->
        Format.fprintf ppf "@[<v 2>[@,%a@]@,]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
             pp)
          xs
    | Obj [] -> Format.pp_print_string ppf "{}"
    | Obj kvs ->
        Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
             (fun ppf (k, v) -> Format.fprintf ppf "\"%s\": %a" (escape k) pp v))
          kvs

  exception Parse of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let fail fmt =
      Printf.ksprintf (fun m -> raise (Parse (Printf.sprintf "%s at %d" m !pos))) fmt
    in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance () else fail "expected %C" c
    in
    let literal word v =
      if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail "bad literal"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some '"' -> Buffer.add_char b '"'; advance (); go ()
            | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
            | Some '/' -> Buffer.add_char b '/'; advance (); go ()
            | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
            | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
            | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
            | Some 'b' -> Buffer.add_char b '\b'; advance (); go ()
            | Some 'f' -> Buffer.add_char b '\012'; advance (); go ()
            | Some 'u' ->
                advance ();
                if !pos + 4 > n then fail "bad \\u escape";
                let code = int_of_string ("0x" ^ String.sub s !pos 4) in
                pos := !pos + 4;
                (* our own printer only escapes control characters *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_char b '?';
                go ()
            | _ -> fail "bad escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "bad number %S" tok)
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin advance (); List [] end
          else begin
            let items = ref [ parse_value () ] in
            let rec more () =
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items := parse_value () :: !items;
                  more ()
              | Some ']' -> advance ()
              | _ -> fail "expected ',' or ']'"
            in
            more ();
            List (List.rev !items)
          end
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin advance (); Obj [] end
          else begin
            let field () =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              (k, v)
            in
            let items = ref [ field () ] in
            let rec more () =
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items := field () :: !items;
                  more ()
              | Some '}' -> advance ()
              | _ -> fail "expected ',' or '}'"
            in
            more ();
            Obj (List.rev !items)
          end
      | Some c -> if is_start_of_number c then parse_number () else fail "unexpected %C" c
    and is_start_of_number c =
      match c with '0' .. '9' | '-' -> true | _ -> false
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then raise (Parse "trailing garbage");
      v
    with
    | v -> Ok v
    | exception Parse m -> Error m

  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let rec find v path =
    match path with
    | [] -> Some v
    | k :: rest -> ( match member k v with None -> None | Some v' -> find v' rest)
end

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)
(* ------------------------------------------------------------------ *)

module Diagnostic = struct
  type severity = Error | Warning

  type t = {
    severity : severity;
    phase : string;
    loc : (string * int) option;
    message : string;
  }

  let error ?loc ~phase message = { severity = Error; phase; loc; message }
  let warning ?loc ~phase message = { severity = Warning; phase; loc; message }

  let errorf ?loc ~phase fmt =
    Printf.ksprintf (fun message -> error ?loc ~phase message) fmt

  let severity_name = function Error -> "error" | Warning -> "warning"

  let to_string d =
    let loc =
      match d.loc with
      | Some (file, line) when line > 0 -> Printf.sprintf "%s:%d: " file line
      | Some (file, _) -> Printf.sprintf "%s: " file
      | None -> ""
    in
    Printf.sprintf "%s%s %s: %s" loc d.phase (severity_name d.severity)
      d.message

  let pp ppf d = Format.pp_print_string ppf (to_string d)

  let to_json d =
    Json.Obj
      ([ ("severity", Json.String (severity_name d.severity));
         ("phase", Json.String d.phase) ]
      @ (match d.loc with
        | Some (file, line) ->
            [ ("file", Json.String file); ("line", Json.Int line) ]
        | None -> [])
      @ [ ("message", Json.String d.message) ])
end

exception Error of Diagnostic.t

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type fusion_reason =
  | Not_contractible
  | Region_mismatch
  | Nonnull_flow
  | No_loop_structure
  | Cycle
  | External_veto

let fusion_reason_name = function
  | Not_contractible -> "not-contractible"
  | Region_mismatch -> "region-mismatch"
  | Nonnull_flow -> "nonnull-flow"
  | No_loop_structure -> "no-loop-structure"
  | Cycle -> "cycle"
  | External_veto -> "external-veto"

let all_fusion_reasons =
  [ Not_contractible; Region_mismatch; Nonnull_flow; No_loop_structure;
    Cycle; External_veto ]

type event =
  | Fusion_attempt of { array : string option; clusters : int }
  | Fusion_accept of { array : string option; clusters : int }
  | Fusion_reject of { array : string option; reason : fusion_reason }
  | Contraction_candidate of { array : string }
  | Contraction_perform of { array : string; shape : string }
  | Reduction_absorbed of { reduce : int; cluster : int }
  | Note of { name : string; value : string }

let event_counter = function
  | Fusion_attempt _ -> Some "fusion.attempted"
  | Fusion_accept _ -> Some "fusion.accepted"
  | Fusion_reject { reason; _ } ->
      Some ("fusion.rejected." ^ fusion_reason_name reason)
  | Contraction_candidate _ -> Some "contraction.candidates"
  | Contraction_perform _ -> Some "contraction.performed"
  | Reduction_absorbed _ -> Some "reduction.absorbed"
  | Note _ -> None

let event_text e =
  let arr = function Some x -> " for " ^ x | None -> "" in
  match e with
  | Fusion_attempt { array; clusters } ->
      Printf.sprintf "fusion: attempt %d-cluster merge%s" clusters (arr array)
  | Fusion_accept { array; clusters } ->
      Printf.sprintf "fusion: merged %d clusters%s" clusters (arr array)
  | Fusion_reject { array; reason } ->
      Printf.sprintf "fusion: rejected%s (%s)" (arr array)
        (fusion_reason_name reason)
  | Contraction_candidate { array } ->
      Printf.sprintf "contraction: candidate %s" array
  | Contraction_perform { array; shape } ->
      Printf.sprintf "contraction: %s -> %s" array shape
  | Reduction_absorbed { reduce; cluster } ->
      Printf.sprintf "reduction %d absorbed into cluster P%d" reduce cluster
  | Note { name; value } -> Printf.sprintf "%s: %s" name value

(* ------------------------------------------------------------------ *)
(* Spans, sinks, recorders                                             *)
(* ------------------------------------------------------------------ *)

type span = {
  span_name : string;
  elapsed_ns : float;
  children : span list;
}

type report = {
  spans : span list;
  counters : (string * int) list;
  totals : (string * float) list;
  events : event list;
}

type sink = {
  on_open : depth:int -> string -> unit;
  on_close : depth:int -> string -> float -> unit;
  on_event : depth:int -> event -> unit;
}

let null_sink =
  {
    on_open = (fun ~depth:_ _ -> ());
    on_close = (fun ~depth:_ _ _ -> ());
    on_event = (fun ~depth:_ _ -> ());
  }

let text_sink ppf =
  let indent depth = String.make (2 * depth) ' ' in
  {
    on_open =
      (fun ~depth name -> Format.fprintf ppf "%s> %s@." (indent depth) name);
    on_close =
      (fun ~depth name ns ->
        Format.fprintf ppf "%s< %s  %.3f ms@." (indent depth) name (ns /. 1e6));
    on_event =
      (fun ~depth e -> Format.fprintf ppf "%s- %s@." (indent depth) (event_text e));
  }

type frame = {
  fname : string;
  start : float;
  mutable kids : span list;  (* reversed *)
}

type t = {
  sink : sink;
  mutable stack : frame list;  (* innermost first *)
  mutable top : span list;  (* reversed *)
  counters : (string, int) Hashtbl.t;
  float_totals : (string, float) Hashtbl.t;
  mutable events : event list;  (* reversed *)
}

let seeded_counters =
  [ "fusion.attempted"; "fusion.accepted"; "contraction.candidates";
    "contraction.performed"; "reduction.absorbed"; "dep.edges" ]
  @ List.map
      (fun r -> "fusion.rejected." ^ fusion_reason_name r)
      all_fusion_reasons

let create ?(sink = null_sink) () =
  let counters = Hashtbl.create 32 in
  List.iter (fun k -> Hashtbl.replace counters k 0) seeded_counters;
  {
    sink;
    stack = [];
    top = [];
    counters;
    float_totals = Hashtbl.create 8;
    events = [];
  }

(* The installed recorder is *domain-local*: a recorder's span stack,
   counter tables and event list are plain mutable state, so sharing
   one recorder between domains would race.  Each domain instead sees
   its own current-recorder slot (fresh domains start at None, so
   instrumentation inside pool workers is a no-op unless the worker
   installs its own recorder), and a worker's finished report is
   folded into the parent with [merge] — in task order, so the merged
   report is deterministic regardless of domain scheduling. *)
let current_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let active () = Domain.DLS.get current_key

let enabled () = active () <> None

let run t f =
  let prev = Domain.DLS.get current_key in
  Domain.DLS.set current_key (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_key prev) f

(* CLOCK_MONOTONIC via bechamel's stub: gettimeofday is subject to NTP
   steps, which made span durations occasionally negative. *)
let now_ns () = Int64.to_float (Monotonic_clock.now ())

let span name f =
  match active () with
  | None -> f ()
  | Some r ->
      let depth = List.length r.stack in
      r.sink.on_open ~depth name;
      let fr = { fname = name; start = now_ns (); kids = [] } in
      r.stack <- fr :: r.stack;
      let finish () =
        let elapsed = now_ns () -. fr.start in
        (match r.stack with
        | f' :: rest when f' == fr -> r.stack <- rest
        | _ -> () (* unbalanced: a nested span escaped; drop silently *));
        let s =
          { span_name = name; elapsed_ns = elapsed; children = List.rev fr.kids }
        in
        (match r.stack with
        | parent :: _ -> parent.kids <- s :: parent.kids
        | [] -> r.top <- s :: r.top);
        r.sink.on_close ~depth name elapsed
      in
      Fun.protect ~finally:finish f

let count name n =
  match active () with
  | None -> ()
  | Some r ->
      let cur = try Hashtbl.find r.counters name with Not_found -> 0 in
      Hashtbl.replace r.counters name (cur + n)

let total name x =
  match active () with
  | None -> ()
  | Some r ->
      let cur = try Hashtbl.find r.float_totals name with Not_found -> 0.0 in
      Hashtbl.replace r.float_totals name (cur +. x)

let event e =
  match active () with
  | None -> ()
  | Some r ->
      r.events <- e :: r.events;
      (match event_counter e with
      | Some name ->
          let cur = try Hashtbl.find r.counters name with Not_found -> 0 in
          Hashtbl.replace r.counters name (cur + 1)
      | None -> ());
      r.sink.on_event ~depth:(List.length r.stack) e

let report t =
  let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
                   |> List.sort compare in
  {
    spans = List.rev t.top;
    counters = sorted t.counters;
    totals = sorted t.float_totals;
    events = List.rev t.events;
  }

(* Fold a finished child recorder's report into [t]: counters and
   totals add, the child's top-level spans and events append after
   everything already recorded.  Pool drivers give each parallel task
   its own recorder and merge the task reports back *in task order*,
   so the combined report is identical whichever domain finished
   first. *)
let merge t (r : report) =
  List.iter
    (fun (k, v) ->
      let cur = try Hashtbl.find t.counters k with Not_found -> 0 in
      Hashtbl.replace t.counters k (cur + v))
    r.counters;
  List.iter
    (fun (k, v) ->
      let cur = try Hashtbl.find t.float_totals k with Not_found -> 0.0 in
      Hashtbl.replace t.float_totals k (cur +. v))
    r.totals;
  (* both lists are stored reversed *)
  t.top <- List.rev_append r.spans t.top;
  t.events <- List.rev_append r.events t.events

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let rec span_to_json s =
  Json.Obj
    [ ("name", Json.String s.span_name);
      ("ns", Json.Float s.elapsed_ns);
      ("children", Json.List (List.map span_to_json s.children)) ]

let report_to_json r =
  Json.Obj
    [ ("spans", Json.List (List.map span_to_json r.spans));
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) r.counters));
      ("totals", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.totals)) ]

let pp_spans ppf spans =
  let rec go depth s =
    Format.fprintf ppf "%s%s  %.3f ms@." (String.make (2 * depth) ' ')
      s.span_name (s.elapsed_ns /. 1e6);
    List.iter (go (depth + 1)) s.children
  in
  List.iter (go 0) spans

let pp_report ppf r =
  pp_spans ppf r.spans;
  List.iter
    (fun (k, v) -> if v <> 0 then Format.fprintf ppf "%-40s %10d@." k v)
    r.counters;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%-40s %10.0f@." k v)
    r.totals
