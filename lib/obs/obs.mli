(** Structured observability for the compilation pipeline.

    The paper's argument rests on {e explaining} optimizer decisions —
    which statements fused, which arrays contracted and why, where the
    cache misses and messages went.  This library is the shared
    substrate: hierarchical {e pass spans} with wall-clock timings,
    typed {e counters} and {e events} recording every fusion attempt
    (with the Definition 5/6 reason that vetoed a rejected merge),
    contraction decisions, dependence-edge counts, interpreter and
    cache totals, and per-optimization communication savings.

    Instrumentation points ({!span}, {!count}, {!event}) are dynamically
    scoped {e per domain}: they report to the recorder installed by the
    innermost {!run} in the current domain, and compile to a single
    domain-local read when none is installed — the null-sink
    configuration adds no measurable overhead.  Recorders are plain
    mutable state and must not be shared between domains; parallel
    drivers record into one recorder per task and combine them with
    {!merge}.

    The library also hosts the two cross-layer value types of the
    driver/CLI API: {!Json} (report serialization, no external
    dependencies) and {!Diagnostic} (the error type of the result-based
    [Driver.compile] and of the [zapc] command line). *)

(** Minimal JSON values: enough to serialize compile reports and bench
    rows, and to parse them back in tests. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string
  (** Compact one-line rendering (valid JSON; floats keep full
      round-trip precision). *)

  val pp : Format.formatter -> t -> unit
  (** Indented multi-line rendering. *)

  val of_string : string -> (t, string) result
  (** Strict parser for the subset this module prints (numbers,
      strings with the common escapes, arrays, objects). *)

  val member : string -> t -> t option
  (** Field lookup on [Obj]; [None] elsewhere. *)

  val find : t -> string list -> t option
  (** Nested field lookup along a path. *)
end

(** Uniform compiler diagnostics: the error type of the result-based
    driver API and of all [zapc] command-line failures. *)
module Diagnostic : sig
  type severity = Error | Warning

  type t = {
    severity : severity;
    phase : string;  (** pipeline stage or CLI area: "parse", "check", "cli", ... *)
    loc : (string * int) option;  (** (file-or-input-name, 1-based line) *)
    message : string;
  }

  val error : ?loc:string * int -> phase:string -> string -> t
  val warning : ?loc:string * int -> phase:string -> string -> t

  val errorf :
    ?loc:string * int ->
    phase:string ->
    ('a, unit, string, t) format4 ->
    'a

  val to_string : t -> string
  (** ["zapc: check error: invalid program ..."]-style one-liner, with
      the location prefixed when present. *)

  val pp : Format.formatter -> t -> unit
  val to_json : t -> Json.t
end

exception Error of Diagnostic.t
(** Raised by the [_exn] convenience wrappers of result-based APIs. *)

(** {1 Events and counters} *)

(** Why a fusion merge attempt was rejected: the Definition 5 legality
    conditions, the Definition 6 contractibility precondition of
    FUSION-FOR-CONTRACTION, or an external veto ([may_fuse], the
    communication-integration hook). *)
type fusion_reason =
  | Not_contractible  (** Def. 6: candidate array not contractible within the grown cluster set *)
  | Region_mismatch  (** Def. 5(i): statements iterate different regions *)
  | Nonnull_flow  (** Def. 5(ii): a loop-carried flow dependence would be internalized *)
  | No_loop_structure  (** Def. 5(iv): FIND-LOOP-STRUCTURE returned NOSOLUTION *)
  | Cycle  (** merged cluster graph would be cyclic *)
  | External_veto  (** the [may_fuse] hook refused (favor-communication mode) *)

val fusion_reason_name : fusion_reason -> string
(** Stable kebab-case name, used as counter suffix and in JSON. *)

val all_fusion_reasons : fusion_reason list

type event =
  | Fusion_attempt of { array : string option; clusters : int }
      (** a merge of [clusters] clusters was attempted, driven by
          [array] ([None] for the greedy pairwise sweep) *)
  | Fusion_accept of { array : string option; clusters : int }
  | Fusion_reject of { array : string option; reason : fusion_reason }
  | Contraction_candidate of { array : string }
  | Contraction_perform of { array : string; shape : string }
      (** [shape] is ["scalar"] or ["dims:0110"]-style for partial
          contraction *)
  | Reduction_absorbed of { reduce : int; cluster : int }
  | Note of { name : string; value : string }  (** free-form marker *)

val event_counter : event -> string option
(** The counter each event bumps (e.g. [Fusion_reject] with
    [Nonnull_flow] bumps ["fusion.rejected.nonnull-flow"]); [None] for
    [Note]. *)

(** {1 Spans and reports} *)

type span = {
  span_name : string;
  elapsed_ns : float;
  children : span list;  (** in execution order *)
}

type report = {
  spans : span list;  (** top-level spans, in execution order *)
  counters : (string * int) list;  (** sorted by name *)
  totals : (string * float) list;  (** float-valued counters, sorted *)
  events : event list;  (** in emission order *)
}

(** {1 Sinks and recorders} *)

type sink
(** Receives streamed notifications as instrumentation fires (the
    recorder accumulates the report regardless of sink). *)

val null_sink : sink
(** Accumulate only; stream nothing. *)

val text_sink : Format.formatter -> sink
(** Stream an indented span tree with timings, and one line per event
    — the [--trace] rendering. *)

type t
(** A recorder: accumulates spans, counters and events. *)

val create : ?sink:sink -> unit -> t
(** Fresh recorder.  The fusion and contraction counters are pre-seeded
    to 0 so reports have a stable key set. *)

val run : t -> (unit -> 'a) -> 'a
(** [run t f] installs [t] as the current recorder for the dynamic
    extent of [f] (restored on exceptions; nested [run]s shadow). *)

val report : t -> report
(** Snapshot of everything recorded so far.  Open spans are excluded. *)

val merge : t -> report -> unit
(** [merge t r] folds a finished child recorder's report into [t]:
    counters and totals add; [r]'s top-level spans and events append
    after everything already in [t].  Parallel sweep drivers give each
    task its own recorder (recorders are domain-local, see {!run}) and
    merge the reports back in task order, which makes the combined
    report deterministic regardless of domain scheduling. *)

val active : unit -> t option
(** The recorder installed in the {e current domain}, if any ([run]
    installs per-domain: a recorder installed by the caller is not
    visible inside [Support.Pool] workers). *)

(** {1 Instrumentation points}

    All are no-ops (one [ref] read) when no recorder is installed. *)

val enabled : unit -> bool
(** [true] iff a recorder is installed — guard allocation-heavy
    event construction in hot paths with this. *)

val now_ns : unit -> float
(** The monotonic clock (CLOCK_MONOTONIC) in nanoseconds — the time
    base of every {!span}.  Monotone non-decreasing across calls:
    immune to NTP steps, so span durations are never negative.  The
    epoch is unspecified; only differences are meaningful. *)

val span : string -> (unit -> 'a) -> 'a
(** Time [f] as a child of the innermost open span. *)

val count : string -> int -> unit
(** Add to a named integer counter. *)

val total : string -> float -> unit
(** Add to a named float accumulator (ns saved, bytes, ...). *)

val event : event -> unit
(** Record an event (and bump its counter, see {!event_counter}). *)

(** {1 Rendering} *)

val report_to_json : report -> Json.t
(** Stable schema: [{"spans": [{"name", "ns", "children"}...],
    "counters": {...}, "totals": {...}}]. *)

val pp_spans : Format.formatter -> span list -> unit
val pp_report : Format.formatter -> report -> unit
