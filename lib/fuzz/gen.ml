(* Seeded random-program generator.

   Promotes the ad-hoc generator of test/test_compile.ml into a
   reusable, deterministic component: driven entirely by
   [Support.Prng] (so a seed fully determines the program stream,
   independent of any global Random state), covering regions up to
   rank 3, `@` offsets on reads and writes, reductions over all four
   operators, sequential loops, scalar assignments, Select, and — when
   [nan_ops] is on — the operations that produce NaN and infinities
   (Div, Pow, Log, Sqrt).  Every returned program passes
   [Ir.Prog.validate] by construction. *)

open Ir

type cfg = {
  max_rank : int;  (** region ranks drawn from 1..max_rank (≤ 3) *)
  max_stmts : int;  (** top-level statement budget *)
  max_depth : int;  (** expression tree depth *)
  nan_ops : bool;  (** include Div/Pow/Log/Sqrt in the op pools *)
  offsets : bool;  (** allow @ offsets on references and targets *)
  reductions : bool;
  loops : bool;
  selects : bool;
}

let default =
  {
    max_rank = 3;
    max_stmts = 7;
    max_depth = 3;
    nan_ops = true;
    offsets = true;
    reductions = true;
    loops = true;
    selects = true;
  }

let pick rng a = a.(Support.Prng.next_int rng (Array.length a))
let chance rng pct = Support.Prng.next_int rng 100 < pct

let user_names = [| "A"; "B"; "C"; "D" |]
let temp_names = [| "T1"; "T2" |]
let all_names = Array.append user_names temp_names

(* tile edge by rank: keeps rank-3 volumes comparable to rank-1 *)
let edge = function 1 -> 8 | 2 -> 4 | _ -> 3

(* Mix round values (which hit the 0/0, 0*inf, 0^0 corners) with
   full-precision doubles (which exercise digest bit-exactness). *)
let const_pool = [| 0.0; 1.0; -1.0; 2.0; 0.5; -0.5; 3.0; -2.0 |]

let gen_const rng =
  if chance rng 50 then pick rng const_pool
  else (Support.Prng.next_float rng -. 0.5) *. 8.0

let gen_off cfg rng rank =
  if cfg.offsets && chance rng 60 then
    Support.Vec.of_list
      (List.init rank (fun _ -> Support.Prng.next_int rng 3 - 1))
  else Support.Vec.zero rank

let unops_safe = Expr.[| Neg; Abs; Floor; Sin; Cos; Exp; Not; Hashrand |]
let unops_nan = Expr.[| Sqrt; Log |]
let binops_safe = Expr.[| Add; Sub; Mul; Min; Max; Lt; Le; And |]
let binops_nan = Expr.[| Div; Pow |]
let cmps = Expr.[| Lt; Le; Gt; Ge |]

let gen_unop cfg rng =
  if cfg.nan_ops && chance rng 30 then pick rng unops_nan
  else pick rng unops_safe

let gen_binop cfg rng =
  if cfg.nan_ops && chance rng 30 then pick rng binops_nan
  else pick rng binops_safe

(* Expression in array context: may reference arrays and indices. *)
let rec gen_expr cfg rng ~rank ~scope depth =
  if depth <= 0 || chance rng 25 then gen_leaf cfg rng ~rank ~scope
  else
    let k = Support.Prng.next_int rng 100 in
    if k < 25 then
      Expr.Unop (gen_unop cfg rng, gen_expr cfg rng ~rank ~scope (depth - 1))
    else if k < 80 || not cfg.selects then
      Expr.Binop
        ( gen_binop cfg rng,
          gen_expr cfg rng ~rank ~scope (depth - 1),
          gen_expr cfg rng ~rank ~scope (depth - 1) )
    else
      let c =
        Expr.Binop
          ( pick rng cmps,
            gen_expr cfg rng ~rank ~scope (depth - 1),
            gen_expr cfg rng ~rank ~scope (depth - 1) )
      in
      Expr.Select
        ( c,
          gen_expr cfg rng ~rank ~scope (depth - 1),
          gen_expr cfg rng ~rank ~scope (depth - 1) )

and gen_leaf cfg rng ~rank ~scope =
  let k = Support.Prng.next_int rng 100 in
  if k < 50 then Expr.Ref (pick rng all_names, gen_off cfg rng rank)
  else if k < 65 && scope <> [] then
    Expr.Svar (List.nth scope (Support.Prng.next_int rng (List.length scope)))
  else if k < 85 then Expr.Const (gen_const rng)
  else Expr.Idx (1 + Support.Prng.next_int rng rank)

(* Expression in scalar context: no arrays, no region indices
   (Prog.validate rejects both). *)
let rec gen_sexpr cfg rng ~scope depth =
  if depth <= 0 || chance rng 35 then
    if scope <> [] && chance rng 50 then
      Expr.Svar (List.nth scope (Support.Prng.next_int rng (List.length scope)))
    else Expr.Const (gen_const rng)
  else if chance rng 30 then
    Expr.Unop (gen_unop cfg rng, gen_sexpr cfg rng ~scope (depth - 1))
  else
    Expr.Binop
      ( gen_binop cfg rng,
        gen_sexpr cfg rng ~scope (depth - 1),
        gen_sexpr cfg rng ~scope (depth - 1) )

let interior rank =
  let n = edge rank in
  Region.of_bounds (List.init rank (fun _ -> (1, n)))

let gen_region cfg rng rank =
  ignore cfg;
  let n = edge rank in
  if chance rng 70 then interior rank
  else
    Region.of_bounds
      (List.init rank (fun _ ->
           let lo = 1 + Support.Prng.next_int rng n in
           let hi = lo + Support.Prng.next_int rng (n - lo + 1) in
           (lo, hi)))

let gen_astmt cfg rng ~rank ~scope =
  let rec try_rhs attempts =
    let rhs = gen_expr cfg rng ~rank ~scope cfg.max_depth in
    let reads = Expr.ref_names rhs in
    let candidates =
      Array.to_list all_names |> List.filter (fun x -> not (List.mem x reads))
    in
    match candidates with
    | [] when attempts > 0 -> try_rhs (attempts - 1)
    | [] -> (Expr.Const 1.0, Array.to_list all_names)
    | cs -> (rhs, cs)
  in
  let rhs, candidates = try_rhs 5 in
  let lhs = List.nth candidates (Support.Prng.next_int rng (List.length candidates)) in
  let lhs_off =
    if cfg.offsets && chance rng 20 then gen_off cfg rng rank
    else Support.Vec.zero rank
  in
  Prog.Astmt (Nstmt.make ~region:(gen_region cfg rng rank) ~lhs ~lhs_off rhs)

let redops = Prog.[| Rsum; Rprod; Rmin; Rmax |]
let red_targets = [| "s"; "u" |]

let gen_reduce cfg rng ~rank ~scope =
  let target = pick rng red_targets in
  (* the accumulator may not appear in its own argument (ill-formed:
     Prog.validate rejects the self-read) *)
  let scope = List.filter (fun s -> s <> target) scope in
  Prog.Reduce
    {
      target;
      op = pick rng redops;
      region = gen_region cfg rng rank;
      arg = gen_expr cfg rng ~rank ~scope 2;
    }

let gen_sassign cfg rng ~scope =
  let target = if chance rng 70 then pick rng red_targets else "k" in
  Prog.Sassign (target, gen_sexpr cfg rng ~scope 2)

let rec gen_stmt cfg rng ~rank ~scope ~in_loop =
  let k = Support.Prng.next_int rng 100 in
  if cfg.loops && (not in_loop) && k >= 80 then
    let trips = 1 + Support.Prng.next_int rng 3 in
    let scope = "t" :: scope in
    let n = 1 + Support.Prng.next_int rng 3 in
    Prog.Sloop
      {
        var = "t";
        lo = 1;
        hi = trips;
        body = List.init n (fun _ -> gen_stmt cfg rng ~rank ~scope ~in_loop:true);
      }
  else if cfg.reductions && k >= 65 && k < 80 then gen_reduce cfg rng ~rank ~scope
  else if k >= 55 && k < 65 then gen_sassign cfg rng ~scope
  else gen_astmt cfg rng ~rank ~scope

let gen_live_out rng =
  let live = ref [] in
  Array.iter
    (fun x -> if chance rng 50 then live := x :: !live)
    user_names;
  if chance rng 50 then live := "s" :: !live;
  if chance rng 30 then live := "u" :: !live;
  match List.rev !live with [] -> [ "A" ] | l -> l

let gen_once cfg rng =
  let rank = 1 + Support.Prng.next_int rng (min 3 (max 1 cfg.max_rank)) in
  let n = edge rank in
  let bounds = Region.of_bounds (List.init rank (fun _ -> (0, n + 1))) in
  let arrays =
    (Array.to_list user_names
    |> List.map (fun name -> { Prog.name; bounds; kind = Prog.User }))
    @ (Array.to_list temp_names
      |> List.map (fun name -> { Prog.name; bounds; kind = Prog.Compiler }))
  in
  let scope = [ "k"; "s"; "u" ] in
  let n_stmts = 2 + Support.Prng.next_int rng (max 1 cfg.max_stmts) in
  let body =
    List.init n_stmts (fun _ -> gen_stmt cfg rng ~rank ~scope ~in_loop:false)
  in
  {
    Prog.name = "fuzz";
    arrays;
    scalars = [ ("k", gen_const rng); ("s", 0.0); ("u", 0.0) ];
    body;
    live_out = gen_live_out rng;
  }

let generate ?(cfg = default) rng =
  let rec go attempts =
    if attempts = 0 then
      failwith "Fuzz.Gen.generate: no valid program in 50 attempts"
    else
      let p = gen_once cfg rng in
      match Prog.validate p with Ok () -> p | Error _ -> go (attempts - 1)
  in
  go 50
