(* Seeded random-program generator.

   Promotes the ad-hoc generator of test/test_compile.ml into a
   reusable, deterministic component: driven entirely by
   [Support.Prng] (so a seed fully determines the program stream,
   independent of any global Random state), covering regions up to
   rank 3, `@` offsets on reads and writes, reductions over all four
   operators, sequential loops, scalar assignments, Select, and — when
   [nan_ops] is on — the operations that produce NaN and infinities
   (Div, Pow, Log, Sqrt).  Every returned program passes
   [Ir.Prog.validate] by construction. *)

open Ir

type cfg = {
  max_rank : int;  (** region ranks drawn from 1..max_rank (≤ 3) *)
  max_stmts : int;  (** top-level statement budget *)
  max_depth : int;  (** expression tree depth *)
  nan_ops : bool;  (** include Div/Pow/Log/Sqrt in the op pools *)
  offsets : bool;  (** allow @ offsets on references and targets *)
  reductions : bool;
  loops : bool;
  selects : bool;
}

let default =
  {
    max_rank = 3;
    max_stmts = 7;
    max_depth = 3;
    nan_ops = true;
    offsets = true;
    reductions = true;
    loops = true;
    selects = true;
  }

let pick rng a = a.(Support.Prng.next_int rng (Array.length a))
let chance rng pct = Support.Prng.next_int rng 100 < pct

let user_names = [| "A"; "B"; "C"; "D" |]
let temp_names = [| "T1"; "T2" |]
let all_names = Array.append user_names temp_names

(* tile edge by rank: keeps rank-3 volumes comparable to rank-1 *)
let edge = function 1 -> 8 | 2 -> 4 | _ -> 3

(* Mix round values (which hit the 0/0, 0*inf, 0^0 corners) with
   full-precision doubles (which exercise digest bit-exactness). *)
let const_pool = [| 0.0; 1.0; -1.0; 2.0; 0.5; -0.5; 3.0; -2.0 |]

let gen_const rng =
  if chance rng 50 then pick rng const_pool
  else (Support.Prng.next_float rng -. 0.5) *. 8.0

let gen_off cfg rng rank =
  if cfg.offsets && chance rng 60 then
    Support.Vec.of_list
      (List.init rank (fun _ -> Support.Prng.next_int rng 3 - 1))
  else Support.Vec.zero rank

let unops_safe = Expr.[| Neg; Abs; Floor; Sin; Cos; Exp; Not; Hashrand |]
let unops_nan = Expr.[| Sqrt; Log |]
let binops_safe = Expr.[| Add; Sub; Mul; Min; Max; Lt; Le; And |]
let binops_nan = Expr.[| Div; Pow |]
let cmps = Expr.[| Lt; Le; Gt; Ge |]

let gen_unop cfg rng =
  if cfg.nan_ops && chance rng 30 then pick rng unops_nan
  else pick rng unops_safe

let gen_binop cfg rng =
  if cfg.nan_ops && chance rng 30 then pick rng binops_nan
  else pick rng binops_safe

(* Expression in array context: may reference arrays and indices. *)
let rec gen_expr cfg rng ~rank ~scope depth =
  if depth <= 0 || chance rng 25 then gen_leaf cfg rng ~rank ~scope
  else
    let k = Support.Prng.next_int rng 100 in
    if k < 25 then
      Expr.Unop (gen_unop cfg rng, gen_expr cfg rng ~rank ~scope (depth - 1))
    else if k < 80 || not cfg.selects then
      Expr.Binop
        ( gen_binop cfg rng,
          gen_expr cfg rng ~rank ~scope (depth - 1),
          gen_expr cfg rng ~rank ~scope (depth - 1) )
    else
      let c =
        Expr.Binop
          ( pick rng cmps,
            gen_expr cfg rng ~rank ~scope (depth - 1),
            gen_expr cfg rng ~rank ~scope (depth - 1) )
      in
      Expr.Select
        ( c,
          gen_expr cfg rng ~rank ~scope (depth - 1),
          gen_expr cfg rng ~rank ~scope (depth - 1) )

and gen_leaf cfg rng ~rank ~scope =
  let k = Support.Prng.next_int rng 100 in
  if k < 50 then Expr.Ref (pick rng all_names, gen_off cfg rng rank)
  else if k < 65 && scope <> [] then
    Expr.Svar (List.nth scope (Support.Prng.next_int rng (List.length scope)))
  else if k < 85 then Expr.Const (gen_const rng)
  else Expr.Idx (1 + Support.Prng.next_int rng rank)

(* Expression in scalar context: no arrays, no region indices
   (Prog.validate rejects both). *)
let rec gen_sexpr cfg rng ~scope depth =
  if depth <= 0 || chance rng 35 then
    if scope <> [] && chance rng 50 then
      Expr.Svar (List.nth scope (Support.Prng.next_int rng (List.length scope)))
    else Expr.Const (gen_const rng)
  else if chance rng 30 then
    Expr.Unop (gen_unop cfg rng, gen_sexpr cfg rng ~scope (depth - 1))
  else
    Expr.Binop
      ( gen_binop cfg rng,
        gen_sexpr cfg rng ~scope (depth - 1),
        gen_sexpr cfg rng ~scope (depth - 1) )

let interior rank =
  let n = edge rank in
  Region.of_bounds (List.init rank (fun _ -> (1, n)))

let gen_region cfg rng rank =
  ignore cfg;
  let n = edge rank in
  if chance rng 70 then interior rank
  else
    Region.of_bounds
      (List.init rank (fun _ ->
           let lo = 1 + Support.Prng.next_int rng n in
           let hi = lo + Support.Prng.next_int rng (n - lo + 1) in
           (lo, hi)))

let gen_astmt cfg rng ~rank ~scope =
  let rec try_rhs attempts =
    let rhs = gen_expr cfg rng ~rank ~scope cfg.max_depth in
    let reads = Expr.ref_names rhs in
    let candidates =
      Array.to_list all_names |> List.filter (fun x -> not (List.mem x reads))
    in
    match candidates with
    | [] when attempts > 0 -> try_rhs (attempts - 1)
    | [] -> (Expr.Const 1.0, Array.to_list all_names)
    | cs -> (rhs, cs)
  in
  let rhs, candidates = try_rhs 5 in
  let lhs = List.nth candidates (Support.Prng.next_int rng (List.length candidates)) in
  let lhs_off =
    if cfg.offsets && chance rng 20 then gen_off cfg rng rank
    else Support.Vec.zero rank
  in
  Prog.Astmt (Nstmt.make ~region:(gen_region cfg rng rank) ~lhs ~lhs_off rhs)

let redops = Prog.[| Rsum; Rprod; Rmin; Rmax |]
let red_targets = [| "s"; "u" |]

let gen_reduce cfg rng ~rank ~scope =
  let target = pick rng red_targets in
  (* the accumulator may not appear in its own argument (ill-formed:
     Prog.validate rejects the self-read) *)
  let scope = List.filter (fun s -> s <> target) scope in
  Prog.Reduce
    {
      target;
      op = pick rng redops;
      region = gen_region cfg rng rank;
      arg = gen_expr cfg rng ~rank ~scope 2;
    }

let gen_sassign cfg rng ~scope =
  let target = if chance rng 70 then pick rng red_targets else "k" in
  Prog.Sassign (target, gen_sexpr cfg rng ~scope 2)

let rec gen_stmt cfg rng ~rank ~scope ~in_loop =
  let k = Support.Prng.next_int rng 100 in
  if cfg.loops && (not in_loop) && k >= 80 then
    let trips = 1 + Support.Prng.next_int rng 3 in
    let scope = "t" :: scope in
    let n = 1 + Support.Prng.next_int rng 3 in
    Prog.Sloop
      {
        var = "t";
        lo = 1;
        hi = trips;
        body = List.init n (fun _ -> gen_stmt cfg rng ~rank ~scope ~in_loop:true);
      }
  else if cfg.reductions && k >= 65 && k < 80 then gen_reduce cfg rng ~rank ~scope
  else if k >= 55 && k < 65 then gen_sassign cfg rng ~scope
  else gen_astmt cfg rng ~rank ~scope

let gen_live_out rng =
  let live = ref [] in
  Array.iter
    (fun x -> if chance rng 50 then live := x :: !live)
    user_names;
  if chance rng 50 then live := "s" :: !live;
  if chance rng 30 then live := "u" :: !live;
  match List.rev !live with [] -> [ "A" ] | l -> l

let gen_once cfg rng =
  let rank = 1 + Support.Prng.next_int rng (min 3 (max 1 cfg.max_rank)) in
  let n = edge rank in
  let bounds = Region.of_bounds (List.init rank (fun _ -> (0, n + 1))) in
  let arrays =
    (Array.to_list user_names
    |> List.map (fun name -> { Prog.name; bounds; kind = Prog.User }))
    @ (Array.to_list temp_names
      |> List.map (fun name -> { Prog.name; bounds; kind = Prog.Compiler }))
  in
  let scope = [ "k"; "s"; "u" ] in
  let n_stmts = 2 + Support.Prng.next_int rng (max 1 cfg.max_stmts) in
  let body =
    List.init n_stmts (fun _ -> gen_stmt cfg rng ~rank ~scope ~in_loop:false)
  in
  {
    Prog.name = "fuzz";
    arrays;
    scalars = [ ("k", gen_const rng); ("s", 0.0); ("u", 0.0) ];
    body;
    live_out = gen_live_out rng;
  }

let generate ?(cfg = default) rng =
  let rec go attempts =
    if attempts = 0 then
      failwith "Fuzz.Gen.generate: no valid program in 50 attempts"
    else
      let p = gen_once cfg rng in
      match Prog.validate p with Ok () -> p | Error _ -> go (attempts - 1)
  in
  go 50

(* ------------------------------------------------------------------ *)
(* Trace mode: random combinator traces through the lazy frontend      *)
(* ------------------------------------------------------------------ *)

(* Instead of drawing an Ir.Prog directly, draw a random sequence of
   Lazyarr.Trace combinator applications — the op-at-a-time regime the
   runtime-fusion frontend exists for — and hand the oracle the
   trace's direct lowering.  Divergence between any backend on that
   program and the lazy force of the same trace would indicate a
   lowering bug; divergence between backends indicates the usual
   oracle findings.  Deterministic from the Prng stream, like
   [generate]. *)

type trace_cfg = {
  max_ops : int;  (** combinator budget beyond the initial source *)
  trace_rank : int;  (** ranks drawn from 1..trace_rank (≤ 3) *)
  trace_nan_ops : bool;  (** include Div/Pow/Log/Sqrt in the op pools *)
  trace_reductions : bool;  (** allow a reduction sink *)
}

let default_trace =
  { max_ops = 8; trace_rank = 3; trace_nan_ops = true; trace_reductions = true }

type sink = Arr of Lazyarr.Trace.arr | Scalar of Lazyarr.Trace.scalar

type traced = {
  ctx : Lazyarr.Trace.ctx;
  sink : sink;
  trace_prog : Ir.Prog.t;  (** direct lowering of [sink]: the eager twin *)
}

(* Expression over no arrays: Idx and Const leaves only — the language
   of [gen] sources. *)
let rec gen_pure_expr cfg rng ~rank depth =
  if depth <= 0 || chance rng 40 then
    if chance rng 50 then Expr.Idx (1 + Support.Prng.next_int rng rank)
    else Expr.Const (gen_const rng)
  else if chance rng 30 then
    let u =
      if cfg.trace_nan_ops && chance rng 30 then pick rng unops_nan
      else pick rng unops_safe
    in
    Expr.Unop (u, gen_pure_expr cfg rng ~rank (depth - 1))
  else
    let b =
      if cfg.trace_nan_ops && chance rng 30 then pick rng binops_nan
      else pick rng binops_safe
    in
    Expr.Binop
      ( b,
        gen_pure_expr cfg rng ~rank (depth - 1),
        gen_pure_expr cfg rng ~rank (depth - 1) )

let trace_binop cfg rng =
  if cfg.trace_nan_ops && chance rng 30 then pick rng binops_nan
  else pick rng binops_safe

let trace_unop cfg rng =
  if cfg.trace_nan_ops && chance rng 30 then pick rng unops_nan
  else pick rng unops_safe

(* Combinator callbacks: always consume the placeholder(s), padded
   with pure subexpressions. *)
let gen_map_fn cfg rng ~rank =
  let k = Support.Prng.next_int rng 100 in
  if k < 30 then fun x -> Expr.Unop (trace_unop cfg rng, x)
  else if k < 80 then
    let op = trace_binop cfg rng in
    let e = gen_pure_expr cfg rng ~rank 2 in
    let flip = chance rng 50 in
    fun x -> if flip then Expr.Binop (op, x, e) else Expr.Binop (op, e, x)
  else
    let cmp = pick rng cmps in
    let e = gen_pure_expr cfg rng ~rank 1 in
    let e' = gen_pure_expr cfg rng ~rank 1 in
    fun x -> Expr.Select (Expr.Binop (cmp, x, e), x, e')

let gen_zip_fn cfg rng =
  let k = Support.Prng.next_int rng 100 in
  if k < 70 then
    let op = trace_binop cfg rng in
    fun x y -> Expr.Binop (op, x, y)
  else
    let cmp = pick rng cmps in
    fun x y -> Expr.Select (Expr.Binop (cmp, x, y), x, y)

let gen_shift_vec rng rank =
  let d = Array.init rank (fun _ -> Support.Prng.next_int rng 3 - 1) in
  if Array.for_all (fun x -> x = 0) d then d.(Support.Prng.next_int rng rank) <- 1;
  d

let generate_traced ?(cfg = default_trace) ?(level = Compilers.Driver.C2F3) rng
    =
  let module T = Lazyarr.Trace in
  let ctx = T.create ~name:"trace" ~level () in
  let rank = 1 + Support.Prng.next_int rng (min 3 (max 1 cfg.trace_rank)) in
  let n = edge rank in
  let base = Region.of_bounds (List.init rank (fun _ -> (0, n + 1))) in
  let source () = T.gen ctx base (gen_pure_expr cfg rng ~rank 2) in
  let pool = ref [ source () ] in
  let pick_arr () =
    List.nth !pool (Support.Prng.next_int rng (List.length !pool))
  in
  let n_ops = 1 + Support.Prng.next_int rng (max 1 cfg.max_ops) in
  for _ = 1 to n_ops do
    let k = Support.Prng.next_int rng 100 in
    let a =
      if k < 15 then source ()
      else if k < 50 then T.map (gen_map_fn cfg rng ~rank) (pick_arr ())
      else if k < 70 then T.shift (gen_shift_vec rng rank) (pick_arr ())
      else
        (* zip_with needs operands whose regions intersect *)
        let x = pick_arr () in
        let candidates =
          List.filter
            (fun y ->
              Region.inter (T.region_of x) (T.region_of y) <> None)
            !pool
        in
        match candidates with
        | [] -> T.map (gen_map_fn cfg rng ~rank) x
        | cs ->
            let y = List.nth cs (Support.Prng.next_int rng (List.length cs)) in
            T.zip_with (gen_zip_fn cfg rng) x y
    in
    pool := a :: !pool
  done;
  let last = List.hd !pool in
  if cfg.trace_reductions && chance rng 30 then
    let s = T.reduce (pick rng redops) last in
    { ctx; sink = Scalar s; trace_prog = T.lower_direct_scalar ctx s }
  else { ctx; sink = Arr last; trace_prog = T.lower_direct ctx last }

let generate_trace ?cfg rng = (generate_traced ?cfg rng).trace_prog
