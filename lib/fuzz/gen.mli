(** Seeded, deterministic random-program generator.

    The differential oracle's input source: array programs over
    regions of rank 1–3 with [@] offsets on reads and writes,
    reductions over all four operators, sequential loops, scalar
    assignments, [Select], and (by default) the NaN-producing
    operations Div, Pow, Log and Sqrt.  The stream is a pure function
    of the {!Support.Prng} state — no global [Random] involved — so a
    seed names a reproducible program forever. *)

type cfg = {
  max_rank : int;  (** region ranks drawn from 1..max_rank (≤ 3) *)
  max_stmts : int;  (** top-level statement budget *)
  max_depth : int;  (** expression tree depth *)
  nan_ops : bool;  (** include Div/Pow/Log/Sqrt in the op pools *)
  offsets : bool;  (** allow @ offsets on references and targets *)
  reductions : bool;
  loops : bool;
  selects : bool;
}

val default : cfg

val generate : ?cfg:cfg -> Support.Prng.t -> Ir.Prog.t
(** Draw the next program from the stream.  The result always passes
    [Ir.Prog.validate]. *)
