(** Seeded, deterministic random-program generator.

    The differential oracle's input source: array programs over
    regions of rank 1–3 with [@] offsets on reads and writes,
    reductions over all four operators, sequential loops, scalar
    assignments, [Select], and (by default) the NaN-producing
    operations Div, Pow, Log and Sqrt.  The stream is a pure function
    of the {!Support.Prng} state — no global [Random] involved — so a
    seed names a reproducible program forever. *)

type cfg = {
  max_rank : int;  (** region ranks drawn from 1..max_rank (≤ 3) *)
  max_stmts : int;  (** top-level statement budget *)
  max_depth : int;  (** expression tree depth *)
  nan_ops : bool;  (** include Div/Pow/Log/Sqrt in the op pools *)
  offsets : bool;  (** allow @ offsets on references and targets *)
  reductions : bool;
  loops : bool;
  selects : bool;
}

val default : cfg

val generate : ?cfg:cfg -> Support.Prng.t -> Ir.Prog.t
(** Draw the next program from the stream.  The result always passes
    [Ir.Prog.validate]. *)

(** {1 Trace mode}

    Instead of drawing a whole program, draw a random sequence of
    {!Lazyarr.Trace} combinator applications — sources, maps, shifts,
    zips, optionally a reduction sink — and return both the live trace
    (context + sink, for forcing through the lazy frontend) and its
    direct lowering (for replaying through the differential
    {!Oracle}).  Deterministic from the [Prng] stream, like
    {!generate}. *)

type trace_cfg = {
  max_ops : int;  (** combinator budget beyond the initial source *)
  trace_rank : int;  (** ranks drawn from 1..trace_rank (≤ 3) *)
  trace_nan_ops : bool;  (** include Div/Pow/Log/Sqrt in the op pools *)
  trace_reductions : bool;  (** allow a reduction sink *)
}

val default_trace : trace_cfg

type sink = Arr of Lazyarr.Trace.arr | Scalar of Lazyarr.Trace.scalar

type traced = {
  ctx : Lazyarr.Trace.ctx;
  sink : sink;
  trace_prog : Ir.Prog.t;
      (** [Lazyarr.Trace.lower_direct] of [sink]: the eager twin whose
          checksum every backend — and the lazy force of [sink] — must
          reproduce.  Always passes [Ir.Prog.validate]. *)
}

val generate_traced :
  ?cfg:trace_cfg -> ?level:Compilers.Driver.level -> Support.Prng.t -> traced
(** [level] (default [C2F3]) configures the trace context's compile
    level — it affects how [sink] will be {e forced}, never
    [trace_prog]. *)

val generate_trace : ?cfg:trace_cfg -> Support.Prng.t -> Ir.Prog.t
(** Just the lowered program of {!generate_traced} (the campaign's
    trace-mode input source). *)
