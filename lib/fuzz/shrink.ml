(* Greedy structural shrinking of failing programs.

   Given a predicate [check] ("the divergence still reproduces"), walk
   the space of one-step simplifications — drop a statement, unwrap a
   loop, collapse a loop to one trip, shrink a region extent, zero a
   write offset, replace a subexpression by one of its children or by
   a constant, drop a live-out, drop an unused declaration — and
   repeatedly take the first candidate that is still valid and still
   fails.  Candidates are ordered most-aggressive-first so the common
   case (one guilty statement in a large program) collapses quickly. *)

open Ir

(* ------------------------------------------------------------------ *)
(* Expression simplifications                                          *)
(* ------------------------------------------------------------------ *)

let rec expr_shrinks (e : Expr.t) : Expr.t list =
  let children =
    match e with
    | Expr.Const _ | Expr.Svar _ | Expr.Ref _ | Expr.Idx _ -> []
    | Expr.Unop (_, a) -> [ a ]
    | Expr.Binop (_, a, b) -> [ a; b ]
    | Expr.Select (c, a, b) -> [ c; a; b ]
  in
  let const =
    match e with Expr.Const _ -> [] | _ -> [ Expr.Const 1.0 ]
  in
  let deeper =
    match e with
    | Expr.Const _ | Expr.Svar _ | Expr.Ref _ | Expr.Idx _ -> []
    | Expr.Unop (op, a) ->
        List.map (fun a' -> Expr.Unop (op, a')) (expr_shrinks a)
    | Expr.Binop (op, a, b) ->
        List.map (fun a' -> Expr.Binop (op, a', b)) (expr_shrinks a)
        @ List.map (fun b' -> Expr.Binop (op, a, b')) (expr_shrinks b)
    | Expr.Select (c, a, b) ->
        List.map (fun c' -> Expr.Select (c', a, b)) (expr_shrinks c)
        @ List.map (fun a' -> Expr.Select (c, a', b)) (expr_shrinks a)
        @ List.map (fun b' -> Expr.Select (c, a, b')) (expr_shrinks b)
  in
  children @ const @ deeper

let region_shrinks r =
  List.concat
    (List.init (Region.rank r) (fun d ->
         let { Region.lo; hi } = Region.range r (d + 1) in
         if hi <= lo then []
         else
           let with_hi hi' =
             Region.of_bounds
               (List.init (Region.rank r) (fun k ->
                    let { Region.lo; hi } = Region.range r (k + 1) in
                    if k = d then (lo, hi') else (lo, hi)))
           in
           let mid = lo + ((hi - lo) / 2) in
           with_hi lo :: (if mid < hi then [ with_hi mid ] else [])))

(* ------------------------------------------------------------------ *)
(* Statement simplifications                                           *)
(* ------------------------------------------------------------------ *)

let rec stmt_shrinks (s : Prog.stmt) : Prog.stmt list =
  match s with
  | Prog.Astmt n ->
      List.map
        (fun region -> Prog.Astmt { n with Nstmt.region })
        (region_shrinks n.Nstmt.region)
      @ (if Support.Vec.is_null n.Nstmt.lhs_off then []
         else
           [
             Prog.Astmt
               {
                 n with
                 Nstmt.lhs_off = Support.Vec.zero (Region.rank n.Nstmt.region);
               };
           ])
      @ List.filter_map
          (fun rhs ->
            (* the shrunk rhs must stay in normal form (lhs unread) *)
            if List.mem n.Nstmt.lhs (Expr.ref_names rhs) then None
            else Some (Prog.Astmt { n with Nstmt.rhs }))
          (expr_shrinks n.Nstmt.rhs)
  | Prog.Reduce r ->
      List.map (fun region -> Prog.Reduce { r with region })
        (region_shrinks r.region)
      @ List.map (fun arg -> Prog.Reduce { r with arg }) (expr_shrinks r.arg)
  | Prog.Sassign (x, e) ->
      List.map (fun e' -> Prog.Sassign (x, e')) (expr_shrinks e)
  | Prog.Sloop l ->
      (if l.hi > l.lo then [ Prog.Sloop { l with hi = l.lo } ] else [])
      @ List.map (fun body -> Prog.Sloop { l with body }) (body_shrinks l.body)

(* one-edit variants of a statement list *)
and body_shrinks (stmts : Prog.stmt list) : Prog.stmt list list =
  let removals =
    List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) stmts) stmts
  in
  let unwraps =
    List.concat
      (List.mapi
         (fun i s ->
           match s with
           | Prog.Sloop { body; _ } ->
               [
                 List.concat
                   (List.mapi
                      (fun j s' -> if j = i then body else [ s' ])
                      stmts);
               ]
           | _ -> [])
         stmts)
  in
  let inplace =
    List.concat
      (List.mapi
         (fun i s ->
           List.map
             (fun s' -> List.mapi (fun j x -> if j = i then s' else x) stmts)
             (stmt_shrinks s))
         stmts)
  in
  removals @ unwraps @ inplace

(* ------------------------------------------------------------------ *)
(* Program simplifications                                             *)
(* ------------------------------------------------------------------ *)

let used_arrays (p : Prog.t) =
  let seen = Hashtbl.create 16 in
  let expr e = List.iter (fun x -> Hashtbl.replace seen x ()) (Expr.ref_names e) in
  let rec stmt = function
    | Prog.Astmt n ->
        Hashtbl.replace seen n.Nstmt.lhs ();
        expr n.Nstmt.rhs
    | Prog.Reduce { arg; _ } -> expr arg
    | Prog.Sassign (_, e) -> expr e
    | Prog.Sloop { body; _ } -> List.iter stmt body
  in
  List.iter stmt p.Prog.body;
  seen

let prog_shrinks (p : Prog.t) : Prog.t list =
  let bodies =
    List.filter_map
      (fun body -> if body = [] then None else Some { p with Prog.body })
      (body_shrinks p.Prog.body)
  in
  let live =
    if List.length p.Prog.live_out <= 1 then []
    else
      List.mapi
        (fun i _ ->
          { p with Prog.live_out = List.filteri (fun j _ -> j <> i) p.Prog.live_out })
        p.Prog.live_out
  in
  let unused =
    let used = used_arrays p in
    List.filter_map
      (fun (a : Prog.array_info) ->
        if Hashtbl.mem used a.name || List.mem a.name p.Prog.live_out then None
        else
          Some
            {
              p with
              Prog.arrays =
                List.filter
                  (fun (b : Prog.array_info) -> b.name <> a.name)
                  p.Prog.arrays;
            })
      p.Prog.arrays
  in
  bodies @ live @ unused

let run ?(max_checks = 400) ~check (p : Prog.t) =
  let budget = ref max_checks in
  let try_candidate q =
    !budget > 0
    &&
    match Prog.validate q with
    | Error _ -> false
    | Ok () ->
        decr budget;
        check q
  in
  let rec go p =
    match List.find_opt try_candidate (prog_shrinks p) with
    | Some q -> go q
    | None -> p
  in
  go p
