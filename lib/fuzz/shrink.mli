(** Greedy structural shrinking of failing programs.

    [run ~check p] repeatedly replaces [p] by the first one-step
    simplification that is still {!Ir.Prog.validate}-clean and for
    which [check] still returns [true] ("the divergence still
    reproduces"), until no simplification does or the check budget
    runs out.  Simplification steps: drop a statement, unwrap or
    collapse a loop, shrink a region extent, zero a write offset,
    replace a subexpression by a child or a constant, drop a live-out
    or an unused declaration. *)

val prog_shrinks : Ir.Prog.t -> Ir.Prog.t list
(** All one-step simplifications, most aggressive first.  Candidates
    are not validated. *)

val run : ?max_checks:int -> check:(Ir.Prog.t -> bool) -> Ir.Prog.t -> Ir.Prog.t
(** [max_checks] bounds the number of [check] invocations (default
    400); the original [p] is assumed to already satisfy [check]. *)
