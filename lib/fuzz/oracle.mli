(** The differential oracle.

    Runs one program through every executor in the repo and compares
    live-out checksums against the reference interpreter:
    {!Exec.Interp} on the code of each greedy optimization level,
    the search-based and ILP planners, the SPMD engine at several
    processor counts, and — when a C compiler is available — the
    {!Native} runner built from the {!Sir.Emit_c} translation units.
    Checksums use
    {!Exec.Interp.Digest}, which canonicalizes NaN payloads, so only
    semantic differences register. *)

type status =
  | Agree
  | Diverged of { expected : string; got : string }
  | Crashed of string
      (** the backend raised (compile error, runtime error, engine
          invariant violation) — counted as a divergence *)
  | Skipped of string
      (** outside the backend's domain (SPMD halo deeper than a
          chunk, no C compiler installed) — not a divergence *)

type report = {
  reference : string option;  (** refinterp checksum; [None] = it crashed *)
  results : (string * status) list;
      (** backend name → status, e.g. [("interp@c2+f3", Agree)],
          [("spmd@c2+f3/p16", Skipped _)], [("native@baseline", ...)] *)
}

type cfg = {
  levels : Compilers.Driver.level list;  (** greedy ladder to check *)
  planner : bool;  (** also run the search and ILP planners *)
  plan_procs : int;  (** processor count the planners optimize for *)
  spmd_level : Compilers.Driver.level;
  spmd_procs : int list;
  native : bool;  (** compile the emitted C when [cc] is present *)
  native_levels : Compilers.Driver.level list;
  machine : Machine.t;
}

val default : cfg
(** Everything on: [base..c2+f4] plus [c2+p], the search and ILP
    planners, SPMD at 1/4/16 processors, native C at baseline and
    [c2+f3]. *)

val cc_available : unit -> bool
(** Whether a [cc] is on PATH — delegates to
    {!Native.Toolchain.available} (probed once process-wide, cached in
    an atomic; safe to call from any domain). *)

val run : ?cfg:cfg -> Ir.Prog.t -> report
(** The program must be [Ir.Prog.validate]-clean.  Never raises: a
    backend failure of any kind is recorded in the report. *)

val divergences : report -> (string * status) list
(** The [Diverged] and [Crashed] entries. *)

val ok : report -> bool
(** No divergences and the reference itself ran. *)

val skips : report -> (string * status) list

val focus : report -> cfg -> cfg
(** Narrow [cfg] to the backend families implicated by the report's
    divergences — the shrinker's per-candidate check budget. *)

val pp : Format.formatter -> report -> unit
val to_string : report -> string
