(* A seeded fuzz campaign: the one sweep loop shared by [zapc --fuzz],
   the bench fuzz section and the determinism tests.

   Per-case PRNG streams are split off the campaign seed sequentially
   *before* any task runs, so case [i] sees the same stream whether
   the campaign runs on 1 domain or 8; the pool returns reports in
   case order.  A campaign is therefore a pure function of
   (cfg, gen, trace, n, seed) — byte-identical output at any [jobs].

   If the calling domain has an [Obs] recorder installed, each case
   runs under its own child recorder (recorders are domain-local and
   must not be shared across pool workers) and the child reports are
   merged back in case order — deterministic counters regardless of
   domain scheduling. *)

type case = {
  index : int;  (** 1-based case number *)
  program : Ir.Prog.t;
  report : Oracle.report;
}

let run ?(cfg = Oracle.default) ?(gen = Gen.default) ?(trace = false)
    ?(jobs = 1) ~n ~seed () =
  let rng = Support.Prng.create seed in
  let tasks = List.init n (fun i -> (i + 1, Support.Prng.split rng)) in
  let parent = Obs.active () in
  let results =
    Support.Pool.map ~domains:jobs
      (fun (index, rng) ->
        let exec () =
          let program =
            if trace then Gen.generate_trace rng
            else Gen.generate ~cfg:gen rng
          in
          let report = Oracle.run ~cfg program in
          { index; program; report }
        in
        match parent with
        | None -> (exec (), None)
        | Some _ ->
            let r = Obs.create () in
            let case = Obs.run r exec in
            (case, Some (Obs.report r)))
      tasks
  in
  (match parent with
  | Some p ->
      List.iter
        (function _, Some child -> Obs.merge p child | _, None -> ())
        results
  | None -> ());
  List.map fst results

let divergent cases =
  List.filter (fun c -> not (Oracle.ok c.report)) cases

let skipped_runs cases =
  List.fold_left
    (fun acc c -> acc + List.length (Oracle.skips c.report))
    0 cases

let backend_runs cases =
  List.fold_left
    (fun acc c -> acc + List.length c.report.Oracle.results)
    0 cases
