(** Seeded differential-fuzz campaigns over a domain pool.

    The sweep loop shared by [zapc --fuzz], the bench fuzz section and
    the parallel-determinism tests: generate [n] programs from [seed]
    (one {!Support.Prng.split} stream per case, split off sequentially
    before any task runs) and push each through the full differential
    {!Oracle}, fanning the cases out over [jobs] domains with
    {!Support.Pool.map}.

    Determinism contract: the returned cases — programs, reports,
    order — are a pure function of [(cfg, gen, trace, n, seed)].  [jobs]
    changes wall-clock time only; reports are byte-identical at any
    domain count.  When the caller has an {!Obs} recorder installed,
    per-case child recorders are merged back in case order, so
    counters are deterministic too. *)

type case = {
  index : int;  (** 1-based case number *)
  program : Ir.Prog.t;
  report : Oracle.report;
}

val run :
  ?cfg:Oracle.cfg ->
  ?gen:Gen.cfg ->
  ?trace:bool ->
  ?jobs:int ->
  n:int ->
  seed:int64 ->
  unit ->
  case list
(** Run the campaign; cases are returned in case order (index 1..n).
    [jobs] defaults to 1 (sequential in the calling domain).
    [trace] (default [false]) draws each case from
    {!Gen.generate_trace} — a random lazy-combinator trace's direct
    lowering — instead of {!Gen.generate}; [gen] is ignored in that
    mode. *)

val divergent : case list -> case list
(** The cases whose oracle report has a divergence or crash. *)

val skipped_runs : case list -> int
(** Total backend runs skipped across the campaign. *)

val backend_runs : case list -> int
(** Total backend runs executed across the campaign. *)
