(* The differential oracle: every way this repo can execute a program
   must produce the same live-out checksum.

   The reference is Exec.Refinterp (array semantics, no optimization).
   Against it we hold:
     - Exec.Interp on the code of every greedy optimization level
       (the paper ladder base..c2+f4, plus the c2+p extension);
     - the search-based planner (zapc --plan search);
     - the SPMD engine on 1/4/16 simulated processors;
     - when a C compiler is present, the Sir.Emit_c translation unit,
       compiled and executed natively.

   Checksums go through Interp.Digest, which canonicalizes NaN
   payloads — a payload difference between OCaml's ** and libm's pow
   is not a semantic divergence.  SPMD configurations outside the
   engine's domain (halo deeper than a chunk) are Skipped, not
   failures; everything else that does not reproduce the reference
   checksum — including any exception out of a backend — is a
   divergence. *)

type status =
  | Agree
  | Diverged of { expected : string; got : string }
  | Crashed of string
  | Skipped of string

type report = {
  reference : string option;  (** refinterp checksum; None = it crashed *)
  results : (string * status) list;
}

type cfg = {
  levels : Compilers.Driver.level list;
  planner : bool;
  plan_procs : int;
  spmd_level : Compilers.Driver.level;
  spmd_procs : int list;
  native : bool;
  native_levels : Compilers.Driver.level list;
  machine : Machine.t;
}

let default =
  {
    levels = Compilers.Driver.all_levels @ [ Compilers.Driver.C2P ];
    planner = true;
    plan_procs = 4;
    spmd_level = Compilers.Driver.C2F3;
    spmd_procs = [ 1; 4; 16 ];
    native = true;
    native_levels = Compilers.Driver.[ Baseline; C2F3 ];
    machine = Machine.t3e;
  }

(* Not a [lazy]: forcing a lazy concurrently from two domains raises
   Lazy.Undefined, and parallel campaigns probe this from every
   worker.  Racing the probe itself is harmless — both domains compute
   the same answer. *)
let cc_available =
  let cached = Atomic.make None in
  fun () ->
    match Atomic.get cached with
    | Some v -> v
    | None ->
        let v = Sys.command "cc --version > /dev/null 2>&1" = 0 in
        Atomic.set cached (Some v);
        v

(* ------------------------------------------------------------------ *)
(* Native execution of the emitted C                                   *)
(* ------------------------------------------------------------------ *)

(* -fno-builtin keeps the compiler from constant-folding libm calls
   (its compile-time evaluation may differ from the runtime libm the
   interpreters share by an ulp); -ffp-contract=off forbids fusing
   a*b+c into fma, which changes results on fma hardware. *)
let cc_cmd = "cc -O2 -fno-builtin -ffp-contract=off"

(* mkdtemp-style workdir creation.  The old
   [Filename.temp_file] → [Sys.remove] → [Sys.mkdir] dance had a
   TOCTOU window: between the remove and the mkdir another process (or
   domain) could claim the same name, and parallel campaigns hit
   exactly that.  [mkdir] itself is the atomic claim — we retry over
   randomized names until one succeeds, and each task therefore owns a
   unique workdir.

   [salt] is derived from the case being run (the emitted C source,
   itself a pure function of the per-case PRNG seed), NOT from the
   wall clock: two domains starting their cases in the same
   microsecond used to share a gettimeofday-derived salt and burn
   mkdir retries against each other.  The atomic counter alone makes
   names unique within the process; the salt keeps them distinct
   across processes that share a recycled pid. *)
let dir_counter = Atomic.make 0

let make_temp_dir ~salt () =
  let base = Filename.get_temp_dir_name () in
  let pid = Unix.getpid () in
  let salt0 = salt land 0xFFFFFF in
  let rec go attempt =
    if attempt >= 1000 then
      raise (Sys_error "zapfuzz: cannot create a unique temp directory")
    else begin
      let name =
        Printf.sprintf "zapfuzz-%d-%d-%06x" pid
          (Atomic.fetch_and_add dir_counter 1)
          ((salt0 + (attempt * 0x9E3779)) land 0xFFFFFF)
      in
      let dir = Filename.concat base name in
      match Sys.mkdir dir 0o700 with
      | () -> dir
      | exception Sys_error _ when not (Sys.file_exists dir) ->
          (* the parent is missing or unwritable: retrying cannot help *)
          raise
            (Sys_error (Printf.sprintf "zapfuzz: cannot create %s" dir))
      | exception Sys_error _ -> go (attempt + 1)
    end
  in
  go 0

let run_native (code : Sir.Code.program) =
  let src = Sir.Emit_c.to_string code in
  let dir = make_temp_dir ~salt:(Hashtbl.hash src) () in
  let c_path = Filename.concat dir "prog.c" in
  let exe_path = Filename.concat dir "prog" in
  let out_path = Filename.concat dir "out" in
  let err_path = Filename.concat dir "cerr" in
  (* tolerate partially-created state: remove whatever is present and
     ignore a dir that another cleanup (or a crash) already removed *)
  let cleanup () =
    (match Sys.readdir dir with
    | entries ->
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
          entries
    | exception Sys_error _ -> ());
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let oc = open_out c_path in
  output_string oc src;
  close_out oc;
  let compile =
    Printf.sprintf "%s -o %s %s -lm 2> %s" cc_cmd (Filename.quote exe_path)
      (Filename.quote c_path) (Filename.quote err_path)
  in
  if Sys.command compile <> 0 then begin
    let ic = open_in err_path in
    let err = really_input_string ic (min 500 (in_channel_length ic)) in
    close_in ic;
    Error (Printf.sprintf "cc failed: %s" (String.trim err))
  end
  else if
    Sys.command
      (Printf.sprintf "%s > %s" (Filename.quote exe_path)
         (Filename.quote out_path))
    <> 0
  then Error "compiled program crashed"
  else begin
    let ic = open_in out_path in
    let line = try input_line ic with End_of_file -> "" in
    close_in ic;
    Ok (String.trim line)
  end

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

let compile_result ~level prog =
  match Compilers.Driver.(compile_opts (opts level)) prog with
  | Ok c -> Ok c
  | Error d -> Error ("compile: " ^ Obs.Diagnostic.to_string d)
  | exception e -> Error ("compile: " ^ Printexc.to_string e)

let run ?(cfg = default) prog =
  match Exec.Refinterp.run prog with
  | exception Exec.Refinterp.Runtime_error m ->
      { reference = None; results = [ ("refinterp", Crashed m) ] }
  | exception e ->
      { reference = None; results = [ ("refinterp", Crashed (Printexc.to_string e)) ] }
  | reference -> (
      match Exec.Refinterp.checksum reference with
      | exception e ->
          {
            reference = None;
            results = [ ("refinterp", Crashed (Printexc.to_string e)) ];
          }
      | want ->
          let results = ref [] in
          let record name st = results := (name, st) :: !results in
          let check name got =
            record name
              (if String.equal got want then Agree
               else Diverged { expected = want; got })
          in
          (* interpreter at every greedy level *)
          List.iter
            (fun level ->
              let name = "interp@" ^ Compilers.Driver.level_name level in
              match compile_result ~level prog with
              | Error m -> record name (Crashed m)
              | Ok c -> (
                  match Exec.Interp.run c.Compilers.Driver.code with
                  | r -> check name (Exec.Interp.checksum r)
                  | exception Exec.Interp.Runtime_error m ->
                      record name (Crashed m)
                  | exception e -> record name (Crashed (Printexc.to_string e))))
            cfg.levels;
          (* search-based and ILP planners — both must agree with the
             reference; fuzz programs are small, so a modest column cap
             keeps the ILP's worst case bounded without ever affecting
             correctness (capped blocks fall back, which is exactly a
             code path worth fuzzing) *)
          if cfg.planner then begin
            let cost () =
              Plan.Cost.create
                {
                  Plan.Cost.machine = cfg.machine;
                  procs = cfg.plan_procs;
                  opts = Comm.Model.all_on;
                }
                prog
            in
            (let name = "plan@search" in
             match Plan.Driver.compile ~cost:(cost ()) prog with
             | Ok (c, _) -> (
                 match Exec.Interp.run c.Compilers.Driver.code with
                 | r -> check name (Exec.Interp.checksum r)
                 | exception Exec.Interp.Runtime_error m ->
                     record name (Crashed m))
             | Error d ->
                 record name (Crashed ("compile: " ^ Obs.Diagnostic.to_string d))
             | exception e -> record name (Crashed (Printexc.to_string e)));
            let name = "plan@ilp" in
            let ilp = { Plan.Ilp.default with Plan.Ilp.max_clusters = 512 } in
            match Plan.Driver.compile_ilp ~ilp ~cost:(cost ()) prog with
            | Ok (c, _) -> (
                match Exec.Interp.run c.Compilers.Driver.code with
                | r -> check name (Exec.Interp.checksum r)
                | exception Exec.Interp.Runtime_error m -> record name (Crashed m))
            | Error d ->
                record name (Crashed ("compile: " ^ Obs.Diagnostic.to_string d))
            | exception e -> record name (Crashed (Printexc.to_string e))
          end;
          (* SPMD on the simulated processor grid *)
          if cfg.spmd_procs <> [] then begin
            let lname = Compilers.Driver.level_name cfg.spmd_level in
            match compile_result ~level:cfg.spmd_level prog with
            | Error m ->
                List.iter
                  (fun procs ->
                    record
                      (Printf.sprintf "spmd@%s/p%d" lname procs)
                      (Crashed m))
                  cfg.spmd_procs
            | Ok c ->
                List.iter
                  (fun procs ->
                    let name = Printf.sprintf "spmd@%s/p%d" lname procs in
                    match
                      Spmd.execute
                        {
                          Spmd.machine = cfg.machine;
                          procs;
                          opts = Comm.Model.all_on;
                          cachesim = false;
                        }
                        c
                    with
                    | r -> check name r.Spmd.checksum
                    | exception Spmd.Unsupported m -> record name (Skipped m)
                    | exception Spmd.Runtime_error m -> record name (Crashed m)
                    | exception e ->
                        record name (Crashed (Printexc.to_string e)))
                  cfg.spmd_procs
          end;
          (* native, through the emitted C *)
          if cfg.native then begin
            if cc_available () then
              List.iter
                (fun level ->
                  let name = "cc@" ^ Compilers.Driver.level_name level in
                  match compile_result ~level prog with
                  | Error m -> record name (Crashed m)
                  | Ok c -> (
                      match run_native c.Compilers.Driver.code with
                      | Ok got -> check name got
                      | Error m -> record name (Crashed m)
                      | exception e ->
                          record name (Crashed (Printexc.to_string e))))
                cfg.native_levels
            else record "cc" (Skipped "no C compiler")
          end;
          { reference = Some want; results = List.rev !results })

let divergences r =
  List.filter
    (fun (_, st) -> match st with Diverged _ | Crashed _ -> true | _ -> false)
    r.results

let ok r = r.reference <> None && divergences r = []

let skips r =
  List.filter (fun (_, st) -> match st with Skipped _ -> true | _ -> false)
    r.results

(* Narrow a cfg to the backend families that actually diverged — the
   shrinker re-runs the oracle per candidate and must not pay for
   (especially) cc invocations that were never implicated. *)
let focus r cfg =
  let div = divergences r in
  let has pre = List.exists (fun (n, _) -> Astring.String.is_prefix ~affix:pre n) div in
  if r.reference = None then { cfg with native = false; spmd_procs = [] }
  else
    {
      cfg with
      planner = cfg.planner && has "plan@";
      spmd_procs = (if has "spmd@" then cfg.spmd_procs else []);
      native = cfg.native && has "cc@";
      levels = (if has "interp@" then cfg.levels else []);
    }

let pp_status ppf = function
  | Agree -> Format.pp_print_string ppf "agree"
  | Diverged { expected; got } ->
      Format.fprintf ppf "DIVERGED (want %s, got %s)" expected got
  | Crashed m -> Format.fprintf ppf "CRASHED (%s)" m
  | Skipped m -> Format.fprintf ppf "skipped (%s)" m

let pp ppf r =
  (match r.reference with
  | Some sum -> Format.fprintf ppf "refinterp %s@," sum
  | None -> Format.fprintf ppf "refinterp CRASHED@,");
  List.iter
    (fun (name, st) -> Format.fprintf ppf "%-18s %a@," name pp_status st)
    r.results

let to_string r = Format.asprintf "@[<v>%a@]" pp r
