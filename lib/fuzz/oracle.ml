(* The differential oracle: every way this repo can execute a program
   must produce the same live-out checksum.

   The reference is Exec.Refinterp (array semantics, no optimization).
   Against it we hold:
     - Exec.Interp on the code of every greedy optimization level
       (the paper ladder base..c2+f4, plus the c2+p extension);
     - the search-based planner (zapc --plan search);
     - the SPMD engine on 1/4/16 simulated processors;
     - when a C compiler is present, the Native runner built from the
       Sir.Emit_c translation units and executed as a subprocess.

   Checksums go through Interp.Digest, which canonicalizes NaN
   payloads — a payload difference between OCaml's ** and libm's pow
   is not a semantic divergence.  SPMD configurations outside the
   engine's domain (halo deeper than a chunk) are Skipped, not
   failures; everything else that does not reproduce the reference
   checksum — including any exception out of a backend — is a
   divergence. *)

type status =
  | Agree
  | Diverged of { expected : string; got : string }
  | Crashed of string
  | Skipped of string

type report = {
  reference : string option;  (** refinterp checksum; None = it crashed *)
  results : (string * status) list;
}

type cfg = {
  levels : Compilers.Driver.level list;
  planner : bool;
  plan_procs : int;
  spmd_level : Compilers.Driver.level;
  spmd_procs : int list;
  native : bool;
  native_levels : Compilers.Driver.level list;
  machine : Machine.t;
}

let default =
  {
    levels = Compilers.Driver.all_levels @ [ Compilers.Driver.C2P ];
    planner = true;
    plan_procs = 4;
    spmd_level = Compilers.Driver.C2F3;
    spmd_procs = [ 1; 4; 16 ];
    native = true;
    native_levels = Compilers.Driver.[ Baseline; C2F3 ];
    machine = Machine.t3e;
  }

(* The probe, the subprocess plumbing, and the workdir logic all live
   in [Native] now; the oracle only decides what to run and how to
   record the outcome.  [Native.Build] invokes every subprocess through
   [Unix.create_process] with an argv array — no shell ever parses a
   path, so workdirs with spaces or metacharacters are safe — and its
   errors carry the exact command line and exit status. *)
let cc_available () = Native.Toolchain.available ()

(* ------------------------------------------------------------------ *)
(* The oracle                                                          *)
(* ------------------------------------------------------------------ *)

let compile_result ~level prog =
  match Compilers.Driver.(compile_opts (opts level)) prog with
  | Ok c -> Ok c
  | Error d -> Error ("compile: " ^ Obs.Diagnostic.to_string d)
  | exception e -> Error ("compile: " ^ Printexc.to_string e)

let run ?(cfg = default) prog =
  match Exec.Refinterp.run prog with
  | exception Exec.Refinterp.Runtime_error m ->
      { reference = None; results = [ ("refinterp", Crashed m) ] }
  | exception e ->
      { reference = None; results = [ ("refinterp", Crashed (Printexc.to_string e)) ] }
  | reference -> (
      match Exec.Refinterp.checksum reference with
      | exception e ->
          {
            reference = None;
            results = [ ("refinterp", Crashed (Printexc.to_string e)) ];
          }
      | want ->
          let results = ref [] in
          let record name st = results := (name, st) :: !results in
          let check name got =
            record name
              (if String.equal got want then Agree
               else Diverged { expected = want; got })
          in
          (* interpreter at every greedy level *)
          List.iter
            (fun level ->
              let name = "interp@" ^ Compilers.Driver.level_name level in
              match compile_result ~level prog with
              | Error m -> record name (Crashed m)
              | Ok c -> (
                  match Exec.Interp.run c.Compilers.Driver.code with
                  | r -> check name (Exec.Interp.checksum r)
                  | exception Exec.Interp.Runtime_error m ->
                      record name (Crashed m)
                  | exception e -> record name (Crashed (Printexc.to_string e))))
            cfg.levels;
          (* search-based and ILP planners — both must agree with the
             reference; fuzz programs are small, so a modest column cap
             keeps the ILP's worst case bounded without ever affecting
             correctness (capped blocks fall back, which is exactly a
             code path worth fuzzing) *)
          if cfg.planner then begin
            let cost () =
              Plan.Cost.create
                {
                  Plan.Cost.machine = cfg.machine;
                  procs = cfg.plan_procs;
                  opts = Comm.Model.all_on;
                }
                prog
            in
            (let name = "plan@search" in
             match Plan.Driver.compile ~cost:(cost ()) prog with
             | Ok (c, _) -> (
                 match Exec.Interp.run c.Compilers.Driver.code with
                 | r -> check name (Exec.Interp.checksum r)
                 | exception Exec.Interp.Runtime_error m ->
                     record name (Crashed m))
             | Error d ->
                 record name (Crashed ("compile: " ^ Obs.Diagnostic.to_string d))
             | exception e -> record name (Crashed (Printexc.to_string e)));
            let name = "plan@ilp" in
            let ilp = { Plan.Ilp.default with Plan.Ilp.max_clusters = 512 } in
            match Plan.Driver.compile_ilp ~ilp ~cost:(cost ()) prog with
            | Ok (c, _) -> (
                match Exec.Interp.run c.Compilers.Driver.code with
                | r -> check name (Exec.Interp.checksum r)
                | exception Exec.Interp.Runtime_error m -> record name (Crashed m))
            | Error d ->
                record name (Crashed ("compile: " ^ Obs.Diagnostic.to_string d))
            | exception e -> record name (Crashed (Printexc.to_string e))
          end;
          (* SPMD on the simulated processor grid *)
          if cfg.spmd_procs <> [] then begin
            let lname = Compilers.Driver.level_name cfg.spmd_level in
            match compile_result ~level:cfg.spmd_level prog with
            | Error m ->
                List.iter
                  (fun procs ->
                    record
                      (Printf.sprintf "spmd@%s/p%d" lname procs)
                      (Crashed m))
                  cfg.spmd_procs
            | Ok c ->
                List.iter
                  (fun procs ->
                    let name = Printf.sprintf "spmd@%s/p%d" lname procs in
                    match
                      Spmd.execute
                        {
                          Spmd.machine = cfg.machine;
                          procs;
                          opts = Comm.Model.all_on;
                          cachesim = false;
                        }
                        c
                    with
                    | r -> check name r.Spmd.checksum
                    | exception Spmd.Unsupported m -> record name (Skipped m)
                    | exception Spmd.Runtime_error m -> record name (Crashed m)
                    | exception e ->
                        record name (Crashed (Printexc.to_string e)))
                  cfg.spmd_procs
          end;
          (* native, through the emitted C.  The salt for the workdir
             name is the emitted code itself (a pure function of the
             per-case PRNG seed), never the wall clock — see
             [Native.Build.fresh_workdir]. *)
          if cfg.native then begin
            if cc_available () then
              List.iter
                (fun level ->
                  let name = "native@" ^ Compilers.Driver.level_name level in
                  match compile_result ~level prog with
                  | Error m -> record name (Crashed m)
                  | Ok c -> (
                      let code = c.Compilers.Driver.code in
                      match Native.Build.run_once ~salt:(Hashtbl.hash code) code with
                      | Ok r -> check name r.Native.Build.checksum
                      | Error e ->
                          record name (Crashed (Native.Build.error_to_string e))
                      | exception e ->
                          record name (Crashed (Printexc.to_string e))))
                cfg.native_levels
            else record "native" (Skipped "no C compiler")
          end;
          { reference = Some want; results = List.rev !results })

let divergences r =
  List.filter
    (fun (_, st) -> match st with Diverged _ | Crashed _ -> true | _ -> false)
    r.results

let ok r = r.reference <> None && divergences r = []

let skips r =
  List.filter (fun (_, st) -> match st with Skipped _ -> true | _ -> false)
    r.results

(* Narrow a cfg to the backend families that actually diverged — the
   shrinker re-runs the oracle per candidate and must not pay for
   (especially) cc invocations that were never implicated. *)
let focus r cfg =
  let div = divergences r in
  let has pre = List.exists (fun (n, _) -> Astring.String.is_prefix ~affix:pre n) div in
  if r.reference = None then { cfg with native = false; spmd_procs = [] }
  else
    {
      cfg with
      planner = cfg.planner && has "plan@";
      spmd_procs = (if has "spmd@" then cfg.spmd_procs else []);
      native = cfg.native && has "native@";
      levels = (if has "interp@" then cfg.levels else []);
    }

let pp_status ppf = function
  | Agree -> Format.pp_print_string ppf "agree"
  | Diverged { expected; got } ->
      Format.fprintf ppf "DIVERGED (want %s, got %s)" expected got
  | Crashed m -> Format.fprintf ppf "CRASHED (%s)" m
  | Skipped m -> Format.fprintf ppf "skipped (%s)" m

let pp ppf r =
  (match r.reference with
  | Some sum -> Format.fprintf ppf "refinterp %s@," sum
  | None -> Format.fprintf ppf "refinterp CRASHED@,");
  List.iter
    (fun (name, st) -> Format.fprintf ppf "%-18s %a@," name pp_status st)
    r.results

let to_string r = Format.asprintf "@[<v>%a@]" pp r
