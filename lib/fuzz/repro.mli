(** Self-contained textual repros (the [test/corpus/] format).

    One s-expression per file describing a full [Ir.Prog.t]; lines
    starting with [;] are comments (seed, case, divergence class).
    Floats are printed as hex literals so every program — including
    NaN-producing shrunk repros — round-trips bit-for-bit:
    [of_string (to_string p) = Ok p]. *)

val to_string : ?comment:string -> Ir.Prog.t -> string
val of_string : string -> (Ir.Prog.t, string) result
(** Purely syntactic: run [Ir.Prog.validate] on the result before
    executing it. *)

val save : path:string -> ?comment:string -> Ir.Prog.t -> unit
val load : string -> (Ir.Prog.t, string) result
