(* Self-contained textual repros for test/corpus/.

   A repro file is one s-expression describing an Ir.Prog.t, preceded
   by optional `;` comment lines (typically the seed, case number and
   divergence that produced it).  Floats print as hex literals (%h) so
   programs round-trip bit-for-bit — a shrunk NaN repro that
   re-parses into a slightly different constant would be useless. *)

open Ir

type sexp = Atom of string | L of sexp list

exception Parse of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexing / reading                                                    *)
(* ------------------------------------------------------------------ *)

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ';' then begin
      while !i < n && s.[!i] <> '\n' do incr i done
    end
    else if c = '(' || c = ')' then begin
      toks := String.make 1 c :: !toks;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      let start = !i in
      while
        !i < n
        &&
        let c = s.[!i] in
        c <> '(' && c <> ')' && c <> ';' && c <> ' ' && c <> '\t' && c <> '\n'
        && c <> '\r'
      do
        incr i
      done;
      toks := String.sub s start (!i - start) :: !toks
    end
  done;
  List.rev !toks

let read_sexp s =
  let rec read = function
    | [] -> fail "unexpected end of input"
    | "(" :: rest ->
        let rec items acc = function
          | ")" :: rest -> (L (List.rev acc), rest)
          | toks ->
              let x, rest = read toks in
              items (x :: acc) rest
        in
        items [] rest
    | ")" :: _ -> fail "unexpected )"
    | a :: rest -> (Atom a, rest)
  in
  match read (tokenize s) with
  | x, [] -> x
  | _, t :: _ -> fail "trailing input after program: %s" t

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let float_str f =
  if Float.is_nan f then "nan"
  else if f = Float.infinity then "inf"
  else if f = Float.neg_infinity then "-inf"
  else Printf.sprintf "%h" f

let float_of_atom s =
  match s with
  | "nan" -> Float.nan
  | "inf" -> Float.infinity
  | "-inf" -> Float.neg_infinity
  | s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None -> fail "bad float %s" s)

let int_of_atom s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail "bad integer %s" s

let rec pp_sexp ppf = function
  | Atom a -> Format.pp_print_string ppf a
  | L items ->
      Format.fprintf ppf "@[<hov 1>(%a)@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_space ppf ())
           pp_sexp)
        items

let unop_tag : Expr.unop -> string = function
  | Expr.Neg -> "neg"
  | Expr.Sqrt -> "sqrt"
  | Expr.Exp -> "exp"
  | Expr.Log -> "log"
  | Expr.Sin -> "sin"
  | Expr.Cos -> "cos"
  | Expr.Abs -> "abs"
  | Expr.Floor -> "floor"
  | Expr.Not -> "not"
  | Expr.Hashrand -> "hashrand"

let binop_tag : Expr.binop -> string = function
  | Expr.Add -> "add"
  | Expr.Sub -> "sub"
  | Expr.Mul -> "mul"
  | Expr.Div -> "div"
  | Expr.Pow -> "pow"
  | Expr.Min -> "min"
  | Expr.Max -> "max"
  | Expr.Lt -> "lt"
  | Expr.Le -> "le"
  | Expr.Gt -> "gt"
  | Expr.Ge -> "ge"
  | Expr.Eq -> "eq"
  | Expr.Ne -> "ne"
  | Expr.And -> "and"
  | Expr.Or -> "or"

let unops =
  Expr.[ Neg; Sqrt; Exp; Log; Sin; Cos; Abs; Floor; Not; Hashrand ]

let binops =
  Expr.[ Add; Sub; Mul; Div; Pow; Min; Max; Lt; Le; Gt; Ge; Eq; Ne; And; Or ]

let redop_tag : Prog.redop -> string = function
  | Prog.Rsum -> "sum"
  | Prog.Rprod -> "prod"
  | Prog.Rmin -> "min"
  | Prog.Rmax -> "max"

let redop_of_tag = function
  | "sum" -> Prog.Rsum
  | "prod" -> Prog.Rprod
  | "min" -> Prog.Rmin
  | "max" -> Prog.Rmax
  | t -> fail "bad reduction operator %s" t

let rec sexp_of_expr (e : Expr.t) =
  match e with
  | Expr.Const f -> L [ Atom "const"; Atom (float_str f) ]
  | Expr.Svar s -> L [ Atom "svar"; Atom s ]
  | Expr.Idx i -> L [ Atom "idx"; Atom (string_of_int i) ]
  | Expr.Ref (x, d) ->
      L
        (Atom "ref" :: Atom x
        :: List.map
             (fun o -> Atom (string_of_int o))
             (Support.Vec.to_list d))
  | Expr.Unop (op, a) -> L [ Atom (unop_tag op); sexp_of_expr a ]
  | Expr.Binop (op, a, b) ->
      L [ Atom (binop_tag op); sexp_of_expr a; sexp_of_expr b ]
  | Expr.Select (c, a, b) ->
      L [ Atom "select"; sexp_of_expr c; sexp_of_expr a; sexp_of_expr b ]

let sexp_of_region r =
  L
    (Atom "region"
    :: List.init (Region.rank r) (fun d ->
           let { Region.lo; hi } = Region.range r (d + 1) in
           L [ Atom (string_of_int lo); Atom (string_of_int hi) ]))

let rec sexp_of_stmt (s : Prog.stmt) =
  match s with
  | Prog.Astmt n ->
      L
        [
          Atom "astmt";
          sexp_of_region n.Nstmt.region;
          Atom n.Nstmt.lhs;
          L
            (Atom "off"
            :: List.map
                 (fun o -> Atom (string_of_int o))
                 (Support.Vec.to_list n.Nstmt.lhs_off));
          sexp_of_expr n.Nstmt.rhs;
        ]
  | Prog.Reduce { target; op; region; arg } ->
      L
        [
          Atom "reduce";
          Atom target;
          Atom (redop_tag op);
          sexp_of_region region;
          sexp_of_expr arg;
        ]
  | Prog.Sassign (x, e) -> L [ Atom "set"; Atom x; sexp_of_expr e ]
  | Prog.Sloop { var; lo; hi; body } ->
      L
        (Atom "for" :: Atom var
        :: Atom (string_of_int lo)
        :: Atom (string_of_int hi)
        :: List.map sexp_of_stmt body)

let sexp_of_prog (p : Prog.t) =
  L
    [
      Atom "program";
      Atom p.Prog.name;
      L
        (Atom "arrays"
        :: List.map
             (fun (a : Prog.array_info) ->
               L
                 (Atom a.name
                 :: Atom
                      (match a.kind with
                      | Prog.User -> "user"
                      | Prog.Compiler -> "compiler")
                 :: List.init (Region.rank a.bounds) (fun d ->
                        let { Region.lo; hi } = Region.range a.bounds (d + 1) in
                        L [ Atom (string_of_int lo); Atom (string_of_int hi) ])))
             p.Prog.arrays);
      L
        (Atom "scalars"
        :: List.map
             (fun (s, v) -> L [ Atom s; Atom (float_str v) ])
             p.Prog.scalars);
      L (Atom "live" :: List.map (fun s -> Atom s) p.Prog.live_out);
      L (Atom "body" :: List.map sexp_of_stmt p.Prog.body);
    ]

let to_string ?comment p =
  let header =
    match comment with
    | None -> ""
    | Some c ->
        (String.split_on_char '\n' c
        |> List.map (fun l -> "; " ^ l)
        |> String.concat "\n")
        ^ "\n"
  in
  header ^ Format.asprintf "%a@." pp_sexp (sexp_of_prog p)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

let atom = function Atom a -> a | L _ -> fail "expected atom"

let region_of_sexp = function
  | L (Atom "region" :: dims) ->
      Region.of_bounds
        (List.map
           (function
             | L [ Atom lo; Atom hi ] -> (int_of_atom lo, int_of_atom hi)
             | _ -> fail "bad region dimension")
           dims)
  | _ -> fail "expected (region ...)"

let rec expr_of_sexp = function
  | L [ Atom "const"; Atom f ] -> Expr.Const (float_of_atom f)
  | L [ Atom "svar"; Atom s ] -> Expr.Svar s
  | L [ Atom "idx"; Atom i ] -> Expr.Idx (int_of_atom i)
  | L (Atom "ref" :: Atom x :: offs) ->
      Expr.Ref
        (x, Support.Vec.of_list (List.map (fun o -> int_of_atom (atom o)) offs))
  | L [ Atom "select"; c; a; b ] ->
      Expr.Select (expr_of_sexp c, expr_of_sexp a, expr_of_sexp b)
  | L [ Atom tag; a ] -> (
      match List.find_opt (fun op -> unop_tag op = tag) unops with
      | Some op -> Expr.Unop (op, expr_of_sexp a)
      | None -> fail "unknown unary operator %s" tag)
  | L [ Atom tag; a; b ] -> (
      match List.find_opt (fun op -> binop_tag op = tag) binops with
      | Some op -> Expr.Binop (op, expr_of_sexp a, expr_of_sexp b)
      | None -> fail "unknown binary operator %s" tag)
  | L (Atom tag :: _) -> fail "malformed expression %s" tag
  | _ -> fail "malformed expression"

let rec stmt_of_sexp = function
  | L [ Atom "astmt"; region; Atom lhs; L (Atom "off" :: offs); rhs ] -> (
      let region = region_of_sexp region in
      let lhs_off =
        Support.Vec.of_list (List.map (fun o -> int_of_atom (atom o)) offs)
      in
      let rhs = expr_of_sexp rhs in
      match Nstmt.make ~region ~lhs ~lhs_off rhs with
      | n -> Prog.Astmt n
      | exception Invalid_argument m -> fail "%s" m)
  | L [ Atom "reduce"; Atom target; Atom op; region; arg ] ->
      Prog.Reduce
        {
          target;
          op = redop_of_tag op;
          region = region_of_sexp region;
          arg = expr_of_sexp arg;
        }
  | L [ Atom "set"; Atom x; e ] -> Prog.Sassign (x, expr_of_sexp e)
  | L (Atom "for" :: Atom var :: Atom lo :: Atom hi :: body) ->
      Prog.Sloop
        {
          var;
          lo = int_of_atom lo;
          hi = int_of_atom hi;
          body = List.map stmt_of_sexp body;
        }
  | L (Atom tag :: _) -> fail "unknown statement %s" tag
  | _ -> fail "malformed statement"

let prog_of_sexp = function
  | L
      [
        Atom "program";
        Atom name;
        L (Atom "arrays" :: arrays);
        L (Atom "scalars" :: scalars);
        L (Atom "live" :: live);
        L (Atom "body" :: body);
      ] ->
      {
        Prog.name;
        arrays =
          List.map
            (function
              | L (Atom name :: Atom kind :: dims) ->
                  {
                    Prog.name;
                    bounds =
                      Region.of_bounds
                        (List.map
                           (function
                             | L [ Atom lo; Atom hi ] ->
                                 (int_of_atom lo, int_of_atom hi)
                             | _ -> fail "bad array bounds")
                           dims);
                    kind =
                      (match kind with
                      | "user" -> Prog.User
                      | "compiler" -> Prog.Compiler
                      | k -> fail "bad array kind %s" k);
                  }
              | _ -> fail "malformed array declaration")
            arrays;
        scalars =
          List.map
            (function
              | L [ Atom s; Atom v ] -> (s, float_of_atom v)
              | _ -> fail "malformed scalar declaration")
            scalars;
        live_out = List.map atom live;
        body = List.map stmt_of_sexp body;
      }
  | _ -> fail "expected (program NAME (arrays ...) (scalars ...) (live ...) (body ...))"

let of_string s =
  match prog_of_sexp (read_sexp s) with
  | p -> Ok p
  | exception Parse m -> Error m

let save ~path ?comment p =
  let oc = open_out path in
  output_string oc (to_string ?comment p);
  close_out oc

let load path =
  match open_in path with
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      of_string s
  | exception Sys_error m -> Error m
