(* The SPMD execution engine.

   Interpretation: the compiled program describes the *global* problem.
   Every array is block-distributed over one processor grid per array
   rank (Comm.Dist supplies the factorization, so the engine and the
   analytical model agree on the grid).  Chunk boundaries are computed
   once per (rank, dimension) from the union of all same-rank array
   bounds, so same-index elements of different arrays — and the
   iteration point that computes them — always live on the same
   processor: offset-0 references are local by construction, and the
   owner of an iteration point is the owner of its chunk.

   Execution is superstep-structured (BSP): one superstep per fusible
   cluster, in the same emission order the scalarizer and the
   communication model use.  A superstep delivers the messages of
   Comm.Model.schedule, tops up any ghost slabs the model did not
   schedule (counted as [unmodeled_exchanges]), executes the cluster's
   members statement-at-a-time over each processor's owned points, and
   barriers.  Statement-at-a-time execution in cluster order is a
   linear extension of the block's dependence graph, so values are
   bit-identical to the sequential reference execution; reductions
   accumulate in canonical global row-major order for the same reason,
   while the log2 p combining tree is charged to the clock.

   Ghost coherence is generational: each array has a write generation
   (bumped once per cluster execution that writes it — the same
   granularity the model's redundancy elimination reasons at), and each
   filled slab records the generation and depth it was filled with.  A
   ghost read checks its slab is current and deep enough; a violation
   is an engine/model bug and raises Runtime_error. *)

open Ir

type config = {
  machine : Machine.t;
  procs : int;
  opts : Comm.Model.opts;
  cachesim : bool;
}

type proc_counters = {
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable iters : int;
  mutable sent_messages : int;
  mutable sent_bytes : int;
  mutable recv_messages : int;
  mutable recv_bytes : int;
  mutable compute_ns : float;
  mutable comm_ns : float;
}

type report = {
  procs : int;
  checksum : string;
  time_ns : float;
  supersteps : int;
  charged_messages : int;
  charged_bytes : int;
  wire_messages : int;
  wire_bytes : int;
  reduction_messages : int;
  unmodeled_exchanges : int;
  ghost_fills : int;
  per_proc : proc_counters array;
  l1 : Cachesim.Cache.stats option;
  l2 : Cachesim.Cache.stats option;
}

exception Unsupported of string
exception Runtime_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt
let unsup fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

(* ------------------------------------------------------------------ *)
(* Grids, chunks, tiles                                                *)
(* ------------------------------------------------------------------ *)

(* One grid per array rank: Dist's factorization plus the global
   chunking range per dimension (union of all same-rank array bounds,
   so chunk boundaries align across arrays). *)
type grid = {
  per_dim : int array;
  glo : int array;
  ghi : int array;
}

let grid_procs g = Array.fold_left ( * ) 1 g.per_dim

(* Balanced block partition of [glo..ghi] into per_dim.(k) chunks:
   the first (total mod p) chunks are one element wider. *)
let chunk g k j =
  let total = g.ghi.(k) - g.glo.(k) + 1 in
  let p = g.per_dim.(k) in
  let q = total / p and m = total mod p in
  let lo = g.glo.(k) + (j * q) + min j m in
  let w = q + if j < m then 1 else 0 in
  (lo, lo + w - 1)

let owner_dim g k idx =
  let total = g.ghi.(k) - g.glo.(k) + 1 in
  let p = g.per_dim.(k) in
  let rel = idx - g.glo.(k) in
  if rel < 0 || rel >= total then err "index %d outside global range in dim %d" idx (k + 1);
  let q = total / p and m = total mod p in
  let threshold = (q + 1) * m in
  if rel < threshold then rel / (q + 1) else m + ((rel - threshold) / q)

let min_chunk_width g k =
  let total = g.ghi.(k) - g.glo.(k) + 1 in
  let p = g.per_dim.(k) in
  if p = 1 then total
  else if total mod p = 0 then total / p
  else total / p

let coord_of g pr =
  let rank = Array.length g.per_dim in
  let c = Array.make rank 0 in
  let r = ref pr in
  for k = rank - 1 downto 0 do
    c.(k) <- !r mod g.per_dim.(k);
    r := !r / g.per_dim.(k)
  done;
  c

let linear_of g c =
  let l = ref 0 in
  Array.iteri (fun k x -> l := (!l * g.per_dim.(k)) + x) c;
  !l

let in_grid g c =
  let ok = ref true in
  Array.iteri (fun k x -> if x < 0 || x >= g.per_dim.(k) then ok := false) c;
  !ok

(* One processor's tile of one array: the owned chunk extended by the
   halo, clipped to the array's allocation bounds. *)
type tile = {
  wlo : int array;  (** window (owned + halo) low, per dim *)
  whi : int array;
  clo : int array;  (** this processor's chunk (unclipped) *)
  chi : int array;
  strides : int array;
  data : float array;
  base : int;  (** element base address (per-processor address space) *)
}

type arr = {
  info : Prog.array_info;
  grid : grid;
  rank : int;
  halo : int array;
  tiles : tile array;
  mutable wgen : int;  (** write generation, bumped per writing cluster execution *)
  slabs : (int array, int * int array) Hashtbl.t array;
      (** per proc: ghost direction -> (generation, filled depth) *)
}

let bound arr k = Region.range arr.info.bounds (k + 1)

let mk_tile (a : Prog.array_info) grid halo base pr =
  let rank = Region.rank a.bounds in
  let c = coord_of grid pr in
  let wlo = Array.make rank 0
  and whi = Array.make rank 0
  and clo = Array.make rank 0
  and chi = Array.make rank 0 in
  for k = 0 to rank - 1 do
    let lo, hi = chunk grid k c.(k) in
    clo.(k) <- lo;
    chi.(k) <- hi;
    let { Region.lo = blo; hi = bhi } = Region.range a.bounds (k + 1) in
    wlo.(k) <- max blo (lo - halo.(k));
    whi.(k) <- min bhi (hi + halo.(k))
  done;
  let strides = Array.make rank 1 in
  for k = rank - 2 downto 0 do
    strides.(k) <- strides.(k + 1) * max 0 (whi.(k + 1) - wlo.(k + 1) + 1)
  done;
  let vol =
    Array.to_list (Array.init rank (fun k -> max 0 (whi.(k) - wlo.(k) + 1)))
    |> List.fold_left ( * ) 1
  in
  { wlo; whi; clo; chi; strides; data = Array.make (max 1 vol) 0.0; base }

let tile_volume t =
  let v = ref 1 in
  Array.iteri (fun k lo -> v := !v * max 0 (t.whi.(k) - lo + 1)) t.wlo;
  !v

(* ------------------------------------------------------------------ *)
(* The execution environment                                           *)
(* ------------------------------------------------------------------ *)

(* The statically numbered execution tree: block indices match
   Prog.blocks (and so the plan and the model schedule). *)
type node =
  | Nblock of int
  | Nreduce of { target : string; op : Prog.redop; region : Region.t; arg : Expr.t }
  | Nsassign of string * Expr.t
  | Nsloop of { var : string; lo : int; hi : int; body : node list }

type env = {
  cfg : config;
  prog : Prog.t;
  arrs : (string, arr) Hashtbl.t;
  scalars : (string, float) Hashtbl.t;
  pc : proc_counters array;
  hier : Cachesim.Cache.Hierarchy.h array;  (** empty when cachesim is off *)
  grids : (int, grid) Hashtbl.t;  (** by rank *)
  coords : (int, int array array) Hashtbl.t;  (** by rank, per proc *)
  sched : Comm.Model.block_sched array;
  clusters : Nstmt.t list array array;  (** block -> step -> members, source order *)
  tp : float array;  (** per-proc clock *)
  mutable now : float;  (** common clock at the last barrier *)
  mutable supersteps : int;
  mutable charged_messages : int;
  mutable charged_bytes : int;
  mutable wire_messages : int;
  mutable wire_bytes : int;
  mutable reduction_messages : int;
  mutable unmodeled : int;
  mutable ghost_fills : int;
}

let find_arr env x =
  match Hashtbl.find_opt env.arrs x with
  | Some a -> a
  | None -> err "undeclared array %s" x

let grid_for env rank =
  match Hashtbl.find_opt env.grids rank with
  | Some g -> g
  | None -> err "no grid of rank %d" rank

let coords_for env rank = Hashtbl.find env.coords rank

let get_scalar env s =
  match Hashtbl.find_opt env.scalars s with
  | Some v -> v
  | None -> err "undefined scalar %s" s

let touch env pr tile flat ~write =
  if Array.length env.hier > 0 then
    Cachesim.Cache.Hierarchy.access env.hier.(pr)
      ~addr:((tile.base + flat) * 8)
      ~write

(* ------------------------------------------------------------------ *)
(* Element access                                                      *)
(* ------------------------------------------------------------------ *)

let flat_of tile idx =
  let f = ref 0 in
  Array.iteri
    (fun k x ->
      if x < tile.wlo.(k) || x > tile.whi.(k) then
        err "index %d outside halo window [%d..%d] in dim %d" x tile.wlo.(k)
          tile.whi.(k) (k + 1);
      f := !f + ((x - tile.wlo.(k)) * tile.strides.(k)))
    idx;
  !f

let read_elem env pr arr idx =
  let tile = arr.tiles.(pr) in
  let flat = flat_of tile idx in
  (* ghost coherence check *)
  let dir = Array.make arr.rank 0 in
  let ghost = ref false in
  Array.iteri
    (fun k x ->
      if x < tile.clo.(k) then begin
        dir.(k) <- -1;
        ghost := true
      end
      else if x > tile.chi.(k) then begin
        dir.(k) <- 1;
        ghost := true
      end)
    idx;
  if !ghost then begin
    match Hashtbl.find_opt arr.slabs.(pr) dir with
    | Some (gen, depth) when gen = arr.wgen ->
        Array.iteri
          (fun k d ->
            if d <> 0 then
              let need =
                if d < 0 then tile.clo.(k) - idx.(k) else idx.(k) - tile.chi.(k)
              in
              if depth.(k) < need then
                err "ghost slab of %s too shallow on proc %d" arr.info.name pr)
          dir
    | _ -> err "stale ghost read of %s on proc %d" arr.info.name pr
  end;
  env.pc.(pr).loads <- env.pc.(pr).loads + 1;
  touch env pr tile flat ~write:false;
  tile.data.(flat)

let write_elem env pr arr idx v =
  let tile = arr.tiles.(pr) in
  let flat = flat_of tile idx in
  Array.iteri
    (fun k x ->
      if x < tile.clo.(k) || x > tile.chi.(k) then
        err "write outside owned chunk of %s on proc %d" arr.info.name pr)
    idx;
  env.pc.(pr).stores <- env.pc.(pr).stores + 1;
  env.pc.(pr).iters <- env.pc.(pr).iters + 1;
  touch env pr tile flat ~write:true;
  tile.data.(flat) <- v

let peek arr pr idx = arr.tiles.(pr).data.(flat_of arr.tiles.(pr) idx)

(* ------------------------------------------------------------------ *)
(* Expression evaluation (mirrors Exec.Interp's operation counting)    *)
(* ------------------------------------------------------------------ *)

let is_flop : Expr.binop -> bool = function
  | Add | Sub | Mul | Div | Pow | Min | Max -> true
  | Lt | Le | Gt | Ge | Eq | Ne | And | Or -> false

let rec eval env pr idx (e : Expr.t) : float =
  match e with
  | Expr.Const f -> f
  | Expr.Svar s -> get_scalar env s
  | Expr.Idx i -> float_of_int idx.(i - 1)
  | Expr.Ref (x, d) ->
      let arr = find_arr env x in
      let shifted = Array.init (Array.length idx) (fun k -> idx.(k) + d.(k)) in
      read_elem env pr arr shifted
  | Expr.Unop (op, a) ->
      let va = eval env pr idx a in
      env.pc.(pr).flops <- env.pc.(pr).flops + 1;
      Expr.apply_unop op va
  | Expr.Binop (op, a, b) ->
      let va = eval env pr idx a in
      let vb = eval env pr idx b in
      if is_flop op then env.pc.(pr).flops <- env.pc.(pr).flops + 1;
      Expr.apply_binop op va vb
  | Expr.Select (c, a, b) ->
      let vc = eval env pr idx c in
      let va = eval env pr idx a in
      let vb = eval env pr idx b in
      if vc <> 0.0 then va else vb

(* ------------------------------------------------------------------ *)
(* Message delivery and ghost fills                                    *)
(* ------------------------------------------------------------------ *)

let record_slab arr pr dir depth =
  let fresh =
    match Hashtbl.find_opt arr.slabs.(pr) dir with
    | Some (gen, d) when gen = arr.wgen -> Array.map2 max d depth
    | _ -> Array.copy depth
  in
  Hashtbl.replace arr.slabs.(pr) (Array.copy dir) (arr.wgen, fresh)

(* Copy one ghost slab from the sender's owned cells into the
   receiver's halo.  In uncrossed dimensions the slab spans the
   receiver's full owned range (clipped to the array bounds); in
   crossed ones it is [depth] elements beyond the chunk boundary.
   Returns the number of elements copied. *)
let fill_slab env arr ~pr ~sr dir depth =
  let tr = arr.tiles.(pr) and ts = arr.tiles.(sr) in
  let rank = arr.rank in
  let lo = Array.make rank 0 and hi = Array.make rank 0 in
  let empty = ref false in
  for k = 0 to rank - 1 do
    let { Region.lo = blo; hi = bhi } = bound arr k in
    let l, h =
      if dir.(k) = 0 then (max blo tr.clo.(k), min bhi tr.chi.(k))
      else if dir.(k) < 0 then (max blo (tr.clo.(k) - depth.(k)), min bhi (tr.clo.(k) - 1))
      else (max blo (tr.chi.(k) + 1), min bhi (tr.chi.(k) + depth.(k)))
    in
    lo.(k) <- l;
    hi.(k) <- h;
    if l > h then empty := true
  done;
  record_slab arr pr dir depth;
  if !empty then 0
  else begin
    let n = ref 0 in
    let idx = Array.copy lo in
    let rec go k =
      if k = rank then begin
        tr.data.(flat_of tr idx) <- ts.data.(flat_of ts idx);
        incr n
      end
      else
        for x = lo.(k) to hi.(k) do
          idx.(k) <- x;
          go (k + 1)
        done
    in
    go 0;
    if !n > 0 then env.ghost_fills <- env.ghost_fills + 1;
    !n
  end

let account_wire env ~pr ~sr bytes =
  env.wire_messages <- env.wire_messages + 1;
  env.wire_bytes <- env.wire_bytes + bytes;
  env.pc.(sr).sent_messages <- env.pc.(sr).sent_messages + 1;
  env.pc.(sr).sent_bytes <- env.pc.(sr).sent_bytes + bytes;
  env.pc.(pr).recv_messages <- env.pc.(pr).recv_messages + 1;
  env.pc.(pr).recv_bytes <- env.pc.(pr).recv_bytes + bytes

(* Deliver one scheduled message on every processor that has the
   matching neighbor.  The charge (model currency) is per message per
   block execution; the wire cost is per actual sender->receiver pair,
   with the receiver's wait overlapped against the time since the
   producing superstep when pipelining is on. *)
let deliver env rank (m : Comm.Model.message) step_end block_start =
  let machine = env.cfg.machine in
  let alpha = machine.Machine.msg_latency_ns in
  let beta = machine.Machine.byte_ns in
  env.charged_messages <- env.charged_messages + 1;
  env.charged_bytes <- env.charged_bytes + m.Comm.Model.m_bytes;
  let posted =
    if m.Comm.Model.m_producer < 0 then block_start
    else step_end.(m.Comm.Model.m_producer)
  in
  let grid = grid_for env rank in
  let coords = coords_for env rank in
  for pr = 0 to env.cfg.procs - 1 do
    let sc =
      Array.init rank (fun k -> coords.(pr).(k) + m.Comm.Model.m_dir.(k))
    in
    if in_grid grid sc then begin
      let sr = linear_of grid sc in
      let elems =
        List.fold_left
          (fun acc (p : Comm.Model.part) ->
            let arr = find_arr env p.Comm.Model.p_array in
            acc + fill_slab env arr ~pr ~sr p.Comm.Model.p_dir p.Comm.Model.p_depth)
          0 m.Comm.Model.m_parts
      in
      if elems > 0 then begin
        let bytes = 8 * elems in
        account_wire env ~pr ~sr bytes;
        let raw = alpha +. (beta *. float_of_int bytes) in
        let wait =
          if env.cfg.opts.Comm.Model.pipelining then
            max (0.25 *. alpha) (raw -. (env.now -. posted))
          else raw
        in
        env.tp.(pr) <- env.tp.(pr) +. wait;
        env.pc.(pr).comm_ns <- env.pc.(pr).comm_ns +. wait
      end
    end
  done

(* Ghost needs the schedule may not cover: for every remote reference,
   enumerate the crossing patterns its reads actually produce on each
   processor (exact, per-dimension interval arithmetic on rectangles)
   and top up any slab that is stale or too shallow.  Such fills exist
   only for reference shapes outside the model's vocabulary (diagonal
   subset patterns, reduction arguments at an offset, contracted
   arrays under c2+p) and are counted as [unmodeled]. *)
let ensure_needs env rank ~(region : Region.t) refs =
  let machine = env.cfg.machine in
  let alpha = machine.Machine.msg_latency_ns in
  let beta = machine.Machine.byte_ns in
  let grid = grid_for env rank in
  let coords = coords_for env rank in
  List.iter
    (fun (x, (off : Support.Vec.t)) ->
      let crossing_possible = ref false in
      Array.iteri
        (fun k p -> if p > 1 && off.(k) <> 0 then crossing_possible := true)
        grid.per_dim;
      if !crossing_possible then begin
        let arr = find_arr env x in
        for pr = 0 to env.cfg.procs - 1 do
          let c = coords.(pr) in
          let empty = ref false in
          let occ =
            Array.init rank (fun k ->
                let clo, chi = chunk grid k c.(k) in
                let { Region.lo = rlo; hi = rhi } = Region.range region (k + 1) in
                let ilo = max rlo clo and ihi = min rhi chi in
                if ilo > ihi then begin
                  empty := true;
                  [ 0 ]
                end
                else begin
                  let lo' = ilo + off.(k) and hi' = ihi + off.(k) in
                  let l = if hi' > chi then [ 1 ] else [] in
                  let l = if hi' >= clo && lo' <= chi then 0 :: l else l in
                  if lo' < clo then -1 :: l else l
                end)
          in
          if not !empty then begin
            (* cartesian product of per-dim crossing classes *)
            let rec patterns k acc =
              if k = rank then
                if Array.for_all (fun d -> d = 0) acc then ()
                else begin
                  let dir = Array.copy acc in
                  let need =
                    Array.mapi (fun j d -> if d = 0 then 0 else abs off.(j)) dir
                  in
                  let fresh =
                    match Hashtbl.find_opt arr.slabs.(pr) dir with
                    | Some (gen, depth) when gen = arr.wgen ->
                        Array.for_all2 ( <= ) need depth
                    | _ -> false
                  in
                  if not fresh then begin
                    let sc = Array.init rank (fun j -> c.(j) + dir.(j)) in
                    if not (in_grid grid sc) then
                      err "unmodeled exchange with no neighbor (%s)" x;
                    let sr = linear_of grid sc in
                    let n = fill_slab env arr ~pr ~sr dir need in
                    env.unmodeled <- env.unmodeled + 1;
                    if n > 0 then begin
                      let bytes = 8 * n in
                      account_wire env ~pr ~sr bytes;
                      let raw = alpha +. (beta *. float_of_int bytes) in
                      env.tp.(pr) <- env.tp.(pr) +. raw;
                      env.pc.(pr).comm_ns <- env.pc.(pr).comm_ns +. raw
                    end
                  end
                end
              else
                List.iter
                  (fun d ->
                    acc.(k) <- d;
                    patterns (k + 1) acc)
                  occ.(k)
            in
            patterns 0 (Array.make rank 0)
          end
        done
      end)
    refs

(* ------------------------------------------------------------------ *)
(* Compute costing                                                     *)
(* ------------------------------------------------------------------ *)

type snap = { s_loads : int; s_stores : int; s_flops : int; s_l1m : int; s_l2m : int }

let snapshot env pr =
  let c = env.pc.(pr) in
  let l1m, l2m =
    if Array.length env.hier > 0 then
      let h = env.hier.(pr) in
      ( (Cachesim.Cache.Hierarchy.l1_stats h).Cachesim.Cache.misses,
        match Cachesim.Cache.Hierarchy.l2_stats h with
        | Some s -> s.Cachesim.Cache.misses
        | None -> 0 )
    else (0, 0)
  in
  { s_loads = c.loads; s_stores = c.stores; s_flops = c.flops; s_l1m = l1m; s_l2m = l2m }

let charge_compute env pr s0 =
  let s1 = snapshot env pr in
  let c = env.pc.(pr) in
  let t =
    Machine.time_ns env.cfg.machine
      {
        Machine.flops = s1.s_flops - s0.s_flops;
        l1_accesses = s1.s_loads - s0.s_loads + (s1.s_stores - s0.s_stores);
        l1_misses = s1.s_l1m - s0.s_l1m;
        l2_misses = s1.s_l2m - s0.s_l2m;
        comm_ns = 0.0;
      }
  in
  env.tp.(pr) <- env.tp.(pr) +. t;
  c.compute_ns <- c.compute_ns +. t

let barrier env =
  let m = Array.fold_left max env.now env.tp in
  env.now <- m;
  Array.fill env.tp 0 (Array.length env.tp) m;
  m

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let exec_stmt_on env pr (s : Nstmt.t) =
  let arr = find_arr env s.lhs in
  let tile = arr.tiles.(pr) in
  let rank = arr.rank in
  let bnds =
    List.init rank (fun k ->
        let { Region.lo; hi } = Region.range s.region (k + 1) in
        (max lo tile.clo.(k), min hi tile.chi.(k)))
  in
  if List.exists (fun (lo, hi) -> lo > hi) bnds then ()
  else
    Region.iter (Region.of_bounds bnds) (fun idx ->
        let v = eval env pr idx s.rhs in
        let tgt = Array.init rank (fun k -> idx.(k) + s.lhs_off.(k)) in
        write_elem env pr arr tgt v)

let exec_superstep env bi si step_end block_start =
  Obs.span "spmd-superstep" @@ fun () ->
  env.supersteps <- env.supersteps + 1;
  let bs = env.sched.(bi) in
  let rank = bs.Comm.Model.b_rank in
  let stmts = env.clusters.(bi).(si) in
  List.iter
    (fun m -> deliver env rank m step_end block_start)
    bs.Comm.Model.b_steps.(si);
  List.iter
    (fun (s : Nstmt.t) -> ensure_needs env rank ~region:s.region (Expr.refs s.rhs))
    stmts;
  for pr = 0 to env.cfg.procs - 1 do
    let s0 = snapshot env pr in
    List.iter (exec_stmt_on env pr) stmts;
    charge_compute env pr s0
  done;
  let written = List.sort_uniq compare (List.map (fun (s : Nstmt.t) -> s.lhs) stmts) in
  List.iter (fun x -> let a = find_arr env x in a.wgen <- a.wgen + 1) written;
  step_end.(si) <- barrier env

let exec_block env bi =
  let n = Array.length env.clusters.(bi) in
  let step_end = Array.make n 0.0 in
  let block_start = env.now in
  for si = 0 to n - 1 do
    exec_superstep env bi si step_end block_start
  done

let red_init : Prog.redop -> float = function
  | Prog.Rsum -> 0.0
  | Prog.Rprod -> 1.0
  | Prog.Rmin -> infinity
  | Prog.Rmax -> neg_infinity

let red_apply : Prog.redop -> float -> float -> float = function
  | Prog.Rsum -> ( +. )
  | Prog.Rprod -> ( *. )
  | Prog.Rmin -> Expr.fmin
  | Prog.Rmax -> Expr.fmax

(* Reductions: every processor evaluates the points it owns, but the
   accumulation folds contributions in canonical global row-major
   order — bit-identical to the sequential interpreters.  The clock and
   the message counters are charged for the log2 p combining tree the
   runtime would use (the divergence from a real tree's accumulation
   order is documented in docs/spmd.md). *)
let exec_reduce env ~target ~op ~region ~arg =
  Obs.span "spmd-superstep" @@ fun () ->
  env.supersteps <- env.supersteps + 1;
  let rank = Region.rank region in
  let procs = env.cfg.procs in
  ensure_needs env rank ~region (Expr.refs arg);
  let grid = grid_for env rank in
  let snaps = Array.init procs (snapshot env) in
  let acc = ref (red_init op) in
  let apply = red_apply op in
  Region.iter region (fun idx ->
      let c = Array.mapi (fun k x -> owner_dim grid k x) idx in
      let pr = linear_of grid c in
      let v = eval env pr idx arg in
      env.pc.(pr).flops <- env.pc.(pr).flops + 1;
      acc := apply !acc v);
  Hashtbl.replace env.scalars target !acc;
  for pr = 0 to procs - 1 do
    charge_compute env pr snaps.(pr)
  done;
  let stages = Comm.Model.reduction_stages procs in
  if stages > 0 then begin
    let machine = env.cfg.machine in
    let alpha = machine.Machine.msg_latency_ns in
    let beta = machine.Machine.byte_ns in
    env.charged_messages <- env.charged_messages + stages;
    env.reduction_messages <- env.reduction_messages + stages;
    let cost = float_of_int stages *. (alpha +. (8.0 *. beta)) in
    for pr = 0 to procs - 1 do
      env.tp.(pr) <- env.tp.(pr) +. cost;
      env.pc.(pr).comm_ns <- env.pc.(pr).comm_ns +. cost
    done;
    (* binomial combining tree: p-1 wire messages of one double each *)
    for s = 0 to stages - 1 do
      let step = 1 lsl s in
      let r = ref 0 in
      while !r + step < procs do
        account_wire env ~pr:!r ~sr:(!r + step) 8;
        r := !r + (2 * step)
      done
    done
  end;
  ignore (barrier env)

let exec_sassign env x e =
  let procs = env.cfg.procs in
  let f0 = env.pc.(0).flops in
  let v = eval env 0 [||] e in
  let df = env.pc.(0).flops - f0 in
  Hashtbl.replace env.scalars x v;
  (* scalar work is replicated on every processor *)
  let t = float_of_int df *. env.cfg.machine.Machine.flop_ns in
  for pr = 0 to procs - 1 do
    if pr > 0 then env.pc.(pr).flops <- env.pc.(pr).flops + df;
    env.tp.(pr) <- env.tp.(pr) +. t;
    env.pc.(pr).compute_ns <- env.pc.(pr).compute_ns +. t
  done;
  env.now <- env.now +. t

let rec exec_node env = function
  | Nblock bi -> exec_block env bi
  | Nreduce { target; op; region; arg } -> exec_reduce env ~target ~op ~region ~arg
  | Nsassign (x, e) -> exec_sassign env x e
  | Nsloop { var; lo; hi; body } ->
      for i = lo to hi do
        Hashtbl.replace env.scalars var (float_of_int i);
        List.iter (exec_node env) body
      done

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

(* Number the maximal Astmt runs exactly like Prog.blocks does. *)
let annotate (prog : Prog.t) =
  let next = ref 0 in
  let rec go stmts =
    let flush pending acc =
      if pending = [] then acc
      else begin
        let bi = !next in
        incr next;
        Nblock bi :: acc
      end
    in
    let rec aux pending acc = function
      | [] -> List.rev (flush pending acc)
      | Prog.Astmt s :: tl -> aux (s :: pending) acc tl
      | Prog.Sloop { var; lo; hi; body } :: tl ->
          let acc = flush pending acc in
          aux [] (Nsloop { var; lo; hi; body = go body } :: acc) tl
      | Prog.Reduce { target; op; region; arg } :: tl ->
          aux [] (Nreduce { target; op; region; arg } :: flush pending acc) tl
      | Prog.Sassign (x, e) :: tl ->
          aux [] (Nsassign (x, e) :: flush pending acc) tl
    in
    aux [] [] stmts
  in
  let nodes = go prog.Prog.body in
  (nodes, !next)

(* All array references (with offsets) and write offsets in the
   program, reductions included. *)
let rec fold_stmts f acc = function
  | [] -> acc
  | Prog.Astmt s :: tl -> fold_stmts f (f acc (`Astmt s)) tl
  | Prog.Reduce { region; arg; _ } :: tl ->
      fold_stmts f (f acc (`Reduce (region, arg))) tl
  | Prog.Sassign _ :: tl -> fold_stmts f acc tl
  | Prog.Sloop { body; _ } :: tl -> fold_stmts f (fold_stmts f acc body) tl

let grid_for_rank grids rank =
  match Hashtbl.find_opt grids rank with
  | Some g -> g
  | None -> err "no grid of rank %d" rank

let setup (cfg : config) (c : Compilers.Driver.compiled) =
  let prog = c.Compilers.Driver.prog in
  let procs = cfg.procs in
  (* halos: per array, per dim, the max |offset| of any reference *)
  let halos = Hashtbl.create 16 in
  let note_ref x (off : Support.Vec.t) =
    let cur =
      match Hashtbl.find_opt halos x with
      | Some h -> h
      | None ->
          let h = Array.make (Support.Vec.rank off) 0 in
          Hashtbl.replace halos x h;
          h
    in
    Array.iteri (fun k d -> cur.(k) <- max cur.(k) (abs d)) off
  in
  let refs_of e = Expr.refs e in
  ignore
    (fold_stmts
       (fun () -> function
         | `Astmt (s : Nstmt.t) -> List.iter (fun (x, o) -> note_ref x o) (refs_of s.rhs)
         | `Reduce (_, arg) -> List.iter (fun (x, o) -> note_ref x o) (refs_of arg))
       () prog.Prog.body);
  (* grids: one per rank occurring among arrays or iteration regions *)
  let grids = Hashtbl.create 4 in
  let want_rank rank =
    if not (Hashtbl.mem grids rank) then begin
      let dist = Comm.Dist.make ~rank ~procs in
      let glo = Array.make rank max_int and ghi = Array.make rank min_int in
      List.iter
        (fun (a : Prog.array_info) ->
          if Region.rank a.bounds = rank then
            for k = 0 to rank - 1 do
              let { Region.lo; hi } = Region.range a.bounds (k + 1) in
              glo.(k) <- min glo.(k) lo;
              ghi.(k) <- max ghi.(k) hi
            done)
        prog.Prog.arrays;
      if Array.exists (fun x -> x = max_int) glo then
        unsup "iteration of rank %d has no arrays to derive a grid from" rank;
      Hashtbl.replace grids rank { per_dim = Comm.Dist.per_dim dist; glo; ghi }
    end
  in
  List.iter (fun (a : Prog.array_info) -> want_rank (Region.rank a.bounds)) prog.Prog.arrays;
  ignore
    (fold_stmts
       (fun () -> function
         | `Astmt (s : Nstmt.t) -> want_rank (Region.rank s.region)
         | `Reduce (r, _) -> want_rank (Region.rank r))
       () prog.Prog.body);
  (* supportability checks *)
  ignore
    (fold_stmts
       (fun () -> function
         | `Astmt (s : Nstmt.t) ->
             let g = grid_for_rank grids (Region.rank s.region) in
             Array.iteri
               (fun k d ->
                 if d <> 0 && g.per_dim.(k) > 1 then
                   unsup "write offset %d in distributed dimension %d (%s)" d
                     (k + 1) s.lhs)
               s.lhs_off
         | `Reduce _ -> ())
       () prog.Prog.body);
  Hashtbl.iter
    (fun x halo ->
      match Prog.find_array prog x with
      | None -> ()
      | Some a ->
          let g = grid_for_rank grids (Region.rank a.bounds) in
          Array.iteri
            (fun k h ->
              if h > 0 && g.per_dim.(k) > 1 && h > min_chunk_width g k then
                unsup "halo of %s (depth %d) exceeds the smallest chunk in dim %d"
                  x h (k + 1))
            halo)
    halos;
  (* tiles *)
  let arrs = Hashtbl.create 16 in
  let bases = Array.make procs 0 in
  List.iter
    (fun (a : Prog.array_info) ->
      let rank = Region.rank a.bounds in
      let grid = Hashtbl.find grids rank in
      let halo =
        match Hashtbl.find_opt halos a.name with
        | Some h -> h
        | None -> Array.make rank 0
      in
      let tiles =
        Array.init procs (fun pr ->
            let t = mk_tile a grid halo bases.(pr) pr in
            (* pad allocations apart, as the sequential interpreter does *)
            bases.(pr) <- bases.(pr) + tile_volume t + 8;
            t)
      in
      Hashtbl.replace arrs a.name
        {
          info = a;
          grid;
          rank;
          halo;
          tiles;
          wgen = 0;
          slabs = Array.init procs (fun _ -> Hashtbl.create 8);
        })
    prog.Prog.arrays;
  let coords = Hashtbl.create 4 in
  Hashtbl.iter
    (fun rank grid ->
      if grid_procs grid <> procs then
        err "grid of rank %d covers %d processors, expected %d" rank
          (grid_procs grid) procs;
      Hashtbl.replace coords rank (Array.init procs (coord_of grid)))
    grids;
  let scalars = Hashtbl.create 16 in
  List.iter (fun (s, v) -> Hashtbl.replace scalars s v) prog.Prog.scalars;
  let sched =
    Array.of_list
      (Comm.Model.schedule ~machine:cfg.machine ~procs ~opts:cfg.opts c)
  in
  let _nodes, n_blocks = annotate prog in
  if n_blocks <> Array.length sched then
    err "block numbering mismatch: %d blocks, %d schedules" n_blocks
      (Array.length sched);
  let clusters =
    Array.of_list
      (List.map
         (fun (bp : Sir.Scalarize.block_plan) ->
           let p = bp.Sir.Scalarize.partition in
           let g = Core.Partition.asdg p in
           Array.of_list
             (List.map
                (fun rep ->
                  List.map (Core.Asdg.stmt g)
                    (List.sort compare (Core.Partition.members p rep)))
                (Sir.Scalarize.cluster_order p)))
         c.Compilers.Driver.plan)
  in
  let mk_pc () =
    {
      loads = 0;
      stores = 0;
      flops = 0;
      iters = 0;
      sent_messages = 0;
      sent_bytes = 0;
      recv_messages = 0;
      recv_bytes = 0;
      compute_ns = 0.0;
      comm_ns = 0.0;
    }
  in
  {
    cfg;
    prog;
    arrs;
    scalars;
    pc = Array.init procs (fun _ -> mk_pc ());
    hier =
      (if cfg.cachesim then
         Array.init procs (fun _ ->
             Cachesim.Cache.Hierarchy.create ~l1:cfg.machine.Machine.l1
               ?l2:cfg.machine.Machine.l2 ())
       else [||]);
    grids;
    coords;
    sched;
    clusters;
    tp = Array.make procs 0.0;
    now = 0.0;
    supersteps = 0;
    charged_messages = 0;
    charged_bytes = 0;
    wire_messages = 0;
    wire_bytes = 0;
    reduction_messages = 0;
    unmodeled = 0;
    ghost_fills = 0;
  }

(* ------------------------------------------------------------------ *)
(* Checksum and report                                                 *)
(* ------------------------------------------------------------------ *)

let checksum env =
  let d = ref Exec.Interp.Digest.empty in
  let mix v = d := Exec.Interp.Digest.mix !d v in
  List.iter
    (fun name ->
      match Hashtbl.find_opt env.arrs name with
      | Some arr ->
          Region.iter arr.info.bounds (fun idx ->
              let c = Array.mapi (fun k x -> owner_dim arr.grid k x) idx in
              mix (peek arr (linear_of arr.grid c) idx))
      | None -> (
          match Hashtbl.find_opt env.scalars name with
          | Some v -> mix v
          | None -> err "live-out %s not found" name))
    env.prog.Prog.live_out;
  Exec.Interp.Digest.to_hex !d

let sum_stats get env =
  if Array.length env.hier = 0 then None
  else
    Array.fold_left
      (fun acc h ->
        match get h with
        | None -> acc
        | Some (s : Cachesim.Cache.stats) -> (
            match acc with
            | None -> Some s
            | Some (a : Cachesim.Cache.stats) ->
                Some
                  {
                    Cachesim.Cache.accesses = a.accesses + s.accesses;
                    hits = a.hits + s.hits;
                    misses = a.misses + s.misses;
                  }))
      None env.hier

let execute (cfg : config) (c : Compilers.Driver.compiled) =
  if cfg.procs < 1 then invalid_arg "Spmd.execute: procs must be >= 1";
  Obs.span "spmd-execute" @@ fun () ->
  let env = setup cfg c in
  List.iter (exec_node env) (fst (annotate env.prog));
  let sum = checksum env in
  if Obs.enabled () then begin
    Obs.count "spmd.messages" env.wire_messages;
    Obs.count "spmd.bytes" env.wire_bytes;
    Obs.count "spmd.charged-messages" env.charged_messages;
    Obs.count "spmd.charged-bytes" env.charged_bytes;
    Obs.count "spmd.ghost-fills" env.ghost_fills;
    Obs.count "spmd.unmodeled-exchanges" env.unmodeled;
    Obs.count "spmd.supersteps" env.supersteps
  end;
  {
    procs = cfg.procs;
    checksum = sum;
    time_ns = env.now;
    supersteps = env.supersteps;
    charged_messages = env.charged_messages;
    charged_bytes = env.charged_bytes;
    wire_messages = env.wire_messages;
    wire_bytes = env.wire_bytes;
    reduction_messages = env.reduction_messages;
    unmodeled_exchanges = env.unmodeled;
    ghost_fills = env.ghost_fills;
    per_proc = env.pc;
    l1 =
      sum_stats (fun h -> Some (Cachesim.Cache.Hierarchy.l1_stats h)) env;
    l2 = sum_stats Cachesim.Cache.Hierarchy.l2_stats env;
  }

let report_json ~(machine : Machine.t) (r : report) =
  let open Obs.Json in
  let stats = function
    | None -> Null
    | Some (s : Cachesim.Cache.stats) ->
        Obj
          [
            ("accesses", Int s.accesses);
            ("hits", Int s.hits);
            ("misses", Int s.misses);
          ]
  in
  Obj
    [
      ("schema", String "zapc/spmd-report/1");
      ("machine", String machine.Machine.name);
      ("procs", Int r.procs);
      ("checksum", String r.checksum);
      ("time_ns", Float r.time_ns);
      ("supersteps", Int r.supersteps);
      ( "charged",
        Obj [ ("messages", Int r.charged_messages); ("bytes", Int r.charged_bytes) ] );
      ( "wire",
        Obj [ ("messages", Int r.wire_messages); ("bytes", Int r.wire_bytes) ] );
      ("reduction_messages", Int r.reduction_messages);
      ("unmodeled_exchanges", Int r.unmodeled_exchanges);
      ("ghost_fills", Int r.ghost_fills);
      ("l1", stats r.l1);
      ("l2", stats r.l2);
    ]
