(** Executable SPMD backend: runs a compiled program on a simulated
    processor grid.

    Where {!Comm.Model} {e predicts} communication, this engine
    {e performs} it.  Every array of the program is block-distributed
    over the same [Comm.Dist] grid the model uses (one grid per array
    rank, with globally aligned chunk boundaries): each virtual
    processor owns a local tile extended by ghost halos sized from the
    program's reference offsets.  Execution proceeds in supersteps —
    one per fusible cluster, in the cluster emission order — and each
    superstep first delivers exactly the messages of the model's
    {!Comm.Model.schedule} (vectorized border slabs, with redundancy
    elimination and combining as configured), then runs the cluster's
    statements on every processor over its owned iteration points, and
    finally meets at a barrier that advances the simulated clock.
    Reductions are evaluated in the canonical global row-major order
    (bit-identical to the sequential interpreters) while a log₂ p
    combining tree is charged and its messages counted.

    Determinism and agreement: the run is bit-deterministic, its
    checksum equals the sequential {!Exec.Interp.checksum} of the same
    compiled program, and its {e charged} message/byte totals equal
    {!Comm.Model.analyze} exactly.  The {e wire} totals count the
    messages that actually crossed chunk boundaries (edge processors
    have no neighbor; payloads are clipped to owned cells) and are
    reported separately — see docs/spmd.md for the accounting and the
    known divergences. *)

type config = {
  machine : Machine.t;
  procs : int;
  opts : Comm.Model.opts;  (** which optimizations the runtime applies *)
  cachesim : bool;  (** simulate a per-processor cache hierarchy *)
}

type proc_counters = {
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable iters : int;
  mutable sent_messages : int;
  mutable sent_bytes : int;
  mutable recv_messages : int;
  mutable recv_bytes : int;
  mutable compute_ns : float;
  mutable comm_ns : float;
}

type report = {
  procs : int;
  checksum : string;  (** equals the sequential interpreter's *)
  time_ns : float;  (** critical path: the clock at the final barrier *)
  supersteps : int;
  charged_messages : int;
      (** model currency: one per scheduled message per block
          execution, plus ⌈log₂ p⌉ per reduction — equals
          [Comm.Model.analyze.messages] *)
  charged_bytes : int;  (** modeled payloads — equals [analyze.bytes] *)
  wire_messages : int;  (** sender→receiver pairs actually delivered *)
  wire_bytes : int;  (** actual clipped slab payloads *)
  reduction_messages : int;  (** charged tree messages (part of charged) *)
  unmodeled_exchanges : int;
      (** ghost fills the engine needed but the model did not schedule
          (diagonal-only reference patterns, reduction arguments read
          at an offset, contracted arrays under c2+p); 0 for all paper
          benchmarks *)
  ghost_fills : int;  (** slabs filled, scheduled + unscheduled *)
  per_proc : proc_counters array;
  l1 : Cachesim.Cache.stats option;  (** summed over processors *)
  l2 : Cachesim.Cache.stats option;
}

exception Unsupported of string
(** The program/grid combination is outside the engine's domain:
    a ghost halo deeper than the smallest chunk of a split dimension,
    or a write offset ([lhs_off]) in a split dimension. *)

exception Runtime_error of string
(** Internal invariant violation (stale ghost read, index outside its
    halo window) — indicates an engine or model bug, not bad input. *)

val execute : config -> Compilers.Driver.compiled -> report
(** Run the program to completion on [config.procs] virtual
    processors.  Emits [Obs] instrumentation when a recorder is
    installed: a span per superstep and the [spmd.*] counters
    (messages, bytes, ghost-fills, unmodeled-exchanges). *)

val report_json : machine:Machine.t -> report -> Obs.Json.t
(** Stable JSON rendering of a report (schema [zapc/spmd-report/1]),
    shared by [zapc --stats] and the bench agreement harness. *)
