(** End-to-end optimization driver.

    Implements the incremental optimization strategies of the paper's
    evaluation (§5.4):

    - [Baseline] — no fusion or contraction;
    - [F1] — fusion to enable contraction of compiler arrays, without
      performing the contraction;
    - [C1] — [F1] plus the contraction of compiler arrays;
    - [F2] — [C1] plus fusion to enable contraction of user arrays,
      without contracting them;
    - [F3] — [C1] plus fusion for locality;
    - [C2] — [C1] plus contraction of user arrays;
    - [C2F3] — [C2] plus fusion for locality;
    - [C2F4] — [C2F3] plus all legal fusion (greedy pairwise);
    - [C2P] — {e extension}: [C2F3] with sequential (relaxed-flow)
      fusion and contraction to lower-dimensional arrays, the future
      work the paper motivates with SP (§5.2).  Not part of the paper's
      level ladder; used by the ablation benches. *)

type level = Baseline | F1 | C1 | F2 | F3 | C2 | C2F3 | C2F4 | C2P

val all_levels : level list
(** The paper's eight strategies, in the order of Figures 9–11
    (without [C2P]). *)

val level_name : level -> string
(** The paper's name: ["baseline"], ["f1"], ..., ["c2+f4"], ["c2+p"]. *)

val level_of_name : string -> level option
(** Accepts both the paper spellings (["c2+f3"], ["c2+f4"], ["c2+p"])
    and the internal ones (["c2f3"], ...), case-insensitively:
    [level_of_name (level_name l) = Some l] for every level. *)

type compiled = {
  level : level;
  prog : Ir.Prog.t;  (** the input array program *)
  plan : Sir.Scalarize.plan;
  code : Sir.Code.program;  (** generated scalar program *)
  contracted : (string * Core.Contraction.shape) list;
      (** every contraction performed, with its shape *)
}

type opts = {
  level : level;
  may_fuse : (block:int -> int list -> bool) option;
      (** per-block merge veto (communication integration, §5.5) *)
  reduction_fusion : bool;
      (** default [true]; disabling is the ablation under which arrays
          consumed by reductions can never contract *)
}
(** The single options record of the driver's canonical entry points.
    Every knob the pipeline will ever grow lands here, so the
    signatures of {!compile_opts} / {!compile_custom_opts} /
    {!compile_exn_opts} never change arity again; build one with
    {!opts} (or [{ default_opts with ... }]) to stay source-compatible
    with future fields. *)

val default_opts : opts
(** [{ level = C2F3; may_fuse = None; reduction_fusion = true }]. *)

val opts :
  ?may_fuse:(block:int -> int list -> bool) ->
  ?reduction_fusion:bool ->
  level ->
  opts
(** [opts level] is {!default_opts} at [level], with any overrides. *)

val compile_opts : opts -> Ir.Prog.t -> (compiled, Obs.Diagnostic.t) result
(** Optimize and scalarize — the canonical entry point.

    Returns [Error d] (phase ["check"]) if the program fails
    [Ir.Prog.validate]; never raises on user input.  When an [Obs]
    recorder is installed the compilation is traced: pass spans
    ([check], [plan] with per-block [dependence] / [fusion] /
    [reduction-fusion] / [contraction], [scalarize]) plus the fusion
    and contraction counters and events. *)

val compile_custom_opts :
  opts ->
  partition:
    (block:int ->
    compiler:string list ->
    user:string list ->
    Core.Asdg.t ->
    Core.Partition.t) ->
  Ir.Prog.t ->
  (compiled, Obs.Diagnostic.t) result
(** The pipeline of {!compile_opts} with the fixed level ladder
    replaced by a caller-supplied fusion strategy: for each basic
    block the [partition] callback receives the block index, the
    contraction candidates split by array kind, and the freshly built
    ASDG, and returns the fusion partition to compile (it must be a
    valid Definition 5 partition of that ASDG — e.g. one grown through
    [Core.Partition.check_merge]).  Everything downstream — reduction
    absorption, the reduce-read candidate filter, the contraction
    decision, scalarization — is the standard machinery, so results
    are directly comparable with the built-in levels.  [opts.level]
    only labels the result for reporting ([opts.may_fuse] is unused:
    the partitioner owns every fusion decision).  This is the entry
    point of the search-based planner (lib/plan). *)

val compile_exn_opts : opts -> Ir.Prog.t -> compiled
(** Raising wrapper over {!compile_opts} for callers that have already
    validated their input.  Raises [Obs.Error] with the diagnostic. *)

val contracted_counts : compiled -> int * int
(** [(compiler, user)] arrays eliminated (Figure 7's categories). *)

val remaining_arrays : compiled -> int
(** Static arrays still allocated after contraction. *)
