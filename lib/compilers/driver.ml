open Ir

type level = Baseline | F1 | C1 | F2 | F3 | C2 | C2F3 | C2F4 | C2P

let all_levels = [ Baseline; F1; C1; F2; F3; C2; C2F3; C2F4 ]

let level_name = function
  | Baseline -> "baseline"
  | F1 -> "f1"
  | C1 -> "c1"
  | F2 -> "f2"
  | F3 -> "f3"
  | C2 -> "c2"
  | C2F3 -> "c2+f3"
  | C2F4 -> "c2+f4"
  | C2P -> "c2+p"

(* Both the paper spellings ("c2+f3") and the internal ones ("c2f3")
   are accepted, case-insensitively: names compare with '+' removed. *)
let canonical_name s =
  String.lowercase_ascii s
  |> String.to_seq
  |> Seq.filter (fun c -> c <> '+')
  |> String.of_seq

let level_of_name s =
  let want = canonical_name s in
  List.find_opt
    (fun l -> canonical_name (level_name l) = want)
    (all_levels @ [ C2P ])

type compiled = {
  level : level;
  prog : Prog.t;
  plan : Sir.Scalarize.plan;
  code : Sir.Code.program;
  contracted : (string * Core.Contraction.shape) list;
}

(* ------------------------------------------------------------------ *)
(* Program-wide context shared by all blocks                           *)
(* ------------------------------------------------------------------ *)

type ctx = {
  prog : Prog.t;
  reduces : (Prog.redop * Region.t * string * Expr.t) array;
  trailing : (int * int list) list;  (* block -> trailing reduce indices *)
  (* candidates computed optimistically: every trailing reduce is
     assumed absorbable; verified per block after fusion *)
  candidates : (string * int) list;
}

let make_ctx prog =
  let trailing = Prog.trailing_reduces prog in
  let allow b = try List.assoc b trailing with Not_found -> [] in
  {
    prog;
    reduces = Array.of_list (Prog.reduce_stmts prog);
    trailing;
    candidates = Prog.confined_arrays_allowing_reduces prog allow;
  }

let block_candidates ctx block_idx =
  let in_block =
    List.filter_map
      (fun (x, b) -> if b = block_idx then Some x else None)
      ctx.candidates
  in
  let kind x =
    match Prog.find_array ctx.prog x with
    | Some info -> info.Prog.kind
    | None -> Prog.User
  in
  ( List.filter (fun x -> kind x = Prog.Compiler) in_block,
    List.filter (fun x -> kind x = Prog.User) in_block )

(* ------------------------------------------------------------------ *)
(* Reduction absorption (reduction fusion)                             *)
(* ------------------------------------------------------------------ *)

(* For each reduction trailing this block, choose a cluster to fuse it
   into, or leave it standalone.  Soundness conditions for absorbing
   into cluster [c]:
   - the reduction region equals [c]'s region;
   - [c]'s loop structure is the default row-major one, so accumulation
     order — and floating-point rounding — is bitwise-preserved;
   - any array the argument reads that is written in [c] is read at
     offset 0 (its final value at the current point is available);
   - no cluster emitted after [c] writes an array the argument reads
     (the accumulation must see final values);
   - the target scalar is not read anywhere in the block, and the
     reduction does not interfere with ANY earlier reduction in the
     trailing run — absorbed or standalone.  Absorption hoists the
     reduction into the block nest, above every earlier standalone
     reduction, so a shared target (each reduction re-initializes its
     accumulator: last writer wins), an argument reading an earlier
     target, or a target read by an earlier argument all change the
     result.
   Among valid clusters we prefer the {e latest producer} of the
   argument's arrays: absorbing there lets an array read only by this
   reduction contract. *)
let decide_absorption ctx block_idx (p : Core.Partition.t) =
  let rs = try List.assoc block_idx ctx.trailing with Not_found -> [] in
  if rs = [] then []
  else begin
    let order = Array.of_list (Sir.Scalarize.cluster_order p) in
    let n = Array.length order in
    let g = Core.Partition.asdg p in
    let cluster_stmts pos =
      List.map (Core.Asdg.stmt g) (Core.Partition.members p order.(pos))
    in
    let writes pos =
      List.map (fun (s : Nstmt.t) -> s.lhs) (cluster_stmts pos)
    in
    let block_svars =
      Array.to_list (Core.Asdg.stmts g)
      |> List.concat_map (fun (s : Nstmt.t) -> Expr.svars s.rhs)
    in
    let cluster_ok pos region =
      match cluster_stmts pos with
      | [] -> false
      | s0 :: _ ->
          Region.equal region s0.Nstmt.region
          &&
          let rank = Region.rank s0.Nstmt.region in
          (match Core.Partition.loop_structure p order.(pos) with
          | Some ls -> ls = Core.Loopstruct.default rank
          | None -> false)
    in
    let absorbed = ref [] in
    (* targets and argument scalars of every reduction already
       considered in this run, absorbed or not: absorbing a later
       reduction reorders it past the standalone ones, so interference
       with any of them is disqualifying *)
    let prior_targets = ref [] in
    let prior_arg_svars = ref [] in
    List.iter
      (fun ri ->
        let _, region, target, arg = ctx.reduces.(ri) in
        let refs = Expr.refs arg in
        let arrays_read = List.map fst refs in
        (* latest cluster writing any argument array *)
        let latest_writer = ref (-1) in
        for pos = 0 to n - 1 do
          if List.exists (fun x -> List.mem x (writes pos)) arrays_read then
            latest_writer := pos
        done;
        let scalar_ok =
          (not (List.mem target block_svars))
          && (not (List.mem target !prior_targets))
          && (not (List.mem target !prior_arg_svars))
          && List.for_all
               (fun s -> not (List.mem s !prior_targets))
               (Expr.svars arg)
        in
        let offsets_ok pos =
          List.for_all
            (fun (x, d) ->
              (not (List.mem x (writes pos))) || Support.Vec.is_null d)
            refs
        in
        (* valid positions: >= latest writer; prefer the latest writer
           itself (contraction), else the earliest valid one after it *)
        if scalar_ok then begin
          let start = max 0 !latest_writer in
          let rec try_pos pos =
            if pos >= n then ()
            else if cluster_ok pos region && offsets_ok pos then
              absorbed := !absorbed @ [ (ri, order.(pos)) ]
            else try_pos (pos + 1)
          in
          try_pos start
        end;
        prior_targets := target :: !prior_targets;
        prior_arg_svars := Expr.svars arg @ !prior_arg_svars)
      rs;
    !absorbed
  end

(* Arrays read by reductions may only contract when every such
   reduction is absorbed into the cluster holding all the array's block
   references (the accumulation then reads the contraction scalar). *)
let filter_reduce_read_candidates ctx p absorbed cands =
  let reduce_readers x =
    let out = ref [] in
    Array.iteri
      (fun i (_, _, _, arg) ->
        if List.mem x (Expr.ref_names arg) then out := i :: !out)
      ctx.reduces;
    List.rev !out
  in
  List.filter
    (fun x ->
      match reduce_readers x with
      | [] -> true
      | readers ->
          List.for_all
            (fun r ->
              match List.assoc_opt r absorbed with
              | None -> false
              | Some rep ->
                  List.for_all
                    (fun i -> Core.Partition.cluster_of p i = rep)
                    (Core.Asdg.stmts_referencing (Core.Partition.asdg p) x))
            readers)
    cands

(* ------------------------------------------------------------------ *)
(* Per-block optimization                                              *)
(* ------------------------------------------------------------------ *)

let scalar_shapes xs = List.map (fun x -> (x, Core.Contraction.Scalar)) xs

let decide_absorbed ctx block_idx p =
  let absorbed =
    Obs.span "reduction-fusion" (fun () -> decide_absorption ctx block_idx p)
  in
  if Obs.enabled () then
    List.iter
      (fun (ri, rep) ->
        Obs.event (Obs.Reduction_absorbed { reduce = ri; cluster = rep }))
      absorbed;
  absorbed

(* Everything downstream of the fusion decision: reduction absorption,
   the reduce-read candidate filter, and the contraction decision —
   shared by the level ladder and by [compile_custom]'s partitioner. *)
let finish_plan ~absorb ctx block_idx p cands : Sir.Scalarize.block_plan =
  let absorbed = if absorb then decide_absorbed ctx block_idx p else [] in
  let cands = filter_reduce_read_candidates ctx p absorbed cands in
  {
    Sir.Scalarize.partition = p;
    contracted =
      Obs.span "contraction" (fun () ->
          scalar_shapes (Core.Contraction.decide p ~candidates:cands));
    absorbed;
  }

let plan_block ?(reduction_fusion = true) ~level ~may_fuse ctx block_idx stmts
    : Sir.Scalarize.block_plan =
  (* Reduction fusion belongs to the user-array strategies: f1/c1 only
     consider compiler temporaries, and reductions never involve them
     (paper: EP and Frac gain nothing from f1/c1). *)
  let reduction_fusion =
    reduction_fusion && match level with Baseline | F1 | C1 -> false | _ -> true
  in
  let g = Obs.span "dependence" (fun () -> Core.Asdg.build stmts) in
  let compiler_cands, user_cands = block_candidates ctx block_idx in
  let all_cands = compiler_cands @ user_cands in
  let fuse_c cands =
    Obs.span "fusion" (fun () ->
        Core.Fusion.for_contraction ~may_fuse ~candidates:cands g)
  in
  let locality ?relax_flow p =
    Obs.span "fusion-locality" (fun () ->
        Core.Fusion.for_locality ?relax_flow ~may_fuse p)
  in
  let finish ?(absorb = reduction_fusion) p cands =
    finish_plan ~absorb ctx block_idx p cands
  in
  match level with
  | Baseline ->
      {
        Sir.Scalarize.partition = Core.Partition.trivial g;
        contracted = [];
        absorbed = [];
      }
  | F1 ->
      let bp = finish (fuse_c compiler_cands) [] in
      { bp with Sir.Scalarize.contracted = [] }
  | C1 -> finish (fuse_c compiler_cands) compiler_cands
  | F2 ->
      (* fusion as for full contraction, but only compiler arrays are
         actually contracted *)
      finish (fuse_c all_cands) compiler_cands
  | F3 -> finish (locality (fuse_c compiler_cands)) compiler_cands
  | C2 -> finish (fuse_c all_cands) all_cands
  | C2F3 -> finish (locality (fuse_c all_cands)) all_cands
  | C2F4 ->
      let p0 = locality (fuse_c all_cands) in
      finish
        (Obs.span "fusion-pairwise" (fun () ->
             Core.Fusion.greedy_pairwise ~may_fuse p0))
        all_cands
  | C2P ->
      (* extension: sequential fusion tolerating loop-carried flow, then
         contraction to the lowest sufficient rank *)
      let p = locality ~relax_flow:true (fuse_c all_cands) in
      let absorbed =
        if reduction_fusion then decide_absorbed ctx block_idx p else []
      in
      let cands = filter_reduce_read_candidates ctx p absorbed all_cands in
      {
        Sir.Scalarize.partition = p;
        contracted =
          Obs.span "contraction" (fun () ->
              Core.Contraction.decide_partial p ~candidates:cands);
        absorbed;
      }

(* Validate, plan each block with [plan_of_block], scalarize. *)
let compile_with ~level ~plan_of_block prog =
  Obs.span "compile" @@ fun () ->
  match Obs.span "check" (fun () -> Prog.validate prog) with
  | Error e ->
      Error
        (Obs.Diagnostic.errorf ~phase:"check" "invalid program %s: %s"
           prog.Prog.name e)
  | Ok () ->
      let ctx = make_ctx prog in
      let blocks = Prog.blocks prog in
      let plan =
        Obs.span "plan" (fun () ->
            List.mapi (fun bi stmts -> plan_of_block ctx bi stmts) blocks)
      in
      let code =
        Obs.span "scalarize" (fun () -> Sir.Scalarize.scalarize prog plan)
      in
      Ok
        {
          level;
          prog;
          plan;
          code;
          contracted = Sir.Scalarize.contracted_of_plan plan;
        }

type opts = {
  level : level;
  may_fuse : (block:int -> int list -> bool) option;
  reduction_fusion : bool;
}

let default_opts = { level = C2F3; may_fuse = None; reduction_fusion = true }

let opts ?may_fuse ?(reduction_fusion = true) level =
  { level; may_fuse; reduction_fusion }

let compile_opts o prog =
  compile_with ~level:o.level prog ~plan_of_block:(fun ctx bi stmts ->
      let mf =
        match o.may_fuse with
        | None -> fun _ -> true
        | Some f -> fun ss -> f ~block:bi ss
      in
      plan_block ~reduction_fusion:o.reduction_fusion ~level:o.level
        ~may_fuse:mf ctx bi stmts)

let compile_custom_opts o ~partition prog =
  compile_with ~level:o.level prog ~plan_of_block:(fun ctx bi stmts ->
      let g = Obs.span "dependence" (fun () -> Core.Asdg.build stmts) in
      let compiler_cands, user_cands = block_candidates ctx bi in
      let p = partition ~block:bi ~compiler:compiler_cands ~user:user_cands g in
      finish_plan ~absorb:o.reduction_fusion ctx bi p
        (compiler_cands @ user_cands))

let compile_exn_opts o prog =
  match compile_opts o prog with
  | Ok c -> c
  | Error d -> raise (Obs.Error d)

let contracted_counts (c : compiled) =
  List.fold_left
    (fun (nc, nu) (x, _) ->
      match Prog.find_array c.prog x with
      | Some { Prog.kind = Prog.Compiler; _ } -> (nc + 1, nu)
      | Some { Prog.kind = Prog.User; _ } -> (nc, nu + 1)
      | None -> (nc, nu))
    (0, 0) c.contracted

let remaining_arrays (c : compiled) = List.length c.code.Sir.Code.allocs
