(** Centralized Obs counter keys of the lazy frontend.

    Same discipline as {!Service.Metrics}: every ["lazy.*"] counter the
    trace layer bumps is declared here — emission sites reference these
    values, never string literals — and {!all} enumerates the complete
    set so a unit test can assert it is collision-free, both internally
    and against the service-layer keys. *)

val prefix : string
(** ["lazy."] — every key below starts with it (asserted in tests),
    which keeps the family disjoint from the ["service.*"] /
    ["fusion.*"] / ["plan.*"] counters by construction. *)

val flush : string
(** Flushes performed (each lowers one trace cone to an [Ir.Prog] and
    executes it). *)

val op_recorded : string
(** Combinator applications recorded into a trace. *)

val op_lowered : string
(** Trace ops lowered into statements across all flushes (one op can
    be lowered more than once: a cone is recomputed when a previously
    contracted intermediate is observed later). *)

val op_elided : string
(** Ops a flush passed over — pending, outside the observed cone, and
    never lowered before — i.e. the dead-op elision the lowering
    performs.  Each op counts at most once across a context's
    lifetime. *)

val param_lifted : string
(** Constants lifted to parameter scalars during canonical lowering —
    the rewrite that makes repeated trace {e shapes} share one plan
    cache entry. *)

val force : string
(** Observations ([force] / [force_scalar] / [checksum]). *)

val force_memo : string
(** Observations answered from already-materialized values (no
    flush). *)

val all : string list
(** Every key above, each exactly once. *)
