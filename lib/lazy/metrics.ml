(* The single authority for every Obs counter key the lazy frontend
   emits — the same discipline Service.Metrics established for the
   "service.*" family: literals live here and only here, so a typo
   cannot silently split one logical counter into two, and a unit test
   asserts the key set is collision-free (against itself and against
   the service keys). *)

let prefix = "lazy."

let flush = "lazy.flush"
let op_recorded = "lazy.op.recorded"
let op_lowered = "lazy.op.lowered"
let op_elided = "lazy.op.elided"
let param_lifted = "lazy.param.lifted"
let force = "lazy.force"
let force_memo = "lazy.force.memo"

let all =
  [ flush; op_recorded; op_lowered; op_elided; param_lifted; force; force_memo ]
