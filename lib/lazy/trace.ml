(* The lazy array-expression frontend.

   Combinators record ops into a per-context trace; observation
   flushes: the observed cone is lowered to an Ir.Prog, compiled
   through the Service.Engine plan cache, and executed under
   Exec.Interp.  Two decisions make the plan cache effective across a
   stream of structurally repeating traces:

   - canonical naming: lowered arrays/scalars are named by cone
     position ("a1", "a2", ... / "r1", ...), never by trace node id,
     so the 100th flush of a shape lowers to the same names as the
     first;

   - parameter lifting: every constant occurrence is replaced by a
     parameter scalar ("p1", "p2", ... in statement walk order)
     declared with a canonical initial value of 0.0, and the actual
     values are bound back into the *compiled* code just before
     execution.  The lowered program — and therefore its
     Ir.Prog.fingerprint, the cache key — is a pure function of the
     trace's shape.

   Shape checking happens at record time (the offending combinator
   raises), so a flush can only fail on an engine invariant violation,
   never on user input. *)

module Api = Service.Api
open Ir

exception Shape_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Shape_error s)) fmt

(* A trace op producing an array.  [rhs] references producer ops via
   placeholder names "#<id>"; canonical names are assigned per flush,
   so ids never leak into lowered programs. *)
type node = {
  id : int;
  region : Region.t;
  rhs : Expr.t;
  deps : int list;
  mutable consumed : bool;  (* some later op reads this one *)
  mutable values : float array option;  (* memoized observation *)
  mutable accounted : bool;
      (* already counted by some flush, as lowered or as elided — keeps
         the ops_lowered/ops_elided split from recounting leftovers of
         earlier flushes forever *)
}

(* A reduction op producing a scalar.  Reductions are always sinks:
   no combinator consumes a scalar. *)
type red = {
  rid : int;
  op : Prog.redop;
  red_region : Region.t;
  src : int;
  mutable value : float option;
  mutable racc : bool;  (* as [accounted] *)
}

type ctx = {
  name : string;
  level : Compilers.Driver.level;
  plan : Api.plan_mode;
  target : Api.target;
  eng : Service.Engine.t;
  nodes : (int, node) Hashtbl.t;
  reds : (int, red) Hashtbl.t;
  mutable next_id : int;
  mutable next_rid : int;
  mutable flushing : bool;
  (* statistics (kept unconditionally; Obs counters additionally fire
     when a recorder is installed) *)
  mutable flushes : int;
  mutable ops_recorded : int;
  mutable ops_lowered : int;
  mutable ops_elided : int;
  mutable params_lifted : int;
  mutable forces : int;
  mutable memo_hits : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable compiles_computed : int;
  mutable plans_computed : int;
  mutable last_fingerprint : string option;
}

type arr = { actx : ctx; n : node }
type scalar = { sctx : ctx; r : red }

let create ?(name = "lazy") ?engine ?(level = Compilers.Driver.C2F3)
    ?(plan = Api.Greedy) ?(target = Api.default_target) () =
  let eng =
    match engine with Some e -> e | None -> Service.Engine.create ~jobs:1 ()
  in
  {
    name;
    level;
    plan;
    target;
    eng;
    nodes = Hashtbl.create 64;
    reds = Hashtbl.create 8;
    next_id = 0;
    next_rid = 0;
    flushing = false;
    flushes = 0;
    ops_recorded = 0;
    ops_lowered = 0;
    ops_elided = 0;
    params_lifted = 0;
    forces = 0;
    memo_hits = 0;
    cache_hits = 0;
    cache_misses = 0;
    compiles_computed = 0;
    plans_computed = 0;
    last_fingerprint = None;
  }

let engine ctx = ctx.eng
let region_of (a : arr) = a.n.region

(* ------------------------------------------------------------------ *)
(* Placeholders                                                        *)
(* ------------------------------------------------------------------ *)

let placeholder id rank = Expr.Ref (Printf.sprintf "#%d" id, Support.Vec.zero rank)

let id_of_placeholder x =
  if String.length x > 1 && x.[0] = '#' then
    int_of_string_opt (String.sub x 1 (String.length x - 1))
  else None

(* ------------------------------------------------------------------ *)
(* Record-time shape checking                                          *)
(* ------------------------------------------------------------------ *)

(* [allowed] maps each operand's placeholder name to its region; every
   reference of [rhs] must target an operand, at the statement's rank,
   and stay within the operand's computed domain over [region]. *)
let check_rhs ~op ~(region : Region.t) ~allowed rhs =
  let rank = Region.rank region in
  if Region.is_empty region then err "lazyarr.%s: empty region %s" op (Region.to_string region);
  (match Expr.svars rhs with
  | [] -> ()
  | s :: _ -> err "lazyarr.%s: expression references scalar variable %S" op s);
  if not (Expr.rank_consistent ~rank rhs) then
    err "lazyarr.%s: expression index of rank inconsistent with region %s" op
      (Region.to_string region);
  List.iter
    (fun (x, off) ->
      match List.assoc_opt x allowed with
      | None -> err "lazyarr.%s: expression references a foreign array" op
      | Some producer ->
          if not (Region.contains producer (Region.shift region off)) then
            err
              "lazyarr.%s: read at offset %s over %s escapes the operand's \
               domain %s"
              op
              (Support.Vec.to_string off)
              (Region.to_string region)
              (Region.to_string producer))
    (Expr.refs rhs)

let same_ctx op a b =
  if a.actx != b.actx then err "lazyarr.%s: operands from different contexts" op

let record ctx ~region ~rhs ~deps =
  let id = ctx.next_id in
  ctx.next_id <- id + 1;
  let n = { id; region; rhs; deps; consumed = false; values = None; accounted = false } in
  Hashtbl.add ctx.nodes id n;
  List.iter (fun d -> (Hashtbl.find ctx.nodes d).consumed <- true) deps;
  ctx.ops_recorded <- ctx.ops_recorded + 1;
  Obs.count Metrics.op_recorded 1;
  { actx = ctx; n }

(* ------------------------------------------------------------------ *)
(* Combinators                                                         *)
(* ------------------------------------------------------------------ *)

let gen ctx region e =
  check_rhs ~op:"gen" ~region ~allowed:[] e;
  record ctx ~region ~rhs:e ~deps:[]

let map ?region f (a : arr) =
  let region = Option.value ~default:a.n.region region in
  let pname = Printf.sprintf "#%d" a.n.id in
  let rhs = f (placeholder a.n.id (Region.rank a.n.region)) in
  check_rhs ~op:"map" ~region ~allowed:[ (pname, a.n.region) ] rhs;
  record a.actx ~region ~rhs ~deps:[ a.n.id ]

let zip_with ?region f (a : arr) (b : arr) =
  same_ctx "zip_with" a b;
  let region =
    match region with
    | Some r -> r
    | None -> (
        match Region.inter a.n.region b.n.region with
        | Some r -> r
        | None ->
            err "lazyarr.zip_with: operand regions %s and %s do not intersect"
              (Region.to_string a.n.region)
              (Region.to_string b.n.region))
  in
  let pa = Printf.sprintf "#%d" a.n.id and pb = Printf.sprintf "#%d" b.n.id in
  let rank = Region.rank a.n.region in
  let rhs = f (placeholder a.n.id rank) (placeholder b.n.id rank) in
  (* self-zip reads one producer through both placeholders; the
     [allowed] list just carries the region twice *)
  check_rhs ~op:"zip_with" ~region
    ~allowed:[ (pa, a.n.region); (pb, b.n.region) ]
    rhs;
  record a.actx ~region ~rhs ~deps:(if a.n.id = b.n.id then [ a.n.id ] else [ a.n.id; b.n.id ])

let shift d (a : arr) =
  let rank = Region.rank a.n.region in
  if Support.Vec.rank d <> rank then
    err "lazyarr.shift: offset rank %d, operand rank %d" (Support.Vec.rank d)
      rank;
  let region = Region.shift a.n.region (Support.Vec.neg d) in
  let rhs = Expr.Ref (Printf.sprintf "#%d" a.n.id, d) in
  check_rhs ~op:"shift" ~region
    ~allowed:[ (Printf.sprintf "#%d" a.n.id, a.n.region) ]
    rhs;
  record a.actx ~region ~rhs ~deps:[ a.n.id ]

let reduce ?region op (a : arr) =
  let ctx = a.actx in
  let region = Option.value ~default:a.n.region region in
  if Region.is_empty region then
    err "lazyarr.reduce: empty region %s" (Region.to_string region);
  if Region.rank region <> Region.rank a.n.region then
    err "lazyarr.reduce: region rank %d, operand rank %d" (Region.rank region)
      (Region.rank a.n.region);
  if not (Region.contains a.n.region region) then
    err "lazyarr.reduce: region %s escapes the operand's domain %s"
      (Region.to_string region)
      (Region.to_string a.n.region);
  let rid = ctx.next_rid in
  ctx.next_rid <- rid + 1;
  let r = { rid; op; red_region = region; src = a.n.id; value = None; racc = false } in
  Hashtbl.add ctx.reds rid r;
  a.n.consumed <- true;
  ctx.ops_recorded <- ctx.ops_recorded + 1;
  Obs.count Metrics.op_recorded 1;
  { sctx = ctx; r }

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)
(* ------------------------------------------------------------------ *)

(* Dependence cone of the observed ops: ids in ascending order (an
   op's dependencies always have smaller ids, so ascending id order is
   a topological order of the cone). *)
let cone ctx ~(obs_arrays : node list) ~(obs_reds : red list) =
  let seen = Hashtbl.create 32 in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      List.iter visit (Hashtbl.find ctx.nodes id).deps
    end
  in
  List.iter (fun (n : node) -> visit n.id) obs_arrays;
  List.iter (fun (r : red) -> visit r.src) obs_reds;
  Hashtbl.fold (fun id () acc -> id :: acc) seen [] |> List.sort compare

type lowered = {
  prog : Prog.t;
  bindings : (string * float) list;  (* parameter scalar -> actual value *)
  named_arrays : (node * string) list;  (* observed nodes, canonical names *)
  named_reds : (red * string) list;
  cone_ids : int list;
  n_lowered : int;
}

(* [canonical]: lift constants to parameter scalars (the cache-reuse
   lowering).  Without it, constants stay inline — the eager twin the
   oracle and the tests replay. *)
let lower ctx ~canonical ~(obs_arrays : node list) ~(obs_reds : red list) =
  let cone_ids = cone ctx ~obs_arrays ~obs_reds in
  let names = Hashtbl.create 16 in
  List.iteri
    (fun i id -> Hashtbl.add names id (Printf.sprintf "a%d" (i + 1)))
    cone_ids;
  let obs_reds = List.sort (fun a b -> compare a.rid b.rid) obs_reds in
  let red_names =
    List.mapi (fun i r -> (r, Printf.sprintf "r%d" (i + 1))) obs_reds
  in
  let params = ref [] in
  let n_params = ref 0 in
  let rec tr e =
    match e with
    | Expr.Const c ->
        if canonical then begin
          incr n_params;
          let p = Printf.sprintf "p%d" !n_params in
          params := (p, c) :: !params;
          Expr.Svar p
        end
        else e
    | Expr.Svar _ -> assert false (* record-time checks forbid scalars *)
    | Expr.Idx _ -> e
    | Expr.Ref (x, d) -> (
        match id_of_placeholder x with
        | Some id -> Expr.Ref (Hashtbl.find names id, d)
        | None -> assert false)
    | Expr.Unop (op, a) -> Expr.Unop (op, tr a)
    | Expr.Binop (op, a, b) ->
        let a = tr a in
        let b = tr b in
        Expr.Binop (op, a, b)
    | Expr.Select (c, a, b) ->
        let c = tr c in
        let a = tr a in
        let b = tr b in
        Expr.Select (c, a, b)
  in
  let observed = List.map (fun (n : node) -> n.id) obs_arrays in
  let body =
    List.map
      (fun id ->
        let n = Hashtbl.find ctx.nodes id in
        Prog.Astmt
          (Nstmt.make ~region:n.region ~lhs:(Hashtbl.find names id) (tr n.rhs)))
      cone_ids
    @ List.map
        (fun ((r : red), target) ->
          Prog.Reduce
            {
              target;
              op = r.op;
              region = r.red_region;
              arg = Expr.Ref (Hashtbl.find names r.src, Support.Vec.zero (Region.rank r.red_region));
            })
        red_names
  in
  let arrays =
    List.map
      (fun id ->
        let n = Hashtbl.find ctx.nodes id in
        {
          Prog.name = Hashtbl.find names id;
          bounds = n.region;
          kind = (if List.mem id observed then Prog.User else Prog.Compiler);
        })
      cone_ids
  in
  let bindings = List.rev !params in
  let scalars =
    List.map (fun (p, _) -> (p, 0.0)) bindings
    @ List.map (fun (_, t) -> (t, 0.0)) red_names
  in
  let live_out =
    List.filter_map
      (fun id ->
        if List.mem id observed then Some (Hashtbl.find names id) else None)
      cone_ids
    @ List.map snd red_names
  in
  let prog =
    {
      Prog.name = Printf.sprintf "%s.flush%d" ctx.name (ctx.flushes + 1);
      arrays;
      scalars;
      body;
      live_out;
    }
  in
  (match Prog.validate prog with
  | Ok () -> ()
  | Error m ->
      (* record-time checks are meant to make this unreachable *)
      err "lazyarr: lowered program is invalid (%s)" m);
  let n_lowered = List.length cone_ids + List.length obs_reds in
  {
    prog;
    bindings;
    named_arrays =
      List.filter_map
        (fun (n : node) ->
          if List.mem n.id cone_ids then Some (n, Hashtbl.find names n.id)
          else None)
        obs_arrays;
    named_reds = red_names;
    cone_ids;
    n_lowered;
  }

let lower_direct ctx (a : arr) =
  (lower ctx ~canonical:false ~obs_arrays:[ a.n ] ~obs_reds:[]).prog

let lower_direct_scalar ctx (s : scalar) =
  (lower ctx ~canonical:false ~obs_arrays:[] ~obs_reds:[ s.r ]).prog

(* ------------------------------------------------------------------ *)
(* Flush                                                               *)
(* ------------------------------------------------------------------ *)

(* Bind the actual constant values over the canonical (all-zero)
   parameter initializers of the *compiled* code.  The compiled value
   is shared through the plan cache, so this builds a fresh program
   record rather than mutating. *)
let rebind bindings (code : Sir.Code.program) =
  if bindings = [] then code
  else
    {
      code with
      Sir.Code.scalars =
        List.map
          (fun (s, v) ->
            match List.assoc_opt s bindings with
            | Some actual -> (s, actual)
            | None -> (s, v))
          code.Sir.Code.scalars;
    }

let flush_obs ctx ~obs_arrays ~obs_reds =
  if ctx.flushing then err "lazyarr: re-entrant flush";
  ctx.flushing <- true;
  Fun.protect
    ~finally:(fun () -> ctx.flushing <- false)
    (fun () ->
      Obs.span "lazy.flush" @@ fun () ->
      let l =
        Obs.span "lazy.lower" (fun () ->
            lower ctx ~canonical:true ~obs_arrays ~obs_reds)
      in
      ctx.flushes <- ctx.flushes + 1;
      ctx.ops_lowered <- ctx.ops_lowered + l.n_lowered;
      (* dead-op elision accounting: a pending op outside the cone is
         elided — counted once, the first time a flush passes it over
         without ever having lowered it *)
      List.iter
        (fun id -> (Hashtbl.find ctx.nodes id).accounted <- true)
        l.cone_ids;
      List.iter (fun ((r : red), _) -> r.racc <- true) l.named_reds;
      let n_elided = ref 0 in
      Hashtbl.iter
        (fun _ (n : node) ->
          if (not n.accounted) && n.values = None then begin
            n.accounted <- true;
            incr n_elided
          end)
        ctx.nodes;
      Hashtbl.iter
        (fun _ (r : red) ->
          if (not r.racc) && r.value = None then begin
            r.racc <- true;
            incr n_elided
          end)
        ctx.reds;
      let n_elided = !n_elided in
      ctx.ops_elided <- ctx.ops_elided + n_elided;
      ctx.params_lifted <- ctx.params_lifted + List.length l.bindings;
      Obs.count Metrics.flush 1;
      Obs.count Metrics.op_lowered l.n_lowered;
      if n_elided > 0 then Obs.count Metrics.op_elided n_elided;
      if l.bindings <> [] then
        Obs.count Metrics.param_lifted (List.length l.bindings);
      let opts =
        {
          Api.default_compile_opts with
          Api.level = Compilers.Driver.level_name ctx.level;
          plan = ctx.plan;
        }
      in
      let s0 = Service.Engine.server_stats ctx.eng in
      let fingerprint, compiled =
        match
          Service.Engine.compile_ir ctx.eng ~opts ~target:ctx.target l.prog
        with
        | Ok (fp, c, _provenance) -> (fp, c)
        | Error d -> raise (Obs.Error d)
      in
      let s1 = Service.Engine.server_stats ctx.eng in
      ctx.cache_hits <-
        ctx.cache_hits + s1.Api.cache.Api.hits - s0.Api.cache.Api.hits;
      ctx.cache_misses <-
        ctx.cache_misses + s1.Api.cache.Api.misses - s0.Api.cache.Api.misses;
      ctx.compiles_computed <-
        ctx.compiles_computed + s1.Api.compiles_computed
        - s0.Api.compiles_computed;
      ctx.plans_computed <-
        ctx.plans_computed + s1.Api.plans_computed - s0.Api.plans_computed;
      ctx.last_fingerprint <- Some fingerprint;
      let code = rebind l.bindings compiled.Compilers.Driver.code in
      let res = Obs.span "lazy.execute" (fun () -> Exec.Interp.run code) in
      List.iter
        (fun ((n : node), name) ->
          n.values <- Some (Array.copy (Exec.Interp.get_array res name)))
        l.named_arrays;
      List.iter
        (fun ((r : red), name) ->
          r.value <- Some (Exec.Interp.get_scalar res name))
        l.named_reds)

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let note_force ctx ~memo =
  ctx.forces <- ctx.forces + 1;
  Obs.count Metrics.force 1;
  if memo then begin
    ctx.memo_hits <- ctx.memo_hits + 1;
    Obs.count Metrics.force_memo 1
  end

let force (a : arr) =
  match a.n.values with
  | Some v ->
      note_force a.actx ~memo:true;
      Array.copy v
  | None ->
      note_force a.actx ~memo:false;
      flush_obs a.actx ~obs_arrays:[ a.n ] ~obs_reds:[];
      Array.copy (Option.get a.n.values)

let force_scalar (s : scalar) =
  match s.r.value with
  | Some v ->
      note_force s.sctx ~memo:true;
      v
  | None ->
      note_force s.sctx ~memo:false;
      flush_obs s.sctx ~obs_arrays:[] ~obs_reds:[ s.r ];
      Option.get s.r.value

let digest_of values =
  Exec.Interp.Digest.to_hex
    (Array.fold_left Exec.Interp.Digest.mix Exec.Interp.Digest.empty values)

let checksum (a : arr) =
  (match a.n.values with
  | Some _ -> note_force a.actx ~memo:true
  | None ->
      note_force a.actx ~memo:false;
      flush_obs a.actx ~obs_arrays:[ a.n ] ~obs_reds:[]);
  digest_of (Option.get a.n.values)

let scalar_checksum (s : scalar) =
  let v = force_scalar s in
  Exec.Interp.Digest.to_hex
    (Exec.Interp.Digest.mix Exec.Interp.Digest.empty v)

let flush ctx =
  let obs_arrays =
    Hashtbl.fold
      (fun _ (n : node) acc ->
        if (not n.consumed) && n.values = None then n :: acc else acc)
      ctx.nodes []
    |> List.sort (fun (a : node) b -> compare a.id b.id)
  in
  let obs_reds =
    Hashtbl.fold
      (fun _ (r : red) acc -> if r.value = None then r :: acc else acc)
      ctx.reds []
    |> List.sort (fun (a : red) b -> compare a.rid b.rid)
  in
  if obs_arrays <> [] || obs_reds <> [] then
    flush_obs ctx ~obs_arrays ~obs_reds

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

type stats = {
  flushes : int;
  ops_recorded : int;
  ops_lowered : int;
  ops_elided : int;
  params_lifted : int;
  forces : int;
  memo_hits : int;
  cache_hits : int;
  cache_misses : int;
  compiles_computed : int;
  plans_computed : int;
  last_fingerprint : string option;
}

let stats (ctx : ctx) =
  {
    flushes = ctx.flushes;
    ops_recorded = ctx.ops_recorded;
    ops_lowered = ctx.ops_lowered;
    ops_elided = ctx.ops_elided;
    params_lifted = ctx.params_lifted;
    forces = ctx.forces;
    memo_hits = ctx.memo_hits;
    cache_hits = ctx.cache_hits;
    cache_misses = ctx.cache_misses;
    compiles_computed = ctx.compiles_computed;
    plans_computed = ctx.plans_computed;
    last_fingerprint = ctx.last_fingerprint;
  }
