(** The lazy array-expression frontend: runtime fusion.

    Every other consumer of the pipeline hands it a whole program; this
    module serves the regime "Fusion of Array Operations at Runtime"
    (Kristensen et al.) describes — operations arrive {e one at a
    time}, and the system batches, shape-checks and fuses them
    dynamically.  Combinators ({!gen}, {!map}, {!zip_with}, {!shift},
    {!reduce}) do no array work: each records one op into its
    context's trace, after shape-checking it so errors surface at the
    offending call.  Array work happens at a {e flush} — triggered by
    an observation ({!force}, {!force_scalar}, {!checksum}) or by an
    explicit {!flush} — which

    {ol
    {- lowers the cone of trace ops the observation depends on to an
       {!Ir.Prog} (ops outside the cone are elided — dead temporaries
       cost nothing);}
    {- lifts every constant to a parameter scalar and renames ops
       canonically, so two flushes with the same trace {e shape} (same
       structure, different constants) lower to byte-identical
       programs with equal {!Ir.Prog.fingerprint}s;}
    {- compiles through {!Service.Engine}'s fingerprint-keyed plan
       cache — a repeated shape reuses the cached fusion/contraction
       plan with zero re-planning — and executes the compiled code
       under {!Exec.Interp} with the actual constants bound back.}}

    Intermediate ops inside a cone are compiler temporaries: the
    optimizer fuses their loops and contracts their storage exactly as
    it would for a whole-program input.  Observed results are
    memoized; re-forcing is free.  A node observed {e after} some
    flush already consumed it is recomputed from its (still recorded)
    defining ops — all ops are pure, so recomputation is exact.

    Instrumentation: flushes run under [Obs] spans ["lazy.flush"] /
    ["lazy.lower"] / ["lazy.execute"] and bump the {!Metrics}
    counters; the engine mirrors its cache hit/miss counters alongside
    (see {!Service.Metrics}). *)

exception Shape_error of string
(** Raised at the offending combinator when an op fails shape
    validation (rank mismatch, region mismatch, a read escaping the
    producer's domain, cross-context mixing, an expression referencing
    anything but the operands it was given). *)

type ctx
(** A trace context: the op log, the engine handle, and the
    compile configuration (level / plan mode / target). *)

type arr
(** A lazy array: a handle to one trace op and its region. *)

type scalar
(** A lazy scalar: the pending result of a {!reduce}. *)

val create :
  ?name:string ->
  ?engine:Service.Engine.t ->
  ?level:Compilers.Driver.level ->
  ?plan:Service.Api.plan_mode ->
  ?target:Service.Api.target ->
  unit ->
  ctx
(** Fresh context.  [engine] defaults to a private single-domain
    {!Service.Engine.create}; pass a shared engine to pool plan-cache
    state across contexts (that sharing is what a daemon does).
    [level] defaults to [C2F3], [plan] to [Greedy], [target] to
    {!Service.Api.default_target} ([target] only matters under
    [Search]). *)

val engine : ctx -> Service.Engine.t

(** {1 Combinators}

    All validate at record time and raise {!Shape_error} on the
    offending op.  The expression callbacks receive placeholder
    expressions standing for one element of each operand and must
    build the result from them ({!Ir.Expr} constants, arithmetic,
    [Select], [Idx] — but no new array references and no scalar
    variables). *)

val gen : ctx -> Ir.Region.t -> Ir.Expr.t -> arr
(** [gen ctx r e] is the array whose element at index [i in r] is
    [e] evaluated at [i] — the expression may use [Ir.Expr.Idx] and
    constants only.  The trace's source nodes. *)

val map : ?region:Ir.Region.t -> (Ir.Expr.t -> Ir.Expr.t) -> arr -> arr
(** Elementwise function of one array.  [region] defaults to the
    operand's region and must be contained in it. *)

val zip_with :
  ?region:Ir.Region.t ->
  (Ir.Expr.t -> Ir.Expr.t -> Ir.Expr.t) ->
  arr ->
  arr ->
  arr
(** Elementwise function of two arrays (same context).  [region]
    defaults to the intersection of the operands' regions and must be
    contained in both; an empty default intersection is a
    {!Shape_error}. *)

val shift : Support.Vec.t -> arr -> arr
(** [shift d a] reads [a] at constant offset [d]: element [i] of the
    result is [a@d], i.e. [a[i + d]].  The result's region is [a]'s
    region translated by [-d] (exactly the indices at which the read
    stays inside [a]'s domain). *)

val reduce : ?region:Ir.Region.t -> Ir.Prog.redop -> arr -> scalar
(** Full-region reduction of an array into a scalar.  [region]
    defaults to the operand's region and must be contained in it. *)

val region_of : arr -> Ir.Region.t

(** {1 Observation}

    Each observation forces the value: if the node is already
    materialized the memoized value is returned (no flush); otherwise
    the node's cone is flushed. *)

val force : arr -> float array
(** Row-major contents over the array's region. *)

val force_scalar : scalar -> float

val checksum : arr -> string
(** {!Exec.Interp.Digest} of the array's elements in row-major order —
    equal to the live-out checksum of any executor running a program
    whose live-out set is exactly this array. *)

val scalar_checksum : scalar -> string

val flush : ctx -> unit
(** Materialize every pending sink (ops no recorded op consumes) in
    one batched program — multi-output fusion.  A context with no
    pending sink is a no-op. *)

(** {1 Lowering (exposed for tests, the fuzzer and the bench)} *)

val lower_direct : ctx -> arr -> Ir.Prog.t
(** The eager equivalent of forcing [a]: the cone of [a] lowered with
    constants inline (no parameter lifting) and live-out [= a].
    Running it under any executor must produce {!checksum}[ a] — the
    differential property the trace-mode fuzzer and the qcheck suite
    replay.  Does not flush and records nothing. *)

val lower_direct_scalar : ctx -> scalar -> Ir.Prog.t

(** {1 Statistics} *)

type stats = {
  flushes : int;
  ops_recorded : int;
  ops_lowered : int;  (** statements emitted across all flushes *)
  ops_elided : int;
      (** never-lowered ops that some flush passed over (dead at that
          observation; each op counts at most once) *)
  params_lifted : int;
  forces : int;
  memo_hits : int;
  cache_hits : int;  (** engine plan-cache deltas observed by this context's flushes *)
  cache_misses : int;
  compiles_computed : int;
  plans_computed : int;
  last_fingerprint : string option;
      (** fingerprint of the last flushed program — equal across
          flushes of equal trace shape *)
}

val stats : ctx -> stats
