type config = {
  machine : Machine.t;
  procs : int;
  comm : Model.opts;
}

type report = {
  time_ns : float;
  comp_ns : float;
  comm_ns : float;
  l1 : Cachesim.Cache.stats;
  l2 : Cachesim.Cache.stats option;
  flops : int;
  loads : int;
  stores : int;
  messages : int;
  msg_bytes : int;
  footprint_bytes : int;
  checksum : string;
}

let measure cfg (c : Compilers.Driver.compiled) =
  let m = cfg.machine in
  let hier =
    Cachesim.Cache.Hierarchy.create ~l1:m.Machine.l1 ?l2:m.Machine.l2 ()
  in
  let trace ~addr ~write =
    Cachesim.Cache.Hierarchy.access hier ~addr ~write
  in
  let code = c.Compilers.Driver.code in
  let result = Exec.Interp.run ~trace code in
  let cnt = Exec.Interp.counters result in
  Cachesim.Cache.Hierarchy.observe hier;
  let l1 = Cachesim.Cache.Hierarchy.l1_stats hier in
  let l2 = Cachesim.Cache.Hierarchy.l2_stats hier in
  let comm = Model.analyze ~machine:m ~procs:cfg.procs ~opts:cfg.comm c in
  let l2_misses =
    match l2 with Some s -> s.Cachesim.Cache.misses | None -> 0
  in
  let activity =
    {
      Machine.flops = cnt.Exec.Interp.flops;
      l1_accesses = l1.Cachesim.Cache.accesses;
      l1_misses = l1.Cachesim.Cache.misses;
      l2_misses;
      comm_ns = comm.Model.effective_ns;
    }
  in
  let time = Machine.time_ns m activity in
  {
    time_ns = time;
    comp_ns = time -. comm.Model.effective_ns;
    comm_ns = comm.Model.effective_ns;
    l1;
    l2;
    flops = cnt.Exec.Interp.flops;
    loads = cnt.Exec.Interp.loads;
    stores = cnt.Exec.Interp.stores;
    messages = comm.Model.messages;
    msg_bytes = comm.Model.bytes;
    footprint_bytes = Exec.Interp.footprint_bytes code;
    checksum = Exec.Interp.checksum result;
  }

let improvement_pct ~baseline r =
  100.0 *. (baseline.time_ns -. r.time_ns) /. r.time_ns
