(** Communication inference, optimization and costing.

    Works at the array level, on the same fusion plan the scalarizer
    consumes — exactly the integration the paper argues for (§5.5).
    For every fusible cluster the model infers the border exchanges its
    remote references require, then applies the paper's communication
    optimizations:

    - {e message vectorization} — always on: one message per
      (array, direction) per cluster, never per element;
    - {e redundancy elimination} — an exchange is dropped when the same
      border was already fetched and the array has not been written
      since;
    - {e message combining} — exchanges consumed at the same point and
      going to the same neighbor share one message (one latency α);
    - {e pipelining} — the wait for an exchange is overlapped with the
      computation of clusters scheduled between the producer of the
      array and its consumer; a floor of 0.25·α per message models the
      unhideable software overhead.

    Reductions contribute a log₂ p combining tree per execution. *)

type opts = {
  redundancy : bool;
  combining : bool;
  pipelining : bool;
}

val all_on : opts
val vectorize_only : opts

type summary = {
  messages : int;  (** point-to-point messages, after optimization *)
  bytes : int;  (** payload bytes moved *)
  raw_ns : float;  (** exchange cost before overlap *)
  effective_ns : float;
      (** total communication wait time charged to the run, including
          reductions *)
  reduction_ns : float;  (** portion due to reduction trees *)
}

(** {1 Typed message schedules}

    The per-block exchange schedule the analysis is built on, exposed
    so an executable backend (lib/spmd) can perform {e exactly} the
    messages the model predicts.  Positions refer to the block's
    cluster emission order ({!Sir.Scalarize.cluster_order}). *)

type part = {
  p_array : string;  (** array whose border is carried *)
  p_dir : int array;  (** neighbor direction (sign vector); equals the message's *)
  p_depth : int array;
      (** ghost depth per dimension: componentwise max of [|off_k|]
          over the consuming cluster's remote references, 0 in
          dimensions the direction does not cross *)
  p_bytes : int;  (** modeled slab payload (region extents in uncrossed dims) *)
}

type message = {
  m_dir : int array;
  m_parts : part list;  (** one part per exchanged (array, dir); >1 only under combining *)
  m_producer : int;  (** latest producing cluster position; -1 = block entry *)
  m_consumer : int;  (** consuming cluster position *)
  m_bytes : int;  (** sum of part payloads *)
}

type block_sched = {
  b_rank : int;  (** rank of the block's statements (grid rank) *)
  b_costs : float array;  (** static per-cluster compute estimate, emission order *)
  b_steps : message list array;  (** messages indexed by consumer position *)
  b_inferred : int;  (** exchanges before redundancy elimination *)
  b_kept : int;  (** after redundancy elimination, before combining *)
}

val schedule :
  machine:Machine.t ->
  procs:int ->
  opts:opts ->
  Compilers.Driver.compiled ->
  block_sched list
(** One schedule per basic block, aligned with [Ir.Prog.blocks] (and
    with the compiled plan).  Message vectorization is always applied;
    redundancy elimination and combining follow [opts].  With
    [procs = 1] every step list is empty. *)

val reduction_stages : int -> int
(** Stages of the log₂ p reduction combining tree: ⌈log₂ procs⌉
    (0 for a single processor). *)

val block_multipliers : Ir.Prog.t -> int array * int
(** Per-block execution multipliers (how many times each basic block
    runs, from the enclosing sequential loops; aligned with
    [Ir.Prog.blocks]) and the total number of reduction executions.
    Exposed for the fusion planner, whose cost model must weight blocks
    the same way {!analyze} does. *)

val block_comm :
  machine:Machine.t ->
  procs:int ->
  opts:opts ->
  Ir.Nstmt.t list ->
  Sir.Scalarize.block_plan ->
  summary
(** Communication cost of {e one execution} of a single basic block
    under a candidate fusion plan: the per-message charges of
    {!analyze} without the execution multiplier, reduction trees or Obs
    instrumentation.  This is the planner's per-state communication
    oracle — cheap enough to call inside a partition search. *)

val analyze_plan :
  machine:Machine.t ->
  procs:int ->
  opts:opts ->
  Ir.Prog.t ->
  Sir.Scalarize.plan ->
  summary
(** {!analyze} on a bare (program, fusion plan) pair — the compiled
    record's scalar code is never consulted, so a planner can cost a
    candidate plan before committing to scalarization. *)

val analyze :
  machine:Machine.t ->
  procs:int ->
  opts:opts ->
  Compilers.Driver.compiled ->
  summary
(** Infer and cost all communication for one compiled configuration.
    Built on {!schedule}: walks the program once for per-block
    execution multipliers, then sums each block's messages.  With
    [procs = 1] everything is local: the summary is all zeros. *)

val cluster_cost_ns :
  machine:Machine.t -> Core.Partition.t -> int -> float
(** Static per-execution compute estimate for one cluster (used for
    overlap windows; also exposed for tests). *)
