open Ir

type opts = {
  redundancy : bool;
  combining : bool;
  pipelining : bool;
}

let all_on = { redundancy = true; combining = true; pipelining = true }
let vectorize_only = { redundancy = false; combining = false; pipelining = false }

type summary = {
  messages : int;
  bytes : int;
  raw_ns : float;
  effective_ns : float;
  reduction_ns : float;
}

(* ------------------------------------------------------------------ *)
(* Static compute cost of a cluster (for overlap windows)              *)
(* ------------------------------------------------------------------ *)

let rec expr_flops (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Svar _ | Expr.Ref _ | Expr.Idx _ -> 0
  | Expr.Unop (_, a) -> 1 + expr_flops a
  | Expr.Binop (_, a, b) -> 1 + expr_flops a + expr_flops b
  | Expr.Select (c, a, b) -> 1 + expr_flops c + expr_flops a + expr_flops b

let stmt_cost_ns ~(machine : Machine.t) (s : Nstmt.t) =
  let vol = float_of_int (Region.volume s.region) in
  let flops = float_of_int (expr_flops s.rhs) in
  let refs = float_of_int (List.length (Expr.refs s.rhs) + 1) in
  vol *. ((flops *. machine.Machine.flop_ns) +. (refs *. machine.Machine.l1_hit_ns))

let cluster_cost_ns ~machine p rep =
  let g = Core.Partition.asdg p in
  List.fold_left
    (fun acc i -> acc +. stmt_cost_ns ~machine (Core.Asdg.stmt g i))
    0.0
    (Core.Partition.members p rep)

(* ------------------------------------------------------------------ *)
(* Per-block message schedules                                         *)
(* ------------------------------------------------------------------ *)

type part = {
  p_array : string;
  p_dir : int array;
  p_depth : int array;  (** per-dimension ghost depth; 0 where [p_dir] is 0 *)
  p_bytes : int;
}

type message = {
  m_dir : int array;
  m_parts : part list;
  m_producer : int;
  m_consumer : int;
  m_bytes : int;
}

type block_sched = {
  b_rank : int;
  b_costs : float array;
  b_steps : message list array;
  b_inferred : int;
  b_kept : int;
}

(* A ghost slab covers the consumer's full region extent in the
   dimensions the message does not cross, and [depth] elements in the
   dimensions it does. *)
let slab_bytes region dir (depth : int array) =
  let n = Region.rank region in
  let elems = ref 1 in
  for k = 1 to n do
    let e =
      if dir.(k - 1) = 0 then Region.extent region k else depth.(k - 1)
    in
    elems := !elems * max 1 e
  done;
  8 * !elems

let depth_of_off dir (off : Support.Vec.t) =
  Array.mapi (fun k d -> if d = 0 then 0 else abs off.(k)) dir

let depth_covers a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> x >= y) a b

let depth_max a b = Array.map2 max a b

(* The schedule of one basic block: clusters in emission order, each
   with the arrays it writes, its remote reads (with componentwise-max
   merged ghost depths), and its compute cost.  Fusion legality
   (Def. 5(i)) makes all members of a cluster share one region. *)
type sched_entry = {
  writes : string list;
  region : Region.t option;
  remote : (string * int array * int array) list;  (** array, dir, depth *)
  cost : float;
}

let block_schedule ~machine ~dist (bp : Sir.Scalarize.block_plan) =
  let p = bp.Sir.Scalarize.partition in
  let g = Core.Partition.asdg p in
  let contracted = List.map fst bp.Sir.Scalarize.contracted in
  let order = Sir.Scalarize.cluster_order p in
  List.map
    (fun rep ->
      let members = Core.Partition.members p rep in
      let stmts = List.map (Core.Asdg.stmt g) members in
      let writes =
        List.filter
          (fun x -> not (List.mem x contracted))
          (List.map (fun (s : Nstmt.t) -> s.lhs) stmts)
      in
      let region =
        match stmts with s :: _ -> Some s.Nstmt.region | [] -> None
      in
      let remote = ref [] in
      List.iter
        (fun (s : Nstmt.t) ->
          List.iter
            (fun (x, off) ->
              if not (List.mem x contracted) then
                match Dist.remote_dir dist off with
                | None -> ()
                | Some dir ->
                    let depth = depth_of_off dir off in
                    let key (x', d', _) = (x', d') in
                    let cur = !remote in
                    (match
                       List.find_opt (fun e -> key e = (x, dir)) cur
                     with
                    | Some (_, _, depth') when depth_covers depth' depth -> ()
                    | Some (_, _, depth') ->
                        remote :=
                          (x, dir, depth_max depth depth')
                          :: List.filter (fun e -> key e <> (x, dir)) cur
                    | None -> remote := (x, dir, depth) :: cur))
            (Expr.refs s.rhs))
        stmts;
      {
        writes;
        region;
        remote = List.rev !remote;
        cost = cluster_cost_ns ~machine p rep;
      })
    order

type event = {
  e_array : string;
  e_dir : int array;
  e_depth : int array;
  e_bytes : int;
  e_consumer : int;  (** cluster position in the block schedule *)
  e_producer : int;  (** last earlier position writing the array; -1 = block entry *)
}

let block_events sched =
  let arr = Array.of_list sched in
  let events = ref [] in
  Array.iteri
    (fun c entry ->
      List.iter
        (fun (x, dir, depth) ->
          (* last earlier cluster writing x *)
          let producer = ref (-1) in
          for q = 0 to c - 1 do
            if List.mem x arr.(q).writes then producer := q
          done;
          let bytes =
            match entry.region with
            | Some r -> slab_bytes r dir depth
            | None -> 0
          in
          events :=
            {
              e_array = x;
              e_dir = dir;
              e_depth = depth;
              e_bytes = bytes;
              e_consumer = c;
              e_producer = !producer;
            }
            :: !events)
        entry.remote)
    arr;
  List.rev !events

let eliminate_redundant sched events =
  let arr = Array.of_list sched in
  let written_between x a b =
    (* any write of x by clusters in positions [a, b) *)
    let hit = ref false in
    for q = max a 0 to b - 1 do
      if List.mem x arr.(q).writes then hit := true
    done;
    !hit
  in
  let kept = ref [] in
  List.filter
    (fun e ->
      let redundant =
        List.exists
          (fun e' ->
            e'.e_array = e.e_array && e'.e_dir = e.e_dir
            && depth_covers e'.e_depth e.e_depth
            && e'.e_bytes >= e.e_bytes
            && not (written_between e.e_array e'.e_consumer e.e_consumer))
          !kept
      in
      if not redundant then kept := e :: !kept;
      not redundant)
    events

let part_of_event e =
  { p_array = e.e_array; p_dir = e.e_dir; p_depth = e.e_depth; p_bytes = e.e_bytes }

let messages_of_events ~opts events =
  if opts.combining then begin
    (* one message per (consumer, dir), preserving first-seen order *)
    let groups = ref [] in
    List.iter
      (fun e ->
        let key = (e.e_consumer, e.e_dir) in
        match List.assoc_opt key !groups with
        | Some cell ->
            let parts, producer, bytes = !cell in
            cell := (part_of_event e :: parts, max producer e.e_producer,
                     bytes + e.e_bytes)
        | None ->
            groups :=
              !groups @ [ (key, ref ([ part_of_event e ], e.e_producer, e.e_bytes)) ])
      events;
    List.map
      (fun ((consumer, dir), cell) ->
        let parts, producer, bytes = !cell in
        {
          m_dir = dir;
          m_parts = List.rev parts;
          m_producer = producer;
          m_consumer = consumer;
          m_bytes = bytes;
        })
      !groups
  end
  else
    List.map
      (fun e ->
        {
          m_dir = e.e_dir;
          m_parts = [ part_of_event e ];
          m_producer = e.e_producer;
          m_consumer = e.e_consumer;
          m_bytes = e.e_bytes;
        })
      events

let block_sched_of ~(machine : Machine.t) ~procs ~opts stmts bp =
  let rank =
    match stmts with
    | (s : Nstmt.t) :: _ -> Region.rank s.Nstmt.region
    | [] -> 2
  in
  let dist = Dist.make ~rank ~procs in
  let sched = block_schedule ~machine ~dist bp in
  let events = block_events sched in
  let inferred = List.length events in
  let events =
    if opts.redundancy then eliminate_redundant sched events else events
  in
  let kept = List.length events in
  let msgs = messages_of_events ~opts events in
  let n = List.length sched in
  let steps = Array.make n [] in
  List.iter (fun m -> steps.(m.m_consumer) <- m :: steps.(m.m_consumer)) msgs;
  Array.iteri (fun i l -> steps.(i) <- List.rev l) steps;
  {
    b_rank = rank;
    b_costs = Array.of_list (List.map (fun e -> e.cost) sched);
    b_steps = steps;
    b_inferred = inferred;
    b_kept = kept;
  }

let schedule_plan ~machine ~procs ~opts prog plan =
  List.map2
    (fun bp stmts -> block_sched_of ~machine ~procs ~opts stmts bp)
    plan (Prog.blocks prog)

let schedule ~(machine : Machine.t) ~procs ~opts
    (c : Compilers.Driver.compiled) =
  schedule_plan ~machine ~procs ~opts c.Compilers.Driver.prog
    c.Compilers.Driver.plan

let reduction_stages procs =
  if procs <= 1 then 0
  else int_of_float (ceil (log (float_of_int procs) /. log 2.0))

(* ------------------------------------------------------------------ *)
(* Whole-program analysis                                              *)
(* ------------------------------------------------------------------ *)

(* Per-block execution multipliers + total reduction executions, via
   the same traversal order as Prog.blocks. *)
let block_multipliers prog =
  let n_blocks = List.length (Prog.blocks prog) in
  let block_mult = Array.make n_blocks 0 in
  let reductions = ref 0 in
  let next_block = ref 0 in
  let rec walk mult pending stmts =
    match stmts with
    | [] -> flush mult pending
    | Prog.Astmt _ :: tl -> walk mult (pending + 1) tl
    | Prog.Sloop { lo; hi; body; _ } :: tl ->
        flush mult pending;
        walk (mult * max 0 (hi - lo + 1)) 0 body;
        walk mult 0 tl
    | Prog.Reduce _ :: tl ->
        flush mult pending;
        reductions := !reductions + mult;
        walk mult 0 tl
    | Prog.Sassign _ :: tl ->
        flush mult pending;
        walk mult 0 tl
  and flush mult pending =
    if pending > 0 then begin
      block_mult.(!next_block) <- mult;
      incr next_block
    end
  in
  walk 1 0 prog.Prog.body;
  (block_mult, !reductions)

let zero_summary =
  { messages = 0; bytes = 0; raw_ns = 0.0; effective_ns = 0.0; reduction_ns = 0.0 }

(* Cost of one block schedule for a single execution of the block —
   the pipelining overlap windows and all per-message charges of
   [analyze_plan], without the execution multiplier and without Obs
   instrumentation (this runs in the planner's search loop). *)
let sched_cost ~(machine : Machine.t) ~opts bs =
  let alpha = machine.Machine.msg_latency_ns in
  let beta = machine.Machine.byte_ns in
  let total = ref zero_summary in
  let window_of ~producer ~consumer =
    let w = ref 0.0 in
    for q = producer + 1 to consumer - 1 do
      w := !w +. bs.b_costs.(q)
    done;
    !w
  in
  Array.iter
    (List.iter (fun m ->
         let raw = alpha +. (beta *. float_of_int m.m_bytes) in
         let window = window_of ~producer:m.m_producer ~consumer:m.m_consumer in
         let eff =
           if opts.pipelining then max (0.25 *. alpha) (raw -. window) else raw
         in
         total :=
           {
             !total with
             messages = !total.messages + 1;
             bytes = !total.bytes + m.m_bytes;
             raw_ns = !total.raw_ns +. raw;
             effective_ns = !total.effective_ns +. eff;
           }))
    bs.b_steps;
  !total

let block_comm ~machine ~procs ~opts stmts bp =
  if procs <= 1 then zero_summary
  else sched_cost ~machine ~opts (block_sched_of ~machine ~procs ~opts stmts bp)

let analyze_plan ~(machine : Machine.t) ~procs ~opts prog plan =
  Obs.span "comm-model" @@ fun () ->
  if procs <= 1 then zero_summary
  else begin
    let scheds = Array.of_list (schedule_plan ~machine ~procs ~opts prog plan) in
    let block_mult, reductions = block_multipliers prog in
    let reductions = ref reductions in
    let alpha = machine.Machine.msg_latency_ns in
    let beta = machine.Machine.byte_ns in
    let total = ref zero_summary in
    Array.iteri
      (fun bi bs ->
        let mult = block_mult.(bi) in
        if mult > 0 then begin
          let n_msgs = Array.fold_left (fun a l -> a + List.length l) 0 bs.b_steps in
          let obs = Obs.enabled () in
          if obs then begin
            Obs.count "comm.redundancy.exchanges-eliminated"
              (mult * (bs.b_inferred - bs.b_kept));
            Obs.count "comm.combining.messages-saved"
              (mult * (bs.b_kept - n_msgs))
          end;
          let window_of ~producer ~consumer =
            let w = ref 0.0 in
            for q = producer + 1 to consumer - 1 do
              w := !w +. bs.b_costs.(q)
            done;
            !w
          in
          Array.iter
            (List.iter (fun m ->
                 let raw = alpha +. (beta *. float_of_int m.m_bytes) in
                 let window =
                   window_of ~producer:m.m_producer ~consumer:m.m_consumer
                 in
                 let eff =
                   if opts.pipelining then max (0.25 *. alpha) (raw -. window)
                   else raw
                 in
                 if obs then
                   Obs.total "comm.pipelining.ns-hidden"
                     (float_of_int mult *. (raw -. eff));
                 total :=
                   {
                     !total with
                     messages = !total.messages + mult;
                     bytes = !total.bytes + (mult * m.m_bytes);
                     raw_ns = !total.raw_ns +. (float_of_int mult *. raw);
                     effective_ns =
                       !total.effective_ns +. (float_of_int mult *. eff);
                   }))
            bs.b_steps
        end)
      scheds;
    (* reduction combining trees *)
    let stages = reduction_stages procs in
    let red_one = float_of_int stages *. (alpha +. (8.0 *. beta)) in
    let red_total = float_of_int !reductions *. red_one in
    let summary =
      {
        !total with
        messages = !total.messages + (!reductions * stages);
        raw_ns = !total.raw_ns +. red_total;
        effective_ns = !total.effective_ns +. red_total;
        reduction_ns = red_total;
      }
    in
    if Obs.enabled () then begin
      Obs.count "comm.messages" summary.messages;
      Obs.count "comm.bytes" summary.bytes;
      Obs.total "comm.raw-ns" summary.raw_ns;
      Obs.total "comm.effective-ns" summary.effective_ns;
      Obs.total "comm.reduction-ns" summary.reduction_ns
    end;
    summary
  end

let analyze ~machine ~procs ~opts (c : Compilers.Driver.compiled) =
  analyze_plan ~machine ~procs ~opts c.Compilers.Driver.prog
    c.Compilers.Driver.plan
