open Ir

type opts = {
  redundancy : bool;
  combining : bool;
  pipelining : bool;
}

let all_on = { redundancy = true; combining = true; pipelining = true }
let vectorize_only = { redundancy = false; combining = false; pipelining = false }

type summary = {
  messages : int;
  bytes : int;
  raw_ns : float;
  effective_ns : float;
  reduction_ns : float;
}

(* ------------------------------------------------------------------ *)
(* Static compute cost of a cluster (for overlap windows)              *)
(* ------------------------------------------------------------------ *)

let rec expr_flops (e : Expr.t) =
  match e with
  | Expr.Const _ | Expr.Svar _ | Expr.Ref _ | Expr.Idx _ -> 0
  | Expr.Unop (_, a) -> 1 + expr_flops a
  | Expr.Binop (_, a, b) -> 1 + expr_flops a + expr_flops b
  | Expr.Select (c, a, b) -> 1 + expr_flops c + expr_flops a + expr_flops b

let stmt_cost_ns ~(machine : Machine.t) (s : Nstmt.t) =
  let vol = float_of_int (Region.volume s.region) in
  let flops = float_of_int (expr_flops s.rhs) in
  let refs = float_of_int (List.length (Expr.refs s.rhs) + 1) in
  vol *. ((flops *. machine.Machine.flop_ns) +. (refs *. machine.Machine.l1_hit_ns))

let cluster_cost_ns ~machine p rep =
  let g = Core.Partition.asdg p in
  List.fold_left
    (fun acc i -> acc +. stmt_cost_ns ~machine (Core.Asdg.stmt g i))
    0.0
    (Core.Partition.members p rep)

(* ------------------------------------------------------------------ *)
(* Exchange events                                                     *)
(* ------------------------------------------------------------------ *)

type event = {
  array : string;
  dir : int array;  (** neighbor direction (sign vector) *)
  ebytes : int;
  consumer : int;  (** cluster position in the block schedule *)
  producer : int;  (** last earlier position writing the array; -1 = block entry *)
}

let ghost_bytes region dir (off : Support.Vec.t) =
  let n = Region.rank region in
  let elems = ref 1 in
  for k = 1 to n do
    let e =
      if dir.(k - 1) = 0 then Region.extent region k
      else abs (Support.Vec.get off k)
    in
    elems := !elems * max 1 e
  done;
  8 * !elems

(* The schedule of one basic block: clusters in emission order, each
   with the arrays it writes, its remote reads, and its compute cost. *)
type sched_entry = {
  writes : string list;
  remote : (string * int array * int) list;  (** array, dir, bytes *)
  cost : float;
}

let block_schedule ~machine ~dist (bp : Sir.Scalarize.block_plan) =
  let p = bp.Sir.Scalarize.partition in
  let g = Core.Partition.asdg p in
  let contracted = List.map fst bp.Sir.Scalarize.contracted in
  let order = Sir.Scalarize.cluster_order p in
  List.map
    (fun rep ->
      let members = Core.Partition.members p rep in
      let stmts = List.map (Core.Asdg.stmt g) members in
      let writes =
        List.filter
          (fun x -> not (List.mem x contracted))
          (List.map (fun (s : Nstmt.t) -> s.lhs) stmts)
      in
      let remote = ref [] in
      List.iter
        (fun (s : Nstmt.t) ->
          List.iter
            (fun (x, off) ->
              if not (List.mem x contracted) then
                match Dist.remote_dir dist off with
                | None -> ()
                | Some dir ->
                    let b = ghost_bytes s.region dir off in
                    let key (x', d', _) = (x', d') in
                    let cur = !remote in
                    let existing =
                      List.find_opt (fun e -> key e = (x, dir)) cur
                    in
                    (match existing with
                    | Some (_, _, b') when b' >= b -> ()
                    | Some _ ->
                        remote :=
                          (x, dir, b)
                          :: List.filter (fun e -> key e <> (x, dir)) cur
                    | None -> remote := (x, dir, b) :: cur))
            (Expr.refs s.rhs))
        stmts;
      {
        writes;
        remote = List.rev !remote;
        cost = cluster_cost_ns ~machine p rep;
      })
    order

let block_events sched =
  let arr = Array.of_list sched in
  let events = ref [] in
  Array.iteri
    (fun c entry ->
      List.iter
        (fun (x, dir, ebytes) ->
          (* last earlier cluster writing x *)
          let producer = ref (-1) in
          for q = 0 to c - 1 do
            if List.mem x arr.(q).writes then producer := q
          done;
          events := { array = x; dir; ebytes; consumer = c; producer = !producer }
                    :: !events)
        entry.remote)
    arr;
  List.rev !events

let eliminate_redundant sched events =
  let arr = Array.of_list sched in
  let written_between x a b =
    (* any write of x by clusters in positions [a, b) *)
    let hit = ref false in
    for q = max a 0 to b - 1 do
      if List.mem x arr.(q).writes then hit := true
    done;
    !hit
  in
  let kept = ref [] in
  List.filter
    (fun e ->
      let redundant =
        List.exists
          (fun e' ->
            e'.array = e.array && e'.dir = e.dir && e'.ebytes >= e.ebytes
            && not (written_between e.array e'.consumer e.consumer))
          !kept
      in
      if not redundant then kept := e :: !kept;
      not redundant)
    events

(* ------------------------------------------------------------------ *)
(* Costing                                                             *)
(* ------------------------------------------------------------------ *)

type msg = {
  mbytes : int;
  window : float;  (** overlappable compute between producer and consumer *)
}

let messages_of_events ~opts sched events =
  let arr = Array.of_list sched in
  let window_of ~producer ~consumer =
    let w = ref 0.0 in
    for q = producer + 1 to consumer - 1 do
      w := !w +. arr.(q).cost
    done;
    !w
  in
  if opts.combining then
    (* one message per (consumer, dir) *)
    let groups = Hashtbl.create 16 in
    List.iter
      (fun e ->
        let key = (e.consumer, e.dir) in
        let bytes0, prod0 =
          try Hashtbl.find groups key with Not_found -> (0, -1)
        in
        Hashtbl.replace groups key (bytes0 + e.ebytes, max prod0 e.producer))
      events;
    Hashtbl.fold
      (fun (consumer, _) (mbytes, producer) acc ->
        { mbytes; window = window_of ~producer ~consumer } :: acc)
      groups []
  else
    List.map
      (fun e ->
        {
          mbytes = e.ebytes;
          window = window_of ~producer:e.producer ~consumer:e.consumer;
        })
      events

(* ------------------------------------------------------------------ *)
(* Whole-program analysis                                              *)
(* ------------------------------------------------------------------ *)

let analyze ~(machine : Machine.t) ~procs ~opts
    (c : Compilers.Driver.compiled) =
  Obs.span "comm-model" @@ fun () ->
  if procs <= 1 then
    { messages = 0; bytes = 0; raw_ns = 0.0; effective_ns = 0.0; reduction_ns = 0.0 }
  else begin
    let prog = c.Compilers.Driver.prog in
    let plans = Array.of_list c.Compilers.Driver.plan in
    (* per-block execution multipliers + reduction executions, via the
       same traversal order as Prog.blocks *)
    let block_mult = Array.make (Array.length plans) 0 in
    let reductions = ref 0 in
    let next_block = ref 0 in
    let rec walk mult pending stmts =
      match stmts with
      | [] -> flush mult pending
      | Prog.Astmt _ :: tl -> walk mult (pending + 1) tl
      | Prog.Sloop { lo; hi; body; _ } :: tl ->
          flush mult pending;
          walk (mult * max 0 (hi - lo + 1)) 0 body;
          walk mult 0 tl
      | Prog.Reduce _ :: tl ->
          flush mult pending;
          reductions := !reductions + mult;
          walk mult 0 tl
      | Prog.Sassign _ :: tl ->
          flush mult pending;
          walk mult 0 tl
    and flush mult pending =
      if pending > 0 then begin
        block_mult.(!next_block) <- mult;
        incr next_block
      end
    in
    walk 1 0 prog.Prog.body;
    let alpha = machine.Machine.msg_latency_ns in
    let beta = machine.Machine.byte_ns in
    let total = ref { messages = 0; bytes = 0; raw_ns = 0.0; effective_ns = 0.0; reduction_ns = 0.0 } in
    Array.iteri
      (fun bi bp ->
        let mult = block_mult.(bi) in
        if mult > 0 then begin
          let rank =
            match List.nth_opt (Prog.blocks prog) bi with
            | Some (s :: _) -> Region.rank s.Nstmt.region
            | _ -> 2
          in
          let dist = Dist.make ~rank ~procs in
          let sched = block_schedule ~machine ~dist bp in
          let events = block_events sched in
          let inferred = List.length events in
          let events =
            if opts.redundancy then eliminate_redundant sched events
            else events
          in
          let obs = Obs.enabled () in
          if obs then
            Obs.count "comm.redundancy.exchanges-eliminated"
              (mult * (inferred - List.length events));
          let msgs = messages_of_events ~opts sched events in
          if obs then
            Obs.count "comm.combining.messages-saved"
              (mult * (List.length events - List.length msgs));
          List.iter
            (fun m ->
              let raw = alpha +. (beta *. float_of_int m.mbytes) in
              let eff =
                if opts.pipelining then max (0.25 *. alpha) (raw -. m.window)
                else raw
              in
              if obs then
                Obs.total "comm.pipelining.ns-hidden"
                  (float_of_int mult *. (raw -. eff));
              total :=
                {
                  !total with
                  messages = !total.messages + mult;
                  bytes = !total.bytes + (mult * m.mbytes);
                  raw_ns = !total.raw_ns +. (float_of_int mult *. raw);
                  effective_ns =
                    !total.effective_ns +. (float_of_int mult *. eff);
                })
            msgs
        end)
      plans;
    (* reduction combining trees *)
    let stages =
      int_of_float (ceil (log (float_of_int procs) /. log 2.0))
    in
    let red_one = float_of_int stages *. (alpha +. (8.0 *. beta)) in
    let red_total = float_of_int !reductions *. red_one in
    let summary =
      {
        !total with
        messages = !total.messages + (!reductions * stages);
        raw_ns = !total.raw_ns +. red_total;
        effective_ns = !total.effective_ns +. red_total;
        reduction_ns = red_total;
      }
    in
    if Obs.enabled () then begin
      Obs.count "comm.messages" summary.messages;
      Obs.count "comm.bytes" summary.bytes;
      Obs.total "comm.raw-ns" summary.raw_ns;
      Obs.total "comm.effective-ns" summary.effective_ns;
      Obs.total "comm.reduction-ns" summary.reduction_ns
    end;
    summary
  end
