(** Fusion / communication-optimization interaction (paper §5.5).

    Two strategies resolve the conflict between statement fusion and
    communication pipelining:

    - {e favor fusion} (the paper's default, and the winner): fusion is
      never prevented by communication concerns — simply compile with
      no veto;
    - {e favor communication}: fusion may not erase pipelining
      opportunities.  A statement that consumes remote data (a
      reference with a nonzero offset in a distributed dimension) may
      only fuse with statements it is related to by a dependence path;
      fusing an {e independent} statement into the consumer's nest
      would remove it from the overlap window that hides the exchange
      latency. *)

val favor_comm_veto :
  procs:int -> Ir.Prog.t -> block:int -> int list -> bool
(** The [may_fuse] predicate implementing favor-communication, suitable
    for [Compilers.Driver.opts ~may_fuse] (the [compile_opts] family).  With [procs = 1] nothing
    is remote and the predicate always allows fusion. *)

val remote_readers : procs:int -> Ir.Nstmt.t list -> int list
(** Statement indices that read remote data under the given processor
    count (exposed for tests). *)
