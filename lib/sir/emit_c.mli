(** Native back end: emit a complete, runnable C translation unit.

    The generated program zero-initializes its arrays, executes the
    scalarized code, and prints the same 64-bit digest of the live-out
    set that {!Exec.Interp.checksum} computes — so compiling with a
    real C compiler and running gives a {e differential test} of the
    whole pipeline (parser → optimizer → scalarizer → codegen) against
    the interpreter, down to the last bit.

    Bit-exactness holds because every primitive maps to the operation
    OCaml itself uses: IEEE doubles throughout, libm for sqrt/sin/...,
    [hashrand] ported bit-for-bit (splitmix64 over the double's bit
    pattern), and the digest arithmetic in wrapping [uint64_t].

    Scalars and loop variables are emitted with a [v_] prefix and
    arrays behind [AT_] accessor macros, so user names can never
    collide with libc/libm symbols (a config named [gamma], say). *)

val emit : Format.formatter -> Code.program -> unit
(** Print the full translation unit ([#include]s, array definitions,
    accessor macros, [hashrand], [main]). *)

val to_string : Code.program -> string

(** {1 Multi-unit emission (the native execution engine)}

    The native engine compiles a planned program as one translation
    unit {e per fused cluster} plus a driver: each outermost loop nest
    of the scalarized code (together with the scalar assignments that
    set it up — reduction initializations and the like) becomes
    [cluster_<k>.c] defining [void cluster_<k>(void)], a shared
    [prog.h] declares the array storage, accessor macros and the
    bit-exact helpers, and [main.c] defines the storage, calls the
    clusters in program order under a [CLOCK_MONOTONIC] stopwatch, and
    prints the runner protocol line:

    {v <16-hex live-out digest> <wall nanoseconds> v}

    The digest is byte-identical to the single-unit backend's (and to
    {!Exec.Interp.checksum}); the second field is what the native
    benches measure. *)

type unit_file = {
  filename : string;  (** ["prog.h"], ["cluster_<k>.c"] or ["main.c"] *)
  contents : string;
}

val to_units : Code.program -> unit_file list
(** The complete multi-unit program, header first, driver last.  The
    number of [cluster_<k>.c] entries is the number of fused clusters
    (outermost loop nests, counting a trailing scalar epilogue as one
    more). *)

val cluster_count : Code.program -> int
(** How many cluster units {!to_units} will emit. *)
