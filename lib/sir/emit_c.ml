(* A complete C program equivalent to the scalar IR. *)

let header =
  {|#include <stdio.h>
#include <stdint.h>
#include <string.h>
#include <math.h>

/* bit-exact port of Ir.Expr.hashrand (splitmix64 over the double's
   bit pattern, top 53 bits to (0,1)) */
static double hashrand(double x) {
  uint64_t z;
  memcpy(&z, &x, 8);
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return ((double)(z >> 11) + 0.5) * (1.0 / 9007199254740992.0);
}

/* bit-exact port of Ir.Expr.fmin/fmax: NaN-propagating, left-biased
   on ties (so signed zeros resolve as in the interpreters).  libm's
   fmin/fmax return the non-NaN operand and must not be used here. */
static double zap_min(double x, double y) {
  return (x != x || y != y) ? NAN : (x <= y ? x : y);
}
static double zap_max(double x, double y) {
  return (x != x || y != y) ? NAN : (x >= y ? x : y);
}

static uint64_t digest = 0;
static void mix(double v) {
  uint64_t bits;
  /* canonicalize NaN payloads, as Exec.Interp.Digest.mix does */
  if (v != v) bits = 0x7FF8000000000000ULL;
  else memcpy(&bits, &v, 8);
  digest = digest * 6364136223846793005ULL
         + (bits ^ 1442695040888963407ULL);
}
|}

(* accessor macro name for an array *)
let acc name = "AT_" ^ name

(* user scalars and loop variables are prefixed so they can never
   collide with libc/libm symbols (e.g. a config named "gamma") *)
let m name = "v_" ^ name

let collect_loop_vars (p : Code.program) =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | Code.For { var; body; _ } ->
        Hashtbl.replace seen var ();
        List.iter go body
    | Code.Sassign _ | Code.Store _ -> ()
  in
  List.iter go p.Code.body;
  Hashtbl.fold (fun v () acc -> v :: acc) seen [] |> List.sort compare

let pp_subscripts ppf (subs : Code.subscript array) =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (Array.to_list subs
       |> List.map (fun (s : Code.subscript) ->
              if s.Code.base = "" then string_of_int s.Code.off
              else if s.Code.off = 0 then m s.Code.base
              else Printf.sprintf "%s %+d" (m s.Code.base) s.Code.off)))

let rec pp_expr loopvars ppf (e : Code.expr) =
  let pe = pp_expr loopvars in
  match e with
  | Code.Const f ->
      (* %h round-trips finite doubles exactly *)
      if f = Float.infinity then Format.pp_print_string ppf "INFINITY"
      else if f = Float.neg_infinity then
        Format.pp_print_string ppf "(-INFINITY)"
      else if Float.is_nan f then Format.pp_print_string ppf "NAN"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf ppf "%.1f" f
      else Format.fprintf ppf "%h" f
  | Code.Scalar s ->
      if List.mem s loopvars then Format.fprintf ppf "((double)%s)" (m s)
      else Format.pp_print_string ppf (m s)
  | Code.Load (x, subs) -> Format.fprintf ppf "%s%a" (acc x) pp_subscripts subs
  | Code.Unop (op, a) -> (
      match op with
      | Ir.Expr.Neg -> Format.fprintf ppf "(-(%a))" pe a
      | Ir.Expr.Not -> Format.fprintf ppf "((double)((%a) == 0.0))" pe a
      | Ir.Expr.Sqrt -> Format.fprintf ppf "sqrt(%a)" pe a
      | Ir.Expr.Exp -> Format.fprintf ppf "exp(%a)" pe a
      | Ir.Expr.Log -> Format.fprintf ppf "log(%a)" pe a
      | Ir.Expr.Sin -> Format.fprintf ppf "sin(%a)" pe a
      | Ir.Expr.Cos -> Format.fprintf ppf "cos(%a)" pe a
      | Ir.Expr.Abs -> Format.fprintf ppf "fabs(%a)" pe a
      | Ir.Expr.Floor -> Format.fprintf ppf "floor(%a)" pe a
      | Ir.Expr.Hashrand -> Format.fprintf ppf "hashrand(%a)" pe a)
  | Code.Binop (op, a, b) -> (
      match op with
      | Ir.Expr.Add -> Format.fprintf ppf "(%a + %a)" pe a pe b
      | Ir.Expr.Sub -> Format.fprintf ppf "(%a - %a)" pe a pe b
      | Ir.Expr.Mul -> Format.fprintf ppf "(%a * %a)" pe a pe b
      | Ir.Expr.Div -> Format.fprintf ppf "(%a / %a)" pe a pe b
      | Ir.Expr.Pow -> Format.fprintf ppf "pow(%a, %a)" pe a pe b
      | Ir.Expr.Min -> Format.fprintf ppf "zap_min(%a, %a)" pe a pe b
      | Ir.Expr.Max -> Format.fprintf ppf "zap_max(%a, %a)" pe a pe b
      | Ir.Expr.Lt -> Format.fprintf ppf "((double)(%a < %a))" pe a pe b
      | Ir.Expr.Le -> Format.fprintf ppf "((double)(%a <= %a))" pe a pe b
      | Ir.Expr.Gt -> Format.fprintf ppf "((double)(%a > %a))" pe a pe b
      | Ir.Expr.Ge -> Format.fprintf ppf "((double)(%a >= %a))" pe a pe b
      | Ir.Expr.Eq -> Format.fprintf ppf "((double)(%a == %a))" pe a pe b
      | Ir.Expr.Ne -> Format.fprintf ppf "((double)(%a != %a))" pe a pe b
      | Ir.Expr.And ->
          Format.fprintf ppf "((double)((%a != 0.0) && (%a != 0.0)))" pe a pe b
      | Ir.Expr.Or ->
          Format.fprintf ppf "((double)((%a != 0.0) || (%a != 0.0)))" pe a pe b)
  | Code.Select (c, a, b) ->
      Format.fprintf ppf "((%a != 0.0) ? %a : %a)" pe c pe a pe b

let rec pp_stmt loopvars indent ppf (s : Code.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Code.Sassign (x, e) ->
      Format.fprintf ppf "%s%s = %a;@," pad (m x) (pp_expr loopvars) e
  | Code.Store (x, subs, e) ->
      Format.fprintf ppf "%s%s%a = %a;@," pad (acc x) pp_subscripts subs
        (pp_expr loopvars) e
  | Code.For { var; lo; hi; step; body } ->
      let var = m var in
      if step >= 0 then
        Format.fprintf ppf "%sfor (%s = %d; %s <= %d; %s++) {@," pad var lo var
          hi var
      else
        Format.fprintf ppf "%sfor (%s = %d; %s >= %d; %s--) {@," pad var hi var
          lo var;
      List.iter (pp_stmt loopvars (indent + 2) ppf) body;
      Format.fprintf ppf "%s}@," pad

let emit ppf (p : Code.program) =
  let loopvars = collect_loop_vars p in
  Format.fprintf ppf "@[<v>/* generated from %s — differential-test back end */@," p.Code.name;
  Format.fprintf ppf "%s@," header;
  (* arrays: flat storage + accessor macros over the original bounds *)
  List.iter
    (fun (a : Code.alloc) ->
      let vol = max 1 (Code.alloc_volume a) in
      Format.fprintf ppf "static double %s_[%d];@," a.Code.name vol;
      let n = Array.length a.Code.dims in
      let strides = Array.make n 1 in
      for d = n - 2 downto 0 do
        let lo, hi = a.Code.dims.(d + 1) in
        strides.(d) <- strides.(d + 1) * max 0 (hi - lo + 1)
      done;
      let params = List.init n (fun i -> Printf.sprintf "i%d" (i + 1)) in
      let index =
        String.concat " + "
          (List.mapi
             (fun d pname ->
               let lo, _ = a.Code.dims.(d) in
               Printf.sprintf "((%s) - (%d)) * %d" pname lo strides.(d))
             params)
      in
      Format.fprintf ppf "#define %s(%s) %s_[%s]@," (acc a.Code.name)
        (String.concat ", " params) a.Code.name index)
    p.Code.allocs;
  (* scalars *)
  List.iter
    (fun (s, v) -> Format.fprintf ppf "static double %s = %h;@," (m s) v)
    p.Code.scalars;
  Format.fprintf ppf "@,int main(void) {@,";
  if loopvars <> [] then
    Format.fprintf ppf "  long %s;@,"
      (String.concat ", " (List.map m loopvars));
  Format.fprintf ppf "  @[<v>";
  List.iter (pp_stmt loopvars 0 ppf) p.Code.body;
  Format.fprintf ppf "@]@,";
  (* digest of the live-out set, exactly as Exec.Interp.checksum *)
  List.iter
    (fun out ->
      match
        List.find_opt (fun (a : Code.alloc) -> a.Code.name = out) p.Code.allocs
      with
      | Some a ->
          Format.fprintf ppf
            "  for (long k_ = 0; k_ < %d; k_++) mix(%s_[k_]);@,"
            (max 1 (Code.alloc_volume a))
            a.Code.name
      | None -> Format.fprintf ppf "  mix(%s);@," (m out))
    p.Code.live_out;
  Format.fprintf ppf "  printf(\"%%016llx\\n\", (unsigned long long)digest);@,";
  Format.fprintf ppf "  return 0;@,}@]@."

let to_string p = Format.asprintf "%a" emit p
