(* A complete C program equivalent to the scalar IR. *)

let header =
  {|#include <stdio.h>
#include <stdint.h>
#include <string.h>
#include <math.h>

/* bit-exact port of Ir.Expr.hashrand (splitmix64 over the double's
   bit pattern, top 53 bits to (0,1)) */
static double hashrand(double x) {
  uint64_t z;
  memcpy(&z, &x, 8);
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return ((double)(z >> 11) + 0.5) * (1.0 / 9007199254740992.0);
}

/* bit-exact port of Ir.Expr.fmin/fmax: NaN-propagating, left-biased
   on ties (so signed zeros resolve as in the interpreters).  libm's
   fmin/fmax return the non-NaN operand and must not be used here. */
static double zap_min(double x, double y) {
  return (x != x || y != y) ? NAN : (x <= y ? x : y);
}
static double zap_max(double x, double y) {
  return (x != x || y != y) ? NAN : (x >= y ? x : y);
}

static uint64_t digest = 0;
static void mix(double v) {
  uint64_t bits;
  /* canonicalize NaN payloads, as Exec.Interp.Digest.mix does */
  if (v != v) bits = 0x7FF8000000000000ULL;
  else memcpy(&bits, &v, 8);
  digest = digest * 6364136223846793005ULL
         + (bits ^ 1442695040888963407ULL);
}
|}

(* accessor macro name for an array *)
let acc name = "AT_" ^ name

(* user scalars and loop variables are prefixed so they can never
   collide with libc/libm symbols (e.g. a config named "gamma") *)
let m name = "v_" ^ name

let collect_loop_vars_stmts (body : Code.stmt list) =
  let seen = Hashtbl.create 16 in
  let rec go = function
    | Code.For { var; body; _ } ->
        Hashtbl.replace seen var ();
        List.iter go body
    | Code.Sassign _ | Code.Store _ -> ()
  in
  List.iter go body;
  Hashtbl.fold (fun v () acc -> v :: acc) seen [] |> List.sort compare

let collect_loop_vars (p : Code.program) = collect_loop_vars_stmts p.Code.body

let pp_subscripts ppf (subs : Code.subscript array) =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (Array.to_list subs
       |> List.map (fun (s : Code.subscript) ->
              if s.Code.base = "" then string_of_int s.Code.off
              else if s.Code.off = 0 then m s.Code.base
              else Printf.sprintf "%s %+d" (m s.Code.base) s.Code.off)))

let rec pp_expr loopvars ppf (e : Code.expr) =
  let pe = pp_expr loopvars in
  match e with
  | Code.Const f ->
      (* %h round-trips finite doubles exactly *)
      if f = Float.infinity then Format.pp_print_string ppf "INFINITY"
      else if f = Float.neg_infinity then
        Format.pp_print_string ppf "(-INFINITY)"
      else if Float.is_nan f then Format.pp_print_string ppf "NAN"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Format.fprintf ppf "%.1f" f
      else Format.fprintf ppf "%h" f
  | Code.Scalar s ->
      if List.mem s loopvars then Format.fprintf ppf "((double)%s)" (m s)
      else Format.pp_print_string ppf (m s)
  | Code.Load (x, subs) -> Format.fprintf ppf "%s%a" (acc x) pp_subscripts subs
  | Code.Unop (op, a) -> (
      match op with
      | Ir.Expr.Neg -> Format.fprintf ppf "(-(%a))" pe a
      | Ir.Expr.Not -> Format.fprintf ppf "((double)((%a) == 0.0))" pe a
      | Ir.Expr.Sqrt -> Format.fprintf ppf "sqrt(%a)" pe a
      | Ir.Expr.Exp -> Format.fprintf ppf "exp(%a)" pe a
      | Ir.Expr.Log -> Format.fprintf ppf "log(%a)" pe a
      | Ir.Expr.Sin -> Format.fprintf ppf "sin(%a)" pe a
      | Ir.Expr.Cos -> Format.fprintf ppf "cos(%a)" pe a
      | Ir.Expr.Abs -> Format.fprintf ppf "fabs(%a)" pe a
      | Ir.Expr.Floor -> Format.fprintf ppf "floor(%a)" pe a
      | Ir.Expr.Hashrand -> Format.fprintf ppf "hashrand(%a)" pe a)
  | Code.Binop (op, a, b) -> (
      match op with
      | Ir.Expr.Add -> Format.fprintf ppf "(%a + %a)" pe a pe b
      | Ir.Expr.Sub -> Format.fprintf ppf "(%a - %a)" pe a pe b
      | Ir.Expr.Mul -> Format.fprintf ppf "(%a * %a)" pe a pe b
      | Ir.Expr.Div -> Format.fprintf ppf "(%a / %a)" pe a pe b
      | Ir.Expr.Pow -> Format.fprintf ppf "pow(%a, %a)" pe a pe b
      | Ir.Expr.Min -> Format.fprintf ppf "zap_min(%a, %a)" pe a pe b
      | Ir.Expr.Max -> Format.fprintf ppf "zap_max(%a, %a)" pe a pe b
      | Ir.Expr.Lt -> Format.fprintf ppf "((double)(%a < %a))" pe a pe b
      | Ir.Expr.Le -> Format.fprintf ppf "((double)(%a <= %a))" pe a pe b
      | Ir.Expr.Gt -> Format.fprintf ppf "((double)(%a > %a))" pe a pe b
      | Ir.Expr.Ge -> Format.fprintf ppf "((double)(%a >= %a))" pe a pe b
      | Ir.Expr.Eq -> Format.fprintf ppf "((double)(%a == %a))" pe a pe b
      | Ir.Expr.Ne -> Format.fprintf ppf "((double)(%a != %a))" pe a pe b
      | Ir.Expr.And ->
          Format.fprintf ppf "((double)((%a != 0.0) && (%a != 0.0)))" pe a pe b
      | Ir.Expr.Or ->
          Format.fprintf ppf "((double)((%a != 0.0) || (%a != 0.0)))" pe a pe b)
  | Code.Select (c, a, b) ->
      Format.fprintf ppf "((%a != 0.0) ? %a : %a)" pe c pe a pe b

let rec pp_stmt loopvars indent ppf (s : Code.stmt) =
  let pad = String.make indent ' ' in
  match s with
  | Code.Sassign (x, e) ->
      Format.fprintf ppf "%s%s = %a;@," pad (m x) (pp_expr loopvars) e
  | Code.Store (x, subs, e) ->
      Format.fprintf ppf "%s%s%a = %a;@," pad (acc x) pp_subscripts subs
        (pp_expr loopvars) e
  | Code.For { var; lo; hi; step; body } ->
      let var = m var in
      if step >= 0 then
        Format.fprintf ppf "%sfor (%s = %d; %s <= %d; %s++) {@," pad var lo var
          hi var
      else
        Format.fprintf ppf "%sfor (%s = %d; %s >= %d; %s--) {@," pad var hi var
          lo var;
      List.iter (pp_stmt loopvars (indent + 2) ppf) body;
      Format.fprintf ppf "%s}@," pad

(* accessor macro for an alloc: parameter list and flat-index body *)
let acc_macro (a : Code.alloc) =
  let n = Array.length a.Code.dims in
  let strides = Array.make n 1 in
  for d = n - 2 downto 0 do
    let lo, hi = a.Code.dims.(d + 1) in
    strides.(d) <- strides.(d + 1) * max 0 (hi - lo + 1)
  done;
  let params = List.init n (fun i -> Printf.sprintf "i%d" (i + 1)) in
  let index =
    String.concat " + "
      (List.mapi
         (fun d pname ->
           let lo, _ = a.Code.dims.(d) in
           Printf.sprintf "((%s) - (%d)) * %d" pname lo strides.(d))
         params)
  in
  (String.concat ", " params, index)

let pp_acc_define ppf (a : Code.alloc) =
  let params, index = acc_macro a in
  Format.fprintf ppf "#define %s(%s) %s_[%s]@," (acc a.Code.name) params
    a.Code.name index

let emit ppf (p : Code.program) =
  let loopvars = collect_loop_vars p in
  Format.fprintf ppf "@[<v>/* generated from %s — differential-test back end */@," p.Code.name;
  Format.fprintf ppf "%s@," header;
  (* arrays: flat storage + accessor macros over the original bounds *)
  List.iter
    (fun (a : Code.alloc) ->
      let vol = max 1 (Code.alloc_volume a) in
      Format.fprintf ppf "static double %s_[%d];@," a.Code.name vol;
      pp_acc_define ppf a)
    p.Code.allocs;
  (* scalars *)
  List.iter
    (fun (s, v) -> Format.fprintf ppf "static double %s = %h;@," (m s) v)
    p.Code.scalars;
  Format.fprintf ppf "@,int main(void) {@,";
  if loopvars <> [] then
    Format.fprintf ppf "  long %s;@,"
      (String.concat ", " (List.map m loopvars));
  Format.fprintf ppf "  @[<v>";
  List.iter (pp_stmt loopvars 0 ppf) p.Code.body;
  Format.fprintf ppf "@]@,";
  (* digest of the live-out set, exactly as Exec.Interp.checksum *)
  List.iter
    (fun out ->
      match
        List.find_opt (fun (a : Code.alloc) -> a.Code.name = out) p.Code.allocs
      with
      | Some a ->
          Format.fprintf ppf
            "  for (long k_ = 0; k_ < %d; k_++) mix(%s_[k_]);@,"
            (max 1 (Code.alloc_volume a))
            a.Code.name
      | None -> Format.fprintf ppf "  mix(%s);@," (m out))
    p.Code.live_out;
  Format.fprintf ppf "  printf(\"%%016llx\\n\", (unsigned long long)digest);@,";
  Format.fprintf ppf "  return 0;@,}@]@."

let to_string p = Format.asprintf "%a" emit p

(* ------------------------------------------------------------------ *)
(* Multi-unit emission: one translation unit per fused cluster plus a
   driver, for the native execution engine.                            *)
(* ------------------------------------------------------------------ *)

type unit_file = { filename : string; contents : string }

(* A fused cluster, in the scalarized code, is an outermost loop nest
   together with the scalar assignments that immediately precede it
   (reduction-accumulator initializations and the like).  A trailing
   run of scalar statements after the last nest forms one final
   cluster of its own. *)
let clusters_of_body (body : Code.stmt list) =
  let rec go pending chunks = function
    | [] ->
        let chunks =
          if pending = [] then chunks else List.rev pending :: chunks
        in
        List.rev chunks
    | (Code.For _ as s) :: tl -> go [] (List.rev (s :: pending) :: chunks) tl
    | s :: tl -> go (s :: pending) chunks tl
  in
  go [] [] body

let cluster_count (p : Code.program) = List.length (clusters_of_body p.Code.body)

(* helpers shared by every cluster unit: static inline in the header,
   so each unit gets its own copy and the linker sees no duplicates *)
let shared_helpers =
  {|/* bit-exact port of Ir.Expr.hashrand (splitmix64 over the double's
   bit pattern, top 53 bits to (0,1)) */
static inline double hashrand(double x) {
  uint64_t z;
  memcpy(&z, &x, 8);
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  z = z ^ (z >> 31);
  return ((double)(z >> 11) + 0.5) * (1.0 / 9007199254740992.0);
}

/* bit-exact port of Ir.Expr.fmin/fmax: NaN-propagating, left-biased
   on ties.  libm's fmin/fmax return the non-NaN operand and must not
   be used here. */
static inline double zap_min(double x, double y) {
  return (x != x || y != y) ? NAN : (x <= y ? x : y);
}
static inline double zap_max(double x, double y) {
  return (x != x || y != y) ? NAN : (x >= y ? x : y);
}
|}

let render f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let emit_header (p : Code.program) ~clusters =
  render (fun ppf ->
      Format.fprintf ppf
        "@[<v>/* generated from %s — native engine shared header */@,"
        p.Code.name;
      Format.fprintf ppf "#ifndef ZAP_PROG_H@,#define ZAP_PROG_H@,";
      Format.fprintf ppf
        "#include <stdint.h>@,#include <string.h>@,#include <math.h>@,@,";
      Format.fprintf ppf "%s@," shared_helpers;
      List.iter
        (fun (a : Code.alloc) ->
          let vol = max 1 (Code.alloc_volume a) in
          Format.fprintf ppf "extern double %s_[%d];@," a.Code.name vol;
          pp_acc_define ppf a)
        p.Code.allocs;
      List.iter
        (fun (s, _) -> Format.fprintf ppf "extern double %s;@," (m s))
        p.Code.scalars;
      Format.fprintf ppf "@,";
      List.iteri
        (fun k _ -> Format.fprintf ppf "void cluster_%d(void);@," k)
        clusters;
      Format.fprintf ppf "#endif@]@.")

let emit_cluster (p : Code.program) ~k (body : Code.stmt list) =
  render (fun ppf ->
      let loopvars = collect_loop_vars_stmts body in
      Format.fprintf ppf "@[<v>/* %s — fused cluster %d */@," p.Code.name k;
      Format.fprintf ppf "#include \"prog.h\"@,@,";
      Format.fprintf ppf "void cluster_%d(void) {@," k;
      if loopvars <> [] then
        Format.fprintf ppf "  long %s;@," (String.concat ", " (List.map m loopvars));
      Format.fprintf ppf "  @[<v>";
      List.iter (pp_stmt loopvars 0 ppf) body;
      Format.fprintf ppf "@]@,}@]@.")

let emit_driver (p : Code.program) ~clusters =
  render (fun ppf ->
      Format.fprintf ppf "@[<v>/* %s — native engine driver */@," p.Code.name;
      Format.fprintf ppf "#include \"prog.h\"@,#include <stdio.h>@,#include <time.h>@,@,";
      (* the storage the header declares extern *)
      List.iter
        (fun (a : Code.alloc) ->
          Format.fprintf ppf "double %s_[%d];@," a.Code.name
            (max 1 (Code.alloc_volume a)))
        p.Code.allocs;
      List.iter
        (fun (s, v) -> Format.fprintf ppf "double %s = %h;@," (m s) v)
        p.Code.scalars;
      Format.fprintf ppf
        {|@,static uint64_t digest = 0;@,static void mix(double v) {@,  uint64_t bits;@,  /* canonicalize NaN payloads, as Exec.Interp.Digest.mix does */@,  if (v != v) bits = 0x7FF8000000000000ULL;@,  else memcpy(&bits, &v, 8);@,  digest = digest * 6364136223846793005ULL@,         + (bits ^ 1442695040888963407ULL);@,}@,@,|};
      Format.fprintf ppf "int main(void) {@,";
      Format.fprintf ppf "  struct timespec t0_, t1_;@,";
      Format.fprintf ppf "  clock_gettime(CLOCK_MONOTONIC, &t0_);@,";
      List.iteri
        (fun k _ -> Format.fprintf ppf "  cluster_%d();@," k)
        clusters;
      Format.fprintf ppf "  clock_gettime(CLOCK_MONOTONIC, &t1_);@,";
      Format.fprintf ppf
        "  long long ns_ = (long long)(t1_.tv_sec - t0_.tv_sec) * 1000000000LL@,\
        \              + (t1_.tv_nsec - t0_.tv_nsec);@,";
      (* digest of the live-out set, exactly as Exec.Interp.checksum *)
      List.iter
        (fun out ->
          match
            List.find_opt
              (fun (a : Code.alloc) -> a.Code.name = out)
              p.Code.allocs
          with
          | Some a ->
              Format.fprintf ppf
                "  for (long k_ = 0; k_ < %d; k_++) mix(%s_[k_]);@,"
                (max 1 (Code.alloc_volume a))
                a.Code.name
          | None -> Format.fprintf ppf "  mix(%s);@," (m out))
        p.Code.live_out;
      Format.fprintf ppf
        "  printf(\"%%016llx %%lld\\n\", (unsigned long long)digest, ns_);@,";
      Format.fprintf ppf "  return 0;@,}@]@.")

let to_units (p : Code.program) =
  let clusters = clusters_of_body p.Code.body in
  { filename = "prog.h"; contents = emit_header p ~clusters }
  :: List.mapi
       (fun k body ->
         {
           filename = Printf.sprintf "cluster_%d.c" k;
           contents = emit_cluster p ~k body;
         })
       clusters
  @ [ { filename = "main.c"; contents = emit_driver p ~clusters } ]
