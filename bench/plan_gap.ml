(* Planner gap: the search-based planner and the ILP partitioner
   (lib/plan) against the paper's greedy c2+f3 ladder, priced by the
   same unified cost model, over the whole suite and every machine.

   For each (benchmark, machine, procs) configuration the chain
   ilp <= search <= greedy must hold under the model — search is
   seeded with the greedy partition and the ILP solve is seeded with
   the searched partitions, so any inversion is a planner bug and
   fails the bench (exit 1) — and every planner's interpreter
   checksum must equal the greedy program's (plans may differ;
   results may not).

   When the ILP's column enumeration completed on every block the row
   also carries the certified lower bound, and cert_gap_pct says how
   far the chosen plan sits above it (0 on proved-optimal cells).

   With --json the section also writes BENCH_plan_gap.json to the
   current directory: the committed baseline of greedy vs searched vs
   ILP cost per configuration.  Deterministic, so a re-run diffs
   clean when nothing changed. *)

let machines = [ Machine.t3e; Machine.sp2; Machine.paragon ]

let procs_list = [ 1; 16 ]

let tile_of (b : Suite.bench) =
  if !Harness.tiny_mode then Some (if b.rank = 1 then 256 else 16) else None

type rowr = {
  bench : string;
  machine : string;
  procs : int;
  greedy_ns : float;
  search_ns : float;
  ilp_ns : float;
  chosen : string;
  gap_pct : float;  (* 100 × (greedy − search) / greedy *)
  ilp_gap_pct : float;  (* 100 × (greedy − ilp) / greedy *)
  cert_gap_pct : float option;
      (* 100 × (chosen − certified lb) / chosen, when certified *)
  improved : bool;
  fallback : bool;
  proved : bool;  (* every block closed with an exact optimality proof *)
  certified_lb_ns : float option;
  states : int;  (* search cost evaluations across all blocks *)
  beam_rounds : int;
  ilp_columns : int;  (* enumerated valid clusters across all blocks *)
  ilp_nodes : int;  (* branch-and-cut nodes across all blocks *)
  checksum : string;
  ok : bool;  (* ilp ≤ search ≤ greedy AND checksums agree *)
}

let row_json r =
  let opt_float = function
    | Some f -> Obs.Json.Float f
    | None -> Obs.Json.Null
  in
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String r.bench);
      ("machine", Obs.Json.String r.machine);
      ("procs", Obs.Json.Int r.procs);
      ("greedy_ns", Obs.Json.Float r.greedy_ns);
      ("search_ns", Obs.Json.Float r.search_ns);
      ("ilp_ns", Obs.Json.Float r.ilp_ns);
      ("chosen", Obs.Json.String r.chosen);
      ("gap_pct", Obs.Json.Float r.gap_pct);
      ("ilp_gap_pct", Obs.Json.Float r.ilp_gap_pct);
      ("cert_gap_pct", opt_float r.cert_gap_pct);
      ("improved", Obs.Json.Bool r.improved);
      ("fallback", Obs.Json.Bool r.fallback);
      ("proved_optimal", Obs.Json.Bool r.proved);
      ("certified_lb_ns", opt_float r.certified_lb_ns);
      ("states", Obs.Json.Int r.states);
      ("beam_rounds", Obs.Json.Int r.beam_rounds);
      ("ilp_columns", Obs.Json.Int r.ilp_columns);
      ("ilp_nodes", Obs.Json.Int r.ilp_nodes);
      ("checksum", Obs.Json.String r.checksum);
      ("ok", Obs.Json.Bool r.ok);
    ]

(* CI-smoke budget: the full solve is the committed baseline's job *)
let search_cfg () =
  if !Harness.tiny_mode then
    { Plan.Search.default with Plan.Search.max_states = 600; beam_width = 2 }
  else Plan.Search.default

let ilp_cfg () =
  if !Harness.tiny_mode then
    { Plan.Ilp.default with Plan.Ilp.max_clusters = 400; max_pivots = 20_000 }
  else Plan.Ilp.default

(* checksums only depend on the generated code, not the machine the
   plan was priced for — cache them across the machine × procs sweep.
   Cells run on a pool, so the table is behind a lock; a racing miss
   recomputes the (deterministic) checksum, which is benign. *)
let checksum_cache : (string, string) Hashtbl.t = Hashtbl.create 64
let checksum_lock = Mutex.create ()

let checksum_of ~key code =
  match
    Mutex.protect checksum_lock (fun () -> Hashtbl.find_opt checksum_cache key)
  with
  | Some s -> s
  | None ->
      let s = Exec.Interp.checksum (Exec.Interp.run code) in
      Mutex.protect checksum_lock (fun () ->
          Hashtbl.replace checksum_cache key s);
      s

let plan_signature (c : Compilers.Driver.compiled) =
  String.concat ";"
    (List.map
       (fun (bp : Sir.Scalarize.block_plan) ->
         String.concat "|"
           (List.map
              (fun cl -> String.concat "," (List.map string_of_int cl))
              (Core.Partition.clusters bp.Sir.Scalarize.partition))
         ^ "/"
         ^ String.concat "," (List.map fst bp.Sir.Scalarize.contracted))
       c.Compilers.Driver.plan)

let measure (b : Suite.bench) (machine : Machine.t) procs =
  let prog = Suite.program ?tile:(tile_of b) b in
  let greedy = Harness.compile ~level:Compilers.Driver.C2F3 prog in
  let cost =
    Plan.Cost.create { Plan.Cost.machine; procs; opts = Comm.Model.all_on } prog
  in
  let chosen, prov =
    match
      Plan.Driver.compile_ilp ~search:(search_cfg ()) ~ilp:(ilp_cfg ()) ~cost
        prog
    with
    | Ok r -> r
    | Error d ->
        Printf.eprintf "bench: %s\n" (Obs.Diagnostic.to_string d);
        exit 1
  in
  let greedy_sum =
    checksum_of ~key:(b.name ^ "!greedy") greedy.Compilers.Driver.code
  in
  let chosen_sum =
    checksum_of
      ~key:(b.name ^ "!" ^ plan_signature chosen)
      chosen.Compilers.Driver.code
  in
  let g = prov.Plan.Driver.greedy_total_ns
  and s = prov.Plan.Driver.search_total_ns in
  let i = Option.value prov.Plan.Driver.ilp_total_ns ~default:s in
  let proved = Option.value prov.Plan.Driver.proved_optimal ~default:false in
  let lb = prov.Plan.Driver.certified_lb_ns in
  let chosen_ns = prov.Plan.Driver.chosen_total_ns in
  (* the never-worse chain: search is seeded with greedy, the ILP with
     the searched partitions, so an inversion anywhere is a planner
     bug *)
  let eps = 1e-6 in
  let chain_ok = i <= s +. eps && s <= g +. eps && chosen_ns <= g +. eps in
  {
    bench = b.name;
    machine = machine.Machine.name;
    procs;
    greedy_ns = g;
    search_ns = s;
    ilp_ns = i;
    chosen = prov.Plan.Driver.strategy;
    gap_pct = (if g > 0.0 then 100.0 *. (g -. s) /. g else 0.0);
    ilp_gap_pct = (if g > 0.0 then 100.0 *. (g -. i) /. g else 0.0);
    cert_gap_pct =
      Option.map
        (fun l ->
          if chosen_ns > 0.0 then
            Float.max 0.0 (100.0 *. (chosen_ns -. l) /. chosen_ns)
          else 0.0)
        lb;
    improved = i < g -. eps;
    fallback = prov.Plan.Driver.fallback;
    proved;
    certified_lb_ns = lb;
    states =
      List.fold_left
        (fun acc (r : Plan.Driver.block_report) ->
          acc + r.Plan.Driver.stats.Plan.Search.generated)
        0 prov.Plan.Driver.blocks;
    beam_rounds =
      List.fold_left
        (fun acc (r : Plan.Driver.block_report) ->
          acc + r.Plan.Driver.stats.Plan.Search.beam_rounds)
        0 prov.Plan.Driver.blocks;
    ilp_columns =
      List.fold_left
        (fun acc (r : Plan.Driver.ilp_report) ->
          acc + r.Plan.Driver.istats.Plan.Ilp.clusters)
        0 prov.Plan.Driver.ilp_blocks;
    ilp_nodes =
      List.fold_left
        (fun acc (r : Plan.Driver.ilp_report) ->
          acc + r.Plan.Driver.istats.Plan.Ilp.nodes)
        0 prov.Plan.Driver.ilp_blocks;
    checksum = chosen_sum;
    ok = chain_ok && String.equal greedy_sum chosen_sum;
  }

let section () =
  if not !Harness.json_mode then
    Harness.heading
      "Planner gap: branch-and-cut ILP and beam search vs greedy c2+f3 under \
       the unified cost model";
  let machines = if !Harness.tiny_mode then [ Machine.t3e ] else machines in
  let procs_list = if !Harness.tiny_mode then [ 16 ] else procs_list in
  (* one task per (benchmark, machine, procs) cell, fanned out over
     --jobs domains; the per-cell solvers stay sequential (jobs=1 in
     their cfgs) so the pool is never oversubscribed.  Pool.map keeps
     cell order — the committed baseline is independent of --jobs. *)
  let cells =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun m -> List.map (fun procs -> (b, m, procs)) procs_list)
          machines)
      Suite.all
  in
  let rows =
    Support.Pool.map ~domains:!Harness.jobs
      (fun (b, m, procs) -> measure b m procs)
      cells
  in
  if !Harness.json_mode then begin
    List.iter
      (fun r ->
        Harness.json_row
          [ ("section", Obs.Json.String "plan"); ("row", row_json r) ])
      rows;
    (* the committed baseline is always full-size: the --tiny smoke
       must not overwrite it *)
    if not !Harness.tiny_mode then begin
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.String "fuzion/bench-plan-gap/2");
            ("rows", Obs.Json.List (List.map row_json rows));
          ]
      in
      let oc = open_out "BENCH_plan_gap.json" in
      output_string oc (Format.asprintf "%a@." Obs.Json.pp doc);
      close_out oc;
      Printf.eprintf "wrote BENCH_plan_gap.json (%d rows)\n" (List.length rows)
    end
  end
  else begin
    Harness.row "%-8s %-12s %5s %14s %14s %14s %7s %7s %7s %6s %s\n" "bench"
      "machine" "procs" "greedy ns" "search ns" "ilp ns" "gap%" "cols"
      "chosen" "proved" "ok";
    List.iter
      (fun r ->
        Harness.row "%-8s %-12s %5d %14.0f %14.0f %14.0f %6.2f%% %7d %7s %6s %s\n"
          r.bench r.machine r.procs r.greedy_ns r.search_ns r.ilp_ns
          r.ilp_gap_pct r.ilp_columns r.chosen
          (if r.proved then "yes" else "no")
          (if r.ok then "ok" else "WORSE"))
      rows
  end;
  let bad = List.filter (fun r -> not r.ok) rows in
  if bad <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf
          "plan regression: %s on %s x%d (greedy %.0f ns, search %.0f ns, ilp \
           %.0f ns, chosen %s)\n"
          r.bench r.machine r.procs r.greedy_ns r.search_ns r.ilp_ns r.chosen)
      bad;
    exit 1
  end
