(* Planner gap: the search-based planner (lib/plan) against the
   paper's greedy c2+f3 ladder, priced by the same unified cost model,
   over the whole suite and every machine.

   For each (benchmark, machine, procs) configuration the searched
   plan must cost no more than the greedy plan under the model — the
   search is seeded with the greedy partition, so a worse result is a
   planner bug and fails the bench (exit 1) — and the searched
   program's interpreter checksum must equal the greedy program's
   (plans may differ; results may not).

   With --json the section also writes BENCH_plan_gap.json to the
   current directory: the committed baseline of greedy vs searched
   cost per configuration.  Deterministic, so a re-run diffs clean
   when nothing changed. *)

let machines = [ Machine.t3e; Machine.sp2; Machine.paragon ]

let procs_list = [ 1; 16 ]

let tile_of (b : Suite.bench) =
  if !Harness.tiny_mode then Some (if b.rank = 1 then 256 else 16) else None

type rowr = {
  bench : string;
  machine : string;
  procs : int;
  greedy_ns : float;
  search_ns : float;
  chosen : string;
  gap_pct : float;  (* 100 × (greedy − search) / greedy *)
  improved : bool;
  fallback : bool;
  states : int;  (* cost evaluations across all blocks *)
  beam_rounds : int;
  checksum : string;
  ok : bool;  (* search ≤ greedy AND checksums agree *)
}

let row_json r =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String r.bench);
      ("machine", Obs.Json.String r.machine);
      ("procs", Obs.Json.Int r.procs);
      ("greedy_ns", Obs.Json.Float r.greedy_ns);
      ("search_ns", Obs.Json.Float r.search_ns);
      ("chosen", Obs.Json.String r.chosen);
      ("gap_pct", Obs.Json.Float r.gap_pct);
      ("improved", Obs.Json.Bool r.improved);
      ("fallback", Obs.Json.Bool r.fallback);
      ("states", Obs.Json.Int r.states);
      ("beam_rounds", Obs.Json.Int r.beam_rounds);
      ("checksum", Obs.Json.String r.checksum);
      ("ok", Obs.Json.Bool r.ok);
    ]

(* CI-smoke budget: the full search is the committed baseline's job *)
let search_cfg () =
  if !Harness.tiny_mode then
    { Plan.Search.default with Plan.Search.max_states = 600; beam_width = 2 }
  else Plan.Search.default

(* checksums only depend on the generated code, not the machine the
   plan was priced for — cache them across the machine × procs sweep.
   Cells run on a pool, so the table is behind a lock; a racing miss
   recomputes the (deterministic) checksum, which is benign. *)
let checksum_cache : (string, string) Hashtbl.t = Hashtbl.create 64
let checksum_lock = Mutex.create ()

let checksum_of ~key code =
  match
    Mutex.protect checksum_lock (fun () -> Hashtbl.find_opt checksum_cache key)
  with
  | Some s -> s
  | None ->
      let s = Exec.Interp.checksum (Exec.Interp.run code) in
      Mutex.protect checksum_lock (fun () ->
          Hashtbl.replace checksum_cache key s);
      s

let plan_signature (c : Compilers.Driver.compiled) =
  String.concat ";"
    (List.map
       (fun (bp : Sir.Scalarize.block_plan) ->
         String.concat "|"
           (List.map
              (fun cl -> String.concat "," (List.map string_of_int cl))
              (Core.Partition.clusters bp.Sir.Scalarize.partition))
         ^ "/"
         ^ String.concat "," (List.map fst bp.Sir.Scalarize.contracted))
       c.Compilers.Driver.plan)

let measure (b : Suite.bench) (machine : Machine.t) procs =
  let prog = Suite.program ?tile:(tile_of b) b in
  let greedy = Harness.compile ~level:Compilers.Driver.C2F3 prog in
  let cost =
    Plan.Cost.create { Plan.Cost.machine; procs; opts = Comm.Model.all_on } prog
  in
  let chosen, prov =
    match Plan.Driver.compile ~search:(search_cfg ()) ~cost prog with
    | Ok r -> r
    | Error d ->
        Printf.eprintf "bench: %s\n" (Obs.Diagnostic.to_string d);
        exit 1
  in
  let greedy_sum =
    checksum_of ~key:(b.name ^ "!greedy") greedy.Compilers.Driver.code
  in
  let search_sum =
    checksum_of
      ~key:(b.name ^ "!" ^ plan_signature chosen)
      chosen.Compilers.Driver.code
  in
  let g = prov.Plan.Driver.greedy_total_ns
  and s = prov.Plan.Driver.search_total_ns in
  (* the never-worse guarantee: fallback reverts to greedy, so the
     chosen cost can exceed greedy's only through a planner bug *)
  let not_worse = prov.Plan.Driver.chosen_total_ns <= g +. 1e-6 in
  {
    bench = b.name;
    machine = machine.Machine.name;
    procs;
    greedy_ns = g;
    search_ns = s;
    chosen = prov.Plan.Driver.strategy;
    gap_pct = (if g > 0.0 then 100.0 *. (g -. s) /. g else 0.0);
    improved = s < g -. 1e-6;
    fallback = prov.Plan.Driver.fallback;
    states =
      List.fold_left
        (fun acc (r : Plan.Driver.block_report) ->
          acc + r.Plan.Driver.stats.Plan.Search.generated)
        0 prov.Plan.Driver.blocks;
    beam_rounds =
      List.fold_left
        (fun acc (r : Plan.Driver.block_report) ->
          acc + r.Plan.Driver.stats.Plan.Search.beam_rounds)
        0 prov.Plan.Driver.blocks;
    checksum = search_sum;
    ok = not_worse && String.equal greedy_sum search_sum;
  }

let section () =
  if not !Harness.json_mode then
    Harness.heading
      "Planner gap: branch-and-bound search vs greedy c2+f3 under the \
       unified cost model";
  let machines = if !Harness.tiny_mode then [ Machine.t3e ] else machines in
  let procs_list = if !Harness.tiny_mode then [ 16 ] else procs_list in
  (* one task per (benchmark, machine, procs) cell, fanned out over
     --jobs domains; the per-cell search itself stays sequential
     (jobs=1 in search_cfg) so the pool is never oversubscribed.
     Pool.map keeps cell order — the committed baseline is independent
     of --jobs. *)
  let cells =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun m -> List.map (fun procs -> (b, m, procs)) procs_list)
          machines)
      Suite.all
  in
  let rows =
    Support.Pool.map ~domains:!Harness.jobs
      (fun (b, m, procs) -> measure b m procs)
      cells
  in
  if !Harness.json_mode then begin
    List.iter
      (fun r ->
        Harness.json_row
          [ ("section", Obs.Json.String "plan"); ("row", row_json r) ])
      rows;
    (* the committed baseline is always full-size: the --tiny smoke
       must not overwrite it *)
    if not !Harness.tiny_mode then begin
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.String "fuzion/bench-plan-gap/1");
            ("rows", Obs.Json.List (List.map row_json rows));
          ]
      in
      let oc = open_out "BENCH_plan_gap.json" in
      output_string oc (Format.asprintf "%a@." Obs.Json.pp doc);
      close_out oc;
      Printf.eprintf "wrote BENCH_plan_gap.json (%d rows)\n" (List.length rows)
    end
  end
  else begin
    Harness.row "%-8s %-12s %5s %14s %14s %7s %8s %7s %s\n" "bench" "machine"
      "procs" "greedy ns" "search ns" "gap%" "states" "chosen" "ok";
    List.iter
      (fun r ->
        Harness.row "%-8s %-12s %5d %14.0f %14.0f %6.2f%% %8d %7s %s\n"
          r.bench r.machine r.procs r.greedy_ns r.search_ns r.gap_pct r.states
          r.chosen
          (if r.ok then "ok" else "WORSE"))
      rows
  end;
  let bad = List.filter (fun r -> not r.ok) rows in
  if bad <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf
          "plan regression: %s on %s x%d (greedy %.0f ns, search %.0f ns, \
           chosen %s)\n"
          r.bench r.machine r.procs r.greedy_ns r.search_ns r.chosen)
      bad;
    exit 1
  end
