(* Shared measurement machinery for the figure benches.

   The computation side of a configuration (interpreter run + cache
   simulation) does not depend on the processor count — the evaluation
   scales total problem size with the machine, so the per-processor
   tile is constant (paper §5.4).  We therefore simulate the
   computation once per (benchmark, level, machine) and recost only the
   communication model per processor count. *)

type computation = {
  flops : int;
  l1 : Cachesim.Cache.stats;
  l2 : Cachesim.Cache.stats option;
  footprint : int;
  checksum : string;
}

let simulate (m : Machine.t) (c : Compilers.Driver.compiled) =
  let hier =
    Cachesim.Cache.Hierarchy.create ~l1:m.Machine.l1 ?l2:m.Machine.l2 ()
  in
  let trace ~addr ~write =
    Cachesim.Cache.Hierarchy.access hier ~addr ~write
  in
  let r = Exec.Interp.run ~trace c.Compilers.Driver.code in
  let cnt = Exec.Interp.counters r in
  {
    flops = cnt.Exec.Interp.flops;
    l1 = Cachesim.Cache.Hierarchy.l1_stats hier;
    l2 = Cachesim.Cache.Hierarchy.l2_stats hier;
    footprint = Exec.Interp.footprint_bytes c.Compilers.Driver.code;
    checksum = Exec.Interp.checksum r;
  }

let time_ns (m : Machine.t) comp ~comm_ns =
  Machine.time_ns m
    {
      Machine.flops = comp.flops;
      l1_accesses = comp.l1.Cachesim.Cache.accesses;
      l1_misses = comp.l1.Cachesim.Cache.misses;
      l2_misses =
        (match comp.l2 with Some s -> s.Cachesim.Cache.misses | None -> 0);
      comm_ns;
    }

let comm_ns (m : Machine.t) ~procs (c : Compilers.Driver.compiled) =
  (Comm.Model.analyze ~machine:m ~procs ~opts:Comm.Model.all_on c)
    .Comm.Model.effective_ns

(* Full modeled time of one configuration on p processors. *)
let measure_time m ~procs comp compiled =
  time_ns m comp ~comm_ns:(comm_ns m ~procs compiled)

let improvement_pct ~baseline t = 100.0 *. (baseline -. t) /. t

(* Compile, or die with a rendered diagnostic — the figures all work
   on programs that must compile, so an [Error] here is a harness bug,
   not a recoverable condition. *)
let compile ?may_fuse ?reduction_fusion ~level prog =
  match
    Compilers.Driver.(compile_opts (opts ?may_fuse ?reduction_fusion level))
      prog
  with
  | Ok c -> c
  | Error d ->
      Printf.eprintf "bench: %s\n" (Obs.Diagnostic.to_string d);
      exit 1

(* ------------------------------------------------------------------ *)
(* Output helpers                                                      *)
(* ------------------------------------------------------------------ *)

(* With --json, the figures emit one JSON object per line on stdout
   (machine-readable rows) instead of the formatted tables. *)
let json_mode = ref false

(* With --tiny, sections that support it shrink the problem to
   CI-smoke size (seconds instead of minutes). *)
let tiny_mode = ref false

(* --jobs N: worker domains for the matrix sections (fig7-11, spmd,
   plan, fuzz).  Rows are computed on a Support.Pool and printed
   sequentially in task order, so every section's output is
   byte-identical at any value. *)
let jobs = ref 1

let json_row fields = print_endline (Obs.Json.to_string (Obs.Json.Obj fields))

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let row fmt = Printf.printf fmt
