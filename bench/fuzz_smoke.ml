(* Differential-fuzzing smoke: a fixed-seed slice of the zapc --fuzz
   campaign, sized for CI.  Every generated program must produce the
   same live-out digest on every executor (see Fuzz.Oracle); any
   divergence prints the oracle report plus a self-contained repro and
   fails the bench (exit 1).

   The campaign runs through Fuzz.Campaign on --jobs domains; the seed
   is pinned and per-case streams are split sequentially, so a run is
   bit-reproducible at any domain count: a failure here is a
   regression, never flakiness.  With --json the section emits one row
   per case (digest, backends checked, skips) — a committed run diffs
   clean when nothing changed.

   The full-size json run additionally times the campaign at 1 worker
   and at 4 workers, asserts the two produce identical rows (the
   determinism contract, enforced, not assumed), and writes the
   measurement to BENCH_fuzz_parallel.json.  Wall-clock lines go to
   stderr: stdout stays deterministic. *)

let seed = 1L
let budget () = if !Harness.tiny_mode then 25 else 150
let parallel_jobs = 4

let row_json (c : Fuzz.Campaign.case) =
  let r = c.Fuzz.Campaign.report in
  Obs.Json.Obj
    [
      ("case", Obs.Json.Int c.Fuzz.Campaign.index);
      ("program", Obs.Json.String c.Fuzz.Campaign.program.Ir.Prog.name);
      ( "digest",
        Obs.Json.String (Option.value r.Fuzz.Oracle.reference ~default:"CRASH") );
      ("backends", Obs.Json.Int (List.length r.Fuzz.Oracle.results));
      ("skipped", Obs.Json.Int (List.length (Fuzz.Oracle.skips r)));
      ("ok", Obs.Json.Bool (Fuzz.Oracle.ok r));
    ]

(* One string per campaign that covers everything a row reports —
   equality of these is what "byte-identical at any --jobs" means. *)
let campaign_digest cases =
  String.concat "\n"
    (List.map (fun c -> Obs.Json.to_string (row_json c)) cases)

let timed_run ~jobs n =
  let t0 = Unix.gettimeofday () in
  let cases = Fuzz.Campaign.run ~jobs ~n ~seed () in
  (Unix.gettimeofday () -. t0, cases)

let section () =
  let n = budget () in
  if not !Harness.json_mode then
    Harness.heading
      (Printf.sprintf
         "Differential fuzz smoke: %d seeded programs through every executor"
         n);
  let wall, cases = timed_run ~jobs:!Harness.jobs n in
  let backends = Fuzz.Campaign.backend_runs cases in
  let skips = Fuzz.Campaign.skipped_runs cases in
  let divergent = Fuzz.Campaign.divergent cases in
  let failures = List.length divergent in
  List.iter
    (fun c ->
      if !Harness.json_mode then
        Harness.json_row
          [ ("section", Obs.Json.String "fuzz"); ("row", row_json c) ])
    cases;
  List.iter
    (fun (c : Fuzz.Campaign.case) ->
      Printf.eprintf "fuzz smoke: case %d diverged\n%s\nrepro:\n%s\n"
        c.Fuzz.Campaign.index
        (Fuzz.Oracle.to_string c.Fuzz.Campaign.report)
        (Fuzz.Repro.to_string
           ~comment:
             (Printf.sprintf "bench fuzz smoke, seed %Ld case %d" seed
                c.Fuzz.Campaign.index)
           c.Fuzz.Campaign.program))
    divergent;
  if not !Harness.json_mode then
    Harness.row "%d cases, %d backend runs (%d skipped), %d divergences\n" n
      backends skips failures;
  if failures > 0 then exit 1;
  (* parallel determinism + wall-clock, committed from the full run
     only (--tiny must not overwrite the baseline) *)
  if !Harness.json_mode && not !Harness.tiny_mode then begin
    let seq_s, seq_cases, par_s, par_cases =
      (* reuse the run above as one of the two measured points *)
      if !Harness.jobs = 1 then
        let par_s, par_cases = timed_run ~jobs:parallel_jobs n in
        (wall, cases, par_s, par_cases)
      else if !Harness.jobs = parallel_jobs then
        let seq_s, seq_cases = timed_run ~jobs:1 n in
        (seq_s, seq_cases, wall, cases)
      else
        let seq_s, seq_cases = timed_run ~jobs:1 n in
        let par_s, par_cases = timed_run ~jobs:parallel_jobs n in
        (seq_s, seq_cases, par_s, par_cases)
    in
    let identical =
      String.equal (campaign_digest seq_cases) (campaign_digest par_cases)
    in
    if not identical then begin
      Printf.eprintf
        "fuzz smoke: parallel campaign (%d domains) differs from sequential!\n"
        parallel_jobs;
      exit 1
    end;
    let doc =
      Obs.Json.Obj
        [
          ("schema", Obs.Json.String "fuzion/bench-fuzz-parallel/1");
          ( "note",
            Obs.Json.String
              "wall-clock measurement — unlike the other BENCH files this \
               does not diff clean across runs or hosts" );
          ("cases", Obs.Json.Int n);
          ("seed", Obs.Json.Int (Int64.to_int seed));
          ("available_cores", Obs.Json.Int (Support.Pool.default_domains ()));
          ("reports_identical", Obs.Json.Bool identical);
          ( "rows",
            Obs.Json.List
              [
                Obs.Json.Obj
                  [
                    ("jobs", Obs.Json.Int 1);
                    ("wall_s", Obs.Json.Float seq_s);
                    ("speedup", Obs.Json.Float 1.0);
                  ];
                Obs.Json.Obj
                  [
                    ("jobs", Obs.Json.Int parallel_jobs);
                    ("wall_s", Obs.Json.Float par_s);
                    ( "speedup",
                      Obs.Json.Float
                        (if par_s > 0.0 then seq_s /. par_s else 0.0) );
                  ];
              ] );
        ]
    in
    let oc = open_out "BENCH_fuzz_parallel.json" in
    output_string oc (Format.asprintf "%a@." Obs.Json.pp doc);
    close_out oc;
    Printf.eprintf
      "wrote BENCH_fuzz_parallel.json (jobs=1 %.2fs, jobs=%d %.2fs, %.2fx)\n"
      seq_s parallel_jobs par_s
      (if par_s > 0.0 then seq_s /. par_s else 0.0)
  end
