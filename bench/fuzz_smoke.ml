(* Differential-fuzzing smoke: a fixed-seed slice of the zapc --fuzz
   campaign, sized for CI.  Every generated program must produce the
   same live-out digest on every executor (see Fuzz.Oracle); any
   divergence prints the oracle report plus a self-contained repro and
   fails the bench (exit 1).

   The seed is pinned, so a run is bit-reproducible: a failure here is
   a regression, never flakiness.  With --json the section emits one
   row per case (digest, backends checked, skips) — a committed run
   diffs clean when nothing changed. *)

let seed = 1L
let budget () = if !Harness.tiny_mode then 25 else 150

let row_json case (p : Ir.Prog.t) (r : Fuzz.Oracle.report) =
  Obs.Json.Obj
    [
      ("case", Obs.Json.Int case);
      ("program", Obs.Json.String p.Ir.Prog.name);
      ( "digest",
        Obs.Json.String (Option.value r.Fuzz.Oracle.reference ~default:"CRASH") );
      ("backends", Obs.Json.Int (List.length r.Fuzz.Oracle.results));
      ("skipped", Obs.Json.Int (List.length (Fuzz.Oracle.skips r)));
      ("ok", Obs.Json.Bool (Fuzz.Oracle.ok r));
    ]

let section () =
  let n = budget () in
  if not !Harness.json_mode then
    Harness.heading
      (Printf.sprintf
         "Differential fuzz smoke: %d seeded programs through every executor"
         n);
  let rng = Support.Prng.create seed in
  let failures = ref 0 and skips = ref 0 and backends = ref 0 in
  for case = 1 to n do
    let p = Fuzz.Gen.generate (Support.Prng.split rng) in
    let r = Fuzz.Oracle.run p in
    backends := !backends + List.length r.Fuzz.Oracle.results;
    skips := !skips + List.length (Fuzz.Oracle.skips r);
    if !Harness.json_mode then
      Harness.json_row
        [
          ("section", Obs.Json.String "fuzz");
          ("row", row_json case p r);
        ];
    if not (Fuzz.Oracle.ok r) then begin
      incr failures;
      Printf.eprintf "fuzz smoke: case %d diverged\n%s\nrepro:\n%s\n" case
        (Fuzz.Oracle.to_string r)
        (Fuzz.Repro.to_string
           ~comment:(Printf.sprintf "bench fuzz smoke, seed %Ld case %d" seed case)
           p)
    end
  done;
  if not !Harness.json_mode then
    Harness.row "%d cases, %d backend runs (%d skipped), %d divergences\n" n
      !backends !skips !failures;
  if !failures > 0 then exit 1
