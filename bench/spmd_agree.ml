(* SPMD agreement: execute every benchmark on the simulated processor
   grid and hold the executed run against the analytical model.

   For each (benchmark, level, procs) configuration the engine's
   charged traffic must equal Comm.Model.analyze exactly and the
   distributed checksum must equal the sequential interpreter's; any
   disagreement fails the bench (exit 1).  The wire-level counts
   (actual sender→receiver pairs, clipped payloads) ride along for
   inspection — they legitimately differ from the charged ones, see
   docs/spmd.md.

   With --json the section also writes BENCH_spmd_agreement.json to
   the current directory: the committed baseline of executed vs
   predicted traffic.  The output is deterministic, so a re-run diffs
   clean when nothing changed. *)

let machine = Machine.t3e

let levels = Compilers.Driver.[ Baseline; F1; C1; F2; F3; C2; C2F3 ]

let procs_list = [ 4; 16 ]

let tile_of (b : Suite.bench) =
  if !Harness.tiny_mode then Some (if b.rank = 1 then 256 else 16) else None

type rowr = {
  bench : string;
  level : string;
  procs : int;
  agree : bool;
  seq_sum : string;
  spmd_sum : string;
  predicted_messages : int;
  predicted_bytes : int;
  predicted_effective_ns : float;
  charged_messages : int;
  charged_bytes : int;
  wire_messages : int;
  wire_bytes : int;
  executed_comm_ns : float;
  time_ns : float;
  unmodeled : int;
}

let row_json r =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String r.bench);
      ("level", Obs.Json.String r.level);
      ("procs", Obs.Json.Int r.procs);
      ("agree", Obs.Json.Bool r.agree);
      ("checksum", Obs.Json.String r.spmd_sum);
      ( "predicted",
        Obs.Json.Obj
          [
            ("messages", Obs.Json.Int r.predicted_messages);
            ("bytes", Obs.Json.Int r.predicted_bytes);
            ("effective_ns", Obs.Json.Float r.predicted_effective_ns);
          ] );
      ( "executed",
        Obs.Json.Obj
          [
            ("messages", Obs.Json.Int r.charged_messages);
            ("bytes", Obs.Json.Int r.charged_bytes);
            ("wire_messages", Obs.Json.Int r.wire_messages);
            ("wire_bytes", Obs.Json.Int r.wire_bytes);
            ("comm_ns", Obs.Json.Float r.executed_comm_ns);
            ("time_ns", Obs.Json.Float r.time_ns);
            ("unmodeled_exchanges", Obs.Json.Int r.unmodeled);
          ] );
    ]

let measure (b : Suite.bench) level procs =
  let prog = Suite.program ?tile:(tile_of b) b in
  let c = Harness.compile ~level prog in
  let seq_sum = Exec.Interp.checksum (Exec.Interp.run c.Compilers.Driver.code) in
  let a = Comm.Model.analyze ~machine ~procs ~opts:Comm.Model.all_on c in
  let r =
    Spmd.execute { Spmd.machine; procs; opts = Comm.Model.all_on; cachesim = false } c
  in
  let comm_ns =
    Array.fold_left
      (fun acc (p : Spmd.proc_counters) -> max acc p.Spmd.comm_ns)
      0.0 r.Spmd.per_proc
  in
  {
    bench = b.name;
    level = Compilers.Driver.level_name level;
    procs;
    agree =
      String.equal r.Spmd.checksum seq_sum
      && r.Spmd.charged_messages = a.Comm.Model.messages
      && r.Spmd.charged_bytes = a.Comm.Model.bytes
      && r.Spmd.unmodeled_exchanges = 0;
    seq_sum;
    spmd_sum = r.Spmd.checksum;
    predicted_messages = a.Comm.Model.messages;
    predicted_bytes = a.Comm.Model.bytes;
    predicted_effective_ns = a.Comm.Model.effective_ns;
    charged_messages = r.Spmd.charged_messages;
    charged_bytes = r.Spmd.charged_bytes;
    wire_messages = r.Spmd.wire_messages;
    wire_bytes = r.Spmd.wire_bytes;
    executed_comm_ns = comm_ns;
    time_ns = r.Spmd.time_ns;
    unmodeled = r.Spmd.unmodeled_exchanges;
  }

let section () =
  if not !Harness.json_mode then
    Harness.heading
      "SPMD agreement: executed grid run vs analytical model (Cray T3E)";
  (* one task per (benchmark, level, procs) cell; Pool.map keeps cell
     order, so rows (and the committed baseline) are independent of
     --jobs *)
  let cells =
    List.concat_map
      (fun b ->
        List.concat_map
          (fun level -> List.map (fun procs -> (b, level, procs)) procs_list)
          levels)
      Suite.all
  in
  let rows =
    Support.Pool.map ~domains:!Harness.jobs
      (fun (b, level, procs) -> measure b level procs)
      cells
  in
  if !Harness.json_mode then begin
    List.iter
      (fun r -> Harness.json_row [ ("section", Obs.Json.String "spmd"); ("row", row_json r) ])
      rows;
    (* the committed baseline is always full-size: the --tiny smoke
       must not overwrite it *)
    if not !Harness.tiny_mode then begin
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.String "fuzion/bench-spmd-agreement/1");
            ("machine", Obs.Json.String machine.Machine.name);
            ("rows", Obs.Json.List (List.map row_json rows));
          ]
      in
      let oc = open_out "BENCH_spmd_agreement.json" in
      output_string oc (Format.asprintf "%a@." Obs.Json.pp doc);
      close_out oc;
      Printf.eprintf "wrote BENCH_spmd_agreement.json (%d rows)\n"
        (List.length rows)
    end
  end
  else begin
    Harness.row "%-8s %-9s %5s %9s %9s %10s %10s %6s %s\n" "bench" "level"
      "procs" "msgs p/e" "bytes p/e" "wire m/B" "comm ns" "unmod" "ok";
    List.iter
      (fun r ->
        Harness.row "%-8s %-9s %5d %4d/%-4d %4d/%-4d %5d/%-6d %10.0f %6d %s\n"
          r.bench r.level r.procs r.predicted_messages r.charged_messages
          r.predicted_bytes r.charged_bytes r.wire_messages r.wire_bytes
          r.executed_comm_ns r.unmodeled
          (if r.agree then "ok" else "DISAGREES"))
      rows
  end;
  let bad = List.filter (fun r -> not r.agree) rows in
  if bad <> [] then begin
    List.iter
      (fun r ->
        Printf.eprintf
          "spmd disagreement: %s @ %s x%d (checksum %s/%s, messages %d/%d, \
           bytes %d/%d, unmodeled %d)\n"
          r.bench r.level r.procs r.seq_sum r.spmd_sum r.predicted_messages
          r.charged_messages r.predicted_bytes r.charged_bytes r.unmodeled)
      bad;
    exit 1
  end
