(* zapd load generator: replay the suite against a service engine at
   concurrency 1/8/64, cold cache vs warm cache.

   The workload is every suite benchmark twice over — a greedy c2+f3
   Run and a search-planned Compile — replicated so the widest
   concurrency level has real fan-out, issued as one Api.Batch (the
   engine spreads a batch over its domain pool).  Each concurrency
   level gets a fresh engine: the first replay is the cold pass (every
   plan computed), the second replays the identical batch warm (every
   plan served from the sharded LRU cache).

   Three properties are load-bearing and fail the bench (exit 1):

   - determinism: the rendered responses are byte-identical cold vs
     warm and across every concurrency level — the cache and the pool
     must not leak into replies;
   - warm hit rate ≥ 90%: the replay is served from cache;
   - warm search avoids re-planning: the engine's plan-computed
     counter does not advance during any warm pass.

   With --json the section writes BENCH_zapd_throughput.json — unlike
   the model-driven BENCH files this one carries wall-clock, so only
   the structural fields (hit rates, counter deltas, request counts)
   are expected to diff clean across machines. *)

module Api = Service.Api

let concurrencies = [ 1; 8; 64 ]

let tile_of (b : Suite.bench) =
  if !Harness.tiny_mode then Some (if b.rank = 1 then 256 else 16) else None

let benches () = if !Harness.tiny_mode then [ "ep"; "frac" ] else
    List.map (fun b -> b.Suite.name) Suite.all

(* One replica of the workload: every benchmark as a greedy run and a
   search compile, on the default target. *)
let workload_once () =
  List.concat_map
    (fun name ->
      let b = Option.get (Suite.by_name name) in
      let source = Api.Bench { name; tile = tile_of b } in
      let greedy = Api.default_compile_opts in
      let search = { greedy with Api.plan = Api.Search } in
      [
        Api.Run
          { source; opts = greedy; target = Api.default_target; spmd = false; native = false };
        Api.Compile { source; opts = search; target = Api.default_target };
      ])
    (benches ())

let workload () =
  let once = workload_once () in
  let reps = if !Harness.tiny_mode then 2 else 6 in
  List.concat (List.init reps (fun _ -> once))

type pass = {
  concurrency : int;
  phase : string;  (* "cold" | "warm" *)
  requests : int;
  wall_s : float;
  req_per_s : float;
  latency_ms : float;  (* mean per-request wall-clock *)
  hits : int;  (* cache counter deltas over the pass *)
  misses : int;
  hit_rate : float;
  plans_computed : int;
  compiles_computed : int;
}

let pass_json p =
  Obs.Json.Obj
    [
      ("concurrency", Obs.Json.Int p.concurrency);
      ("phase", Obs.Json.String p.phase);
      ("requests", Obs.Json.Int p.requests);
      ("wall_s", Obs.Json.Float p.wall_s);
      ("req_per_s", Obs.Json.Float p.req_per_s);
      ("latency_ms", Obs.Json.Float p.latency_ms);
      ("cache_hits", Obs.Json.Int p.hits);
      ("cache_misses", Obs.Json.Int p.misses);
      ("hit_rate", Obs.Json.Float p.hit_rate);
      ("plans_computed", Obs.Json.Int p.plans_computed);
      ("compiles_computed", Obs.Json.Int p.compiles_computed);
    ]

(* Run one batch and return (rendered responses, pass row). *)
let run_pass engine ~concurrency ~phase reqs =
  let s0 = Service.Engine.server_stats engine in
  let t0 = Unix.gettimeofday () in
  let resp = Service.Engine.handle engine (Api.Batch reqs) in
  let wall_s = Unix.gettimeofday () -. t0 in
  let s1 = Service.Engine.server_stats engine in
  let rendered =
    match resp with
    | Api.Batch_reply rs ->
        List.map
          (fun r -> Obs.Json.to_string (Api.response_to_json r))
          rs
    | other -> [ Obs.Json.to_string (Api.response_to_json other) ]
  in
  let requests = List.length reqs in
  let hits = s1.Api.cache.Api.hits - s0.Api.cache.Api.hits in
  let misses = s1.Api.cache.Api.misses - s0.Api.cache.Api.misses in
  let looked = hits + misses in
  ( rendered,
    {
      concurrency;
      phase;
      requests;
      wall_s;
      req_per_s = (if wall_s > 0.0 then float_of_int requests /. wall_s else 0.0);
      latency_ms =
        (if requests > 0 then wall_s *. 1000.0 /. float_of_int requests else 0.0);
      hits;
      misses;
      hit_rate =
        (if looked > 0 then float_of_int hits /. float_of_int looked else 0.0);
      plans_computed = s1.Api.plans_computed - s0.Api.plans_computed;
      compiles_computed = s1.Api.compiles_computed - s0.Api.compiles_computed;
    } )

let section () =
  Harness.heading
    "zapd throughput: suite replay through the service engine, cold vs \
     warm plan cache, concurrency 1/8/64";
  let reqs = workload () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let results =
    List.map
      (fun concurrency ->
        let engine = Service.Engine.create ~jobs:concurrency () in
        let cold_out, cold = run_pass engine ~concurrency ~phase:"cold" reqs in
        let warm_out, warm = run_pass engine ~concurrency ~phase:"warm" reqs in
        if cold_out <> warm_out then
          fail "concurrency %d: warm responses differ from cold" concurrency;
        if warm.hit_rate < 0.9 then
          fail "concurrency %d: warm hit rate %.2f < 0.90" concurrency
            warm.hit_rate;
        if warm.plans_computed > 0 then
          fail "concurrency %d: warm pass re-planned %d times" concurrency
            warm.plans_computed;
        (concurrency, cold_out, [ cold; warm ]))
      concurrencies
  in
  (* responses must also agree across concurrency levels *)
  (match results with
  | (c0, out0, _) :: rest ->
      List.iter
        (fun (c, out, _) ->
          if out <> out0 then
            fail "responses at concurrency %d differ from concurrency %d" c c0)
        rest
  | [] -> ());
  let passes = List.concat_map (fun (_, _, ps) -> ps) results in
  if !Harness.json_mode then begin
    List.iter
      (fun p ->
        Harness.json_row
          [ ("section", Obs.Json.String "zapd"); ("row", pass_json p) ])
      passes;
    if not !Harness.tiny_mode then begin
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.String "fuzion/bench-zapd-throughput/1");
            ( "note",
              Obs.Json.String
                "wall-clock measurement: wall_s/req_per_s/latency_ms vary \
                 by machine; counters and hit rates are deterministic" );
            ("rows", Obs.Json.List (List.map pass_json passes));
          ]
      in
      let oc = open_out "BENCH_zapd_throughput.json" in
      output_string oc (Format.asprintf "%a@." Obs.Json.pp doc);
      close_out oc;
      Printf.eprintf "wrote BENCH_zapd_throughput.json (%d rows)\n"
        (List.length passes)
    end
  end
  else begin
    Harness.row "%5s %-5s %9s %8s %10s %12s %6s %6s %9s %6s\n" "conc" "phase"
      "requests" "wall s" "req/s" "latency ms" "hits" "miss" "hit-rate"
      "plans";
    List.iter
      (fun p ->
        Harness.row "%5d %-5s %9d %8.2f %10.1f %12.3f %6d %6d %8.1f%% %6d\n"
          p.concurrency p.phase p.requests p.wall_s p.req_per_s p.latency_ms
          p.hits p.misses (100.0 *. p.hit_rate) p.plans_computed)
      passes
  end;
  match !failures with
  | [] -> ()
  | msgs ->
      List.iter (fun m -> Printf.eprintf "zapd bench FAILED: %s\n" m)
        (List.rev msgs);
      exit 1
