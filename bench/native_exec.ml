(* Native execution: the whole suite compiled to real machine code and
   executed, next to the cachesim model's predictions.

   For every (benchmark, plan mode) cell — the full greedy ladder plus
   the search and ILP planners — the plan's emitted C is built through
   the content-addressed artifact store (Native.Store) and executed;
   the row carries the measured wall-clock next to the modeled
   nanoseconds (t3e x1, the same unified cost model the planners
   optimize), and the native live-out checksum must equal the
   interpreter's bit for bit.

   Two properties are asserted, and their violation fails the bench
   (exit 1):
     - every native checksum equals the interpreter checksum;
     - a warm pass over every cell performs zero recompiles and
       reproduces the cold checksums exactly.

   The model predicts a 1998 machine and the runner executes on a
   modern one, so absolute times are incomparable by design; what the
   model owes us is *ordering*.  Per benchmark, the greedy ladder's
   rank agreement between predicted and measured time is reported as
   Kendall's tau (tau-a) with the raw inversion count.

   With --json the section also writes BENCH_native.json: the
   committed record of checksums, wall-clocks, rank agreement and
   toolchain provenance.  Wall-clock fields vary run to run; the
   checksum and agreement structure is the stable part.

   When no C compiler is on PATH the section skips with an explicit
   notice and exits cleanly — CI without a toolchain must not fail. *)

let model_machine = Machine.t3e

type mode = Greedy of Compilers.Driver.level | Search | Ilp

let mode_name = function
  | Greedy l -> "greedy:" ^ Compilers.Driver.level_name l
  | Search -> "search"
  | Ilp -> "ilp"

let modes () =
  let levels =
    if !Harness.tiny_mode then Compilers.Driver.[ Baseline; C2F3 ]
    else Compilers.Driver.all_levels @ [ Compilers.Driver.C2P ]
  in
  List.map (fun l -> Greedy l) levels @ [ Search; Ilp ]

let tile_of (b : Suite.bench) =
  if !Harness.tiny_mode then Some (if b.rank = 1 then 256 else 16) else None

let reps () = if !Harness.tiny_mode then 1 else 3

(* CI-smoke budgets, as in plan_gap *)
let search_cfg () =
  if !Harness.tiny_mode then
    { Plan.Search.default with Plan.Search.max_states = 600; beam_width = 2 }
  else Plan.Search.default

let ilp_cfg () =
  if !Harness.tiny_mode then
    { Plan.Ilp.default with Plan.Ilp.max_clusters = 400; max_pivots = 20_000 }
  else Plan.Ilp.default

let compile_mode prog = function
  | Greedy l -> Harness.compile ~level:l prog
  | (Search | Ilp) as m -> (
      let cost =
        Plan.Cost.create
          { Plan.Cost.machine = model_machine; procs = 1; opts = Comm.Model.all_on }
          prog
      in
      let r =
        match m with
        | Ilp ->
            Result.map fst
              (Plan.Driver.compile_ilp ~search:(search_cfg ()) ~ilp:(ilp_cfg ())
                 ~cost prog)
        | _ -> Result.map fst (Plan.Driver.compile ~search:(search_cfg ()) ~cost prog)
      in
      match r with
      | Ok c -> c
      | Error d ->
          Printf.eprintf "bench: %s\n" (Obs.Diagnostic.to_string d);
          exit 1)

type rowr = {
  bench : string;
  mode : string;
  predicted_ns : float;  (* modeled time on t3e x1 *)
  wall_ns : int64;  (* min over reps, CLOCK_MONOTONIC around clusters *)
  interp_checksum : string;
  native_checksum : string;
  agrees : bool;
  units : int;  (* cluster translation units in the artifact *)
  key : string;  (* artifact content address *)
  built : bool;  (* this cell's cold pass actually compiled *)
}

let row_json r =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String r.bench);
      ("mode", Obs.Json.String r.mode);
      ("predicted_ns", Obs.Json.Float r.predicted_ns);
      ("wall_ns", Obs.Json.Int (Int64.to_int r.wall_ns));
      ("interp_checksum", Obs.Json.String r.interp_checksum);
      ("native_checksum", Obs.Json.String r.native_checksum);
      ("agrees", Obs.Json.Bool r.agrees);
      ("units", Obs.Json.Int r.units);
      ("key", Obs.Json.String r.key);
      ("built", Obs.Json.Bool r.built);
    ]

(* ------------------------------------------------------------------ *)
(* Rank agreement                                                      *)
(* ------------------------------------------------------------------ *)

type agreement = {
  abench : string;
  pairs : int;
  concordant : int;
  inversions : int;  (* discordant pairs *)
  ties : int;
  tau : float;  (* Kendall tau-a: (C - D) / all pairs *)
}

(* Tau over the greedy ladder of one benchmark: does the model rank
   the levels the way the hardware does?  Ties in either ordering
   count as neither concordant nor discordant (tau-a denominator). *)
let agreement_of ~bench rows =
  let cells =
    List.filter_map
      (fun r ->
        if
          r.bench = bench
          && String.length r.mode >= 7
          && String.sub r.mode 0 7 = "greedy:"
        then Some (r.predicted_ns, Int64.to_float r.wall_ns)
        else None)
      rows
  in
  let arr = Array.of_list cells in
  let n = Array.length arr in
  let concordant = ref 0 and inversions = ref 0 and ties = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let pi, wi = arr.(i) and pj, wj = arr.(j) in
      let sp = compare pi pj and sw = compare wi wj in
      if sp = 0 || sw = 0 then incr ties
      else if sp * sw > 0 then incr concordant
      else incr inversions
    done
  done;
  let pairs = n * (n - 1) / 2 in
  {
    abench = bench;
    pairs;
    concordant = !concordant;
    inversions = !inversions;
    ties = !ties;
    tau =
      (if pairs = 0 then 1.0
       else float_of_int (!concordant - !inversions) /. float_of_int pairs);
  }

let agreement_json a =
  Obs.Json.Obj
    [
      ("bench", Obs.Json.String a.abench);
      ("pairs", Obs.Json.Int a.pairs);
      ("concordant", Obs.Json.Int a.concordant);
      ("inversions", Obs.Json.Int a.inversions);
      ("ties", Obs.Json.Int a.ties);
      ("kendall_tau", Obs.Json.Float a.tau);
    ]

(* ------------------------------------------------------------------ *)
(* The section                                                         *)
(* ------------------------------------------------------------------ *)

let run_min runner ~reps =
  let rec go best sum n =
    if n = 0 then Ok (best, sum)
    else
      match Native.Build.run_exe runner with
      | Error e -> Error e
      | Ok r ->
          let w = r.Native.Build.wall_ns in
          let best =
            match best with
            | None -> Some (r.Native.Build.checksum, w)
            | Some (s, b) -> Some (s, if w < b then w else b)
          in
          go best (Int64.add sum w) (n - 1)
  in
  match go None 0L reps with
  | Ok (Some (checksum, best), _) -> Ok (checksum, best)
  | Ok (None, _) -> Error { Native.Build.argv = []; status = "-"; detail = "no reps" }
  | Error e -> Error e

let die e =
  Printf.eprintf "bench: native: %s\n" (Native.Build.error_to_string e);
  exit 1

let section () =
  if not !Harness.json_mode then
    Harness.heading
      "Native execution: suite x plan mode on real hardware vs the cachesim \
       model (t3e x1)";
  if not (Native.Toolchain.available ()) then begin
    (* explicit, machine-readable skip: CI without a toolchain is a
       configuration, not a failure *)
    if !Harness.json_mode then
      Harness.json_row
        [
          ("section", Obs.Json.String "native");
          ("skipped", Obs.Json.Bool true);
          ("reason", Obs.Json.String "no C compiler on PATH");
        ]
    else print_endline "skipped: no C compiler on PATH";
    ()
  end
  else begin
    let cells =
      List.concat_map (fun b -> List.map (fun m -> (b, m)) (modes ())) Suite.all
    in
    (* phase 1, on the pool: compile each cell and price it under the
       model (deterministic, embarrassingly parallel) *)
    let compiled =
      Support.Pool.map ~domains:!Harness.jobs
        (fun ((b : Suite.bench), m) ->
          let prog = Suite.program ?tile:(tile_of b) b in
          let c = compile_mode prog m in
          let comp = Harness.simulate model_machine c in
          let predicted = Harness.measure_time model_machine ~procs:1 comp c in
          (b, m, c, comp.Harness.checksum, predicted))
        cells
    in
    (* phase 2, sequential: build through a private store (so "built"
       is deterministically true on the cold pass) and measure.
       Sequential keeps the wall-clocks honest — no co-running cc. *)
    let root = Native.Build.fresh_workdir ~salt:(Hashtbl.hash "bench-native") () in
    Fun.protect ~finally:(fun () -> Native.Build.remove_tree root)
    @@ fun () ->
    let store = Native.Store.create ~root () in
    let rows =
      List.map
        (fun ((b : Suite.bench), m, (c : Compilers.Driver.compiled), interp_sum, predicted) ->
          let code = c.Compilers.Driver.code in
          match Native.Store.get store code with
          | Error e -> die e
          | Ok (a, built) -> (
              match run_min a.Native.Store.runner ~reps:(reps ()) with
              | Error e -> die e
              | Ok (native_sum, wall) ->
                  {
                    bench = b.Suite.name;
                    mode = mode_name m;
                    predicted_ns = predicted;
                    wall_ns = wall;
                    interp_checksum = interp_sum;
                    native_checksum = native_sum;
                    agrees = String.equal interp_sum native_sum;
                    units = a.Native.Store.units;
                    key = a.Native.Store.key;
                    built;
                  }))
        compiled
    in
    (* phase 3: the warm pass.  Every artifact must come back without
       a compile, and a re-run must reproduce the cold checksum. *)
    let warm_recompiles = ref 0 and warm_mismatches = ref 0 in
    List.iter2
      (fun (_, _, (c : Compilers.Driver.compiled), _, _) row ->
        match Native.Store.get store c.Compilers.Driver.code with
        | Error e -> die e
        | Ok (a, fresh) -> (
            if fresh then incr warm_recompiles;
            match Native.Build.run_exe a.Native.Store.runner with
            | Error e -> die e
            | Ok r ->
                if not (String.equal r.Native.Build.checksum row.native_checksum)
                then incr warm_mismatches))
      compiled rows;
    let agreements = List.map (fun (b : Suite.bench) -> agreement_of ~bench:b.Suite.name rows) Suite.all in
    let stats = Native.Store.stats store in
    if !Harness.json_mode then begin
      List.iter
        (fun r ->
          Harness.json_row
            [ ("section", Obs.Json.String "native"); ("row", row_json r) ])
        rows;
      (* the committed baseline is always full-size: the --tiny smoke
         must not overwrite it *)
      if not !Harness.tiny_mode then begin
        let doc =
          Obs.Json.Obj
            [
              ("schema", Obs.Json.String "fuzion/bench-native/1");
              ("compiler", Obs.Json.String (Native.Toolchain.describe ()));
              ( "cc_argv",
                Obs.Json.List
                  (List.map
                     (fun s -> Obs.Json.String s)
                     (Native.Toolchain.cc_argv ())) );
              ("model_machine", Obs.Json.String model_machine.Machine.name);
              ("model_procs", Obs.Json.Int 1);
              ("reps", Obs.Json.Int (reps ()));
              ("rows", Obs.Json.List (List.map row_json rows));
              ( "rank_agreement",
                Obs.Json.List (List.map agreement_json agreements) );
              ( "warm",
                Obs.Json.Obj
                  [
                    ("recompiles", Obs.Json.Int !warm_recompiles);
                    ("mismatches", Obs.Json.Int !warm_mismatches);
                    ("store_builds", Obs.Json.Int stats.Native.Store.builds);
                    ("store_reuses", Obs.Json.Int stats.Native.Store.reuses);
                  ] );
            ]
        in
        let oc = open_out "BENCH_native.json" in
        output_string oc (Format.asprintf "%a@." Obs.Json.pp doc);
        close_out oc;
        Printf.eprintf "wrote BENCH_native.json (%d rows)\n" (List.length rows)
      end
    end
    else begin
      Printf.printf "toolchain: %s\n\n" (Native.Toolchain.describe ());
      Harness.row "%-8s %-16s %14s %14s %6s %6s %s\n" "bench" "mode"
        "predicted ns" "wall ns" "units" "built" "checksum";
      List.iter
        (fun r ->
          Harness.row "%-8s %-16s %14.0f %14Ld %6d %6s %s%s\n" r.bench r.mode
            r.predicted_ns r.wall_ns r.units
            (if r.built then "yes" else "no")
            r.native_checksum
            (if r.agrees then "" else "  DIVERGES"))
        rows;
      print_newline ();
      Harness.row "%-8s %8s %12s %12s %6s\n" "bench" "pairs" "inversions"
        "kendall-tau" "ties";
      List.iter
        (fun a ->
          Harness.row "%-8s %8d %12d %12.3f %6d\n" a.abench a.pairs a.inversions
            a.tau a.ties)
        agreements;
      Printf.printf
        "\nwarm pass: %d recompiles, %d checksum mismatches (store: %d builds, \
         %d reuses)\n"
        !warm_recompiles !warm_mismatches stats.Native.Store.builds
        stats.Native.Store.reuses
    end;
    let diverged = List.filter (fun r -> not r.agrees) rows in
    List.iter
      (fun r ->
        Printf.eprintf
          "native divergence: %s @ %s (interp %s, native %s)\n" r.bench r.mode
          r.interp_checksum r.native_checksum)
      diverged;
    if !warm_recompiles > 0 then
      Printf.eprintf "native: warm pass recompiled %d artifacts\n"
        !warm_recompiles;
    if !warm_mismatches > 0 then
      Printf.eprintf "native: warm pass diverged on %d artifacts\n"
        !warm_mismatches;
    if diverged <> [] || !warm_recompiles > 0 || !warm_mismatches > 0 then
      exit 1
  end
