(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation, plus ablations and wall-clock measurements of
   the optimizer itself.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig6    -- one table/figure
     (fig6 fig7 fig8 fig9 fig10 fig11 sec55 ablate speed)          *)

let optimizer_speed () =
  Harness.heading
    "Optimizer wall-clock (Bechamel): the paper claims O(re) fusion \
     and effectively-linear FIND-LOOP-STRUCTURE";
  let open Bechamel in
  let tomcatv = Suite.load "tomcatv" in
  let block =
    match Ir.Prog.blocks tomcatv with
    | _ :: big :: _ -> big
    | [ b ] -> b
    | [] -> failwith "tomcatv has no blocks"
  in
  let g = Core.Asdg.build block in
  let candidates = List.map fst (Ir.Prog.confined_arrays tomcatv) in
  let udvs =
    List.init 64 (fun i ->
        Support.Vec.of_list [ (i mod 3) - 1; (i mod 5) - 2 ])
  in
  let tests =
    [
      Test.make ~name:"asdg-build (tomcatv block)"
        (Staged.stage (fun () -> ignore (Core.Asdg.build block)));
      Test.make ~name:"fusion-for-contraction"
        (Staged.stage (fun () ->
             ignore (Core.Fusion.for_contraction ~candidates g)));
      Test.make ~name:"find-loop-structure (64 UDVs)"
        (Staged.stage (fun () ->
             ignore (Core.Loopstruct.find ~rank:2 udvs)));
      Test.make ~name:"full compile tomcatv @ c2+f3"
        (Staged.stage (fun () ->
             ignore
               (Compilers.Driver.compile_opts (Compilers.Driver.opts Compilers.Driver.C2F3) tomcatv)));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
      in
      let stats = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-36s %12.0f ns/run\n" name est
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        stats)
    tests

let sections =
  [
    ("fig6", Figures.fig6);
    ("fig7", Figures.fig7);
    ("fig8", Figures.fig8);
    ("fig9", Figures.fig9);
    ("fig10", Figures.fig10);
    ("fig11", Figures.fig11);
    ("sec55", Figures.sec55);
    ("ablate", Figures.ablate);
    ("spmd", Spmd_agree.section);
    ("plan", Plan_gap.section);
    ("native", Native_exec.section);
    ("fuzz", Fuzz_smoke.section);
    ("zapd", Zapd_load.section);
    ("lazy", Lazy_stream.section);
    ("speed", optimizer_speed);
  ]

let () =
  let bad_jobs v =
    Printf.eprintf "bad --jobs %s (want a positive integer)\n" v;
    exit 1
  in
  let set_jobs v =
    match int_of_string_opt v with
    | Some n when n >= 1 -> Harness.jobs := n
    | _ -> bad_jobs v
  in
  let rec parse acc = function
    | [] -> List.rev acc
    | "--" :: tl -> parse acc tl
    | "--json" :: tl ->
        Harness.json_mode := true;
        parse acc tl
    | "--tiny" :: tl ->
        Harness.tiny_mode := true;
        parse acc tl
    | "--jobs" :: v :: tl ->
        set_jobs v;
        parse acc tl
    | [ "--jobs" ] -> bad_jobs "(missing)"
    | a :: tl when String.length a > 7 && String.sub a 0 7 = "--jobs=" ->
        set_jobs (String.sub a 7 (String.length a - 7));
        parse acc tl
    | a :: tl -> parse (a :: acc) tl
  in
  let args = parse [] (List.tl (Array.to_list Sys.argv)) in
  match args with
  | [] -> List.iter (fun (_, f) -> f ()) sections
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name sections with
          | Some f -> f ()
          | None ->
              Printf.eprintf "unknown section %s (have: %s)\n" name
                (String.concat " " (List.map fst sections));
              exit 1)
        names
