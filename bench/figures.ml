(* Regeneration of every table and figure in the paper's evaluation.

   Absolute numbers come from our machine models, not the authors'
   1998 testbeds; EXPERIMENTS.md records the paper-vs-measured shape
   comparison for each experiment. *)

open Harness

let perf_levels =
  Compilers.Driver.[ F1; C1; F2; F3; C2; C2F3; C2F4 ]

let procs_axis = [ 1; 4; 16; 64 ]

(* ------------------------------------------------------------------ *)
(* Figure 6: commercial compiler capabilities                          *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  let table = Suite.Fragments.evaluate () in
  if !json_mode then
    List.iter
      (fun (caps : Compilers.Vendors.caps) ->
        List.iter
          (fun ((frag : Suite.Fragments.t), rows) ->
            json_row
              Obs.Json.
                [
                  ("fig", String "fig6");
                  ("compiler", String caps.Compilers.Vendors.vname);
                  ("fragment", Int frag.Suite.Fragments.id);
                  ("ok", Bool (List.assoc caps rows));
                ])
          table)
      Compilers.Vendors.all
  else begin
    heading "Figure 6: observed behavior of five array language compilers";
    Printf.printf "%-20s" "compiler";
    List.iter (fun i -> Printf.printf " (%d)" i) [ 1; 2; 3; 4; 5; 6; 7; 8 ];
    print_newline ();
    List.iter
      (fun (caps : Compilers.Vendors.caps) ->
        Printf.printf "%-20s" caps.Compilers.Vendors.vname;
        List.iter
          (fun ((_ : Suite.Fragments.t), rows) ->
            let ok = List.assoc caps rows in
            Printf.printf "  %s " (if ok then "Y" else "."))
          table;
        print_newline ())
      Compilers.Vendors.all;
    Printf.printf
      "\n(1)-(3) statement fusion; (4)-(5) compiler temporaries;\n\
       (6)-(7) user temporaries; (8) compiler/user trade-off.\n\
       'Y' = proper fused/contracted code produced.\n"
  end

(* ------------------------------------------------------------------ *)
(* Figure 7: static arrays contracted                                  *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  if not !json_mode then begin
    heading "Figure 7: static arrays contracted (compiler/user)";
    row "%-9s %22s %14s %9s %8s\n" "program" "w/o contraction (c/u)"
      "w/ contraction" "% change" "scalar"
  end;
  (* compile/count on the pool, print in benchmark order *)
  let data =
    Support.Pool.map ~domains:!Harness.jobs
      (fun (b : Suite.bench) ->
        let prog = Suite.program b in
        let nc, nu = Ir.Prog.static_array_counts prog in
        let c = compile ~level:Compilers.Driver.C2 prog in
        (b, nc, nu, Compilers.Driver.remaining_arrays c))
      Suite.all
  in
  List.iter
    (fun ((b : Suite.bench), nc, nu, left) ->
      let total = nc + nu in
      let pct =
        100.0 *. float_of_int (left - total) /. float_of_int total
      in
      if !json_mode then
        json_row
          Obs.Json.
            [
              ("fig", String "fig7");
              ("bench", String b.Suite.name);
              ("arrays_total", Int total);
              ("arrays_compiler", Int nc);
              ("arrays_user", Int nu);
              ("arrays_after", Int left);
              ("change_pct", Float pct);
              ( "scalar_paper",
                match b.Suite.scalar_arrays with
                | Some k -> Int k
                | None -> Null );
            ]
      else
        row "%-9s %13d (%d/%d) %14d %8.1f%% %8s\n" b.Suite.name total nc nu
          left pct
          (match b.Suite.scalar_arrays with
          | Some k -> string_of_int k
          | None -> "na"))
    data

(* ------------------------------------------------------------------ *)
(* Figure 8: memory usage and maximum problem size                     *)
(* ------------------------------------------------------------------ *)

(* Largest tile edge whose post-compilation footprint fits in [bytes];
   [cap] bounds the search for configurations using no array memory at
   all (EP after contraction). *)
let max_tile ~level ~bytes ~cap (b : Suite.bench) =
  let fits n =
    let prog = Suite.program ~tile:n b in
    let c = compile ~level prog in
    Exec.Interp.footprint_bytes c.Compilers.Driver.code <= bytes
  in
  if fits cap then None (* unbounded within the cap *)
  else begin
    let lo = ref 4 and hi = ref cap in
    (* invariant: fits lo, not (fits hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fits mid then lo := mid else hi := mid
    done;
    Some !lo
  end

let fig8 () =
  if not !json_mode then begin
    heading "Figure 8: effect of contraction on maximum problem size";
    row "%-9s %4s %4s %9s | %26s | %26s\n" "program" "lb" "la" "C-value"
      "T3E max tile  (% / %vol)" "SP-2 max tile  (% / %vol)"
  end;
  let machines = [ Machine.t3e; Machine.sp2 ] in
  (* the max-tile binary searches dominate — run them on the pool,
     print per benchmark in suite order *)
  let data =
    Support.Pool.map ~domains:!Harness.jobs
      (fun (b : Suite.bench) ->
        let prog = Suite.program b in
        let base = compile ~level:Compilers.Driver.Baseline prog in
        let c2 = compile ~level:Compilers.Driver.C2 prog in
        let lb = Compilers.Driver.remaining_arrays base in
        let la = Compilers.Driver.remaining_arrays c2 in
        let cap = if b.Suite.rank = 1 then 200_000_000 else 20_000 in
        let tiles =
          List.map
            (fun (m : Machine.t) ->
              let bytes = m.Machine.node_memory_bytes in
              let nb = max_tile ~level:Compilers.Driver.Baseline ~bytes ~cap b in
              let na = max_tile ~level:Compilers.Driver.C2 ~bytes ~cap b in
              (m, nb, na))
            machines
        in
        (b, lb, la, tiles))
      Suite.all
  in
  List.iter
    (fun ((b : Suite.bench), lb, la, tiles) ->
      let cval =
        if la = 0 then infinity
        else 100.0 *. float_of_int (lb - la) /. float_of_int la
      in
      let show (nb, na) =
        match (nb, na) with
        | Some nb, Some na ->
            let pct = 100.0 *. float_of_int (na - nb) /. float_of_int nb in
            let volb = float_of_int nb ** float_of_int b.Suite.rank in
            let vola = float_of_int na ** float_of_int b.Suite.rank in
            let pvol = 100.0 *. (vola -. volb) /. volb in
            Printf.sprintf "%7d ->%8d (%4.0f/%5.0f)" nb na pct pvol
        | Some nb, None -> Printf.sprintf "%7d ->     inf (inf)" nb
        | None, _ -> "unbounded"
      in
      if !json_mode then
        List.iter
          (fun ((m : Machine.t), nb, na) ->
            let opt = function Some n -> Obs.Json.Int n | None -> Obs.Json.Null in
            json_row
              Obs.Json.
                [
                  ("fig", String "fig8");
                  ("bench", String b.Suite.name);
                  ("machine", String m.Machine.name);
                  ("arrays_baseline", Int lb);
                  ("arrays_c2", Int la);
                  ("c_value", Float cval);
                  ("max_tile_baseline", opt nb);
                  ("max_tile_c2", opt na);
                ])
          tiles
      else
        let tile_of m =
          let _, nb, na =
            List.find (fun (m', _, _) -> m' == (m : Machine.t)) tiles
          in
          (nb, na)
        in
        row "%-9s %4d %4d %9s | %26s | %26s\n" b.Suite.name lb la
          (if cval = infinity then "inf" else Printf.sprintf "%.1f" cval)
          (show (tile_of Machine.t3e))
          (show (tile_of Machine.sp2)))
    data;
  if not !json_mode then
    Printf.printf
      "\nlb/la = live arrays before/after contraction; C = 100*(lb-la)/la\n\
       predicts the %% change in problem volume (paper Figure 8).\n"

(* ------------------------------------------------------------------ *)
(* Figures 9-11: runtime improvement over baseline                     *)
(* ------------------------------------------------------------------ *)

let perf_figure (m : Machine.t) =
  let fig =
    match m.Machine.name with
    | "Cray T3E" -> "fig9"
    | "IBM SP-2" -> "fig10"
    | _ -> "fig11"
  in
  if not !json_mode then
    heading
      (Printf.sprintf "Figure %s: %% improvement over baseline on the %s"
         (String.sub fig 3 (String.length fig - 3))
         m.Machine.name);
  (* the cache simulations dominate — one pool task per benchmark
     (baseline + every level), then the cheap per-procs communication
     recosting and all printing happen sequentially in suite order *)
  let data =
    Support.Pool.map ~domains:!Harness.jobs
      (fun (b : Suite.bench) ->
        let prog = Suite.program b in
        let compiled_of level = compile ~level prog in
        let base = compiled_of Compilers.Driver.Baseline in
        let base_comp = simulate m base in
        let level_data =
          List.map
            (fun level ->
              let c = compiled_of level in
              let comp = simulate m c in
              if comp.checksum <> base_comp.checksum then
                failwith
                  (Printf.sprintf "%s: %s changed the program's results!"
                     b.Suite.name
                     (Compilers.Driver.level_name level));
              (level, c, comp))
            perf_levels
        in
        (b, base, base_comp, level_data))
      Suite.all
  in
  List.iter
    (fun ((b : Suite.bench), base, base_comp, level_data) ->
      if not !json_mode then subheading b.Suite.name;
      if not !json_mode then begin
        row "%6s" "procs";
        List.iter
          (fun l -> row "%9s" (Compilers.Driver.level_name l))
          perf_levels;
        print_newline ()
      end;
      List.iter
        (fun procs ->
          let tb = measure_time m ~procs base_comp base in
          if not !json_mode then row "%6d" procs;
          List.iter
            (fun (level, c, comp) ->
              let t = measure_time m ~procs comp c in
              let pct = improvement_pct ~baseline:tb t in
              if !json_mode then
                json_row
                  Obs.Json.
                    [
                      ("fig", String fig);
                      ("machine", String m.Machine.name);
                      ("bench", String b.Suite.name);
                      ("level", String (Compilers.Driver.level_name level));
                      ("procs", Int procs);
                      ("improvement_pct", Float pct);
                    ]
              else row "%8.1f%%" pct)
            level_data;
          if not !json_mode then print_newline ())
        procs_axis)
    data

let fig9 () = perf_figure Machine.t3e
let fig10 () = perf_figure Machine.sp2
let fig11 () = perf_figure Machine.paragon

(* ------------------------------------------------------------------ *)
(* Section 5.5: interaction with communication optimization            *)
(* ------------------------------------------------------------------ *)

let sec55 () =
  heading
    "Section 5.5: slowdown when communication optimizations are \
     favored over fusion (c2+f3, 16 processors)";
  row "%-9s %12s %12s %12s\n" "program" "T3E" "SP-2" "Paragon";
  let procs = 16 in
  List.iter
    (fun (b : Suite.bench) ->
      let prog = Suite.program b in
      let ff =
        compile ~level:Compilers.Driver.C2F3 prog
      in
      let veto = Comm.Interact.favor_comm_veto ~procs prog in
      let fc =
        compile ~may_fuse:veto ~level:Compilers.Driver.C2F3
          prog
      in
      row "%-9s" b.Suite.name;
      List.iter
        (fun m ->
          let t_ff = measure_time m ~procs (simulate m ff) ff in
          let t_fc = measure_time m ~procs (simulate m fc) fc in
          row " %11.1f%%" (100.0 *. (t_fc -. t_ff) /. t_ff))
        Machine.all;
      print_newline ())
    Suite.all;
  Printf.printf
    "\npositive = favoring communication optimization over fusion for\n\
     contraction loses performance (the paper's conclusion).\n"

(* ------------------------------------------------------------------ *)
(* Ablations (beyond the paper's tables)                               *)
(* ------------------------------------------------------------------ *)

let ablate_reduction_fusion () =
  subheading "ablation: reduction fusion (EP, c2)";
  let prog = Suite.load "ep" in
  let with_rf = compile ~level:Compilers.Driver.C2 prog in
  let without =
    compile ~reduction_fusion:false
      ~level:Compilers.Driver.C2 prog
  in
  let m = Machine.t3e in
  let t_with = measure_time m ~procs:1 (simulate m with_rf) with_rf in
  let t_without = measure_time m ~procs:1 (simulate m without) without in
  row "with reduction fusion:    %2d arrays, %10.0f ns\n"
    (Compilers.Driver.remaining_arrays with_rf)
    t_with;
  row "without reduction fusion: %2d arrays, %10.0f ns  (%.1f%% slower)\n"
    (Compilers.Driver.remaining_arrays without)
    t_without
    (100.0 *. (t_without -. t_with) /. t_with)

let ablate_weight_order () =
  subheading "ablation: greedy weight ordering (fragment 8)";
  let frag =
    List.find (fun f -> f.Suite.Fragments.id = 8) Suite.Fragments.all
  in
  let _, stmts = Suite.Fragments.block frag in
  let g = Core.Asdg.build stmts in
  let cands_bad = [ "__t1"; "T1"; "T2" ] in
  let run order cands =
    let p = Core.Fusion.for_contraction ~order ~candidates:cands g in
    Core.Contraction.decide p ~candidates:cands
  in
  let by_weight = run `Weight cands_bad in
  let by_source = run `Source cands_bad in
  row "decreasing-weight order contracts: %d (%s)\n"
    (List.length by_weight)
    (String.concat ", " by_weight);
  row "adversarial source order contracts: %d (%s)\n"
    (List.length by_source)
    (String.concat ", " by_source)

(* A scanline kernel with the dependence shape the paper attributes to
   SP (§5.2): a full-size temporary consumed at an offset along one
   dimension.  Strict Definition-5 fusion cannot fuse producer and
   consumer (the flow UDV is non-null), so the paper's contraction
   leaves T allocated; sequential fusion + rank-reducing contraction
   (c2+p) shrinks it to a single row. *)
let linesweep_src =
  {|
program linesweep;
config n := 96;
config steps := 4;
region R = [1..n, 1..n];
var A, B, T : [0..n+1, 0..n+1];
scalar sum := 0.0;
export B, sum;
begin
  [0..n+1, 0..n+1] A := sin(0.1 * index1) * cos(0.07 * index2);
  for t := 1 to steps do
    [R] T := A * A + 0.5;
    [R] B := T + 0.5 * T@[0,-1];
    [R] A := B * 0.99;
  end;
  sum := +<< R B;
end.
|}

let ablate_partial_contraction () =
  subheading
    "ablation: contraction to lower-dimensional arrays (paper \
     \u{00a7}5.2 future work; sequential, 1 processor)";
  let m = Machine.t3e in
  let report name prog level =
    let c = compile ~level prog in
    let comp = simulate m c in
    let t = measure_time m ~procs:1 comp c in
    row "%-10s %-6s: %2d allocations, %9d bytes, %12.0f ns\n" name
      (Compilers.Driver.level_name level)
      (Compilers.Driver.remaining_arrays c)
      comp.footprint t;
    comp.checksum
  in
  (* SP itself: its self-stencil updates admit no rank reduction — the
     honest negative result *)
  let sp = Suite.load "sp" in
  let s1 = report "sp" sp Compilers.Driver.C2F3 in
  let s2 = report "sp" sp Compilers.Driver.C2P in
  if s1 <> s2 then failwith "c2+p changed SP's results";
  (* the scanline kernel: T contracts from n x n to one row *)
  let ls = Zap.Elaborate.compile_string linesweep_src in
  let s1 = report "linesweep" ls Compilers.Driver.C2F3 in
  let s2 = report "linesweep" ls Compilers.Driver.C2P in
  if s1 <> s2 then failwith "c2+p changed linesweep's results"

(* Statement merge (array operation synthesis, Hwang et al. — the
   related-work alternative, §6) vs this paper's fusion+contraction.
   Two kernels expose the trade:
   - [offset]: the temporary is consumed at nonzero offsets, so
     contraction is impossible (non-null flow UDV) but synthesis can
     still eliminate it — at the cost of duplicated computation;
   - [shared]: the temporary has two offset-0 consumers; contraction
     eliminates it for free, synthesis duplicates its computation. *)
let merge_kernel ~offset =
  let expensive = "sqrt(abs(sin(A) * cos(A@[0,1]) + 1.5))" in
  let uses =
    if offset then "T@[0,1] + T@[0,-1]" else "T * 1.5"
  in
  let second_use = if offset then "" else "  [R] C := T + B;\n" in
  (* the definition must cover the offset uses in the first kernel;
     in the shared kernel it shares the consumers' region so that
     contraction is applicable *)
  let def_region = if offset then "[1..n+1, 1..n+1]" else "[R]" in
  Printf.sprintf
    {|
program mergek;
config n := 64;
region R = [2..n, 2..n];
var A, B, C, T : [0..n+2, 0..n+2];
scalar s0;
export B, C;
begin
  [0..n+2, 0..n+2] A := 0.3 * index1 + 0.7 * index2;
  s0 := 0.0;   -- block boundary: keep the input out of the pipeline
  %s T := %s;
  [R] B := %s;
%s
end.
|}
    def_region expensive uses second_use

let ablate_merge_vs_contraction () =
  subheading
    "ablation: statement merge (array synthesis, related work \
     \u{00a7}6) vs fusion + contraction";
  let m = Machine.t3e in
  let report tag prog level =
    let c = compile ~level prog in
    let comp = simulate m c in
    let t = measure_time m ~procs:1 comp c in
    row "  %-26s %2d arrays %9d flops %12.0f ns\n" tag
      (Compilers.Driver.remaining_arrays c)
      comp.flops t;
    comp.checksum
  in
  List.iter
    (fun offset ->
      row "%s kernel:\n" (if offset then "offset-consumed" else "shared");
      let prog = Zap.Elaborate.compile_string (merge_kernel ~offset) in
      let merged, gone = Core.Merge.run ~max_uses:2 prog in
      let s1 = report "contraction (c2+f3)" prog Compilers.Driver.C2F3 in
      let s2 =
        report
          (Printf.sprintf "synthesis (merged %d) + c2" (List.length gone))
          merged Compilers.Driver.C2F3
      in
      if s1 <> s2 then failwith "merge changed results")
    [ true; false ]

(* The paper's central architectural claim: scalar-level optimization
   after scalarization cannot recover what array-level contraction
   achieves.  We hand the baseline scalarization to our model of a
   scalar back end (constant folding + CSE) and compare against
   array-level c2 — with and without the same back end behind it. *)
let ablate_backend_cannot_recover () =
  subheading
    "ablation: scalar back end (fold+CSE) vs array-level contraction \
     (tomcatv, T3E, 1 processor)";
  let prog = Suite.load "tomcatv" in
  let m = Machine.t3e in
  let report tag code =
    let hier =
      Cachesim.Cache.Hierarchy.create ~l1:m.Machine.l1 ?l2:m.Machine.l2 ()
    in
    let r =
      Exec.Interp.run
        ~trace:(fun ~addr ~write ->
          Cachesim.Cache.Hierarchy.access hier ~addr ~write)
        code
    in
    let cnt = Exec.Interp.counters r in
    let l1 = Cachesim.Cache.Hierarchy.l1_stats hier in
    let l2m =
      match Cachesim.Cache.Hierarchy.l2_stats hier with
      | Some s -> s.Cachesim.Cache.misses
      | None -> 0
    in
    let t =
      Machine.time_ns m
        {
          Machine.flops = cnt.Exec.Interp.flops;
          l1_accesses = l1.Cachesim.Cache.accesses;
          l1_misses = l1.Cachesim.Cache.misses;
          l2_misses = l2m;
          comm_ns = 0.0;
        }
    in
    row "  %-26s %2d arrays %9d flops %12.0f ns\n" tag
      (List.length code.Sir.Code.allocs)
      cnt.Exec.Interp.flops t;
    Exec.Interp.checksum r
  in
  let base =
    (compile ~level:Compilers.Driver.Baseline prog)
      .Compilers.Driver.code
  in
  let c2 =
    (compile ~level:Compilers.Driver.C2F3 prog)
      .Compilers.Driver.code
  in
  let s1 = report "baseline" base in
  let s2 = report "baseline + back end" (Sir.Simplify.program base) in
  let s3 = report "c2+f3" c2 in
  let s4 = report "c2+f3 + back end" (Sir.Simplify.program c2) in
  if not (s1 = s2 && s2 = s3 && s3 = s4) then
    failwith "back-end ablation changed results";
  row
    "  (the back end trims operations but allocations only move at the\n\
    \   array level: fusion/contraction must happen before \
     scalarization)\n"

let ablate () =
  heading "Ablations";
  ablate_reduction_fusion ();
  ablate_weight_order ();
  ablate_partial_contraction ();
  ablate_merge_vs_contraction ();
  ablate_backend_cannot_recover ()
