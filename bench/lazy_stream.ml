(* Runtime-fusion bench: streaming loops through the lazy frontend,
   cold vs warm plan cache.

   Three scenarios, each a loop that records the same trace *shape*
   with iteration-dependent constants and forces it: a 1-D 3-point
   stencil chain (greedy), a map-square + reduction (greedy), and a
   2-D 5-point stencil under the search planner.  Iteration 1 is the
   cold pass (the shape's one compile — and, under search, its one
   plan); iterations 2.. are the warm pass and must be served entirely
   from the engine's fingerprint-keyed cache.

   Three properties are load-bearing and fail the bench (exit 1):

   - correctness: every forced result is checksum-equal to
     Exec.Refinterp on the trace's direct lowering (the eager twin);
   - warm hit rate ≥ 90%: repeated shapes reuse the cached plan;
   - zero warm re-planning: the engine's compile/plan-computed
     counters do not advance after iteration 1, and the trace-shape
     fingerprint is identical across all iterations.

   With --json (and not --tiny) the section writes BENCH_lazy.json —
   wall_s is wall-clock and varies by machine; every other field is
   deterministic. *)

module T = Lazyarr.Trace
module Api = Service.Api

(* one iteration of each scenario: record the trace with constants
   depending on [t], force it, and return (lazy, reference) checksums *)

let stencil_iter ~n ctx t =
  let ft = float_of_int t in
  let r = Ir.Region.of_bounds [ (0, n - 1) ] in
  let src =
    T.gen ctx r
      Ir.Expr.(Binop (Mul, Const (1.0 +. (0.125 *. ft)), Binop (Add, Idx 1, Const ft)))
  in
  let left = T.shift [| -1 |] src in
  let right = T.shift [| 1 |] src in
  let s = T.zip_with (fun a b -> Ir.Expr.Binop (Ir.Expr.Add, a, b)) left right in
  let sm =
    T.map (fun x -> Ir.Expr.Binop (Ir.Expr.Mul, Ir.Expr.Const (0.25 /. ft), x)) s
  in
  let lazy_sum = T.checksum sm in
  let ref_sum =
    Exec.Refinterp.checksum (Exec.Refinterp.run (T.lower_direct ctx sm))
  in
  (lazy_sum, ref_sum)

let reduction_iter ~n ctx t =
  let ft = float_of_int t in
  let r = Ir.Region.of_bounds [ (0, n - 1) ] in
  let src =
    T.gen ctx r Ir.Expr.(Binop (Add, Binop (Mul, Const (0.001 *. ft), Idx 1), Const ft))
  in
  let sq = T.map (fun x -> Ir.Expr.Binop (Ir.Expr.Mul, x, x)) src in
  let sc = T.reduce Ir.Prog.Rsum sq in
  let lazy_sum = T.scalar_checksum sc in
  let ref_sum =
    Exec.Refinterp.checksum
      (Exec.Refinterp.run (T.lower_direct_scalar ctx sc))
  in
  (lazy_sum, ref_sum)

let stencil2d_iter ~n ctx t =
  let ft = float_of_int t in
  let r = Ir.Region.of_bounds [ (0, n - 1); (0, n - 1) ] in
  let src =
    T.gen ctx r
      Ir.Expr.(Binop (Add, Binop (Mul, Const ft, Idx 1), Binop (Mul, Const 0.5, Idx 2)))
  in
  let north = T.shift [| -1; 0 |] src in
  let south = T.shift [| 1; 0 |] src in
  let west = T.shift [| 0; -1 |] src in
  let east = T.shift [| 0; 1 |] src in
  let add a b = T.zip_with (fun x y -> Ir.Expr.Binop (Ir.Expr.Add, x, y)) a b in
  let s = add (add north south) (add west east) in
  let sm =
    T.map
      (fun x -> Ir.Expr.Binop (Ir.Expr.Mul, Ir.Expr.Const (0.25 +. (0.01 *. ft)), x))
      s
  in
  let lazy_sum = T.checksum sm in
  let ref_sum =
    Exec.Refinterp.checksum (Exec.Refinterp.run (T.lower_direct ctx sm))
  in
  (lazy_sum, ref_sum)

type pass = {
  scenario : string;
  phase : string;  (* "cold" | "warm" *)
  iters : int;
  flushes : int;
  hits : int;  (* engine cache deltas over the pass *)
  misses : int;
  hit_rate : float;
  compiles_computed : int;
  plans_computed : int;
  wall_s : float;
  checksum_ok : bool;
}

let pass_json p =
  Obs.Json.Obj
    [
      ("scenario", Obs.Json.String p.scenario);
      ("phase", Obs.Json.String p.phase);
      ("iters", Obs.Json.Int p.iters);
      ("flushes", Obs.Json.Int p.flushes);
      ("cache_hits", Obs.Json.Int p.hits);
      ("cache_misses", Obs.Json.Int p.misses);
      ("hit_rate", Obs.Json.Float p.hit_rate);
      ("compiles_computed", Obs.Json.Int p.compiles_computed);
      ("plans_computed", Obs.Json.Int p.plans_computed);
      ("wall_s", Obs.Json.Float p.wall_s);
      ("checksum_ok", Obs.Json.Bool p.checksum_ok);
    ]

let section () =
  Harness.heading
    "lazy runtime fusion: streaming trace shapes through the plan cache, \
     cold vs warm";
  let tiny = !Harness.tiny_mode in
  let n1 = if tiny then 1024 else 65536 in
  let n2 = if tiny then 16 else 96 in
  let iters = if tiny then 4 else 12 in
  let scenarios =
    [
      ("stencil", Api.Greedy, stencil_iter ~n:n1);
      ("reduction", Api.Greedy, reduction_iter ~n:n1);
      ("stencil2d-search", Api.Search, stencil2d_iter ~n:n2);
    ]
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let passes =
    List.concat_map
      (fun (name, plan, iter_fn) ->
        let ctx = T.create ~name ~plan () in
        let run_range phase lo hi =
          let s0 = T.stats ctx in
          let t0 = Unix.gettimeofday () in
          let ok = ref true in
          for t = lo to hi do
            let lazy_sum, ref_sum = iter_fn ctx t in
            if lazy_sum <> ref_sum then begin
              ok := false;
              fail "%s: iteration %d lazy checksum %s <> reference %s" name t
                lazy_sum ref_sum
            end
          done;
          let wall_s = Unix.gettimeofday () -. t0 in
          let s1 = T.stats ctx in
          let hits = s1.T.cache_hits - s0.T.cache_hits in
          let misses = s1.T.cache_misses - s0.T.cache_misses in
          let looked = hits + misses in
          {
            scenario = name;
            phase;
            iters = hi - lo + 1;
            flushes = s1.T.flushes - s0.T.flushes;
            hits;
            misses;
            hit_rate =
              (if looked > 0 then float_of_int hits /. float_of_int looked
               else 0.0);
            compiles_computed = s1.T.compiles_computed - s0.T.compiles_computed;
            plans_computed = s1.T.plans_computed - s0.T.plans_computed;
            wall_s;
            checksum_ok = !ok;
          }
        in
        let cold = run_range "cold" 1 1 in
        let fp_cold = (T.stats ctx).T.last_fingerprint in
        let warm = run_range "warm" 2 iters in
        let fp_warm = (T.stats ctx).T.last_fingerprint in
        if warm.hit_rate < 0.9 then
          fail "%s: warm hit rate %.2f < 0.90" name warm.hit_rate;
        if warm.compiles_computed > 0 || warm.plans_computed > 0 then
          fail "%s: warm pass recompiled (%d compiles, %d plans computed)" name
            warm.compiles_computed warm.plans_computed;
        if fp_cold <> fp_warm then
          fail "%s: trace-shape fingerprint drifted %s -> %s" name
            (Option.value ~default:"-" fp_cold)
            (Option.value ~default:"-" fp_warm);
        [ cold; warm ])
      scenarios
  in
  if !Harness.json_mode then begin
    List.iter
      (fun p ->
        Harness.json_row
          [ ("section", Obs.Json.String "lazy"); ("row", pass_json p) ])
      passes;
    if not tiny then begin
      let doc =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.String "fuzion/bench-lazy/1");
            ( "note",
              Obs.Json.String
                "wall-clock measurement: wall_s varies by machine; \
                 checksums, counters and hit rates are deterministic" );
            ("rows", Obs.Json.List (List.map pass_json passes));
          ]
      in
      let oc = open_out "BENCH_lazy.json" in
      output_string oc (Format.asprintf "%a@." Obs.Json.pp doc);
      close_out oc;
      Printf.eprintf "wrote BENCH_lazy.json (%d rows)\n" (List.length passes)
    end
  end
  else begin
    Harness.row "%-18s %-5s %6s %8s %6s %6s %9s %9s %6s %8s %9s\n" "scenario"
      "phase" "iters" "flushes" "hits" "miss" "hit-rate" "compiles" "plans"
      "wall s" "checksums";
    List.iter
      (fun p ->
        Harness.row "%-18s %-5s %6d %8d %6d %6d %8.1f%% %9d %6d %8.3f %9s\n"
          p.scenario p.phase p.iters p.flushes p.hits p.misses
          (100.0 *. p.hit_rate) p.compiles_computed p.plans_computed p.wall_s
          (if p.checksum_ok then "ok" else "MISMATCH"))
      passes
  end;
  match !failures with
  | [] -> ()
  | msgs ->
      List.iter
        (fun m -> Printf.eprintf "lazy bench FAILED: %s\n" m)
        (List.rev msgs);
      exit 1
