(* zapc — the zap array-language compiler driver.

   Compiles a zap program (a file, or a built-in benchmark via
   --bench), applies the requested optimization level, and can dump
   the array IR, the fusion/contraction plan, or the generated scalar
   code; run the program through the instrumented interpreter; and
   report modeled performance on one of the paper's machines.

   All failures flow through [Obs.Diagnostic.t] and are rendered
   uniformly by cmdliner; --trace streams the pass-span tree and
   optimizer events as they happen, and --stats json:FILE dumps a
   machine-readable compile report (see docs/observability.md). *)

open Cmdliner
module Diag = Obs.Diagnostic

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Result-based input handling                                         *)
(* ------------------------------------------------------------------ *)

(* Zap frontend exceptions → diagnostics carrying the input name and
   line. *)
let catching_zap ~input f =
  match f () with
  | v -> Ok v
  | exception Zap.Elaborate.Error (line, m) ->
      Error (Diag.error ~loc:(input, line) ~phase:"elaborate" m)
  | exception Zap.Parser.Error (line, m) ->
      Error (Diag.error ~loc:(input, line) ~phase:"parse" m)
  | exception Zap.Lexer.Error (line, m) ->
      Error (Diag.error ~loc:(input, line) ~phase:"lex" m)
  | exception Sys_error m -> Error (Diag.error ~phase:"cli" m)

let read_program bench file config tile =
  match (bench, file) with
  | Some name, None -> (
      match Suite.by_name name with
      | Some b ->
          catching_zap ~input:("--bench " ^ name) (fun () ->
              Suite.program ?tile ~config b)
      | None ->
          Error
            (Diag.errorf ~phase:"cli" "unknown benchmark %S (have: %s)" name
               (String.concat ", "
                  (List.map (fun b -> b.Suite.name) Suite.all))))
  | None, Some path ->
      let config =
        match tile with Some t -> ("n", float_of_int t) :: config | None -> config
      in
      catching_zap ~input:path (fun () -> Zap.Elaborate.compile_file ~config path)
  | Some _, Some _ ->
      Error (Diag.error ~phase:"cli" "give either a file or --bench, not both")
  | None, None ->
      Error
        (Diag.error ~phase:"cli" "nothing to compile: give a file or --bench NAME")

let parse_config kvs =
  List.fold_left
    (fun acc kv ->
      let* acc = acc in
      match String.index_opt kv '=' with
      | Some i -> (
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          match float_of_string_opt v with
          | Some f -> Ok ((k, f) :: acc)
          | None ->
              Error
                (Diag.errorf ~phase:"cli"
                   "bad --config %S (value %S is not a number)" kv v))
      | None ->
          Error (Diag.errorf ~phase:"cli" "bad --config %S (want name=value)" kv))
    (Ok []) kvs
  |> Result.map List.rev

let parse_level name =
  match Compilers.Driver.level_of_name name with
  | Some l -> Ok l
  | None ->
      Error
        (Diag.errorf ~phase:"cli"
           "unknown level %S (baseline, f1, c1, f2, f3, c2, c2+f3, c2+f4, \
            c2+p; '+' may be omitted)"
           name)

let parse_plan = function
  | "greedy" -> Ok `Greedy
  | "search" -> Ok `Search
  | other ->
      Error (Diag.errorf ~phase:"cli" "unknown --plan %S (greedy|search)" other)

let parse_machine name =
  match String.lowercase_ascii name with
  | "t3e" -> Ok Machine.t3e
  | "sp2" | "sp-2" -> Ok Machine.sp2
  | "paragon" -> Ok Machine.paragon
  | other ->
      Error (Diag.errorf ~phase:"cli" "unknown machine %S (t3e|sp2|paragon)" other)

(* --stats SPEC: "json:FILE", "text:FILE", or the bare format name
   (destination defaults to stdout, spelled "-"). *)
let parse_stats = function
  | None -> Ok None
  | Some spec ->
      let fmt, dest =
        match String.index_opt spec ':' with
        | Some i ->
            ( String.sub spec 0 i,
              String.sub spec (i + 1) (String.length spec - i - 1) )
        | None -> (spec, "-")
      in
      if fmt = "json" || fmt = "text" then Ok (Some (fmt, dest))
      else
        Error
          (Diag.errorf ~phase:"cli"
             "bad --stats %S (want json:FILE or text:FILE, FILE '-' for stdout)"
             spec)

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let dump_plan (c : Compilers.Driver.compiled) =
  List.iteri
    (fun i (bp : Sir.Scalarize.block_plan) ->
      Format.printf "--- block %d ---@." i;
      Format.printf "%a@." Core.Partition.pp bp.Sir.Scalarize.partition;
      List.iter
        (fun (x, shape) ->
          Format.printf "contract %s -> %s@." x
            (Core.Contraction.shape_name shape))
        bp.Sir.Scalarize.contracted;
      List.iter
        (fun (ri, rep) ->
          Format.printf "reduction %d fused into cluster P%d@." ri rep)
        bp.Sir.Scalarize.absorbed)
    c.Compilers.Driver.plan

let stats_json ?spmd ?plan prog level (c : Compilers.Driver.compiled) report =
  let open Obs.Json in
  let nc, nu = Compilers.Driver.contracted_counts c in
  let base =
    [
      ("schema", String "zapc/compile-report/1");
      ("program", String prog.Ir.Prog.name);
      ("level", String (Compilers.Driver.level_name level));
      ( "arrays",
        Obj
          [
            ("total", Int (List.length prog.Ir.Prog.arrays));
            ("contracted_compiler", Int nc);
            ("contracted_user", Int nu);
            ("remaining", Int (Compilers.Driver.remaining_arrays c));
          ] );
      ( "contracted",
        List
          (List.map
             (fun (x, shape) ->
               Obj
                 [
                   ("array", String x);
                   ("shape", String (Core.Contraction.shape_name shape));
                 ])
             c.Compilers.Driver.contracted) );
      ("footprint_bytes", Int (Exec.Interp.footprint_bytes c.Compilers.Driver.code));
    ]
  in
  let base =
    match spmd with
    | Some (machine, r) -> base @ [ ("spmd", Spmd.report_json ~machine r) ]
    | None -> base
  in
  let base =
    match plan with
    | Some p -> base @ [ ("plan", Plan.Driver.provenance_json p) ]
    | None -> base
  in
  match Obs.report_to_json report with
  | Obj fields -> Obj (base @ fields)
  | other -> Obj (base @ [ ("report", other) ])

let write_stats ?spmd ?plan (fmt, dest) prog level c report =
  let text =
    match fmt with
    | "json" ->
        Obs.Json.to_string (stats_json ?spmd ?plan prog level c report) ^ "\n"
    | _ -> Format.asprintf "%a" Obs.pp_report report
  in
  if dest = "-" then begin
    print_string text;
    Ok ()
  end
  else
    match open_out dest with
    | oc ->
        output_string oc text;
        close_out oc;
        Ok ()
    | exception Sys_error m -> Error (Diag.error ~phase:"cli" m)

let run_report ~quiet machine procs spmd (c : Compilers.Driver.compiled) =
  let* m = parse_machine machine in
  let cfg = { Comm.Perf.machine = m; procs; comm = Comm.Model.all_on } in
  let r = Comm.Perf.measure cfg c in
  if not quiet then
    Printf.printf
    "run on %s x%d: time %.3f ms (comp %.3f, comm %.3f)\n\
    \  flops %d  loads %d  stores %d  L1 miss %.2f%%%s\n\
    \  messages %d (%d bytes)  checksum %s\n"
    m.Machine.name procs
    (r.Comm.Perf.time_ns /. 1e6)
    (r.Comm.Perf.comp_ns /. 1e6)
    (r.Comm.Perf.comm_ns /. 1e6)
    r.Comm.Perf.flops r.Comm.Perf.loads r.Comm.Perf.stores
    (100.0 *. Cachesim.Cache.miss_rate r.Comm.Perf.l1)
    (match r.Comm.Perf.l2 with
    | Some l2 ->
        Printf.sprintf "  L2 miss %.2f%%"
          (100.0 *. Cachesim.Cache.miss_rate l2)
    | None -> "")
    r.Comm.Perf.messages r.Comm.Perf.msg_bytes r.Comm.Perf.checksum;
  if not spmd then Ok None
  else
    match
      Spmd.execute
        { Spmd.machine = m; procs; opts = Comm.Model.all_on; cachesim = true }
        c
    with
    | s ->
        let agree =
          if
            String.equal s.Spmd.checksum r.Comm.Perf.checksum
            && s.Spmd.charged_messages = r.Comm.Perf.messages
            && s.Spmd.charged_bytes = r.Comm.Perf.msg_bytes
          then "matches model"
          else "DIVERGES from model"
        in
        if not quiet then
          Printf.printf
          "spmd on %s x%d: time %.3f ms over %d supersteps (%s)\n\
          \  charged %d messages (%d bytes)  wire %d messages (%d bytes)\n\
          \  ghost fills %d  unmodeled %d  reduction messages %d%s\n\
          \  checksum %s\n"
          m.Machine.name procs
          (s.Spmd.time_ns /. 1e6)
          s.Spmd.supersteps agree s.Spmd.charged_messages s.Spmd.charged_bytes
          s.Spmd.wire_messages s.Spmd.wire_bytes s.Spmd.ghost_fills
          s.Spmd.unmodeled_exchanges s.Spmd.reduction_messages
          (match s.Spmd.l1 with
          | Some l1 ->
              Printf.sprintf "  L1 miss %.2f%%"
                (100.0 *. Cachesim.Cache.miss_rate l1)
          | None -> "")
          s.Spmd.checksum;
        Ok (Some (m, s))
    | exception Spmd.Unsupported msg ->
        Error (Diag.errorf ~phase:"spmd" "unsupported: %s" msg)
    | exception Spmd.Runtime_error msg -> Error (Diag.error ~phase:"spmd" msg)

(* ------------------------------------------------------------------ *)
(* Differential fuzzing (--fuzz)                                       *)
(* ------------------------------------------------------------------ *)

(* Generate N random programs from --seed and push each through every
   executor (see Fuzz.Oracle).  The campaign fans out over --jobs
   domains (Fuzz.Campaign), then divergences are printed, shrunk and
   written to --fuzz-out sequentially in case order — so the output is
   byte-identical at every --jobs value.  Any failure makes the run
   exit nonzero. *)
let run_fuzz ~n ~seed ~jobs ~out ~machine =
  let* machine = parse_machine machine in
  let cfg = { Fuzz.Oracle.default with Fuzz.Oracle.machine } in
  let* () =
    if Sys.file_exists out then
      if Sys.is_directory out then Ok ()
      else Error (Diag.errorf ~phase:"fuzz" "--fuzz-out %s is not a directory" out)
    else
      match Sys.mkdir out 0o755 with
      | () -> Ok ()
      | exception Sys_error m -> Error (Diag.error ~phase:"fuzz" m)
  in
  let cases = Fuzz.Campaign.run ~cfg ~jobs ~n ~seed:(Int64.of_int seed) () in
  let skipped = Fuzz.Campaign.skipped_runs cases in
  let divergent = Fuzz.Campaign.divergent cases in
  let failures = List.length divergent in
  List.iter
    (fun (c : Fuzz.Campaign.case) ->
      Printf.printf "case %d/%d (seed %d) DIVERGED:\n%s\n" c.Fuzz.Campaign.index
        n seed
        (Fuzz.Oracle.to_string c.Fuzz.Campaign.report);
      let fcfg = Fuzz.Oracle.focus c.Fuzz.Campaign.report cfg in
      let still_fails q = not (Fuzz.Oracle.ok (Fuzz.Oracle.run ~cfg:fcfg q)) in
      let small = Fuzz.Shrink.run ~check:still_fails c.Fuzz.Campaign.program in
      let final = Fuzz.Oracle.run ~cfg small in
      let backends =
        String.concat ", " (List.map fst (Fuzz.Oracle.divergences final))
      in
      let path =
        Filename.concat out
          (Printf.sprintf "fuzz-seed%d-case%d.zir" seed c.Fuzz.Campaign.index)
      in
      let comment =
        Printf.sprintf "zapc --fuzz: seed %d case %d\ndiverging: %s" seed
          c.Fuzz.Campaign.index backends
      in
      Fuzz.Repro.save ~path ~comment small;
      Printf.printf "shrunk repro written to %s (diverging: %s)\n%s\n" path
        backends
        (Fuzz.Oracle.to_string final))
    divergent;
  Printf.printf "fuzz: %d cases, seed %d: %d divergence%s%s\n" n seed failures
    (if failures = 1 then "" else "s")
    (if skipped > 0 then
       Printf.sprintf " (%d backend runs skipped)" skipped
     else "");
  if failures = 0 then Ok ()
  else
    Error
      (Diag.errorf ~phase:"fuzz" "%d of %d cases diverged (repros in %s)"
         failures n out)

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

(* --list-levels: the full ladder zapc accepts, paper spelling then
   the internal (plus-free) one, one level per line. *)
let list_levels () =
  List.iter
    (fun l ->
      let paper = Compilers.Driver.level_name l in
      let internal = String.concat "" (String.split_on_char '+' paper) in
      Printf.printf "%s %s\n" paper internal)
    (Compilers.Driver.all_levels @ [ Compilers.Driver.C2P ])

let main bench file level config tile merge simplify dump_ir dump_plan_f
    dump_c emit_c run machine procs spmd trace stats plan list_levels_f fuzz
    seed fuzz_out jobs =
  let result =
    if list_levels_f then Ok (list_levels ())
    else
    match fuzz with
    | Some n -> run_fuzz ~n ~seed ~jobs ~out:fuzz_out ~machine
    | None ->
    let* stats = parse_stats stats in
    let recorder =
      if trace || stats <> None then
        let sink =
          if trace then Some (Obs.text_sink Format.err_formatter) else None
        in
        Some (Obs.create ?sink ())
      else None
    in
    let in_scope f =
      match recorder with Some r -> Obs.run r f | None -> f ()
    in
    in_scope @@ fun () ->
    (* stdout carries exactly the JSON report when it is the stats
       destination: keep the human summary out of the stream *)
    let quiet = stats = Some ("json", "-") in
    let* config = parse_config config in
    let* prog = read_program bench file config tile in
    let prog =
      if merge then begin
        let prog', gone = Core.Merge.run prog in
        if gone <> [] && not quiet then
          Printf.printf "statement merge eliminated: %s\n"
            (String.concat ", " gone);
        prog'
      end
      else prog
    in
    let* level = parse_level level in
    let* plan_mode = parse_plan plan in
    let* c, provenance =
      match plan_mode with
      | `Greedy ->
          let* c = Compilers.Driver.compile ~level prog in
          Ok (c, None)
      | `Search ->
          let* m = parse_machine machine in
          let cost =
            Plan.Cost.create
              { Plan.Cost.machine = m; procs; opts = Comm.Model.all_on }
              prog
          in
          let search = { Plan.Search.default with Plan.Search.jobs } in
          let* c, prov = Plan.Driver.compile ~search ~cost prog in
          Ok (c, Some prov)
    in
    let level = c.Compilers.Driver.level in
    let c =
      if simplify then
        Obs.span "simplify" (fun () ->
            { c with Compilers.Driver.code = Sir.Simplify.program c.Compilers.Driver.code })
      else c
    in
    if dump_ir then Format.printf "%a@." Ir.Prog.pp prog;
    if dump_plan_f then dump_plan c;
    if dump_c then Format.printf "%a@." Sir.Code.pp_c c.Compilers.Driver.code;
    let* () =
      match emit_c with
      | Some path -> (
          match open_out path with
          | oc ->
              output_string oc (Sir.Emit_c.to_string c.Compilers.Driver.code);
              close_out oc;
              if not quiet then
                Printf.printf "wrote %s (compile with: cc -O2 %s -lm)\n" path
                  path;
              Ok ()
          | exception Sys_error m -> Error (Diag.error ~phase:"cli" m))
      | None -> Ok ()
    in
    if not quiet then begin
      let nc, nu = Compilers.Driver.contracted_counts c in
      Printf.printf
        "%s @ %s: %d statements-of-arrays, contracted %d (%d compiler / %d \
         user), %d allocations remain, %d bytes\n"
        prog.Ir.Prog.name
        (Compilers.Driver.level_name level)
        (List.length prog.Ir.Prog.arrays)
        (nc + nu) nc nu
        (Compilers.Driver.remaining_arrays c)
        (Exec.Interp.footprint_bytes c.Compilers.Driver.code);
      match provenance with
      | Some p ->
          Printf.printf
            "plan %s on %s x%d: greedy %.3f ms, search %.3f ms%s\n"
            p.Plan.Driver.strategy p.Plan.Driver.machine p.Plan.Driver.procs
            (p.Plan.Driver.greedy_total_ns /. 1e6)
            (p.Plan.Driver.search_total_ns /. 1e6)
            (if p.Plan.Driver.fallback then " (kept greedy)" else "")
      | None -> ()
    end;
    let* spmd_report =
      if run then run_report ~quiet machine procs spmd c else Ok None
    in
    match (recorder, stats) with
    | Some r, Some spec ->
        write_stats ?spmd:spmd_report ?plan:provenance spec prog level c
          (Obs.report r)
    | _ -> Ok ()
  in
  Result.map_error (fun d -> `Msg (Diag.to_string d)) result

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"NAME" ~doc:"Compile a built-in benchmark.")

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.zap")

let level_arg =
  Arg.(
    value & opt string "c2+f3"
    & info [ "level"; "O" ] ~docv:"LEVEL"
        ~doc:
          "Optimization level: baseline, f1, c1, f2, f3, c2, c2+f3, \
           c2+f4, or c2+p (the '+' may be omitted: c2f3).")

let config_arg =
  Arg.(
    value & opt_all string []
    & info [ "config"; "c" ] ~docv:"NAME=VALUE"
        ~doc:"Override a config constant (repeatable).")

let tile_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tile" ] ~docv:"N" ~doc:"Override the tile-edge config constant.")

let merge_arg =
  Arg.(
    value & flag
    & info [ "merge" ]
        ~doc:
          "Run statement merge (array operation synthesis) before the            optimizer.")

let simplify_arg =
  Arg.(
    value & flag
    & info [ "simplify" ]
        ~doc:
          "Run the model scalar back end (constant folding + CSE) on the            generated code.")

let dump_ir_arg =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the array-level IR.")

let dump_plan_arg =
  Arg.(
    value & flag
    & info [ "dump-plan" ]
        ~doc:"Print the fusion partition and contraction decisions.")

let dump_c_arg =
  Arg.(
    value & flag
    & info [ "dump-c" ] ~doc:"Print the generated scalar code as C.")

let emit_c_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-c" ] ~docv:"FILE.c"
        ~doc:
          "Write a complete, runnable C translation unit that prints the            result digest (the differential-test back end).")

let run_arg =
  Arg.(
    value & flag
    & info [ "run" ] ~doc:"Execute and report modeled performance.")

let machine_arg =
  Arg.(
    value & opt string "t3e"
    & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc:"t3e, sp2 or paragon.")

let procs_arg =
  Arg.(value & opt int 1 & info [ "procs"; "p" ] ~docv:"P" ~doc:"Processors.")

let spmd_arg =
  Arg.(
    value & flag
    & info [ "spmd" ]
        ~doc:
          "With $(b,--run): also execute the program on a simulated \
           processor grid (one evaluator per processor, explicit border \
           exchanges) and report the executed counters next to the \
           modeled ones.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Stream the pass-span tree (with wall-clock timings) and \
           optimizer events to stderr as compilation proceeds.")

let stats_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats" ] ~docv:"FMT:FILE"
        ~doc:
          "Write a compile report: $(b,json:FILE) for the machine-readable \
           schema (per-pass timings, fusion/contraction counters with \
           rejected-merge reasons), $(b,text:FILE) for a human-readable \
           summary.  FILE $(b,-) writes to stdout (and, for json, \
           suppresses the usual summary line).")

let plan_arg =
  Arg.(
    value & opt string "greedy"
    & info [ "plan" ] ~docv:"STRATEGY"
        ~doc:
          "Fusion planning strategy: $(b,greedy) (the paper's level \
           ladder, default) or $(b,search) (branch-and-bound over fusion \
           partitions against the unified cost model for \
           $(b,--machine)/$(b,--procs); never worse than greedy under \
           the model; provenance lands in $(b,--stats json)).")

let list_levels_arg =
  Arg.(
    value & flag
    & info [ "list-levels" ]
        ~doc:
          "Print the optimization-level ladder (paper spelling, then the \
           internal plus-free spelling, one level per line) and exit.")

let fuzz_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuzz" ] ~docv:"N"
        ~doc:
          "Differential fuzzing: generate $(docv) random programs from \
           $(b,--seed) and run each through the reference interpreter, \
           every optimization level, the search planner, the SPMD engine \
           and (when $(b,cc) is installed) the emitted C, comparing result \
           digests.  Diverging cases are shrunk and written to \
           $(b,--fuzz-out) as self-contained repros; exits nonzero if any \
           case diverges.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"S"
        ~doc:"PRNG seed for $(b,--fuzz); same seed, same programs.")

let fuzz_out_arg =
  Arg.(
    value & opt string "."
    & info [ "fuzz-out" ] ~docv:"DIR"
        ~doc:"Directory for shrunk $(b,--fuzz) repros (created if missing).")

let jobs_arg =
  Arg.(
    value
    & opt int (Support.Pool.default_domains ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,--fuzz) campaigns and $(b,--plan search) \
           candidate costing (default: the machine's recommended domain \
           count).  Results are deterministic: output is byte-identical \
           at every $(docv), only the wall-clock changes.")

let cmd =
  let doc =
    "array-level fusion and contraction compiler (PLDI'98 reproduction)"
  in
  Cmd.v
    (Cmd.info "zapc" ~version:"1.0" ~doc)
    Term.(
      term_result ~usage:false
        (const main $ bench_arg $ file_arg $ level_arg $ config_arg
       $ tile_arg $ merge_arg $ simplify_arg $ dump_ir_arg $ dump_plan_arg
       $ dump_c_arg $ emit_c_arg $ run_arg $ machine_arg $ procs_arg
       $ spmd_arg $ trace_arg $ stats_arg $ plan_arg $ list_levels_arg
       $ fuzz_arg $ seed_arg $ fuzz_out_arg $ jobs_arg))

let () = exit (Cmd.eval cmd)
