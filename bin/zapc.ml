(* zapc — the zap array-language compiler driver.

   Since the zapd service landed, zapc is a thin client of the typed
   request API (Service.Api): the command line builds one
   [Api.request], hands it either to an in-process [Service.Engine]
   (the default) or to a running zapd daemon over a Unix-domain socket
   (--connect), and renders the [Api.response].  Both paths produce
   byte-identical output because both go through the same engine code
   and the same renderer — the CLI owns no compilation logic of its
   own anymore.

   All failures flow through [Obs.Diagnostic.t] and are rendered
   uniformly by cmdliner; --trace streams the pass-span tree and
   optimizer events as they happen, and --stats json:FILE dumps a
   machine-readable compile report (see docs/observability.md). *)

open Cmdliner
module Diag = Obs.Diagnostic
module Api = Service.Api

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Argument parsing                                                    *)
(* ------------------------------------------------------------------ *)

let parse_config kvs =
  List.fold_left
    (fun acc kv ->
      let* acc = acc in
      match String.index_opt kv '=' with
      | Some i -> (
          let k = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          match float_of_string_opt v with
          | Some f -> Ok ((k, f) :: acc)
          | None ->
              Error
                (Diag.errorf ~phase:"cli"
                   "bad --config %S (value %S is not a number)" kv v))
      | None ->
          Error (Diag.errorf ~phase:"cli" "bad --config %S (want name=value)" kv))
    (Ok []) kvs
  |> Result.map List.rev

let parse_plan name =
  match Api.plan_mode_of_name name with
  | Some m -> Ok m
  | None ->
      Error
        (Diag.errorf ~phase:"cli" "unknown --plan %S (greedy|search|ilp)" name)

(* --stats SPEC: "json:FILE", "text:FILE", or the bare format name
   (destination defaults to stdout, spelled "-"). *)
let parse_stats = function
  | None -> Ok None
  | Some spec ->
      let fmt, dest =
        match String.index_opt spec ':' with
        | Some i ->
            ( String.sub spec 0 i,
              String.sub spec (i + 1) (String.length spec - i - 1) )
        | None -> (spec, "-")
      in
      if fmt = "json" || fmt = "text" then Ok (Some (fmt, dest))
      else
        Error
          (Diag.errorf ~phase:"cli"
             "bad --stats %S (want json:FILE or text:FILE, FILE '-' for stdout)"
             spec)

(* The request's source: a named benchmark, or the file's text (read
   here so the daemon never touches the client's filesystem). *)
let read_source bench file config tile =
  match (bench, file) with
  | Some name, None -> (Ok (Api.Bench { name; tile }), config)
  | None, Some path ->
      let config =
        match tile with Some t -> ("n", float_of_int t) :: config | None -> config
      in
      ( (match In_channel.with_open_bin path In_channel.input_all with
        | text -> Ok (Api.Text { name = path; text })
        | exception Sys_error m -> Error (Diag.error ~phase:"cli" m)),
        config )
  | Some _, Some _ ->
      (Error (Diag.error ~phase:"cli" "give either a file or --bench, not both"),
       config)
  | None, None ->
      ( Error
          (Diag.error ~phase:"cli"
             "nothing to compile: give a file or --bench NAME"),
        config )

(* ------------------------------------------------------------------ *)
(* Dispatch: in-process engine, or a zapd daemon via --connect         *)
(* ------------------------------------------------------------------ *)

let dispatch ~connect ~jobs req =
  match connect with
  | Some socket -> Service.Client.roundtrip ~socket req
  | None -> Ok (Service.Engine.handle (Service.Engine.create ~jobs ()) req)

(* ------------------------------------------------------------------ *)
(* Response rendering                                                  *)
(* ------------------------------------------------------------------ *)

let native_json (n : Api.native_summary) =
  let open Obs.Json in
  Obj
    [
      ("checksum", String n.Api.native_checksum);
      ("wall_ns", Int (Int64.to_int n.Api.native_wall_ns));
      ("compiler", String n.Api.native_compiler);
      ("units", Int n.Api.native_units);
      ("matches", Bool n.Api.native_matches);
    ]

let stats_json ?spmd ?native ?plan (s : Api.summary) report =
  let open Obs.Json in
  let base =
    [
      ("schema", String "zapc/compile-report/1");
      ("program", String s.Api.program);
      ("level", String s.Api.level);
      ( "arrays",
        Obj
          [
            ("total", Int s.Api.arrays_total);
            ("contracted_compiler", Int s.Api.contracted_compiler);
            ("contracted_user", Int s.Api.contracted_user);
            ("remaining", Int s.Api.remaining);
          ] );
      ( "contracted",
        List
          (List.map
             (fun (x, shape) ->
               Obj [ ("array", String x); ("shape", String shape) ])
             s.Api.contracted) );
      ("footprint_bytes", Int s.Api.footprint_bytes);
    ]
  in
  let base = match spmd with Some j -> base @ [ ("spmd", j) ] | None -> base in
  let base =
    match native with
    | Some n -> base @ [ ("native", native_json n) ]
    | None -> base
  in
  let base =
    match plan with
    | Some p -> base @ [ ("plan", Plan.Driver.provenance_json p) ]
    | None -> base
  in
  match Obs.report_to_json report with
  | Obj fields -> Obj (base @ fields)
  | other -> Obj (base @ [ ("report", other) ])

let write_stats ?spmd ?native ?plan (fmt, dest) summary report =
  let text =
    match fmt with
    | "json" ->
        Obs.Json.to_string (stats_json ?spmd ?native ?plan summary report) ^ "\n"
    | _ -> Format.asprintf "%a" Obs.pp_report report
  in
  if dest = "-" then begin
    print_string text;
    Ok ()
  end
  else
    match open_out dest with
    | oc ->
        output_string oc text;
        close_out oc;
        Ok ()
    | exception Sys_error m -> Error (Diag.error ~phase:"cli" m)

let print_perf ~quiet (p : Api.perf) =
  if not quiet then
    Printf.printf
      "run on %s x%d: time %.3f ms (comp %.3f, comm %.3f)\n\
      \  flops %d  loads %d  stores %d  L1 miss %.2f%%%s\n\
      \  messages %d (%d bytes)  checksum %s\n"
      p.Api.machine p.Api.procs
      (p.Api.time_ns /. 1e6)
      (p.Api.comp_ns /. 1e6)
      (p.Api.comm_ns /. 1e6)
      p.Api.flops p.Api.loads p.Api.stores p.Api.l1_miss_pct
      (match p.Api.l2_miss_pct with
      | Some pct -> Printf.sprintf "  L2 miss %.2f%%" pct
      | None -> "")
      p.Api.messages p.Api.msg_bytes p.Api.checksum

let print_spmd ~quiet (p : Api.perf) (s : Api.spmd_summary) =
  if not quiet then
    Printf.printf
      "spmd on %s x%d: time %.3f ms over %d supersteps (%s)\n\
      \  charged %d messages (%d bytes)  wire %d messages (%d bytes)\n\
      \  ghost fills %d  unmodeled %d  reduction messages %d%s\n\
      \  checksum %s\n"
      p.Api.machine p.Api.procs
      (s.Api.spmd_time_ns /. 1e6)
      s.Api.supersteps
      (if s.Api.matches_model then "matches model" else "DIVERGES from model")
      s.Api.charged_messages s.Api.charged_bytes s.Api.wire_messages
      s.Api.wire_bytes s.Api.ghost_fills s.Api.unmodeled_exchanges
      s.Api.reduction_messages
      (match s.Api.spmd_l1_miss_pct with
      | Some pct -> Printf.sprintf "  L1 miss %.2f%%" pct
      | None -> "")
      s.Api.spmd_checksum

let print_native ~quiet (n : Api.native_summary) =
  if not quiet then
    Printf.printf
      "native: wall %.3f ms over %d cluster units (%s)\n\
      \  compiler %s\n\
      \  checksum %s\n"
      (Int64.to_float n.Api.native_wall_ns /. 1e6)
      n.Api.native_units
      (if n.Api.native_matches then "matches model" else "DIVERGES from model")
      n.Api.native_compiler n.Api.native_checksum

let render ~quiet ~emit_c_path ~stats ~recorder (s : Api.summary) provenance
    perf_spmd =
  if s.Api.merged_away <> [] && not quiet then
    Printf.printf "statement merge eliminated: %s\n"
      (String.concat ", " s.Api.merged_away);
  Option.iter print_string s.Api.dump_ir;
  Option.iter print_string s.Api.dump_plan;
  Option.iter print_string s.Api.dump_c;
  let* () =
    match (emit_c_path, s.Api.emit_c) with
    | Some path, Some text -> (
        match open_out path with
        | oc ->
            output_string oc text;
            close_out oc;
            if not quiet then
              Printf.printf "wrote %s (compile with: cc -O2 %s -lm)\n" path path;
            Ok ()
        | exception Sys_error m -> Error (Diag.error ~phase:"cli" m))
    | _ -> Ok ()
  in
  if not quiet then begin
    Printf.printf
      "%s @ %s: %d statements-of-arrays, contracted %d (%d compiler / %d \
       user), %d allocations remain, %d bytes\n"
      s.Api.program s.Api.level s.Api.arrays_total
      (s.Api.contracted_compiler + s.Api.contracted_user)
      s.Api.contracted_compiler s.Api.contracted_user s.Api.remaining
      s.Api.footprint_bytes;
    match provenance with
    | Some p ->
        let ilp =
          match p.Plan.Driver.ilp_total_ns with
          | Some ns ->
              Printf.sprintf ", ilp %.3f ms%s" (ns /. 1e6)
                (if p.Plan.Driver.proved_optimal = Some true then
                   " (proved optimal)"
                 else "")
          | None -> ""
        in
        Printf.printf "plan %s on %s x%d: greedy %.3f ms, search %.3f ms%s%s\n"
          p.Plan.Driver.strategy p.Plan.Driver.machine p.Plan.Driver.procs
          (p.Plan.Driver.greedy_total_ns /. 1e6)
          (p.Plan.Driver.search_total_ns /. 1e6)
          ilp
          (if p.Plan.Driver.fallback then
             Printf.sprintf " (kept %s)" p.Plan.Driver.strategy
           else "")
    | None -> ()
  end;
  let spmd_report, native_summary =
    match perf_spmd with
    | Some (perf, spmd, native) ->
        print_perf ~quiet perf;
        Option.iter (fun sp -> print_spmd ~quiet perf sp) spmd;
        Option.iter (fun n -> print_native ~quiet n) native;
        (Option.map (fun sp -> sp.Api.report) spmd, native)
    | None -> (None, None)
  in
  match (recorder, stats) with
  | Some r, Some spec ->
      write_stats ?spmd:spmd_report ?native:native_summary ?plan:provenance
        spec s (Obs.report r)
  | _ -> Ok ()

(* ------------------------------------------------------------------ *)
(* Daemon requests (--server-stats, --shutdown)                        *)
(* ------------------------------------------------------------------ *)

let daemon_request ~connect req =
  match connect with
  | None ->
      Error
        (Diag.error ~phase:"cli"
           "this request needs a daemon: give --connect SOCKET")
  | Some socket -> (
      let* resp = Service.Client.roundtrip ~socket req in
      match resp with
      | Api.Failed d -> Error d
      | resp ->
          print_endline (Obs.Json.to_string (Api.response_to_json resp));
          Ok ())

(* ------------------------------------------------------------------ *)
(* Differential fuzzing (--fuzz)                                       *)
(* ------------------------------------------------------------------ *)

(* Generate N random programs from --seed and push each through every
   executor (see Fuzz.Oracle).  The campaign fans out over --jobs
   domains (Fuzz.Campaign), then divergences are printed, shrunk and
   written to --fuzz-out sequentially in case order — so the output is
   byte-identical at every --jobs value.  Any failure makes the run
   exit nonzero. *)
let run_fuzz ~n ~seed ~jobs ~out ~machine ~trace_mode =
  let* machine = Api.machine_of_name machine in
  let cfg = { Fuzz.Oracle.default with Fuzz.Oracle.machine } in
  let* () =
    if Sys.file_exists out then
      if Sys.is_directory out then Ok ()
      else Error (Diag.errorf ~phase:"fuzz" "--fuzz-out %s is not a directory" out)
    else
      match Sys.mkdir out 0o755 with
      | () -> Ok ()
      | exception Sys_error m -> Error (Diag.error ~phase:"fuzz" m)
  in
  let cases =
    Fuzz.Campaign.run ~cfg ~trace:trace_mode ~jobs ~n ~seed:(Int64.of_int seed)
      ()
  in
  let skipped = Fuzz.Campaign.skipped_runs cases in
  let divergent = Fuzz.Campaign.divergent cases in
  let failures = List.length divergent in
  List.iter
    (fun (c : Fuzz.Campaign.case) ->
      Printf.printf "case %d/%d (seed %d) DIVERGED:\n%s\n" c.Fuzz.Campaign.index
        n seed
        (Fuzz.Oracle.to_string c.Fuzz.Campaign.report);
      let fcfg = Fuzz.Oracle.focus c.Fuzz.Campaign.report cfg in
      let still_fails q = not (Fuzz.Oracle.ok (Fuzz.Oracle.run ~cfg:fcfg q)) in
      let small = Fuzz.Shrink.run ~check:still_fails c.Fuzz.Campaign.program in
      let final = Fuzz.Oracle.run ~cfg small in
      let backends =
        String.concat ", " (List.map fst (Fuzz.Oracle.divergences final))
      in
      (* the repro filename carries the shrunk program's content
         address, so re-shrinks of the same underlying bug land on the
         same file and distinct bugs from one case never collide *)
      let path =
        Filename.concat out
          (Printf.sprintf "fuzz-seed%d-case%d-%s.zir" seed
             c.Fuzz.Campaign.index
             (Ir.Prog.fingerprint small))
      in
      let comment =
        Printf.sprintf "zapc --fuzz%s: seed %d case %d\ndiverging: %s"
          (if trace_mode then " --trace-mode" else "")
          seed c.Fuzz.Campaign.index backends
      in
      Fuzz.Repro.save ~path ~comment small;
      Printf.printf "shrunk repro written to %s (diverging: %s)\n%s\n" path
        backends
        (Fuzz.Oracle.to_string final))
    divergent;
  Printf.printf "fuzz: %d cases, seed %d: %d divergence%s%s\n" n seed failures
    (if failures = 1 then "" else "s")
    (if skipped > 0 then
       Printf.sprintf " (%d backend runs skipped)" skipped
     else "");
  if failures = 0 then Ok ()
  else
    Error
      (Diag.errorf ~phase:"fuzz" "%d of %d cases diverged (repros in %s)"
         failures n out)

(* ------------------------------------------------------------------ *)
(* Runtime-fusion demo (--lazy-demo)                                   *)
(* ------------------------------------------------------------------ *)

(* A streaming loop through the lazy frontend: each iteration records
   a fresh 3-point-stencil-plus-reduction trace whose constants depend
   on the iteration number, then forces the scalar.  Every iteration
   has the same trace *shape*, so iteration 1 compiles (and plans) and
   every later iteration reuses the cached plan — the per-iteration
   cache columns printed below are the point of the demo. *)
let run_lazy_demo ~level ~iters =
  let* level = Api.level_of_name level in
  let module T = Lazyarr.Trace in
  let ctx = T.create ~name:"demo" ~level () in
  let r = Ir.Region.of_bounds [ (0, 1023) ] in
  Printf.printf
    "lazy demo: %d iterations of a 1-D stencil + reduction trace (level %s)\n\
     %-6s %-14s %-18s %s\n"
    iters
    (Compilers.Driver.level_name level)
    "iter" "sum" "checksum" "cache (hits/misses)";
  for t = 1 to iters do
    let ft = float_of_int t in
    let src =
      T.gen ctx r
        Ir.Expr.(Binop (Add, Binop (Mul, Const ft, Idx 1), Const 1.0))
    in
    let left = T.shift [| -1 |] src in
    let right = T.shift [| 1 |] src in
    let s = T.zip_with (fun a b -> Ir.Expr.Binop (Ir.Expr.Add, a, b)) left right in
    let sm =
      T.map
        (fun x -> Ir.Expr.Binop (Ir.Expr.Mul, Ir.Expr.Const (0.5 /. ft), x))
        s
    in
    let sum = T.reduce Ir.Prog.Rsum sm in
    let v = T.force_scalar sum in
    let st = T.stats ctx in
    Printf.printf "%-6d %-14.8g %-18s %d/%d\n" t v (T.scalar_checksum sum)
      st.T.cache_hits st.T.cache_misses
  done;
  let st = T.stats ctx in
  Printf.printf
    "flushes=%d ops recorded=%d lowered=%d elided=%d params lifted=%d\n\
     plan cache: %d hits, %d misses; %d compiles computed, %d plans computed\n\
     trace-shape fingerprint: %s\n"
    st.T.flushes st.T.ops_recorded st.T.ops_lowered st.T.ops_elided
    st.T.params_lifted st.T.cache_hits st.T.cache_misses st.T.compiles_computed
    st.T.plans_computed
    (Option.value ~default:"-" st.T.last_fingerprint);
  if st.T.cache_misses > 1 then
    Error
      (Diag.errorf ~phase:"lazy"
         "expected one cold compile, saw %d cache misses" st.T.cache_misses)
  else Ok ()

(* ------------------------------------------------------------------ *)
(* Main                                                                *)
(* ------------------------------------------------------------------ *)

(* --list-levels: the full ladder zapc accepts, paper spelling then
   the internal (plus-free) one, one level per line. *)
let list_levels () =
  List.iter
    (fun l ->
      let paper = Compilers.Driver.level_name l in
      let internal = String.concat "" (String.split_on_char '+' paper) in
      Printf.printf "%s %s\n" paper internal)
    (Compilers.Driver.all_levels @ [ Compilers.Driver.C2P ])

let main bench file level config tile merge simplify dump_ir dump_plan_f
    dump_c emit_c run machine procs spmd native trace stats plan list_levels_f
    fuzz seed fuzz_out trace_mode lazy_demo jobs connect server_stats shutdown =
  let result =
    if list_levels_f then Ok (list_levels ())
    else if shutdown then daemon_request ~connect Api.Shutdown
    else if server_stats then daemon_request ~connect Api.Stats
    else if lazy_demo then run_lazy_demo ~level ~iters:8
    else
    match fuzz with
    | Some n -> run_fuzz ~n ~seed ~jobs ~out:fuzz_out ~machine ~trace_mode
    | None ->
    let* stats = parse_stats stats in
    let recorder =
      if trace || stats <> None then
        let sink =
          if trace then Some (Obs.text_sink Format.err_formatter) else None
        in
        Some (Obs.create ?sink ())
      else None
    in
    let in_scope f =
      match recorder with Some r -> Obs.run r f | None -> f ()
    in
    in_scope @@ fun () ->
    (* stdout carries exactly the JSON report when it is the stats
       destination: keep the human summary out of the stream *)
    let quiet = stats = Some ("json", "-") in
    let* config = parse_config config in
    let source, config = read_source bench file config tile in
    let* source = source in
    let* plan_mode = parse_plan plan in
    let opts =
      {
        Api.level;
        plan = plan_mode;
        config;
        merge;
        simplify;
        dump_ir;
        dump_plan = dump_plan_f;
        dump_c;
        emit_c = emit_c <> None;
      }
    in
    let target = { Api.machine; procs } in
    let* () =
      if native && not run then
        Error (Diag.error ~phase:"cli" "--native needs --run")
      else Ok ()
    in
    let req =
      if run then Api.Run { source; opts; target; spmd; native }
      else Api.Compile { source; opts; target }
    in
    let* resp = dispatch ~connect ~jobs req in
    match resp with
    | Api.Failed d -> Error d
    | Api.Compiled { summary; provenance } ->
        render ~quiet ~emit_c_path:emit_c ~stats ~recorder summary provenance
          None
    | Api.Ran { summary; provenance; perf; spmd; native } ->
        render ~quiet ~emit_c_path:emit_c ~stats ~recorder summary provenance
          (Some (perf, spmd, native))
    | Api.Planned { summary; provenance } ->
        render ~quiet ~emit_c_path:emit_c ~stats ~recorder summary provenance
          None
    | Api.Batch_reply _ | Api.Stats_reply _ | Api.Shutting_down ->
        Error (Diag.error ~phase:"protocol" "unexpected response type")
  in
  Result.map_error (fun d -> `Msg (Diag.to_string d)) result

let bench_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bench" ] ~docv:"NAME" ~doc:"Compile a built-in benchmark.")

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.zap")

let level_arg =
  Arg.(
    value & opt string "c2+f3"
    & info [ "level"; "O" ] ~docv:"LEVEL"
        ~doc:
          "Optimization level: baseline, f1, c1, f2, f3, c2, c2+f3, \
           c2+f4, or c2+p (the '+' may be omitted: c2f3).")

let config_arg =
  Arg.(
    value & opt_all string []
    & info [ "config"; "c" ] ~docv:"NAME=VALUE"
        ~doc:"Override a config constant (repeatable).")

let tile_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tile" ] ~docv:"N" ~doc:"Override the tile-edge config constant.")

let merge_arg =
  Arg.(
    value & flag
    & info [ "merge" ]
        ~doc:
          "Run statement merge (array operation synthesis) before the            optimizer.")

let simplify_arg =
  Arg.(
    value & flag
    & info [ "simplify" ]
        ~doc:
          "Run the model scalar back end (constant folding + CSE) on the            generated code.")

let dump_ir_arg =
  Arg.(value & flag & info [ "dump-ir" ] ~doc:"Print the array-level IR.")

let dump_plan_arg =
  Arg.(
    value & flag
    & info [ "dump-plan" ]
        ~doc:"Print the fusion partition and contraction decisions.")

let dump_c_arg =
  Arg.(
    value & flag
    & info [ "dump-c" ] ~doc:"Print the generated scalar code as C.")

let emit_c_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-c" ] ~docv:"FILE.c"
        ~doc:
          "Write a complete, runnable C translation unit that prints the            result digest (the differential-test back end).")

let run_arg =
  Arg.(
    value & flag
    & info [ "run" ] ~doc:"Execute and report modeled performance.")

let machine_arg =
  Arg.(
    value & opt string "t3e"
    & info [ "machine"; "m" ] ~docv:"MACHINE" ~doc:"t3e, sp2 or paragon.")

let procs_arg =
  Arg.(value & opt int 1 & info [ "procs"; "p" ] ~docv:"P" ~doc:"Processors.")

let spmd_arg =
  Arg.(
    value & flag
    & info [ "spmd" ]
        ~doc:
          "With $(b,--run): also execute the program on a simulated \
           processor grid (one evaluator per processor, explicit border \
           exchanges) and report the executed counters next to the \
           modeled ones.")

let native_arg =
  Arg.(
    value & flag
    & info [ "native" ]
        ~doc:
          "With $(b,--run): also compile the plan's emitted C to a native \
           runner (content-addressed artifact cache; a warm plan re-runs \
           with zero $(b,cc) invocations) and execute it, reporting real \
           wall-clock and the live-out checksum next to the modeled run.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Stream the pass-span tree (with wall-clock timings) and \
           optimizer events to stderr as compilation proceeds.")

let stats_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "stats" ] ~docv:"FMT:FILE"
        ~doc:
          "Write a compile report: $(b,json:FILE) for the machine-readable \
           schema (per-pass timings, fusion/contraction counters with \
           rejected-merge reasons), $(b,text:FILE) for a human-readable \
           summary.  FILE $(b,-) writes to stdout (and, for json, \
           suppresses the usual summary line).")

let plan_arg =
  Arg.(
    value & opt string "greedy"
    & info [ "plan" ] ~docv:"STRATEGY"
        ~doc:
          "Fusion planning strategy: $(b,greedy) (the paper's level \
           ladder, default), $(b,search) (branch-and-bound over fusion \
           partitions against the unified cost model for \
           $(b,--machine)/$(b,--procs); never worse than greedy under \
           the model) or $(b,ilp) (0/1 integer program over valid \
           clusters, solved by branch-and-cut: never worse than search, \
           and provably optimal when the certificate closes — see \
           docs/planner.md; provenance lands in $(b,--stats json)).")

let list_levels_arg =
  Arg.(
    value & flag
    & info [ "list-levels" ]
        ~doc:
          "Print the optimization-level ladder (paper spelling, then the \
           internal plus-free spelling, one level per line) and exit.")

let fuzz_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "fuzz" ] ~docv:"N"
        ~doc:
          "Differential fuzzing: generate $(docv) random programs from \
           $(b,--seed) and run each through the reference interpreter, \
           every optimization level, the search planner, the SPMD engine \
           and (when $(b,cc) is installed) the emitted C, comparing result \
           digests.  Diverging cases are shrunk and written to \
           $(b,--fuzz-out) as self-contained repros; exits nonzero if any \
           case diverges.")

let seed_arg =
  Arg.(
    value & opt int 1
    & info [ "seed" ] ~docv:"S"
        ~doc:"PRNG seed for $(b,--fuzz); same seed, same programs.")

let fuzz_out_arg =
  Arg.(
    value & opt string "."
    & info [ "fuzz-out" ] ~docv:"DIR"
        ~doc:"Directory for shrunk $(b,--fuzz) repros (created if missing).")

let trace_mode_arg =
  Arg.(
    value & flag
    & info [ "trace-mode" ]
        ~doc:
          "With $(b,--fuzz): draw each case from a random lazy-combinator \
           trace (gen/map/zip/shift/reduce through the runtime-fusion \
           frontend) lowered to a program, instead of from the whole-program \
           generator.  Same oracle, same shrinker, same determinism \
           contract.")

let lazy_demo_arg =
  Arg.(
    value & flag
    & info [ "lazy-demo" ]
        ~doc:
          "Run the runtime-fusion demo: a streaming loop that records the \
           same stencil-plus-reduction trace shape with fresh constants \
           each iteration and forces it through the lazy frontend — \
           iteration 1 compiles, every later iteration reuses the cached \
           plan.  Honors $(b,--level); exits nonzero if any warm iteration \
           misses the plan cache.")

let jobs_arg =
  Arg.(
    value
    & opt int (Support.Pool.default_domains ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for $(b,--fuzz) campaigns and $(b,--plan search) \
           candidate costing (default: the machine's recommended domain \
           count).  Results are deterministic: output is byte-identical \
           at every $(docv), only the wall-clock changes.")

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCKET"
        ~doc:
          "Send the request to a running $(b,zapd) daemon on this \
           Unix-domain socket instead of compiling in-process.  Output is \
           byte-identical either way; the daemon's plan cache makes \
           repeated compiles (notably $(b,--plan search)) fast.")

let server_stats_arg =
  Arg.(
    value & flag
    & info [ "server-stats" ]
        ~doc:
          "Print the daemon's request and plan-cache counters as one JSON \
           line (requires $(b,--connect)).")

let shutdown_arg =
  Arg.(
    value & flag
    & info [ "shutdown" ]
        ~doc:"Ask the daemon to exit cleanly (requires $(b,--connect)).")

let cmd =
  let doc =
    "array-level fusion and contraction compiler (PLDI'98 reproduction)"
  in
  Cmd.v
    (Cmd.info "zapc" ~version:"1.0" ~doc)
    Term.(
      term_result ~usage:false
        (const main $ bench_arg $ file_arg $ level_arg $ config_arg
       $ tile_arg $ merge_arg $ simplify_arg $ dump_ir_arg $ dump_plan_arg
       $ dump_c_arg $ emit_c_arg $ run_arg $ machine_arg $ procs_arg
       $ spmd_arg $ native_arg $ trace_arg $ stats_arg $ plan_arg $ list_levels_arg
       $ fuzz_arg $ seed_arg $ fuzz_out_arg $ trace_mode_arg $ lazy_demo_arg
       $ jobs_arg $ connect_arg $ server_stats_arg $ shutdown_arg))

let () = exit (Cmd.eval cmd)
