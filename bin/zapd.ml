(* zapd — the persistent compile-and-run daemon.

   Listens on a Unix-domain socket and serves the typed request API
   (Service.Api) as newline-delimited JSON: compile, run, plan, batch,
   stats, shutdown.  A long-lived zapd amortizes planning across
   requests through the sharded LRU plan cache — the first --plan
   search for a program pays the full branch-and-bound search, every
   later request with the same (fingerprint, mode, machine, procs) key
   is a lookup.  zapc --connect SOCKET is the stock client; protocol
   grammar and operational notes live in docs/zapd.md. *)

open Cmdliner

let main socket shards capacity jobs native_root quiet =
  let engine =
    Service.Engine.create ~shards ~capacity ~jobs ?native_root ()
  in
  let on_ready () =
    if not quiet then Printf.printf "zapd: listening on %s\n%!" socket
  in
  match Service.Server.serve ~on_ready ~socket engine with
  | Ok () ->
      if not quiet then Printf.printf "zapd: shut down\n%!";
      Ok ()
  | Error d -> Error (`Msg (Obs.Diagnostic.to_string d))

let socket_arg =
  Arg.(
    value & opt string "zapd.sock"
    & info [ "socket"; "s" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket to listen on (a stale socket file left by a \
           dead daemon is replaced).")

let shards_arg =
  Arg.(
    value & opt int 8
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Independently locked plan-cache partitions; requests on \
           different pool domains contend only within a shard.")

let capacity_arg =
  Arg.(
    value & opt int 256
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:
          "Total plan-cache entries (split evenly across shards); \
           least-recently-used entries are evicted beyond it.")

let jobs_arg =
  Arg.(
    value
    & opt int (Support.Pool.default_domains ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for batch requests and search-planner candidate \
           costing.  Responses are byte-identical at every $(docv).")

let native_root_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "native-root" ] ~docv:"DIR"
        ~doc:
          "Directory for content-addressed native artifacts (default: a \
           per-user directory under the system temp dir).  Artifacts \
           survive daemon restarts: a re-started zapd re-adopts runners \
           it finds there without invoking $(b,cc).")

let quiet_arg =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ] ~doc:"Suppress the listening/shutdown banner.")

let cmd =
  let doc = "persistent compile-and-run daemon for the zap compiler" in
  Cmd.v
    (Cmd.info "zapd" ~version:"1.0" ~doc)
    Term.(
      term_result ~usage:false
        (const main $ socket_arg $ shards_arg $ capacity_arg $ jobs_arg
       $ native_root_arg $ quiet_arg))

let () = exit (Cmd.eval cmd)
