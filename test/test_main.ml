let () =
  Alcotest.run "fuzion"
    (Test_support.suites @ Test_ir.suites @ Test_core.suites
   @ Test_compile.suites @ Test_perf.suites @ Test_zap.suites @ Test_suite.suites @ Test_sir.suites @ Test_exec.suites @ Test_comm_model.suites @ Test_merge.suites @ Test_simplify.suites @ Test_vendors.suites @ Test_emit_c.suites @ Test_cli.suites @ Test_obs.suites @ Test_bench_json.suites @ Test_spmd.suites
   @ Test_plan.suites @ Test_fuzz.suites @ Test_service.suites
   @ Test_lazy.suites @ Test_native.suites)
