(* Cache simulator, machine models, communication model. *)

open Cachesim

let cfg ~size ~line ~assoc =
  { Cache.size_bytes = size; line_bytes = line; assoc }

let test_cache_geometry () =
  Alcotest.(check int)
    "sets" 64
    (Cache.config_sets (cfg ~size:(8 * 1024) ~line:32 ~assoc:4));
  Alcotest.check_raises "bad line"
    (Invalid_argument "Cache: line size must be a power of two") (fun () ->
      ignore (Cache.config_sets (cfg ~size:1024 ~line:24 ~assoc:1)))

let test_cache_hit_miss () =
  let c = Cache.create (cfg ~size:1024 ~line:32 ~assoc:2) in
  Alcotest.(check bool) "cold miss" false (Cache.access c ~addr:0);
  Alcotest.(check bool) "same line hits" true (Cache.access c ~addr:8);
  Alcotest.(check bool) "line granularity" true (Cache.access c ~addr:31);
  Alcotest.(check bool) "next line misses" false (Cache.access c ~addr:32);
  let s = Cache.stats c in
  Alcotest.(check int) "accesses" 4 s.Cache.accesses;
  Alcotest.(check int) "hits" 2 s.Cache.hits

let test_cache_lru () =
  (* 2-way set: lines mapping to set 0 are multiples of 32*16=512 for a
     1024B/32B/2-way cache (16 sets). *)
  let c = Cache.create (cfg ~size:1024 ~line:32 ~assoc:2) in
  ignore (Cache.access c ~addr:0);      (* set 0: A *)
  ignore (Cache.access c ~addr:512);    (* set 0: B *)
  Alcotest.(check bool) "A still resident" true (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:1024);   (* set 0: C evicts B (LRU) *)
  Alcotest.(check bool) "A survives" true (Cache.access c ~addr:0);
  Alcotest.(check bool) "B evicted" false (Cache.access c ~addr:512)

let test_cache_direct_mapped () =
  let c = Cache.create (cfg ~size:64 ~line:32 ~assoc:1) in
  ignore (Cache.access c ~addr:0);
  ignore (Cache.access c ~addr:64);  (* conflicts with 0 *)
  Alcotest.(check bool) "conflict evicts" false (Cache.access c ~addr:0)

let prop_cache_counts_consistent =
  QCheck.Test.make ~name:"hits + misses = accesses; re-touch always hits"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 200) (int_range 0 4096))
    (fun addrs ->
      let c = Cache.create (cfg ~size:512 ~line:32 ~assoc:2) in
      List.iter (fun a -> ignore (Cache.access c ~addr:a)) addrs;
      let s = Cache.stats c in
      let last = List.nth addrs (List.length addrs - 1) in
      let re_hit = Cache.access c ~addr:last in
      s.Cache.hits + s.Cache.misses = s.Cache.accesses && re_hit)

let test_hierarchy () =
  let h =
    Cache.Hierarchy.create
      ~l1:(cfg ~size:64 ~line:32 ~assoc:1)
      ~l2:(cfg ~size:256 ~line:32 ~assoc:2)
      ()
  in
  (* L1 conflict misses are absorbed by the larger L2 *)
  for _ = 1 to 10 do
    Cache.Hierarchy.access h ~addr:0 ~write:false;
    Cache.Hierarchy.access h ~addr:64 ~write:false
  done;
  let l1 = Cache.Hierarchy.l1_stats h in
  let l2 = Option.get (Cache.Hierarchy.l2_stats h) in
  Alcotest.(check int) "L1 thrashes" 20 l1.Cache.misses;
  Alcotest.(check int) "L2 absorbs" 2 l2.Cache.misses

(* ------------------------------------------------------------------ *)
(* Machine model                                                       *)
(* ------------------------------------------------------------------ *)

let test_machines () =
  Alcotest.(check int) "three machines" 3 (List.length Machine.all);
  Alcotest.(check bool) "T3E has L2" true (Machine.t3e.Machine.l2 <> None);
  Alcotest.(check bool) "SP-2 has no L2" true (Machine.sp2.Machine.l2 = None);
  Alcotest.(check bool)
    "Paragon memory is smallest" true
    (Machine.paragon.Machine.node_memory_bytes
    < Machine.sp2.Machine.node_memory_bytes);
  (* time model is linear in its inputs *)
  let a =
    { Machine.flops = 100; l1_accesses = 0; l1_misses = 0; l2_misses = 0; comm_ns = 0.0 }
  in
  Alcotest.(check (float 1e-9)) "flop cost" 220.0 (Machine.time_ns Machine.t3e a)

(* ------------------------------------------------------------------ *)
(* Distribution / communication model                                  *)
(* ------------------------------------------------------------------ *)

let test_dist () =
  let d = Comm.Dist.make ~rank:2 ~procs:16 in
  Alcotest.(check (list int)) "4x4 grid" [ 4; 4 ] (Array.to_list (Comm.Dist.per_dim d));
  let d8 = Comm.Dist.make ~rank:2 ~procs:8 in
  Alcotest.(check int) "8 procs product" 8
    (Array.fold_left ( * ) 1 (Comm.Dist.per_dim d8));
  let d1 = Comm.Dist.make ~rank:2 ~procs:1 in
  Alcotest.(check bool)
    "p=1: nothing remote" true
    (Comm.Dist.remote_dir d1 (Support.Vec.of_list [ -1; 1 ]) = None);
  match Comm.Dist.remote_dir d (Support.Vec.of_list [ -2; 0 ]) with
  | Some dir -> Alcotest.(check (list int)) "north" [ -1; 0 ] (Array.to_list dir)
  | None -> Alcotest.fail "expected remote"

(* A small stencil program with a temporary, for comm tests. *)
let comm_prog () =
  let open Ir in
  let v = Support.Vec.of_list in
  let interior = Region.of_bounds [ (1, 8); (1, 8) ] in
  let padded = Region.of_bounds [ (0, 9); (0, 9) ] in
  let user name = { Prog.name; bounds = padded; kind = Prog.User } in
  {
    Prog.name = "comm_test";
    arrays = [ user "A"; user "B"; user "T"; user "C" ];
    scalars = [];
    body =
      [
        Prog.Astmt
          (Nstmt.make ~region:interior ~lhs:"T"
             Expr.(Binop (Add, Ref ("A", v [ -1; 0 ]), Ref ("A", v [ 1; 0 ]))));
        Prog.Astmt
          (Nstmt.make ~region:interior ~lhs:"C"
             Expr.(Binop (Mul, Ref ("B", v [ 0; 0 ]), Const 2.0)));
        Prog.Astmt
          (Nstmt.make ~region:interior ~lhs:"B"
             Expr.(Ref ("T", v [ 0; 0 ])));
      ];
    live_out = [ "B"; "C" ];
  }

let analyze ?(procs = 4) ?(opts = Comm.Model.all_on) level =
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) (comm_prog ()) in
  Comm.Model.analyze ~machine:Machine.t3e ~procs ~opts c

let test_comm_p1_silent () =
  let s = analyze ~procs:1 Compilers.Driver.Baseline in
  Alcotest.(check int) "no messages" 0 s.Comm.Model.messages;
  Alcotest.(check (float 0.0)) "no time" 0.0 s.Comm.Model.effective_ns

let test_comm_messages () =
  let s = analyze ~opts:Comm.Model.vectorize_only Compilers.Driver.Baseline in
  (* statement 1 reads A at north and south: two messages *)
  Alcotest.(check int) "two exchanges" 2 s.Comm.Model.messages;
  (* each moves one 8-wide row of 8-byte elements *)
  Alcotest.(check int) "bytes" (2 * 8 * 8) s.Comm.Model.bytes

let test_comm_pipelining_hides () =
  let raw = analyze ~opts:Comm.Model.vectorize_only Compilers.Driver.Baseline in
  let piped =
    analyze
      ~opts:{ Comm.Model.vectorize_only with pipelining = true }
      Compilers.Driver.Baseline
  in
  Alcotest.(check bool)
    "pipelining reduces wait" true
    (piped.Comm.Model.effective_ns <= raw.Comm.Model.effective_ns)

let test_favor_comm_veto () =
  let prog = comm_prog () in
  let veto = Comm.Interact.favor_comm_veto ~procs:4 prog in
  (* statement 0 reads remote data; statement 1 is independent of it:
     fusing them must be rejected; statement 2 depends on 0: allowed. *)
  Alcotest.(check bool) "independent blocked" false (veto ~block:0 [ 0; 1 ]);
  Alcotest.(check bool) "dependent allowed" true (veto ~block:0 [ 0; 2 ]);
  let veto1 = Comm.Interact.favor_comm_veto ~procs:1 prog in
  Alcotest.(check bool) "p=1 never vetoes" true (veto1 ~block:0 [ 0; 1 ])

let test_perf_measure () =
  let prog = comm_prog () in
  let cfgp = { Comm.Perf.machine = Machine.t3e; procs = 4; comm = Comm.Model.all_on } in
  let base =
    Comm.Perf.measure cfgp
      (Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.Baseline) prog)
  in
  let c2 =
    Comm.Perf.measure cfgp
      (Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog)
  in
  Alcotest.(check string) "same results" base.Comm.Perf.checksum c2.Comm.Perf.checksum;
  Alcotest.(check bool)
    "c2 no slower" true
    (c2.Comm.Perf.time_ns <= base.Comm.Perf.time_ns);
  Alcotest.(check bool)
    "footprint shrinks" true
    (c2.Comm.Perf.footprint_bytes < base.Comm.Perf.footprint_bytes);
  Alcotest.(check bool)
    "improvement is positive" true
    (Comm.Perf.improvement_pct ~baseline:base c2 >= 0.0)

let suites =
  [
    ( "cachesim",
      [
        Alcotest.test_case "geometry" `Quick test_cache_geometry;
        Alcotest.test_case "hit/miss" `Quick test_cache_hit_miss;
        Alcotest.test_case "LRU" `Quick test_cache_lru;
        Alcotest.test_case "direct-mapped conflicts" `Quick test_cache_direct_mapped;
        Alcotest.test_case "hierarchy" `Quick test_hierarchy;
        QCheck_alcotest.to_alcotest prop_cache_counts_consistent;
      ] );
    ( "machine",
      [ Alcotest.test_case "models" `Quick test_machines ] );
    ( "comm",
      [
        Alcotest.test_case "distribution" `Quick test_dist;
        Alcotest.test_case "p=1 silent" `Quick test_comm_p1_silent;
        Alcotest.test_case "message inference" `Quick test_comm_messages;
        Alcotest.test_case "pipelining" `Quick test_comm_pipelining_hides;
        Alcotest.test_case "favor-comm veto" `Quick test_favor_comm_veto;
        Alcotest.test_case "end-to-end measure" `Quick test_perf_measure;
      ] );
  ]
