open Support

let vec = Alcotest.testable (Fmt.of_to_string Vec.to_string) Vec.equal

let test_vec_ops () =
  let a = Vec.of_list [ 1; -2; 3 ] and b = Vec.of_list [ 0; 1; 1 ] in
  Alcotest.check vec "add" (Vec.of_list [ 1; -1; 4 ]) (Vec.add a b);
  Alcotest.check vec "sub" (Vec.of_list [ 1; -3; 2 ]) (Vec.sub a b);
  Alcotest.check vec "neg" (Vec.of_list [ -1; 2; -3 ]) (Vec.neg a);
  Alcotest.(check bool) "null zero" true (Vec.is_null (Vec.zero 4));
  Alcotest.(check bool) "null nonzero" false (Vec.is_null a);
  Alcotest.(check int) "get is 1-indexed" (-2) (Vec.get a 2)

let test_vec_rank_mismatch () =
  Alcotest.check_raises "add mismatched ranks"
    (Invalid_argument "Vec.add: rank mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add (Vec.zero 2) (Vec.zero 3)))

let test_lex () =
  let check s expect v =
    Alcotest.(check bool) s expect (Vec.lex_nonneg (Vec.of_list v))
  in
  check "null is nonneg" true [ 0; 0 ];
  check "(0,1)" true [ 0; 1 ];
  check "(1,-5)" true [ 1; -5 ];
  check "(-1,9)" false [ -1; 9 ];
  check "(0,-1)" false [ 0; -1 ];
  Alcotest.(check bool) "lex_pos null" false (Vec.lex_pos (Vec.zero 3));
  Alcotest.(check bool) "lex_pos (0,2)" true (Vec.lex_pos (Vec.of_list [ 0; 2 ]))

let prop_lex_trichotomy =
  QCheck.Test.make ~name:"lex: v nonneg or -v nonneg (or both iff null)"
    ~count:500
    QCheck.(list_of_size Gen.(int_range 1 5) (int_range (-4) 4))
    (fun l ->
      let v = Vec.of_list l in
      let n = Vec.lex_nonneg v and m = Vec.lex_nonneg (Vec.neg v) in
      (n || m) && (n && m) = Vec.is_null v)

let test_topo_line () =
  let order =
    Toposort.sort_exn ~n:4 ~edges:[ (2, 1); (1, 0); (3, 2) ]
  in
  Alcotest.(check (list int)) "line order" [ 3; 2; 1; 0 ] order

let test_topo_stable () =
  (* no constraints: source order preserved *)
  let order = Toposort.sort_exn ~n:4 ~edges:[] in
  Alcotest.(check (list int)) "stable" [ 0; 1; 2; 3 ] order;
  (* one constraint should reorder minimally *)
  let order = Toposort.sort_exn ~n:3 ~edges:[ (2, 0) ] in
  Alcotest.(check (list int)) "minimal reorder" [ 1; 2; 0 ] order

let test_topo_cycle () =
  Alcotest.(check bool)
    "cycle detected" true
    (Toposort.has_cycle ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ]);
  Alcotest.(check bool)
    "dag is acyclic" false
    (Toposort.has_cycle ~n:3 ~edges:[ (0, 1); (0, 2); (1, 2) ])

let test_reachable () =
  let r =
    Toposort.reachable ~n:5 ~edges:[ (0, 1); (1, 2); (3, 4) ] ~from:[ 0 ]
  in
  Alcotest.(check (list bool))
    "reach from 0"
    [ true; true; true; false; false ]
    (Array.to_list r)

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"toposort respects all edges" ~count:300
    QCheck.(
      pair (int_range 1 8)
        (list_of_size Gen.(int_range 0 12) (pair (int_range 0 7) (int_range 0 7))))
    (fun (n, raw) ->
      let edges =
        List.filter (fun (a, b) -> a < n && b < n && a <> b) raw
      in
      match Toposort.sort ~n ~edges with
      | None -> Toposort.has_cycle ~n ~edges
      | Some order ->
          let pos = Array.make n 0 in
          List.iteri (fun i v -> pos.(v) <- i) order;
          List.for_all (fun (a, b) -> pos.(a) < pos.(b)) edges)

let test_dsu () =
  let d = Dsu.create 6 in
  Dsu.union d 4 2;
  Dsu.union d 2 5;
  Alcotest.(check int) "min rep" 2 (Dsu.find d 5);
  Alcotest.(check bool) "same" true (Dsu.same d 4 5);
  Alcotest.(check bool) "not same" false (Dsu.same d 0 5);
  Alcotest.(check int) "n_sets" 4 (Dsu.n_sets d);
  Alcotest.(check (list (list int)))
    "groups"
    [ [ 0 ]; [ 1 ]; [ 2; 4; 5 ]; [ 3 ] ]
    (Dsu.groups d);
  let d2 = Dsu.copy d in
  Dsu.union d2 0 1;
  Alcotest.(check bool) "copy is independent" false (Dsu.same d 0 1)

let prop_dsu_groups_canonical =
  QCheck.Test.make ~name:"dsu groups sorted by representative" ~count:300
    QCheck.(
      list_of_size Gen.(int_range 0 15) (pair (int_range 0 9) (int_range 0 9)))
    (fun unions ->
      let d = Dsu.create 10 in
      List.iter (fun (a, b) -> Dsu.union d a b) unions;
      let gs = Dsu.groups d in
      let mins = List.map (fun g -> List.fold_left min max_int g) gs in
      (* groups ascend by representative, members ascend, and the
         groups partition 0..n-1 — order is structural, never
         insertion-dependent *)
      List.sort compare mins = mins
      && List.for_all (fun g -> List.sort compare g = g) gs
      && List.sort compare (List.concat gs) = List.init 10 Fun.id)

let test_prng () =
  let r = Prng.create 42L in
  let xs = List.init 1000 (fun _ -> Prng.next_float r) in
  Alcotest.(check bool)
    "all in (0,1)" true
    (List.for_all (fun x -> x > 0.0 && x < 1.0) xs);
  let mean = List.fold_left ( +. ) 0.0 xs /. 1000.0 in
  Alcotest.(check bool) "mean near 1/2" true (abs_float (mean -. 0.5) < 0.05);
  let r1 = Prng.create 7L and r2 = Prng.create 7L in
  Alcotest.(check (list (float 0.0)))
    "deterministic"
    (List.init 10 (fun _ -> Prng.next_float r1))
    (List.init 10 (fun _ -> Prng.next_float r2))

let test_prng_chi_square () =
  let r = Prng.create 123L in
  let bound = 7 in
  let draws = 7000 in
  let counts = Array.make bound 0 in
  for _ = 1 to draws do
    let v = Prng.next_int r bound in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int draws /. float_of_int bound in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 counts
  in
  (* 22.46 is the p=0.001 critical value at 6 degrees of freedom — and
     the seed is pinned, so the check cannot flake *)
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.2f < 22.46" chi2)
    true (chi2 < 22.46)

let test_prng_no_modulo_bias () =
  (* bound = 3*2^29: 2^31 mod bound = 2^29, so plain [bits mod bound]
     lands in [0, 2^29) with probability 1/2 instead of 1/3 — far
     outside noise at 3000 draws.  Rejection sampling must not. *)
  let r = Prng.create 77L in
  let bound = 3 * (1 lsl 29) in
  let draws = 3000 in
  let low = ref 0 in
  for _ = 1 to draws do
    if Prng.next_int r bound < 1 lsl 29 then incr low
  done;
  let frac = float_of_int !low /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "low-third fraction %.3f near 1/3" frac)
    true
    (abs_float (frac -. (1.0 /. 3.0)) < 0.04)

let test_prng_bounds () =
  let r = Prng.create 5L in
  for _ = 1 to 2000 do
    let v = Prng.next_int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of range: %d" v
  done;
  Alcotest.(check int) "bound 1 is always 0" 0 (Prng.next_int r 1);
  Alcotest.check_raises "bound 0 rejected"
    (Invalid_argument "Prng.next_int: bound must be positive") (fun () ->
      ignore (Prng.next_int r 0))

(* ---------------- Pool ------------------------------------------- *)

let test_pool_ordering () =
  let tasks = List.init 100 Fun.id in
  let want = List.map (fun i -> i * i) tasks in
  List.iter
    (fun domains ->
      Alcotest.(check (list int))
        (Printf.sprintf "squares in task order, %d domains" domains)
        want
        (Pool.map ~domains (fun i -> i * i) tasks))
    [ 1; 2; 8 ]

let test_pool_uneven_work () =
  (* front-load the slow tasks so completion order inverts task order;
     the result list must not *)
  let f i =
    if i < 4 then begin
      let s = ref 0 in
      for k = 1 to 300_000 do
        s := !s + k
      done;
      ignore !s
    end;
    i * 10
  in
  let tasks = List.init 32 Fun.id in
  Alcotest.(check (list int))
    "ordered despite uneven work"
    (List.map (fun i -> i * 10) tasks)
    (Pool.map ~domains:8 f tasks)

let test_pool_edges () =
  Alcotest.(check (list int)) "empty" [] (Pool.map ~domains:4 Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map ~domains:4 Fun.id [ 7 ]);
  Alcotest.(check (list int))
    "more domains than tasks"
    [ 1; 2 ]
    (Pool.map ~domains:16 Fun.id [ 1; 2 ]);
  Alcotest.(check bool) "default_domains >= 1" true (Pool.default_domains () >= 1)

exception Boom of int

let test_pool_exception () =
  List.iter
    (fun domains ->
      match
        Pool.map ~domains
          (fun i -> if i mod 3 = 1 then raise (Boom i) else i)
          (List.init 20 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i ->
          (* several tasks raise; the lowest task index must win
             regardless of which domain finished first *)
          Alcotest.(check int)
            (Printf.sprintf "lowest failing index, %d domains" domains)
            1 i)
    [ 1; 2; 8 ]

let suites =
  [
    ( "support.vec",
      [
        Alcotest.test_case "ops" `Quick test_vec_ops;
        Alcotest.test_case "rank mismatch" `Quick test_vec_rank_mismatch;
        Alcotest.test_case "lexicographic" `Quick test_lex;
        QCheck_alcotest.to_alcotest prop_lex_trichotomy;
      ] );
    ( "support.toposort",
      [
        Alcotest.test_case "line" `Quick test_topo_line;
        Alcotest.test_case "stable" `Quick test_topo_stable;
        Alcotest.test_case "cycle" `Quick test_topo_cycle;
        Alcotest.test_case "reachable" `Quick test_reachable;
        QCheck_alcotest.to_alcotest prop_topo_respects_edges;
      ] );
    ( "support.dsu",
      [
        Alcotest.test_case "basics" `Quick test_dsu;
        QCheck_alcotest.to_alcotest prop_dsu_groups_canonical;
      ] );
    ( "support.prng",
      [
        Alcotest.test_case "uniformity" `Quick test_prng;
        Alcotest.test_case "next_int chi-square" `Quick test_prng_chi_square;
        Alcotest.test_case "next_int has no modulo bias" `Quick
          test_prng_no_modulo_bias;
        Alcotest.test_case "next_int bounds" `Quick test_prng_bounds;
      ] );
    ( "support.pool",
      [
        Alcotest.test_case "results in task order" `Quick test_pool_ordering;
        Alcotest.test_case "uneven work stays ordered" `Quick
          test_pool_uneven_work;
        Alcotest.test_case "edge cases" `Quick test_pool_edges;
        Alcotest.test_case "first failure propagates" `Quick
          test_pool_exception;
      ] );
  ]
