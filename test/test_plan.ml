(* The search-based planner (lib/plan): cost model sanity, search
   validity/optimality properties on random ASDGs, and determinism of
   the end-to-end planned compile. *)

open Ir
module Vec = Support.Vec

let v = Vec.of_list
let r44 = Region.of_bounds [ (1, 4); (1, 4) ]
let names = [| "A"; "B"; "C"; "D"; "E" |]

let mk_prog stmts =
  {
    Prog.name = "rand";
    arrays =
      Array.to_list names
      |> List.map (fun n ->
             {
               Prog.name = n;
               bounds = Region.of_bounds [ (0, 5); (0, 5) ];
               kind = Prog.User;
             });
    scalars = [];
    body = List.map (fun s -> Prog.Astmt s) stmts;
    live_out = [];
  }

let cost_cfg =
  { Plan.Cost.machine = Machine.t3e; procs = 1; opts = Comm.Model.all_on }

let search_cfg =
  { Plan.Search.default with Plan.Search.max_states = 200; beam_width = 2 }

let all_candidates = Array.to_list names

(* same random normal-form blocks as test_core's fusion properties *)
let random_block_gen =
  let open QCheck.Gen in
  let off = int_range (-1) 1 in
  let ref_gen =
    map2
      (fun n (a, b) -> Expr.Ref (names.(n), v [ a; b ]))
      (int_range 0 4) (pair off off)
  in
  let expr_gen =
    map2 (fun a b -> Expr.Binop (Expr.Add, a, b)) ref_gen ref_gen
  in
  list_size (int_range 1 8)
    (map2 (fun n rhs -> (names.(n), rhs)) (int_range 0 4) expr_gen)

let mk_block specs =
  List.filter_map
    (fun (lhs, rhs) ->
      if List.mem lhs (Expr.ref_names rhs) then None
      else Some (Nstmt.make ~region:r44 ~lhs rhs))
    specs

(* Every state the search costs — not just the returned one — must be
   a valid Definition 5 partition: moves are vetted by check_merge and
   closed under grow, so a violation here is a move-generator bug. *)
let prop_search_states_valid =
  QCheck.Test.make ~name:"every searched partition is valid" ~count:150
    (QCheck.make random_block_gen)
    (fun specs ->
      match mk_block specs with
      | [] -> true
      | stmts ->
          let g = Core.Asdg.build stmts in
          let cost = Plan.Cost.create cost_cfg (mk_prog stmts) in
          let all_valid = ref true in
          let probe p =
            if not (Core.Partition.is_valid p) then all_valid := false
          in
          let _p, _stats =
            Plan.Search.block ~probe search_cfg cost ~block:0
              ~candidates:all_candidates g
          in
          !all_valid)

(* The incumbent is seeded with greedy c2+f3, so the search result can
   never price worse; and the returned partition's cost must be the
   reported best. *)
let prop_search_never_worse =
  QCheck.Test.make ~name:"search cost <= greedy cost" ~count:150
    (QCheck.make random_block_gen)
    (fun specs ->
      match mk_block specs with
      | [] -> true
      | stmts ->
          let g = Core.Asdg.build stmts in
          let cost = Plan.Cost.create cost_cfg (mk_prog stmts) in
          let _p, stats =
            Plan.Search.block search_cfg cost ~block:0
              ~candidates:all_candidates g
          in
          stats.Plan.Search.best_ns <= stats.Plan.Search.greedy_ns +. 1e-6)

(* ------------------------------------------------------------------ *)
(* ILP partitioner properties                                          *)
(* ------------------------------------------------------------------ *)

let ilp_cfg = { Plan.Ilp.default with Plan.Ilp.max_clusters = 300 }

(* every partition the branch-and-cut considers — probed incumbents
   and the returned one — must be Definition-5 valid, and each of its
   clusters must be reachable through check_merge from the trivial
   partition (the column enumeration claims to emit only such sets) *)
let prop_ilp_partitions_valid =
  QCheck.Test.make ~name:"every ILP partition is valid" ~count:120
    (QCheck.make random_block_gen)
    (fun specs ->
      match mk_block specs with
      | [] -> true
      | stmts ->
          let g = Core.Asdg.build stmts in
          let cost = Plan.Cost.create cost_cfg (mk_prog stmts) in
          let all_valid = ref true in
          let probe p =
            if not (Core.Partition.is_valid p) then all_valid := false
          in
          let p, _stats =
            Plan.Ilp.block ~probe ilp_cfg cost ~block:0
              ~candidates:all_candidates g
          in
          let clusters_mergeable =
            List.for_all
              (fun cl ->
                match cl with
                | [ _ ] -> true
                | _ -> (
                    match
                      Core.Partition.check_merge (Core.Partition.trivial g) cl
                    with
                    | Ok () -> true
                    | Error _ -> false))
              (Core.Partition.clusters p)
          in
          !all_valid && Core.Partition.is_valid p && clusters_mergeable)

(* the solve is seeded with the searched partition and greedy c2+f3,
   so the chain ilp <= search <= greedy must hold on any block *)
let prop_ilp_never_worse =
  QCheck.Test.make ~name:"ilp cost <= search cost <= greedy cost" ~count:120
    (QCheck.make random_block_gen)
    (fun specs ->
      match mk_block specs with
      | [] -> true
      | stmts ->
          let g = Core.Asdg.build stmts in
          let cost = Plan.Cost.create cost_cfg (mk_prog stmts) in
          let sp, sstats =
            Plan.Search.block search_cfg cost ~block:0
              ~candidates:all_candidates g
          in
          let _p, istats =
            Plan.Ilp.block ~seeds:[ sp ] ilp_cfg cost ~block:0
              ~candidates:all_candidates g
          in
          istats.Plan.Ilp.best_ns <= sstats.Plan.Search.best_ns +. 1e-6
          && sstats.Plan.Search.best_ns <= sstats.Plan.Search.greedy_ns +. 1e-6)

(* when the solver proves optimality the certified bound must bracket
   the incumbent from below (and match it at the reported objective) *)
let prop_ilp_bound_sound =
  QCheck.Test.make ~name:"certified bound <= proved optimum" ~count:120
    (QCheck.make random_block_gen)
    (fun specs ->
      match mk_block specs with
      | [] -> true
      | stmts ->
          let g = Core.Asdg.build stmts in
          let cost = Plan.Cost.create cost_cfg (mk_prog stmts) in
          let _p, istats =
            Plan.Ilp.block ilp_cfg cost ~block:0 ~candidates:all_candidates g
          in
          match istats.Plan.Ilp.lower_bound_ns with
          | None -> true
          | Some lb ->
              (not istats.Plan.Ilp.proved)
              || lb <= istats.Plan.Ilp.best_ns +. 1e-3)

(* ------------------------------------------------------------------ *)
(* Cost model sanity on a concrete block                               *)
(* ------------------------------------------------------------------ *)

(* producer/consumer pair: fusing and contracting the temporary must
   strictly reduce the modeled cost *)
let test_cost_prefers_contraction () =
  let stmts =
    [
      Nstmt.make ~region:r44 ~lhs:"A" Expr.(Binop (Add, Ref ("B", v [ 0; 0 ]), Const 1.0));
      Nstmt.make ~region:r44 ~lhs:"C" Expr.(Binop (Add, Ref ("A", v [ 0; 0 ]), Const 2.0));
    ]
  in
  let g = Core.Asdg.build stmts in
  let cost = Plan.Cost.create cost_cfg (mk_prog stmts) in
  let bp_of p contracted =
    {
      Sir.Scalarize.partition = p;
      contracted = List.map (fun x -> (x, Core.Contraction.Scalar)) contracted;
      absorbed = [];
    }
  in
  let trivial = Core.Partition.trivial g in
  let fused = Core.Partition.merge trivial [ 0; 1 ] in
  let unfused_ns = (Plan.Cost.block_cost cost ~block:0 (bp_of trivial [])).Plan.Cost.total_ns in
  let fused_ns = (Plan.Cost.block_cost cost ~block:0 (bp_of fused [ "A" ])).Plan.Cost.total_ns in
  Alcotest.(check bool) "contraction pays" true (fused_ns < unfused_ns);
  (* and the search finds exactly that plan *)
  let p, stats =
    Plan.Search.block search_cfg cost ~block:0 ~candidates:[ "A" ] g
  in
  Alcotest.(check int) "one cluster" 1 (Core.Partition.n_clusters p);
  Alcotest.(check bool) "reported best is fused cost" true
    (abs_float (stats.Plan.Search.best_ns -. fused_ns) < 1e-6)

(* ------------------------------------------------------------------ *)
(* End-to-end planned compiles on suite benchmarks                     *)
(* ------------------------------------------------------------------ *)

let planned_compile ?(machine = Machine.t3e) ?(procs = 16) name =
  let b =
    match Suite.by_name name with
    | Some b -> b
    | None -> Alcotest.failf "no bench %s" name
  in
  let prog = Suite.program ~tile:16 b in
  let cost = Plan.Cost.create { Plan.Cost.machine; procs; opts = Comm.Model.all_on } prog in
  match
    Plan.Driver.compile
      ~search:{ Plan.Search.default with Plan.Search.max_states = 600; beam_width = 2 }
      ~cost prog
  with
  | Ok (c, prov) -> (prog, c, prov)
  | Error d -> Alcotest.failf "plan compile failed: %s" (Obs.Diagnostic.to_string d)

let test_simple_search_wins () =
  let _prog, c, prov = planned_compile "simple" in
  Alcotest.(check bool) "search no worse" true
    (prov.Plan.Driver.search_total_ns
    <= prov.Plan.Driver.greedy_total_ns +. 1e-6);
  (* on simple @ t3e x16 the searched plan strictly beats greedy (the
     paper's §5.2 conflict); locks in the planner's reason to exist *)
  Alcotest.(check bool) "search strictly better" true
    (prov.Plan.Driver.search_total_ns
    < prov.Plan.Driver.greedy_total_ns -. 1e-6);
  Alcotest.(check string) "searched plan chosen" "search"
    prov.Plan.Driver.strategy;
  (* same observable program: the searched plan only reshuffles loops *)
  let greedy =
    match Compilers.Driver.compile_opts (Compilers.Driver.opts Compilers.Driver.C2F3)
            (let b = Option.get (Suite.by_name "simple") in
             Suite.program ~tile:16 b)
    with
    | Ok g -> g
    | Error d -> Alcotest.failf "greedy compile failed: %s" (Obs.Diagnostic.to_string d)
  in
  Alcotest.(check string) "checksum matches greedy"
    (Exec.Interp.checksum (Exec.Interp.run greedy.Compilers.Driver.code))
    (Exec.Interp.checksum (Exec.Interp.run c.Compilers.Driver.code))

let plan_fingerprint (c : Compilers.Driver.compiled) =
  String.concat ";"
    (List.map
       (fun (bp : Sir.Scalarize.block_plan) ->
         String.concat "|"
           (List.map
              (fun cl -> String.concat "," (List.map string_of_int cl))
              (Core.Partition.clusters bp.Sir.Scalarize.partition))
         ^ "/"
         ^ String.concat "," (List.map fst bp.Sir.Scalarize.contracted))
       c.Compilers.Driver.plan)

(* tie costs are broken on canonical cluster keys: two runs must agree
   bit-for-bit, plans and provenance JSON alike *)
let test_deterministic () =
  let run () =
    let _prog, c, prov = planned_compile ~procs:4 "sp" in
    (plan_fingerprint c, Obs.Json.to_string (Plan.Driver.provenance_json prov))
  in
  let f1, j1 = run () in
  let f2, j2 = run () in
  Alcotest.(check string) "same plan" f1 f2;
  Alcotest.(check string) "same provenance JSON" j1 j2

(* sibling candidates are costed on a domain pool when jobs > 1; the
   sequential prefix fixes the visit order and every tie-break, so the
   plan AND the full provenance must be bit-identical at any jobs *)
let test_parallel_search_deterministic () =
  let run jobs =
    let b = Option.get (Suite.by_name "simple") in
    let prog = Suite.program ~tile:16 b in
    let cost =
      Plan.Cost.create
        { Plan.Cost.machine = Machine.t3e; procs = 16; opts = Comm.Model.all_on }
        prog
    in
    match
      Plan.Driver.compile
        ~search:
          {
            Plan.Search.default with
            Plan.Search.max_states = 600;
            beam_width = 2;
            jobs;
          }
        ~cost prog
    with
    | Ok (c, prov) ->
        ( plan_fingerprint c,
          Obs.Json.to_string (Plan.Driver.provenance_json prov) )
    | Error d ->
        Alcotest.failf "plan compile failed: %s" (Obs.Diagnostic.to_string d)
  in
  let f1, j1 = run 1 in
  List.iter
    (fun jobs ->
      let f, j = run jobs in
      Alcotest.(check string)
        (Printf.sprintf "plan identical at %d jobs" jobs)
        f1 f;
      Alcotest.(check string)
        (Printf.sprintf "provenance identical at %d jobs" jobs)
        j1 j)
    [ 2; 8 ]

(* the beam fallback engages when max_states is exhausted with a
   non-empty frontier; its survivor set is ordered by eps-quantized
   cost then canonical cluster key, so the plan must be bit-identical
   however many domains costed the candidates *)
let test_beam_fallback_deterministic () =
  let run jobs =
    let b = Option.get (Suite.by_name "simple") in
    let prog = Suite.program ~tile:16 b in
    let cost =
      Plan.Cost.create
        { Plan.Cost.machine = Machine.t3e; procs = 16; opts = Comm.Model.all_on }
        prog
    in
    match
      Plan.Driver.compile
        ~search:
          {
            Plan.Search.default with
            Plan.Search.max_states = 60;
            beam_width = 2;
            jobs;
          }
        ~cost prog
    with
    | Ok (c, prov) ->
        let rounds =
          List.fold_left
            (fun acc (r : Plan.Driver.block_report) ->
              acc + r.Plan.Driver.stats.Plan.Search.beam_rounds)
            0 prov.Plan.Driver.blocks
        in
        ( plan_fingerprint c,
          Obs.Json.to_string (Plan.Driver.provenance_json prov),
          rounds )
    | Error d ->
        Alcotest.failf "plan compile failed: %s" (Obs.Diagnostic.to_string d)
  in
  let f1, j1, rounds = run 1 in
  Alcotest.(check bool) "beam fallback actually ran" true (rounds > 0);
  List.iter
    (fun jobs ->
      let f, j, _ = run jobs in
      Alcotest.(check string)
        (Printf.sprintf "beam plan identical at %d jobs" jobs)
        f1 f;
      Alcotest.(check string)
        (Printf.sprintf "beam provenance identical at %d jobs" jobs)
        j1 j)
    [ 2; 8 ]

let ilp_compile ?(machine = Machine.t3e) ?(procs = 1) ?(max_clusters = 1500)
    name =
  let b =
    match Suite.by_name name with
    | Some b -> b
    | None -> Alcotest.failf "no bench %s" name
  in
  let prog = Suite.program ~tile:16 b in
  let cost =
    Plan.Cost.create { Plan.Cost.machine; procs; opts = Comm.Model.all_on } prog
  in
  match
    Plan.Driver.compile_ilp
      ~search:
        { Plan.Search.default with Plan.Search.max_states = 600; beam_width = 2 }
      ~ilp:{ Plan.Ilp.default with Plan.Ilp.max_clusters }
      ~cost prog
  with
  | Ok (c, prov) -> (prog, c, prov)
  | Error d ->
      Alcotest.failf "ilp compile failed: %s" (Obs.Diagnostic.to_string d)

(* the full chain on a real benchmark, plus checksum equality against
   the greedy ladder — the ILP may only reshuffle loops, never results *)
let test_ilp_chain_and_checksum () =
  let _prog, c, prov = ilp_compile ~procs:16 "simple" in
  let g = prov.Plan.Driver.greedy_total_ns
  and s = prov.Plan.Driver.search_total_ns in
  let i =
    match prov.Plan.Driver.ilp_total_ns with
    | Some i -> i
    | None -> Alcotest.fail "compile_ilp reported no ilp_total_ns"
  in
  Alcotest.(check bool) "ilp <= search" true (i <= s +. 1e-6);
  Alcotest.(check bool) "search <= greedy" true (s <= g +. 1e-6);
  Alcotest.(check bool) "ilp blocks reported" true
    (prov.Plan.Driver.ilp_blocks <> []);
  let greedy =
    match
      Compilers.Driver.compile_opts
        (Compilers.Driver.opts Compilers.Driver.C2F3)
        (let b = Option.get (Suite.by_name "simple") in
         Suite.program ~tile:16 b)
    with
    | Ok g -> g
    | Error d ->
        Alcotest.failf "greedy compile failed: %s" (Obs.Diagnostic.to_string d)
  in
  Alcotest.(check string) "checksum matches greedy"
    (Exec.Interp.checksum (Exec.Interp.run greedy.Compilers.Driver.code))
    (Exec.Interp.checksum (Exec.Interp.run c.Compilers.Driver.code))

(* at procs=1 (no comm term) on a block small enough to enumerate
   completely, the solve must close with a certificate: proved, and
   the certified bound equal to the chosen cost *)
let test_ilp_proves_small_bench () =
  let _prog, _c, prov = ilp_compile ~procs:1 "frac" in
  (match prov.Plan.Driver.proved_optimal with
  | Some true -> ()
  | _ -> Alcotest.fail "frac @ procs=1 should be proved optimal");
  match (prov.Plan.Driver.certified_lb_ns, prov.Plan.Driver.ilp_total_ns) with
  | Some lb, Some i ->
      Alcotest.(check bool) "bound brackets the optimum" true
        (lb <= i +. 1e-3 && i <= lb +. 1e-3)
  | _ -> Alcotest.fail "proved cell must carry a certified bound"

(* two identical solves must agree bit-for-bit, plans and provenance
   JSON alike — the B&B explores a deterministic tree *)
let test_ilp_deterministic () =
  let run () =
    let _prog, c, prov = ilp_compile ~procs:4 "sp" ~max_clusters:400 in
    (plan_fingerprint c, Obs.Json.to_string (Plan.Driver.provenance_json prov))
  in
  let f1, j1 = run () in
  let f2, j2 = run () in
  Alcotest.(check string) "same plan" f1 f2;
  Alcotest.(check string) "same provenance JSON" j1 j2

let test_never_worse_across_suite () =
  List.iter
    (fun (b : Suite.bench) ->
      let _prog, _c, prov = planned_compile b.Suite.name in
      Alcotest.(check bool)
        (b.Suite.name ^ " search no worse") true
        (prov.Plan.Driver.chosen_total_ns
        <= prov.Plan.Driver.greedy_total_ns +. 1e-6))
    Suite.all

let suites =
  [
    ( "plan",
      [
        Alcotest.test_case "cost prefers contraction" `Quick
          test_cost_prefers_contraction;
        Alcotest.test_case "simple: search beats greedy, checksum equal" `Slow
          test_simple_search_wins;
        Alcotest.test_case "deterministic plans and provenance" `Slow
          test_deterministic;
        Alcotest.test_case "parallel search matches sequential" `Slow
          test_parallel_search_deterministic;
        Alcotest.test_case "beam fallback deterministic across jobs" `Slow
          test_beam_fallback_deterministic;
        Alcotest.test_case "ilp chain holds, checksum equal" `Slow
          test_ilp_chain_and_checksum;
        Alcotest.test_case "ilp proves small bench optimal" `Slow
          test_ilp_proves_small_bench;
        Alcotest.test_case "ilp deterministic plans and provenance" `Slow
          test_ilp_deterministic;
        Alcotest.test_case "search never worse across suite" `Slow
          test_never_worse_across_suite;
        QCheck_alcotest.to_alcotest prop_search_states_valid;
        QCheck_alcotest.to_alcotest prop_search_never_worse;
        QCheck_alcotest.to_alcotest prop_ilp_partitions_valid;
        QCheck_alcotest.to_alcotest prop_ilp_never_worse;
        QCheck_alcotest.to_alcotest prop_ilp_bound_sound;
      ] );
  ]
