(* The SPMD backend: checksum agreement with the sequential
   interpreter across the suite, exact charged-traffic agreement with
   the analytical model, wire-level accounting on a hand-built
   exchange, and the engine's declared domain limits. *)

open Ir
module Vec = Support.Vec

let v = Vec.of_list
let interior = Region.of_bounds [ (1, 8); (1, 8) ]
let padded = Region.of_bounds [ (0, 9); (0, 9) ]

let user name = { Prog.name; bounds = padded; kind = Prog.User }

let prog_of ?(live = [ "Z" ]) ?(scalars = []) body =
  {
    Prog.name = "s";
    arrays = List.map user [ "A"; "B"; "C"; "Z" ];
    scalars;
    body;
    live_out = live;
  }

let astmt lhs rhs = Prog.Astmt (Nstmt.make ~region:interior ~lhs rhs)

let compile ?(level = Compilers.Driver.Baseline) prog =
  Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog

let execute ?(machine = Machine.t3e) ?(procs = 4)
    ?(opts = Comm.Model.all_on) ?(cachesim = false) c =
  Spmd.execute { Spmd.machine; procs; opts; cachesim } c

let seq_checksum c = Exec.Interp.checksum (Exec.Interp.run c.Compilers.Driver.code)

(* Levels the agreement satellite covers: base .. c2+f3. *)
let levels = Compilers.Driver.[ Baseline; F1; C1; F2; F3; C2; C2F3 ]

let tiny_tile (b : Suite.bench) = if b.rank = 1 then 128 else 12

(* --- suite-wide checksum equality ---------------------------------- *)

(* For every benchmark x optimization level x processor count, the
   distributed run must produce bit-identical live-out values to the
   sequential interpreter on the same compiled program. *)
let test_suite_checksums (b : Suite.bench) () =
  let prog = Suite.program ~tile:(tiny_tile b) b in
  List.iter
    (fun level ->
      let c = compile ~level prog in
      let seq = seq_checksum c in
      List.iter
        (fun procs ->
          let r = execute ~procs c in
          Alcotest.(check string)
            (Printf.sprintf "%s @ %s x%d" b.name
               (Compilers.Driver.level_name level)
               procs)
            seq r.Spmd.checksum)
        [ 1; 4; 16 ])
    levels

(* --- executed traffic == modeled traffic --------------------------- *)

(* At full optimization the engine must charge exactly the messages
   and bytes the analytical model predicts, with nothing falling to
   the unscheduled-fill path. *)
let test_suite_model_agreement (b : Suite.bench) () =
  let prog = Suite.program ~tile:(tiny_tile b) b in
  let c = compile ~level:Compilers.Driver.C2F3 prog in
  let seq = seq_checksum c in
  List.iter
    (fun procs ->
      let r = execute ~procs c in
      let a =
        Comm.Model.analyze ~machine:Machine.t3e ~procs ~opts:Comm.Model.all_on c
      in
      let tag fmt = Printf.sprintf ("%s x%d " ^^ fmt) b.name procs in
      Alcotest.(check string) (tag "checksum") seq r.Spmd.checksum;
      Alcotest.(check int)
        (tag "messages") a.Comm.Model.messages r.Spmd.charged_messages;
      Alcotest.(check int) (tag "bytes") a.Comm.Model.bytes r.Spmd.charged_bytes;
      Alcotest.(check int) (tag "unmodeled") 0 r.Spmd.unmodeled_exchanges)
    [ 4; 16 ]

(* --- wire-level accounting on a hand-built exchange ---------------- *)

let test_wire_accounting () =
  (* Z := A@(-1,0) over [1..8]^2, arrays padded [0..9]^2, 4 processors
     in a 2x2 grid: chunks split [0..9] into [0..4] and [5..9].

     Charged (model currency): one north exchange of one 8-element
     region row = 1 message, 64 bytes.

     Wire: only the two processors in the lower grid row have a north
     neighbor, and each receives its 5-column slab of the boundary row
     = 2 messages, 2 x 5 x 8 = 80 bytes. *)
  let c = compile (prog_of [ astmt "Z" Expr.(Ref ("A", v [ -1; 0 ])) ]) in
  let r = execute ~procs:4 c in
  Alcotest.(check int) "charged messages" 1 r.Spmd.charged_messages;
  Alcotest.(check int) "charged bytes" 64 r.Spmd.charged_bytes;
  Alcotest.(check int) "wire messages" 2 r.Spmd.wire_messages;
  Alcotest.(check int) "wire bytes" 80 r.Spmd.wire_bytes;
  Alcotest.(check int) "ghost fills" 2 r.Spmd.ghost_fills;
  Alcotest.(check int) "unmodeled" 0 r.Spmd.unmodeled_exchanges;
  Alcotest.(check string) "checksum" (seq_checksum c) r.Spmd.checksum

let test_single_proc_has_no_wire_traffic () =
  let c = compile (prog_of [ astmt "Z" Expr.(Ref ("A", v [ -1; 0 ])) ]) in
  let r = execute ~procs:1 c in
  Alcotest.(check int) "wire messages" 0 r.Spmd.wire_messages;
  Alcotest.(check int) "wire bytes" 0 r.Spmd.wire_bytes;
  Alcotest.(check string) "checksum" (seq_checksum c) r.Spmd.checksum

(* --- reductions ---------------------------------------------------- *)

let test_reduction_tree_messages () =
  (* A log2(4) = 2-stage combining tree is charged; on the wire the
     binomial tree moves p-1 = 3 one-double partial sums. *)
  let c =
    compile
      (prog_of ~live:[ "s" ] ~scalars:[ ("s", 0.0) ]
         [
           astmt "Z" Expr.(Binop (Add, Idx 1, Idx 2));
           Prog.Reduce
             {
               target = "s";
               op = Prog.Rsum;
               region = interior;
               arg = Expr.(Ref ("Z", v [ 0; 0 ]));
             };
         ])
  in
  let r = execute ~procs:4 c in
  Alcotest.(check int) "charged tree messages" 2 r.Spmd.reduction_messages;
  Alcotest.(check int) "wire messages" 3 r.Spmd.wire_messages;
  Alcotest.(check int) "wire bytes" 24 r.Spmd.wire_bytes;
  Alcotest.(check string) "checksum" (seq_checksum c) r.Spmd.checksum

(* --- cache simulation ---------------------------------------------- *)

let test_cachesim_reports_stats () =
  let c = compile (prog_of [ astmt "Z" Expr.(Ref ("A", v [ -1; 0 ])) ]) in
  let r = execute ~procs:4 ~cachesim:true c in
  (match r.Spmd.l1 with
  | Some s ->
      Alcotest.(check bool) "l1 accessed" true (s.Cachesim.Cache.accesses > 0)
  | None -> Alcotest.fail "expected L1 stats with cachesim on");
  Alcotest.(check string) "checksum unchanged" (seq_checksum c) r.Spmd.checksum;
  let off = execute ~procs:4 c in
  Alcotest.(check bool) "no stats without cachesim" true (off.Spmd.l1 = None)

(* --- domain limits ------------------------------------------------- *)

let test_unsupported_deep_halo () =
  (* 8 processors split [0..15] into 2-element chunks: a depth-3 halo
     cannot be materialized.  4 processors leave 4-element chunks and
     the same program runs fine. *)
  let bounds = Region.of_bounds [ (0, 15) ] in
  let prog =
    {
      Prog.name = "deep";
      arrays =
        [
          { Prog.name = "A"; bounds; kind = Prog.User };
          { Prog.name = "Z"; bounds; kind = Prog.User };
        ];
      scalars = [];
      body =
        [
          Prog.Astmt
            (Nstmt.make
               ~region:(Region.of_bounds [ (3, 12) ])
               ~lhs:"Z"
               Expr.(Ref ("A", v [ -3 ])));
        ];
      live_out = [ "Z" ];
    }
  in
  let c = compile prog in
  Alcotest.(check bool) "raises Unsupported" true
    (match execute ~procs:8 c with
    | (_ : Spmd.report) -> false
    | exception Spmd.Unsupported _ -> true);
  let r = execute ~procs:4 c in
  Alcotest.(check string) "ok on 4" (seq_checksum c) r.Spmd.checksum

(* --- rank 3 -------------------------------------------------------- *)

let test_rank3_non_power_of_two () =
  match Suite.extras |> List.find_opt (fun b -> b.Suite.rank = 3) with
  | None -> ()
  | Some b ->
      let prog = Suite.program ~tile:12 b in
      let c = compile ~level:Compilers.Driver.C2F3 prog in
      let seq = seq_checksum c in
      List.iter
        (fun procs ->
          let r = execute ~procs c in
          let a =
            Comm.Model.analyze ~machine:Machine.t3e ~procs
              ~opts:Comm.Model.all_on c
          in
          Alcotest.(check string)
            (Printf.sprintf "checksum x%d" procs)
            seq r.Spmd.checksum;
          Alcotest.(check int)
            (Printf.sprintf "messages x%d" procs)
            a.Comm.Model.messages r.Spmd.charged_messages)
        [ 6; 12 ]

let suites =
  [
    ( "spmd.checksum",
      List.map
        (fun b ->
          Alcotest.test_case
            (Printf.sprintf "%s == sequential (all levels, p in 1/4/16)"
               b.Suite.name)
            `Slow (test_suite_checksums b))
        Suite.all );
    ( "spmd.agreement",
      List.map
        (fun b ->
          Alcotest.test_case
            (Printf.sprintf "%s traffic == model @ c2+f3" b.Suite.name)
            `Slow (test_suite_model_agreement b))
        Suite.all
      @ [
          Alcotest.test_case "rank-3 grid, procs 6 and 12" `Slow
            test_rank3_non_power_of_two;
        ] );
    ( "spmd.engine",
      [
        Alcotest.test_case "wire accounting" `Quick test_wire_accounting;
        Alcotest.test_case "single proc sends nothing" `Quick
          test_single_proc_has_no_wire_traffic;
        Alcotest.test_case "reduction tree" `Quick test_reduction_tree_messages;
        Alcotest.test_case "cache simulation" `Quick test_cachesim_reports_stats;
        Alcotest.test_case "deep halo unsupported" `Quick
          test_unsupported_deep_halo;
      ] );
  ]
