(* Scalar-level optimizer: constant folding + CSE. *)

open Ir
module Vec = Support.Vec
module Code = Sir.Code

let v = Vec.of_list

let test_fold_constants () =
  let e =
    Code.Binop
      (Expr.Add, Code.Const 2.0, Code.Binop (Expr.Mul, Code.Const 3.0, Code.Const 4.0))
  in
  Alcotest.(check bool) "folded" true (Sir.Simplify.fold_expr e = Code.Const 14.0)

let test_fold_identities () =
  let x = Code.Load ("A", [| { Code.base = "__i1"; off = 0 } |]) in
  Alcotest.(check bool) "x*1" true
    (Sir.Simplify.fold_expr (Code.Binop (Expr.Mul, x, Code.Const 1.0)) = x);
  Alcotest.(check bool) "1*x" true
    (Sir.Simplify.fold_expr (Code.Binop (Expr.Mul, Code.Const 1.0, x)) = x);
  Alcotest.(check bool) "x/1" true
    (Sir.Simplify.fold_expr (Code.Binop (Expr.Div, x, Code.Const 1.0)) = x);
  (* x+0 must NOT fold: (-0) + 0 = +0 *)
  Alcotest.(check bool) "x+0 kept" true
    (Sir.Simplify.fold_expr (Code.Binop (Expr.Add, x, Code.Const 0.0)) <> x)

let test_fold_select () =
  let a = Code.Scalar "a" and b = Code.Scalar "b" in
  Alcotest.(check bool) "true branch" true
    (Sir.Simplify.fold_expr (Code.Select (Code.Const 1.0, a, b)) = a);
  Alcotest.(check bool) "false branch" true
    (Sir.Simplify.fold_expr (Code.Select (Code.Const 0.0, a, b)) = b)

(* a loop body with a repeated subexpression *)
let shared_body_program () =
  let sub i off : Code.subscript array = [| { Code.base = i; off } |] in
  let load x = Code.Load (x, sub "__i1" 0) in
  let shared = Code.Binop (Expr.Mul, load "A", load "A") in
  {
    Code.name = "cse";
    allocs =
      [
        { Code.name = "A"; dims = [| (0, 9) |] };
        { Code.name = "B"; dims = [| (0, 9) |] };
        { Code.name = "C"; dims = [| (0, 9) |] };
      ];
    scalars = [];
    body =
      [
        Code.For
          {
            var = "__i1";
            lo = 0;
            hi = 9;
            step = 1;
            body =
              [
                Code.Store ("A", sub "__i1" 0, Code.Scalar "__i1");
                Code.Store
                  ("B", sub "__i1" 0, Code.Binop (Expr.Add, shared, Code.Const 1.0));
                Code.Store
                  ("C", sub "__i1" 0, Code.Binop (Expr.Sub, shared, Code.Const 1.0));
              ];
          };
      ];
    live_out = [ "B"; "C" ];
  }

let test_cse_shares () =
  let p = shared_body_program () in
  let q = Sir.Simplify.program p in
  Alcotest.(check bool)
    "fewer static ops" true
    (Sir.Simplify.count_ops q < Sir.Simplify.count_ops p);
  (* and the shared value is computed once per iteration: loads drop *)
  let loads prog =
    (Exec.Interp.counters (Exec.Interp.run prog)).Exec.Interp.loads
  in
  Alcotest.(check int) "4 loads before (2 per use)" 40 (loads p);
  Alcotest.(check int) "2 loads after" 20 (loads q);
  Alcotest.(check string) "same results"
    (Exec.Interp.checksum (Exec.Interp.run p))
    (Exec.Interp.checksum (Exec.Interp.run q))

let test_cse_respects_writes () =
  (* A is stored between the two identical loads: no sharing allowed *)
  let sub off : Code.subscript array = [| { Code.base = ""; off } |] in
  let load = Code.Load ("A", sub 3) in
  let p =
    {
      Code.name = "clobber";
      allocs = [ { Code.name = "A"; dims = [| (0, 9) |] }; { Code.name = "B"; dims = [| (0, 9) |] } ];
      scalars = [ ("x", 0.0); ("y", 0.0) ];
      body =
        [
          Code.Store ("A", sub 3, Code.Const 5.0);
          Code.Sassign ("x", Code.Binop (Expr.Add, load, Code.Const 1.0));
          Code.Store ("A", sub 3, Code.Const 9.0);
          Code.Sassign ("y", Code.Binop (Expr.Add, load, Code.Const 1.0));
        ];
      live_out = [ "x"; "y" ];
    }
  in
  let q = Sir.Simplify.program p in
  let r = Exec.Interp.run q in
  Alcotest.(check (float 0.0)) "x sees 5" 6.0 (Exec.Interp.get_scalar r "x");
  Alcotest.(check (float 0.0)) "y sees 9" 10.0 (Exec.Interp.get_scalar r "y")

let test_cse_across_loop_blocked () =
  (* the same expression before and after a loop that clobbers its
     input must not be shared *)
  let sub off : Code.subscript array = [| { Code.base = ""; off } |] in
  let load = Code.Load ("A", sub 0) in
  let p =
    {
      Code.name = "span";
      allocs = [ { Code.name = "A"; dims = [| (0, 3) |] } ];
      scalars = [ ("x", 0.0); ("y", 0.0) ];
      body =
        [
          Code.Sassign ("x", Code.Binop (Expr.Mul, load, load));
          Code.For
            {
              var = "__i1";
              lo = 0;
              hi = 0;
              step = 1;
              body = [ Code.Store ("A", sub 0, Code.Const 7.0) ];
            };
          Code.Sassign ("y", Code.Binop (Expr.Mul, load, load));
        ];
      live_out = [ "x"; "y" ];
    }
  in
  let q = Sir.Simplify.program p in
  let r = Exec.Interp.run q in
  Alcotest.(check (float 0.0)) "x from initial 0" 0.0 (Exec.Interp.get_scalar r "x");
  Alcotest.(check (float 0.0)) "y from 7" 49.0 (Exec.Interp.get_scalar r "y")

(* Property: simplification preserves the semantics of every compiled
   benchmark and never increases static operation count. *)
let test_simplify_benchmarks () =
  List.iter
    (fun (b : Suite.bench) ->
      let tile = match b.Suite.name with "ep" -> 128 | _ -> 8 in
      let prog = Suite.program ~tile b in
      List.iter
        (fun level ->
          let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
          let code = c.Compilers.Driver.code in
          let simplified = Sir.Simplify.program code in
          Alcotest.(check bool)
            (Printf.sprintf "%s ops do not grow" b.Suite.name)
            true
            (Sir.Simplify.count_ops simplified <= Sir.Simplify.count_ops code);
          Alcotest.(check string)
            (Printf.sprintf "%s @ %s simplified equivalently" b.Suite.name
               (Compilers.Driver.level_name level))
            (Exec.Interp.checksum (Exec.Interp.run code))
            (Exec.Interp.checksum (Exec.Interp.run simplified)))
        Compilers.Driver.[ Baseline; C2F3 ])
    Suite.all

let suites =
  [
    ( "sir.simplify",
      [
        Alcotest.test_case "constant folding" `Quick test_fold_constants;
        Alcotest.test_case "identities" `Quick test_fold_identities;
        Alcotest.test_case "select folding" `Quick test_fold_select;
        Alcotest.test_case "CSE shares loads" `Quick test_cse_shares;
        Alcotest.test_case "CSE respects writes" `Quick test_cse_respects_writes;
        Alcotest.test_case "CSE blocked across loops" `Quick test_cse_across_loop_blocked;
        Alcotest.test_case "benchmarks unchanged" `Quick test_simplify_benchmarks;
      ] );
  ]
