(* Communication model details: redundancy elimination, combining,
   pipelining windows, loop multipliers, reduction trees — plus a
   naive reference implementation of the cache for cross-checking. *)

open Ir
module Vec = Support.Vec

let v = Vec.of_list
let interior = Region.of_bounds [ (1, 8); (1, 8) ]
let padded = Region.of_bounds [ (0, 9); (0, 9) ]

let user name = { Prog.name; bounds = padded; kind = Prog.User }

let prog_of ?(live = [ "Z" ]) ?(scalars = []) body =
  {
    Prog.name = "c";
    arrays = List.map user [ "A"; "B"; "C"; "Z" ];
    scalars;
    body;
    live_out = live;
  }

let astmt lhs rhs = Prog.Astmt (Nstmt.make ~region:interior ~lhs rhs)

let analyze ?(opts = Comm.Model.vectorize_only) ?(procs = 4)
    ?(level = Compilers.Driver.Baseline) prog =
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
  Comm.Model.analyze ~machine:Machine.t3e ~procs ~opts c

let test_redundancy_elimination () =
  (* two clusters both read A@north with no write of A in between: the
     second exchange is redundant *)
  let prog =
    prog_of
      [
        astmt "B" Expr.(Ref ("A", v [ -1; 0 ]));
        astmt "C" Expr.(Ref ("A", v [ -1; 0 ]));
        astmt "Z" Expr.(Binop (Add, Ref ("B", v [ 0; 0 ]), Ref ("C", v [ 0; 0 ])));
      ]
  in
  let plain = analyze prog in
  let redun =
    analyze ~opts:{ Comm.Model.vectorize_only with redundancy = true } prog
  in
  Alcotest.(check int) "2 without" 2 plain.Comm.Model.messages;
  Alcotest.(check int) "1 with" 1 redun.Comm.Model.messages

let test_redundancy_blocked_by_write () =
  (* a write to A between the two reads invalidates the ghosts *)
  let prog =
    prog_of
      [
        astmt "B" Expr.(Ref ("A", v [ -1; 0 ]));
        astmt "A" Expr.(Ref ("B", v [ 0; 0 ]));
        astmt "Z" Expr.(Ref ("A", v [ -1; 0 ]));
      ]
  in
  let redun =
    analyze ~opts:{ Comm.Model.vectorize_only with redundancy = true } prog
  in
  Alcotest.(check int) "both exchanges kept" 2 redun.Comm.Model.messages

let test_combining () =
  (* one statement reads two arrays from the same neighbor: combining
     shares the message (one latency), bytes unchanged *)
  let prog =
    prog_of
      [
        astmt "Z"
          Expr.(Binop (Add, Ref ("A", v [ -1; 0 ]), Ref ("B", v [ -1; 0 ])));
      ]
  in
  let plain = analyze prog in
  let comb =
    analyze ~opts:{ Comm.Model.vectorize_only with combining = true } prog
  in
  Alcotest.(check int) "2 messages plain" 2 plain.Comm.Model.messages;
  Alcotest.(check int) "1 message combined" 1 comb.Comm.Model.messages;
  Alcotest.(check int) "bytes conserved" plain.Comm.Model.bytes
    comb.Comm.Model.bytes

let test_pipelining_window () =
  (* producer .. independent work .. consumer: with pipelining the
     independent cluster's compute hides part of the exchange *)
  let prog =
    prog_of
      [
        astmt "A" Expr.(Binop (Mul, Idx 1, Const 2.0));
        astmt "B" Expr.(Binop (Add, Idx 2, Idx 1));  (* independent work *)
        astmt "Z" Expr.(Binop (Add, Ref ("A", v [ -1; 0 ]), Ref ("B", v [ 0; 0 ])));
      ]
  in
  let raw = analyze prog in
  let piped =
    analyze ~opts:{ Comm.Model.vectorize_only with pipelining = true } prog
  in
  Alcotest.(check bool)
    "overlap reduces wait" true
    (piped.Comm.Model.effective_ns < raw.Comm.Model.effective_ns);
  Alcotest.(check bool)
    "floor keeps some cost" true
    (piped.Comm.Model.effective_ns > 0.0)

let test_loop_multiplier () =
  (* exchanges inside a 5-trip loop cost 5x *)
  let body = [ astmt "Z" Expr.(Ref ("A", v [ -1; 0 ])) ] in
  let once = prog_of body in
  let looped =
    prog_of [ Prog.Sloop { var = "t"; lo = 1; hi = 5; body } ]
  in
  let s1 = analyze once in
  let s5 = analyze looped in
  Alcotest.(check int) "5x messages" (5 * s1.Comm.Model.messages)
    s5.Comm.Model.messages;
  Alcotest.(check int) "5x bytes" (5 * s1.Comm.Model.bytes) s5.Comm.Model.bytes

let test_reduction_tree () =
  let prog =
    prog_of ~live:[ "s" ] ~scalars:[ ("s", 0.0) ]
      [
        astmt "Z" Expr.(Binop (Mul, Idx 1, Idx 2));
        Prog.Reduce
          { target = "s"; op = Prog.Rsum; region = interior;
            arg = Expr.(Ref ("Z", v [ 0; 0 ])) };
      ]
  in
  let s4 = analyze ~procs:4 prog in
  let s16 = analyze ~procs:16 prog in
  Alcotest.(check bool) "tree cost grows with p" true
    (s16.Comm.Model.reduction_ns > s4.Comm.Model.reduction_ns);
  (* log2: 16 procs needs twice the stages of 4 *)
  Alcotest.(check (float 1e-6))
    "log2 stages"
    (2.0 *. s4.Comm.Model.reduction_ns)
    s16.Comm.Model.reduction_ns

let test_contraction_kills_comm () =
  (* after c2, a contracted temporary is never exchanged; and offset-0
     programs communicate nothing but reductions *)
  let prog =
    prog_of
      [
        astmt "B" Expr.(Ref ("A", v [ 0; 0 ]));
        astmt "Z" Expr.(Ref ("B", v [ 0; 0 ]));
      ]
  in
  let s = analyze ~level:Compilers.Driver.C2 prog in
  Alcotest.(check int) "no messages" 0 s.Comm.Model.messages

let test_corner_ghost_bytes () =
  (* a diagonal offset needs a 1-element corner: 8 bytes *)
  let prog = prog_of [ astmt "Z" Expr.(Ref ("A", v [ -1; -1 ])) ] in
  let s = analyze prog in
  Alcotest.(check int) "corner" 8 s.Comm.Model.bytes;
  (* a 2-deep offset moves a 2-row boundary strip *)
  let deep = Region.of_bounds [ (3, 8); (1, 8) ] in
  let prog2 =
    prog_of
      [ Prog.Astmt (Nstmt.make ~region:deep ~lhs:"Z" Expr.(Ref ("A", v [ -2; 0 ]))) ]
  in
  let s2 = analyze prog2 in
  Alcotest.(check int) "2-deep row strip" (2 * 8 * 8) s2.Comm.Model.bytes

let test_cluster_cost_positive () =
  let prog = prog_of [ astmt "Z" Expr.(Binop (Add, Idx 1, Idx 2)) ] in
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.Baseline) prog in
  match c.Compilers.Driver.plan with
  | [ bp ] ->
      let p = bp.Sir.Scalarize.partition in
      let rep = List.hd (List.hd (Core.Partition.clusters p)) in
      Alcotest.(check bool) "positive" true
        (Comm.Model.cluster_cost_ns ~machine:Machine.t3e p rep > 0.0)
  | _ -> Alcotest.fail "one block expected"

(* ------------------------------------------------------------------ *)
(* Cache simulator vs a naive reference model                          *)
(* ------------------------------------------------------------------ *)

(* A deliberately slow but obviously correct set-associative LRU cache:
   each set is a list of lines, most recently used first. *)
module Naive = struct
  type t = {
    sets : int;
    assoc : int;
    line : int;
    mutable state : int list array;
    mutable hits : int;
    mutable accesses : int;
  }

  let create ~size ~line ~assoc =
    let sets = size / (line * assoc) in
    {
      sets;
      assoc;
      line;
      state = Array.make sets [];
      hits = 0;
      accesses = 0;
    }

  let access t addr =
    let ln = addr / t.line in
    let set = ln mod t.sets in
    t.accesses <- t.accesses + 1;
    let lines = t.state.(set) in
    if List.mem ln lines then begin
      t.hits <- t.hits + 1;
      t.state.(set) <- ln :: List.filter (fun x -> x <> ln) lines;
      true
    end
    else begin
      let kept =
        if List.length lines >= t.assoc then
          List.filteri (fun i _ -> i < t.assoc - 1) lines
        else lines
      in
      t.state.(set) <- ln :: kept;
      false
    end
end

let prop_cache_matches_naive =
  QCheck.Test.make ~name:"cache simulator == naive LRU reference" ~count:300
    QCheck.(
      pair
        (oneofl [ (256, 32, 1); (512, 32, 2); (1024, 64, 4) ])
        (list_of_size Gen.(int_range 1 300) (int_range 0 8192)))
    (fun ((size, line, assoc), addrs) ->
      let fast =
        Cachesim.Cache.create
          { Cachesim.Cache.size_bytes = size; line_bytes = line; assoc }
      in
      let slow = Naive.create ~size ~line ~assoc in
      List.for_all
        (fun a -> Cachesim.Cache.access fast ~addr:a = Naive.access slow a)
        addrs)

(* --- Dist: grid factorization, split dims, neighbor directions ---- *)

let check_per_dim msg ~rank ~procs expect =
  let d = Comm.Dist.make ~rank ~procs in
  Alcotest.(check (array int)) msg (Array.of_list expect) (Comm.Dist.per_dim d)

let test_dist_factorization () =
  check_per_dim "6 over rank 3" ~rank:3 ~procs:6 [ 2; 3; 1 ];
  check_per_dim "12 over rank 3" ~rank:3 ~procs:12 [ 2; 2; 3 ];
  check_per_dim "16 over rank 3" ~rank:3 ~procs:16 [ 4; 2; 2 ];
  check_per_dim "12 over rank 2" ~rank:2 ~procs:12 [ 6; 2 ];
  check_per_dim "6 over rank 2" ~rank:2 ~procs:6 [ 2; 3 ];
  check_per_dim "1 over rank 3" ~rank:3 ~procs:1 [ 1; 1; 1 ]

let test_dist_split_and_remote_dir () =
  (* 6 processors over rank 3: 2x3x1 — the third dimension is serial *)
  let d = Comm.Dist.make ~rank:3 ~procs:6 in
  Alcotest.(check bool) "dim 1 split" true (Comm.Dist.dim_split d 1);
  Alcotest.(check bool) "dim 2 split" true (Comm.Dist.dim_split d 2);
  Alcotest.(check bool) "dim 3 serial" false (Comm.Dist.dim_split d 3);
  let dir off = Comm.Dist.remote_dir d (v off) in
  Alcotest.(check (option (array int)))
    "offset only in the serial dim is local" None
    (dir [ 0; 0; -1 ]);
  Alcotest.(check (option (array int)))
    "split components kept, serial dropped"
    (Some [| 0; 1; 0 |])
    (dir [ 0; 2; -1 ]);
  Alcotest.(check (option (array int)))
    "signs, not magnitudes"
    (Some [| -1; 1; 0 |])
    (dir [ -3; 1; 0 ]);
  Alcotest.(check (option (array int))) "null offset" None (dir [ 0; 0; 0 ]);
  (* 12 over rank 2 (6x2): both dims split *)
  let d2 = Comm.Dist.make ~rank:2 ~procs:12 in
  Alcotest.(check (option (array int)))
    "rank 2 diagonal"
    (Some [| 1; -1 |])
    (Comm.Dist.remote_dir d2 (v [ 1; -1 ]));
  Alcotest.check_raises "rank mismatch rejected"
    (Invalid_argument "Dist.remote_dir: rank mismatch") (fun () ->
      ignore (Comm.Dist.remote_dir d2 (v [ 1; 0; 0 ])))

let suites =
  [
    ( "comm.model",
      [
        Alcotest.test_case "redundancy elimination" `Quick test_redundancy_elimination;
        Alcotest.test_case "redundancy blocked by write" `Quick test_redundancy_blocked_by_write;
        Alcotest.test_case "message combining" `Quick test_combining;
        Alcotest.test_case "pipelining window" `Quick test_pipelining_window;
        Alcotest.test_case "loop multiplier" `Quick test_loop_multiplier;
        Alcotest.test_case "reduction tree" `Quick test_reduction_tree;
        Alcotest.test_case "contraction kills comm" `Quick test_contraction_kills_comm;
        Alcotest.test_case "ghost bytes" `Quick test_corner_ghost_bytes;
        Alcotest.test_case "cluster cost" `Quick test_cluster_cost_positive;
      ] );
    ( "comm.dist",
      [
        Alcotest.test_case "factorization" `Quick test_dist_factorization;
        Alcotest.test_case "split dims and remote dirs" `Quick
          test_dist_split_and_remote_dir;
      ] );
    ( "cachesim.reference",
      [ QCheck_alcotest.to_alcotest prop_cache_matches_naive ] );
  ]
