(* The lazy array-expression frontend (lib/lazy): flush boundaries,
   dead-op elision, memoization, record-time shape errors, trace-shape
   plan-cache reuse, and the differential property that forcing any
   random trace matches the eager reference interpreter on the trace's
   direct lowering. *)

open Ir
module T = Lazyarr.Trace

let region1 lo hi = Region.of_bounds [ (lo, hi) ]

let add a b = Expr.Binop (Expr.Add, a, b)
let mul a b = Expr.Binop (Expr.Mul, a, b)

(* source over [0..15]: element i = 3i + c *)
let src ?(c = 1.0) ctx =
  T.gen ctx (region1 0 15) (add (mul (Expr.Const 3.0) (Expr.Idx 1)) (Expr.Const c))

let check_floats name want got =
  Alcotest.(check (list (float 1e-9))) name (Array.to_list want) (Array.to_list got)

(* ------------------------------------------------------------------ *)
(* Values and flush boundaries                                         *)
(* ------------------------------------------------------------------ *)

let test_force_values () =
  let ctx = T.create () in
  let a = src ctx in
  let b = T.map (fun x -> mul (Expr.Const 2.0) x) a in
  let v = T.force b in
  check_floats "2*(3i+1) over [0..15]" (Array.init 16 (fun i -> float_of_int ((6 * i) + 2))) v;
  let st = T.stats ctx in
  Alcotest.(check int) "one flush" 1 st.T.flushes;
  Alcotest.(check int) "both ops lowered" 2 st.T.ops_lowered

let test_observation_order_and_recompute () =
  (* two siblings off one source: forcing one elides the other;
     forcing the other later recomputes the (contracted) source *)
  let ctx = T.create () in
  let a = src ctx in
  let b = T.map (fun x -> add x (Expr.Const 1.0)) a in
  let c = T.map (fun x -> mul x (Expr.Const 2.0)) a in
  let vb = T.force b in
  let st1 = T.stats ctx in
  Alcotest.(check int) "first flush lowers src+b" 2 st1.T.ops_lowered;
  Alcotest.(check int) "sibling c elided" 1 st1.T.ops_elided;
  let vc = T.force c in
  let st2 = T.stats ctx in
  Alcotest.(check int) "two flushes" 2 st2.T.flushes;
  Alcotest.(check int) "src re-lowered for c" 4 st2.T.ops_lowered;
  Alcotest.(check int) "elision counted once" 1 st2.T.ops_elided;
  check_floats "b = 3i+2" (Array.init 16 (fun i -> float_of_int ((3 * i) + 2))) vb;
  check_floats "c = 6i+2" (Array.init 16 (fun i -> float_of_int ((6 * i) + 2))) vc

let test_memoized_reforce () =
  let ctx = T.create () in
  let b = T.map (fun x -> add x (Expr.Const 1.0)) (src ctx) in
  let v1 = T.force b in
  let flushes_before = (T.stats ctx).T.flushes in
  let v2 = T.force b in
  let _ = T.checksum b in
  let st = T.stats ctx in
  Alcotest.(check int) "no new flush" flushes_before st.T.flushes;
  Alcotest.(check int) "memo hits" 2 st.T.memo_hits;
  check_floats "same values" v1 v2

let test_explicit_flush_batches_sinks () =
  (* two independent sinks + a pending reduction materialize in ONE
     multi-output program; later forces are all memo hits *)
  let ctx = T.create () in
  let a = src ctx in
  let b = T.map (fun x -> add x (Expr.Const 1.0)) a in
  let c = T.map (fun x -> mul x (Expr.Const 2.0)) a in
  let s = T.reduce Prog.Rsum a in
  T.flush ctx;
  let st = T.stats ctx in
  Alcotest.(check int) "one batched flush" 1 st.T.flushes;
  (* a, b, c, reduce — a is consumed, so not a sink, but it is in the cone *)
  Alcotest.(check int) "whole trace lowered once" 4 st.T.ops_lowered;
  ignore (T.force b);
  ignore (T.force c);
  ignore (T.force_scalar s);
  let st = T.stats ctx in
  Alcotest.(check int) "forces served from memo" 3 st.T.memo_hits;
  Alcotest.(check int) "still one flush" 1 st.T.flushes;
  (* sum of 3i+1 over [0..15] = 3*120 + 16 *)
  Alcotest.(check (float 1e-9)) "reduction value" 376.0 (T.force_scalar s);
  T.flush ctx;
  Alcotest.(check int) "flush with nothing pending is a no-op" 1
    (T.stats ctx).T.flushes

let test_interleaved_record_and_observe () =
  (* growing the trace after a flush re-enters cleanly: the new op
     consumes a materialized node and recomputes it *)
  let ctx = T.create () in
  let a = src ctx in
  let va = T.force a in
  let b = T.map (fun x -> mul x x) a in
  let vb = T.force b in
  check_floats "b = a^2"
    (Array.map (fun x -> x *. x) va)
    vb;
  Alcotest.(check int) "two flushes" 2 (T.stats ctx).T.flushes

let test_shift_and_zip_regions () =
  let ctx = T.create () in
  let a = src ctx in
  let l = T.shift [| -1 |] a in
  let r = T.shift [| 1 |] a in
  Alcotest.(check bool) "shift -1 region" true
    (Region.equal (T.region_of l) (region1 1 16));
  Alcotest.(check bool) "shift +1 region" true
    (Region.equal (T.region_of r) (region1 (-1) 14));
  let z = T.zip_with add l r in
  Alcotest.(check bool) "zip region is the intersection" true
    (Region.equal (T.region_of z) (region1 1 14));
  (* a[i-1] + a[i+1] = (3(i-1)+1) + (3(i+1)+1) = 6i+2 *)
  check_floats "stencil values"
    (Array.init 14 (fun k -> float_of_int ((6 * (k + 1)) + 2)))
    (T.force z)

(* ------------------------------------------------------------------ *)
(* Shape errors at the offending op                                    *)
(* ------------------------------------------------------------------ *)

let shape_error name f =
  match f () with
  | exception T.Shape_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Shape_error" name

let test_shape_errors () =
  let ctx = T.create () in
  let a = src ctx in
  shape_error "gen with array ref" (fun () ->
      T.gen ctx (region1 0 3) (Expr.Ref ("A", [| 0 |])));
  shape_error "gen with scalar var" (fun () ->
      T.gen ctx (region1 0 3) (Expr.Svar "k"));
  shape_error "gen empty region" (fun () ->
      T.gen ctx (Region.of_bounds [ (3, 2) ]) (Expr.Const 1.0));
  shape_error "gen idx out of rank" (fun () ->
      T.gen ctx (region1 0 3) (Expr.Idx 2));
  shape_error "map region escapes operand" (fun () ->
      T.map ~region:(region1 0 16) (fun x -> x) a);
  shape_error "zip of disjoint regions" (fun () ->
      let b = T.gen ctx (region1 100 110) (Expr.Const 0.0) in
      T.zip_with add a b);
  shape_error "zip across contexts" (fun () ->
      let other = T.create () in
      T.zip_with add a (src other));
  shape_error "shift rank mismatch" (fun () -> T.shift [| 1; 0 |] a);
  shape_error "reduce region escapes operand" (fun () ->
      T.reduce ~region:(region1 0 99) Prog.Rsum a);
  (* the trace survives its rejected ops *)
  Alcotest.(check int) "valid prefix still forces" 16
    (Array.length (T.force a))

(* ------------------------------------------------------------------ *)
(* Trace-shape plan-cache reuse                                        *)
(* ------------------------------------------------------------------ *)

let chain ctx c =
  let a = src ~c ctx in
  let l = T.shift [| -1 |] a in
  let r = T.shift [| 1 |] a in
  T.map (fun x -> mul (Expr.Const (c +. 2.0)) x) (T.zip_with add l r)

let test_shape_reuse () =
  let ctx = T.create () in
  ignore (T.force (chain ctx 1.0));
  let st1 = T.stats ctx in
  let fp1 = st1.T.last_fingerprint in
  ignore (T.force (chain ctx 42.5));
  let st2 = T.stats ctx in
  Alcotest.(check bool) "fingerprint is shape-stable" true
    (fp1 <> None && fp1 = st2.T.last_fingerprint);
  Alcotest.(check int) "second flush hits the plan cache" 1 st2.T.cache_hits;
  Alcotest.(check int) "one compile for two flushes" 1 st2.T.compiles_computed;
  Alcotest.(check int) "constants lifted per flush" 6 st2.T.params_lifted;
  (* a different shape must re-key *)
  ignore (T.force (T.map (fun x -> x) (chain ctx 1.0)));
  let st3 = T.stats ctx in
  Alcotest.(check bool) "different shape, different fingerprint" true
    (st3.T.last_fingerprint <> fp1);
  Alcotest.(check int) "different shape misses" 2 st3.T.cache_misses

let test_shared_engine () =
  (* contexts sharing one engine share its plan cache *)
  let engine = Service.Engine.create ~jobs:1 () in
  let ctx1 = T.create ~engine () in
  let ctx2 = T.create ~engine () in
  ignore (T.force (chain ctx1 2.0));
  ignore (T.force (chain ctx2 3.0));
  Alcotest.(check int) "second context hits the shared cache" 1
    (T.stats ctx2).T.cache_hits;
  Alcotest.(check int) "no second compile"
    0 (T.stats ctx2).T.compiles_computed

(* ------------------------------------------------------------------ *)
(* Obs metrics                                                         *)
(* ------------------------------------------------------------------ *)

let test_metrics_keys () =
  let all = Lazyarr.Metrics.all in
  Alcotest.(check int)
    "every key is distinct"
    (List.length all)
    (List.length (List.sort_uniq compare all));
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (k ^ " carries the lazy prefix")
        true
        (String.length k > String.length Lazyarr.Metrics.prefix
        && String.sub k 0 (String.length Lazyarr.Metrics.prefix)
           = Lazyarr.Metrics.prefix))
    all;
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (k ^ " is disjoint from the service keys")
        false
        (List.mem k Service.Metrics.all))
    all

let test_obs_counters () =
  let r = Obs.create () in
  Obs.run r (fun () ->
      let ctx = T.create () in
      let a = src ctx in
      let b = T.map (fun x -> add x (Expr.Const 1.0)) a in
      ignore (T.force b);
      ignore (T.force b));
  let counters = (Obs.report r).Obs.counters in
  let get k = try List.assoc k counters with Not_found -> 0 in
  Alcotest.(check int) "lazy.flush" 1 (get Lazyarr.Metrics.flush);
  Alcotest.(check int) "lazy.op.recorded" 2 (get Lazyarr.Metrics.op_recorded);
  Alcotest.(check int) "lazy.op.lowered" 2 (get Lazyarr.Metrics.op_lowered);
  Alcotest.(check int) "lazy.force" 2 (get Lazyarr.Metrics.force);
  Alcotest.(check int) "lazy.force.memo" 1 (get Lazyarr.Metrics.force_memo);
  Alcotest.(check int) "lazy.param.lifted" 3 (get Lazyarr.Metrics.param_lifted)

(* ------------------------------------------------------------------ *)
(* Differential property: lazy force == eager reference               *)
(* ------------------------------------------------------------------ *)

let prop_lazy_matches_reference level =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "lazy force == refinterp on direct lowering @ %s"
         (Compilers.Driver.level_name level))
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Support.Prng.create (Int64.of_int (seed + 7)) in
      let tr = Fuzz.Gen.generate_traced ~level rng in
      let want =
        Exec.Refinterp.checksum (Exec.Refinterp.run tr.Fuzz.Gen.trace_prog)
      in
      let got =
        match tr.Fuzz.Gen.sink with
        | Fuzz.Gen.Arr a -> T.checksum a
        | Fuzz.Gen.Scalar s -> T.scalar_checksum s
      in
      if String.equal want got then true
      else
        QCheck.Test.fail_reportf "level %s: want %s got %s@.%a"
          (Compilers.Driver.level_name level)
          want got Prog.pp tr.Fuzz.Gen.trace_prog)

let test_traced_deterministic () =
  let prog_of seed =
    Fuzz.Gen.generate_trace (Support.Prng.create (Int64.of_int seed))
  in
  Alcotest.(check string)
    "same seed, same lowered trace"
    (Prog.fingerprint (prog_of 11))
    (Prog.fingerprint (prog_of 11));
  Alcotest.(check bool)
    "trace-mode campaign runs green" true
    (Fuzz.Campaign.divergent
       (Fuzz.Campaign.run
          ~cfg:
            {
              Fuzz.Oracle.default with
              Fuzz.Oracle.levels =
                [ Compilers.Driver.Baseline; Compilers.Driver.C2F3 ];
              planner = false;
              spmd_procs = [];
              native = false;
            }
          ~trace:true ~n:6 ~seed:5L ())
    = [])

let suites =
  [
    ( "lazy-flush",
      [
        Alcotest.test_case "force computes values" `Quick test_force_values;
        Alcotest.test_case "observation order + recompute" `Quick
          test_observation_order_and_recompute;
        Alcotest.test_case "re-force is memoized" `Quick test_memoized_reforce;
        Alcotest.test_case "explicit flush batches all sinks" `Quick
          test_explicit_flush_batches_sinks;
        Alcotest.test_case "interleaved record/observe" `Quick
          test_interleaved_record_and_observe;
        Alcotest.test_case "shift/zip region algebra" `Quick
          test_shift_and_zip_regions;
      ] );
    ( "lazy-shape",
      [ Alcotest.test_case "errors at the offending op" `Quick test_shape_errors ]
    );
    ( "lazy-cache",
      [
        Alcotest.test_case "repeated shape reuses the plan" `Quick
          test_shape_reuse;
        Alcotest.test_case "contexts share an engine's cache" `Quick
          test_shared_engine;
      ] );
    ( "lazy-metrics",
      [
        Alcotest.test_case "key hygiene" `Quick test_metrics_keys;
        Alcotest.test_case "counters under a recorder" `Quick test_obs_counters;
      ] );
    ( "lazy-differential",
      [
        QCheck_alcotest.to_alcotest
          (prop_lazy_matches_reference Compilers.Driver.Baseline);
        QCheck_alcotest.to_alcotest
          (prop_lazy_matches_reference Compilers.Driver.C2F3);
        Alcotest.test_case "trace generation deterministic + campaign" `Quick
          test_traced_deterministic;
      ] );
  ]
