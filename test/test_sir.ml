(* Scalarization: loop nest structure, directions, contraction codegen. *)

open Ir
module Vec = Support.Vec
module Code = Sir.Code

let v = Vec.of_list
let r44 = Region.of_bounds [ (1, 4); (1, 4) ]
let padded = Region.of_bounds [ (0, 5); (0, 5) ]

let prog_of ?(arrays = [ "A"; "B"; "T" ]) ?(live = [ "A"; "B" ]) body =
  {
    Prog.name = "t";
    arrays =
      List.map
        (fun name -> { Prog.name; bounds = padded; kind = Prog.User })
        arrays;
    scalars = [];
    body;
    live_out = live;
  }

let compile level prog = (Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog).Compilers.Driver.code

let astmt ?(r = r44) lhs rhs = Prog.Astmt (Nstmt.make ~region:r ~lhs rhs)

let test_baseline_one_nest_per_stmt () =
  let prog =
    prog_of
      [
        astmt "T" Expr.(Ref ("A", v [ 0; 0 ]));
        astmt "B" Expr.(Ref ("T", v [ 0; 0 ]));
      ]
  in
  let code = compile Compilers.Driver.Baseline prog in
  Alcotest.(check int) "2 nests" 2 (Code.count_nests code);
  Alcotest.(check int) "4 loops (2 per rank-2 nest)" 4 (Code.count_loops code)

let test_fusion_single_nest () =
  let prog =
    prog_of
      [
        astmt "T" Expr.(Ref ("A", v [ 0; 0 ]));
        astmt "B" Expr.(Ref ("T", v [ 0; 0 ]));
      ]
  in
  let code = compile Compilers.Driver.C2 prog in
  Alcotest.(check int) "1 nest" 1 (Code.count_nests code);
  Alcotest.(check int) "2 loops" 2 (Code.count_loops code);
  (* T became a scalar: not allocated *)
  Alcotest.(check (list string))
    "allocs" [ "A"; "B" ]
    (List.map (fun (a : Code.alloc) -> a.Code.name) code.Code.allocs)

let rec find_for code_stmts =
  match code_stmts with
  | [] -> None
  | Code.For { var; lo; hi; step; body } :: _ -> Some (var, lo, hi, step, body)
  | _ :: tl -> find_for tl

let test_reversed_loop_emitted () =
  (* anti dependence forces a descending outer loop *)
  let prog =
    prog_of
      [
        astmt "T" Expr.(Binop (Add, Ref ("A", v [ -1; 0 ]), Ref ("A", v [ -1; 0 ])));
        astmt "A" Expr.(Ref ("T", v [ 0; 0 ]));
      ]
      ~live:[ "A" ]
  in
  let code = compile Compilers.Driver.C2 prog in
  match find_for code.Code.body with
  | Some (var, _, _, step, body) ->
      Alcotest.(check string) "outer over dim 1" "__i1" var;
      Alcotest.(check int) "descending" (-1) step;
      (match find_for body with
      | Some (_, _, _, inner_step, _) ->
          Alcotest.(check int) "inner ascending" 1 inner_step
      | None -> Alcotest.fail "no inner loop")
  | None -> Alcotest.fail "no loop emitted"

let test_statement_order_in_nest () =
  (* flow-dependent statements must appear def-before-use in the body *)
  let prog =
    prog_of
      [
        astmt "T" Expr.(Ref ("A", v [ 0; 0 ]));
        astmt "B" Expr.(Binop (Mul, Ref ("T", v [ 0; 0 ]), Const 2.0));
      ]
  in
  let code = compile Compilers.Driver.C2 prog in
  let rec innermost = function
    | Code.For { body; _ } -> (
        match body with [ (Code.For _ as f) ] -> innermost f | _ -> body)
    | s -> [ s ]
  in
  match code.Code.body with
  | [ nest ] -> (
      match innermost nest with
      | [ Code.Sassign ("T", _); Code.Store ("B", _, _) ] -> ()
      | other ->
          Alcotest.failf "unexpected body shape (%d stmts)" (List.length other))
  | _ -> Alcotest.fail "expected one nest"

let test_partial_contraction_codegen () =
  (* T := A ; B := T + T@(0,-1): under c2+p, T keeps only dim 2, so its
     loads/stores must carry exactly one subscript *)
  let prog =
    prog_of
      [
        astmt "T" Expr.(Ref ("A", v [ 0; 0 ]));
        astmt "B" Expr.(Binop (Add, Ref ("T", v [ 0; 0 ]), Ref ("T", v [ 0; -1 ])));
      ]
  in
  let code = compile Compilers.Driver.C2P prog in
  let t_alloc =
    List.find (fun (a : Code.alloc) -> a.Code.name = "T") code.Code.allocs
  in
  Alcotest.(check int) "T is rank 1" 1 (Array.length t_alloc.Code.dims);
  let rec scan = function
    | Code.For { body; _ } -> List.iter scan body
    | Code.Store ("T", subs, e) ->
        Alcotest.(check int) "store rank" 1 (Array.length subs);
        scan_expr e
    | Code.Store (_, _, e) | Code.Sassign (_, e) -> scan_expr e
  and scan_expr = function
    | Code.Load ("T", subs) ->
        Alcotest.(check int) "load rank" 1 (Array.length subs)
    | Code.Load _ | Code.Const _ | Code.Scalar _ -> ()
    | Code.Unop (_, a) -> scan_expr a
    | Code.Binop (_, a, b) ->
        scan_expr a;
        scan_expr b
    | Code.Select (c, a, b) ->
        scan_expr c;
        scan_expr a;
        scan_expr b
  in
  List.iter scan code.Code.body

let test_plan_length_mismatch () =
  let prog = prog_of [ astmt "B" Expr.(Ref ("A", v [ 0; 0 ])) ] in
  Alcotest.(check bool)
    "wrong plan rejected" true
    (try
       ignore (Sir.Scalarize.scalarize prog []);
       false
     with Sir.Scalarize.Error _ -> true)

let test_trivial_plan_matches_blocks () =
  let prog =
    prog_of
      [
        astmt "T" Expr.(Ref ("A", v [ 0; 0 ]));
        Prog.Sassign ("s", Expr.Const 1.0);
        astmt "B" Expr.(Ref ("T", v [ 0; 0 ]));
      ]
      ~live:[ "A"; "B" ]
  in
  let prog = { prog with Prog.scalars = [ ("s", 0.0) ] } in
  Alcotest.(check int) "plan per block" 2
    (List.length (Sir.Scalarize.trivial_plan prog))

let test_c_printer_mentions_arrays () =
  let prog = prog_of [ astmt "B" Expr.(Ref ("A", v [ -1; 1 ])) ] in
  let code = compile Compilers.Driver.Baseline prog in
  let c_text = Format.asprintf "%a" Code.pp_c code in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (Astring.String.is_infix ~affix:needle c_text))
    [ "#include <math.h>"; "double A"; "double B"; "for ("; "__i1"; "__i2" ]

let test_loop_var_names () =
  Alcotest.(check string) "loop_var" "__i3" (Code.loop_var 3)

let test_alloc_volume () =
  let a = { Code.name = "X"; dims = [| (0, 5); (1, 4) |] } in
  Alcotest.(check int) "volume" 24 (Code.alloc_volume a);
  let empty = { Code.name = "Y"; dims = [| (3, 2) |] } in
  Alcotest.(check int) "empty" 0 (Code.alloc_volume empty)

let test_rank1_and_rank3 () =
  (* scalarization handles rank 1 and rank 3 regions *)
  let r1 = Region.of_bounds [ (1, 5) ] in
  let p1 =
    {
      Prog.name = "r1";
      arrays = [ { Prog.name = "A"; bounds = r1; kind = Prog.User } ];
      scalars = [];
      body = [ Prog.Astmt (Nstmt.make ~region:r1 ~lhs:"A" Expr.(Idx 1)) ];
      live_out = [ "A" ];
    }
  in
  let c1 = compile Compilers.Driver.C2 p1 in
  Alcotest.(check int) "rank 1: one loop" 1 (Code.count_loops c1);
  let r3 = Region.of_bounds [ (1, 3); (1, 3); (1, 3) ] in
  let p3 =
    {
      Prog.name = "r3";
      arrays = [ { Prog.name = "A"; bounds = r3; kind = Prog.User } ];
      scalars = [];
      body =
        [
          Prog.Astmt
            (Nstmt.make ~region:r3 ~lhs:"A"
               Expr.(Binop (Add, Idx 1, Binop (Add, Idx 2, Idx 3))));
        ];
      live_out = [ "A" ];
    }
  in
  let c3 = compile Compilers.Driver.C2 p3 in
  Alcotest.(check int) "rank 3: three loops" 3 (Code.count_loops c3);
  (* and both still match reference semantics *)
  List.iter
    (fun p ->
      let want = Exec.Refinterp.checksum (Exec.Refinterp.run p) in
      let got =
        Exec.Interp.checksum
          (Exec.Interp.run (compile Compilers.Driver.C2 p))
      in
      Alcotest.(check string) "equivalent" want got)
    [ p1; p3 ]

let suites =
  [
    ( "sir.scalarize",
      [
        Alcotest.test_case "baseline nest count" `Quick test_baseline_one_nest_per_stmt;
        Alcotest.test_case "fusion single nest" `Quick test_fusion_single_nest;
        Alcotest.test_case "reversed loop" `Quick test_reversed_loop_emitted;
        Alcotest.test_case "statement order" `Quick test_statement_order_in_nest;
        Alcotest.test_case "partial contraction codegen" `Quick test_partial_contraction_codegen;
        Alcotest.test_case "plan mismatch" `Quick test_plan_length_mismatch;
        Alcotest.test_case "trivial plan" `Quick test_trivial_plan_matches_blocks;
        Alcotest.test_case "rank 1 and rank 3" `Quick test_rank1_and_rank3;
      ] );
    ( "sir.code",
      [
        Alcotest.test_case "C printer" `Quick test_c_printer_mentions_arrays;
        Alcotest.test_case "loop_var" `Quick test_loop_var_names;
        Alcotest.test_case "alloc volume" `Quick test_alloc_volume;
      ] );
  ]
