(* Benchmarks and Figure 5/6 fragments. *)

let small_tile (b : Suite.bench) =
  (* tiny tiles keep the full cross-product of levels fast *)
  match b.Suite.name with "ep" -> 128 | _ -> 10

let levels = Compilers.Driver.all_levels @ [ Compilers.Driver.C2P ]

let test_benchmarks_valid () =
  List.iter
    (fun b ->
      let prog = Suite.program b in
      match Ir.Prog.validate prog with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" b.Suite.name e)
    Suite.all

(* Figure 7 golden numbers for this repository (EXPERIMENTS.md compares
   them against the paper's). *)
let test_static_counts () =
  let expect =
    [
      ("ep", (0, 22), 0);
      ("frac", (3, 8), 3);
      ("tomcatv", (4, 15), 7);
      ("sp", (5, 18), 17);
      ("simple", (6, 32), 27);
      ("fibro", (0, 49), 27);
    ]
  in
  List.iter
    (fun (name, (ec, eu), remaining) ->
      let prog = Suite.load name in
      Alcotest.(check (pair int int))
        (name ^ " static compiler/user")
        (ec, eu)
        (Ir.Prog.static_array_counts prog);
      let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
      Alcotest.(check int)
        (name ^ " arrays after c2")
        remaining
        (Compilers.Driver.remaining_arrays c))
    expect

let test_equivalence_all_levels () =
  List.iter
    (fun b ->
      let prog = Suite.program ~tile:(small_tile b) b in
      let reference = Exec.Refinterp.checksum (Exec.Refinterp.run prog) in
      List.iter
        (fun level ->
          let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
          let r = Exec.Interp.run c.Compilers.Driver.code in
          Alcotest.(check string)
            (Printf.sprintf "%s @ %s" b.Suite.name
               (Compilers.Driver.level_name level))
            reference (Exec.Interp.checksum r))
        levels)
    Suite.all

let test_equivalence_favor_comm () =
  (* the favor-communication veto must never change results *)
  List.iter
    (fun b ->
      let prog = Suite.program ~tile:(small_tile b) b in
      let reference = Exec.Refinterp.checksum (Exec.Refinterp.run prog) in
      let veto = Comm.Interact.favor_comm_veto ~procs:4 prog in
      let c =
        Compilers.Driver.compile_exn_opts
          (Compilers.Driver.opts ~may_fuse:veto Compilers.Driver.C2F3)
          prog
      in
      let r = Exec.Interp.run c.Compilers.Driver.code in
      Alcotest.(check string) b.Suite.name reference (Exec.Interp.checksum r))
    Suite.all

let test_ep_all_arrays_eliminated () =
  let prog = Suite.load ~tile:64 "ep" in
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
  Alcotest.(check int) "no arrays left" 0
    (Compilers.Driver.remaining_arrays c);
  (* and the result is still a real computation *)
  let r = Exec.Interp.run c.Compilers.Driver.code in
  let cnt = Exec.Interp.get_scalar r "cnt" in
  Alcotest.(check bool) "some pairs accepted" true (cnt > 10.0)

let test_tomcatv_R_contracts () =
  (* the paper's Figure 1 narrative: the multiplier R_ contracts after
     fusing with the D update under a reversed row loop *)
  let prog = Suite.load ~tile:10 "tomcatv" in
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
  Alcotest.(check bool) "R_ contracted" true
    (List.mem_assoc "R_" c.Compilers.Driver.contracted);
  Alcotest.(check bool) "D allocated" true
    (List.exists
       (fun (a : Sir.Code.alloc) -> a.Sir.Code.name = "D")
       c.Compilers.Driver.code.Sir.Code.allocs)

let test_monotone_memory () =
  (* footprint never grows along the level ladder on any benchmark *)
  List.iter
    (fun b ->
      let prog = Suite.program ~tile:(small_tile b) b in
      let bytes level =
        Exec.Interp.footprint_bytes
          (Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog).Compilers.Driver.code
      in
      let base = bytes Compilers.Driver.Baseline in
      let c1 = bytes Compilers.Driver.C1 in
      let c2 = bytes Compilers.Driver.C2 in
      Alcotest.(check bool)
        (b.Suite.name ^ " monotone")
        true
        (c2 <= c1 && c1 <= base))
    Suite.all

let test_suite_lookup () =
  Alcotest.(check int) "six benchmarks" 6 (List.length Suite.all);
  Alcotest.(check bool) "by_name" true (Suite.by_name "tomcatv" <> None);
  Alcotest.(check bool)
    "unknown rejected" true
    (try
       ignore (Suite.load "linpack");
       false
     with Invalid_argument _ -> true)

let test_adi3d () =
  (* the rank-3 extra benchmark: validity, contraction, 3-D loop
     structures, equivalence at every level, and 3-D communication *)
  let prog = Suite.load ~tile:6 "adi3d" in
  (match Ir.Prog.validate prog with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (pair int int))
    "static counts" (4, 4)
    (Ir.Prog.static_array_counts prog);
  let c2 = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
  Alcotest.(check int) "U, RHS, COEF remain" 3
    (Compilers.Driver.remaining_arrays c2);
  let reference = Exec.Refinterp.checksum (Exec.Refinterp.run prog) in
  List.iter
    (fun level ->
      let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
      Alcotest.(check string)
        ("adi3d @ " ^ Compilers.Driver.level_name level)
        reference
        (Exec.Interp.checksum (Exec.Interp.run c.Compilers.Driver.code)))
    levels;
  (* a sweep cluster must carry a reversed loop over its swept axis *)
  let reversed_somewhere =
    List.exists
      (fun (bp : Sir.Scalarize.block_plan) ->
        let p = bp.Sir.Scalarize.partition in
        List.exists
          (fun cluster ->
            match Core.Partition.loop_structure p (List.hd cluster) with
            | Some ls ->
                List.exists (fun x -> x < 0) (Support.Vec.to_list ls)
            | None -> false)
          (Core.Partition.clusters p))
      c2.Compilers.Driver.plan
  in
  Alcotest.(check bool) "reversed 3-D loop used" true reversed_somewhere;
  (* 3-D distribution: 8 processors form a 2x2x2 grid *)
  let d = Comm.Dist.make ~rank:3 ~procs:8 in
  Alcotest.(check (list int)) "2x2x2" [ 2; 2; 2 ]
    (Array.to_list (Comm.Dist.per_dim d));
  let s =
    Comm.Model.analyze ~machine:Machine.t3e ~procs:8
      ~opts:Comm.Model.all_on c2
  in
  Alcotest.(check bool) "3-D exchanges exist" true (s.Comm.Model.messages > 0)

(* ------------------------------------------------------------------ *)
(* Hand-coded scalar versions (paper §5.2)                             *)
(* ------------------------------------------------------------------ *)

let test_handcoded_ep () =
  let n = 512 in
  let prog = Suite.load ~tile:n "ep" in
  let r = Exec.Refinterp.run prog in
  List.iter
    (fun (name, want) ->
      Alcotest.(check (float 0.0))
        ("ep scalar " ^ name)
        want
        (Exec.Refinterp.get_scalar r name))
    (Suite.Handcoded.ep ~n);
  (* sanity: the histogram accounts for every accepted pair *)
  let hand = Suite.Handcoded.ep ~n in
  let cnt = List.assoc "cnt" hand in
  let qsum =
    List.fold_left
      (fun acc (k, v) -> if String.length k = 2 && k.[0] = 'q' then acc +. v else acc)
      0.0 hand
  in
  Alcotest.(check (float 1e-9)) "histogram total" cnt qsum

let test_handcoded_frac () =
  let n = 24 and iters = 8 in
  let prog =
    Suite.load ~tile:n ~config:[ ("iters", float_of_int iters) ] "frac"
  in
  let r = Exec.Refinterp.run prog in
  let want =
    Suite.Handcoded.frac ~n ~iters ~xmin:(-2.0) ~ymin:(-1.5) ~scale:3.0
  in
  Alcotest.(check bool)
    "bit-identical image" true
    (Exec.Refinterp.get_array r "IMG" = want)

(* ------------------------------------------------------------------ *)
(* Figure 6                                                            *)
(* ------------------------------------------------------------------ *)

let test_fig6_matches_paper () =
  List.iter
    (fun ((f : Suite.Fragments.t), rows) ->
      List.iter
        (fun ((caps : Compilers.Vendors.caps), got) ->
          let expected =
            List.assoc caps.Compilers.Vendors.vname f.Suite.Fragments.expected
          in
          Alcotest.(check bool)
            (Printf.sprintf "fragment (%d) under %s" f.Suite.Fragments.id
               caps.Compilers.Vendors.vname)
            expected got)
        rows)
    (Suite.Fragments.evaluate ())

let test_fragments_execute () =
  (* fragments are real programs: the ZPL-emulation output must match
     reference semantics *)
  List.iter
    (fun (f : Suite.Fragments.t) ->
      let prog = Zap.Elaborate.compile_string f.Suite.Fragments.source in
      let reference = Exec.Refinterp.checksum (Exec.Refinterp.run prog) in
      let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2F3) prog in
      let r = Exec.Interp.run c.Compilers.Driver.code in
      Alcotest.(check string)
        (Printf.sprintf "fragment (%d)" f.Suite.Fragments.id)
        reference (Exec.Interp.checksum r))
    Suite.Fragments.all

let suites =
  [
    ( "suite.benchmarks",
      [
        Alcotest.test_case "all valid" `Quick test_benchmarks_valid;
        Alcotest.test_case "static array counts (Fig 7)" `Quick test_static_counts;
        Alcotest.test_case "equivalence at all levels" `Quick test_equivalence_all_levels;
        Alcotest.test_case "equivalence under favor-comm" `Quick test_equivalence_favor_comm;
        Alcotest.test_case "EP eliminates every array" `Quick test_ep_all_arrays_eliminated;
        Alcotest.test_case "tomcatv contracts R (Fig 1)" `Quick test_tomcatv_R_contracts;
        Alcotest.test_case "memory monotone over levels" `Quick test_monotone_memory;
        Alcotest.test_case "lookup" `Quick test_suite_lookup;
        Alcotest.test_case "adi3d (rank 3 extra)" `Quick test_adi3d;
      ] );
    ( "suite.handcoded",
      [
        Alcotest.test_case "EP bit-identical" `Quick test_handcoded_ep;
        Alcotest.test_case "Frac bit-identical" `Quick test_handcoded_frac;
      ] );
    ( "suite.fig6",
      [
        Alcotest.test_case "matches the paper" `Quick test_fig6_matches_paper;
        Alcotest.test_case "fragments execute correctly" `Quick test_fragments_execute;
      ] );
  ]
