(* The native execution engine: toolchain probing, argv-array process
   plumbing (the shell-quoting regression), the content-addressed
   artifact store's warm path, differential checksum equality against
   the interpreter, and the engine-level [Run {native = true}] path.

   Every test that needs an actual C compiler guards on
   [Native.Toolchain.available ()] and passes vacuously without one,
   so `dune runtest` stays green on compiler-less machines. *)

module Api = Service.Api

let cc = Native.Toolchain.available ()

(* A scratch directory whose name contains a space — the regression
   input for the old [Sys.command]-based cc path. *)
let with_space_dir f =
  let base = Native.Build.fresh_workdir ~salt:7134 () in
  let dir = Filename.concat base "with space" in
  Unix.mkdir dir 0o700;
  Fun.protect ~finally:(fun () -> Native.Build.remove_tree base) (fun () -> f dir)

let compile_code level prog =
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
  c.Compilers.Driver.code

let interp_checksum code = Exec.Interp.checksum (Exec.Interp.run code)

(* Toolchain detection: one atomic probe, consistent answers. *)
let test_toolchain () =
  let a = Native.Toolchain.detect () in
  let b = Native.Toolchain.detect () in
  Alcotest.(check bool) "probe is stable" true (a = b);
  Alcotest.(check bool)
    "available agrees with detect" (a <> None)
    (Native.Toolchain.available ());
  Alcotest.(check bool)
    "oracle delegates to the shared probe"
    (Native.Toolchain.available ())
    (Fuzz.Oracle.cc_available ());
  (match a with
  | None ->
      Alcotest.(check string) "describe without cc" "none"
        (Native.Toolchain.describe ())
  | Some info ->
      Alcotest.(check bool) "family recorded" true
        (List.mem info.Native.Toolchain.family [ "gcc"; "clang"; "cc" ]);
      Alcotest.(check string) "describe is the version line"
        info.Native.Toolchain.version_line
        (Native.Toolchain.describe ()));
  let argv = Native.Toolchain.cc_argv () in
  Alcotest.(check bool) "compile command pins fp behavior" true
    (List.mem "-fno-builtin" argv && List.mem "-ffp-contract=off" argv)

(* Proc: argv arrays, exit-status rendering, launch failures. *)
let test_proc () =
  Alcotest.(check string) "exit rendering" "exit 1"
    (Native.Proc.status_string (Unix.WEXITED 1));
  Alcotest.(check string) "signal rendering" "signal -7"
    (Native.Proc.status_string (Unix.WSIGNALED (-7)));
  let missing = Native.Proc.run [ "/definitely/not/a/binary" ] in
  Alcotest.(check bool) "unlaunchable program reports exit 127" true
    (missing.Native.Proc.status = Unix.WEXITED 127);
  Alcotest.(check bool) "outcome preserves the exact argv" true
    (missing.Native.Proc.argv = [ "/definitely/not/a/binary" ]);
  let rendered = Native.Proc.render_argv [ "cc"; "-o"; "a b/runner" ] in
  Alcotest.(check bool) "spaced paths are quoted in renderings" true
    (rendered <> "cc -o a b/runner"
    && Astring.String.is_infix ~affix:"a b/runner" rendered)

(* Failure payloads carry the exact command line and exit status
   (what makes a shrunk "cc failed" repro actionable). *)
let test_error_payload () =
  let synthetic =
    {
      Native.Build.argv = [ "cc"; "-O2"; "-c"; "dir with space/cluster_0.c" ];
      status = "exit 1";
      detail = "cluster_0.c:3: error: boom";
    }
  in
  let s = Native.Build.error_to_string synthetic in
  List.iter
    (fun affix ->
      Alcotest.(check bool)
        (Printf.sprintf "error mentions %S" affix)
        true
        (Astring.String.is_infix ~affix s))
    [ "dir with space/cluster_0.c"; "exit 1"; "boom" ];
  (* A real launch failure: run_exe on a file that is not executable. *)
  with_space_dir @@ fun dir ->
  let fake = Filename.concat dir "notarunner" in
  let oc = open_out fake in
  output_string oc "plain text\n";
  close_out oc;
  match Native.Build.run_exe fake with
  | Ok _ -> Alcotest.fail "a text file ran as a native runner?"
  | Error e ->
      Alcotest.(check (list string)) "argv preserved" [ fake ]
        e.Native.Build.argv;
      Alcotest.(check string) "launch failure surfaces as 127" "exit 127"
        e.Native.Build.status

(* The shell-quoting regression: the whole build-and-run pipeline under
   a temp dir whose name contains a space. *)
let test_space_dir () =
  if cc then
    with_space_dir @@ fun dir ->
    let old = Filename.get_temp_dir_name () in
    Filename.set_temp_dir_name dir;
    Fun.protect ~finally:(fun () -> Filename.set_temp_dir_name old)
    @@ fun () ->
    let code =
      compile_code Compilers.Driver.C2F3 (Suite.load ~tile:8 "simple")
    in
    match Native.Build.run_once ~salt:11 code with
    | Ok r ->
        Alcotest.(check string) "checksum under a spaced workdir"
          (interp_checksum code) r.Native.Build.checksum
    | Error e -> Alcotest.fail (Native.Build.error_to_string e)

(* Differential: every corpus repro, native vs interpreter, at the
   base and fully fused levels. *)
let corpus_files () =
  if Sys.file_exists "corpus" && Sys.is_directory "corpus" then
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".zir")
    |> List.sort String.compare
    |> List.map (Filename.concat "corpus")
  else []

let check_native_matches name code =
  match Native.Build.run_once ~salt:(Hashtbl.hash name) code with
  | Ok r ->
      Alcotest.(check string)
        (name ^ ": native == interpreter")
        (interp_checksum code) r.Native.Build.checksum
  | Error e -> Alcotest.failf "%s: %s" name (Native.Build.error_to_string e)

let test_corpus_differential () =
  if cc then begin
    let files = corpus_files () in
    Alcotest.(check bool) "corpus present" true (files <> []);
    List.iter
      (fun path ->
        match Fuzz.Repro.load path with
        | Error msg -> Alcotest.failf "%s: %s" path msg
        | Ok prog ->
            List.iter
              (fun level ->
                let name =
                  Printf.sprintf "%s @ %s" (Filename.basename path)
                    (Compilers.Driver.level_name level)
                in
                check_native_matches name (compile_code level prog))
              Compilers.Driver.[ Baseline; C2F3 ])
      files
  end

(* Differential over generated programs (the oracle's input source). *)
let qcheck_generated =
  QCheck.Test.make ~count:8 ~name:"generated: native == interp @ base, c2+f3"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      (not cc)
      ||
      let prog =
        Fuzz.Gen.generate (Support.Prng.create (Int64.of_int seed))
      in
      List.for_all
        (fun level ->
          let code = compile_code level prog in
          match Native.Build.run_once ~salt:seed code with
          | Ok r -> String.equal r.Native.Build.checksum (interp_checksum code)
          | Error e ->
              QCheck.Test.fail_report (Native.Build.error_to_string e))
        Compilers.Driver.[ Baseline; C2F3 ])

(* The artifact store's warm path: one cc invocation ever, byte-identical
   checksums cold vs warm, and disk adoption across a "restart" (a second
   store over the same root).  The root has a space in its name. *)
let test_store_warm_path () =
  if cc then
    with_space_dir @@ fun root ->
    let code =
      compile_code Compilers.Driver.C2F3 (Suite.load ~tile:8 "frac")
    in
    let store = Native.Store.create ~root () in
    let get s =
      match Native.Store.get s code with
      | Ok (a, fresh) -> (a, fresh)
      | Error e -> Alcotest.fail (Native.Build.error_to_string e)
    in
    let run a =
      match Native.Build.run_exe a.Native.Store.runner with
      | Ok r -> r.Native.Build.checksum
      | Error e -> Alcotest.fail (Native.Build.error_to_string e)
    in
    let cold, fresh_cold = get store in
    let builds_after_cold = Native.Build.total_builds () in
    let cold_sum = run cold in
    let warm, fresh_warm = get store in
    Alcotest.(check bool) "cold get compiles" true fresh_cold;
    Alcotest.(check bool) "warm get does not" false fresh_warm;
    Alcotest.(check string) "same content key" cold.Native.Store.key
      warm.Native.Store.key;
    Alcotest.(check int) "zero recompiles on the warm path"
      builds_after_cold
      (Native.Build.total_builds ());
    Alcotest.(check string) "byte-identical checksum cold vs warm" cold_sum
      (run warm);
    let s = Native.Store.stats store in
    Alcotest.(check int) "store built once" 1 s.Native.Store.builds;
    Alcotest.(check int) "store reused once" 1 s.Native.Store.reuses;
    (* A fresh store over the same root — the daemon-restart scenario —
       adopts the artifact from disk without invoking cc. *)
    let restarted = Native.Store.create ~root () in
    let adopted, fresh_adopted = get restarted in
    Alcotest.(check bool) "restart adopts from disk" false fresh_adopted;
    Alcotest.(check int) "adoption never invokes cc" builds_after_cold
      (Native.Build.total_builds ());
    Alcotest.(check string) "adopted runner agrees" cold_sum (run adopted)

(* Engine level: [Run {native = true}] twice — one build, two runs,
   responses identical modulo the wall clock. *)
let test_engine_native () =
  if cc then begin
    let root = Native.Build.fresh_workdir ~salt:4242 () in
    Fun.protect ~finally:(fun () -> Native.Build.remove_tree root)
    @@ fun () ->
    let engine = Service.Engine.create ~jobs:1 ~native_root:root () in
    let req =
      Api.Run
        {
          source = Api.Bench { name = "simple"; tile = Some 8 };
          opts = Api.default_compile_opts;
          target = Api.default_target;
          spmd = false;
          native = true;
        }
    in
    let strip = function
      | Api.Ran ({ native = Some n; _ } as r) ->
          Api.Ran { r with native = Some { n with Api.native_wall_ns = 0L } }
      | other -> other
    in
    match (Service.Engine.handle engine req, Service.Engine.handle engine req) with
    | ( (Api.Ran { perf; native = Some n1; _ } as r1),
        (Api.Ran { native = Some n2; _ } as r2) ) ->
        Alcotest.(check bool) "native checksum matches the model" true
          n1.Api.native_matches;
        Alcotest.(check string) "checksum equals perf.checksum"
          perf.Api.checksum n1.Api.native_checksum;
        Alcotest.(check string) "warm run agrees" n1.Api.native_checksum
          n2.Api.native_checksum;
        Alcotest.(check bool) "responses identical modulo wall clock" true
          (strip r1 = strip r2);
        let s = Service.Engine.server_stats engine in
        Alcotest.(check int) "one cold build" 1 s.Api.natives_built;
        Alcotest.(check int) "warm request reuses the artifact" 1
          s.Api.natives_reused;
        Alcotest.(check int) "both requests executed natively" 2
          s.Api.native_runs
    | r1, r2 ->
        Alcotest.failf "unexpected responses: %s / %s"
          (Obs.Json.to_string (Api.response_to_json r1))
          (Obs.Json.to_string (Api.response_to_json r2))
  end

let suites =
  [
    ( "native",
      [
        Alcotest.test_case "toolchain probe" `Quick test_toolchain;
        Alcotest.test_case "proc argv + status" `Quick test_proc;
        Alcotest.test_case "error payloads" `Quick test_error_payload;
        Alcotest.test_case "spaced temp dir regression" `Quick test_space_dir;
        Alcotest.test_case "corpus differential" `Slow test_corpus_differential;
        QCheck_alcotest.to_alcotest qcheck_generated;
        Alcotest.test_case "store warm path" `Quick test_store_warm_path;
        Alcotest.test_case "engine native run" `Quick test_engine_native;
      ] );
  ]
