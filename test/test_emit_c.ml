(* Differential testing against a real C compiler: the emitted C
   program must print exactly the interpreter's checksum.  Compilation
   goes through [Native.Build] (argv arrays, multi-unit emission) —
   no shell ever parses a path here. *)

let cc_available = Native.Toolchain.available ()

let run_c code =
  match Native.Build.run_once ~salt:(Hashtbl.hash code) code with
  | Ok r -> r.Native.Build.checksum
  | Error e -> Alcotest.fail (Native.Build.error_to_string e)

let check_program name prog =
  if cc_available then
    List.iter
      (fun level ->
        let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
        let interp = Exec.Interp.checksum (Exec.Interp.run c.Compilers.Driver.code) in
        let native = run_c c.Compilers.Driver.code in
        Alcotest.(check string)
          (Printf.sprintf "%s @ %s: native == interpreter" name
             (Compilers.Driver.level_name level))
          interp native)
      Compilers.Driver.[ Baseline; C2F3 ]

let test_heat () =
  let src =
    {|
program cheat;
config n := 12;
region R = [1..n, 1..n];
var A, B, F : [0..n+1, 0..n+1];
scalar total := 0.0;
export A, total;
begin
  [0..n+1, 0..n+1] A := sin(0.3 * index1) * cos(0.2 * index2);
  for t := 1 to 3 do
    [R] B := 0.25 * (A@[-1,0] + A@[1,0] + A@[0,-1] + A@[0,1]);
    [R] F := B * B;
    [R] A := B - 0.1 * F + hashrand(index1 * 100.0 + index2) * 1e-6;
  end;
  total := +<< R A;
end.
|}
  in
  check_program "heat" (Zap.Elaborate.compile_string src)

let test_benchmarks_native () =
  (* the interesting benchmarks, small tiles: EP exercises hashrand and
     reduction fusion, tomcatv exercises reversal, adi3d rank 3 *)
  List.iter
    (fun (name, tile) ->
      check_program name (Suite.load ~tile name))
    [ ("ep", 64); ("tomcatv", 8); ("adi3d", 5); ("frac", 8) ]

let test_simplified_native () =
  if cc_available then begin
    let prog = Suite.load ~tile:8 "simple" in
    let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
    let code = Sir.Simplify.program c.Compilers.Driver.code in
    let interp = Exec.Interp.checksum (Exec.Interp.run code) in
    Alcotest.(check string) "simplified code survives cc" interp (run_c code)
  end

(* Random-program differential fuzzing against cc: a small fixed
   number of cases (each costs a compiler invocation). *)
let test_random_differential () =
  if cc_available then begin
    let open Ir in
    let module Vec = Support.Vec in
    let v = Vec.of_list in
    let interior = Region.of_bounds [ (1, 4); (1, 4) ] in
    let padded = Region.of_bounds [ (0, 5); (0, 5) ] in
    let arr_names = [| "A"; "B"; "C"; "T1" |] in
    let gen =
      let open QCheck.Gen in
      let off = int_range (-1) 1 in
      let ref_gen =
        map2 (fun n (a, b) -> Expr.Ref (arr_names.(n), v [ a; b ]))
          (int_range 0 3) (pair off off)
      in
      let leaf =
        frequency
          [
            (5, ref_gen);
            (1, return (Expr.Idx 2));
            (1, map (fun f -> Expr.Const f) (float_bound_inclusive 3.0));
          ]
      in
      let expr =
        frequency
          [
            (3, map2 (fun a b -> Expr.Binop (Expr.Add, a, b)) leaf leaf);
            (2, map2 (fun a b -> Expr.Binop (Expr.Mul, a, b)) leaf leaf);
            (1, map (fun a -> Expr.Unop (Expr.Hashrand, a)) leaf);
            (1, map2 (fun a b -> Expr.Binop (Expr.Max, a, b)) leaf leaf);
          ]
      in
      list_size (int_range 1 5)
        (map2 (fun n rhs -> (arr_names.(n), rhs)) (int_range 0 3) expr)
    in
    let rand = Random.State.make [| 20260705 |] in
    for _case = 1 to 12 do
      let specs = QCheck.Gen.generate1 ~rand gen in
      let stmts =
        List.filter_map
          (fun (lhs, rhs) ->
            if List.mem lhs (Expr.ref_names rhs) then None
            else Some (Prog.Astmt (Nstmt.make ~region:interior ~lhs rhs)))
          specs
      in
      if stmts <> [] then begin
        let prog =
          {
            Prog.name = "rand";
            arrays =
              Array.to_list arr_names
              |> List.map (fun name ->
                     { Prog.name; bounds = padded; kind = Prog.User });
            scalars = [];
            body = stmts;
            live_out = [ "A"; "B" ];
          }
        in
        match Prog.validate prog with
        | Error _ -> ()
        | Ok () -> check_program "random" prog
      end
    done
  end

let suites =
  [
    ( "emit_c",
      [
        Alcotest.test_case "heat differential" `Quick test_heat;
        Alcotest.test_case "benchmarks differential" `Quick test_benchmarks_native;
        Alcotest.test_case "simplified differential" `Quick test_simplified_native;
        Alcotest.test_case "random differential" `Quick test_random_differential;
      ] );
  ]
