(* End-to-end semantic preservation: every optimization level must be
   observationally equivalent to the array-level reference semantics. *)

open Ir
module Vec = Support.Vec

let v = Vec.of_list
let interior = Region.of_bounds [ (1, 4); (1, 4) ]
let padded = Region.of_bounds [ (0, 5); (0, 5) ]

let user name = { Prog.name; bounds = padded; kind = Prog.User }
let temp name = { Prog.name; bounds = padded; kind = Prog.Compiler }

let levels = Compilers.Driver.all_levels @ [ Compilers.Driver.C2P ]

(* Compare a compiled configuration against the reference interpreter:
   identical checksums and bitwise-identical live-out arrays. *)
let assert_equivalent ?(ctx = "") prog =
  (match Prog.validate prog with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: invalid program: %s" ctx e);
  let reference = Exec.Refinterp.run prog in
  let ref_sum = Exec.Refinterp.checksum reference in
  List.iter
    (fun level ->
      let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
      let r = Exec.Interp.run c.Compilers.Driver.code in
      let name = Compilers.Driver.level_name level in
      Alcotest.(check string)
        (Printf.sprintf "%s checksum @ %s" ctx name)
        ref_sum (Exec.Interp.checksum r);
      List.iter
        (fun out ->
          match Prog.find_array prog out with
          | None -> ()
          | Some _ ->
              let want = Exec.Refinterp.get_array reference out in
              let got = Exec.Interp.get_array r out in
              Alcotest.(check bool)
                (Printf.sprintf "%s array %s @ %s" ctx out name)
                true
                (want = got))
        prog.Prog.live_out)
    levels

(* ------------------------------------------------------------------ *)
(* Hand-written end-to-end program: loop, reduction, temporaries       *)
(* ------------------------------------------------------------------ *)

let stencil_prog () =
  {
    Prog.name = "stencil";
    arrays = [ user "A"; user "B"; temp "T1"; user "W" ];
    scalars = [ ("s", 0.0); ("w", 0.25) ];
    body =
      [
        Prog.Astmt
          (Nstmt.make ~region:interior ~lhs:"B"
             Expr.(Binop (Add, Idx 1, Binop (Mul, Idx 2, Const 0.5))));
        Prog.Sloop
          {
            var = "t";
            lo = 1;
            hi = 3;
            body =
              [
                Prog.Astmt
                  (Nstmt.make ~region:interior ~lhs:"T1"
                     Expr.(
                       Binop
                         ( Mul,
                           Svar "w",
                           Binop
                             ( Add,
                               Binop
                                 ( Add,
                                   Ref ("A", v [ -1; 0 ]),
                                   Ref ("A", v [ 1; 0 ]) ),
                               Binop
                                 ( Add,
                                   Ref ("A", v [ 0; -1 ]),
                                   Ref ("A", v [ 0; 1 ]) ) ) )));
                Prog.Astmt
                  (Nstmt.make ~region:interior ~lhs:"W"
                     Expr.(
                       Binop
                         (Add, Ref ("T1", v [ 0; 0 ]), Ref ("B", v [ 0; 0 ]))));
                Prog.Astmt
                  (Nstmt.make ~region:interior ~lhs:"A"
                     Expr.(Ref ("W", v [ 0; 0 ])));
              ];
          };
        Prog.Reduce
          {
            target = "s";
            op = Prog.Rsum;
            region = interior;
            arg = Expr.(Ref ("A", v [ 0; 0 ]));
          };
      ];
    live_out = [ "A"; "s" ];
  }

let test_stencil_equivalence () = assert_equivalent ~ctx:"stencil" (stencil_prog ())

let test_stencil_contraction () =
  (* Both T1 (compiler) and W (user) are confined to the loop-body
     block, but they compete: contracting T1 first merges {T1-def,
     W-def}, and the resulting cluster cannot absorb the A-update — the
     four-point stencil reads of A induce anti dependences of mixed
     sign against the A write, so FIND-LOOP-STRUCTURE has no solution.
     The greedy weight order therefore contracts exactly one of the
     two (T1, the first considered). *)
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) (stencil_prog ()) in
  Alcotest.(check (pair int int))
    "contracted compiler/user" (1, 0)
    (Compilers.Driver.contracted_counts c);
  Alcotest.(check int) "arrays left" 3 (Compilers.Driver.remaining_arrays c);
  let cb = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.Baseline) (stencil_prog ()) in
  Alcotest.(check int) "baseline arrays" 4 (Compilers.Driver.remaining_arrays cb)

let test_contraction_reduces_footprint () =
  let prog = stencil_prog () in
  let bytes level =
    Exec.Interp.footprint_bytes
      (Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog).Compilers.Driver.code
  in
  Alcotest.(check bool)
    "c2 footprint < baseline" true
    (bytes Compilers.Driver.C2 < bytes Compilers.Driver.Baseline)

let test_contraction_reduces_traffic () =
  let prog = stencil_prog () in
  let traffic level =
    let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
    let r = Exec.Interp.run c.Compilers.Driver.code in
    let cnt = Exec.Interp.counters r in
    cnt.Exec.Interp.loads + cnt.Exec.Interp.stores
  in
  Alcotest.(check bool)
    "c2 memory traffic < baseline" true
    (traffic Compilers.Driver.C2 < traffic Compilers.Driver.Baseline)

(* ------------------------------------------------------------------ *)
(* Reduction fusion                                                    *)
(* ------------------------------------------------------------------ *)

let reduction_prog () =
  (* G is read only by the trailing reduction; with reduction fusion it
     contracts (the EP effect).  H feeds a reduction whose region
     differs: its reduction cannot be absorbed, so H must stay. *)
  {
    Prog.name = "redfuse";
    arrays = [ user "A"; user "G"; user "H" ];
    scalars = [ ("s", 0.0); ("u", 0.0) ];
    body =
      [
        Prog.Astmt
          (Nstmt.make ~region:interior ~lhs:"G"
             Expr.(Binop (Mul, Ref ("A", v [ 0; 0 ]), Ref ("A", v [ 0; 0 ]))));
        Prog.Astmt
          (Nstmt.make ~region:interior ~lhs:"H"
             Expr.(Binop (Add, Ref ("A", v [ 0; 0 ]), Const 1.0)));
        Prog.Reduce
          { target = "s"; op = Prog.Rsum; region = interior;
            arg = Expr.(Ref ("G", v [ 0; 0 ])) };
        Prog.Reduce
          { target = "u"; op = Prog.Rmax;
            region = Region.of_bounds [ (1, 2); (1, 2) ];
            arg = Expr.(Ref ("H", v [ 0; 0 ])) };
      ];
    live_out = [ "s"; "u" ];
  }

let test_reduction_fusion () =
  let prog = reduction_prog () in
  assert_equivalent ~ctx:"redfuse" prog;
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
  let names =
    List.map (fun (a : Sir.Code.alloc) -> a.Sir.Code.name)
      c.Compilers.Driver.code.Sir.Code.allocs
  in
  Alcotest.(check bool) "G contracted" false (List.mem "G" names);
  Alcotest.(check bool) "H kept (region mismatch)" true (List.mem "H" names);
  (* exactly one absorbed reduction in the single block *)
  match c.Compilers.Driver.plan with
  | [ bp ] ->
      Alcotest.(check (list int))
        "absorbed reduce 0" [ 0 ]
        (List.map fst bp.Sir.Scalarize.absorbed)
  | _ -> Alcotest.fail "expected one block"

let test_reduction_fusion_blocked_by_target_read () =
  (* the reduction target is read inside the block: absorption would
     change which value the block sees, so it must be rejected *)
  let prog =
    {
      Prog.name = "redread";
      arrays = [ user "A"; user "G" ];
      scalars = [ ("s", 2.5) ];
      body =
        [
          Prog.Astmt
            (Nstmt.make ~region:interior ~lhs:"G"
               Expr.(Binop (Mul, Ref ("A", v [ 0; 0 ]), Svar "s")));
          Prog.Reduce
            { target = "s"; op = Prog.Rsum; region = interior;
              arg = Expr.(Ref ("G", v [ 0; 0 ])) };
        ];
      live_out = [ "s" ];
    }
  in
  assert_equivalent ~ctx:"redread" prog;
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
  match c.Compilers.Driver.plan with
  | [ bp ] ->
      Alcotest.(check (list int))
        "not absorbed" []
        (List.map fst bp.Sir.Scalarize.absorbed)
  | _ -> Alcotest.fail "expected one block"

(* ------------------------------------------------------------------ *)
(* Random program property                                             *)
(* ------------------------------------------------------------------ *)

let arr_names = [| "A"; "B"; "C"; "D"; "T1"; "T2" |]

let prog_gen =
  let open QCheck.Gen in
  let off = int_range (-1) 1 in
  let ref_gen =
    map2 (fun n (a, b) -> Expr.Ref (arr_names.(n), v [ a; b ]))
      (int_range 0 5) (pair off off)
  in
  let leaf =
    frequency
      [
        (6, ref_gen);
        (1, return (Expr.Svar "k"));
        (1, map (fun f -> Expr.Const f) (float_bound_inclusive 4.0));
        (1, return (Expr.Idx 1));
      ]
  in
  let expr_gen =
    frequency
      [
        (4, map2 (fun a b -> Expr.Binop (Expr.Add, a, b)) leaf leaf);
        (2, map2 (fun a b -> Expr.Binop (Expr.Mul, a, b)) leaf leaf);
        (1, map2 (fun a b -> Expr.Binop (Expr.Max, a, b)) leaf leaf);
        ( 1,
          map3 (fun c a b -> Expr.Select (Expr.Binop (Expr.Lt, c, Expr.Const 2.0), a, b))
            leaf leaf leaf );
      ]
  in
  let stmt_gen = map2 (fun n rhs -> (arr_names.(n), rhs)) (int_range 0 5) expr_gen in
  triple
    (list_size (int_range 1 6) stmt_gen)  (* pre-loop block *)
    (list_size (int_range 0 5) stmt_gen)  (* loop-body block *)
    (int_range 1 3)                       (* loop trip count *)

let build_prog (pre, body, trips) =
  let mk specs =
    List.filter_map
      (fun (lhs, rhs) ->
        if List.mem lhs (Expr.ref_names rhs) then None
        else Some (Prog.Astmt (Nstmt.make ~region:interior ~lhs rhs)))
      specs
  in
  let pre = mk pre and body = mk body in
  let prog_body =
    pre
    @ (if body = [] then []
       else [ Prog.Sloop { var = "t"; lo = 1; hi = trips; body } ])
    @ [
        Prog.Reduce
          {
            target = "s";
            op = Prog.Rsum;
            region = interior;
            arg = Expr.(Ref ("A", v [ 0; 0 ]));
          };
      ]
  in
  {
    Prog.name = "random";
    arrays =
      [ user "A"; user "B"; user "C"; user "D"; temp "T1"; temp "T2" ];
    scalars = [ ("k", 3.0); ("s", 0.0) ];
    body = prog_body;
    live_out = [ "A"; "B"; "s" ];
  }

let prop_all_levels_equivalent =
  QCheck.Test.make ~name:"all optimization levels preserve semantics"
    ~count:400
    (QCheck.make prog_gen)
    (fun spec ->
      let prog = build_prog spec in
      match Prog.validate prog with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
          let reference = Exec.Refinterp.run prog in
          let ref_sum = Exec.Refinterp.checksum reference in
          List.for_all
            (fun level ->
              let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
              let r = Exec.Interp.run c.Compilers.Driver.code in
              Exec.Interp.checksum r = ref_sum)
            levels)

let prop_contracted_never_allocated =
  QCheck.Test.make ~name:"contracted arrays are not allocated" ~count:150
    (QCheck.make prog_gen)
    (fun spec ->
      let prog = build_prog spec in
      match Prog.validate prog with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
          let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
          let allocated =
            List.map
              (fun (a : Sir.Code.alloc) -> a.Sir.Code.name)
              c.Compilers.Driver.code.Sir.Code.allocs
          in
          List.for_all
            (fun (x, _) -> not (List.mem x allocated))
            c.Compilers.Driver.contracted)

let prop_levels_monotone_footprint =
  QCheck.Test.make ~name:"footprint: c2 <= c1 <= baseline" ~count:150
    (QCheck.make prog_gen)
    (fun spec ->
      let prog = build_prog spec in
      match Prog.validate prog with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
          let bytes level =
            Exec.Interp.footprint_bytes
              (Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog).Compilers.Driver.code
          in
          let b = bytes Compilers.Driver.Baseline in
          let c1 = bytes Compilers.Driver.C1 in
          let c2 = bytes Compilers.Driver.C2 in
          c2 <= c1 && c1 <= b)

(* Both the paper spellings (c2+f3) and the internal ones (c2f3) must
   round-trip through the level printer/parser. *)
let prop_level_name_roundtrip =
  QCheck.Test.make ~name:"level_of_name (level_name l) = Some l" ~count:100
    (QCheck.make (QCheck.Gen.oneofl levels) ~print:Compilers.Driver.level_name)
    (fun l ->
      let name = Compilers.Driver.level_name l in
      let internal = String.concat "" (String.split_on_char '+' name) in
      Compilers.Driver.level_of_name name = Some l
      && Compilers.Driver.level_of_name internal = Some l
      && Compilers.Driver.level_of_name (String.uppercase_ascii name) = Some l)

let suites =
  [
    ( "compile.stencil",
      [
        Alcotest.test_case "equivalence at all levels" `Quick
          test_stencil_equivalence;
        Alcotest.test_case "contraction decisions" `Quick
          test_stencil_contraction;
        Alcotest.test_case "memory footprint" `Quick
          test_contraction_reduces_footprint;
        Alcotest.test_case "memory traffic" `Quick
          test_contraction_reduces_traffic;
      ] );
    ( "compile.reduction-fusion",
      [
        Alcotest.test_case "absorb + contract" `Quick test_reduction_fusion;
        Alcotest.test_case "target read blocks" `Quick
          test_reduction_fusion_blocked_by_target_read;
      ] );
    ( "compile.random",
      [
        QCheck_alcotest.to_alcotest prop_all_levels_equivalent;
        QCheck_alcotest.to_alcotest prop_contracted_never_allocated;
        QCheck_alcotest.to_alcotest prop_levels_monotone_footprint;
      ] );
    ( "compile.levels",
      [ QCheck_alcotest.to_alcotest prop_level_name_roundtrip ] );
  ]
