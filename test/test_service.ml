(* The zapd service layer (lib/service): program fingerprints, the
   sharded LRU plan cache, the typed request API and its wire codecs,
   the engine's caching/determinism guarantees, and the socket
   server/client pair. *)

module Api = Service.Api
module Cache = Service.Cache
module Engine = Service.Engine
module Metrics = Service.Metrics
open Ir

let v = Support.Vec.of_list

(* ------------------------------------------------------------------ *)
(* Fingerprint                                                         *)
(* ------------------------------------------------------------------ *)

let golden_prog =
  {
    Prog.name = "golden";
    arrays =
      [
        {
          Prog.name = "A";
          bounds = Region.of_bounds [ (0, 9); (0, 9) ];
          kind = Prog.User;
        };
        {
          Prog.name = "B";
          bounds = Region.of_bounds [ (0, 9); (0, 9) ];
          kind = Prog.Compiler;
        };
      ];
    scalars = [ ("s", 1.5) ];
    body =
      [
        Prog.Astmt
          (Nstmt.make
             ~region:(Region.of_bounds [ (1, 8); (1, 8) ])
             ~lhs:"A"
             (Expr.Binop
                (Expr.Add, Expr.Ref ("B", v [ 0; 1 ]), Expr.Const 2.0)));
      ];
    live_out = [ "A" ];
  }

(* The committed content address of [golden_prog].  If this test
   breaks, every plan-cache key and fuzz repro filename in the wild
   changes meaning: bump deliberately or fix the regression. *)
let fingerprint_golden () =
  Alcotest.(check string)
    "golden program fingerprint is stable" "41bbb7ea1b1e2cd0"
    (Prog.fingerprint golden_prog)

let fingerprint_ignores_display_name () =
  Alcotest.(check string)
    "renamed program shares the fingerprint"
    (Prog.fingerprint golden_prog)
    (Prog.fingerprint { golden_prog with Prog.name = "renamed" })

let fingerprint_sensitivity () =
  let fp = Prog.fingerprint golden_prog in
  let changed_const =
    {
      golden_prog with
      Prog.body =
        [
          Prog.Astmt
            (Nstmt.make
               ~region:(Region.of_bounds [ (1, 8); (1, 8) ])
               ~lhs:"A"
               (Expr.Binop
                  (Expr.Add, Expr.Ref ("B", v [ 0; 1 ]), Expr.Const 3.0)));
        ];
    }
  in
  let changed_scalar = { golden_prog with Prog.scalars = [ ("s", 2.5) ] } in
  let changed_live = { golden_prog with Prog.live_out = [] } in
  Alcotest.(check bool)
    "constant change changes the fingerprint" true
    (fp <> Prog.fingerprint changed_const);
  Alcotest.(check bool)
    "scalar change changes the fingerprint" true
    (fp <> Prog.fingerprint changed_scalar);
  Alcotest.(check bool)
    "live-out change changes the fingerprint" true
    (fp <> Prog.fingerprint changed_live)

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics_no_collision () =
  let all = Metrics.all in
  Alcotest.(check int)
    "every key is distinct"
    (List.length all)
    (List.length (List.sort_uniq compare all));
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (k ^ " carries the service prefix")
        true
        (String.length k > String.length Metrics.prefix
        && String.sub k 0 (String.length Metrics.prefix) = Metrics.prefix))
    all;
  (* disjoint from every counter the rest of the pipeline pre-seeds *)
  let r = Obs.create () in
  let seeded = List.map fst (Obs.report r).Obs.counters in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (k ^ " does not collide with a pipeline counter")
        false (List.mem k seeded))
    all

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let key i =
  { Cache.fingerprint = Printf.sprintf "%016x" i; mode = "greedy:c2+f3";
    machine = "-"; procs = 0 }

let cache_lru_eviction_order () =
  (* one shard so the LRU order is global and observable *)
  let c = Cache.create ~shards:1 ~capacity:4 () in
  List.iter (fun i -> Cache.add c (key i) i) [ 1; 2; 3; 4 ];
  (* freshen 1 and 3: the least recently used entry is now 2 *)
  ignore (Cache.find c (key 1));
  ignore (Cache.find c (key 3));
  Cache.add c (key 5) 5;
  Alcotest.(check (option int)) "LRU victim evicted" None (Cache.find c (key 2));
  List.iter
    (fun i ->
      Alcotest.(check (option int))
        (Printf.sprintf "entry %d survives" i)
        (Some i)
        (Cache.find c (key i)))
    [ 1; 3; 4; 5 ];
  let s = Cache.stats c in
  Alcotest.(check int) "one eviction" 1 s.Cache.evictions;
  Alcotest.(check int) "population stays at capacity" 4 s.Cache.entries

let cache_capacity_bound () =
  let c = Cache.create ~shards:4 ~capacity:16 () in
  for i = 1 to 200 do
    Cache.add c (key i) i
  done;
  let s = Cache.stats c in
  Alcotest.(check bool)
    "population bounded by capacity" true
    (s.Cache.entries <= Cache.capacity c);
  List.iter
    (fun n -> Alcotest.(check bool) "shard bounded" true (n <= 4))
    (Cache.entries_per_shard c)

let cache_shard_distribution () =
  let c = Cache.create ~shards:8 ~capacity:1024 () in
  for i = 1 to 400 do
    Cache.add c (key i) i
  done;
  let per = Cache.entries_per_shard c in
  Alcotest.(check int) "eight shards" 8 (List.length per);
  Alcotest.(check int) "no entry lost" 400 (List.fold_left ( + ) 0 per);
  (* Hash64 assignment spreads: no shard should be starved or hog *)
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard holds a fair share (%d)" n)
        true
        (n >= 20 && n <= 80))
    per;
  (* the assignment is a pure function of the key *)
  for i = 1 to 10 do
    Alcotest.(check int)
      "shard_of is stable"
      (Cache.shard_of c (key i))
      (Cache.shard_of c (key i))
  done

let cache_first_writer_wins () =
  let c = Cache.create ~shards:1 ~capacity:4 () in
  Cache.add c (key 1) 10;
  Cache.add c (key 1) 99;
  Alcotest.(check (option int)) "first value kept" (Some 10) (Cache.find c (key 1));
  Alcotest.(check int) "one insertion" 1 (Cache.stats c).Cache.insertions

let cache_hit_miss_counts () =
  let c = Cache.create () in
  ignore (Cache.find c (key 1));
  Alcotest.(check int) "miss counted" 1 (Cache.stats c).Cache.misses;
  Alcotest.(check int)
    "find_or_add computes once" 7
    (Cache.find_or_add c (key 1) (fun () -> 7));
  Alcotest.(check int)
    "find_or_add then hits" 7
    (Cache.find_or_add c (key 1) (fun () -> 8));
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 2 s.Cache.misses

(* ------------------------------------------------------------------ *)
(* Api codecs                                                          *)
(* ------------------------------------------------------------------ *)

let sample_opts =
  {
    Api.level = "c2+f4";
    plan = Api.Search;
    config = [ ("n", 32.0); ("eps", 0.125) ];
    merge = true;
    simplify = true;
    dump_ir = true;
    dump_plan = false;
    dump_c = true;
    emit_c = true;
  }

let sample_requests =
  [
    Api.Compile
      {
        source = Api.Bench { name = "ep"; tile = Some 256 };
        opts = sample_opts;
        target = { Api.machine = "paragon"; procs = 16 };
      };
    Api.Run
      {
        source = Api.Text { name = "x.zap"; text = "program x;\n" };
        opts = Api.default_compile_opts;
        target = Api.default_target;
        spmd = true;
        native = false;
      };
    Api.Plan
      {
        source = Api.Bench { name = "tomcatv"; tile = None };
        opts = { Api.default_compile_opts with Api.plan = Api.Search };
        target = { Api.machine = "sp2"; procs = 4 };
      };
    Api.Batch [ Api.Stats; Api.Shutdown ];
    Api.Stats;
    Api.Shutdown;
  ]

let sample_provenance =
  {
    Plan.Driver.strategy = "search";
    machine = "Cray T3E";
    procs = 16;
    greedy_total_ns = 1234.5;
    search_total_ns = 1000.25;
    ilp_total_ns = None;
    chosen_total_ns = 1000.25;
    fallback = false;
    proved_optimal = None;
    certified_lb_ns = None;
    ilp_blocks = [];
    blocks =
      [
        {
          Plan.Driver.block = 0;
          stats =
            {
              Plan.Search.expanded = 10;
              generated = 40;
              pruned = 7;
              deduped = 3;
              beam_rounds = 0;
              greedy_ns = 1234.5;
              best_ns = 1000.25;
              improved = true;
            };
        };
      ];
  }

let sample_summary =
  {
    Api.program = "ep";
    level = "c2+f3";
    arrays_total = 22;
    contracted_compiler = 0;
    contracted_user = 22;
    remaining = 0;
    footprint_bytes = 0;
    contracted = [ ("t1", "scalar"); ("t2", "dims:01") ];
    merged_away = [ "u" ];
    fingerprint = "00112233aabbccdd";
    dump_ir = Some "ir text\n";
    dump_plan = None;
    dump_c = Some "c text\n";
    emit_c = None;
  }

let sample_perf =
  {
    Api.machine = "Cray T3E";
    procs = 4;
    time_ns = 487000.5;
    comp_ns = 487000.25;
    comm_ns = 0.25;
    flops = 221184;
    loads = 17;
    stores = 3;
    l1_miss_pct = 21.34;
    l2_miss_pct = Some 1.5;
    messages = 12;
    msg_bytes = 4096;
    checksum = "308149a4cb0e1adc";
  }

let sample_spmd =
  {
    Api.spmd_time_ns = 4440000.0;
    supersteps = 13;
    matches_model = true;
    charged_messages = 4;
    charged_bytes = 128;
    wire_messages = 4;
    wire_bytes = 128;
    ghost_fills = 2;
    unmodeled_exchanges = 0;
    reduction_messages = 1;
    spmd_l1_miss_pct = None;
    spmd_checksum = "308149a4cb0e1adc";
    report = Obs.Json.Obj [ ("supersteps", Obs.Json.Int 13) ];
  }

let sample_native =
  {
    Api.native_checksum = "308149a4cb0e1adc";
    native_wall_ns = 57049L;
    native_compiler = "cc (Debian 12.2.0) 12.2.0";
    native_units = 13;
    native_matches = true;
  }

let sample_responses =
  [
    Api.Compiled { summary = sample_summary; provenance = Some sample_provenance };
    Api.Compiled { summary = sample_summary; provenance = None };
    Api.Ran
      {
        summary = sample_summary;
        provenance = None;
        perf = sample_perf;
        spmd = Some sample_spmd;
        native = None;
      };
    Api.Ran
      {
        summary = sample_summary;
        provenance = Some sample_provenance;
        perf = { sample_perf with Api.l2_miss_pct = None };
        spmd = None;
        native = Some sample_native;
      };
    Api.Planned { summary = sample_summary; provenance = Some sample_provenance };
    Api.Batch_reply [ Api.Shutting_down; Api.Failed (Obs.Diagnostic.error ~phase:"cli" "boom") ];
    Api.Stats_reply
      {
        Api.requests = [ ("service.request.compile", 3) ];
        cache =
          {
            Api.shards = 8;
            cache_capacity = 256;
            entries = 2;
            hits = 1;
            misses = 2;
            evictions = 0;
            insertions = 2;
          };
        compiles_computed = 2;
        plans_computed = 1;
        natives_built = 1;
        natives_reused = 3;
        native_runs = 4;
      };
    Api.Shutting_down;
    Api.Failed (Obs.Diagnostic.error ~loc:("x.zap", 3) ~phase:"parse" "bad token");
  ]

let request_roundtrip () =
  List.iteri
    (fun i req ->
      match Api.request_of_json (Api.request_to_json req) with
      | Ok req' ->
          Alcotest.(check bool)
            (Printf.sprintf "request %d round-trips" i)
            true (req = req')
      | Error e -> Alcotest.failf "request %d failed to decode: %s" i e)
    sample_requests

let response_roundtrip () =
  List.iteri
    (fun i resp ->
      match Api.response_of_json (Api.response_to_json resp) with
      | Ok resp' ->
          Alcotest.(check bool)
            (Printf.sprintf "response %d round-trips" i)
            true (resp = resp')
      | Error e -> Alcotest.failf "response %d failed to decode: %s" i e)
    sample_responses

let wire_roundtrip () =
  (* through the actual wire encoding: JSON text line, parsed back *)
  List.iteri
    (fun i req ->
      let line = Obs.Json.to_string (Api.request_to_json req) in
      match Api.request_of_line line with
      | Ok req' ->
          Alcotest.(check bool)
            (Printf.sprintf "request %d survives the wire" i)
            true (req = req')
      | Error e -> Alcotest.failf "request %d failed on the wire: %s" i e)
    sample_requests;
  List.iteri
    (fun i resp ->
      let line = Obs.Json.to_string (Api.response_to_json resp) in
      match Result.bind (Obs.Json.of_string line) Api.response_of_json with
      | Ok resp' ->
          Alcotest.(check bool)
            (Printf.sprintf "response %d survives the wire" i)
            true (resp = resp')
      | Error e -> Alcotest.failf "response %d failed on the wire: %s" i e)
    sample_responses

let request_rejects_bad_input () =
  List.iter
    (fun line ->
      match Api.request_of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted bad request line %S" line)
    [
      "not json";
      "{}";
      {|{"op":"frobnicate"}|};
      {|{"op":"compile"}|};
      {|{"op":"compile","source":{"bench":"ep"},"v":999}|};
      {|{"op":"compile","source":{"bench":"ep"},"opts":{"plan":"mystic"}}|};
    ]

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let source_ep = Api.Bench { name = "ep"; tile = Some 256 }

let greedy_run =
  Api.Run
    {
      source = source_ep;
      opts = Api.default_compile_opts;
      target = Api.default_target;
      spmd = false;
      native = false;
    }

let search_compile =
  Api.Compile
    {
      source = source_ep;
      opts = { Api.default_compile_opts with Api.plan = Api.Search };
      target = Api.default_target;
    }

let render resp = Obs.Json.to_string (Api.response_to_json resp)

let engine_cache_hit_matches_cold () =
  let e = Engine.create ~jobs:1 () in
  let cold = Engine.handle e greedy_run in
  let warm = Engine.handle e greedy_run in
  Alcotest.(check string)
    "warm response byte-identical to cold" (render cold) (render warm);
  (match (cold, warm) with
  | Api.Ran { perf = p1; _ }, Api.Ran { perf = p2; _ } ->
      Alcotest.(check string)
        "cache-hit run checksum equals cold checksum" p1.Api.checksum
        p2.Api.checksum
  | _ -> Alcotest.fail "expected Ran responses");
  let s = Engine.cache_stats e in
  Alcotest.(check int) "second request hit the cache" 1 s.Cache.hits;
  Alcotest.(check int) "one plan entry" 1 s.Cache.insertions

let engine_warm_search_skips_planning () =
  let e = Engine.create ~jobs:1 () in
  let cold = Engine.handle e search_compile in
  let computed_after_cold = (Engine.server_stats e).Api.plans_computed in
  Alcotest.(check int) "cold search planned once" 1 computed_after_cold;
  let warm = Engine.handle e search_compile in
  Alcotest.(check int)
    "warm search did not re-plan" computed_after_cold
    (Engine.server_stats e).Api.plans_computed;
  Alcotest.(check string)
    "warm search response byte-identical" (render cold) (render warm)

let engine_batch_deterministic_across_domains () =
  let reqs =
    List.concat (List.init 3 (fun _ -> [ greedy_run; search_compile ]))
  in
  let outputs =
    List.map
      (fun jobs ->
        let e = Engine.create ~jobs () in
        match Engine.handle e (Api.Batch reqs) with
        | Api.Batch_reply rs -> List.map render rs
        | other -> [ render other ])
      [ 1; 2; 8 ]
  in
  match outputs with
  | o1 :: rest ->
      Alcotest.(check int) "all requests answered" (List.length reqs)
        (List.length o1);
      List.iteri
        (fun i o ->
          Alcotest.(check (list string))
            (Printf.sprintf "domain count %d matches baseline" i)
            o1 o)
        rest
  | [] -> ()

let engine_stats_and_failures () =
  let e = Engine.create ~jobs:1 () in
  (match
     Engine.handle e
       (Api.Compile
          {
            source = Api.Bench { name = "nope"; tile = None };
            opts = Api.default_compile_opts;
            target = Api.default_target;
          })
   with
  | Api.Failed d ->
      Alcotest.(check string) "cli phase" "cli" d.Obs.Diagnostic.phase
  | _ -> Alcotest.fail "unknown benchmark must fail");
  (match
     Engine.handle e
       (Api.Compile
          {
            source = source_ep;
            opts = { Api.default_compile_opts with Api.level = "c9" };
            target = Api.default_target;
          })
   with
  | Api.Failed _ -> ()
  | _ -> Alcotest.fail "unknown level must fail");
  match Engine.handle e Api.Stats with
  | Api.Stats_reply s ->
      Alcotest.(check int)
        "both failures counted as compile requests" 2
        (List.assoc Metrics.request_compile s.Api.requests);
      Alcotest.(check int) "stats request counted once" 1
        (List.assoc Metrics.request_stats s.Api.requests)
  | _ -> Alcotest.fail "expected a stats reply"

let engine_mirrors_obs () =
  let r = Obs.create () in
  let e = Engine.create ~jobs:1 () in
  Obs.run r (fun () ->
      ignore (Engine.handle e greedy_run);
      ignore (Engine.handle e greedy_run));
  let counters = (Obs.report r).Obs.counters in
  let get k = Option.value ~default:0 (List.assoc_opt k counters) in
  Alcotest.(check int) "requests mirrored" 2 (get Metrics.request_run);
  Alcotest.(check int) "miss mirrored" 1 (get Metrics.cache_miss);
  Alcotest.(check int) "hit mirrored" 1 (get Metrics.cache_hit);
  Alcotest.(check int) "compile mirrored" 1 (get Metrics.compile_computed)

(* ------------------------------------------------------------------ *)
(* Server / client over a real socket                                  *)
(* ------------------------------------------------------------------ *)

let with_server f =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "zapd-test-%d-%d.sock" (Unix.getpid ()) (Random.int 10000))
  in
  let engine = Engine.create ~jobs:1 () in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Service.Server.serve
          ~on_ready:(fun () -> Atomic.set ready true)
          ~socket engine)
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  Fun.protect
    ~finally:(fun () ->
      (* always shut the daemon down, even when the test body failed *)
      (try ignore (Service.Client.roundtrip ~socket Api.Shutdown)
       with _ -> ());
      (match Domain.join server with
      | Ok () -> ()
      | Error d -> Alcotest.failf "server: %s" (Obs.Diagnostic.to_string d));
      Alcotest.(check bool)
        "socket file removed on shutdown" false (Sys.file_exists socket))
    (fun () -> f socket)

let socket_smoke () =
  with_server (fun socket ->
      (match Service.Client.roundtrip ~socket greedy_run with
      | Ok (Api.Ran _) -> ()
      | Ok _ -> Alcotest.fail "expected a Ran response"
      | Error d -> Alcotest.failf "run: %s" (Obs.Diagnostic.to_string d));
      (* replay: the daemon's cache must serve it *)
      (match Service.Client.roundtrip ~socket greedy_run with
      | Ok (Api.Ran _) -> ()
      | Ok _ -> Alcotest.fail "expected a Ran response"
      | Error d -> Alcotest.failf "run: %s" (Obs.Diagnostic.to_string d));
      match Service.Client.roundtrip ~socket Api.Stats with
      | Ok (Api.Stats_reply s) ->
          Alcotest.(check int) "replay hit the daemon cache" 1 s.Api.cache.Api.hits
      | Ok _ -> Alcotest.fail "expected a stats reply"
      | Error d -> Alcotest.failf "stats: %s" (Obs.Diagnostic.to_string d))

let socket_protocol_error () =
  with_server (fun socket ->
      (* raw connection so we can send a malformed line *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc "this is not json\n";
      flush oc;
      let line = input_line ic in
      Unix.close fd;
      (match Result.bind (Obs.Json.of_string line) Api.response_of_json with
      | Ok (Api.Failed d) ->
          Alcotest.(check string)
            "protocol phase" "protocol" d.Obs.Diagnostic.phase
      | Ok _ -> Alcotest.fail "expected a Failed response"
      | Error e -> Alcotest.failf "unparseable error reply: %s" e);
      (* the connection error did not kill the daemon *)
      match Service.Client.roundtrip ~socket Api.Stats with
      | Ok (Api.Stats_reply _) -> ()
      | Ok _ -> Alcotest.fail "expected a stats reply"
      | Error d -> Alcotest.failf "stats: %s" (Obs.Diagnostic.to_string d))

let suites =
  [
    ( "service-fingerprint",
      [
        Alcotest.test_case "golden stability" `Quick fingerprint_golden;
        Alcotest.test_case "display name excluded" `Quick
          fingerprint_ignores_display_name;
        Alcotest.test_case "content sensitivity" `Quick fingerprint_sensitivity;
      ] );
    ( "service-metrics",
      [ Alcotest.test_case "keys collision-free" `Quick metrics_no_collision ]
    );
    ( "service-cache",
      [
        Alcotest.test_case "LRU eviction order" `Quick cache_lru_eviction_order;
        Alcotest.test_case "capacity bound" `Quick cache_capacity_bound;
        Alcotest.test_case "shard distribution" `Quick cache_shard_distribution;
        Alcotest.test_case "first writer wins" `Quick cache_first_writer_wins;
        Alcotest.test_case "hit/miss accounting" `Quick cache_hit_miss_counts;
      ] );
    ( "service-api",
      [
        Alcotest.test_case "request round-trip" `Quick request_roundtrip;
        Alcotest.test_case "response round-trip" `Quick response_roundtrip;
        Alcotest.test_case "wire round-trip" `Quick wire_roundtrip;
        Alcotest.test_case "bad input rejected" `Quick request_rejects_bad_input;
      ] );
    ( "service-engine",
      [
        Alcotest.test_case "cache hit matches cold compile" `Quick
          engine_cache_hit_matches_cold;
        Alcotest.test_case "warm search skips planning" `Slow
          engine_warm_search_skips_planning;
        Alcotest.test_case "batch deterministic at 1/2/8 domains" `Slow
          engine_batch_deterministic_across_domains;
        Alcotest.test_case "failures and stats" `Quick engine_stats_and_failures;
        Alcotest.test_case "obs counters mirrored" `Quick engine_mirrors_obs;
      ] );
    ( "service-socket",
      [
        Alcotest.test_case "compile/stats/shutdown smoke" `Slow socket_smoke;
        Alcotest.test_case "protocol error keeps daemon alive" `Quick
          socket_protocol_error;
      ] );
  ]
