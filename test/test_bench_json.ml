(* The bench harness's --json rows must agree with its text tables:
   same configurations, same numbers (the text rounds to one decimal,
   so the JSON is checked through the same rounding). *)

let bench = "../bench/main.exe"

let available = Sys.file_exists bench

let run args =
  let out = Filename.temp_file "bench" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote bench) args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, text)

let lines text = String.split_on_char '\n' text

let parse_rows text =
  List.filter_map
    (fun line ->
      let line = String.trim line in
      if line = "" then None
      else
        match Obs.Json.of_string line with
        | Ok (Obs.Json.Obj fields) -> Some fields
        | Ok j ->
            Alcotest.failf "row is not an object: %s" (Obs.Json.to_string j)
        | Error e -> Alcotest.failf "bad JSON row %S: %s" line e)
    (lines text)

let str field row =
  match List.assoc_opt field row with
  | Some (Obs.Json.String s) -> s
  | _ -> Alcotest.failf "row missing string field %S" field

let num field row =
  match List.assoc_opt field row with
  | Some (Obs.Json.Float f) -> f
  | Some (Obs.Json.Int n) -> float_of_int n
  | _ -> Alcotest.failf "row missing numeric field %S" field

let test_fig7_matches_text () =
  if available then begin
    let code, jout = run "fig7 --json" in
    Alcotest.(check int) "json exit 0" 0 code;
    let code, tout = run "fig7" in
    Alcotest.(check int) "text exit 0" 0 code;
    let rows = parse_rows jout in
    Alcotest.(check int) "one row per benchmark" (List.length Suite.all)
      (List.length rows);
    List.iter
      (fun row ->
        let b = str "bench" row in
        let line =
          match
            List.find_opt
              (fun l ->
                match String.split_on_char ' ' (String.trim l) with
                | first :: _ -> first = b
                | [] -> false)
              (lines tout)
          with
          | Some l -> l
          | None -> Alcotest.failf "no text row for %s" b
        in
        let contains sub = Astring.String.is_infix ~affix:sub line in
        let pct = Printf.sprintf "%.1f%%" (num "change_pct" row) in
        Alcotest.(check bool)
          (Printf.sprintf "%s: %% change %s in %S" b pct line)
          true (contains pct);
        Alcotest.(check bool)
          (Printf.sprintf "%s: arrays after" b)
          true
          (contains (Printf.sprintf " %d " (int_of_float (num "arrays_after" row)))))
      rows
  end

let test_fig9_rows_match_text () =
  if available then begin
    let code, jout = run "fig9 --json" in
    Alcotest.(check int) "json exit 0" 0 code;
    let code, tout = run "fig9" in
    Alcotest.(check int) "text exit 0" 0 code;
    let rows = parse_rows jout in
    (* one row per (benchmark, level, procs) *)
    let levels = 7 and procs = 4 in
    Alcotest.(check int) "row count"
      (List.length Suite.all * levels * procs)
      (List.length rows);
    (* the text table prints one line per procs value; every JSON
       improvement for that (bench, procs) must appear on it, with the
       same rounding *)
    let tlines = lines tout in
    let rec section_of bench = function
      | [] -> Alcotest.failf "no text section for %s" bench
      | l :: rest when String.trim l = bench -> rest
      | _ :: rest -> section_of bench rest
    in
    List.iter
      (fun row ->
        let b = str "bench" row in
        let p = int_of_float (num "procs" row) in
        let sect = section_of b tlines in
        let line =
          match
            List.find_opt
              (fun l ->
                match String.split_on_char ' ' (String.trim l) with
                | first :: _ -> first = string_of_int p
                | [] -> false)
              sect
          with
          | Some l -> l
          | None -> Alcotest.failf "no text line for %s procs=%d" b p
        in
        let want = Printf.sprintf "%.1f%%" (num "improvement_pct" row) in
        Alcotest.(check bool)
          (Printf.sprintf "%s procs=%d level=%s: %s on %S" b p
             (str "level" row) want line)
          true
          (Astring.String.is_infix ~affix:want line))
      rows
  end

(* the determinism contract at the harness level: fanning a section
   over a pool must not change a byte of its stdout rows *)
let check_jobs_invariant section args =
  if available then begin
    let run_stdout extra =
      let out = Filename.temp_file "bench" ".out" in
      let cmd =
        Printf.sprintf "%s %s %s > %s 2>/dev/null" (Filename.quote bench) args
          extra (Filename.quote out)
      in
      let code = Sys.command cmd in
      let ic = open_in out in
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      close_in ic;
      Sys.remove out;
      Alcotest.(check int) (section ^ " exit 0" ^ extra) 0 code;
      text
    in
    Alcotest.(check string)
      (section ^ ": --jobs 2 rows byte-identical to sequential")
      (run_stdout "--jobs 1") (run_stdout "--jobs 2")
  end

let test_fig7_jobs_invariant () = check_jobs_invariant "fig7" "fig7 --json"
let test_fig8_jobs_invariant () = check_jobs_invariant "fig8" "fig8 --json"

let test_plan_jobs_invariant () =
  check_jobs_invariant "plan" "plan --json --tiny"

let suites =
  [
    ( "bench.json",
      [
        Alcotest.test_case "fig7 --json matches text" `Quick
          test_fig7_matches_text;
        Alcotest.test_case "fig9 --json matches text" `Slow
          test_fig9_rows_match_text;
        Alcotest.test_case "fig7 rows invariant under --jobs" `Quick
          test_fig7_jobs_invariant;
        Alcotest.test_case "fig8 rows invariant under --jobs" `Slow
          test_fig8_jobs_invariant;
        Alcotest.test_case "plan rows invariant under --jobs" `Slow
          test_plan_jobs_invariant;
      ] );
  ]
