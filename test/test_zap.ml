(* Frontend: lexer, parser, elaboration, normalization. *)

open Ir

let compile = Zap.Elaborate.compile_string

let heat_src =
  {|
program heat;
config n := 6;
region R = [1..n, 1..n];
region All = [0..n+1, 0..n+1];
direction north = [-1, 0];
direction south = [1, 0];
var A, B, Flux : All;
scalar total := 0.0;
export A, total;
begin
  [All] A := 0.25 * index1 + 0.5 * index2;   -- initial mesh
  for t := 1 to 3 do
    [R] B := 0.25 * (A@north + A@south + A@[0,-1] + A@[0,1]);
    [R] Flux := B * B;
    [R] A := B - 0.1 * Flux;
  end;
  total := +<< R A;
end.
|}

let test_lexer () =
  let toks = Zap.Lexer.tokenize "x := +<< [1..n] a@[-1,0]; -- c\ny" in
  let kinds = List.map fst toks in
  Alcotest.(check bool)
    "reduction token" true
    (List.mem (Zap.Token.RED "+<<") kinds);
  Alcotest.(check bool) "comment skipped" true
    (not (List.exists (function Zap.Token.IDENT "c" -> true | _ -> false) kinds));
  Alcotest.(check bool) "dotdot" true (List.mem Zap.Token.DOTDOT kinds);
  (* line numbers *)
  let y_line =
    List.assoc (Zap.Token.IDENT "y") (List.map (fun (t, l) -> (t, l)) toks)
  in
  Alcotest.(check int) "line tracking" 2 y_line

let test_lexer_reserved () =
  Alcotest.(check bool)
    "__ reserved" true
    (try
       ignore (Zap.Lexer.tokenize "__t1");
       false
     with Zap.Lexer.Error _ -> true)

let test_lexer_minmax_red () =
  let toks = List.map fst (Zap.Lexer.tokenize "m := min<< R x; k := max(a,b);") in
  Alcotest.(check bool) "min<<" true (List.mem (Zap.Token.RED "min<<") toks);
  Alcotest.(check bool)
    "max is a plain call" true
    (List.mem (Zap.Token.IDENT "max") toks)

let test_parse_and_elaborate () =
  let prog = compile heat_src in
  Alcotest.(check string) "name" "heat" prog.Prog.name;
  (match Prog.validate prog with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (pair int int))
    "3 user + 0 compiler arrays" (0, 3)
    (Prog.static_array_counts prog);
  Alcotest.(check (list string)) "live out" [ "A"; "total" ] prog.Prog.live_out;
  (* blocks: init | loop body | (reduce ends program) *)
  Alcotest.(check int) "blocks" 2 (List.length (Prog.blocks prog))

let test_config_override () =
  let p6 = compile heat_src in
  let p10 = compile ~config:[ ("n", 10.0) ] heat_src in
  let vol p =
    match Prog.find_array p "A" with
    | Some a -> Region.volume a.Prog.bounds
    | None -> -1
  in
  Alcotest.(check int) "default n=6" (8 * 8) (vol p6);
  Alcotest.(check int) "override n=10" (12 * 12) (vol p10)

let test_temp_insertion () =
  let src =
    {|
program frag4;
config n := 4;
region R = [1..n, 1..n];
var A : [0..n+1, 0..n+1];
export A;
begin
  [R] A := A@[-1,0] + A@[-1,0];
end.
|}
  in
  let prog = compile src in
  Alcotest.(check (pair int int))
    "one compiler temp inserted" (1, 1)
    (Prog.static_array_counts prog);
  match Prog.blocks prog with
  | [ [ s1; s2 ] ] ->
      Alcotest.(check string) "temp written first" "__t1" s1.Nstmt.lhs;
      Alcotest.(check string) "then copied" "A" s2.Nstmt.lhs
  | _ -> Alcotest.fail "expected one block of two statements"

let test_temp_offset_zero_insertion () =
  (* even an offset-0 self read goes through a temporary: the paper's
     always-insert policy; the optimizer contracts it away *)
  let src =
    {|
program selfread;
config n := 4;
region R = [1..n];
var A : [0..n+1];
export A;
begin
  [R] A := A + 1.0;
end.
|}
  in
  let prog = compile src in
  Alcotest.(check (pair int int)) "temp inserted" (1, 1)
    (Prog.static_array_counts prog);
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
  Alcotest.(check int) "temp contracted away" 1
    (Compilers.Driver.remaining_arrays c)

(* Precedence checks via a 1-point program: compile, run, compare with
   the directly computed value. *)
let scalar_result expr_src =
  let src =
    Printf.sprintf
      {|program p;
region R = [1..1];
var A : [1..1];
scalar k := 3.0;
export A;
begin
  [R] A := %s;
end.|}
      expr_src
  in
  let prog = compile src in
  let r = Exec.Refinterp.run prog in
  (Exec.Refinterp.get_array r "A").(0)

let test_precedence () =
  let cases =
    [
      ("1 + 2 * 3", 7.0);
      ("(1 + 2) * 3", 9.0);
      ("2 * 3 ^ 2", 18.0);            (* ^ binds tighter than * *)
      ("-2 ^ 2", -4.0);               (* Fortran-style: -(2^2) *)
      ("10 - 4 - 3", 3.0);            (* left assoc *)
      ("12 / 4 / 3", 1.0);
      ("1 + 2 < 4", 1.0);             (* comparison below arithmetic *)
      ("1 < 2 && 3 < 2", 0.0);        (* && below comparison *)
      ("0 < 1 || 1 < 0", 1.0);
      ("!(1 < 2)", 0.0);
      ("k * 2 + 1", 7.0);             (* scalar read *)
      ("min(4, max(2, 3))", 3.0);
      ("select(2 > 1, 10, 20)", 10.0);
      ("index1 * 5", 5.0);            (* only point is i = 1 *)
      ("abs(-3) + floor(2.9)", 5.0);
    ]
  in
  List.iter
    (fun (src, want) ->
      Alcotest.(check (float 1e-12)) src want (scalar_result src))
    cases

let test_config_arithmetic () =
  (* config constants fold through region bounds and loop bounds *)
  let src =
    {|program p;
config n := 4;
config half := n / 2;
region R = [half..n * 2 - 1];
var A : [1..10];
scalar s := 0.0;
export s;
begin
  for t := 1 to half do
    [R] A := A + 1.0;
  end;
  s := +<< R A;
end.|}
  in
  let prog = compile src in
  let r = Exec.Refinterp.run prog in
  (* region [2..7] = 6 points, each incremented twice (half = 2) *)
  Alcotest.(check (float 1e-12)) "config math" 12.0
    (Exec.Refinterp.get_scalar r "s")

let expect_error ?(sub = "") src =
  match compile src with
  | exception Zap.Elaborate.Error (_, msg) ->
      if sub <> "" && not (Astring.String.is_infix ~affix:sub msg) then
        Alcotest.failf "error %S does not mention %S" msg sub
  | exception Zap.Parser.Error _ -> ()
  | exception Zap.Lexer.Error _ -> ()
  | _ -> Alcotest.failf "expected a compile error"

let test_non_integer_bound_rejected () =
  expect_error ~sub:"integer"
    {|program p;
config n := 5;
region R = [1..n / 2];
var A : [1..4];
export A;
begin
  [R] A := 1.0;
end.|}

let test_errors () =
  expect_error ~sub:"unknown region"
    "program p; var A : [1..4]; export A; begin [R] A := 1.0; end.";
  expect_error ~sub:"rank"
    {|program p; region R = [1..4,1..4]; var A : [1..4]; export A;
      begin [R] A := 2.0; end.|};
  expect_error ~sub:"scalar context"
    {|program p; region R = [1..4]; var A : [0..5]; scalar s; export s;
      begin s := A + 1.0; end.|};
  expect_error ~sub:"escapes bounds"
    {|program p; region R = [1..4]; var A, B : [1..4]; export B;
      begin [R] B := A@[-1]; end.|};
  expect_error ~sub:"undeclared scalar"
    "program p; begin s := 1.0; end.";
  expect_error ~sub:"region prefix"
    {|program p; region R = [1..4]; var A : [1..4]; export A;
      begin A := 1.0; end.|}

let test_zap_end_to_end () =
  (* full pipeline on a parsed program: all levels equivalent *)
  let prog = compile heat_src in
  let reference = Exec.Refinterp.run prog in
  let ref_sum = Exec.Refinterp.checksum reference in
  List.iter
    (fun level ->
      let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
      let r = Exec.Interp.run c.Compilers.Driver.code in
      Alcotest.(check string)
        (Compilers.Driver.level_name level)
        ref_sum (Exec.Interp.checksum r))
    (Compilers.Driver.all_levels @ [ Compilers.Driver.C2P ]);
  (* and the computation is actually sensible: total is finite, nonzero *)
  let t = Exec.Refinterp.get_scalar reference "total" in
  Alcotest.(check bool) "total finite" true (Float.is_finite t && t <> 0.0)

let test_heat_contraction () =
  let prog = compile heat_src in
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
  (* Flux is consumed at offset 0 and contracts; B cannot — the
     stencil's mixed-sign anti dependences against the A update leave
     its producer and consumers unfusable (no legal loop structure). *)
  Alcotest.(check (pair int int)) "user temp contracted" (0, 1)
    (Compilers.Driver.contracted_counts c);
  Alcotest.(check bool) "Flux gone" true
    (List.for_all
       (fun (a : Sir.Code.alloc) -> a.Sir.Code.name <> "Flux")
       c.Compilers.Driver.code.Sir.Code.allocs);
  Alcotest.(check int) "A and B remain" 2
    (Compilers.Driver.remaining_arrays c)

let suites =
  [
    ( "zap.lexer",
      [
        Alcotest.test_case "tokens" `Quick test_lexer;
        Alcotest.test_case "reserved names" `Quick test_lexer_reserved;
        Alcotest.test_case "reduction vs call" `Quick test_lexer_minmax_red;
      ] );
    ( "zap.elaborate",
      [
        Alcotest.test_case "heat program" `Quick test_parse_and_elaborate;
        Alcotest.test_case "config override" `Quick test_config_override;
        Alcotest.test_case "temp insertion" `Quick test_temp_insertion;
        Alcotest.test_case "offset-0 self read" `Quick test_temp_offset_zero_insertion;
        Alcotest.test_case "diagnostics" `Quick test_errors;
        Alcotest.test_case "precedence" `Quick test_precedence;
        Alcotest.test_case "config arithmetic" `Quick test_config_arithmetic;
        Alcotest.test_case "non-integer bound" `Quick test_non_integer_bound_rejected;
      ] );
    ( "zap.pipeline",
      [
        Alcotest.test_case "end to end equivalence" `Quick test_zap_end_to_end;
        Alcotest.test_case "contraction of user temp" `Quick test_heat_contraction;
      ] );
  ]
