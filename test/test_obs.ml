(* The observability layer: JSON round-trips, diagnostics, recorder
   semantics, and the instrumentation the driver emits through it. *)

open Ir

let json = Alcotest.testable Obs.Json.pp ( = )

(* ---------------- Json ------------------------------------------- *)

let sample =
  Obs.Json.(
    Obj
      [
        ("name", String "tomcatv");
        ("ok", Bool true);
        ("none", Null);
        ("n", Int 42);
        ("pct", Float 81.25);
        ("weird", String "a\"b\\c\nd\te");
        ("xs", List [ Int 1; Int (-2); Float 0.5; String "" ]);
        ("nested", Obj [ ("deep", List [ Obj [ ("k", Int 7) ] ]) ]);
      ])

let test_json_roundtrip () =
  let s = Obs.Json.to_string sample in
  match Obs.Json.of_string s with
  | Ok v -> Alcotest.check json "parse (print x) = x" sample v
  | Error e -> Alcotest.failf "re-parse failed: %s on %s" e s

let test_json_accessors () =
  Alcotest.(check (option int))
    "member" (Some 42)
    (match Obs.Json.member "n" sample with
    | Some (Obs.Json.Int n) -> Some n
    | _ -> None);
  Alcotest.(check (option int))
    "find path" (Some 7)
    (match Obs.Json.find sample [ "nested"; "deep" ] with
    | Some (Obs.Json.List [ o ]) -> (
        match Obs.Json.member "k" o with
        | Some (Obs.Json.Int n) -> Some n
        | _ -> None)
    | _ -> None)

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Obs.Json.of_string s with
      | Ok v -> Alcotest.failf "accepted %S as %s" s (Obs.Json.to_string v)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nulll"; "\"unterminated"; "{} trailing" ]

(* ---------------- Diagnostic ------------------------------------- *)

let test_diagnostic_render () =
  let d = Obs.Diagnostic.error ~phase:"cli" "no such file" in
  Alcotest.(check string)
    "no loc" "cli error: no such file"
    (Obs.Diagnostic.to_string d);
  let d =
    Obs.Diagnostic.errorf ~loc:("prog.zap", 3) ~phase:"parse" "bad %s" "token"
  in
  Alcotest.(check string)
    "with loc" "prog.zap:3: parse error: bad token"
    (Obs.Diagnostic.to_string d)

(* ---------------- clock ------------------------------------------ *)

(* now_ns is the monotonic clock: consecutive reads never go
   backwards, even across a wall-clock step (which gettimeofday-based
   timing was vulnerable to), and successive spans can never report
   negative elapsed time *)
let test_now_ns_monotonic () =
  let prev = ref (Obs.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Obs.now_ns () in
    if t < !prev then
      Alcotest.failf "clock went backwards: %.0f -> %.0f" !prev t;
    prev := t
  done;
  let t0 = Obs.now_ns () in
  Unix.sleepf 0.001;
  let t1 = Obs.now_ns () in
  Alcotest.(check bool) "advances across a sleep" true (t1 -. t0 >= 0.5e6)

(* ---------------- recorder --------------------------------------- *)

let test_disabled_noop () =
  Alcotest.(check bool) "disabled outside run" false (Obs.enabled ());
  (* instrumentation without a recorder must be inert, not crash *)
  Obs.count "free.counter" 3;
  Alcotest.(check int) "span passes value through" 9
    (Obs.span "orphan" (fun () -> 9))

let test_span_nesting () =
  let t = Obs.create () in
  let v =
    Obs.run t (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "a" (fun () -> ());
            Obs.span "b" (fun () -> Obs.span "b1" (fun () -> ()));
            17))
  in
  Alcotest.(check int) "value" 17 v;
  let r = Obs.report t in
  let rec shape (s : Obs.span) =
    s.Obs.span_name ^ "("
    ^ String.concat "," (List.map shape s.Obs.children)
    ^ ")"
  in
  Alcotest.(check (list string))
    "span tree"
    [ "outer(a(),b(b1()))" ]
    (List.map shape r.Obs.spans);
  let rec all_nonneg (s : Obs.span) =
    s.Obs.elapsed_ns >= 0.0 && List.for_all all_nonneg s.Obs.children
  in
  Alcotest.(check bool) "timings >= 0" true (List.for_all all_nonneg r.Obs.spans)

let test_counters_and_events () =
  let t = Obs.create () in
  Obs.run t (fun () ->
      Obs.count "custom.hits" 2;
      Obs.count "custom.hits" 3;
      Obs.total "custom.ns" 1.5;
      Obs.event (Obs.Fusion_reject { array = Some "T"; reason = Obs.Nonnull_flow });
      Obs.event (Obs.Contraction_perform { array = "T"; shape = "scalar" }));
  let r = Obs.report t in
  let counter name = List.assoc_opt name r.Obs.counters in
  Alcotest.(check (option int)) "accumulates" (Some 5) (counter "custom.hits");
  Alcotest.(check (option int))
    "event bumps its counter" (Some 1)
    (counter "fusion.rejected.nonnull-flow");
  Alcotest.(check (option int))
    "seeded keys present at 0" (Some 0)
    (counter "fusion.rejected.cycle");
  Alcotest.(check (option (float 1e-9)))
    "float totals" (Some 1.5)
    (List.assoc_opt "custom.ns" r.Obs.totals);
  Alcotest.(check int) "events kept in order" 2 (List.length r.Obs.events)

let test_merge_reports () =
  let child k =
    let c = Obs.create () in
    Obs.run c (fun () ->
        Obs.count "merge.hits" k;
        Obs.total "merge.ns" (float_of_int k);
        Obs.span (Printf.sprintf "child%d" k) (fun () -> ()));
    Obs.report c
  in
  let r1 = child 1 and r2 = child 2 in
  let parent = Obs.create () in
  Obs.run parent (fun () -> Obs.count "merge.hits" 10);
  Obs.merge parent r1;
  Obs.merge parent r2;
  let r = Obs.report parent in
  Alcotest.(check (option int))
    "counters add" (Some 13)
    (List.assoc_opt "merge.hits" r.Obs.counters);
  Alcotest.(check (option (float 1e-9)))
    "totals add" (Some 3.0)
    (List.assoc_opt "merge.ns" r.Obs.totals);
  Alcotest.(check (list string))
    "spans appended in merge order" [ "child1"; "child2" ]
    (List.map (fun (s : Obs.span) -> s.Obs.span_name) r.Obs.spans)

(* recorders dynamically scope per domain: a freshly spawned domain
   starts disabled even while the spawner is inside Obs.run — pool
   workers must opt in with their own recorder, never race a shared
   one *)
let test_recorder_is_domain_local () =
  let t = Obs.create () in
  let parent_sees, child_sees =
    Obs.run t (fun () ->
        let d = Domain.spawn (fun () -> Obs.enabled ()) in
        let child = Domain.join d in
        (Obs.enabled (), child))
  in
  Alcotest.(check bool) "spawner enabled" true parent_sees;
  Alcotest.(check bool) "spawned domain disabled" false child_sees;
  Alcotest.(check bool) "active mirrors enabled" true (Obs.active () = None)

(* ---------------- result-based driver API ------------------------ *)

let region = Region.of_bounds [ (1, 4) ]

let valid_prog () =
  let bounds = Region.of_bounds [ (0, 5) ] in
  let arr name kind = { Prog.name; bounds; kind } in
  {
    Prog.name = "obsdemo";
    arrays = [ arr "A" Prog.User; arr "T" Prog.Compiler; arr "B" Prog.User ];
    scalars = [];
    body =
      [
        Prog.Astmt (Nstmt.make ~region ~lhs:"A" (Expr.Idx 1));
        Prog.Astmt
          (Nstmt.make ~region ~lhs:"T"
             Expr.(Binop (Mul, Ref ("A", Support.Vec.zero 1), Const 2.0)));
        Prog.Astmt
          (Nstmt.make ~region ~lhs:"B"
             Expr.(Binop (Add, Ref ("T", Support.Vec.zero 1), Const 1.0)));
      ];
    live_out = [ "B" ];
  }

let invalid_prog () =
  let p = valid_prog () in
  {
    p with
    Prog.body =
      p.Prog.body
      @ [ Prog.Astmt (Nstmt.make ~region ~lhs:"NOPE" (Expr.Const 1.0)) ];
  }

let test_compile_ok () =
  match Compilers.Driver.compile_opts (Compilers.Driver.opts Compilers.Driver.C2) (valid_prog ()) with
  | Ok c ->
      Alcotest.(check bool)
        "T contracted" true
        (List.mem_assoc "T" c.Compilers.Driver.contracted)
  | Error d -> Alcotest.failf "unexpected: %s" (Obs.Diagnostic.to_string d)

let test_compile_error_is_diagnostic () =
  match
    Compilers.Driver.compile_opts (Compilers.Driver.opts Compilers.Driver.C2) (invalid_prog ())
  with
  | Ok _ -> Alcotest.fail "invalid program compiled"
  | Error d ->
      Alcotest.(check string) "phase" "check" d.Obs.Diagnostic.phase;
      Alcotest.(check bool)
        "severity" true
        (d.Obs.Diagnostic.severity = Obs.Diagnostic.Error)

let test_compile_exn_raises () =
  match
    Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) (invalid_prog ())
  with
  | _ -> Alcotest.fail "invalid program compiled"
  | exception Obs.Error d ->
      Alcotest.(check string) "phase" "check" d.Obs.Diagnostic.phase

(* ---------------- driver instrumentation ------------------------- *)

let test_compile_is_instrumented () =
  let t = Obs.create () in
  Obs.run t (fun () ->
      ignore (Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) (valid_prog ())));
  let r = Obs.report t in
  (match r.Obs.spans with
  | [ c ] ->
      Alcotest.(check string) "root span" "compile" c.Obs.span_name;
      let kids = List.map (fun (s : Obs.span) -> s.Obs.span_name) c.Obs.children in
      List.iter
        (fun k ->
          Alcotest.(check bool) (k ^ " span present") true (List.mem k kids))
        [ "check"; "plan"; "scalarize" ]
  | spans -> Alcotest.failf "expected 1 root span, got %d" (List.length spans));
  let counter name = List.assoc_opt name r.Obs.counters in
  Alcotest.(check bool)
    "fusion attempts recorded" true
    (match counter "fusion.attempted" with Some n -> n > 0 | None -> false);
  (* A (dead user array) and T (compiler temp) both contract at c2 *)
  Alcotest.(check (option int)) "contraction performed" (Some 2)
    (counter "contraction.performed");
  Alcotest.(check bool)
    "dependence edges recorded" true
    (match counter "dep.edges" with Some n -> n > 0 | None -> false);
  (* the JSON rendering carries the same keys *)
  let j = Obs.report_to_json r in
  Alcotest.(check bool)
    "json has counters" true
    (Obs.Json.find j [ "counters"; "fusion.attempted" ] <> None);
  Alcotest.(check bool)
    "json has spans" true
    (match Obs.Json.member "spans" j with
    | Some (Obs.Json.List (_ :: _)) -> true
    | _ -> false)

let suites =
  [
    ( "obs.json",
      [
        Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
        Alcotest.test_case "accessors" `Quick test_json_accessors;
        Alcotest.test_case "rejects garbage" `Quick test_json_rejects_garbage;
      ] );
    ( "obs.recorder",
      [
        Alcotest.test_case "now_ns is monotonic" `Quick test_now_ns_monotonic;
        Alcotest.test_case "diagnostic rendering" `Quick test_diagnostic_render;
        Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "counters and events" `Quick test_counters_and_events;
        Alcotest.test_case "merge accumulates reports" `Quick
          test_merge_reports;
        Alcotest.test_case "recorder is domain-local" `Quick
          test_recorder_is_domain_local;
      ] );
    ( "obs.driver",
      [
        Alcotest.test_case "compile ok" `Quick test_compile_ok;
        Alcotest.test_case "compile error diagnostic" `Quick
          test_compile_error_is_diagnostic;
        Alcotest.test_case "compile_exn raises" `Quick test_compile_exn_raises;
        Alcotest.test_case "compile emits spans + counters" `Quick
          test_compile_is_instrumented;
      ] );
  ]
