(* The fuzzing subsystem, and the NaN-semantics fixes it flushed out:
   the generator's programs always validate and are deterministic in
   the seed, repros round-trip, the corpus replays green through the
   full differential oracle, the shrinker preserves the property it
   is given, and Min/Max/digest handle NaN identically everywhere. *)

open Ir

let nan_check name v = Alcotest.(check bool) name true (v <> v)

(* ------------------------------------------------------------------ *)
(* Min/Max NaN semantics (the satellite bugfix)                        *)
(* ------------------------------------------------------------------ *)

let test_minmax_nan () =
  let nan = 0.0 /. 0.0 in
  nan_check "fmin nan l" (Expr.fmin nan 1.0);
  nan_check "fmin nan r" (Expr.fmin 1.0 nan);
  nan_check "fmax nan l" (Expr.fmax nan 1.0);
  nan_check "fmax nan r" (Expr.fmax 1.0 nan);
  (* the original report: 0/0 pushed through min dropped the NaN on
     some executors *)
  nan_check "0/0 through min" (Expr.apply_binop Expr.Min (0.0 /. 0.0) 5.0);
  nan_check "0/0 through max" (Expr.apply_binop Expr.Max 5.0 (0.0 /. 0.0));
  Alcotest.(check (float 0.0)) "fmin finite" 2.0 (Expr.fmin 3.0 2.0);
  Alcotest.(check (float 0.0)) "fmax finite" 3.0 (Expr.fmax 3.0 2.0)

(* ties are resolved left-biased, so -0.0 vs 0.0 is deterministic in
   every executor (1/x distinguishes the zeros) *)
let test_minmax_signed_zero () =
  Alcotest.(check (float 0.0))
    "fmin -0. 0." neg_infinity
    (1.0 /. Expr.fmin (-0.0) 0.0);
  Alcotest.(check (float 0.0))
    "fmax -0. 0." neg_infinity
    (1.0 /. Expr.fmax (-0.0) 0.0)

let test_digest_nan_canonical () =
  let hex v = Exec.Interp.Digest.(to_hex (mix empty v)) in
  let quiet = Float.nan in
  let negpayload = Int64.float_of_bits 0xFFF8000000000001L in
  Alcotest.(check string) "payloads collapse" (hex quiet) (hex (0.0 /. 0.0));
  Alcotest.(check string) "sign collapses" (hex quiet) (hex negpayload);
  Alcotest.(check bool) "nan <> 1.0 digest" false (hex quiet = hex 1.0);
  Alcotest.(check bool) "zeros stay distinct" false (hex 0.0 = hex (-0.0))

(* ------------------------------------------------------------------ *)
(* Scalar-context guards (the satellite bugfix)                        *)
(* ------------------------------------------------------------------ *)

let mk_prog ?(arrays = []) body live_out =
  {
    Prog.name = "t";
    arrays;
    scalars = [ ("s", 0.0); ("u", 0.0) ];
    body;
    live_out;
  }

let rank1_a =
  {
    Prog.name = "A";
    bounds = Region.of_bounds [ (0, 9) ];
    kind = Prog.User;
  }

let expect_runtime_error name p =
  match Exec.Refinterp.run p with
  | _ -> Alcotest.failf "%s: expected Runtime_error" name
  | exception Exec.Refinterp.Runtime_error _ -> ()
  | exception e ->
      Alcotest.failf "%s: expected Runtime_error, got %s" name
        (Printexc.to_string e)

let test_refinterp_scalar_context () =
  (* ill-formed on purpose: bypasses validate to check the engine
     guard raises Runtime_error, not a raw Invalid_argument *)
  expect_runtime_error "idx in scalar context"
    (mk_prog [ Prog.Sassign ("s", Expr.Idx 1) ] [ "s" ]);
  expect_runtime_error "ref in scalar context"
    (mk_prog ~arrays:[ rank1_a ]
       [ Prog.Sassign ("s", Expr.Ref ("A", Support.Vec.of_list [ 0 ])) ]
       [ "s" ])

let reject name p =
  match Prog.validate p with
  | Ok () -> Alcotest.failf "%s: expected validate to reject" name
  | Error _ -> ()

let test_validate_rejects () =
  reject "scalar assignment reads idx"
    (mk_prog [ Prog.Sassign ("s", Expr.Idx 1) ] [ "s" ]);
  reject "scalar assignment reads array"
    (mk_prog ~arrays:[ rank1_a ]
       [ Prog.Sassign ("s", Expr.Ref ("A", Support.Vec.of_list [ 0 ])) ]
       [ "s" ]);
  (* the self-accumulating reduction the fuzzer found: executors
     disagree on what the self-read sees, so it is ill-formed *)
  reject "reduction reads its own target"
    (mk_prog
       [
         Prog.Reduce
           {
             target = "u";
             op = Prog.Rprod;
             region = Region.of_bounds [ (1, 8) ];
             arg = Expr.Svar "u";
           };
       ]
       [ "u" ]);
  reject "reduction arg of mismatched rank"
    (mk_prog
       [
         Prog.Reduce
           {
             target = "s";
             op = Prog.Rsum;
             region = Region.of_bounds [ (1, 8) ];
             arg = Expr.Idx 2;
           };
       ]
       [ "s" ])

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_gen_validates () =
  for seed = 1 to 25 do
    let rng = Support.Prng.create (Int64.of_int seed) in
    let p = Fuzz.Gen.generate rng in
    match Prog.validate p with
    | Ok () -> ()
    | Error m -> Alcotest.failf "seed %d: invalid program: %s" seed m
  done

let test_gen_deterministic () =
  let text seed =
    let rng = Support.Prng.create seed in
    Fuzz.Repro.to_string (Fuzz.Gen.generate rng)
  in
  Alcotest.(check string) "same seed, same program" (text 42L) (text 42L);
  Alcotest.(check bool)
    "different seeds, different programs" false
    (text 1L = text 2L)

(* ------------------------------------------------------------------ *)
(* Repro round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let prop_repro_roundtrip =
  QCheck.Test.make ~name:"repro text round-trips" ~count:100
    QCheck.(int_bound 100_000)
    (fun seed ->
      let rng = Support.Prng.create (Int64.of_int (seed + 1)) in
      let p = Fuzz.Gen.generate rng in
      let text = Fuzz.Repro.to_string ~comment:"roundtrip" p in
      match Fuzz.Repro.of_string text with
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s@.%s" m text
      | Ok p' -> String.equal text (Fuzz.Repro.to_string ~comment:"roundtrip" p'))

let test_repro_special_floats () =
  let p =
    mk_prog ~arrays:[ rank1_a ]
      [
        Prog.Astmt
          (Nstmt.make
             ~region:(Region.of_bounds [ (1, 8) ])
             ~lhs:"A"
             ~lhs_off:(Support.Vec.zero 1)
             (Expr.Binop
                ( Expr.Add,
                  Expr.Const Float.nan,
                  Expr.Binop
                    (Expr.Mul, Expr.Const infinity, Expr.Const 0x1.123456789abcdp-3)
                )));
      ]
      [ "A" ]
  in
  let text = Fuzz.Repro.to_string p in
  match Fuzz.Repro.of_string text with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok p' ->
      Alcotest.(check string) "nan/inf/hex floats survive" text
        (Fuzz.Repro.to_string p')

(* ------------------------------------------------------------------ *)
(* Differential property over the generator                            *)
(* ------------------------------------------------------------------ *)

let prop_levels_match_reference =
  QCheck.Test.make ~name:"refinterp == interp at every level (fuzz gen)"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Support.Prng.create (Int64.of_int (seed + 1)) in
      let p = Fuzz.Gen.generate rng in
      let want = Exec.Refinterp.checksum (Exec.Refinterp.run p) in
      List.for_all
        (fun level ->
          let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) p in
          let got = Exec.Interp.checksum (Exec.Interp.run c.Compilers.Driver.code) in
          if String.equal want got then true
          else
            QCheck.Test.fail_reportf "level %s: want %s got %s@.%s"
              (Compilers.Driver.level_name level)
              want got (Fuzz.Repro.to_string p))
        (Compilers.Driver.all_levels @ [ Compilers.Driver.C2P ]))

(* ------------------------------------------------------------------ *)
(* Parallel campaigns (Fuzz.Campaign over Support.Pool)                *)
(* ------------------------------------------------------------------ *)

(* a cheap oracle slice: determinism is about scheduling, not backend
   coverage, so skip the planner, SPMD tail and cc round-trips *)
let campaign_cfg =
  {
    Fuzz.Oracle.default with
    Fuzz.Oracle.levels = Compilers.Driver.[ Baseline; C2F3 ];
    planner = false;
    native = false;
    spmd_procs = [ 4 ];
  }

let campaign_digest cases =
  String.concat "\n"
    (List.map
       (fun (c : Fuzz.Campaign.case) ->
         Printf.sprintf "%d\n%s%s" c.Fuzz.Campaign.index
           (Fuzz.Repro.to_string c.Fuzz.Campaign.program)
           (Fuzz.Oracle.to_string c.Fuzz.Campaign.report))
       cases)

let test_campaign_parallel_deterministic () =
  let run jobs = Fuzz.Campaign.run ~cfg:campaign_cfg ~jobs ~n:12 ~seed:3L () in
  let seq = run 1 in
  Alcotest.(check (list int))
    "cases come back in order"
    (List.init 12 (fun i -> i + 1))
    (List.map (fun (c : Fuzz.Campaign.case) -> c.Fuzz.Campaign.index) seq);
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "%d domains == sequential" jobs)
        (campaign_digest seq)
        (campaign_digest (run jobs)))
    [ 2; 8 ]

(* with a recorder installed, per-case counters merge back in case
   order — the totals cannot depend on which domain ran which case *)
let test_campaign_merges_obs () =
  let counters jobs =
    let t = Obs.create () in
    Obs.run t (fun () ->
        ignore
          (Fuzz.Campaign.run ~cfg:campaign_cfg ~jobs ~n:6 ~seed:4L ()
            : Fuzz.Campaign.case list));
    (Obs.report t).Obs.counters
  in
  let seq = counters 1 in
  Alcotest.(check bool)
    "campaign emits counters" true
    (List.exists (fun (_, v) -> v > 0) seq);
  Alcotest.(check bool) "counters identical at 4 domains" true
    (seq = counters 4)

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".zir")
  |> List.sort compare
  |> List.map (Filename.concat "corpus")

let test_corpus_replays () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus is not empty" true (files <> []);
  List.iter
    (fun path ->
      match Fuzz.Repro.load path with
      | Error m -> Alcotest.failf "%s: parse failed: %s" path m
      | Ok p -> (
          (match Prog.validate p with
          | Ok () -> ()
          | Error m -> Alcotest.failf "%s: invalid: %s" path m);
          let r = Fuzz.Oracle.run p in
          if not (Fuzz.Oracle.ok r) then
            Alcotest.failf "%s: diverged:@.%s" path (Fuzz.Oracle.to_string r);
          (* both planners must actually have been exercised — the
             corpus (reduce-same-target.zir in particular) is the
             regression net for the plan backends *)
          List.iter
            (fun backend ->
              if not (List.mem_assoc backend r.Fuzz.Oracle.results) then
                Alcotest.failf "%s: oracle skipped %s" path backend)
            [ "plan@search"; "plan@ilp" ]))
    files

(* ------------------------------------------------------------------ *)
(* Shrinker                                                            *)
(* ------------------------------------------------------------------ *)

let has_pow p =
  let rec expr e =
    Expr.fold
      (fun acc e -> acc || match e with Expr.Binop (Expr.Pow, _, _) -> true | _ -> false)
      false e
  and stmt = function
    | Prog.Astmt n -> expr n.Nstmt.rhs
    | Prog.Reduce { arg; _ } -> expr arg
    | Prog.Sassign (_, e) -> expr e
    | Prog.Sloop { body; _ } -> List.exists stmt body
  in
  List.exists stmt p.Prog.body

let test_shrink_preserves_property () =
  let rng = Support.Prng.create 9L in
  (* draw generated programs until one contains Pow, then shrink while
     preserving "contains Pow" (standing in for "still diverges") *)
  let rec find tries =
    if tries = 0 then Alcotest.fail "no Pow program in 50 draws"
    else
      let p = Fuzz.Gen.generate rng in
      if has_pow p then p else find (tries - 1)
  in
  let p = find 50 in
  let small = Fuzz.Shrink.run ~check:has_pow p in
  Alcotest.(check bool) "property preserved" true (has_pow small);
  (match Prog.validate small with
  | Ok () -> ()
  | Error m -> Alcotest.failf "shrunk program invalid: %s" m);
  let size q = String.length (Fuzz.Repro.to_string q) in
  Alcotest.(check bool) "no growth" true (size small <= size p)

let test_shrink_fixed_point () =
  (* a minimal single-statement program with the property cannot lose
     it, whatever the shrinker does *)
  let p =
    mk_prog ~arrays:[ rank1_a ]
      [
        Prog.Astmt
          (Nstmt.make
             ~region:(Region.of_bounds [ (1, 1) ])
             ~lhs:"A"
             ~lhs_off:(Support.Vec.zero 1)
             (Expr.Binop (Expr.Pow, Expr.Const 2.0, Expr.Const 3.0)));
      ]
      [ "A" ]
  in
  let small = Fuzz.Shrink.run ~check:has_pow p in
  Alcotest.(check bool) "still has pow" true (has_pow small)

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "fuzz-nan",
      [
        Alcotest.test_case "min/max propagate NaN" `Quick test_minmax_nan;
        Alcotest.test_case "min/max tie on signed zero" `Quick
          test_minmax_signed_zero;
        Alcotest.test_case "digest canonicalizes NaN" `Quick
          test_digest_nan_canonical;
      ] );
    ( "fuzz-guards",
      [
        Alcotest.test_case "refinterp scalar-context errors" `Quick
          test_refinterp_scalar_context;
        Alcotest.test_case "validate rejects ill-formed" `Quick
          test_validate_rejects;
      ] );
    ( "fuzz-gen",
      [
        Alcotest.test_case "generated programs validate" `Quick
          test_gen_validates;
        Alcotest.test_case "generation is deterministic" `Quick
          test_gen_deterministic;
        QCheck_alcotest.to_alcotest prop_repro_roundtrip;
        Alcotest.test_case "special floats round-trip" `Quick
          test_repro_special_floats;
      ] );
    ( "fuzz-oracle",
      [
        QCheck_alcotest.to_alcotest prop_levels_match_reference;
        Alcotest.test_case "corpus replays green" `Slow test_corpus_replays;
      ] );
    ( "fuzz-campaign",
      [
        Alcotest.test_case "parallel campaign is deterministic" `Quick
          test_campaign_parallel_deterministic;
        Alcotest.test_case "obs counters merge deterministically" `Quick
          test_campaign_merges_obs;
      ] );
    ( "fuzz-shrink",
      [
        Alcotest.test_case "shrink preserves the property" `Quick
          test_shrink_preserves_property;
        Alcotest.test_case "shrink fixed point" `Quick test_shrink_fixed_point;
      ] );
  ]
