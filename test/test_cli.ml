(* Smoke tests for the zapc command-line driver (built binary). *)

let zapc = "../bin/zapc.exe"

let available = Sys.file_exists zapc

let run args =
  let out = Filename.temp_file "zapc" ".out" in
  let cmd =
    Printf.sprintf "%s %s > %s 2>&1" (Filename.quote zapc) args
      (Filename.quote out)
  in
  let code = Sys.command cmd in
  let ic = open_in out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains text sub = Astring.String.is_infix ~affix:sub text

let test_bench_compile () =
  if available then begin
    let code, out = run "--bench tomcatv -O c2 --tile 12" in
    Alcotest.(check int) "exit 0" 0 code;
    Alcotest.(check bool) "reports contraction" true
      (contains out "allocations remain")
  end

let test_dump_plan () =
  if available then begin
    let code, out = run "--bench ep --tile 64 -O c2 --dump-plan" in
    Alcotest.(check int) "exit 0" 0 code;
    Alcotest.(check bool) "shows fused reductions" true
      (contains out "reduction");
    Alcotest.(check bool) "shows contraction" true (contains out "contract")
  end

let test_run_flag () =
  if available then begin
    let code, out = run "--bench frac --tile 16 -O c2+f3 --run -m paragon -p 4" in
    Alcotest.(check int) "exit 0" 0 code;
    Alcotest.(check bool) "reports time" true (contains out "Intel Paragon");
    Alcotest.(check bool) "reports checksum" true (contains out "checksum")
  end

let test_file_input () =
  if available then begin
    let src = Filename.temp_file "prog" ".zap" in
    let oc = open_out src in
    output_string oc
      {|program tiny;
config n := 8;
region R = [1..n];
var A, B : [0..n+1];
export B;
begin
  [R] A := index1 * 2.0;
  [R] B := A + A@[-1];
end.
|};
    close_out oc;
    let code, out = run (Filename.quote src ^ " -O c2 --dump-c") in
    Sys.remove src;
    Alcotest.(check int) "exit 0" 0 code;
    Alcotest.(check bool) "emits C" true (contains out "#include <math.h>")
  end

(* Golden test for the machine-readable compile report: valid JSON on
   stdout, stable schema, fusion/contraction counters and the pass-span
   tree present. *)
let test_stats_json () =
  if available then begin
    let code, out = run "--bench ep --tile 32 -O c2 --stats json:-" in
    Alcotest.(check int) "exit 0" 0 code;
    let j =
      match Obs.Json.of_string (String.trim out) with
      | Ok j -> j
      | Error e -> Alcotest.failf "stats not valid JSON (%s): %s" e out
    in
    Alcotest.(check bool)
      "schema" true
      (Obs.Json.member "schema" j
      = Some (Obs.Json.String "zapc/compile-report/1"));
    List.iter
      (fun key ->
        match Obs.Json.find j [ "counters"; key ] with
        | Some (Obs.Json.Int _) -> ()
        | _ -> Alcotest.failf "missing counter %s" key)
      [
        "fusion.attempted";
        "fusion.accepted";
        "fusion.rejected.nonnull-flow";
        "contraction.candidates";
        "contraction.performed";
        "dep.edges";
      ];
    (* every compiled pass appears in the span tree with a timing *)
    let rec span_names acc = function
      | Obs.Json.Obj _ as s ->
          let name =
            match Obs.Json.member "name" s with
            | Some (Obs.Json.String n) -> n
            | _ -> Alcotest.fail "span without name"
          in
          (match Obs.Json.member "ns" s with
          | Some (Obs.Json.Float _ | Obs.Json.Int _) -> ()
          | _ -> Alcotest.failf "span %s without ns timing" name);
          let kids =
            match Obs.Json.member "children" s with
            | Some (Obs.Json.List l) -> l
            | _ -> []
          in
          List.fold_left span_names (name :: acc) kids
      | _ -> Alcotest.fail "span is not an object"
    in
    let names =
      match Obs.Json.member "spans" j with
      | Some (Obs.Json.List spans) -> List.fold_left span_names [] spans
      | _ -> Alcotest.fail "no spans"
    in
    List.iter
      (fun n ->
        Alcotest.(check bool) (n ^ " span") true (List.mem n names))
      [ "parse"; "elaborate"; "compile"; "check"; "plan"; "fusion";
        "contraction"; "scalarize" ];
    (* the contraction decisions are listed with their shapes *)
    match Obs.Json.member "contracted" j with
    | Some (Obs.Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "no contracted arrays listed"
  end

(* The internal spelling of the paper levels must be accepted too. *)
let test_level_spellings () =
  if available then
    List.iter
      (fun l ->
        let code, _ = run (Printf.sprintf "--bench ep --tile 16 -O %s" l) in
        Alcotest.(check int) (l ^ " accepted") 0 code)
      [ "c2+f3"; "c2f3"; "C2+F4"; "c2p" ]

(* Golden: the exact level ladder, paper spelling then internal, one
   level per line. *)
let test_list_levels () =
  if available then begin
    let code, out = run "--list-levels" in
    Alcotest.(check int) "exit 0" 0 code;
    Alcotest.(check string) "ladder"
      "baseline baseline\n\
       f1 f1\n\
       c1 c1\n\
       f2 f2\n\
       f3 f3\n\
       c2 c2\n\
       c2+f3 c2f3\n\
       c2+f4 c2f4\n\
       c2+p c2p\n"
      out
  end

(* --plan search: provenance lands in the stats JSON, the searched
   cost never exceeds greedy's, and two runs emit identical plan
   provenance (determinism satellite; span timings legitimately
   differ, the plan must not). *)
let test_plan_search_stats () =
  if available then begin
    let args = "--bench frac --tile 16 --plan search -m t3e -p 4 --stats json:-" in
    let code, out = run args in
    Alcotest.(check int) "exit 0" 0 code;
    let j =
      match Obs.Json.of_string (String.trim out) with
      | Ok j -> j
      | Error e -> Alcotest.failf "stats not valid JSON (%s): %s" e out
    in
    let plan =
      match Obs.Json.member "plan" j with
      | Some p -> p
      | None -> Alcotest.fail "no plan provenance in stats"
    in
    (match Obs.Json.member "strategy" plan with
    | Some (Obs.Json.String ("search" | "greedy")) -> ()
    | _ -> Alcotest.fail "plan.strategy missing");
    (match
       (Obs.Json.member "greedy_total_ns" plan,
        Obs.Json.member "search_total_ns" plan)
     with
    | Some (Obs.Json.Float g), Some (Obs.Json.Float s) ->
        Alcotest.(check bool) "search <= greedy" true (s <= g +. 1e-6)
    | _ -> Alcotest.fail "plan totals missing");
    (match Obs.Json.member "blocks" plan with
    | Some (Obs.Json.List (_ :: _)) -> ()
    | _ -> Alcotest.fail "plan.blocks missing");
    let _, out2 = run args in
    let plan_str j =
      match Obs.Json.of_string (String.trim j) with
      | Ok j -> (
          match Obs.Json.member "plan" j with
          | Some p -> Obs.Json.to_string p
          | None -> "")
      | Error _ -> ""
    in
    Alcotest.(check string) "identical provenance across runs"
      (plan_str out) (plan_str out2)
  end

let test_bad_plan_fails () =
  if available then begin
    let code, _ = run "--bench ep --tile 16 --plan fastest" in
    Alcotest.(check bool) "bad plan rejected" true (code <> 0)
  end

let test_fuzz_flag () =
  if available then begin
    let out_dir = Filename.temp_file "fuzzout" "" in
    Sys.remove out_dir;
    let code, out =
      run (Printf.sprintf "--fuzz 3 --seed 5 --fuzz-out %s" (Filename.quote out_dir))
    in
    Alcotest.(check int) "exit 0" 0 code;
    Alcotest.(check bool) "reports campaign" true
      (contains out "fuzz: 3 cases, seed 5");
    Alcotest.(check bool) "no divergences" true (contains out "0 divergences");
    (* deterministic: a second run prints the identical summary *)
    let _, out2 =
      run (Printf.sprintf "--fuzz 3 --seed 5 --fuzz-out %s" (Filename.quote out_dir))
    in
    Alcotest.(check string) "same seed, same campaign" out out2;
    if Sys.file_exists out_dir then begin
      Array.iter
        (fun f -> Sys.remove (Filename.concat out_dir f))
        (Sys.readdir out_dir);
      Sys.rmdir out_dir
    end
  end

let test_bad_input_fails () =
  if available then begin
    let code, _ = run "--bench nosuch" in
    Alcotest.(check bool) "nonzero exit" true (code <> 0);
    let code, _ = run "--bench ep -O warp9" in
    Alcotest.(check bool) "bad level rejected" true (code <> 0)
  end

let suites =
  [
    ( "cli",
      [
        Alcotest.test_case "compile benchmark" `Quick test_bench_compile;
        Alcotest.test_case "dump plan" `Quick test_dump_plan;
        Alcotest.test_case "run with machine model" `Quick test_run_flag;
        Alcotest.test_case "file input + dump-c" `Quick test_file_input;
        Alcotest.test_case "stats json report" `Quick test_stats_json;
        Alcotest.test_case "level spellings" `Quick test_level_spellings;
        Alcotest.test_case "list levels golden" `Quick test_list_levels;
        Alcotest.test_case "plan search stats + determinism" `Slow
          test_plan_search_stats;
        Alcotest.test_case "fuzz campaign smoke" `Slow test_fuzz_flag;
        Alcotest.test_case "bad plan rejected" `Quick test_bad_plan_fails;
        Alcotest.test_case "bad input" `Quick test_bad_input_fails;
      ] );
  ]
