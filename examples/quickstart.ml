(* Quickstart: compile a small array program at every optimization
   level and watch temporaries disappear.

     dune exec examples/quickstart.exe                              *)

let source =
  {|
program quickstart;
config n := 64;
region R = [1..n, 1..n];
var A, B, Blur, Sharp : [0..n+1, 0..n+1];
scalar total := 0.0;
export B, total;
begin
  -- an input image
  [R] A := sin(0.2 * index1) * cos(0.3 * index2);

  -- a small pipeline with two user temporaries:
  -- Blur is consumed at offset 0 and will contract; Sharp likewise
  [R] Blur := 0.25 * (A@[0,-1] + A@[0,1] + A@[-1,0] + A@[1,0]);
  [R] Sharp := 2.0 * A - Blur;
  [R] B := max(0.0, min(1.0, Sharp));

  total := +<< R B;
end.
|}

let () =
  (* parse + elaborate: the frontend inserts compiler temporaries and
     produces the normalized array IR *)
  let prog = Zap.Elaborate.compile_string source in
  Format.printf "=== array-level IR ===@.%a@.@." Ir.Prog.pp prog;

  (* the reference semantics all compiled configurations must match *)
  let reference = Exec.Refinterp.run prog in
  let want = Exec.Refinterp.checksum reference in

  Format.printf "=== optimization levels ===@.";
  List.iter
    (fun level ->
      let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
      let r = Exec.Interp.run c.Compilers.Driver.code in
      let cnt = Exec.Interp.counters r in
      assert (Exec.Interp.checksum r = want);
      Format.printf
        "%-8s : %d arrays allocated, %7d bytes, %8d memory refs, ok@."
        (Compilers.Driver.level_name level)
        (Compilers.Driver.remaining_arrays c)
        (Exec.Interp.footprint_bytes c.Compilers.Driver.code)
        (cnt.Exec.Interp.loads + cnt.Exec.Interp.stores))
    Compilers.Driver.all_levels;

  (* what exactly was contracted at c2? *)
  let c2 = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in
  Format.printf "@.c2 contracted: %s@."
    (String.concat ", " (List.map fst c2.Compilers.Driver.contracted));

  (* and the generated scalar code, as C, for inspection *)
  Format.printf "@.=== generated code (c2) ===@.%a@." Sir.Code.pp_c
    c2.Compilers.Driver.code
