(* Building array programs directly against the IR API (no frontend),
   and measuring the cache effect of contraction on the paper's
   machines.

     dune exec examples/heat_diffusion.exe                          *)

open Ir
module Vec = Support.Vec

let v = Vec.of_list
let n = 64
let interior = Region.of_bounds [ (1, n); (1, n) ]
let padded = Region.of_bounds [ (0, n + 1); (0, n + 1) ]

(* [R] Flux := k * (T@n + T@s + T@e + T@w - 4T) ; [R] Heat := Flux * Flux ;
   [R] T := T + dt * Flux  -- the last statement self-references, so the
   frontend-equivalent normalization splits it through a temporary. *)
let prog =
  let user name = { Prog.name; bounds = padded; kind = Prog.User } in
  let temp name = { Prog.name; bounds = padded; kind = Prog.Compiler } in
  let stencil =
    Expr.(
      Binop
        ( Sub,
          Binop
            ( Add,
              Binop (Add, Ref ("T", v [ -1; 0 ]), Ref ("T", v [ 1; 0 ])),
              Binop (Add, Ref ("T", v [ 0; -1 ]), Ref ("T", v [ 0; 1 ])) ),
          Binop (Mul, Const 4.0, Ref ("T", v [ 0; 0 ])) ))
  in
  {
    Prog.name = "heat";
    arrays = [ user "T"; user "Flux"; user "Heat"; temp "__t1" ];
    scalars = [ ("k", 0.2); ("dt", 0.3); ("dissipated", 0.0) ];
    body =
      [
        Prog.Astmt
          (Nstmt.make ~region:padded ~lhs:"T"
             Expr.(Binop (Add, Idx 1, Binop (Mul, Idx 2, Const 0.01))));
        Prog.Sloop
          {
            var = "step";
            lo = 1;
            hi = 5;
            body =
              [
                Prog.Astmt
                  (Nstmt.make ~region:interior ~lhs:"Flux"
                     Expr.(Binop (Mul, Svar "k", stencil)));
                Prog.Astmt
                  (Nstmt.make ~region:interior ~lhs:"Heat"
                     Expr.(
                       Binop
                         (Mul, Ref ("Flux", v [ 0; 0 ]), Ref ("Flux", v [ 0; 0 ]))));
                (* normalized self-update of T through __t1 *)
                Prog.Astmt
                  (Nstmt.make ~region:interior ~lhs:"__t1"
                     Expr.(
                       Binop
                         ( Add,
                           Ref ("T", v [ 0; 0 ]),
                           Binop (Mul, Svar "dt", Ref ("Flux", v [ 0; 0 ])) )));
                Prog.Astmt
                  (Nstmt.make ~region:interior ~lhs:"T"
                     Expr.(Ref ("__t1", v [ 0; 0 ])));
              ];
          };
        Prog.Reduce
          {
            target = "dissipated";
            op = Prog.Rsum;
            region = interior;
            arg = Expr.(Ref ("Heat", v [ 0; 0 ]));
          };
      ];
    live_out = [ "T"; "dissipated" ];
  }

let () =
  (match Prog.validate prog with
  | Ok () -> ()
  | Error e -> failwith e);

  (* the dependence structure the optimizer sees *)
  let block = List.nth (Prog.blocks prog) 1 in
  let g = Core.Asdg.build block in
  Format.printf "=== ASDG of the time-step block ===@.%a@." Core.Asdg.pp g;

  (* measure baseline vs c2 on each machine model *)
  Format.printf "@.=== modeled execution (1 processor) ===@.";
  List.iter
    (fun (m : Machine.t) ->
      let time level =
        let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
        let r =
          Comm.Perf.measure
            { Comm.Perf.machine = m; procs = 1; comm = Comm.Model.all_on }
            c
        in
        (r.Comm.Perf.time_ns, r.Comm.Perf.l1, r.Comm.Perf.checksum)
      in
      let tb, l1b, sb = time Compilers.Driver.Baseline in
      let tc, l1c, sc = time Compilers.Driver.C2 in
      assert (sb = sc);
      Format.printf
        "%-13s baseline %8.0f us (L1 miss %5.2f%%)   c2 %8.0f us (L1 miss \
         %5.2f%%)   %+.1f%%@."
        m.Machine.name (tb /. 1e3)
        (100.0 *. Cachesim.Cache.miss_rate l1b)
        (tc /. 1e3)
        (100.0 *. Cachesim.Cache.miss_rate l1c)
        (100.0 *. (tb -. tc) /. tc))
    Machine.all
