(* A guided tour of what the optimizer does to Tomcatv — including the
   paper's Figure 1 story: the tridiagonal multiplier R contracts to a
   scalar once its statement fuses with the D update under a reversed
   row loop.

     dune exec examples/tomcatv_explore.exe                         *)

let () =
  let prog = Suite.load ~tile:32 "tomcatv" in
  let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts Compilers.Driver.C2) prog in

  Format.printf "tomcatv: %d static arrays"
    (List.length prog.Ir.Prog.arrays);
  let nc, nu = Ir.Prog.static_array_counts prog in
  Format.printf " (%d compiler / %d user)@." nc nu;

  (* the fusion partition of the time-step block *)
  (match c.Compilers.Driver.plan with
  | _ :: (step : Sir.Scalarize.block_plan) :: _ ->
      Format.printf "@.=== time-step block: fusion partition ===@.%a@."
        Core.Partition.pp step.Sir.Scalarize.partition;
      (* find the solver cluster: the one whose loop structure reverses
         dimension 1 (the Figure 1 recurrence) *)
      let p = step.Sir.Scalarize.partition in
      List.iter
        (fun cluster ->
          let rep = List.hd cluster in
          match Core.Partition.loop_structure p rep with
          | Some ls when Support.Vec.get ls 1 < 0 ->
              Format.printf
                "cluster P%d runs with loop structure %a: dimension %d is \
                 reversed to carry the anti dependence on D — this is the \
                 fusion that lets R_ become the scalar of the paper's \
                 Figure 1.@."
                rep Core.Loopstruct.pp ls
                (abs (Support.Vec.get ls 1))
          | _ -> ())
        (Core.Partition.clusters p)
  | _ -> ());

  Format.printf "@.=== contractions ===@.";
  List.iter
    (fun (x, _) -> Format.printf "  %s eliminated@." x)
    c.Compilers.Driver.contracted;
  Format.printf "arrays remaining: %d@."
    (Compilers.Driver.remaining_arrays c);

  (* level ladder on all three machines, 16 processors *)
  Format.printf "@.=== %% improvement over baseline (16 procs) ===@.";
  Format.printf "%13s" "";
  List.iter
    (fun l -> Format.printf "%9s" (Compilers.Driver.level_name l))
    Compilers.Driver.[ F1; C1; F2; F3; C2; C2F3; C2F4 ];
  Format.printf "@.";
  List.iter
    (fun (m : Machine.t) ->
      let time level =
        let c = Compilers.Driver.compile_exn_opts (Compilers.Driver.opts level) prog in
        (Comm.Perf.measure
           { Comm.Perf.machine = m; procs = 16; comm = Comm.Model.all_on }
           c)
          .Comm.Perf.time_ns
      in
      let tb = time Compilers.Driver.Baseline in
      Format.printf "%-13s" m.Machine.name;
      List.iter
        (fun level ->
          Format.printf "%8.1f%%" (100.0 *. (tb -. time level) /. time level))
        Compilers.Driver.[ F1; C1; F2; F3; C2; C2F3; C2F4 ];
      Format.printf "@.")
    Machine.all
