(* Commercial-compiler emulations beyond the Figure 6 fragments. *)

open Ir
module Vec = Support.Vec

let v = Vec.of_list
let interior = Region.of_bounds [ (1, 6); (1, 6) ]
let padded = Region.of_bounds [ (0, 7); (0, 7) ]

let prog_of ?(temps = []) ?(live = [ "A" ]) stmts =
  {
    Prog.name = "v";
    arrays =
      List.map (fun name -> { Prog.name; bounds = padded; kind = Prog.User })
        [ "A"; "B"; "C"; "T1"; "T2" ]
      @ List.map
          (fun name -> { Prog.name; bounds = padded; kind = Prog.Compiler })
          temps;
    scalars = [];
    body = List.map (fun s -> Prog.Astmt s) stmts;
    live_out = live;
  }

let stmt ?(r = interior) lhs rhs = Nstmt.make ~region:r ~lhs rhs

let test_caps_metadata () =
  Alcotest.(check int) "five vendors" 5 (List.length Compilers.Vendors.all);
  Alcotest.(check bool) "zpl integrated" true
    Compilers.Vendors.zpl.Compilers.Vendors.integrated;
  Alcotest.(check bool) "cray separate" false
    Compilers.Vendors.cray.Compilers.Vendors.integrated;
  Alcotest.(check bool) "pgi no locality fusion" false
    Compilers.Vendors.pgi.Compilers.Vendors.fuse_locality

let test_pgi_never_fuses_independent () =
  let stmts =
    [
      stmt "B" Expr.(Binop (Add, Ref ("A", v [ 0; 0 ]), Ref ("A", v [ 0; 0 ])));
      stmt "C" Expr.(Binop (Mul, Ref ("A", v [ 0; 0 ]), Ref ("A", v [ 0; 0 ])));
    ]
  in
  let prog = prog_of ~live:[ "A"; "B"; "C" ] stmts in
  let r = Compilers.Vendors.optimize_block Compilers.Vendors.pgi prog stmts in
  Alcotest.(check int) "two nests" 2 (Compilers.Vendors.n_nests r);
  let z = Compilers.Vendors.optimize_block Compilers.Vendors.zpl prog stmts in
  Alcotest.(check int) "zpl fuses" 1 (Compilers.Vendors.n_nests z)

let test_anti_veto_unit () =
  (* direct check of the no-anti fusion limitation on a loop-carried
     anti dependence *)
  let stmts =
    [
      stmt "B" Expr.(Binop (Add, Ref ("A", v [ 0; 0 ]), Ref ("C", v [ -1; 0 ])));
      stmt "C" Expr.(Binop (Mul, Ref ("A", v [ 0; 0 ]), Ref ("A", v [ 0; 0 ])));
    ]
  in
  let prog = prog_of ~live:[ "A"; "B"; "C" ] stmts in
  let apr = Compilers.Vendors.optimize_block Compilers.Vendors.apr prog stmts in
  Alcotest.(check int) "apr cannot fuse" 2 (Compilers.Vendors.n_nests apr);
  let zpl = Compilers.Vendors.optimize_block Compilers.Vendors.zpl prog stmts in
  Alcotest.(check int) "zpl reverses and fuses" 1 (Compilers.Vendors.n_nests zpl);
  (* an offset-0 anti dependence is a null UDV: not loop-carried, so
     even the limited compilers may fuse *)
  let stmts0 =
    [
      stmt "B" Expr.(Binop (Add, Ref ("A", v [ 0; 0 ]), Ref ("C", v [ 0; 0 ])));
      stmt "C" Expr.(Binop (Mul, Ref ("A", v [ 0; 0 ]), Ref ("A", v [ 0; 0 ])));
    ]
  in
  let prog0 = prog_of ~live:[ "A"; "B"; "C" ] stmts0 in
  let apr0 = Compilers.Vendors.optimize_block Compilers.Vendors.apr prog0 stmts0 in
  Alcotest.(check int) "null anti ok" 1 (Compilers.Vendors.n_nests apr0)

let test_cray_separate_vs_zpl_integrated () =
  (* the fragment-(8) mechanism in isolation: contracting the compiler
     temporary first blocks the two user temporaries *)
  let stmts =
    [
      stmt "T1" Expr.(Binop (Add, Ref ("A", v [ -1; 0 ]), Ref ("B", v [ 0; 0 ])));
      stmt "T2" Expr.(Binop (Mul, Ref ("A", v [ -1; 0 ]), Ref ("B", v [ 0; 0 ])));
      stmt "__x"
        Expr.(
          Binop
            ( Add,
              Ref ("A", v [ 1; 0 ]),
              Binop
                ( Add,
                  Binop (Mul, Ref ("T1", v [ 0; 0 ]), Ref ("T1", v [ 0; 0 ])),
                  Binop (Mul, Ref ("T2", v [ 0; 0 ]), Ref ("T2", v [ 0; 0 ])) ) ));
      stmt "A" Expr.(Ref ("__x", v [ 0; 0 ]));
    ]
  in
  let prog = prog_of ~temps:[ "__x" ] ~live:[ "A"; "B" ] stmts in
  let cray = Compilers.Vendors.optimize_block Compilers.Vendors.cray prog stmts in
  Alcotest.(check (list string))
    "cray contracts the compiler temp only" [ "__x" ]
    cray.Compilers.Vendors.contracted;
  let zpl = Compilers.Vendors.optimize_block Compilers.Vendors.zpl prog stmts in
  Alcotest.(check (list string))
    "zpl weighs and takes both user temps" [ "T1"; "T2" ]
    zpl.Compilers.Vendors.contracted

let suites =
  [
    ( "vendors",
      [
        Alcotest.test_case "capability metadata" `Quick test_caps_metadata;
        Alcotest.test_case "pgi fuses nothing" `Quick test_pgi_never_fuses_independent;
        Alcotest.test_case "anti-dependence veto" `Quick test_anti_veto_unit;
        Alcotest.test_case "separate vs integrated" `Quick test_cray_separate_vs_zpl_integrated;
      ] );
  ]
