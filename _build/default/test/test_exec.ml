(* Interpreters: counters, traces, bounds enforcement, reductions. *)

open Ir
module Vec = Support.Vec
module Code = Sir.Code

let v = Vec.of_list

(* A tiny hand-built scalar program: B[i] = A[i-1] * 2 over i=1..4. *)
let hand_program () =
  {
    Code.name = "hand";
    allocs =
      [
        { Code.name = "A"; dims = [| (0, 5) |] };
        { Code.name = "B"; dims = [| (0, 5) |] };
      ];
    scalars = [ ("k", 2.0) ];
    body =
      [
        Code.For
          {
            var = "__i1";
            lo = 0;
            hi = 5;
            step = 1;
            body =
              [
                Code.Store
                  ( "A",
                    [| { Code.base = "__i1"; off = 0 } |],
                    Code.Scalar "__i1" );
              ];
          };
        Code.For
          {
            var = "__i1";
            lo = 1;
            hi = 4;
            step = 1;
            body =
              [
                Code.Store
                  ( "B",
                    [| { Code.base = "__i1"; off = 0 } |],
                    Code.Binop
                      ( Expr.Mul,
                        Code.Load ("A", [| { Code.base = "__i1"; off = -1 } |]),
                        Code.Scalar "k" ) );
              ];
          };
      ];
    live_out = [ "B" ];
  }

let test_counters_exact () =
  let r = Exec.Interp.run (hand_program ()) in
  let c = Exec.Interp.counters r in
  Alcotest.(check int) "stores" (6 + 4) c.Exec.Interp.stores;
  Alcotest.(check int) "loads" 4 c.Exec.Interp.loads;
  Alcotest.(check int) "flops" 4 c.Exec.Interp.flops

let test_values () =
  let r = Exec.Interp.run (hand_program ()) in
  Alcotest.(check (float 0.0)) "B[3] = A[2]*2 = 4" 4.0
    (Exec.Interp.read_point r "B" [| 3 |]);
  Alcotest.(check (float 0.0)) "B[0] untouched" 0.0
    (Exec.Interp.read_point r "B" [| 0 |]);
  Alcotest.(check (float 0.0)) "scalar k" 2.0 (Exec.Interp.get_scalar r "k")

let test_trace () =
  let events = ref [] in
  let _ =
    Exec.Interp.run
      ~trace:(fun ~addr ~write -> events := (addr, write) :: !events)
      (hand_program ())
  in
  let events = List.rev !events in
  Alcotest.(check int) "one event per access" 14 (List.length events);
  Alcotest.(check bool)
    "8-byte aligned" true
    (List.for_all (fun (a, _) -> a mod 8 = 0) events);
  (* loads of A and stores of B interleave in the second loop *)
  let writes = List.filter snd events in
  Alcotest.(check int) "writes" 10 (List.length writes);
  (* distinct arrays never share addresses *)
  let addr_of (a, _) = a in
  let a_addrs = List.filteri (fun i _ -> i < 6) events |> List.map addr_of in
  let b_addrs =
    List.filteri (fun i _ -> i >= 6) events
    |> List.filter snd |> List.map addr_of
  in
  Alcotest.(check bool)
    "disjoint address ranges" true
    (List.for_all (fun a -> not (List.mem a b_addrs)) a_addrs)

let test_out_of_bounds () =
  let bad =
    {
      (hand_program ()) with
      Code.body =
        [
          Code.Store ("A", [| { Code.base = ""; off = 9 } |], Code.Const 1.0);
        ];
    }
  in
  Alcotest.(check bool)
    "OOB raises" true
    (try
       ignore (Exec.Interp.run bad);
       false
     with Exec.Interp.Runtime_error _ -> true)

let test_undefined_scalar () =
  let bad =
    { (hand_program ()) with Code.body = [ Code.Sassign ("x", Code.Scalar "nope") ] }
  in
  Alcotest.(check bool)
    "undefined scalar raises" true
    (try
       ignore (Exec.Interp.run bad);
       false
     with Exec.Interp.Runtime_error _ -> true)

let test_descending_loop () =
  (* prefix dependences honored by a descending loop: A[i] = A[i-1]+1
     executed descending leaves old values (no cascade) *)
  let p =
    {
      Code.name = "desc";
      allocs = [ { Code.name = "A"; dims = [| (0, 4) |] } ];
      scalars = [];
      body =
        [
          Code.For
            {
              var = "__i1";
              lo = 1;
              hi = 4;
              step = -1;
              body =
                [
                  Code.Store
                    ( "A",
                      [| { Code.base = "__i1"; off = 0 } |],
                      Code.Binop
                        ( Expr.Add,
                          Code.Load ("A", [| { Code.base = "__i1"; off = -1 } |]),
                          Code.Const 1.0 ) );
                ];
            };
        ];
      live_out = [ "A" ];
    }
  in
  let r = Exec.Interp.run p in
  (* descending: each A[i] reads the ORIGINAL A[i-1] = 0 -> all 1 *)
  Alcotest.(check (array (float 0.0)))
    "no cascade"
    [| 0.0; 1.0; 1.0; 1.0; 1.0 |]
    (Exec.Interp.get_array r "A")

let test_checksum_sensitivity () =
  let p = hand_program () in
  let r1 = Exec.Interp.run p in
  let p2 =
    {
      p with
      Code.scalars = [ ("k", 3.0) ];
    }
  in
  let r2 = Exec.Interp.run p2 in
  Alcotest.(check bool)
    "different results, different checksums" true
    (Exec.Interp.checksum r1 <> Exec.Interp.checksum r2)

let test_footprint () =
  Alcotest.(check int) "bytes" (8 * 12) (Exec.Interp.footprint_bytes (hand_program ()))

(* ------------------------------------------------------------------ *)
(* Reference interpreter                                               *)
(* ------------------------------------------------------------------ *)

let region4 = Region.of_bounds [ (1, 4) ]

let ref_prog body scalars =
  {
    Prog.name = "ref";
    arrays =
      [ { Prog.name = "A"; bounds = Region.of_bounds [ (0, 5) ]; kind = Prog.User } ];
    scalars;
    body;
    live_out = [ "A" ];
  }

let test_reduce_ops () =
  let mk op =
    ref_prog
      [
        Prog.Astmt (Nstmt.make ~region:region4 ~lhs:"A" Expr.(Idx 1));
        Prog.Reduce
          { target = "s"; op; region = region4; arg = Expr.(Ref ("A", v [ 0 ])) };
      ]
      [ ("s", 0.0) ]
  in
  let value op =
    Exec.Refinterp.get_scalar (Exec.Refinterp.run (mk op)) "s"
  in
  Alcotest.(check (float 0.0)) "sum 1..4" 10.0 (value Prog.Rsum);
  Alcotest.(check (float 0.0)) "prod 1..4" 24.0 (value Prog.Rprod);
  Alcotest.(check (float 0.0)) "min" 1.0 (value Prog.Rmin);
  Alcotest.(check (float 0.0)) "max" 4.0 (value Prog.Rmax)

let test_full_rhs_before_store () =
  (* array semantics: [R] A := A@[-1] + 1 must read OLD values of A *)
  let p =
    ref_prog
      [
        Prog.Astmt (Nstmt.make ~region:region4 ~lhs:"A" Expr.(Idx 1));
        (* normalized form: the frontend would insert a temporary; here
           we exercise the reference interpreter directly with the
           temp-free equivalent over two arrays *)
      ]
      []
  in
  let r = Exec.Refinterp.run p in
  Alcotest.(check (float 0.0)) "A[2]" 2.0
    (List.nth (Array.to_list (Exec.Refinterp.get_array r "A")) 2)

let test_sloop_env () =
  (* loop variable visible as a scalar in the body *)
  let p =
    ref_prog
      [
        Prog.Sloop
          {
            var = "t";
            lo = 1;
            hi = 3;
            body =
              [
                Prog.Astmt
                  (Nstmt.make ~region:region4 ~lhs:"A"
                     Expr.(Binop (Add, Svar "t", Const 0.0)));
              ];
          };
      ]
      []
  in
  let r = Exec.Refinterp.run p in
  (* last iteration writes t=3 everywhere in the interior *)
  Alcotest.(check (float 0.0)) "A[1] = 3" 3.0
    (Exec.Refinterp.get_array r "A").(1)

let suites =
  [
    ( "exec.interp",
      [
        Alcotest.test_case "exact counters" `Quick test_counters_exact;
        Alcotest.test_case "values" `Quick test_values;
        Alcotest.test_case "memory trace" `Quick test_trace;
        Alcotest.test_case "bounds enforced" `Quick test_out_of_bounds;
        Alcotest.test_case "undefined scalar" `Quick test_undefined_scalar;
        Alcotest.test_case "descending loop" `Quick test_descending_loop;
        Alcotest.test_case "checksum sensitivity" `Quick test_checksum_sensitivity;
        Alcotest.test_case "footprint" `Quick test_footprint;
      ] );
    ( "exec.refinterp",
      [
        Alcotest.test_case "reduction operators" `Quick test_reduce_ops;
        Alcotest.test_case "elementwise store" `Quick test_full_rhs_before_store;
        Alcotest.test_case "loop variable scope" `Quick test_sloop_env;
      ] );
  ]
