open Support

let vec = Alcotest.testable (Fmt.of_to_string Vec.to_string) Vec.equal

let test_vec_ops () =
  let a = Vec.of_list [ 1; -2; 3 ] and b = Vec.of_list [ 0; 1; 1 ] in
  Alcotest.check vec "add" (Vec.of_list [ 1; -1; 4 ]) (Vec.add a b);
  Alcotest.check vec "sub" (Vec.of_list [ 1; -3; 2 ]) (Vec.sub a b);
  Alcotest.check vec "neg" (Vec.of_list [ -1; 2; -3 ]) (Vec.neg a);
  Alcotest.(check bool) "null zero" true (Vec.is_null (Vec.zero 4));
  Alcotest.(check bool) "null nonzero" false (Vec.is_null a);
  Alcotest.(check int) "get is 1-indexed" (-2) (Vec.get a 2)

let test_vec_rank_mismatch () =
  Alcotest.check_raises "add mismatched ranks"
    (Invalid_argument "Vec.add: rank mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add (Vec.zero 2) (Vec.zero 3)))

let test_lex () =
  let check s expect v =
    Alcotest.(check bool) s expect (Vec.lex_nonneg (Vec.of_list v))
  in
  check "null is nonneg" true [ 0; 0 ];
  check "(0,1)" true [ 0; 1 ];
  check "(1,-5)" true [ 1; -5 ];
  check "(-1,9)" false [ -1; 9 ];
  check "(0,-1)" false [ 0; -1 ];
  Alcotest.(check bool) "lex_pos null" false (Vec.lex_pos (Vec.zero 3));
  Alcotest.(check bool) "lex_pos (0,2)" true (Vec.lex_pos (Vec.of_list [ 0; 2 ]))

let prop_lex_trichotomy =
  QCheck.Test.make ~name:"lex: v nonneg or -v nonneg (or both iff null)"
    ~count:500
    QCheck.(list_of_size Gen.(int_range 1 5) (int_range (-4) 4))
    (fun l ->
      let v = Vec.of_list l in
      let n = Vec.lex_nonneg v and m = Vec.lex_nonneg (Vec.neg v) in
      (n || m) && (n && m) = Vec.is_null v)

let test_topo_line () =
  let order =
    Toposort.sort_exn ~n:4 ~edges:[ (2, 1); (1, 0); (3, 2) ]
  in
  Alcotest.(check (list int)) "line order" [ 3; 2; 1; 0 ] order

let test_topo_stable () =
  (* no constraints: source order preserved *)
  let order = Toposort.sort_exn ~n:4 ~edges:[] in
  Alcotest.(check (list int)) "stable" [ 0; 1; 2; 3 ] order;
  (* one constraint should reorder minimally *)
  let order = Toposort.sort_exn ~n:3 ~edges:[ (2, 0) ] in
  Alcotest.(check (list int)) "minimal reorder" [ 1; 2; 0 ] order

let test_topo_cycle () =
  Alcotest.(check bool)
    "cycle detected" true
    (Toposort.has_cycle ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ]);
  Alcotest.(check bool)
    "dag is acyclic" false
    (Toposort.has_cycle ~n:3 ~edges:[ (0, 1); (0, 2); (1, 2) ])

let test_reachable () =
  let r =
    Toposort.reachable ~n:5 ~edges:[ (0, 1); (1, 2); (3, 4) ] ~from:[ 0 ]
  in
  Alcotest.(check (list bool))
    "reach from 0"
    [ true; true; true; false; false ]
    (Array.to_list r)

let prop_topo_respects_edges =
  QCheck.Test.make ~name:"toposort respects all edges" ~count:300
    QCheck.(
      pair (int_range 1 8)
        (list_of_size Gen.(int_range 0 12) (pair (int_range 0 7) (int_range 0 7))))
    (fun (n, raw) ->
      let edges =
        List.filter (fun (a, b) -> a < n && b < n && a <> b) raw
      in
      match Toposort.sort ~n ~edges with
      | None -> Toposort.has_cycle ~n ~edges
      | Some order ->
          let pos = Array.make n 0 in
          List.iteri (fun i v -> pos.(v) <- i) order;
          List.for_all (fun (a, b) -> pos.(a) < pos.(b)) edges)

let test_dsu () =
  let d = Dsu.create 6 in
  Dsu.union d 4 2;
  Dsu.union d 2 5;
  Alcotest.(check int) "min rep" 2 (Dsu.find d 5);
  Alcotest.(check bool) "same" true (Dsu.same d 4 5);
  Alcotest.(check bool) "not same" false (Dsu.same d 0 5);
  Alcotest.(check int) "n_sets" 4 (Dsu.n_sets d);
  Alcotest.(check (list (list int)))
    "groups"
    [ [ 0 ]; [ 1 ]; [ 2; 4; 5 ]; [ 3 ] ]
    (Dsu.groups d);
  let d2 = Dsu.copy d in
  Dsu.union d2 0 1;
  Alcotest.(check bool) "copy is independent" false (Dsu.same d 0 1)

let test_prng () =
  let r = Prng.create 42L in
  let xs = List.init 1000 (fun _ -> Prng.next_float r) in
  Alcotest.(check bool)
    "all in (0,1)" true
    (List.for_all (fun x -> x > 0.0 && x < 1.0) xs);
  let mean = List.fold_left ( +. ) 0.0 xs /. 1000.0 in
  Alcotest.(check bool) "mean near 1/2" true (abs_float (mean -. 0.5) < 0.05);
  let r1 = Prng.create 7L and r2 = Prng.create 7L in
  Alcotest.(check (list (float 0.0)))
    "deterministic"
    (List.init 10 (fun _ -> Prng.next_float r1))
    (List.init 10 (fun _ -> Prng.next_float r2))

let suites =
  [
    ( "support.vec",
      [
        Alcotest.test_case "ops" `Quick test_vec_ops;
        Alcotest.test_case "rank mismatch" `Quick test_vec_rank_mismatch;
        Alcotest.test_case "lexicographic" `Quick test_lex;
        QCheck_alcotest.to_alcotest prop_lex_trichotomy;
      ] );
    ( "support.toposort",
      [
        Alcotest.test_case "line" `Quick test_topo_line;
        Alcotest.test_case "stable" `Quick test_topo_stable;
        Alcotest.test_case "cycle" `Quick test_topo_cycle;
        Alcotest.test_case "reachable" `Quick test_reachable;
        QCheck_alcotest.to_alcotest prop_topo_respects_edges;
      ] );
    ( "support.dsu",
      [ Alcotest.test_case "basics" `Quick test_dsu ] );
    ( "support.prng",
      [ Alcotest.test_case "uniformity" `Quick test_prng ] );
  ]
