open Ir
module Vec = Support.Vec

let v = Vec.of_list
let region bounds = Region.of_bounds bounds
let r44 = region [ (1, 4); (1, 4) ]

let stmt ?(r = r44) lhs rhs = Nstmt.make ~region:r ~lhs rhs

let vec = Alcotest.testable (Fmt.of_to_string Vec.to_string) Vec.equal

(* ------------------------------------------------------------------ *)
(* The paper's Figure 2 worked example.                                *)
(*   1 [1..m,1..n] A := B@(-1,0)                                      *)
(*   2 [1..m,1..n] C := A@(0,-1)                                      *)
(*   3 [1..m,1..n] B := A@(-1,1)                                      *)
(* UDVs: A: (0,1) and (1,-1); B: (-1,0).                              *)
(* ------------------------------------------------------------------ *)

let fig2_stmts () =
  [
    stmt "A" Expr.(Ref ("B", v [ -1; 0 ]));
    stmt "C" Expr.(Ref ("A", v [ 0; -1 ]));
    stmt "B" Expr.(Ref ("A", v [ -1; 1 ]));
  ]

let test_fig2_udvs () =
  let g = Core.Asdg.build (fig2_stmts ()) in
  let labels i j = Core.Asdg.labels g i j in
  (match labels 0 1 with
  | [ l ] ->
      Alcotest.(check string) "var" "A" l.Core.Dep.var;
      Alcotest.check vec "udv A 1->2" (v [ 0; 1 ]) l.Core.Dep.udv;
      Alcotest.(check string) "kind" "flow" (Core.Dep.kind_name l.Core.Dep.kind)
  | ls -> Alcotest.failf "edge 0->1: expected 1 label, got %d" (List.length ls));
  (match labels 0 2 with
  | [ l1; l2 ] ->
      let flow = List.find (fun l -> l.Core.Dep.kind = Core.Dep.Flow) [ l1; l2 ] in
      let anti = List.find (fun l -> l.Core.Dep.kind = Core.Dep.Anti) [ l1; l2 ] in
      Alcotest.check vec "flow A 1->3" (v [ 1; -1 ]) flow.Core.Dep.udv;
      Alcotest.(check string) "anti var" "B" anti.Core.Dep.var;
      Alcotest.check vec "anti B 1->3" (v [ -1; 0 ]) anti.Core.Dep.udv
  | ls -> Alcotest.failf "edge 0->2: expected 2 labels, got %d" (List.length ls));
  Alcotest.(check (list (pair int int)))
    "edge set" [ (0, 1); (0, 2) ] (Core.Asdg.edges g)

let test_fig2_loop_structure () =
  (* The paper: for statements 1 and 3, p = (-2,-1) constrains (-1,0)
     and (1,-1) to (0,1) and (1,-1), both legal. *)
  let udvs = [ v [ 1; -1 ]; v [ -1; 0 ] ] in
  (match Core.Loopstruct.find ~rank:2 udvs with
  | Some p -> Alcotest.check vec "p = (-2,-1)" (v [ -2; -1 ]) p
  | None -> Alcotest.fail "expected a loop structure");
  Alcotest.check vec "constrain (-1,0)" (v [ 0; 1 ])
    (Core.Loopstruct.constrain (v [ -2; -1 ]) (v [ -1; 0 ]));
  Alcotest.check vec "constrain (1,-1)" (v [ 1; -1 ])
    (Core.Loopstruct.constrain (v [ -2; -1 ]) (v [ 1; -1 ]))

let test_fig2_fusion_blocked () =
  (* Statements 1 and 3 may not fuse: the flow dependence on A has a
     non-null UDV (Definition 5 condition ii). *)
  let g = Core.Asdg.build (fig2_stmts ()) in
  let p = Core.Partition.trivial g in
  Alcotest.(check bool) "1+3 blocked" false (Core.Partition.can_merge p [ 0; 2 ]);
  Alcotest.(check bool) "1+2 blocked" false (Core.Partition.can_merge p [ 0; 1 ])

(* ------------------------------------------------------------------ *)
(* Loop structure corner cases                                         *)
(* ------------------------------------------------------------------ *)

let test_ls_default () =
  (match Core.Loopstruct.find ~rank:3 [] with
  | Some p -> Alcotest.check vec "row-major default" (v [ 1; 2; 3 ]) p
  | None -> Alcotest.fail "no solution for empty set");
  Alcotest.(check bool)
    "default wellformed" true
    (Core.Loopstruct.is_wellformed (Core.Loopstruct.default 4))

let test_ls_reversal () =
  (* anti dependence (-1,0) forces reversal of dimension 1 *)
  match Core.Loopstruct.find ~rank:2 [ v [ -1; 0 ] ] with
  | Some p ->
      Alcotest.check vec "reversed dim 1 outer" (v [ -1; 2 ]) p;
      Alcotest.(check bool)
        "preserves" true
        (Core.Loopstruct.preserves p [ v [ -1; 0 ] ])
  | None -> Alcotest.fail "expected reversal solution"

let test_ls_interchange () =
  (* (0,1) in dim 2 only: dim 1 is unconstrained; outer loop takes dim 1
     (ascending scan) and the dependence is carried by the inner loop. *)
  match Core.Loopstruct.find ~rank:2 [ v [ 0; 1 ] ] with
  | Some p ->
      Alcotest.(check bool)
        "legal" true
        (Core.Loopstruct.preserves p [ v [ 0; 1 ] ])
  | None -> Alcotest.fail "expected solution"

let test_ls_nosolution () =
  (* (1,-1) and (-1,1): dimension 1 and 2 both mixed-sign. *)
  Alcotest.(check bool)
    "NOSOLUTION" true
    (Core.Loopstruct.find ~rank:2 [ v [ 1; -1 ]; v [ -1; 1 ] ] = None)

let udv_gen =
  QCheck.Gen.(
    int_range 1 3 >>= fun rank ->
    list_size (int_range 0 6)
      (array_size (return rank) (int_range (-2) 2)))

let prop_ls_sound =
  QCheck.Test.make ~name:"FIND-LOOP-STRUCTURE output preserves all deps"
    ~count:1000
    (QCheck.make udv_gen ~print:(fun udvs ->
         String.concat ";" (List.map Vec.to_string udvs)))
    (fun udvs ->
      match udvs with
      | [] -> true
      | u0 :: _ -> (
          let rank = Vec.rank u0 in
          if List.exists (fun u -> Vec.rank u <> rank) udvs then
            QCheck.assume_fail ()
          else
            match Core.Loopstruct.find ~rank udvs with
            | None -> true
            | Some p ->
                Core.Loopstruct.is_wellformed p
                && Core.Loopstruct.preserves p udvs))

let prop_ls_complete_on_lexpos =
  (* Any set of lexicographically nonnegative UDVs is preserved by the
     identity structure, so find must succeed on a superset criterion:
     if all UDVs are elementwise nonnegative, a solution exists. *)
  QCheck.Test.make ~name:"FIND-LOOP-STRUCTURE succeeds on nonneg deps"
    ~count:500
    (QCheck.make udv_gen)
    (fun udvs ->
      let nonneg = List.map (Array.map abs) udvs in
      match nonneg with
      | [] -> true
      | u0 :: _ ->
          let rank = Vec.rank u0 in
          if List.exists (fun u -> Vec.rank u <> rank) nonneg then
            QCheck.assume_fail ()
          else Core.Loopstruct.find ~rank nonneg <> None)

(* ------------------------------------------------------------------ *)
(* Weights                                                             *)
(* ------------------------------------------------------------------ *)

let test_weights () =
  let g =
    Core.Asdg.build
      [
        stmt "T" Expr.(Binop (Add, Ref ("A", v [ 0; 0 ]), Ref ("A", v [ -1; 0 ])));
        stmt "B" Expr.(Binop (Mul, Ref ("T", v [ 0; 0 ]), Ref ("T", v [ 0; 0 ])));
      ]
  in
  (* T: 1 write + 2 reads = 3 refs x 16 = 48; A: 2 x 16 = 32 *)
  Alcotest.(check int) "w(T)" 48 (Core.Weights.weight g "T");
  Alcotest.(check int) "w(A)" 32 (Core.Weights.weight g "A");
  Alcotest.(check (list string))
    "order" [ "T"; "A"; "B" ]
    (Core.Weights.by_decreasing_weight g [ "A"; "T"; "B" ])

(* ------------------------------------------------------------------ *)
(* GROW                                                                 *)
(* ------------------------------------------------------------------ *)

let grow_chain_stmts () =
  (* s0: T := B ; s1: U := T ; s2: V := U ; s3: W := T + V
     Contracting T must pull in the whole chain or create a cycle. *)
  [
    stmt "T" Expr.(Ref ("B", v [ 0; 0 ]));
    stmt "U" Expr.(Ref ("T", v [ 0; 0 ]));
    stmt "V" Expr.(Ref ("U", v [ 0; 0 ]));
    stmt "W" Expr.(Binop (Add, Ref ("T", v [ 0; 0 ]), Ref ("V", v [ 0; 0 ])));
  ]

let test_grow () =
  let g = Core.Asdg.build (grow_chain_stmts ()) in
  let p = Core.Partition.trivial g in
  Alcotest.(check (list int))
    "grow {0,3} = {1,2}" [ 1; 2 ]
    (Core.Partition.grow p [ 0; 3 ]);
  Alcotest.(check (list int)) "grow {0,1} = {}" [] (Core.Partition.grow p [ 0; 1 ])

let test_fusion_uses_grow () =
  let g = Core.Asdg.build (grow_chain_stmts ()) in
  let p =
    Core.Fusion.for_contraction ~candidates:[ "T"; "U"; "V"; "W" ] g
  in
  Alcotest.(check int) "all fused" 1 (Core.Partition.n_clusters p);
  Alcotest.(check bool) "valid" true (Core.Partition.is_valid p);
  Alcotest.(check (list string))
    "all contracted"
    [ "T"; "U"; "V"; "W" ]
    (Core.Contraction.decide p ~candidates:[ "T"; "U"; "V"; "W" ])

(* ------------------------------------------------------------------ *)
(* Fragment (4): compiler temporary from a self-referencing statement  *)
(* ------------------------------------------------------------------ *)

let test_compiler_temp_contraction () =
  (* A(1:n,1:m) = A(0:n-1,1:m)+A(0:n-1,1:m) normalizes to
       T := A@(-1,0) + A@(-1,0) ;  A := T
     Fusing the pair carries the anti dependence on A by reversing the
     loop over dimension 1; T then contracts. *)
  let stmts =
    [
      stmt "T"
        Expr.(Binop (Add, Ref ("A", v [ -1; 0 ]), Ref ("A", v [ -1; 0 ])));
      stmt "A" Expr.(Ref ("T", v [ 0; 0 ]));
    ]
  in
  let g = Core.Asdg.build stmts in
  let p = Core.Fusion.for_contraction ~candidates:[ "T" ] g in
  Alcotest.(check int) "fused" 1 (Core.Partition.n_clusters p);
  Alcotest.(check (list string))
    "T contracted" [ "T" ]
    (Core.Contraction.decide p ~candidates:[ "T" ]);
  match Core.Partition.loop_structure p 0 with
  | Some ls ->
      (* anti dependence A: udv (-1,0) - (0,0) = (-1,0): dim 1 reversed *)
      Alcotest.check vec "reversal chosen" (v [ -1; 2 ]) ls
  | None -> Alcotest.fail "no loop structure"

(* ------------------------------------------------------------------ *)
(* Upward-exposed reads block contraction                              *)
(* ------------------------------------------------------------------ *)

let test_upward_exposed () =
  let stmts =
    [
      stmt "B" Expr.(Ref ("T", v [ 0; 0 ]));  (* reads T before any write *)
      stmt "T" Expr.(Ref ("C", v [ 0; 0 ]));
    ]
  in
  let g = Core.Asdg.build stmts in
  let p = Core.Fusion.for_contraction ~candidates:[ "T" ] g in
  Alcotest.(check (list string))
    "not contracted" []
    (Core.Contraction.decide p ~candidates:[ "T" ])

(* ------------------------------------------------------------------ *)
(* Region mismatch blocks fusion                                       *)
(* ------------------------------------------------------------------ *)

let test_region_mismatch () =
  let rA = region [ (1, 4); (1, 4) ] and rB = region [ (0, 4); (1, 4) ] in
  let stmts =
    [
      Nstmt.make ~region:rA ~lhs:"T" Expr.(Ref ("A", v [ 0; 0 ]));
      Nstmt.make ~region:rB ~lhs:"B" Expr.(Ref ("T", v [ 0; 0 ]));
    ]
  in
  let g = Core.Asdg.build stmts in
  let p = Core.Partition.trivial g in
  Alcotest.(check bool) "different regions" false
    (Core.Partition.can_merge p [ 0; 1 ])

(* ------------------------------------------------------------------ *)
(* Greedy pairwise fusion (f4)                                         *)
(* ------------------------------------------------------------------ *)

let test_greedy_pairwise () =
  (* Independent statements all fuse under f4. *)
  let stmts =
    [
      stmt "A" Expr.(Ref ("X", v [ 0; 0 ]));
      stmt "B" Expr.(Ref ("Y", v [ 0; 0 ]));
      stmt "C" Expr.(Ref ("Z", v [ 0; 0 ]));
    ]
  in
  let g = Core.Asdg.build stmts in
  let p = Core.Fusion.greedy_pairwise (Core.Partition.trivial g) in
  Alcotest.(check int) "all fused" 1 (Core.Partition.n_clusters p);
  Alcotest.(check bool) "valid" true (Core.Partition.is_valid p)

let test_greedy_no_cycle () =
  (* s0 -> s1 (non-null flow) -> s2; fusing s0 with s2 would put the
     middle cluster on a cycle; greedy pairwise must respect this. *)
  let stmts =
    [
      stmt "A" Expr.(Ref ("X", v [ 0; 0 ]));
      stmt "B" Expr.(Ref ("A", v [ -1; 0 ]));
      stmt "C" Expr.(Binop (Add, Ref ("B", v [ -1; 0 ]), Ref ("A", v [ -1; 0 ])));
    ]
  in
  let g = Core.Asdg.build stmts in
  let p = Core.Fusion.greedy_pairwise (Core.Partition.trivial g) in
  Alcotest.(check bool) "valid" true (Core.Partition.is_valid p)

(* ------------------------------------------------------------------ *)
(* may_fuse veto                                                       *)
(* ------------------------------------------------------------------ *)

let test_may_fuse_veto () =
  let g = Core.Asdg.build (grow_chain_stmts ()) in
  let p =
    Core.Fusion.for_contraction
      ~may_fuse:(fun _ -> false)
      ~candidates:[ "T"; "U"; "V"; "W" ]
      g
  in
  Alcotest.(check int) "veto keeps trivial" 4 (Core.Partition.n_clusters p)

(* ------------------------------------------------------------------ *)
(* Partial contraction (extension)                                     *)
(* ------------------------------------------------------------------ *)

let test_partial_contraction () =
  (* T written at 0 and read at (0,-1): the flow UDV (0,1) blocks
     parallel fusion (Definition 5 ii), but sequential fusion with
     relax_flow admits it, and dimension 1 carries no offsets, so T
     contracts to a 1-D buffer. *)
  let stmts =
    [
      stmt "T" Expr.(Ref ("A", v [ 0; 0 ]));
      stmt "B" Expr.(Binop (Add, Ref ("T", v [ 0; 0 ]), Ref ("T", v [ 0; -1 ])));
    ]
  in
  let g = Core.Asdg.build stmts in
  let strict = Core.Fusion.greedy_pairwise (Core.Partition.trivial g) in
  Alcotest.(check int)
    "parallel fusion blocked" 2
    (Core.Partition.n_clusters strict);
  let p =
    Core.Fusion.greedy_pairwise ~relax_flow:true (Core.Partition.trivial g)
  in
  Alcotest.(check int) "fused" 1 (Core.Partition.n_clusters p);
  Alcotest.(check (list string))
    "not scalar-contractible" []
    (Core.Contraction.decide p ~candidates:[ "T" ]);
  match Core.Contraction.decide_partial p ~candidates:[ "T" ] with
  | [ ("T", Core.Contraction.Keep_dims keep) ] ->
      Alcotest.(check (list bool)) "keeps dim 2 only" [ false; true ]
        (Array.to_list keep);
      Alcotest.(check int) "volume 4"
        4
        (Core.Contraction.shape_volume r44 (Core.Contraction.Keep_dims keep))
  | _ -> Alcotest.fail "expected partial contraction of T"

(* ------------------------------------------------------------------ *)
(* Random-program property: fusion always yields a valid partition     *)
(* ------------------------------------------------------------------ *)

let random_block_gen =
  let open QCheck.Gen in
  let names = [| "A"; "B"; "C"; "D"; "E" |] in
  let off = int_range (-1) 1 in
  let ref_gen = map2 (fun n (a, b) -> Expr.Ref (names.(n), v [ a; b ]))
      (int_range 0 4) (pair off off)
  in
  let expr_gen =
    map2 (fun a b -> Expr.Binop (Expr.Add, a, b)) ref_gen ref_gen
  in
  list_size (int_range 1 8)
    (map2 (fun n rhs -> (names.(n), rhs)) (int_range 0 4) expr_gen)

let mk_block specs =
  List.filter_map
    (fun (lhs, rhs) ->
      (* drop statements that violate normal form (self reads) *)
      if List.mem lhs (Expr.ref_names rhs) then None
      else Some (Nstmt.make ~region:r44 ~lhs rhs))
    specs

let prop_fusion_valid =
  QCheck.Test.make ~name:"FUSION-FOR-CONTRACTION yields valid partitions"
    ~count:500
    (QCheck.make random_block_gen)
    (fun specs ->
      match mk_block specs with
      | [] -> true
      | stmts ->
          let g = Core.Asdg.build stmts in
          let p =
            Core.Fusion.for_contraction
              ~candidates:[ "A"; "B"; "C"; "D"; "E" ]
              g
          in
          Core.Partition.is_valid p)

let prop_locality_fusion_valid =
  QCheck.Test.make ~name:"locality and pairwise fusion keep validity"
    ~count:300
    (QCheck.make random_block_gen)
    (fun specs ->
      match mk_block specs with
      | [] -> true
      | stmts ->
          let g = Core.Asdg.build stmts in
          let p0 =
            Core.Fusion.for_contraction
              ~candidates:[ "A"; "B"; "C"; "D"; "E" ]
              g
          in
          let p1 = Core.Fusion.for_locality p0 in
          let p2 = Core.Fusion.greedy_pairwise p1 in
          Core.Partition.is_valid p1 && Core.Partition.is_valid p2)

let prop_contracted_deps_null =
  QCheck.Test.make ~name:"contracted arrays have only null in-cluster deps"
    ~count:300
    (QCheck.make random_block_gen)
    (fun specs ->
      match mk_block specs with
      | [] -> true
      | stmts ->
          let g = Core.Asdg.build stmts in
          let cands = [ "A"; "B"; "C"; "D"; "E" ] in
          let p = Core.Fusion.for_contraction ~candidates:cands g in
          let contracted = Core.Contraction.decide p ~candidates:cands in
          List.for_all
            (fun x ->
              Core.Asdg.deps_on g x
              |> List.for_all (fun (((i, j), l) : (int * int) * Core.Dep.label) ->
                     Core.Partition.same_cluster p i j
                     && Vec.is_null l.Core.Dep.udv))
            contracted)

let suites =
  [
    ( "core.fig2",
      [
        Alcotest.test_case "UDVs" `Quick test_fig2_udvs;
        Alcotest.test_case "loop structure (-2,-1)" `Quick test_fig2_loop_structure;
        Alcotest.test_case "fusion blocked by flow" `Quick test_fig2_fusion_blocked;
      ] );
    ( "core.loopstruct",
      [
        Alcotest.test_case "default row-major" `Quick test_ls_default;
        Alcotest.test_case "reversal" `Quick test_ls_reversal;
        Alcotest.test_case "interchange" `Quick test_ls_interchange;
        Alcotest.test_case "NOSOLUTION" `Quick test_ls_nosolution;
        QCheck_alcotest.to_alcotest prop_ls_sound;
        QCheck_alcotest.to_alcotest prop_ls_complete_on_lexpos;
      ] );
    ( "core.weights",
      [ Alcotest.test_case "reference weights" `Quick test_weights ] );
    ( "core.fusion",
      [
        Alcotest.test_case "GROW" `Quick test_grow;
        Alcotest.test_case "fusion pulls chain via GROW" `Quick test_fusion_uses_grow;
        Alcotest.test_case "compiler temp contraction" `Quick test_compiler_temp_contraction;
        Alcotest.test_case "upward-exposed read" `Quick test_upward_exposed;
        Alcotest.test_case "region mismatch" `Quick test_region_mismatch;
        Alcotest.test_case "greedy pairwise" `Quick test_greedy_pairwise;
        Alcotest.test_case "greedy avoids cycles" `Quick test_greedy_no_cycle;
        Alcotest.test_case "may_fuse veto" `Quick test_may_fuse_veto;
        QCheck_alcotest.to_alcotest prop_fusion_valid;
        QCheck_alcotest.to_alcotest prop_locality_fusion_valid;
        QCheck_alcotest.to_alcotest prop_contracted_deps_null;
      ] );
    ( "core.contraction",
      [ Alcotest.test_case "partial (extension)" `Quick test_partial_contraction ] );
  ]
