(* Statement merge (array operation synthesis, related work §6). *)

open Ir
module Vec = Support.Vec

let v = Vec.of_list
let interior = Region.of_bounds [ (2, 6); (2, 6) ]
let padded = Region.of_bounds [ (0, 8); (0, 8) ]

let user name = { Prog.name; bounds = padded; kind = Prog.User }

let prog_of ?(live = [ "C" ]) body =
  {
    Prog.name = "m";
    arrays = List.map user [ "A"; "B"; "C"; "T" ];
    scalars = [];
    body;
    live_out = live;
  }

let astmt lhs rhs = Prog.Astmt (Nstmt.make ~region:interior ~lhs rhs)

let test_shift_expr () =
  let e =
    Expr.(Binop (Add, Ref ("A", v [ -1; 0 ]), Binop (Mul, Idx 2, Const 3.0)))
  in
  match Core.Merge.shift_expr (v [ 0; 1 ]) e with
  | Expr.Binop (Expr.Add, Expr.Ref ("A", off), Expr.Binop (Expr.Mul, idx, _)) ->
      Alcotest.(check (list int)) "ref shifted" [ -1; 1 ] (Vec.to_list off);
      (match idx with
      | Expr.Binop (Expr.Add, Expr.Idx 2, Expr.Const 1.0) -> ()
      | _ -> Alcotest.fail "Idx not rebased")
  | _ -> Alcotest.fail "unexpected shape"

let test_basic_merge () =
  (* the definition covers [1..7]^2, so the consumer's offset-(0,1)
     reads stay inside the computed region *)
  let wide = Region.of_bounds [ (1, 7); (1, 7) ] in
  let prog =
    prog_of
      [
        Prog.Astmt
          (Nstmt.make ~region:wide ~lhs:"T"
             Expr.(Binop (Add, Ref ("A", v [ -1; 0 ]), Ref ("B", v [ 0; 0 ]))));
        astmt "C" Expr.(Binop (Mul, Ref ("T", v [ 0; 1 ]), Const 2.0));
      ]
  in
  let merged, gone = Core.Merge.run prog in
  Alcotest.(check (list string)) "T eliminated" [ "T" ] gone;
  Alcotest.(check int) "one statement left" 1
    (List.length (List.concat (Prog.blocks merged)));
  (match Prog.validate merged with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* semantics preserved *)
  Alcotest.(check string)
    "equivalent"
    (Exec.Refinterp.checksum (Exec.Refinterp.run prog))
    (Exec.Refinterp.checksum (Exec.Refinterp.run merged));
  (* the substituted reference picked up the use offset *)
  match List.concat (Prog.blocks merged) with
  | [ s ] ->
      let offs = Nstmt.reads_of s "A" in
      Alcotest.(check (list (list int)))
        "A offset composed" [ [ -1; 1 ] ]
        (List.map Vec.to_list offs)
  | _ -> Alcotest.fail "expected a single statement"

let test_blocked_by_intervening_write () =
  let prog =
    prog_of
      [
        astmt "T" Expr.(Ref ("A", v [ 0; 0 ]));
        astmt "A" Expr.(Ref ("B", v [ 0; 0 ]));  (* clobbers T's input *)
        astmt "C" Expr.(Ref ("T", v [ 0; 0 ]));
      ]
      ~live:[ "A"; "C" ]
  in
  let merged, gone = Core.Merge.run prog in
  Alcotest.(check (list string)) "nothing merged" [] gone;
  Alcotest.(check string) "unchanged semantics"
    (Exec.Refinterp.checksum (Exec.Refinterp.run prog))
    (Exec.Refinterp.checksum (Exec.Refinterp.run merged))

let test_blocked_by_bounds () =
  (* T reads A at the padding edge; the use offset would push the
     substituted reference out of bounds *)
  let edge = Region.of_bounds [ (2, 8); (2, 6) ] in
  let prog =
    prog_of
      [
        astmt "T" Expr.(Ref ("A", v [ -2; 0 ]));
        Prog.Astmt
          (Nstmt.make ~region:edge ~lhs:"C" Expr.(Ref ("T", v [ 0; 0 ])));
      ]
  in
  (* direct check: T's definition region differs from the use region,
     and shifting by (0,0) over [2..8] needs A[0..6] which is fine, so
     this one merges; push it out with a use offset instead *)
  ignore prog;
  let prog2 =
    prog_of
      [
        astmt "T" Expr.(Ref ("A", v [ -2; 0 ]));
        astmt "C" Expr.(Ref ("T", v [ -1; 0 ]));
        (* A would be read at (-3,0): row -1, outside [0..8] *)
      ]
  in
  let _, gone = Core.Merge.run prog2 in
  Alcotest.(check (list string)) "bounds veto" [] gone

let test_budget () =
  let wide = Region.of_bounds [ (1, 7); (1, 7) ] in
  let many_uses =
    prog_of
      [
        Prog.Astmt
          (Nstmt.make ~region:wide ~lhs:"T"
             Expr.(Binop (Add, Ref ("A", v [ 0; 0 ]), Ref ("B", v [ 0; 0 ]))));
        astmt "C"
          Expr.(
            Binop
              ( Add,
                Binop (Add, Ref ("T", v [ 0; 0 ]), Ref ("T", v [ 0; 1 ])),
                Ref ("T", v [ 0; -1 ]) ));
      ]
  in
  let _, gone3 = Core.Merge.run ~max_uses:2 many_uses in
  Alcotest.(check (list string)) "3 uses > budget 2" [] gone3;
  let _, gone = Core.Merge.run ~max_uses:3 many_uses in
  Alcotest.(check (list string)) "allowed with budget 3" [ "T" ] gone

let test_live_out_protected () =
  let prog =
    prog_of ~live:[ "T"; "C" ]
      [
        astmt "T" Expr.(Ref ("A", v [ 0; 0 ]));
        astmt "C" Expr.(Ref ("T", v [ 0; 0 ]));
      ]
  in
  let _, gone = Core.Merge.run prog in
  Alcotest.(check (list string)) "live-out kept" [] gone

let test_chain_merge () =
  (* T -> B -> C collapses completely; regions widen toward the
     producers so every substituted read is covered *)
  let wide = Region.of_bounds [ (1, 7); (1, 7) ] in
  let prog =
    prog_of
      [
        Prog.Astmt
          (Nstmt.make ~region:wide ~lhs:"T"
             Expr.(Binop (Mul, Ref ("A", v [ 0; 0 ]), Const 2.0)));
        Prog.Astmt
          (Nstmt.make ~region:wide ~lhs:"B"
             Expr.(Binop (Add, Ref ("T", v [ 0; 0 ]), Const 1.0)));
        astmt "C" Expr.(Binop (Add, Ref ("B", v [ 0; 1 ]), Ref ("A", v [ 0; 0 ])));
      ]
  in
  let merged, gone = Core.Merge.run prog in
  Alcotest.(check int) "both temporaries gone" 2 (List.length gone);
  Alcotest.(check int) "single statement" 1
    (List.length (List.concat (Prog.blocks merged)));
  Alcotest.(check string) "equivalent"
    (Exec.Refinterp.checksum (Exec.Refinterp.run prog))
    (Exec.Refinterp.checksum (Exec.Refinterp.run merged))

let arr_names = [| "A"; "B"; "C"; "T" |]

let random_gen =
  let open QCheck.Gen in
  let off = int_range (-1) 1 in
  let ref_gen =
    map2 (fun n (a, b) -> Expr.Ref (arr_names.(n), v [ a; b ]))
      (int_range 0 3) (pair off off)
  in
  let expr_gen =
    frequency
      [
        (3, map2 (fun a b -> Expr.Binop (Expr.Add, a, b)) ref_gen ref_gen);
        (2, map2 (fun a b -> Expr.Binop (Expr.Mul, a, b)) ref_gen ref_gen);
        (1, map (fun a -> Expr.Unop (Expr.Abs, a)) ref_gen);
      ]
  in
  list_size (int_range 1 6)
    (map2 (fun n rhs -> (arr_names.(n), rhs)) (int_range 0 3) expr_gen)

let prop_merge_preserves_semantics =
  QCheck.Test.make ~name:"statement merge preserves semantics" ~count:300
    (QCheck.make random_gen)
    (fun specs ->
      let stmts =
        List.filter_map
          (fun (lhs, rhs) ->
            if List.mem lhs (Expr.ref_names rhs) then None
            else Some (Prog.Astmt (Nstmt.make ~region:interior ~lhs rhs)))
          specs
      in
      match stmts with
      | [] -> true
      | _ -> (
          let prog = prog_of ~live:[ "C" ] stmts in
          match Prog.validate prog with
          | Error _ -> QCheck.assume_fail ()
          | Ok () ->
              let merged, _ = Core.Merge.run ~max_uses:4 prog in
              Prog.validate merged = Ok ()
              && Exec.Refinterp.checksum (Exec.Refinterp.run prog)
                 = Exec.Refinterp.checksum (Exec.Refinterp.run merged)))

let suites =
  [
    ( "core.merge",
      [
        Alcotest.test_case "shift_expr" `Quick test_shift_expr;
        Alcotest.test_case "basic merge" `Quick test_basic_merge;
        Alcotest.test_case "intervening write" `Quick test_blocked_by_intervening_write;
        Alcotest.test_case "bounds veto" `Quick test_blocked_by_bounds;
        Alcotest.test_case "duplication budget" `Quick test_budget;
        Alcotest.test_case "live-out protected" `Quick test_live_out_protected;
        Alcotest.test_case "chain merge" `Quick test_chain_merge;
        QCheck_alcotest.to_alcotest prop_merge_preserves_semantics;
      ] );
  ]
