open Ir
module Vec = Support.Vec

let v = Vec.of_list
let r2 bounds = Region.of_bounds bounds

let test_region_basics () =
  let r = r2 [ (1, 4); (1, 3) ] in
  Alcotest.(check int) "rank" 2 (Region.rank r);
  Alcotest.(check int) "volume" 12 (Region.volume r);
  Alcotest.(check int) "extent 1" 4 (Region.extent r 1);
  Alcotest.(check int) "extent 2" 3 (Region.extent r 2);
  Alcotest.(check bool) "nonempty" false (Region.is_empty r);
  Alcotest.(check bool) "empty" true (Region.is_empty (r2 [ (3, 2) ]))

let test_region_shift_contains () =
  let r = r2 [ (1, 4); (1, 3) ] in
  let s = Region.shift r (v [ -1; 2 ]) in
  Alcotest.(check string) "shift" "[0..3,3..5]" (Region.to_string s);
  Alcotest.(check bool)
    "contains" true
    (Region.contains (r2 [ (0, 5); (0, 6) ]) s);
  Alcotest.(check bool)
    "not contains" false
    (Region.contains (r2 [ (1, 5); (0, 6) ]) s)

let test_region_inter () =
  let a = r2 [ (1, 4) ] and b = r2 [ (3, 9) ] in
  (match Region.inter a b with
  | Some i -> Alcotest.(check string) "inter" "[3..4]" (Region.to_string i)
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool)
    "disjoint" true
    (Region.inter (r2 [ (1, 2) ]) (r2 [ (3, 4) ]) = None)

let test_region_iter_rowmajor () =
  let seen = ref [] in
  Region.iter (r2 [ (1, 2); (5, 6) ]) (fun idx ->
      seen := Array.to_list (Array.copy idx) :: !seen);
  Alcotest.(check (list (list int)))
    "row-major order"
    [ [ 1; 5 ]; [ 1; 6 ]; [ 2; 5 ]; [ 2; 6 ] ]
    (List.rev !seen)

let prop_region_iter_count =
  QCheck.Test.make ~name:"iter visits volume points" ~count:200
    QCheck.(
      list_of_size Gen.(int_range 1 3) (pair (int_range (-3) 3) (int_range (-3) 3)))
    (fun bounds ->
      let r = Region.of_bounds bounds in
      let n = ref 0 in
      Region.iter r (fun _ -> incr n);
      !n = Region.volume r)

let test_expr_refs () =
  let open Expr in
  let e =
    Binop
      ( Add,
        Ref ("A", v [ -1; 0 ]),
        Binop (Mul, Ref ("A", v [ -1; 0 ]), Ref ("B", v [ 0; 0 ])) )
  in
  Alcotest.(check int) "refs with duplicates" 3 (List.length (refs e));
  Alcotest.(check (list string)) "names deduped" [ "A"; "B" ] (ref_names e);
  Alcotest.(check (list string)) "svars" [] (svars e)

let test_expr_eval_ops () =
  let open Expr in
  Alcotest.(check (float 1e-12)) "min" 2.0 (apply_binop Min 3.0 2.0);
  Alcotest.(check (float 1e-12)) "lt true" 1.0 (apply_binop Lt 1.0 2.0);
  Alcotest.(check (float 1e-12)) "lt false" 0.0 (apply_binop Lt 2.0 1.0);
  Alcotest.(check (float 1e-12)) "not" 0.0 (apply_unop Not 5.0);
  Alcotest.(check (float 1e-12)) "floor" 2.0 (apply_unop Floor 2.9)

let test_hashrand () =
  let a = Expr.hashrand 1.0 and b = Expr.hashrand 1.0 in
  Alcotest.(check (float 0.0)) "pure" a b;
  Alcotest.(check bool) "in range" true (a > 0.0 && a < 1.0);
  Alcotest.(check bool)
    "different inputs differ" true
    (Expr.hashrand 1.0 <> Expr.hashrand 2.0)

let mk_stmt () =
  Nstmt.make
    ~region:(r2 [ (1, 4); (1, 3) ])
    ~lhs:"A"
    Expr.(Binop (Add, Ref ("B", v [ -1; 0 ]), Const 2.0))

let test_nstmt_normal_form () =
  let s = mk_stmt () in
  Alcotest.(check (list string)) "arrays" [ "A"; "B" ] (Nstmt.arrays s);
  Alcotest.(check int) "ref_count B" 1 (Nstmt.ref_count s "B");
  Alcotest.(check int) "ref_count A (write)" 1 (Nstmt.ref_count s "A");
  (* reading the written array is rejected *)
  Alcotest.(check bool)
    "self-reference rejected" true
    (try
       ignore
         (Nstmt.make
            ~region:(r2 [ (1, 4) ])
            ~lhs:"A"
            Expr.(Ref ("A", v [ -1 ])));
       false
     with Invalid_argument _ -> true);
  (* rank mismatch rejected *)
  Alcotest.(check bool)
    "rank mismatch rejected" true
    (try
       ignore
         (Nstmt.make ~region:(r2 [ (1, 4) ]) ~lhs:"A" Expr.(Ref ("B", v [ 0; 0 ])));
       false
     with Invalid_argument _ -> true)

let simple_prog () =
  let interior = r2 [ (1, 4); (1, 4) ] in
  let padded = r2 [ (0, 5); (0, 5) ] in
  {
    Prog.name = "p";
    arrays =
      [
        { Prog.name = "A"; bounds = padded; kind = Prog.User };
        { Prog.name = "B"; bounds = padded; kind = Prog.User };
        { Prog.name = "T"; bounds = padded; kind = Prog.Compiler };
      ];
    scalars = [ ("s", 0.0) ];
    body =
      [
        Prog.Astmt
          (Nstmt.make ~region:interior ~lhs:"T"
             Expr.(Binop (Add, Ref ("A", v [ -1; 0 ]), Const 1.0)));
        Prog.Astmt (Nstmt.make ~region:interior ~lhs:"B" Expr.(Ref ("T", v [ 0; 0 ])));
        Prog.Reduce
          { target = "s"; op = Prog.Rsum; region = interior; arg = Expr.(Ref ("B", v [ 0; 0 ])) };
        Prog.Astmt (Nstmt.make ~region:interior ~lhs:"A" Expr.(Svar "s"));
      ];
    live_out = [ "A"; "s" ];
  }

let test_prog_validate () =
  match Prog.validate (simple_prog ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_prog_validate_bounds () =
  let p = simple_prog () in
  let bad =
    {
      p with
      Prog.body =
        [
          Prog.Astmt
            (Nstmt.make
               ~region:(r2 [ (1, 4); (1, 4) ])
               ~lhs:"B"
               Expr.(Ref ("A", v [ -2; 0 ])));
        ];
    }
  in
  Alcotest.(check bool)
    "escaping ref rejected" true
    (match Prog.validate bad with Error _ -> true | Ok () -> false)

let test_prog_blocks () =
  let p = simple_prog () in
  let bs = Prog.blocks p in
  Alcotest.(check int) "two blocks (reduce splits)" 2 (List.length bs);
  Alcotest.(check (list int))
    "block sizes" [ 2; 1 ]
    (List.map List.length bs)

let test_prog_confined () =
  let p = simple_prog () in
  (* T is referenced only in block 0 and not live-out: confined.
     A is live-out; B is read by the reduction. *)
  Alcotest.(check (list (pair string int)))
    "confined arrays" [ ("T", 0) ]
    (Prog.confined_arrays p)

let test_prog_counts () =
  let c, u = Prog.static_array_counts (simple_prog ()) in
  Alcotest.(check (pair int int)) "compiler/user" (1, 2) (c, u)

let test_prog_map_blocks () =
  let p = simple_prog () in
  (* reverse each block: map_blocks must rebuild around non-block stmts *)
  let q = Prog.map_blocks (fun _ run -> List.map (fun s -> Prog.Astmt s) (List.rev run)) p in
  let bs = Prog.blocks q in
  Alcotest.(check (list int)) "shape kept" [ 2; 1 ] (List.map List.length bs);
  match List.hd bs with
  | first :: _ ->
      Alcotest.(check string) "reversed" "B" first.Nstmt.lhs
  | [] -> Alcotest.fail "empty block"

let test_reduce_helpers () =
  let interior = r2 [ (1, 4); (1, 4) ] in
  let mk lhs = Prog.Astmt (Nstmt.make ~region:interior ~lhs (Expr.Const 1.0)) in
  let red target arrname =
    Prog.Reduce
      { target; op = Prog.Rsum; region = interior;
        arg = Expr.Ref (arrname, v [ 0; 0 ]) }
  in
  let p =
    {
      Prog.name = "rh";
      arrays =
        List.map
          (fun name ->
            { Prog.name; bounds = r2 [ (0, 5); (0, 5) ]; kind = Prog.User })
          [ "A"; "B"; "C" ];
      scalars = [ ("s", 0.0); ("u", 0.0); ("w", 0.0) ];
      body =
        [
          mk "A";
          red "s" "A";          (* reduce 0: trails block 0 *)
          red "u" "A";          (* reduce 1: still trailing (consecutive) *)
          Prog.Sassign ("w", Expr.Const 0.0);
          mk "B";
          Prog.Sloop { var = "t"; lo = 1; hi = 2; body = [ mk "C" ] };
          red "w" "C";          (* reduce 2: after a loop, NOT trailing *)
        ];
      live_out = [ "s"; "u"; "w" ];
    }
  in
  (match Prog.validate p with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "three reduces" 3 (List.length (Prog.reduce_stmts p));
  Alcotest.(check (list (pair int (list int))))
    "trailing map"
    [ (0, [ 0; 1 ]) ]
    (Prog.trailing_reduces p);
  (* A is read by reduces 0 and 1 only: eligible when both are allowed *)
  let allow b = if b = 0 then [ 0; 1 ] else [] in
  Alcotest.(check bool)
    "A eligible with allowance" true
    (List.mem_assoc "A" (Prog.confined_arrays_allowing_reduces p allow));
  Alcotest.(check bool)
    "A ineligible without" false
    (List.mem_assoc "A" (Prog.confined_arrays p));
  (* C is read by the non-trailing reduce: never eligible *)
  Alcotest.(check bool)
    "C ineligible" false
    (List.mem_assoc "C" (Prog.confined_arrays_allowing_reduces p allow))

let test_rename_array () =
  let p = simple_prog () in
  let q = Prog.rename_array p ~old:"A" ~new_:"Z" in
  Alcotest.(check bool) "declared" true (Prog.find_array q "Z" <> None);
  Alcotest.(check bool) "old gone" true (Prog.find_array q "A" = None);
  Alcotest.(check bool) "live-out renamed" true (Prog.is_live_out q "Z");
  (match Prog.validate q with Ok () -> () | Error e -> Alcotest.fail e);
  (* semantics invariant under renaming *)
  let r1 = Exec.Refinterp.run p and r2 = Exec.Refinterp.run q in
  Alcotest.(check bool)
    "same data" true
    (Exec.Refinterp.get_array r1 "A" = Exec.Refinterp.get_array r2 "Z")

let test_nstmt_rename () =
  let s = mk_stmt () in
  let s' = Nstmt.rename (fun x -> x ^ "2") s in
  Alcotest.(check string) "lhs" "A2" s'.Nstmt.lhs;
  Alcotest.(check (list string)) "rhs" [ "A2"; "B2" ] (Nstmt.arrays s')

let suites =
  [
    ( "ir.region",
      [
        Alcotest.test_case "basics" `Quick test_region_basics;
        Alcotest.test_case "shift/contains" `Quick test_region_shift_contains;
        Alcotest.test_case "intersection" `Quick test_region_inter;
        Alcotest.test_case "row-major iter" `Quick test_region_iter_rowmajor;
        QCheck_alcotest.to_alcotest prop_region_iter_count;
      ] );
    ( "ir.expr",
      [
        Alcotest.test_case "refs" `Quick test_expr_refs;
        Alcotest.test_case "eval ops" `Quick test_expr_eval_ops;
        Alcotest.test_case "hashrand" `Quick test_hashrand;
      ] );
    ( "ir.nstmt",
      [ Alcotest.test_case "normal form" `Quick test_nstmt_normal_form ] );
    ( "ir.prog",
      [
        Alcotest.test_case "validate" `Quick test_prog_validate;
        Alcotest.test_case "bounds check" `Quick test_prog_validate_bounds;
        Alcotest.test_case "blocks" `Quick test_prog_blocks;
        Alcotest.test_case "confined arrays" `Quick test_prog_confined;
        Alcotest.test_case "static counts" `Quick test_prog_counts;
        Alcotest.test_case "map_blocks" `Quick test_prog_map_blocks;
        Alcotest.test_case "reduce helpers" `Quick test_reduce_helpers;
        Alcotest.test_case "rename array" `Quick test_rename_array;
        Alcotest.test_case "rename nstmt" `Quick test_nstmt_rename;
      ] );
  ]
