test/test_suite.ml: Alcotest Array Comm Compilers Core Exec Ir List Machine Printf Sir String Suite Support Zap
