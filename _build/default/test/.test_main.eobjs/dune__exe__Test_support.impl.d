test/test_support.ml: Alcotest Array Dsu Fmt Gen List Prng QCheck QCheck_alcotest Support Toposort Vec
