test/test_sir.ml: Alcotest Array Astring Compilers Exec Expr Format Ir List Nstmt Prog Region Sir Support
