test/test_exec.ml: Alcotest Array Exec Expr Ir List Nstmt Prog Region Sir Support
