test/test_merge.ml: Alcotest Array Core Exec Expr Ir List Nstmt Prog QCheck QCheck_alcotest Region Support
