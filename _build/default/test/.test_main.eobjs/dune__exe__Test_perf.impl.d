test/test_perf.ml: Alcotest Array Cache Cachesim Comm Compilers Expr Gen Ir List Machine Nstmt Option Prog QCheck QCheck_alcotest Region Support
