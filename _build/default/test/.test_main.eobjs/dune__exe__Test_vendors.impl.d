test/test_vendors.ml: Alcotest Compilers Expr Ir List Nstmt Prog Region Support
