test/test_emit_c.ml: Alcotest Array Compilers Exec Expr Filename Ir List Nstmt Printf Prog QCheck Random Region Sir String Suite Support Sys Unix Zap
