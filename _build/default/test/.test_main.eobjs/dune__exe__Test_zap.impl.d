test/test_zap.ml: Alcotest Array Astring Compilers Exec Float Ir List Nstmt Printf Prog Region Sir Zap
