test/test_compile.ml: Alcotest Array Compilers Exec Expr Ir List Nstmt Printf Prog QCheck QCheck_alcotest Region Sir Support
