test/test_cli.ml: Alcotest Astring Filename Printf Sys
