test/test_simplify.ml: Alcotest Compilers Exec Expr Ir List Printf Sir Suite Support
