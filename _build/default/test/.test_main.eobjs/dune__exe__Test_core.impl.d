test/test_core.ml: Alcotest Array Core Expr Fmt Ir List Nstmt QCheck QCheck_alcotest Region String Support
