test/test_ir.ml: Alcotest Array Exec Expr Gen Ir List Nstmt Prog QCheck QCheck_alcotest Region Support
