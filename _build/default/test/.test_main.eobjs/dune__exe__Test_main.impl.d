test/test_main.ml: Alcotest Test_cli Test_comm_model Test_compile Test_core Test_emit_c Test_exec Test_ir Test_merge Test_perf Test_simplify Test_sir Test_suite Test_support Test_vendors Test_zap
