test/test_comm_model.ml: Alcotest Array Cachesim Comm Compilers Core Expr Gen Ir List Machine Nstmt Prog QCheck QCheck_alcotest Region Sir Support
