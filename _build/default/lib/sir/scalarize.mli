(** Scalarization (paper §4.2): array program + fusion plan → scalar IR.

    Each fusible cluster becomes a single loop nest whose structure is
    the cluster's loop structure vector; loop nests and the statements
    inside each nest are ordered by topological sorts of the inter- and
    intra-cluster dependence edges.  Contracted arrays become scalar
    temporaries (or reduced-rank buffers, for the partial-contraction
    extension); their allocations disappear from the generated
    program. *)

type block_plan = {
  partition : Core.Partition.t;
  contracted : (string * Core.Contraction.shape) list;
  absorbed : (int * int) list;
      (** [(reduce index, cluster representative)] pairs: trailing
          reductions fused into one of this block's loop nests.  The
          driver guarantees the soundness conditions: the reduction
          region equals the cluster's region; the cluster's loop
          structure is the default row-major one (so accumulation order
          — and therefore floating-point rounding — is unchanged);
          every reference the reduction makes to an array written in
          that cluster uses offset 0; no cluster emitted {e after} the
          chosen one writes an array the reduction reads; and the
          target scalar is not read anywhere in the block. *)
}
(** The optimizer's decision for one basic block: how statements fuse,
    which arrays contract, and which trailing reductions are fused into
    the last nest (reduction fusion is what lets arrays read {e only}
    by reductions contract — the effect behind EP's every-array
    elimination in the paper's Figure 7). *)

type plan = block_plan list
(** One entry per basic block, aligned with [Ir.Prog.blocks]. *)

exception Error of string
(** Raised on malformed plans (wrong block count, missing loop
    structure) — these indicate optimizer bugs, not user errors. *)

val trivial_plan : Ir.Prog.t -> plan
(** No fusion, no contraction: the baseline compilation. *)

val scalarize : Ir.Prog.t -> plan -> Code.program
(** Generate scalar code.  The result allocates only non-contracted
    arrays; contracted arrays appear among the program's scalars under
    their original names. *)

val contracted_of_plan : plan -> (string * Core.Contraction.shape) list
(** All contraction decisions across blocks (for reporting). *)

val cluster_order : Core.Partition.t -> int list
(** The order (by representative) in which a partition's clusters are
    emitted as loop nests: a stable topological sort of the
    inter-cluster dependence edges.  Exposed for the communication
    model, which must see the same schedule the generated code has. *)
