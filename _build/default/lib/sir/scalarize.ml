open Ir

type block_plan = {
  partition : Core.Partition.t;
  contracted : (string * Core.Contraction.shape) list;
  absorbed : (int * int) list;
}

type plan = block_plan list

exception Error of string

let trivial_plan prog =
  List.map
    (fun stmts ->
      { partition = Core.Partition.trivial (Core.Asdg.build stmts);
        contracted = [];
        absorbed = [] })
    (Prog.blocks prog)

let contracted_of_plan plan = List.concat_map (fun bp -> bp.contracted) plan

(* ------------------------------------------------------------------ *)
(* Expression translation                                              *)
(* ------------------------------------------------------------------ *)

(* [ctr] maps contracted arrays to their shapes. *)
let subscripts ctr x (d : Support.Vec.t) =
  match List.assoc_opt x ctr with
  | Some Core.Contraction.Scalar -> None
  | Some (Core.Contraction.Keep_dims keep) ->
      let subs = ref [] in
      Array.iteri
        (fun k kept ->
          if kept then
            subs := { Code.base = Code.loop_var (k + 1); off = d.(k) } :: !subs)
        keep;
      Some (Array.of_list (List.rev !subs))
  | None ->
      Some
        (Array.init (Support.Vec.rank d) (fun k ->
             { Code.base = Code.loop_var (k + 1); off = d.(k) }))

let rec tr_expr ctr (e : Expr.t) : Code.expr =
  match e with
  | Expr.Const f -> Code.Const f
  | Expr.Svar s -> Code.Scalar s
  | Expr.Idx i -> Code.Scalar (Code.loop_var i)
  | Expr.Ref (x, d) -> (
      match subscripts ctr x d with
      | None -> Code.Scalar x
      | Some subs -> Code.Load (x, subs))
  | Expr.Unop (op, a) -> Code.Unop (op, tr_expr ctr a)
  | Expr.Binop (op, a, b) -> Code.Binop (op, tr_expr ctr a, tr_expr ctr b)
  | Expr.Select (c, a, b) ->
      Code.Select (tr_expr ctr c, tr_expr ctr a, tr_expr ctr b)

let tr_astmt ctr (s : Nstmt.t) : Code.stmt =
  let rhs = tr_expr ctr s.rhs in
  match subscripts ctr s.lhs s.lhs_off with
  | None -> Code.Sassign (s.lhs, rhs)
  | Some subs -> Code.Store (s.lhs, subs, rhs)

(* ------------------------------------------------------------------ *)
(* Reduction operators                                                 *)
(* ------------------------------------------------------------------ *)

let red_init : Prog.redop -> float = function
  | Prog.Rsum -> 0.0
  | Prog.Rprod -> 1.0
  | Prog.Rmin -> infinity
  | Prog.Rmax -> neg_infinity

let red_binop : Prog.redop -> Expr.binop = function
  | Prog.Rsum -> Expr.Add
  | Prog.Rprod -> Expr.Mul
  | Prog.Rmin -> Expr.Min
  | Prog.Rmax -> Expr.Max

(* ------------------------------------------------------------------ *)
(* Cluster -> loop nest                                                *)
(* ------------------------------------------------------------------ *)

let nest_of_cluster ?(extra = []) ctr (p : Core.Partition.t) rep =
  let members = Core.Partition.members p rep in
  let g = Core.Partition.asdg p in
  let stmts = List.map (Core.Asdg.stmt g) members in
  let region =
    match stmts with
    | s :: _ -> s.Nstmt.region
    | [] -> raise (Error "empty fusible cluster")
  in
  let rank = Region.rank region in
  let ls =
    match Core.Partition.loop_structure p rep with
    | Some ls -> ls
    | None ->
        raise
          (Error
             (Printf.sprintf "cluster P%d has no legal loop structure" rep))
  in
  (* member list is already a topological order: ASDG edges always point
     from earlier to later statements *)
  let body = List.map (tr_astmt ctr) stmts @ extra in
  (* build loops inner-to-outer following the loop structure vector *)
  let rec build i body =
    if i = 0 then body
    else
      let pi = Support.Vec.get ls i in
      let dim = abs pi in
      let { Region.lo; hi } = Region.range region dim in
      build (i - 1)
        [
          Code.For
            { var = Code.loop_var dim; lo; hi; step = (if pi > 0 then 1 else -1); body };
        ]
  in
  build rank body

(* Topological order of clusters (inter-cluster edges, stable by
   representative).  Definition 5 (iii) guarantees acyclicity. *)
let cluster_order p =
  let reps = List.map List.hd (Core.Partition.clusters p) in
  let id = Hashtbl.create 16 in
  List.iteri (fun k r -> Hashtbl.add id r k) reps;
  let edges =
    List.map
      (fun (a, b) -> (Hashtbl.find id a, Hashtbl.find id b))
      (Core.Partition.inter_cluster_edges p)
  in
  match Support.Toposort.sort ~n:(List.length reps) ~edges with
  | Some order ->
      let arr = Array.of_list reps in
      List.map (fun k -> arr.(k)) order
  | None -> raise (Error "inter-cluster cycle in fusion partition")

(* Emit one block's loop nests; [reds] are (cluster rep, op, target,
   arg) tuples of reductions fused into that cluster's nest. *)
let tr_block ?(reds = []) bp =
  let ctr = bp.contracted in
  let order = cluster_order bp.partition in
  if order = [] then raise (Error "block with no clusters");
  List.concat_map
    (fun rep ->
      let mine = List.filter (fun (r, _, _, _) -> r = rep) reds in
      let init =
        List.map
          (fun (_, op, target, _) ->
            Code.Sassign (target, Code.Const (red_init op)))
          mine
      in
      let extra =
        List.map
          (fun (_, op, target, arg) ->
            Code.Sassign
              ( target,
                Code.Binop (red_binop op, Code.Scalar target, tr_expr ctr arg)
              ))
          mine
      in
      init @ nest_of_cluster ~extra ctr bp.partition rep)
    order

(* ------------------------------------------------------------------ *)
(* Standalone reductions                                               *)
(* ------------------------------------------------------------------ *)

let tr_reduce ctr ~target ~op ~region ~arg =
  let rank = Region.rank region in
  let body =
    [
      Code.Sassign
        ( target,
          Code.Binop (red_binop op, Code.Scalar target, tr_expr ctr arg) );
    ]
  in
  let rec build d body =
    if d = 0 then body
    else
      let { Region.lo; hi } = Region.range region d in
      build (d - 1)
        [ Code.For { var = Code.loop_var d; lo; hi; step = 1; body } ]
  in
  Code.Sassign (target, Code.Const (red_init op)) :: build rank body

(* ------------------------------------------------------------------ *)
(* Whole program                                                       *)
(* ------------------------------------------------------------------ *)

let scalarize (prog : Prog.t) (plan : plan) : Code.program =
  let n_blocks = List.length (Prog.blocks prog) in
  if List.length plan <> n_blocks then
    raise
      (Error
         (Printf.sprintf "plan has %d blocks, program has %d"
            (List.length plan) n_blocks));
  let ctr = contracted_of_plan plan in
  let plans = Array.of_list plan in
  let next_block = ref 0 in
  let next_reduce = ref 0 in
  let rec go_stmts acc pending = function
    | [] -> List.rev_append (flush pending []) acc |> List.rev
    | Prog.Astmt s :: tl -> go_stmts acc (s :: pending) tl
    | Prog.Reduce _ :: _ as l ->
        (* take the maximal run of consecutive reductions *)
        let rec split rs = function
          | Prog.Reduce { target; op; region; arg } :: tl ->
              split ((target, op, region, arg) :: rs) tl
          | tl -> (List.rev rs, tl)
        in
        let rs, tl = split [] l in
        let first_idx = !next_reduce in
        next_reduce := !next_reduce + List.length rs;
        let absorbed_set =
          if pending = [] then [] else plans.(!next_block).absorbed
        in
        let indexed = List.mapi (fun i r -> (first_idx + i, r)) rs in
        let absorbed, standalone =
          List.partition
            (fun (i, _) -> List.mem_assoc i absorbed_set)
            indexed
        in
        let reds =
          List.map
            (fun (i, (target, op, _, arg)) ->
              (List.assoc i absorbed_set, op, target, arg))
            absorbed
        in
        let acc = List.rev_append (flush pending reds) acc in
        let acc =
          List.fold_left
            (fun acc (_, (target, op, region, arg)) ->
              List.rev_append (tr_reduce ctr ~target ~op ~region ~arg) acc)
            acc standalone
        in
        go_stmts acc [] tl
    | Prog.Sassign (x, e) :: tl ->
        let acc = List.rev_append (flush pending []) acc in
        go_stmts (Code.Sassign (x, tr_expr ctr e) :: acc) [] tl
    | Prog.Sloop { var; lo; hi; body } :: tl ->
        let acc = List.rev_append (flush pending []) acc in
        let inner = go_stmts [] [] body in
        go_stmts
          (Code.For { var; lo; hi; step = 1; body = inner } :: acc)
          [] tl
  and flush pending reds =
    match pending with
    | [] ->
        if reds <> [] then raise (Error "absorbed reductions without a block");
        []
    | _ ->
        let bi = !next_block in
        incr next_block;
        tr_block ~reds plans.(bi)
  in
  let body = go_stmts [] [] prog.Prog.body in
  let allocs =
    List.filter_map
      (fun (a : Prog.array_info) ->
        match List.assoc_opt a.name ctr with
        | Some Core.Contraction.Scalar -> None
        | Some (Core.Contraction.Keep_dims keep) ->
            let dims = ref [] in
            Array.iteri
              (fun k kept ->
                if kept then
                  let { Region.lo; hi } = Region.range a.bounds (k + 1) in
                  dims := (lo, hi) :: !dims)
              keep;
            Some { Code.name = a.name; dims = Array.of_list (List.rev !dims) }
        | None ->
            Some
              {
                Code.name = a.name;
                dims =
                  Array.init (Region.rank a.bounds) (fun k ->
                      let { Region.lo; hi } = Region.range a.bounds (k + 1) in
                      (lo, hi));
              })
      prog.Prog.arrays
  in
  let ctr_scalars =
    List.filter_map
      (fun (x, shape) ->
        match shape with
        | Core.Contraction.Scalar -> Some (x, 0.0)
        | Core.Contraction.Keep_dims _ -> None)
      ctr
  in
  {
    Code.name = prog.Prog.name;
    allocs;
    scalars = prog.Prog.scalars @ ctr_scalars;
    body;
    live_out = prog.Prog.live_out;
  }
