lib/sir/emit_c.mli: Code Format
