lib/sir/code.ml: Array Format Ir List Printf String
