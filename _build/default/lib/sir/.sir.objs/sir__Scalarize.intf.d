lib/sir/scalarize.mli: Code Core Ir
