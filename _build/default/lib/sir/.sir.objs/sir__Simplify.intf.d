lib/sir/simplify.mli: Code
