lib/sir/scalarize.ml: Array Code Core Expr Hashtbl Ir List Nstmt Printf Prog Region Support
