lib/sir/emit_c.ml: Array Code Float Format Hashtbl Ir List Printf String
