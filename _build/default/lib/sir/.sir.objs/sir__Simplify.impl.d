lib/sir/simplify.ml: Array Code Hashtbl Ir List Printf String
