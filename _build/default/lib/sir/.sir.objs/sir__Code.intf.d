lib/sir/code.mli: Format Ir
