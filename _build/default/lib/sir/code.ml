type subscript = { base : string; off : int }

type expr =
  | Const of float
  | Scalar of string
  | Load of string * subscript array
  | Unop of Ir.Expr.unop * expr
  | Binop of Ir.Expr.binop * expr * expr
  | Select of expr * expr * expr

type stmt =
  | Sassign of string * expr
  | Store of string * subscript array * expr
  | For of { var : string; lo : int; hi : int; step : int; body : stmt list }

type alloc = {
  name : string;
  dims : (int * int) array;
}

type program = {
  name : string;
  allocs : alloc list;
  scalars : (string * float) list;
  body : stmt list;
  live_out : string list;
}

let loop_var d = Printf.sprintf "__i%d" d

let alloc_volume a =
  Array.fold_left (fun acc (lo, hi) -> acc * max 0 (hi - lo + 1)) 1 a.dims

let program_elements p =
  List.fold_left (fun acc a -> acc + alloc_volume a) 0 p.allocs

let rec stmt_loops = function
  | Sassign _ | Store _ -> 0
  | For { body; _ } -> 1 + List.fold_left (fun a s -> a + stmt_loops s) 0 body

let count_loops p = List.fold_left (fun a s -> a + stmt_loops s) 0 p.body

let count_nests p =
  let rec top acc = function
    | [] -> acc
    | For { body; _ } :: tl ->
        (* a For at statement level is an outermost nest unless it is a
           sequential loop containing further nests, in which case count
           the nests inside it *)
        let inner =
          List.fold_left (fun a s -> a + (match s with For _ -> 1 | _ -> 0)) 0 body
        in
        if inner > 0 then top (top acc body) tl else top (acc + 1) tl
    | _ :: tl -> top acc tl
  in
  top 0 p.body

let rec free_scalars = function
  | Const _ -> []
  | Scalar s -> [ s ]
  | Load (_, subs) ->
      Array.to_list subs
      |> List.filter_map (fun s -> if s.base = "" then None else Some s.base)
  | Unop (_, a) -> free_scalars a
  | Binop (_, a, b) -> free_scalars a @ free_scalars b
  | Select (c, a, b) -> free_scalars c @ free_scalars a @ free_scalars b

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_subscript ppf s =
  if s.base = "" then Format.pp_print_int ppf s.off
  else if s.off = 0 then Format.pp_print_string ppf s.base
  else Format.fprintf ppf "%s%+d" s.base s.off

let pp_subs ppf subs =
  Array.iter (fun s -> Format.fprintf ppf "[%a]" pp_subscript s) subs

let unop_c : Ir.Expr.unop -> string = function
  | Neg -> "-"
  | Sqrt -> "sqrt"
  | Exp -> "exp"
  | Log -> "log"
  | Sin -> "sin"
  | Cos -> "cos"
  | Abs -> "fabs"
  | Floor -> "floor"
  | Not -> "!"
  | Hashrand -> "hashrand"

let binop_c : Ir.Expr.binop -> string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Pow -> "pow"
  | Min -> "fmin"
  | Max -> "fmax"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="
  | And -> "&&"
  | Or -> "||"

let rec pp_expr ppf = function
  | Const f -> Format.fprintf ppf "%g" f
  | Scalar s -> Format.pp_print_string ppf s
  | Load (x, subs) -> Format.fprintf ppf "%s%a" x pp_subs subs
  | Unop ((Neg | Not) as op, a) ->
      Format.fprintf ppf "%s(%a)" (unop_c op) pp_expr a
  | Unop (op, a) -> Format.fprintf ppf "%s(%a)" (unop_c op) pp_expr a
  | Binop ((Pow | Min | Max) as op, a, b) ->
      Format.fprintf ppf "%s(%a, %a)" (binop_c op) pp_expr a pp_expr b
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_c op) pp_expr b
  | Select (c, a, b) ->
      Format.fprintf ppf "(%a ? %a : %a)" pp_expr c pp_expr a pp_expr b

let rec pp_stmt ppf = function
  | Sassign (x, e) -> Format.fprintf ppf "@[<h>%s = %a;@]" x pp_expr e
  | Store (x, subs, e) ->
      Format.fprintf ppf "@[<h>%s%a = %a;@]" x pp_subs subs pp_expr e
  | For { var; lo; hi; step; body } ->
      let init, cond, next =
        if step >= 0 then
          ( Printf.sprintf "%s = %d" var lo,
            Printf.sprintf "%s <= %d" var hi,
            var ^ "++" )
        else
          ( Printf.sprintf "%s = %d" var hi,
            Printf.sprintf "%s >= %d" var lo,
            var ^ "--" )
      in
      Format.fprintf ppf "@[<v 2>for (%s; %s; %s) {@,%a@]@,}" init cond next
        pp_body body

and pp_body ppf body =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    pp_stmt ppf body

let pp ppf p =
  Format.fprintf ppf "@[<v>/* %s */@," p.name;
  List.iter
    (fun (a : alloc) ->
      Format.fprintf ppf "double %s%s;@," a.name
        (String.concat ""
           (Array.to_list
              (Array.map (fun (lo, hi) -> Printf.sprintf "[%d..%d]" lo hi) a.dims))))
    p.allocs;
  List.iter (fun (s, v) -> Format.fprintf ppf "double %s = %g;@," s v) p.scalars;
  pp_body ppf p.body;
  Format.fprintf ppf "@]"

let pp_c ppf p =
  Format.fprintf ppf "@[<v>/* generated from array program %s */@," p.name;
  Format.fprintf ppf "#include <math.h>@,@,";
  List.iter
    (fun (a : alloc) ->
      (* C arrays are 0-based; we allocate the full inclusive extent and
         index with the original bounds via offset macros for clarity. *)
      Format.fprintf ppf "static double %s%s;@," a.name
        (String.concat ""
           (Array.to_list
              (Array.map
                 (fun (lo, hi) -> Printf.sprintf "[%d]" (hi - lo + 1))
                 a.dims)));
      Format.fprintf ppf "/* %s bounds:%s (subscripts shown unshifted) */@,"
        a.name
        (String.concat ""
           (Array.to_list
              (Array.map (fun (lo, hi) -> Printf.sprintf " [%d..%d]" lo hi) a.dims))))
    p.allocs;
  Format.fprintf ppf "@,void %s(void) {@," p.name;
  List.iter
    (fun (s, v) -> Format.fprintf ppf "  double %s = %g;@," s v)
    p.scalars;
  Format.fprintf ppf "  int %s;@,"
    (String.concat ", "
       (List.init 8 (fun i -> loop_var (i + 1))));
  Format.fprintf ppf "  @[<v>%a@]@,}@]" pp_body p.body
