(** The scalar intermediate representation.

    Scalarization (paper §4.2) turns each fusible cluster into one loop
    nest over explicit scalar loads and stores.  This IR is what a
    scalarized array program looks like just before native code
    generation; our instrumented interpreter executes it directly, and
    {!pp_c} prints it as compilable C for inspection.

    Loop index variables are reserved names [__i1 .. __in], one per
    array dimension; the frontend rejects user identifiers beginning
    with [__] so no capture can occur. *)

type subscript = {
  base : string;  (** loop variable name, [""] for an absolute index *)
  off : int;
}
(** One dimension of an array subscript: [base + off]. *)

type expr =
  | Const of float
  | Scalar of string
      (** scalar variable, contraction temporary, or loop index *)
  | Load of string * subscript array
  | Unop of Ir.Expr.unop * expr
  | Binop of Ir.Expr.binop * expr * expr
  | Select of expr * expr * expr

type stmt =
  | Sassign of string * expr  (** scalar := e *)
  | Store of string * subscript array * expr  (** A[subs] := e *)
  | For of { var : string; lo : int; hi : int; step : int; body : stmt list }
      (** [step] is [+1] (ascending, [lo..hi]) or [-1] (descending,
          [hi..lo]); bounds are inclusive in both cases *)

type alloc = {
  name : string;
  dims : (int * int) array;  (** inclusive per-dimension bounds *)
}

type program = {
  name : string;
  allocs : alloc list;  (** arrays still allocated after contraction *)
  scalars : (string * float) list;  (** declared scalars and contraction temporaries, with initial values *)
  body : stmt list;
  live_out : string list;
}

val loop_var : int -> string
(** [loop_var d] is the reserved index name for array dimension [d]
    (1-based): ["__i<d>"]. *)

val alloc_volume : alloc -> int
(** Number of elements. *)

val program_elements : program -> int
(** Total allocated array elements — the memory-footprint figure used
    by the Figure 8 experiments. *)

val count_loops : program -> int
(** Number of [For] loops (for tests on fusion's effect on code shape). *)

val count_nests : program -> int
(** Number of outermost loop nests in straight-line positions — fused
    programs have fewer nests. *)

val free_scalars : expr -> string list
(** Scalar names an expression reads (excluding loop variables of
    enclosing loops, which the caller tracks). *)

val pp_expr : Format.formatter -> expr -> unit
(** One expression, C-like syntax. *)

val pp_c : Format.formatter -> program -> unit
(** Renders the program as a self-contained C translation unit (for
    human inspection and documentation; the interpreter is the
    authoritative executor). *)

val pp : Format.formatter -> program -> unit
(** Compact IR dump. *)
