(* Constant folding and per-body common-subexpression elimination. *)

let rec fold_expr (e : Code.expr) : Code.expr =
  match e with
  | Code.Const _ | Code.Scalar _ -> e
  | Code.Load (x, subs) -> Code.Load (x, subs)
  | Code.Unop (op, a) -> (
      match fold_expr a with
      | Code.Const c -> Code.Const (Ir.Expr.apply_unop op c)
      | a' -> Code.Unop (op, a'))
  | Code.Binop (op, a, b) -> (
      match (fold_expr a, fold_expr b) with
      | Code.Const x, Code.Const y -> Code.Const (Ir.Expr.apply_binop op x y)
      (* float-exact identities only: x*1 and x/1 are IEEE-identical
         to x (including signed zeros and NaNs); x+0 is NOT (-0+0=+0) *)
      | a', Code.Const 1.0 when op = Ir.Expr.Mul || op = Ir.Expr.Div -> a'
      | Code.Const 1.0, b' when op = Ir.Expr.Mul -> b'
      | a', b' -> Code.Binop (op, a', b'))
  | Code.Select (c, a, b) -> (
      match fold_expr c with
      | Code.Const v -> if v <> 0.0 then fold_expr a else fold_expr b
      | c' -> Code.Select (c', fold_expr a, fold_expr b))

(* ------------------------------------------------------------------ *)
(* CSE with write invalidation                                         *)
(* ------------------------------------------------------------------ *)

(* Values are identified by the expression's syntax plus the "epoch"
   (write counter) of every scalar and array it reads: equal keys imply
   equal values within one execution of the body. *)
module Keys = struct
  type env = {
    scalar_epoch : (string, int) Hashtbl.t;
    array_epoch : (string, int) Hashtbl.t;
  }

  let create () =
    { scalar_epoch = Hashtbl.create 16; array_epoch = Hashtbl.create 16 }

  let epoch tbl x = try Hashtbl.find tbl x with Not_found -> 0
  let bump tbl x = Hashtbl.replace tbl x (epoch tbl x + 1)

  let rec key env (e : Code.expr) =
    match e with
    | Code.Const f -> Printf.sprintf "#%h" f
    | Code.Scalar s -> Printf.sprintf "s:%s@%d" s (epoch env.scalar_epoch s)
    | Code.Load (x, subs) ->
        Printf.sprintf "l:%s@%d[%s]" x (epoch env.array_epoch x)
          (String.concat ";"
             (Array.to_list subs
             |> List.map (fun (s : Code.subscript) ->
                    Printf.sprintf "%s+%d" s.Code.base s.Code.off)))
    | Code.Unop (op, a) ->
        Printf.sprintf "u:%d(%s)" (Hashtbl.hash op) (key env a)
    | Code.Binop (op, a, b) ->
        Printf.sprintf "b:%d(%s,%s)" (Hashtbl.hash op) (key env a)
          (key env b)
    | Code.Select (c, a, b) ->
        Printf.sprintf "?(%s,%s,%s)" (key env c) (key env a) (key env b)
end

let nontrivial = function
  | Code.Unop _ | Code.Binop _ | Code.Select _ -> true
  | Code.Const _ | Code.Scalar _ | Code.Load _ -> false

(* Apply the statement's write effects to the epoch tables.  A loop
   bumps everything written anywhere inside it: expressions must not
   stay available across a nest that may overwrite their inputs. *)
let rec apply_write env (s : Code.stmt) =
  match s with
  | Code.Sassign (x, _) -> Keys.bump env.Keys.scalar_epoch x
  | Code.Store (x, _, _) -> Keys.bump env.Keys.array_epoch x
  | Code.For { var; body; _ } ->
      Keys.bump env.Keys.scalar_epoch var;
      List.iter (apply_write env) body

(* Pass 1 over one straight-line body: count occurrences of every
   nontrivial subexpression key. *)
let count_keys stmts =
  let env = Keys.create () in
  let counts = Hashtbl.create 64 in
  let rec walk_expr e =
    (match e with
    | Code.Unop (_, a) -> walk_expr a
    | Code.Binop (_, a, b) ->
        walk_expr a;
        walk_expr b
    | Code.Select (c, a, b) ->
        walk_expr c;
        walk_expr a;
        walk_expr b
    | _ -> ());
    if nontrivial e then begin
      let k = Keys.key env e in
      Hashtbl.replace counts k
        (1 + (try Hashtbl.find counts k with Not_found -> 0))
    end
  in
  List.iter
    (fun s ->
      (match s with
      | Code.Sassign (_, e) | Code.Store (_, _, e) -> walk_expr e
      | Code.For _ -> ());
      apply_write env s)
    stmts;
  counts

let cse_counter = ref 0

(* Pass 2: rewrite, introducing a temporary at the first occurrence of
   every key that appears at least twice. *)
let cse_body stmts new_scalars =
  let counts = count_keys stmts in
  let env = Keys.create () in
  let bound = Hashtbl.create 16 in
  (* bindings to insert before the current statement, reversed *)
  let pending = ref [] in
  let rec rewrite e =
    (* children first so an outer shared tree reuses inner temps *)
    let k = if nontrivial e then Some (Keys.key env e) else None in
    match k with
    | Some key when Hashtbl.mem bound key -> Code.Scalar (Hashtbl.find bound key)
    | Some key
      when (try Hashtbl.find counts key with Not_found -> 0) >= 2 ->
        let e' = rewrite_children e in
        incr cse_counter;
        let tmp = Printf.sprintf "__cse%d" !cse_counter in
        new_scalars := (tmp, 0.0) :: !new_scalars;
        pending := Code.Sassign (tmp, e') :: !pending;
        Hashtbl.replace bound key tmp;
        Code.Scalar tmp
    | _ -> rewrite_children e
  and rewrite_children e =
    match e with
    | Code.Const _ | Code.Scalar _ | Code.Load _ -> e
    | Code.Unop (op, a) -> Code.Unop (op, rewrite a)
    | Code.Binop (op, a, b) -> Code.Binop (op, rewrite a, rewrite b)
    | Code.Select (c, a, b) -> Code.Select (rewrite c, rewrite a, rewrite b)
  in
  List.concat_map
    (fun s ->
      let s' =
        match s with
        | Code.Sassign (x, e) -> Code.Sassign (x, rewrite e)
        | Code.Store (x, subs, e) -> Code.Store (x, subs, rewrite e)
        | Code.For _ -> s
      in
      let before = List.rev !pending in
      pending := [];
      apply_write env s;
      (* a write invalidates bindings whose key mentions the target;
         keys embed epochs, so it suffices to drop bindings eagerly:
         recompute-key equality can never match a stale epoch.  The
         [bound] table keys are epoch-qualified, so stale entries are
         simply never hit again; no explicit invalidation needed. *)
      before @ [ s' ])
    stmts

let rec simplify_stmts stmts new_scalars =
  (* fold constants first, then CSE this straight-line level, then
     recurse into loops *)
  let folded =
    List.map
      (fun s ->
        match s with
        | Code.Sassign (x, e) -> Code.Sassign (x, fold_expr e)
        | Code.Store (x, subs, e) -> Code.Store (x, subs, fold_expr e)
        | Code.For f -> Code.For f)
      stmts
  in
  let after_cse = cse_body folded new_scalars in
  List.map
    (fun s ->
      match s with
      | Code.For { var; lo; hi; step; body } ->
          Code.For
            { var; lo; hi; step; body = simplify_stmts body new_scalars }
      | s -> s)
    after_cse

let program (p : Code.program) =
  let new_scalars = ref [] in
  let body = simplify_stmts p.Code.body new_scalars in
  { p with Code.body; scalars = p.Code.scalars @ List.rev !new_scalars }

let count_ops p =
  let rec expr_ops = function
    | Code.Const _ | Code.Scalar _ | Code.Load _ -> 0
    | Code.Unop (_, a) -> 1 + expr_ops a
    | Code.Binop (_, a, b) -> 1 + expr_ops a + expr_ops b
    | Code.Select (c, a, b) -> 1 + expr_ops c + expr_ops a + expr_ops b
  in
  let rec stmt_ops = function
    | Code.Sassign (_, e) | Code.Store (_, _, e) -> expr_ops e
    | Code.For { body; _ } -> List.fold_left (fun a s -> a + stmt_ops s) 0 body
  in
  List.fold_left (fun a s -> a + stmt_ops s) 0 p.Code.body
