(** Native back end: emit a complete, runnable C translation unit.

    The generated program zero-initializes its arrays, executes the
    scalarized code, and prints the same 64-bit digest of the live-out
    set that {!Exec.Interp.checksum} computes — so compiling with a
    real C compiler and running gives a {e differential test} of the
    whole pipeline (parser → optimizer → scalarizer → codegen) against
    the interpreter, down to the last bit.

    Bit-exactness holds because every primitive maps to the operation
    OCaml itself uses: IEEE doubles throughout, libm for sqrt/sin/...,
    [hashrand] ported bit-for-bit (splitmix64 over the double's bit
    pattern), and the digest arithmetic in wrapping [uint64_t].

    Scalars and loop variables are emitted with a [v_] prefix and
    arrays behind [AT_] accessor macros, so user names can never
    collide with libc/libm symbols (a config named [gamma], say). *)

val emit : Format.formatter -> Code.program -> unit
(** Print the full translation unit ([#include]s, array definitions,
    accessor macros, [hashrand], [main]). *)

val to_string : Code.program -> string
