(** Scalar-level clean-up passes.

    Models the back-end scalar compiler the array compiler hands its
    output to: constant folding, algebraic identities, and common-
    subexpression elimination of repeated loads and pure subtrees
    within each straight-line loop body.  The paper's position is that
    these passes are {e complementary} to array-level fusion and
    contraction — they cannot recover a contraction opportunity once
    statements are scalarized into separate nests — and the ablation
    bench uses this module to demonstrate it.

    CSE is restricted to a single loop body (our IR has no aliasing and
    [Hashrand] is pure, so any syntactically equal subexpression is
    safe to share) and introduces fresh scalars [__cse1], [__cse2], ...
    Contracted-array scalars, being plain scalars, participate
    naturally. *)

val fold_expr : Code.expr -> Code.expr
(** Constant folding + identities ([x*1], [x+0], [x*0] when [x] is a
    pure non-NaN-producing subtree is {e not} folded — we only fold
    operations whose operands are all constants, so floating-point
    semantics are preserved exactly). *)

val program : Code.program -> Code.program
(** Fold constants everywhere and CSE each innermost loop body. *)

val count_ops : Code.program -> int
(** Static operation count (for tests and the ablation report). *)
