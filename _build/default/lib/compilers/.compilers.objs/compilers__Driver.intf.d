lib/compilers/driver.mli: Core Ir Sir
