lib/compilers/vendors.ml: Core Ir List Prog Support
