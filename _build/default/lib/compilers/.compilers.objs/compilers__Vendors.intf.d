lib/compilers/vendors.mli: Core Ir
