lib/compilers/driver.ml: Array Core Expr Ir List Nstmt Prog Region Sir Support
