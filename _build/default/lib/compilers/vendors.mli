(** Emulations of the commercial array-language compilers of the
    paper's Figure 6.

    The paper infers each product's capabilities by studying its output
    on the Figure 5 fragments; these emulations encode the inferred
    capability sets on top of our own machinery:

    - {b PGI HPF 2.1} / {b IBM XLHPF 1.2}: no statement fusion at all;
      compiler temporaries are eliminated by a local peephole (the
      temporary's definition and copy-back compile to one loop).
    - {b APR XHPF 2.0}: fusion for locality and compiler-array
      contraction, but {e no} fusion of loops that would carry
      anti-dependences, and no user-array contraction.
    - {b Cray F90 2.0.1.0}: statement fusion and contraction of both
      compiler and user arrays, but anti-dependences block fusion, and
      compiler temporaries are considered {e before} (separately from)
      user arrays — the trade-off fragment (8) exposes.
    - {b ZPL} (this work): collective fusion with reversal and
      interchange, compiler and user arrays weighed together.

    An emulation optimizes one basic block; Figure 6's fragments are
    all single-block programs. *)

type caps = {
  vname : string;
  fuse_locality : bool;  (** perform fusion beyond temporary peepholes *)
  fuse_anti : bool;  (** may fused loops carry anti dependences? *)
  contract_user : bool;
  integrated : bool;
      (** weigh compiler and user arrays together (false = compiler
          temporaries are contracted first, separately) *)
}

val pgi : caps
val ibm : caps
val apr : caps
val cray : caps
val zpl : caps
val all : caps list

type result = {
  caps : caps;
  partition : Core.Partition.t;
  contracted : string list;
}

val optimize_block : caps -> Ir.Prog.t -> Ir.Nstmt.t list -> result
(** Optimize one basic block of [prog] under the emulated capability
    set.  Contraction candidacy (confinement, liveness) is computed
    from the whole program as usual. *)

val n_nests : result -> int
(** Loop nests the block compiles to (1 = fully fused). *)

val is_contracted : result -> string -> bool
