open Ir

type caps = {
  vname : string;
  fuse_locality : bool;
  fuse_anti : bool;
  contract_user : bool;
  integrated : bool;
}

let pgi =
  {
    vname = "PGI HPF 2.1";
    fuse_locality = false;
    fuse_anti = false;
    contract_user = false;
    integrated = false;
  }

let ibm = { pgi with vname = "IBM XLHPF 1.2" }

let apr =
  {
    vname = "APR XHPF 2.0";
    fuse_locality = true;
    fuse_anti = false;
    contract_user = false;
    integrated = false;
  }

let cray =
  {
    vname = "Cray F90 2.0.1.0";
    fuse_locality = true;
    fuse_anti = false;
    contract_user = true;
    integrated = false;
  }

let zpl =
  {
    vname = "ZPL 1.13";
    fuse_locality = true;
    fuse_anti = true;
    contract_user = true;
    integrated = true;
  }

let all = [ pgi; ibm; apr; cray; zpl ]

type result = {
  caps : caps;
  partition : Core.Partition.t;
  contracted : string list;
}

(* Reject merges whose fused loop nest would carry an anti dependence
   (the APR/Cray limitation the paper observes on fragments 3 and 7). *)
let no_anti_veto g ss =
  not
    (List.exists
       (fun i ->
         List.exists
           (fun j ->
             i < j
             && List.exists
                  (fun (l : Core.Dep.label) ->
                    l.kind = Core.Dep.Anti
                    && not (Support.Vec.is_null l.udv))
                  (Core.Asdg.labels g i j))
           ss)
       ss)

let optimize_block caps prog stmts =
  let g = Core.Asdg.build stmts in
  let confined = Prog.confined_arrays prog in
  let in_block =
    List.filter_map
      (fun (x, b) ->
        ignore b;
        (* fragments are single-block programs; for multi-block inputs
           restrict to arrays whose block is this one *)
        if
          List.exists
            (fun s -> List.mem x (Ir.Nstmt.arrays s))
            stmts
        then Some x
        else None)
      confined
  in
  let kind x =
    match Prog.find_array prog x with
    | Some i -> i.Prog.kind
    | None -> Prog.User
  in
  let compiler_cands = List.filter (fun x -> kind x = Prog.Compiler) in_block in
  let user_cands = List.filter (fun x -> kind x = Prog.User) in_block in
  let veto ss = caps.fuse_anti || no_anti_veto g ss in
  (* Phase 1: compiler temporaries.  All emulated products eliminate
     them via a local peephole that can pick the loop direction, so the
     anti veto does not apply here. *)
  let p =
    if caps.integrated then
      (* ZPL: everything weighed together in one pass *)
      Core.Fusion.for_contraction ~candidates:(compiler_cands @ user_cands) g
    else begin
      let p = Core.Fusion.for_contraction ~candidates:compiler_cands g in
      if caps.contract_user then
        Core.Fusion.for_contraction ~start:p ~may_fuse:(veto)
          ~candidates:user_cands g
      else p
    end
  in
  let p =
    if caps.fuse_locality then Core.Fusion.for_locality ~may_fuse:veto p
    else p
  in
  let cands =
    compiler_cands @ (if caps.contract_user then user_cands else [])
  in
  let contracted = Core.Contraction.decide p ~candidates:cands in
  { caps; partition = p; contracted }

let n_nests r = Core.Partition.n_clusters r.partition
let is_contracted r x = List.mem x r.contracted
