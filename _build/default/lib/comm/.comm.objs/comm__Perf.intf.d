lib/comm/perf.mli: Cachesim Compilers Machine Model
