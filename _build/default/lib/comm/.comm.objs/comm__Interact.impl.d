lib/comm/interact.ml: Array Core Dist Expr Hashtbl Ir List Nstmt Prog Region Support
