lib/comm/dist.mli: Support
