lib/comm/perf.ml: Cachesim Compilers Exec Machine Model
