lib/comm/interact.mli: Ir
