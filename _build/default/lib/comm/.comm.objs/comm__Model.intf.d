lib/comm/model.mli: Compilers Core Machine
