lib/comm/model.ml: Array Compilers Core Dist Expr Hashtbl Ir List Machine Nstmt Prog Region Sir Support
