lib/comm/dist.ml: Array Support
