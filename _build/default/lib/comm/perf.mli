(** End-to-end performance measurement of a compiled configuration.

    Runs the generated scalar program through the instrumented
    interpreter, feeds every memory reference to the target machine's
    cache hierarchy, infers and costs communication at the array level,
    and combines everything through the machine's time model.  This is
    the measurement harness behind Figures 9–11 and §5.5: the program
    simulated is one processor's share of a problem scaled with the
    machine (constant per-processor data), exactly the paper's
    methodology. *)

type config = {
  machine : Machine.t;
  procs : int;
  comm : Model.opts;
}

type report = {
  time_ns : float;  (** modeled execution time *)
  comp_ns : float;  (** computation + memory-system portion *)
  comm_ns : float;  (** effective communication portion *)
  l1 : Cachesim.Cache.stats;
  l2 : Cachesim.Cache.stats option;
  flops : int;
  loads : int;
  stores : int;
  messages : int;
  msg_bytes : int;
  footprint_bytes : int;
  checksum : string;  (** result digest — equal across correct configurations *)
}

val measure : config -> Compilers.Driver.compiled -> report

val improvement_pct : baseline:report -> report -> float
(** Percent runtime improvement over a baseline, the y-axis of
    Figures 9–11: [100·(t_b − t) / t].  Negative = slowdown. *)
