(** Block distribution of arrays over a processor grid.

    The paper assumes every dimension of every array is distributed
    (§3).  Processors form a grid as square as possible; the
    program's regions are interpreted as one processor's {e local}
    block (the evaluation scales problem size with the machine, §5.4,
    so per-processor extents are constant).  A reference at offset
    [d] needs ghost values from the neighbor in direction
    [sign(d)] exactly when some nonzero component of [d] lies in a
    dimension split across more than one processor. *)

type t

val make : rank:int -> procs:int -> t
(** Distribute [procs] processors over [rank] dimensions, most-
    balanced first (e.g. 4 procs, rank 2 → 2×2; 8 → 4×2). *)

val procs : t -> int
val per_dim : t -> int array
(** Processors along each dimension. *)

val dim_split : t -> int -> bool
(** [dim_split t d] — is dimension [d] (1-based) distributed across
    more than one processor? *)

val remote_dir : t -> Support.Vec.t -> int array option
(** The neighbor direction (sign vector, restricted to split
    dimensions) a reference offset requires ghosts from, or [None]
    when the reference is entirely processor-local. *)
