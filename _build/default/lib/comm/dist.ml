type t = {
  procs : int;
  per_dim : int array;
}

(* Greedily split [procs] into [rank] factors, largest dimension first;
   procs is a product of small primes in all our experiments. *)
let make ~rank ~procs =
  if rank < 1 then invalid_arg "Dist.make: rank must be >= 1";
  if procs < 1 then invalid_arg "Dist.make: procs must be >= 1";
  let per_dim = Array.make rank 1 in
  let remaining = ref procs in
  let d = ref 0 in
  while !remaining > 1 do
    (* smallest prime factor *)
    let rec spf k n = if n mod k = 0 then k else spf (k + 1) n in
    let f = spf 2 !remaining in
    per_dim.(!d mod rank) <- per_dim.(!d mod rank) * f;
    remaining := !remaining / f;
    incr d
  done;
  { procs; per_dim }

let procs t = t.procs
let per_dim t = Array.copy t.per_dim
let dim_split t d = t.per_dim.(d - 1) > 1

let remote_dir t off =
  let rank = Array.length t.per_dim in
  if Support.Vec.rank off <> rank then
    invalid_arg "Dist.remote_dir: rank mismatch";
  let dir =
    Array.init rank (fun k ->
        if t.per_dim.(k) > 1 && off.(k) <> 0 then compare off.(k) 0 else 0)
  in
  if Array.for_all (fun x -> x = 0) dir then None else Some dir
