(** Communication inference, optimization and costing.

    Works at the array level, on the same fusion plan the scalarizer
    consumes — exactly the integration the paper argues for (§5.5).
    For every fusible cluster the model infers the border exchanges its
    remote references require, then applies the paper's communication
    optimizations:

    - {e message vectorization} — always on: one message per
      (array, direction) per cluster, never per element;
    - {e redundancy elimination} — an exchange is dropped when the same
      border was already fetched and the array has not been written
      since;
    - {e message combining} — exchanges consumed at the same point and
      going to the same neighbor share one message (one latency α);
    - {e pipelining} — the wait for an exchange is overlapped with the
      computation of clusters scheduled between the producer of the
      array and its consumer; a floor of 0.25·α per message models the
      unhideable software overhead.

    Reductions contribute a log₂ p combining tree per execution. *)

type opts = {
  redundancy : bool;
  combining : bool;
  pipelining : bool;
}

val all_on : opts
val vectorize_only : opts

type summary = {
  messages : int;  (** point-to-point messages, after optimization *)
  bytes : int;  (** payload bytes moved *)
  raw_ns : float;  (** exchange cost before overlap *)
  effective_ns : float;
      (** total communication wait time charged to the run, including
          reductions *)
  reduction_ns : float;  (** portion due to reduction trees *)
}

val analyze :
  machine:Machine.t ->
  procs:int ->
  opts:opts ->
  Compilers.Driver.compiled ->
  summary
(** Infer and cost all communication for one compiled configuration.
    With [procs = 1] everything is local: the summary is all zeros. *)

val cluster_cost_ns :
  machine:Machine.t -> Core.Partition.t -> int -> float
(** Static per-execution compute estimate for one cluster (used for
    overlap windows; also exposed for tests). *)
