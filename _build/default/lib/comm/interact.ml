open Ir

let remote_readers ~procs stmts =
  match stmts with
  | [] -> []
  | s0 :: _ ->
      let rank = Region.rank s0.Nstmt.region in
      let dist = Dist.make ~rank ~procs in
      List.filteri (fun _ _ -> true) stmts
      |> List.mapi (fun i s -> (i, s))
      |> List.filter_map (fun (i, (s : Nstmt.t)) ->
             let remote =
               Region.rank s.region = rank
               && List.exists
                    (fun (_, off) -> Dist.remote_dir dist off <> None)
                    (Expr.refs s.rhs)
             in
             if remote then Some i else None)

(* Per-block dependence relatedness: related i j <=> a dependence path
   connects them (in either direction). *)
let relatedness stmts =
  let g = Core.Asdg.build stmts in
  let n = Core.Asdg.n g in
  let edges = Core.Asdg.edges g in
  let reach = Array.make_matrix n n false in
  for s = 0 to n - 1 do
    let r = Support.Toposort.reachable ~n ~edges ~from:[ s ] in
    Array.iteri (fun t v -> if v then reach.(s).(t) <- true) r
  done;
  fun i j -> i = j || reach.(i).(j) || reach.(j).(i)

let favor_comm_veto ~procs prog =
  let blocks = Array.of_list (Prog.blocks prog) in
  let cache = Hashtbl.create 8 in
  let block_info bi =
    match Hashtbl.find_opt cache bi with
    | Some info -> info
    | None ->
        let stmts = blocks.(bi) in
        let info = (remote_readers ~procs stmts, relatedness stmts) in
        Hashtbl.add cache bi info;
        info
  in
  fun ~block ss ->
    if procs <= 1 then true
    else begin
      let remote, related = block_info block in
      List.for_all
        (fun s ->
          (not (List.mem s remote))
          || List.for_all (fun t -> related s t) ss)
        ss
    end
