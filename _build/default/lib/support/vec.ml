type t = int array

let make n k = Array.make n k
let zero n = make n 0
let of_list = Array.of_list
let to_list = Array.to_list
let rank = Array.length
let get v i = v.(i - 1)

let binop name f a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: rank mismatch (%d vs %d)" name
                   (Array.length a) (Array.length b));
  Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let add a b = binop "add" ( + ) a b
let sub a b = binop "sub" ( - ) a b
let neg a = Array.map (fun x -> -x) a
let is_null v = Array.for_all (fun x -> x = 0) v
let equal a b = a = b
let compare = Stdlib.compare

let lex_nonneg v =
  let rec go i =
    if i >= Array.length v then true
    else if v.(i) > 0 then true
    else if v.(i) < 0 then false
    else go (i + 1)
  in
  go 0

let lex_pos v = lex_nonneg v && not (is_null v)

let pp ppf v =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
       Format.pp_print_int)
    (Array.to_list v)

let to_string v = Format.asprintf "%a" pp v
