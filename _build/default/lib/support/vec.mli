(** Integer n-tuples.

    Offsets, unconstrained distance vectors (UDVs) and constrained
    distance vectors are all integer n-tuples; this module is their
    shared representation.  Vectors are immutable by convention: no
    function in this interface mutates its argument, and callers must
    not mutate a vector after sharing it. *)

type t = int array

val make : int -> int -> t
(** [make n k] is the n-tuple (k, ..., k). *)

val zero : int -> t
(** [zero n] is the null vector of rank [n]. *)

val of_list : int list -> t

val to_list : t -> int list

val rank : t -> int
(** Number of components. *)

val get : t -> int -> int
(** [get v i] is the [i]th component, 1-indexed as in the paper. *)

val add : t -> t -> t

val sub : t -> t -> t
(** [sub a b] is the componentwise difference [a - b].  Raises
    [Invalid_argument] if ranks differ. *)

val neg : t -> t

val is_null : t -> bool
(** [is_null v] holds iff every component is zero. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order (lexicographic), suitable for [Set]/[Map] keys. *)

val lex_nonneg : t -> bool
(** Lexicographic nonnegativity (Definition 1): the vector is null or
    its leftmost nonzero component is positive.  A constrained distance
    vector is legal iff it is lexicographically nonnegative. *)

val lex_pos : t -> bool
(** Strict variant: leftmost nonzero component exists and is positive. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(d1,d2,...,dn)]. *)

val to_string : t -> string
