let adjacency n edges =
  let adj = Array.make n [] in
  List.iter
    (fun (a, b) ->
      if a < 0 || a >= n || b < 0 || b >= n then
        invalid_arg "Toposort: node out of range";
      adj.(a) <- b :: adj.(a))
    edges;
  adj

(* Kahn's algorithm with a sorted frontier for stability.  The frontier
   is kept as a sorted list; graphs here are fusible-cluster graphs, so
   n is small and the O(n^2) worst case is irrelevant. *)
let sort ~n ~edges =
  let adj = adjacency n edges in
  let indeg = Array.make n 0 in
  List.iter (fun (_, b) -> indeg.(b) <- indeg.(b) + 1) edges;
  let frontier = ref [] in
  for v = n - 1 downto 0 do
    if indeg.(v) = 0 then frontier := v :: !frontier
  done;
  let order = ref [] in
  let count = ref 0 in
  let rec insert v = function
    | [] -> [ v ]
    | x :: tl when x < v -> x :: insert v tl
    | rest -> v :: rest
  in
  let rec loop () =
    match !frontier with
    | [] -> ()
    | v :: rest ->
        frontier := rest;
        order := v :: !order;
        incr count;
        List.iter
          (fun b ->
            indeg.(b) <- indeg.(b) - 1;
            if indeg.(b) = 0 then frontier := insert b !frontier)
          adj.(v);
        loop ()
  in
  loop ();
  if !count = n then Some (List.rev !order) else None

let sort_exn ~n ~edges =
  match sort ~n ~edges with
  | Some o -> o
  | None -> invalid_arg "Toposort.sort_exn: graph has a cycle"

let reachable ~n ~edges ~from =
  let adj = adjacency n edges in
  let seen = Array.make n false in
  let rec dfs v =
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter dfs adj.(v)
    end
  in
  List.iter dfs from;
  seen

let has_cycle ~n ~edges = sort ~n ~edges = None
