(** Deterministic pseudo-random numbers.

    A 64-bit linear-congruential generator in the style of the NAS
    parallel benchmarks' [randlc] (EP is {e defined} in terms of such a
    generator).  Used by workload generators and by the EP benchmark's
    runtime intrinsic so that all experiments are bit-reproducible. *)

type t

val create : int64 -> t
(** [create seed] starts a stream at [seed]. *)

val next_float : t -> float
(** Uniform deviate in [(0, 1)]. *)

val next_int : t -> int -> int
(** [next_int t bound] is uniform in [[0, bound)]. [bound > 0]. *)

val split : t -> t
(** An independent stream derived from the current state; advances the
    parent. *)
