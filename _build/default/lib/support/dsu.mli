(** Disjoint-set union (union-find) over integers [0 .. n-1].

    Fusion partitions are maintained as a DSU over statement indices:
    merging fusible clusters is a union, and cluster identity is the
    minimum statement index of the set (matching the paper's rule that
    merged clusters are assigned to the [P_k] with smallest [k]). *)

type t

val create : int -> t
(** [create n] is the discrete partition of [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative: the {e minimum} element of the set. *)

val union : t -> int -> int -> unit
(** Merge the two sets (no-op when already merged). *)

val same : t -> int -> int -> bool

val groups : t -> int list list
(** All sets, each sorted ascending, ordered by representative. *)

val copy : t -> t
(** Independent copy; unions on the copy do not affect the original. *)

val n_sets : t -> int
