lib/support/dsu.mli:
