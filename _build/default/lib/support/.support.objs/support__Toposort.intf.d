lib/support/toposort.mli:
