lib/support/prng.mli:
