lib/support/vec.ml: Array Format Printf Stdlib
