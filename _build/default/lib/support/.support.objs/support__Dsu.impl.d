lib/support/dsu.ml: Array Hashtbl List
