lib/support/toposort.ml: Array List
