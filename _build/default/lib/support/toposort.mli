(** Topological sorting and reachability over small integer digraphs.

    Graphs are given as a node count [n] (nodes are [0 .. n-1]) and an
    edge list.  Used to order fusible clusters, to order statements
    inside a cluster, and by [GROW] to find clusters lying on would-be
    cycles. *)

val sort : n:int -> edges:(int * int) list -> int list option
(** [sort ~n ~edges] is a topological order of the nodes ([Some order]),
    or [None] if the graph has a cycle.  The order is stable: among
    unconstrained nodes, lower-numbered nodes come first (so statement
    order in generated code follows source order whenever legal). *)

val sort_exn : n:int -> edges:(int * int) list -> int list
(** Like {!sort} but raises [Invalid_argument] on a cycle. *)

val reachable : n:int -> edges:(int * int) list -> from:int list -> bool array
(** [reachable ~n ~edges ~from] marks every node reachable from any
    node of [from] by a (possibly empty) directed path. *)

val has_cycle : n:int -> edges:(int * int) list -> bool
