(** Models of the paper's three evaluation machines.

    Cache geometries follow the paper's hardware descriptions (§5):
    - Cray T3E: 450 MHz Alpha 21164, 8 KB L1 + 96 KB L2, 256 MB/node;
    - IBM SP-2: 120 MHz POWER2 SC, 128 KB data cache, 256 MB/node;
    - Intel Paragon: 75 MHz i860, 8 KB data cache, 32 MB/node.

    Cost coefficients (per-flop time, miss penalties, message latency
    α and per-byte cost β) are modelled from the machines' published
    characteristics; DESIGN.md documents this substitution.  The model
    deliberately captures the machines' {e contrasts} — the T3E's
    deep cache hierarchy and fast network, the SP-2's single large
    cache and slow network, the Paragon's tiny cache — which drive the
    per-machine trends in the paper's Figures 9–11. *)

type t = {
  name : string;
  l1 : Cachesim.Cache.config;
  l2 : Cachesim.Cache.config option;
  flop_ns : float;  (** cost of one floating-point operation *)
  l1_hit_ns : float;  (** access cost paid by every reference *)
  l1_miss_ns : float;  (** additional penalty for an L1 miss served by L2 (or memory when no L2) *)
  l2_miss_ns : float;  (** additional penalty for an L2 miss *)
  msg_latency_ns : float;  (** α: fixed per-message software + wire latency *)
  byte_ns : float;  (** β: per-byte transfer cost *)
  node_memory_bytes : int;  (** memory available for array allocation *)
}

val t3e : t
val sp2 : t
val paragon : t
val all : t list

val by_name : string -> t option

type activity = {
  flops : int;
  l1_accesses : int;
  l1_misses : int;
  l2_misses : int;  (** 0 when the machine has no L2 *)
  comm_ns : float;  (** effective (post-overlap) communication time *)
}

val time_ns : t -> activity -> float
(** The execution-time model:
    [flops·flop_ns + accesses·l1_hit_ns + l1_misses·l1_miss_ns +
     l2_misses·l2_miss_ns + comm_ns]. *)

val fits : t -> bytes:int -> bool
(** Does an allocation fit in node memory (Figure 8 experiments)? *)
