type t = {
  name : string;
  l1 : Cachesim.Cache.config;
  l2 : Cachesim.Cache.config option;
  flop_ns : float;
  l1_hit_ns : float;
  l1_miss_ns : float;
  l2_miss_ns : float;
  msg_latency_ns : float;
  byte_ns : float;
  node_memory_bytes : int;
}

let mib n = n * 1024 * 1024

(* Cray T3E-900: DEC Alpha 21164 at 450 MHz.  8 KB direct-mapped L1,
   96 KB 3-way L2, very fast interconnect (~1 us latency, ~300 MB/s
   effective per-link bandwidth). *)
let t3e =
  {
    name = "Cray T3E";
    l1 = { Cachesim.Cache.size_bytes = 8 * 1024; line_bytes = 32; assoc = 1 };
    l2 = Some { Cachesim.Cache.size_bytes = 96 * 1024; line_bytes = 64; assoc = 3 };
    flop_ns = 2.2;
    l1_hit_ns = 2.2;
    l1_miss_ns = 18.0;
    l2_miss_ns = 80.0;
    msg_latency_ns = 1_000.0;
    byte_ns = 3.3;  (* ~300 MB/s *)
    node_memory_bytes = mib 256;
  }

(* IBM SP-2: 120 MHz POWER2 Super Chip.  Single large 128 KB 4-way data
   cache with long 256-byte lines; no L2; slow adapter-based network
   (~40 us latency, ~35 MB/s). *)
let sp2 =
  {
    name = "IBM SP-2";
    l1 = { Cachesim.Cache.size_bytes = 128 * 1024; line_bytes = 256; assoc = 4 };
    l2 = None;
    flop_ns = 4.2;  (* superscalar FPU: < 1 cycle effective per flop *)
    l1_hit_ns = 8.3;
    l1_miss_ns = 150.0;
    l2_miss_ns = 0.0;
    msg_latency_ns = 40_000.0;
    byte_ns = 28.0;  (* ~35 MB/s *)
    node_memory_bytes = mib 256;
  }

(* Intel Paragon: 75 MHz i860 XP.  8 KB 2-way data cache, modest memory
   system, mesh network with high software overhead (~70 us latency,
   ~80 MB/s hardware but ~30 MB/s realized). *)
let paragon =
  {
    name = "Intel Paragon";
    l1 = { Cachesim.Cache.size_bytes = 8 * 1024; line_bytes = 32; assoc = 2 };
    l2 = None;
    flop_ns = 13.3;
    l1_hit_ns = 13.3;
    l1_miss_ns = 160.0;
    l2_miss_ns = 0.0;
    msg_latency_ns = 70_000.0;
    byte_ns = 33.0;  (* ~30 MB/s *)
    node_memory_bytes = mib 32;
  }

let all = [ t3e; sp2; paragon ]

let by_name n = List.find_opt (fun m -> m.name = n) all

type activity = {
  flops : int;
  l1_accesses : int;
  l1_misses : int;
  l2_misses : int;
  comm_ns : float;
}

let time_ns m a =
  (float_of_int a.flops *. m.flop_ns)
  +. (float_of_int a.l1_accesses *. m.l1_hit_ns)
  +. (float_of_int a.l1_misses *. m.l1_miss_ns)
  +. (float_of_int a.l2_misses *. m.l2_miss_ns)
  +. a.comm_ns

let fits m ~bytes = bytes <= m.node_memory_bytes
