lib/ir/prog.mli: Expr Format Nstmt Region
