lib/ir/region.mli: Format Support
