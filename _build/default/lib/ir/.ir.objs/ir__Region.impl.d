lib/ir/region.ml: Array Format List Support
