lib/ir/nstmt.mli: Expr Format Region Support
