lib/ir/expr.ml: Format Hashtbl Int64 List Support
