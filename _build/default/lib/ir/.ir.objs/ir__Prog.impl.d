lib/ir/prog.ml: Array Expr Format Hashtbl List Nstmt Printf Region String Support
