lib/ir/expr.mli: Format Support
