lib/ir/nstmt.ml: Expr Format List Printf Region Support
