type t = {
  region : Region.t;
  lhs : string;
  lhs_off : Support.Vec.t;
  rhs : Expr.t;
}

let validate t =
  let rank = Region.rank t.region in
  if Support.Vec.rank t.lhs_off <> rank then
    Error
      (Printf.sprintf "lhs offset rank %d differs from region rank %d"
         (Support.Vec.rank t.lhs_off) rank)
  else if not (Expr.rank_consistent ~rank t.rhs) then
    Error "rhs reference of mismatched rank"
  else if List.mem t.lhs (Expr.ref_names t.rhs) then
    Error
      (Printf.sprintf "array %s is both read and written (not normal form)"
         t.lhs)
  else Ok ()

let make ~region ~lhs ?lhs_off rhs =
  let lhs_off =
    match lhs_off with
    | Some d -> d
    | None -> Support.Vec.zero (Region.rank region)
  in
  let t = { region; lhs; lhs_off; rhs } in
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Nstmt.make: " ^ msg)

let arrays t =
  let rhs = Expr.ref_names t.rhs in
  t.lhs :: List.filter (fun x -> x <> t.lhs) rhs

let reads_of t x =
  List.filter_map
    (fun (y, d) -> if y = x then Some d else None)
    (Expr.refs t.rhs)

let writes_of t x = if t.lhs = x then [ t.lhs_off ] else []

let ref_count t x = List.length (reads_of t x) + List.length (writes_of t x)

let rename f t =
  {
    t with
    lhs = f t.lhs;
    rhs = Expr.map_refs (fun x d -> Expr.Ref (f x, d)) t.rhs;
  }

let pp ppf t =
  Format.fprintf ppf "%a %s%s := %a" Region.pp t.region t.lhs
    (if Support.Vec.is_null t.lhs_off then ""
     else "@" ^ Support.Vec.to_string t.lhs_off)
    Expr.pp t.rhs

let to_string t = Format.asprintf "%a" pp t
